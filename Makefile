.PHONY: all check test lint doc clean bench-cdg bench-routing bench-analysis bench-break break-smoke analyze-examples kernel-equivalence bench-service smoke-service coverage zoo soak soak-smoke

all:
	dune build

# The tier-1 gate: everything compiles (dev and release profiles),
# every test suite passes (runtest includes test_parallel, the 2-domain
# determinism smoke of the parallel routing pipeline, and test_spf, the
# kernel-equivalence property suite), the routing certifier signs off
# on the example topologies, the SSSP kernels agree bit-for-bit on
# the quick equivalence fixtures, the two cycle-break engines agree
# on a small torus (break-smoke), the topology-zoo conformance battery
# certifies every corpus file and generator sample, and a quick churn
# soak (>= 200 seeded events) survives with every epoch recertified.
check:
	dune build && dune build --profile release && dune runtest && $(MAKE) lint && $(MAKE) analyze-examples && $(MAKE) kernel-equivalence && $(MAKE) break-smoke && $(MAKE) smoke-service && $(MAKE) zoo && $(MAKE) soak-smoke

# Topology-zoo conformance battery (doc/topology_ingestion.md): every
# file under examples/zoo plus the seeded jellyfish/xpander samples,
# through the full registry, certifier, existence lower bounds and
# kernel/engine parity. Exit 0 iff zero conformance failures.
zoo:
	dune exec bin/fabric_tool.exe -- zoo

# Quick churn soak, part of `check`: three fabrics, >= 200 applied
# seeded events total, every epoch swap recertified by the trusted
# checker. Failing runs dump a reproduction artifact (seed + trace)
# under _build/soak/ and print its path.
soak-smoke:
	dune exec bin/fabric_tool.exe -- soak torus:4x4 torus:3x3x3 xpander:4,5:11 --events 90 --seed 7

# Long-haul churn soak (not part of `check`): larger fabrics, more
# events, switch removals and drains included.
soak:
	dune exec --profile release bin/fabric_tool.exe -- soak torus:5x5 torus:3x3x3 dragonfly:4,2,2 jellyfish:18,8,5:3 xpander:4,6:11 --events 400 --seed 11

test: check

# The routing certifier on the example topologies: lint the DFSSSP
# tables and validate their deadlock-freedom certificates (exit 0 iff
# every target is certified and lint-clean).
lint:
	dune exec bin/fabric_tool.exe -- analyze --minimal ring:8 torus:4x4 tree:4,2 dragonfly:4,2,2

# The full static-analysis sweep (doc/static_analysis.md): route and
# analyze one example of every topology family the spec grammar knows,
# with the existence check and the layer lower bound enabled. Exit 0
# iff every fabric is feasible and every table certifies with zero
# analyzer errors.
analyze-examples:
	dune exec bin/fabric_tool.exe -- analyze --existence --min-layers \
	  ring:8 torus:4x4 hypercube:4 tree:4,2 xgft:2,4/1,2:16 kautz:2,3 \
	  dragonfly:4,2,2 hyperx:3x3 random:8,10,16,14:7

# Route-store / CSR CDG microbenchmark (DESIGN.md §10). Writes
# bench_results/route_store.json; fails if the >= 2x build+cycle-breaking
# speedup or the zero-allocation hot-loop target is missed.
bench-cdg:
	dune exec --profile release bench/cdg_bench.exe

# Static-analyzer cost benchmark (doc/static_analysis.md). Writes
# bench_results/analysis.json; fails if Existence.analyze exceeds 10%
# of the dfsssp route-build time on a 4096-endpoint XGFT.
bench-analysis:
	dune exec --profile release bench/analysis_bench.exe

# Cycle-break engine benchmark (DESIGN.md §17): SCC condensation vs the
# one-cycle-at-a-time DFS oracle, sequential and across domains, with
# per-stage condense/evict/rebuild splits. Writes
# bench_results/cycle_break.json; fails if SCC is under 2x DFS on the
# torus workloads, a layer count drifts past oracle+1, or parallel
# planning falls under 0.9x sequential.
bench-break:
	dune exec --profile release bench/break_bench.exe

# Quick engine-parity mode of the same binary (seconds, no timing
# gates): both engines must agree on layers within +1 on a small torus.
# Part of `check`.
break-smoke:
	dune exec --profile release bench/break_bench.exe -- --quick

# Domain-parallel routing pipeline benchmark (DESIGN.md §12, §15).
# Writes bench_results/routing_parallel.json with sequential vs parallel
# SSSP + cycle-breaking times, per-stage (snapshot/compute) splits, and
# a per-kernel comparison (heap vs bucket vs incremental). Enforced
# gates: parallel SSSP >= 1.0x sequential on every topology, bucket
# >= 1.3x heap on the bucket-gated rows, and the default (Auto) kernel
# within 5% of the fastest. The legacy >= 2x pipeline speedup gate is
# enforced only when >= 4 hardware domains are available, and recorded
# as skipped in the JSON otherwise.
bench-routing:
	dune exec --profile release bench/routing_bench.exe

# Quick kernel-equivalence mode of the same binary (no timing, < 1s):
# routes two small fixtures under every kernel and fails unless tables
# and final weights match the heap oracle bit-for-bit. Part of `check`.
kernel-equivalence:
	dune exec --profile release bench/routing_bench.exe -- --equivalence

# Controller-service throughput/latency gate (DESIGN.md §14). Starts a
# real server in-process and hammers it with 16 client threads under
# topology churn; writes bench_results/service_latency.json. The first
# run records its qps as the baseline; later runs fail below 40% of it.
bench-service:
	dune exec --profile release bench/service_bench.exe

# Daemon smoke test: start `fabric_tool serve` as a real separate
# process, query it over the socket with `fabric_tool client`, apply an
# event, and shut it down cleanly. Guards the ends the in-process soak
# test cannot see: CLI wiring, signal/exit paths, socket unlinking.
smoke-service:
	@set -e; \
	sock=$$(mktemp -u /tmp/fabsvc_smoke_XXXXXX.sock); \
	dune exec bin/fabric_tool.exe -- serve torus:4x4 --socket $$sock & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -f $$sock' EXIT; \
	for i in $$(seq 1 100); do [ -S $$sock ] && break; sleep 0.05; done; \
	[ -S $$sock ] || { echo "smoke-service: daemon never bound $$sock"; exit 1; }; \
	dune exec bin/fabric_tool.exe -- client --socket $$sock ping; \
	dune exec bin/fabric_tool.exe -- client --socket $$sock route 16 31; \
	dune exec bin/fabric_tool.exe -- client --socket $$sock event down 3; \
	dune exec bin/fabric_tool.exe -- client --socket $$sock route 16 31; \
	dune exec bin/fabric_tool.exe -- client --socket $$sock shutdown; \
	wait $$pid; \
	[ ! -e $$sock ] || { echo "smoke-service: socket not unlinked at shutdown"; exit 1; }; \
	trap - EXIT; \
	echo "smoke-service: OK"

# Line-coverage report (doc/observability.md). Every library carries the
# (instrumentation (backend bisect_ppx)) stanza, which is inert unless
# dune is invoked with --instrument-with; the target is skipped cleanly
# when bisect_ppx is not installed (it is not baked into the CI image).
# Enforces a >= 80% floor on lib/obs.
coverage:
	@if ocamlfind query bisect_ppx >/dev/null 2>&1; then \
	  rm -rf _coverage && mkdir -p _coverage; \
	  BISECT_FILE=$$(pwd)/_coverage/bisect dune runtest --force --instrument-with bisect_ppx && \
	  bisect-ppx-report summary --coverage-path _coverage --per-file > _coverage/summary.txt && \
	  cat _coverage/summary.txt && \
	  obs=$$(awk '/lib\/obs\// {gsub(/%/,"",$$1); sum+=$$1; n+=1} END {if (n>0) printf "%.1f", sum/n; else print "0"}' _coverage/summary.txt); \
	  echo "lib/obs mean line coverage: $$obs% (floor: 80%)"; \
	  awk -v v="$$obs" 'BEGIN { exit (v+0 >= 80.0) ? 0 : 1 }' || \
	    { echo "coverage: lib/obs below the 80% floor"; exit 1; }; \
	else \
	  echo "coverage: bisect_ppx not installed; skipping (opam install bisect_ppx)"; \
	fi

doc:
	dune build @doc

clean:
	dune clean
