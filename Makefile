.PHONY: all check test lint doc clean bench-cdg bench-routing

all:
	dune build

# The tier-1 gate: everything compiles (dev and release profiles),
# every test suite passes (runtest includes test_parallel, the 2-domain
# determinism smoke of the parallel routing pipeline), and the routing
# certifier signs off on the example topologies.
check:
	dune build && dune build --profile release && dune runtest && $(MAKE) lint

test: check

# The routing certifier on the example topologies: lint the DFSSSP
# tables and validate their deadlock-freedom certificates (exit 0 iff
# every target is certified and lint-clean).
lint:
	dune exec bin/fabric_tool.exe -- analyze --minimal ring:8 torus:4x4 tree:4,2 dragonfly:4,2,2

# Route-store / CSR CDG microbenchmark (DESIGN.md §10). Writes
# bench_results/route_store.json; fails if the >= 2x build+cycle-breaking
# speedup or the zero-allocation hot-loop target is missed.
bench-cdg:
	dune exec --profile release bench/cdg_bench.exe

# Domain-parallel routing pipeline benchmark (DESIGN.md §12). Writes
# bench_results/routing_parallel.json with sequential vs parallel
# SSSP + cycle-breaking times; the >= 2x pipeline speedup gate is
# enforced only when >= 4 hardware domains are available, and recorded
# as skipped in the JSON otherwise.
bench-routing:
	dune exec --profile release bench/routing_bench.exe

doc:
	dune build @doc

clean:
	dune clean
