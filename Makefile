.PHONY: all check test lint doc clean bench-cdg bench-routing coverage

all:
	dune build

# The tier-1 gate: everything compiles (dev and release profiles),
# every test suite passes (runtest includes test_parallel, the 2-domain
# determinism smoke of the parallel routing pipeline), and the routing
# certifier signs off on the example topologies.
check:
	dune build && dune build --profile release && dune runtest && $(MAKE) lint

test: check

# The routing certifier on the example topologies: lint the DFSSSP
# tables and validate their deadlock-freedom certificates (exit 0 iff
# every target is certified and lint-clean).
lint:
	dune exec bin/fabric_tool.exe -- analyze --minimal ring:8 torus:4x4 tree:4,2 dragonfly:4,2,2

# Route-store / CSR CDG microbenchmark (DESIGN.md §10). Writes
# bench_results/route_store.json; fails if the >= 2x build+cycle-breaking
# speedup or the zero-allocation hot-loop target is missed.
bench-cdg:
	dune exec --profile release bench/cdg_bench.exe

# Domain-parallel routing pipeline benchmark (DESIGN.md §12). Writes
# bench_results/routing_parallel.json with sequential vs parallel
# SSSP + cycle-breaking times; the >= 2x pipeline speedup gate is
# enforced only when >= 4 hardware domains are available, and recorded
# as skipped in the JSON otherwise.
bench-routing:
	dune exec --profile release bench/routing_bench.exe

# Line-coverage report (doc/observability.md). Every library carries the
# (instrumentation (backend bisect_ppx)) stanza, which is inert unless
# dune is invoked with --instrument-with; the target is skipped cleanly
# when bisect_ppx is not installed (it is not baked into the CI image).
# Enforces a >= 80% floor on lib/obs.
coverage:
	@if ocamlfind query bisect_ppx >/dev/null 2>&1; then \
	  rm -rf _coverage && mkdir -p _coverage; \
	  BISECT_FILE=$$(pwd)/_coverage/bisect dune runtest --force --instrument-with bisect_ppx && \
	  bisect-ppx-report summary --coverage-path _coverage --per-file > _coverage/summary.txt && \
	  cat _coverage/summary.txt && \
	  obs=$$(awk '/lib\/obs\// {gsub(/%/,"",$$1); sum+=$$1; n+=1} END {if (n>0) printf "%.1f", sum/n; else print "0"}' _coverage/summary.txt); \
	  echo "lib/obs mean line coverage: $$obs% (floor: 80%)"; \
	  awk -v v="$$obs" 'BEGIN { exit (v+0 >= 80.0) ? 0 : 1 }' || \
	    { echo "coverage: lib/obs below the 80% floor"; exit 1; }; \
	else \
	  echo "coverage: bisect_ppx not installed; skipping (opam install bisect_ppx)"; \
	fi

doc:
	dune build @doc

clean:
	dune clean
