.PHONY: all check test doc clean bench-cdg

all:
	dune build

# The tier-1 gate: everything compiles (dev and release profiles) and
# every test suite passes.
check:
	dune build && dune build --profile release && dune runtest

test: check

# Route-store / CSR CDG microbenchmark (DESIGN.md §10). Writes
# bench_results/route_store.json; fails if the >= 2x build+cycle-breaking
# speedup or the zero-allocation hot-loop target is missed.
bench-cdg:
	dune exec --profile release bench/cdg_bench.exe

doc:
	dune build @doc

clean:
	dune clean
