.PHONY: all check test doc clean

all:
	dune build

# The tier-1 gate: everything compiles and every test suite passes.
check:
	dune build && dune runtest

test: check

doc:
	dune build @doc

clean:
	dune clean
