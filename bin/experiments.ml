(* Run any single experiment from the paper's evaluation by its figure or
   table number, at a chosen scale — the fine-grained companion to
   bench/main.exe, which runs them all. *)

open Cmdliner

let known =
  [
    ("table1", "Table I: topology generator parameters");
    ("fig4", "Fig. 4: eBB on real systems");
    ("fig5", "Fig. 5: eBB on XGFT sweep");
    ("fig6", "Fig. 6: eBB on Kautz sweep");
    ("fig7", "Fig. 7: routing runtime on k-ary n-trees");
    ("fig8", "Fig. 8: routing runtime on real systems");
    ("fig9", "Fig. 9: virtual lanes on random topologies");
    ("fig10", "Fig. 10: virtual lanes on real systems");
    ("heuristics", "Section IV: cycle-breaking heuristic comparison");
    ("fig12", "Fig. 12: Netgauge-style eBB on Deimos");
    ("fig13", "Fig. 13: all-to-all time vs message size");
    ("fig14", "Fig. 14: NAS BT scaling");
    ("fig15", "Fig. 15: NAS SP scaling");
    ("fig16", "Fig. 16: NAS FT scaling");
    ("table2", "Table II: NAS improvements");
  ]

let run name scale patterns max_endpoints trials domains csv_dir =
  let table =
    match String.lowercase_ascii name with
    | "table1" -> Some (Harness.Tableone.table ())
    | "fig4" -> Some (Harness.Fig_bandwidth.fig4 ~scale ~patterns ?domains ())
    | "fig5" -> Some (Harness.Fig_bandwidth.fig5 ~max_endpoints ~patterns ?domains ())
    | "fig6" -> Some (Harness.Fig_bandwidth.fig6 ~max_endpoints ~patterns ?domains ())
    | "fig7" -> Some (Harness.Fig_runtime.fig7 ~max_endpoints ?domains ())
    | "fig8" -> Some (Harness.Fig_runtime.fig8 ~scale ?domains ())
    | "fig9" -> Some (Harness.Fig_vls.fig9 ~trials ())
    | "fig9-full" ->
      Some
        (Harness.Fig_vls.fig9 ~switches:128 ~switch_radix:32 ~terminals_per_switch:16 ~trials ())
    | "fig10" -> Some (Harness.Fig_vls.fig10 ~scale ())
    | "heuristics" -> Some (Harness.Fig_vls.heuristics ~trials ())
    | "fig12" -> Some (Harness.Fig_deimos.fig12 ~scale ~patterns ())
    | "fig13" -> Some (Harness.Fig_deimos.fig13 ~scale ())
    | "fig14" -> Some (Harness.Fig_deimos.fig14 ~scale ())
    | "fig15" -> Some (Harness.Fig_deimos.fig15 ~scale ())
    | "fig16" -> Some (Harness.Fig_deimos.fig16 ~scale ())
    | "table2" -> Some (Harness.Fig_deimos.table2 ~scale ())
    | _ -> None
  in
  match table with
  | None ->
    Printf.eprintf "unknown experiment %S; known:\n" name;
    List.iter (fun (id, doc) -> Printf.eprintf "  %-10s %s\n" id doc) known;
    2
  | Some t ->
    Harness.Report.print t;
    (match csv_dir with
    | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let path = Harness.Report.save_csv ~dir t in
      Printf.printf "wrote %s\n" path
    | None -> ());
    0

let experiment_name =
  let doc = "Experiment id: " ^ String.concat ", " (List.map fst known) ^ " (or fig9-full for the paper-scale Fig. 9)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT" ~doc)

let scale =
  Arg.(
    value & opt int 4
    & info [ "scale" ] ~docv:"N" ~doc:"Divide real-system sizes by $(docv); 1 = full published size.")

let patterns =
  Arg.(value & opt int 50 & info [ "patterns" ] ~docv:"N" ~doc:"Random bisection patterns per bandwidth cell.")

let max_endpoints =
  Arg.(value & opt int 1024 & info [ "max-endpoints" ] ~docv:"N" ~doc:"Largest sweep size for Figs. 5-7.")

let trials =
  Arg.(value & opt int 10 & info [ "trials" ] ~docv:"N" ~doc:"Random topology seeds for Fig. 9 / heuristics.")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Use $(docv) domains: Figs. 4-6 fill their bandwidth grids with a worker pool (identical \
           numbers), Figs. 7-8 time the batched-snapshot routing pipeline; omitted, everything runs \
           sequentially.")

let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc:"Also write the table as CSV into $(docv).")

let cmd =
  let doc = "regenerate one table or figure of the DFSSSP paper" in
  Cmd.v
    (Cmd.info "experiments" ~version:"1.0.0" ~doc)
    Term.(const run $ experiment_name $ scale $ patterns $ max_endpoints $ trials $ domains $ csv)

let () = exit (Cmd.eval' cmd)
