(* Fabric utility belt: generate, inspect, degrade, convert and diff
   fabrics without touching the routing layer — the jobs an operator (or a
   test pipeline) does around the subnet manager. *)

open Cmdliner

let load_spec spec =
  match Harness.Topospec.parse spec with
  | Ok t -> Ok t
  | Error msg -> Error (Printf.sprintf "topology: %s" msg)

let print_info (t : Harness.Topospec.t) =
  let g = t.Harness.Topospec.graph in
  Format.printf "%s@." t.Harness.Topospec.description;
  Format.printf "%a@." Netgraph.Graph.pp_stats g;
  Format.printf "connected: %b@." (Netgraph.Graph.connected g);
  (match Netgraph.Graph.validate g with
  | Ok () -> Format.printf "valid: yes@."
  | Error msg -> Format.printf "valid: NO (%s)@." msg);
  let switches = Netgraph.Graph.switches g in
  if Array.length switches > 0 then begin
    let degrees = Array.map (fun sw -> Netgraph.Graph.degree g sw) switches in
    Array.sort compare degrees;
    Format.printf "switch degree: min=%d median=%d max=%d@." degrees.(0)
      degrees.(Array.length degrees / 2)
      degrees.(Array.length degrees - 1)
  end;
  if Netgraph.Graph.connected g && Netgraph.Graph.num_nodes g <= 2000 then
    Format.printf "diameter: %d@." (Netgraph.Graph.diameter g)

(* info *)
let info_cmd =
  let run spec =
    match load_spec spec with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok t ->
      print_info t;
      0
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  Cmd.v (Cmd.info "info" ~doc:"describe a fabric") Term.(const run $ spec)

(* convert *)
let convert_cmd =
  let run spec out dot =
    match load_spec spec with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok t ->
      let g = t.Harness.Topospec.graph in
      Option.iter
        (fun path ->
          Netgraph.Serial.save path g;
          Format.printf "wrote %s@." path)
        out;
      Option.iter
        (fun path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Netgraph.Serial.to_dot g));
          Format.printf "wrote %s@." path)
        dot;
      if out = None && dot = None then print_string (Netgraph.Serial.to_string g);
      0
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Text format output.") in
  let dot = Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Graphviz output.") in
  Cmd.v
    (Cmd.info "convert" ~doc:"generate a fabric and write it out (stdout text format by default)")
    Term.(const run $ spec $ out $ dot)

(* degrade *)
let degrade_cmd =
  let run spec cables seed out =
    match load_spec spec with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok t ->
      let rng = Netgraph.Rng.create seed in
      let g', removed = Netgraph.Degrade.remove_cables t.Harness.Topospec.graph ~rng ~count:cables in
      Format.printf "removed %d cable(s) (connectivity preserved)@." removed;
      Format.printf "%a@." Netgraph.Graph.pp_stats g';
      (match out with
      | Some path ->
        Netgraph.Serial.save path g';
        Format.printf "wrote %s@." path
      | None -> ());
      0
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  let cables = Arg.(value & opt int 1 & info [ "cables" ] ~docv:"N" ~doc:"Cables to remove.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "degrade" ~doc:"remove random cables while preserving connectivity")
    Term.(const run $ spec $ cables $ seed $ out)

(* diff *)
let diff_cmd =
  let run spec_a spec_b =
    match (load_spec spec_a, load_spec spec_b) with
    | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      2
    | Ok a, Ok b ->
      let ga = a.Harness.Topospec.graph and gb = b.Harness.Topospec.graph in
      let lines g = String.split_on_char '\n' (Netgraph.Serial.to_string g) in
      let set_of g =
        let tbl = Hashtbl.create 256 in
        List.iter (fun l -> if l <> "" then Hashtbl.replace tbl l ()) (lines g);
        tbl
      in
      let sa = set_of ga and sb = set_of gb in
      let only_in name here there =
        let shown = ref 0 in
        Hashtbl.iter
          (fun l () ->
            if not (Hashtbl.mem there l) then begin
              if !shown < 50 then Format.printf "%s %s@." name l;
              incr shown
            end)
          here;
        !shown
      in
      let a_only = only_in "-" sa sb in
      let b_only = only_in "+" sb sa in
      Format.printf "@.%d line(s) only in first, %d only in second@." a_only b_only;
      if a_only = 0 && b_only = 0 then 0 else 1
  in
  let spec_a = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC_A") in
  let spec_b = Arg.(required & pos 1 (some string) None & info [] ~docv:"SPEC_B") in
  Cmd.v
    (Cmd.info "diff" ~doc:"structural diff of two fabrics (canonical text form)")
    Term.(const run $ spec_a $ spec_b)

(* analyze: the routing certifier — route (or load) forwarding tables,
   lint them, and validate a deadlock-freedom certificate. *)
let analyze_cmd =
  let explain_rule rule_id =
    match Analysis.Diag.find_rule rule_id with
    | None ->
      Format.eprintf "unknown rule %s; catalog: %s@." rule_id
        (String.concat ", " (List.map (fun r -> r.Analysis.Diag.id) Analysis.Diag.catalog));
      2
    | Some r ->
      Format.printf "%s (%s)@.%s@.@.%s@." r.Analysis.Diag.id
        (Analysis.Diag.severity_to_string r.Analysis.Diag.severity)
        r.Analysis.Diag.title (Analysis.Diag.explain r);
      0
  in
  let existence_json target ex =
    let open Analysis.Existence in
    let cores =
      String.concat ","
        (List.map
           (fun c ->
             Printf.sprintf {|{"length":%d,"hosts":%d,"bound":%d}|} (Array.length c.cycle)
               (Array.length c.hosts) c.bound)
           ex.cores)
    in
    Printf.sprintf
      {|{"target":"%s","existence":true,"min_layers_lb":%d,"unreachable":%s,"cores":[%s]}|}
      (Analysis.Diag.json_escape target) ex.min_layers_lb
      (match ex.unreachable with
      | Some (s, d) -> Printf.sprintf {|{"src":%d,"dst":%d}|} s d
      | None -> "null")
      cores
  in
  let run specs tables algorithm max_layers json minimal slack cert_out existence min_layers
      witness_out explain =
    match explain with
    | Some rule_id -> explain_rule rule_id
    | None ->
    let hop_budget =
      if minimal then Some `Minimal
      else Option.map (fun n -> `Slack n) slack
    in
    let analyze_table target ft =
      let report = Analysis.Analyzer.analyze ?hop_budget ft in
      if json then print_endline (Analysis.Analyzer.to_json ~target report)
      else Format.printf "== %s ==@.%a@.@." target Analysis.Analyzer.pp report;
      let g = Routing.Ftable.graph ft in
      let ex =
        if existence || min_layers || witness_out <> None then Some (Analysis.Existence.analyze g)
        else None
      in
      Option.iter
        (fun ex ->
          let open Analysis.Existence in
          (* under --json the report and existence objects already carry
             min_layers_lb; keep stdout pure JSON *)
          if min_layers && not json then
            Format.printf "%s: min layers >= %d, achieved %d (slack %d)@." target ex.min_layers_lb
              (Routing.Ftable.num_layers ft)
              (Routing.Ftable.num_layers ft - ex.min_layers_lb);
          if existence then
            if json then print_endline (existence_json target ex)
            else begin
              (match ex.unreachable with
              | Some (s, d) ->
                Format.printf "%s: INFEASIBLE: terminal %d cannot reach terminal %d@." target s d
              | None -> Format.printf "%s: feasible, min layers >= %d@." target ex.min_layers_lb);
              List.iter
                (fun c ->
                  Format.printf "  core: %d channels, %d hosts, forces >= %d layer(s)@."
                    (Array.length c.cycle) (Array.length c.hosts) c.bound)
                ex.cores
            end)
        ex;
      Option.iter
        (fun path ->
          let w =
            match ex with
            | Some ({ min_layers_lb; cores = core :: _; _ } : Analysis.Existence.t)
              when min_layers_lb > Routing.Ftable.num_layers ft ->
              Analysis.Witness.of_core g core
            | _ -> (
              match report.Analysis.Analyzer.verdict with
              | Analysis.Analyzer.Certified _ ->
                Error "table is certified and its layer budget feasible; nothing to witness"
              | Analysis.Analyzer.Rejected _ -> (
                match Analysis.Witness.of_table ft with
                | Ok (Some w) -> Ok w
                | Ok None -> Error "rejection is not a layer cycle; no cycle witness exists"
                | Error msg -> Error msg))
          in
          match w with
          | Error msg -> Format.eprintf "%s: no witness written: %s@." target msg
          | Ok w -> (
            let recheck =
              match w.Analysis.Witness.kind with
              | Analysis.Witness.Layer_cycle _ -> Analysis.Witness.check_table w ft
              | Analysis.Witness.Topology_core _ -> Analysis.Witness.check_graph w g
            in
            match recheck with
            | Error msg -> Format.eprintf "%s: generated witness failed its re-check: %s@." target msg
            | Ok () ->
              Out_channel.with_open_text path (fun oc ->
                  Out_channel.output_string oc (Analysis.Witness.to_string w));
              if not json then Format.printf "wrote %s (trusted re-check passed)@." path))
        witness_out;
      Option.iter
        (fun path ->
          match report.Analysis.Analyzer.verdict with
          | Analysis.Analyzer.Certified cert ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Analysis.Cert.to_string cert));
            if not json then Format.printf "wrote %s@." path
          | Analysis.Analyzer.Rejected _ ->
            Format.eprintf "%s: no certificate to write (rejected)@." target)
        cert_out;
      Analysis.Analyzer.ok report
    in
    let outcomes =
      List.map
        (fun spec ->
          match load_spec spec with
          | Error msg ->
            prerr_endline msg;
            None
          | Ok t -> (
            match
              Harness.Runs.run_named ?coords:t.Harness.Topospec.coords ~max_layers algorithm
                t.Harness.Topospec.graph
            with
            | Error msg ->
              Format.eprintf "%s: %s refused: %s@." spec algorithm msg;
              None
            | Ok ft -> Some (analyze_table spec ft)))
        specs
      @ List.map
          (fun path ->
            match Routing.Ftable_io.load path with
            | Error msg ->
              Format.eprintf "%s: %s@." path msg;
              None
            | Ok ft -> Some (analyze_table path ft))
          tables
    in
    if outcomes = [] then begin
      prerr_endline "analyze: no SPEC or --table given";
      2
    end
    else if List.mem None outcomes then 2
    else if List.for_all (fun o -> o = Some true) outcomes then 0
    else 1
  in
  let specs = Arg.(value & pos_all string [] & info [] ~docv:"SPEC") in
  let tables =
    Arg.(
      value & opt_all string []
      & info [ "table" ] ~docv:"FILE" ~doc:"Analyze a saved routing artifact (Ftable_io format).")
  in
  let algorithm =
    Arg.(value & opt string "dfsssp" & info [ "algorithm" ] ~docv:"NAME" ~doc:"Routing algorithm for SPEC targets.")
  in
  let max_layers =
    Arg.(value & opt int 8 & info [ "max-layers" ] ~docv:"K" ~doc:"Virtual layer budget for SPEC targets.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"One JSON object per target instead of text.") in
  let minimal =
    Arg.(value & flag & info [ "minimal" ] ~doc:"Enable A006: flag routes longer than shortest-path.")
  in
  let slack =
    Arg.(
      value
      & opt (some int) None
      & info [ "slack" ] ~docv:"N" ~doc:"Enable A006 with N extra hops allowed over shortest-path.")
  in
  let cert_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert" ] ~docv:"FILE" ~doc:"Write the (last certified target's) certificate to FILE.")
  in
  let existence =
    Arg.(
      value & flag
      & info [ "existence" ]
          ~doc:
            "Print the topology-level existence analysis per target: feasibility, provable layer \
             minimum, and the clean cores forcing it.")
  in
  let min_layers =
    Arg.(
      value & flag
      & info [ "min-layers" ]
          ~doc:"Print the provable layer lower bound against the achieved layer count per target.")
  in
  let witness_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness" ] ~docv:"FILE"
          ~doc:
            "On a cyclic layer or an infeasible layer budget, write a minimized counterexample \
             witness to FILE (validated by the trusted re-check before writing).")
  in
  let explain =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"RULE-ID"
          ~doc:"Print the catalog entry and remediation for a rule (e.g. A009-layer-budget-infeasible) and exit.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"lint forwarding tables and check their deadlock-freedom certificate (exit 0 iff all certified and lint-clean)")
    Term.(
      const run $ specs $ tables $ algorithm $ max_layers $ json $ minimal $ slack $ cert_out
      $ existence $ min_layers $ witness_out $ explain)

(* Schedule source shared by manage and trace: a file to replay, or a
   generated mix of cable faults, switch removals and drains. *)
let load_schedule g ~schedule_file ~seed ~events ~removals ~drains =
  match schedule_file with
  | Some path -> (
    match Fabric.Schedule.of_string (In_channel.with_open_text path In_channel.input_all) with
    | Ok s -> Ok s
    | Error msg -> Error (Printf.sprintf "schedule %s: %s" path msg))
  | None ->
    let rng = Netgraph.Rng.create seed in
    Ok (Fabric.Schedule.generate g ~rng ~events ~switch_removals:removals ~drains ~up_fraction:0.35 ())

(* The combined stats snapshot: the manager's own registry plus the
   process-wide one (sssp/layers/analysis/pool counters). *)
let stats_json mgr =
  Obs.Json.Obj
    [
      ("manager", Fabric.Metrics.to_json (Fabric.Manager.metrics mgr));
      ("process", Obs.Registry.to_json (Obs.Registry.default ()));
    ]

let write_stats_json mgr path =
  let s = Obs.Json.to_string (stats_json mgr) in
  if path = "-" then print_endline s
  else begin
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc s;
        Out_channel.output_char oc '\n');
    Format.printf "wrote %s@." path
  end

(* Shared by manage and serve: the shortest-path kernel behind full
   recomputes and incremental repairs (DESIGN.md §15). *)
let kernel_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Routing.Spf.kind_of_string s) in
  Arg.conv (parse, Routing.Spf.pp_kind)

let kernel_arg =
  Arg.(
    value
    & opt kernel_conv Routing.Spf.Auto
    & info [ "kernel" ] ~docv:"KERNEL"
        ~doc:
          "Shortest-path kernel for routing computations: auto, heap (binary-heap oracle), bucket \
           (Dial bucket queue), or incremental (switch-tree reuse). Kernel choice never changes \
           the tables.")

let engine_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Deadlock.Layers.engine_of_string s) in
  let pp ppf e = Format.pp_print_string ppf (Deadlock.Layers.engine_to_string e) in
  Arg.conv (parse, pp)

let engine_arg =
  Arg.(
    value
    & opt engine_conv `Scc
    & info [ "break-engine" ] ~docv:"ENGINE"
        ~doc:
          "Cycle-break engine for full recomputes: scc (SCC condensation, the default) or dfs \
           (the one-cycle-at-a-time oracle). Layer counts stay within one layer of each other \
           (DESIGN.md section 17).")

(* manage: the live fabric manager — replay a fault schedule and report
   convergence after every event. *)
let manage_cmd =
  let run spec events seed schedule_file removals drains algorithm max_layers layer_budget
      repair_fraction batch domains kernel engine print_schedule stats_out =
    let layer_budget = Option.value ~default:max_layers layer_budget in
    (* --batch unset: snapshot in recommended batches when the pipeline
       is on (--domains > 1), stay on the sequential recurrence
       otherwise. *)
    let batch =
      match batch with
      | Some b -> b
      | None -> if domains > 1 then Routing.Sssp.recommended_batch else 1
    in
    if max_layers < 1 || layer_budget < 1 then begin
      prerr_endline "manage: --max-layers and --layer-budget must be at least 1";
      2
    end
    else if repair_fraction < 0.0 || repair_fraction > 1.0 then begin
      prerr_endline "manage: --repair-fraction must be within [0, 1]";
      2
    end
    else if batch < 1 || domains < 1 then begin
      prerr_endline "manage: --batch and --domains must be at least 1";
      2
    end
    else
      match load_spec spec with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok t -> (
        let g = t.Harness.Topospec.graph in
        let config =
          {
            Fabric.Manager.algorithm;
            max_layers;
            layer_budget;
            repair_fraction;
            batch;
            domains;
            kernel;
            engine;
          }
        in
      match load_schedule g ~schedule_file ~seed ~events ~removals ~drains with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok schedule -> (
        match Fabric.Manager.create ~config g with
        | Error msg ->
          Format.eprintf "initial routing failed: %s@." msg;
          1
        | Ok mgr ->
          (* the pool and trace sinks are torn down even when a replay
             raises — a crashed run must not leak worker domains *)
          Fun.protect ~finally:(fun () -> Fabric.Manager.shutdown mgr) @@ fun () ->
          Format.printf "%s@.%a@.initial tables: epoch %d (%s, %d max layers)@.@." t.Harness.Topospec.description
            Netgraph.Graph.pp_stats g (Fabric.Manager.epoch mgr) algorithm max_layers;
          if print_schedule then
            Format.printf "schedule (%d event(s)):@.%s@." (List.length schedule)
              (Fabric.Schedule.to_string schedule);
          List.iteri
            (fun i ev ->
              let o = Fabric.Manager.apply mgr ev in
              Format.printf "[%2d] %a@." (i + 1) Fabric.Manager.pp_outcome o)
            schedule;
          Format.printf "@.convergence report@.%a@." Fabric.Manager.pp_summary mgr;
          let code =
            if Fabric.Manager.converged mgr then begin
              Format.printf "converged: every applied event ended in a verified table swap@.";
              0
            end
            else begin
              Format.printf "NOT CONVERGED: some applied event left unverified tables@.";
              1
            end
          in
          Option.iter (write_stats_json mgr) stats_out;
          code))
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  let events =
    Arg.(value & opt int 10 & info [ "events" ] ~docv:"N" ~doc:"Generated schedule length.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let schedule_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Replay this schedule file (one \"down/up/drain/remove <id>\" per line) instead of generating one.")
  in
  let removals =
    Arg.(value & opt int 1 & info [ "switch-removals" ] ~docv:"N" ~doc:"Switch removals to schedule.")
  in
  let drains =
    Arg.(value & opt int 0 & info [ "drains" ] ~docv:"N" ~doc:"Switch drains to schedule.")
  in
  let algorithm =
    Arg.(
      value & opt string "dfsssp"
      & info [ "algorithm" ] ~docv:"NAME"
          ~doc:"Routing algorithm for full recomputes; only dfsssp repairs incrementally.")
  in
  let max_layers =
    Arg.(value & opt int 8 & info [ "max-layers" ] ~docv:"K" ~doc:"Virtual layer budget.")
  in
  let layer_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "layer-budget" ] ~docv:"K"
          ~doc:"Layers the incremental path may use before falling back (default: max-layers).")
  in
  let repair_fraction =
    Arg.(
      value & opt float 0.5
      & info [ "repair-fraction" ] ~docv:"F"
          ~doc:"Max fraction of destinations repaired incrementally; above it, full recompute.")
  in
  let batch =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"B"
          ~doc:
            "Destinations per weight snapshot in full recomputes (default: the recommended batch \
             when --domains > 1, else 1 = the sequential recurrence).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D"
          ~doc:"Routing domains for full recomputes (a persistent worker pool when > 1).")
  in
  let print_schedule =
    Arg.(value & flag & info [ "print-schedule" ] ~doc:"Echo the schedule before replaying it.")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Write the manager + process observability registries as JSON to FILE (\"-\" = stdout).")
  in
  Cmd.v
    (Cmd.info "manage"
       ~doc:"run the live fabric manager over a fault schedule and print a convergence report")
    Term.(
      const run $ spec $ events $ seed $ schedule_file $ removals $ drains $ algorithm $ max_layers
      $ layer_budget $ repair_fraction $ batch $ domains $ kernel_arg $ engine_arg
      $ print_schedule $ stats_out)

(* trace: the manage path again, but with observability enabled and a
   JSON-lines span sink — one compact JSON object per span, innermost
   first. Progress goes to stderr so "--out -" stays machine-readable. *)
let trace_cmd =
  let run spec events seed schedule_file removals drains algorithm max_layers out stats_out =
    match load_spec spec with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok t -> (
      let g = t.Harness.Topospec.graph in
      match load_schedule g ~schedule_file ~seed ~events ~removals ~drains with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok schedule ->
        let oc, close =
          if out = "-" then (stdout, fun () -> flush stdout)
          else
            let oc = open_out out in
            (oc, fun () -> close_out oc)
        in
        Obs.Control.set_enabled true;
        Obs.Trace.set_sink (Some (Obs.Trace.channel_sink oc));
        (* sink removal (which flushes), channel close and pool release
           run on every exit path — an exception mid-replay must not
           truncate the JSON-lines trace or leak domains *)
        let code =
          Fun.protect
            ~finally:(fun () ->
              Obs.Trace.set_sink None;
              Obs.Control.set_enabled false;
              close ())
          @@ fun () ->
          match
            Fabric.Manager.create
              ~config:{ Fabric.Manager.default_config with algorithm; max_layers }
              g
          with
          | Error msg ->
            Format.eprintf "initial routing failed: %s@." msg;
            1
          | Ok mgr ->
            Fun.protect ~finally:(fun () -> Fabric.Manager.shutdown mgr) @@ fun () ->
            let outcomes = Fabric.Manager.run mgr schedule in
            Format.eprintf "replayed %d event(s), epoch %d, %s@." (List.length outcomes)
              (Fabric.Manager.epoch mgr)
              (if Fabric.Manager.converged mgr then "converged" else "NOT CONVERGED");
            Option.iter (write_stats_json mgr) stats_out;
            if Fabric.Manager.converged mgr then 0 else 1
        in
        (if out <> "-" then Format.eprintf "wrote %s@." out);
        code)
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  let events =
    Arg.(value & opt int 10 & info [ "events" ] ~docv:"N" ~doc:"Generated schedule length.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let schedule_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE" ~doc:"Replay this schedule file instead of generating one.")
  in
  let removals =
    Arg.(value & opt int 1 & info [ "switch-removals" ] ~docv:"N" ~doc:"Switch removals to schedule.")
  in
  let drains =
    Arg.(value & opt int 0 & info [ "drains" ] ~docv:"N" ~doc:"Switch drains to schedule.")
  in
  let algorithm =
    Arg.(value & opt string "dfsssp" & info [ "algorithm" ] ~docv:"NAME" ~doc:"Routing algorithm.")
  in
  let max_layers =
    Arg.(value & opt int 8 & info [ "max-layers" ] ~docv:"K" ~doc:"Virtual layer budget.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Span destination, one JSON object per line (\"-\" = stdout).")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Also write the observability registries as JSON to FILE (\"-\" = stdout).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"replay a fault schedule with tracing enabled, emitting JSON-lines spans")
    Term.(
      const run $ spec $ events $ seed $ schedule_file $ removals $ drains $ algorithm $ max_layers
      $ out $ stats_out)

(* Shared by serve and client: where the daemon listens. --tcp wins over
   --socket when both are given. *)
let resolve_addr ~socket ~tcp ~host =
  match tcp with
  | Some port -> Service.Proto.Tcp (host, port)
  | None -> Service.Proto.Unix_path socket

let socket_arg =
  Arg.(
    value & opt string "fabric.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"Listen on (or connect to) TCP PORT instead of a Unix socket.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with --tcp).")

(* serve: the long-running controller daemon — the fabric manager behind
   a socket, serving route queries, topology events, analyzer reports
   and observability snapshots to many concurrent clients. *)
let serve_cmd =
  let run spec socket tcp host replace queue_depth max_frame trace_capacity algorithm max_layers
      layer_budget repair_fraction batch domains kernel engine =
    let layer_budget = Option.value ~default:max_layers layer_budget in
    let batch =
      match batch with
      | Some b -> b
      | None -> if domains > 1 then Routing.Sssp.recommended_batch else 1
    in
    if max_layers < 1 || layer_budget < 1 || batch < 1 || domains < 1 || queue_depth < 1 then begin
      prerr_endline "serve: --max-layers, --layer-budget, --batch, --domains and --queue-depth must be at least 1";
      2
    end
    else
      match load_spec spec with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok t -> (
        let addr = resolve_addr ~socket ~tcp ~host in
        (match addr with
        | Service.Proto.Unix_path p when replace && Sys.file_exists p -> Unix.unlink p
        | _ -> ());
        let config =
          {
            Service.Server.default_config with
            addr;
            queue_depth;
            max_frame;
            trace_capacity;
            manager =
              {
                Fabric.Manager.algorithm;
                max_layers;
                layer_budget;
                repair_fraction;
                batch;
                domains;
                kernel;
                engine;
              };
          }
        in
        match Service.Server.create ~config t.Harness.Topospec.graph with
        | Error msg ->
          prerr_endline msg;
          1
        | Ok server ->
          (* SIGINT/SIGTERM reach the same graceful drain as a shutdown
             request; SIGPIPE must not kill a daemon writing to a
             vanished client *)
          (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
          let on_signal _ = Service.Server.stop server in
          (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
           with Invalid_argument _ -> ());
          (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
           with Invalid_argument _ -> ());
          Format.printf "%s@.%a@.serving on %s (epoch %d, queue depth %d)@."
            t.Harness.Topospec.description Netgraph.Graph.pp_stats t.Harness.Topospec.graph
            (Service.Proto.addr_to_string (Service.Server.addr server))
            (Fabric.Manager.epoch (Service.Server.manager server))
            queue_depth;
          Format.print_flush ();
          Service.Server.serve server;
          let m = Service.Server.metrics server in
          Format.printf "served %d request(s) over %d connection(s): %d route quer(ies), %d event(s) in %d batch(es), %d busy repl(ies)@."
            (Obs.Counter.value m.Service.Metrics.requests)
            (Obs.Counter.value m.Service.Metrics.connections)
            (Obs.Counter.value m.Service.Metrics.route_queries)
            (Obs.Counter.value m.Service.Metrics.events_applied)
            (Obs.Counter.value m.Service.Metrics.event_batches)
            (Obs.Counter.value m.Service.Metrics.busy_replies);
          0)
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  let replace =
    Arg.(value & flag & info [ "replace" ] ~doc:"Unlink an existing Unix socket path before binding.")
  in
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Admission queue bound for topology events; beyond it clients get busy replies.")
  in
  let max_frame =
    Arg.(
      value
      & opt int Service.Proto.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Refuse request frames larger than BYTES.")
  in
  let trace_capacity =
    Arg.(
      value & opt int 512
      & info [ "trace-capacity" ] ~docv:"N"
          ~doc:"Keep the most recent N trace spans for the trace op (0 disables).")
  in
  let algorithm =
    Arg.(
      value & opt string "dfsssp"
      & info [ "algorithm" ] ~docv:"NAME" ~doc:"Routing algorithm for full recomputes.")
  in
  let max_layers =
    Arg.(value & opt int 8 & info [ "max-layers" ] ~docv:"K" ~doc:"Virtual layer budget.")
  in
  let layer_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "layer-budget" ] ~docv:"K"
          ~doc:"Layers the incremental path may use before falling back (default: max-layers).")
  in
  let repair_fraction =
    Arg.(
      value & opt float 0.5
      & info [ "repair-fraction" ] ~docv:"F"
          ~doc:"Max fraction of destinations repaired incrementally.")
  in
  let batch =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"B" ~doc:"Destinations per weight snapshot in full recomputes.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D" ~doc:"Routing domains for full recomputes.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "run the fabric controller daemon: topology events, route-table queries, analyzer and \
          stats served to concurrent clients over a socket")
    Term.(
      const run $ spec $ socket_arg $ tcp_arg $ host_arg $ replace $ queue_depth $ max_frame
      $ trace_capacity $ algorithm $ max_layers $ layer_budget $ repair_fraction $ batch $ domains
      $ kernel_arg $ engine_arg)

(* client: one-shot requests, schedule replay and raw JSON scripting
   against a running daemon. *)
let client_cmd =
  let pp_json j = print_endline (Obs.Json.to_string j) in
  let run socket tcp host schedule_file script_file limit op_args =
    let addr = resolve_addr ~socket ~tcp ~host in
    let with_client f =
      match Service.Client.with_connect addr f with
      | Ok code -> code
      | Error msg ->
        prerr_endline msg;
        2
    in
    let replay_schedule path =
      match Fabric.Schedule.of_string (In_channel.with_open_text path In_channel.input_all) with
      | Error msg ->
        prerr_endline (path ^ ": " ^ msg);
        2
      | Ok schedule ->
        with_client @@ fun c ->
        let failures = ref 0 in
        List.iteri
          (fun i ev ->
            (* scripted mode honors backpressure: a busy reply is retried
               after a short pause, never dropped silently *)
            let rec attempt retries =
              match Service.Client.event c ev with
              | Error msg ->
                incr failures;
                Format.printf "[%2d] %s: ERROR %s@." (i + 1) (Fabric.Event.to_string ev) msg
              | Ok (Service.Client.Busy { queue_depth }) ->
                if retries >= 50 then begin
                  incr failures;
                  Format.printf "[%2d] %s: still busy after %d retries (queue %d)@." (i + 1)
                    (Fabric.Event.to_string ev) retries queue_depth
                end
                else begin
                  Unix.sleepf 0.05;
                  attempt (retries + 1)
                end
              | Ok (Service.Client.Applied { epoch; applied; action; note; _ }) ->
                Format.printf "[%2d] %s: %s%s epoch %d%s@." (i + 1) (Fabric.Event.to_string ev)
                  action
                  (if applied then "" else " (rejected)")
                  epoch
                  (if note = "" then "" else " — " ^ note)
            in
            attempt 0)
          schedule;
        Ok (if !failures = 0 then 0 else 1)
    in
    let replay_script path =
      with_client @@ fun c ->
      let failures = ref 0 in
      In_channel.with_open_text path (fun ic ->
          let rec go i =
            match In_channel.input_line ic with
            | None -> ()
            | Some line when String.trim line = "" || (String.trim line).[0] = '#' -> go i
            | Some line ->
              (match Service.Client.call_raw c line with
              | Ok reply -> print_endline reply
              | Error msg ->
                incr failures;
                Format.eprintf "line %d: %s@." i msg);
              go (i + 1)
          in
          go 1);
      Ok (if !failures = 0 then 0 else 1)
    in
    match (schedule_file, script_file, op_args) with
    | Some path, None, [] -> replay_schedule path
    | None, Some path, [] -> replay_script path
    | Some _, Some _, _ ->
      prerr_endline "client: --schedule and --script are mutually exclusive";
      2
    | (Some _, None, _ :: _) | (None, Some _, _ :: _) ->
      prerr_endline "client: give either an OP or --schedule/--script, not both";
      2
    | None, None, [] ->
      prerr_endline "client: no OP given (try ping, route SRC DST, event EV, stats, trace, analyze, epoch, shutdown)";
      2
    | None, None, op :: args -> (
      with_client @@ fun c ->
      match (op, args) with
      | "ping", [] -> (
        match Service.Client.ping c with
        | Ok epoch ->
          Format.printf "ok: epoch %d@." epoch;
          Ok 0
        | Error msg -> Error msg)
      | "route", [ src; dst ] -> (
        match (int_of_string_opt src, int_of_string_opt dst) with
        | Some src, Some dst -> (
          match Service.Client.route c ~src ~dst with
          | Ok r ->
            Format.printf "epoch %d, layer %d/%d, %d hop(s): %s@." r.Service.Client.epoch
              r.Service.Client.layer r.Service.Client.layers
              (Array.length r.Service.Client.path)
              (String.concat " "
                 (Array.to_list (Array.map string_of_int r.Service.Client.path)));
            Ok 0
          | Error msg -> Error msg)
        | _ -> Error "route: SRC and DST must be integers")
      | "event", ev_words when ev_words <> [] -> (
        match Fabric.Event.of_string (String.concat " " ev_words) with
        | Error msg -> Error msg
        | Ok ev -> (
          match Service.Client.event c ev with
          | Ok (Service.Client.Applied { epoch; applied; action; note; _ }) ->
            Format.printf "%s: %s%s epoch %d%s@." (Fabric.Event.to_string ev) action
              (if applied then "" else " (rejected)")
              epoch
              (if note = "" then "" else " — " ^ note);
            Ok 0
          | Ok (Service.Client.Busy { queue_depth }) ->
            Format.printf "busy: admission queue full (%d pending)@." queue_depth;
            Ok 3
          | Error msg -> Error msg))
      | "stats", [] -> (
        match Service.Client.stats c with
        | Ok j ->
          pp_json j;
          Ok 0
        | Error msg -> Error msg)
      | "trace", [] -> (
        match Service.Client.trace ?limit c with
        | Ok spans ->
          List.iter pp_json spans;
          Ok 0
        | Error msg -> Error msg)
      | "analyze", [] -> (
        match Service.Client.analyze c with
        | Ok (certified, report) ->
          pp_json report;
          Ok (if certified then 0 else 1)
        | Error msg -> Error msg)
      | "epoch", [] -> (
        match Service.Client.epoch_history c with
        | Ok entries ->
          List.iter (fun (e, label) -> Format.printf "epoch %2d: %s@." e label) entries;
          Ok 0
        | Error msg -> Error msg)
      | "shutdown", [] -> (
        match Service.Client.shutdown c with
        | Ok () ->
          Format.printf "server shutting down@.";
          Ok 0
        | Error msg -> Error msg)
      | op, _ -> Error (Printf.sprintf "unknown or malformed op %S" op))
  in
  let schedule_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Replay this schedule file as event requests over the wire (retrying on busy).")
  in
  let script_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:"Send each non-comment line of FILE as a raw JSON request; print each reply.")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Max spans for the trace op.")
  in
  let op_args = Arg.(value & pos_all string [] & info [] ~docv:"OP") in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "talk to a running fabric controller daemon: one-shot ops (ping, route SRC DST, event EV, \
          stats, trace, analyze, epoch, shutdown), schedule replay, or raw JSON scripting")
    Term.(const run $ socket_arg $ tcp_arg $ host_arg $ schedule_file $ script_file $ limit $ op_args)

(* import: foreign topology files -> validated fabrics *)
let import_cmd =
  let run path format strict terminals out dot =
    let format =
      match String.lowercase_ascii format with
      | "auto" -> None
      | "dot" -> Some Netgraph.Topo_import.Dot
      | "edgelist" -> Some Netgraph.Topo_import.Edge_list
      | other ->
        prerr_endline (Printf.sprintf "unknown format %S (want auto|dot|edgelist)" other);
        exit 2
    in
    let mode = if strict then Netgraph.Topo_import.Strict else Netgraph.Topo_import.Lenient in
    match Netgraph.Topo_import.load ~mode ?format ~terminals_per_switch:terminals path with
    | Error msg ->
      prerr_endline (Printf.sprintf "%s: %s" path msg);
      2
    | Ok imported ->
      let g = imported.Netgraph.Topo_import.graph in
      List.iter
        (fun (d : Netgraph.Topo_import.diag) ->
          Format.printf "repair (line %d): %s@." d.Netgraph.Topo_import.line
            d.Netgraph.Topo_import.message)
        imported.Netgraph.Topo_import.diags;
      if imported.Netgraph.Topo_import.dropped_nodes > 0 then
        Format.printf "dropped %d node(s) outside the largest component@."
          imported.Netgraph.Topo_import.dropped_nodes;
      Format.printf "%a@." Netgraph.Graph.pp_stats g;
      (match Netgraph.Graph.validate g with
      | Ok () -> Format.printf "valid: yes@."
      | Error msg -> Format.printf "valid: NO (%s)@." msg);
      Option.iter
        (fun p ->
          Netgraph.Serial.save p g;
          Format.printf "wrote %s@." p)
        out;
      Option.iter
        (fun p ->
          Out_channel.with_open_text p (fun oc ->
              Out_channel.output_string oc (Netgraph.Topo_import.write_dot g));
          Format.printf "wrote %s@." p)
        dot;
      0
  in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let format =
    Arg.(
      value
      & opt string "auto"
      & info [ "format" ] ~docv:"FMT" ~doc:"Input format: auto (sniff), dot or edgelist.")
  in
  let strict =
    Arg.(
      value
      & flag
      & info [ "strict" ]
          ~doc:"Reject files needing repair (duplicates, self loops, disconnection) instead of fixing them.")
  in
  let terminals =
    Arg.(
      value
      & opt int 1
      & info [ "terminals" ] ~docv:"N"
          ~doc:"Synthetic terminals per switch when the file declares none.")
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Text format output.") in
  let dot = Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Round-trip DOT output.") in
  Cmd.v
    (Cmd.info "import"
       ~doc:"import a DOT or edge-list topology file, repairing or rejecting quirks")
    Term.(const run $ path $ format $ strict $ terminals $ out $ dot)

(* zoo: corpus + generator conformance battery *)
let zoo_cmd =
  let run dir extra_specs generators_only =
    let corpus =
      if generators_only then []
      else
        match (dir, Harness.Zoo.find_corpus_dir ()) with
        | Some d, _ -> Harness.Zoo.corpus_specs ~dir:d
        | None, Some d -> Harness.Zoo.corpus_specs ~dir:d
        | None, None ->
          prerr_endline "no corpus directory found (looked for examples/zoo); use --dir";
          exit 2
    in
    let specs = corpus @ Harness.Zoo.generator_specs @ extra_specs in
    let subjects = Harness.Zoo.run ~specs () in
    Format.printf "%a" Harness.Zoo.pp_summary subjects;
    if Harness.Zoo.failures subjects = [] then 0 else 1
  in
  let dir =
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc:"Corpus directory (default: examples/zoo).")
  in
  let extra =
    Arg.(value & opt_all string [] & info [ "spec" ] ~docv:"SPEC" ~doc:"Additional topology spec to include.")
  in
  let generators_only =
    Arg.(value & flag & info [ "generators-only" ] ~doc:"Skip the file corpus; only the seeded generator samples.")
  in
  Cmd.v
    (Cmd.info "zoo"
       ~doc:
         "run the topology-zoo conformance battery: every corpus file and generator sample \
          through the full registry, certifier, existence bounds and kernel/engine parity")
    Term.(const run $ dir $ extra $ generators_only)

(* soak: long-haul churn against the live manager *)
let soak_cmd =
  let run specs events seed removals drains max_layers artifact_dir =
    if specs = [] then begin
      prerr_endline "soak: need at least one topology SPEC";
      exit 2
    end;
    let config =
      { Fabric.Manager.default_config with max_layers; layer_budget = max_layers }
    in
    let results =
      Harness.Soak.run ~config ?switch_removals:removals ?drains ~artifact_dir ~specs ~seed
        ~events ()
    in
    Format.printf "%a" Harness.Soak.pp_summary results;
    if Harness.Soak.failures results = [] then 0 else 1
  in
  let specs = Arg.(value & pos_all string [] & info [] ~docv:"SPEC") in
  let events = Arg.(value & opt int 200 & info [ "events" ] ~docv:"N" ~doc:"Churn events per spec.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Schedule seed (reproduces a failing run).") in
  let removals =
    Arg.(value & opt (some int) None & info [ "removals" ] ~docv:"N" ~doc:"Switch removals (default events/20).")
  in
  let drains =
    Arg.(value & opt (some int) None & info [ "drains" ] ~docv:"N" ~doc:"Switch drains (default events/10).")
  in
  let max_layers = Arg.(value & opt int 8 & info [ "max-layers" ] ~docv:"N") in
  let artifact_dir =
    Arg.(
      value
      & opt string (Filename.concat "_build" "soak")
      & info [ "artifact-dir" ] ~docv:"DIR" ~doc:"Where failing runs dump reproduction artifacts.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "churn soak: drive the fabric manager through a seeded schedule of failures, recoveries, \
          drains and removals, recertifying every epoch swap; failures dump a reproduction artifact")
    Term.(const run $ specs $ events $ seed $ removals $ drains $ max_layers $ artifact_dir)

let () =
  let doc = "fabric generation, inspection and conversion utilities" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "fabric_tool" ~version:"1.0.0" ~doc)
          [
            info_cmd;
            convert_cmd;
            degrade_cmd;
            diff_cmd;
            import_cmd;
            zoo_cmd;
            soak_cmd;
            analyze_cmd;
            manage_cmd;
            trace_cmd;
            serve_cmd;
            client_cmd;
          ]))
