(* Fabric utility belt: generate, inspect, degrade, convert and diff
   fabrics without touching the routing layer — the jobs an operator (or a
   test pipeline) does around the subnet manager. *)

open Cmdliner

let load_spec spec =
  match Harness.Topospec.parse spec with
  | Ok t -> Ok t
  | Error msg -> Error (Printf.sprintf "topology: %s" msg)

let print_info (t : Harness.Topospec.t) =
  let g = t.Harness.Topospec.graph in
  Format.printf "%s@." t.Harness.Topospec.description;
  Format.printf "%a@." Netgraph.Graph.pp_stats g;
  Format.printf "connected: %b@." (Netgraph.Graph.connected g);
  (match Netgraph.Graph.validate g with
  | Ok () -> Format.printf "valid: yes@."
  | Error msg -> Format.printf "valid: NO (%s)@." msg);
  let switches = Netgraph.Graph.switches g in
  if Array.length switches > 0 then begin
    let degrees = Array.map (fun sw -> Netgraph.Graph.degree g sw) switches in
    Array.sort compare degrees;
    Format.printf "switch degree: min=%d median=%d max=%d@." degrees.(0)
      degrees.(Array.length degrees / 2)
      degrees.(Array.length degrees - 1)
  end;
  if Netgraph.Graph.connected g && Netgraph.Graph.num_nodes g <= 2000 then
    Format.printf "diameter: %d@." (Netgraph.Graph.diameter g)

(* info *)
let info_cmd =
  let run spec =
    match load_spec spec with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok t ->
      print_info t;
      0
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  Cmd.v (Cmd.info "info" ~doc:"describe a fabric") Term.(const run $ spec)

(* convert *)
let convert_cmd =
  let run spec out dot =
    match load_spec spec with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok t ->
      let g = t.Harness.Topospec.graph in
      Option.iter
        (fun path ->
          Netgraph.Serial.save path g;
          Format.printf "wrote %s@." path)
        out;
      Option.iter
        (fun path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Netgraph.Serial.to_dot g));
          Format.printf "wrote %s@." path)
        dot;
      if out = None && dot = None then print_string (Netgraph.Serial.to_string g);
      0
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Text format output.") in
  let dot = Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Graphviz output.") in
  Cmd.v
    (Cmd.info "convert" ~doc:"generate a fabric and write it out (stdout text format by default)")
    Term.(const run $ spec $ out $ dot)

(* degrade *)
let degrade_cmd =
  let run spec cables seed out =
    match load_spec spec with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok t ->
      let rng = Netgraph.Rng.create seed in
      let g', removed = Netgraph.Degrade.remove_cables t.Harness.Topospec.graph ~rng ~count:cables in
      Format.printf "removed %d cable(s) (connectivity preserved)@." removed;
      Format.printf "%a@." Netgraph.Graph.pp_stats g';
      (match out with
      | Some path ->
        Netgraph.Serial.save path g';
        Format.printf "wrote %s@." path
      | None -> ());
      0
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  let cables = Arg.(value & opt int 1 & info [ "cables" ] ~docv:"N" ~doc:"Cables to remove.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "degrade" ~doc:"remove random cables while preserving connectivity")
    Term.(const run $ spec $ cables $ seed $ out)

(* diff *)
let diff_cmd =
  let run spec_a spec_b =
    match (load_spec spec_a, load_spec spec_b) with
    | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      2
    | Ok a, Ok b ->
      let ga = a.Harness.Topospec.graph and gb = b.Harness.Topospec.graph in
      let lines g = String.split_on_char '\n' (Netgraph.Serial.to_string g) in
      let set_of g =
        let tbl = Hashtbl.create 256 in
        List.iter (fun l -> if l <> "" then Hashtbl.replace tbl l ()) (lines g);
        tbl
      in
      let sa = set_of ga and sb = set_of gb in
      let only_in name here there =
        let shown = ref 0 in
        Hashtbl.iter
          (fun l () ->
            if not (Hashtbl.mem there l) then begin
              if !shown < 50 then Format.printf "%s %s@." name l;
              incr shown
            end)
          here;
        !shown
      in
      let a_only = only_in "-" sa sb in
      let b_only = only_in "+" sb sa in
      Format.printf "@.%d line(s) only in first, %d only in second@." a_only b_only;
      if a_only = 0 && b_only = 0 then 0 else 1
  in
  let spec_a = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC_A") in
  let spec_b = Arg.(required & pos 1 (some string) None & info [] ~docv:"SPEC_B") in
  Cmd.v
    (Cmd.info "diff" ~doc:"structural diff of two fabrics (canonical text form)")
    Term.(const run $ spec_a $ spec_b)

(* analyze: the routing certifier — route (or load) forwarding tables,
   lint them, and validate a deadlock-freedom certificate. *)
let analyze_cmd =
  let run specs tables algorithm max_layers json minimal slack cert_out =
    let hop_budget =
      if minimal then Some `Minimal
      else Option.map (fun n -> `Slack n) slack
    in
    let analyze_table target ft =
      let report = Analysis.Analyzer.analyze ?hop_budget ft in
      if json then print_endline (Analysis.Analyzer.to_json ~target report)
      else Format.printf "== %s ==@.%a@.@." target Analysis.Analyzer.pp report;
      Option.iter
        (fun path ->
          match report.Analysis.Analyzer.verdict with
          | Analysis.Analyzer.Certified cert ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Analysis.Cert.to_string cert));
            if not json then Format.printf "wrote %s@." path
          | Analysis.Analyzer.Rejected _ ->
            Format.eprintf "%s: no certificate to write (rejected)@." target)
        cert_out;
      Analysis.Analyzer.ok report
    in
    let outcomes =
      List.map
        (fun spec ->
          match load_spec spec with
          | Error msg ->
            prerr_endline msg;
            None
          | Ok t -> (
            match
              Harness.Runs.run_named ?coords:t.Harness.Topospec.coords ~max_layers algorithm
                t.Harness.Topospec.graph
            with
            | Error msg ->
              Format.eprintf "%s: %s refused: %s@." spec algorithm msg;
              None
            | Ok ft -> Some (analyze_table spec ft)))
        specs
      @ List.map
          (fun path ->
            match Routing.Ftable_io.load path with
            | Error msg ->
              Format.eprintf "%s: %s@." path msg;
              None
            | Ok ft -> Some (analyze_table path ft))
          tables
    in
    if outcomes = [] then begin
      prerr_endline "analyze: no SPEC or --table given";
      2
    end
    else if List.mem None outcomes then 2
    else if List.for_all (fun o -> o = Some true) outcomes then 0
    else 1
  in
  let specs = Arg.(value & pos_all string [] & info [] ~docv:"SPEC") in
  let tables =
    Arg.(
      value & opt_all string []
      & info [ "table" ] ~docv:"FILE" ~doc:"Analyze a saved routing artifact (Ftable_io format).")
  in
  let algorithm =
    Arg.(value & opt string "dfsssp" & info [ "algorithm" ] ~docv:"NAME" ~doc:"Routing algorithm for SPEC targets.")
  in
  let max_layers =
    Arg.(value & opt int 8 & info [ "max-layers" ] ~docv:"K" ~doc:"Virtual layer budget for SPEC targets.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"One JSON object per target instead of text.") in
  let minimal =
    Arg.(value & flag & info [ "minimal" ] ~doc:"Enable A006: flag routes longer than shortest-path.")
  in
  let slack =
    Arg.(
      value
      & opt (some int) None
      & info [ "slack" ] ~docv:"N" ~doc:"Enable A006 with N extra hops allowed over shortest-path.")
  in
  let cert_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert" ] ~docv:"FILE" ~doc:"Write the (last certified target's) certificate to FILE.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"lint forwarding tables and check their deadlock-freedom certificate (exit 0 iff all certified and lint-clean)")
    Term.(const run $ specs $ tables $ algorithm $ max_layers $ json $ minimal $ slack $ cert_out)

(* Schedule source shared by manage and trace: a file to replay, or a
   generated mix of cable faults, switch removals and drains. *)
let load_schedule g ~schedule_file ~seed ~events ~removals ~drains =
  match schedule_file with
  | Some path -> (
    match Fabric.Schedule.of_string (In_channel.with_open_text path In_channel.input_all) with
    | Ok s -> Ok s
    | Error msg -> Error (Printf.sprintf "schedule %s: %s" path msg))
  | None ->
    let rng = Netgraph.Rng.create seed in
    Ok (Fabric.Schedule.generate g ~rng ~events ~switch_removals:removals ~drains ~up_fraction:0.35 ())

(* The combined stats snapshot: the manager's own registry plus the
   process-wide one (sssp/layers/analysis/pool counters). *)
let stats_json mgr =
  Obs.Json.Obj
    [
      ("manager", Fabric.Metrics.to_json (Fabric.Manager.metrics mgr));
      ("process", Obs.Registry.to_json (Obs.Registry.default ()));
    ]

let write_stats_json mgr path =
  let s = Obs.Json.to_string (stats_json mgr) in
  if path = "-" then print_endline s
  else begin
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc s;
        Out_channel.output_char oc '\n');
    Format.printf "wrote %s@." path
  end

(* manage: the live fabric manager — replay a fault schedule and report
   convergence after every event. *)
let manage_cmd =
  let run spec events seed schedule_file removals drains algorithm max_layers layer_budget
      repair_fraction batch domains print_schedule stats_out =
    let layer_budget = Option.value ~default:max_layers layer_budget in
    (* --batch unset: snapshot in recommended batches when the pipeline
       is on (--domains > 1), stay on the sequential recurrence
       otherwise. *)
    let batch =
      match batch with
      | Some b -> b
      | None -> if domains > 1 then Routing.Sssp.recommended_batch else 1
    in
    if max_layers < 1 || layer_budget < 1 then begin
      prerr_endline "manage: --max-layers and --layer-budget must be at least 1";
      2
    end
    else if repair_fraction < 0.0 || repair_fraction > 1.0 then begin
      prerr_endline "manage: --repair-fraction must be within [0, 1]";
      2
    end
    else if batch < 1 || domains < 1 then begin
      prerr_endline "manage: --batch and --domains must be at least 1";
      2
    end
    else
      match load_spec spec with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok t -> (
        let g = t.Harness.Topospec.graph in
        let config =
          { Fabric.Manager.algorithm; max_layers; layer_budget; repair_fraction; batch; domains }
        in
      match load_schedule g ~schedule_file ~seed ~events ~removals ~drains with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok schedule -> (
        match Fabric.Manager.create ~config g with
        | Error msg ->
          Format.eprintf "initial routing failed: %s@." msg;
          1
        | Ok mgr ->
          Format.printf "%s@.%a@.initial tables: epoch %d (%s, %d max layers)@.@." t.Harness.Topospec.description
            Netgraph.Graph.pp_stats g (Fabric.Manager.epoch mgr) algorithm max_layers;
          if print_schedule then
            Format.printf "schedule (%d event(s)):@.%s@." (List.length schedule)
              (Fabric.Schedule.to_string schedule);
          List.iteri
            (fun i ev ->
              let o = Fabric.Manager.apply mgr ev in
              Format.printf "[%2d] %a@." (i + 1) Fabric.Manager.pp_outcome o)
            schedule;
          Format.printf "@.convergence report@.%a@." Fabric.Manager.pp_summary mgr;
          let code =
            if Fabric.Manager.converged mgr then begin
              Format.printf "converged: every applied event ended in a verified table swap@.";
              0
            end
            else begin
              Format.printf "NOT CONVERGED: some applied event left unverified tables@.";
              1
            end
          in
          Option.iter (write_stats_json mgr) stats_out;
          Fabric.Manager.release mgr;
          code))
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  let events =
    Arg.(value & opt int 10 & info [ "events" ] ~docv:"N" ~doc:"Generated schedule length.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let schedule_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Replay this schedule file (one \"down/up/drain/remove <id>\" per line) instead of generating one.")
  in
  let removals =
    Arg.(value & opt int 1 & info [ "switch-removals" ] ~docv:"N" ~doc:"Switch removals to schedule.")
  in
  let drains =
    Arg.(value & opt int 0 & info [ "drains" ] ~docv:"N" ~doc:"Switch drains to schedule.")
  in
  let algorithm =
    Arg.(
      value & opt string "dfsssp"
      & info [ "algorithm" ] ~docv:"NAME"
          ~doc:"Routing algorithm for full recomputes; only dfsssp repairs incrementally.")
  in
  let max_layers =
    Arg.(value & opt int 8 & info [ "max-layers" ] ~docv:"K" ~doc:"Virtual layer budget.")
  in
  let layer_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "layer-budget" ] ~docv:"K"
          ~doc:"Layers the incremental path may use before falling back (default: max-layers).")
  in
  let repair_fraction =
    Arg.(
      value & opt float 0.5
      & info [ "repair-fraction" ] ~docv:"F"
          ~doc:"Max fraction of destinations repaired incrementally; above it, full recompute.")
  in
  let batch =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"B"
          ~doc:
            "Destinations per weight snapshot in full recomputes (default: the recommended batch \
             when --domains > 1, else 1 = the sequential recurrence).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D"
          ~doc:"Routing domains for full recomputes (a persistent worker pool when > 1).")
  in
  let print_schedule =
    Arg.(value & flag & info [ "print-schedule" ] ~doc:"Echo the schedule before replaying it.")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Write the manager + process observability registries as JSON to FILE (\"-\" = stdout).")
  in
  Cmd.v
    (Cmd.info "manage"
       ~doc:"run the live fabric manager over a fault schedule and print a convergence report")
    Term.(
      const run $ spec $ events $ seed $ schedule_file $ removals $ drains $ algorithm $ max_layers
      $ layer_budget $ repair_fraction $ batch $ domains $ print_schedule $ stats_out)

(* trace: the manage path again, but with observability enabled and a
   JSON-lines span sink — one compact JSON object per span, innermost
   first. Progress goes to stderr so "--out -" stays machine-readable. *)
let trace_cmd =
  let run spec events seed schedule_file removals drains algorithm max_layers out stats_out =
    match load_spec spec with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok t -> (
      let g = t.Harness.Topospec.graph in
      match load_schedule g ~schedule_file ~seed ~events ~removals ~drains with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok schedule ->
        let oc, close =
          if out = "-" then (stdout, fun () -> flush stdout)
          else
            let oc = open_out out in
            (oc, fun () -> close_out oc)
        in
        Obs.Control.set_enabled true;
        Obs.Trace.set_sink (Some (Obs.Trace.channel_sink oc));
        let code =
          match
            Fabric.Manager.create
              ~config:{ Fabric.Manager.default_config with algorithm; max_layers }
              g
          with
          | Error msg ->
            Format.eprintf "initial routing failed: %s@." msg;
            1
          | Ok mgr ->
            let outcomes = Fabric.Manager.run mgr schedule in
            Format.eprintf "replayed %d event(s), epoch %d, %s@." (List.length outcomes)
              (Fabric.Manager.epoch mgr)
              (if Fabric.Manager.converged mgr then "converged" else "NOT CONVERGED");
            Option.iter (write_stats_json mgr) stats_out;
            Fabric.Manager.release mgr;
            if Fabric.Manager.converged mgr then 0 else 1
        in
        Obs.Trace.set_sink None;
        Obs.Control.set_enabled false;
        close ();
        (if out <> "-" then Format.eprintf "wrote %s@." out);
        code)
  in
  let spec = Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC") in
  let events =
    Arg.(value & opt int 10 & info [ "events" ] ~docv:"N" ~doc:"Generated schedule length.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let schedule_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE" ~doc:"Replay this schedule file instead of generating one.")
  in
  let removals =
    Arg.(value & opt int 1 & info [ "switch-removals" ] ~docv:"N" ~doc:"Switch removals to schedule.")
  in
  let drains =
    Arg.(value & opt int 0 & info [ "drains" ] ~docv:"N" ~doc:"Switch drains to schedule.")
  in
  let algorithm =
    Arg.(value & opt string "dfsssp" & info [ "algorithm" ] ~docv:"NAME" ~doc:"Routing algorithm.")
  in
  let max_layers =
    Arg.(value & opt int 8 & info [ "max-layers" ] ~docv:"K" ~doc:"Virtual layer budget.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Span destination, one JSON object per line (\"-\" = stdout).")
  in
  let stats_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Also write the observability registries as JSON to FILE (\"-\" = stdout).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"replay a fault schedule with tracing enabled, emitting JSON-lines spans")
    Term.(
      const run $ spec $ events $ seed $ schedule_file $ removals $ drains $ algorithm $ max_layers
      $ out $ stats_out)

let () =
  let doc = "fabric generation, inspection and conversion utilities" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "fabric_tool" ~version:"1.0.0" ~doc)
          [ info_cmd; convert_cmd; degrade_cmd; diff_cmd; analyze_cmd; manage_cmd; trace_cmd ]))
