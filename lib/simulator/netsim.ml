type config = {
  bandwidth : float;
  latency : float;
  mtu : int;
  credits : int;
  num_vls : int;
  max_events : int;
}

let default_config =
  { bandwidth = 1e9; latency = 1e-6; mtu = 4096; credits = 4; num_vls = 8; max_events = 50_000_000 }

type flow_stat = {
  src : int;
  dst : int;
  bytes : int;
  start : float;
  finish : float;
}

let bandwidth_of s = if s.finish > s.start then float_of_int s.bytes /. (s.finish -. s.start) else 0.0

type outcome =
  | Completed of {
      makespan : float;
      flows : flow_stat array;
      packets : int;
      mean_packet_latency : float;
    }
  | Deadlocked of {
      time : float;
      delivered : int;
      stuck : int;
    }
  | Out_of_events of { delivered : int }

type packet = {
  flow : int;
  size : int;
  mutable hop : int; (* index into the flow's path of the requested channel *)
  mutable born : float; (* first transmission start; -1 until then *)
}

type event =
  | Wire_free of int
  | Arrived of packet
  | Credit of int * int (* channel, vl *)

let run ?(config = default_config) ft ~flows =
  if config.bandwidth <= 0.0 || config.latency < 0.0 then invalid_arg "Netsim.run: bad link parameters";
  if config.mtu < 1 then invalid_arg "Netsim.run: mtu < 1";
  if config.credits < 1 then invalid_arg "Netsim.run: credits < 1";
  if config.num_vls < 1 then invalid_arg "Netsim.run: num_vls < 1";
  let g = Ftable.graph ft in
  let m = Netgraph.Graph.num_channels g in
  let nflows = Array.length flows in
  (* One arena slice per flow (pair id = flow index): the hot loop below
     indexes channels straight out of the flat buffer, never materialising
     a per-packet path. *)
  let store = Deadlock.Route_store.create g ~capacity:nflows in
  Array.iteri
    (fun f (src, dst, bytes) ->
      if src = dst then invalid_arg "Netsim.run: flow with src = dst";
      if bytes < 0 then invalid_arg "Netsim.run: negative flow size";
      if not (Ftable.path_into ft store ~pair:f ~src ~dst) then
        failwith (Printf.sprintf "Netsim.run: no route %d -> %d" src dst))
    flows;
  let poff = Array.init nflows (fun f -> Deadlock.Route_store.offset store ~pair:f) in
  let plen = Array.init nflows (fun f -> Deadlock.Route_store.length store ~pair:f) in
  (* fetched after the last write: arena growth replaces the buffer *)
  let pbuf = Deadlock.Route_store.buffer store in
  let channel_at f hop = pbuf.(poff.(f) + hop) in
  let vls =
    Array.map
      (fun (src, dst, _) ->
        let vl = Ftable.layer ft ~src ~dst in
        if vl >= config.num_vls then
          invalid_arg (Printf.sprintf "Netsim.run: flow uses lane %d >= num_vls %d" vl config.num_vls);
        vl)
      flows
  in
  (* channel state *)
  let wire_busy = Array.make m false in
  let rr = Array.make m 0 in
  let waiting = Array.init m (fun _ -> Array.init config.num_vls (fun _ -> Queue.create ())) in
  let credits = Array.make_matrix m config.num_vls config.credits in
  (* flow state *)
  let first_start = Array.make nflows infinity in
  let last_finish = Array.make nflows 0.0 in
  let pending_packets = Array.make nflows 0 in
  let events = Eventq.create () in
  let total_packets = ref 0 in
  let delivered = ref 0 in
  let latency_total = ref 0.0 in
  let makespan = ref 0.0 in
  let clock = ref 0.0 in
  let processed = ref 0 in
  (* Inject: segment each flow into MTU packets, queued at its first
     channel (the source HCA's injection wire serializes them). *)
  Array.iteri
    (fun f (_, _, bytes) ->
      let full = bytes / config.mtu and rest = bytes mod config.mtu in
      let count = full + if rest > 0 then 1 else 0 in
      pending_packets.(f) <- count;
      total_packets := !total_packets + count;
      for i = 0 to count - 1 do
        let size = if i < full then config.mtu else rest in
        Queue.push { flow = f; size; hop = 0; born = -1.0 } waiting.(channel_at f 0).(vls.(f))
      done)
    flows;
  let is_last p = p.hop = plen.(p.flow) - 1 in
  (* Attempt to start a transmission on channel [c] at time [now]. *)
  let try_start now c =
    if not wire_busy.(c) then begin
      (* round-robin over lanes; a head packet needs a downstream credit *)
      let chosen = ref (-1) in
      let probe = ref 0 in
      while !chosen < 0 && !probe < config.num_vls do
        let vl = (rr.(c) + !probe) mod config.num_vls in
        if (not (Queue.is_empty waiting.(c).(vl))) && credits.(c).(vl) > 0 then chosen := vl
        else incr probe
      done;
      if !chosen >= 0 then begin
        let vl = !chosen in
        rr.(c) <- (vl + 1) mod config.num_vls;
        let p = Queue.pop waiting.(c).(vl) in
        credits.(c).(vl) <- credits.(c).(vl) - 1;
        wire_busy.(c) <- true;
        if p.born < 0.0 then begin
          p.born <- now;
          if now < first_start.(p.flow) then first_start.(p.flow) <- now
        end;
        (* leaving the upstream buffer returns its credit *)
        if p.hop > 0 then begin
          let prev = channel_at p.flow (p.hop - 1) in
          Eventq.schedule events ~at:(now +. config.latency) (Credit (prev, vl))
        end;
        let tx = float_of_int (max p.size 1) /. config.bandwidth in
        Eventq.schedule events ~at:(now +. tx) (Wire_free c);
        Eventq.schedule events ~at:(now +. tx +. config.latency) (Arrived p)
      end
    end
  in
  let handle now = function
    | Wire_free c ->
      wire_busy.(c) <- false;
      try_start now c
    | Credit (c, vl) ->
      credits.(c).(vl) <- credits.(c).(vl) + 1;
      try_start now c
    | Arrived p ->
      let c = channel_at p.flow p.hop in
      let vl = vls.(p.flow) in
      if is_last p then begin
        (* delivered: the HCA consumes instantly, buffer slot frees *)
        Eventq.schedule events ~at:(now +. config.latency) (Credit (c, vl));
        incr delivered;
        latency_total := !latency_total +. (now -. p.born);
        if now > !makespan then makespan := now;
        pending_packets.(p.flow) <- pending_packets.(p.flow) - 1;
        if now > last_finish.(p.flow) then last_finish.(p.flow) <- now
      end
      else begin
        p.hop <- p.hop + 1;
        let nc = channel_at p.flow p.hop in
        Queue.push p waiting.(nc).(vl);
        try_start now nc
      end
  in
  (* prime every injection wire *)
  for c = 0 to m - 1 do
    try_start 0.0 c
  done;
  let result = ref None in
  while !result = None do
    if !processed >= config.max_events then result := Some (Out_of_events { delivered = !delivered })
    else
      match Eventq.next events with
      | Some (now, ev) ->
        incr processed;
        clock := now;
        handle now ev
      | None ->
        if !delivered = !total_packets then begin
          let stats =
            Array.init nflows (fun f ->
                let src, dst, bytes = flows.(f) in
                {
                  src;
                  dst;
                  bytes;
                  start = (if first_start.(f) = infinity then 0.0 else first_start.(f));
                  finish = last_finish.(f);
                })
          in
          result :=
            Some
              (Completed
                 {
                   makespan = !makespan;
                   flows = stats;
                   packets = !total_packets;
                   mean_packet_latency =
                     (if !delivered = 0 then 0.0 else !latency_total /. float_of_int !delivered);
                 })
        end
        else
          result :=
            Some (Deadlocked { time = !clock; delivered = !delivered; stuck = !total_packets - !delivered })
  done;
  Option.get !result

let pp_outcome ppf = function
  | Completed { makespan; packets; mean_packet_latency; _ } ->
    Format.fprintf ppf "completed %d packets in %.6fs (mean packet latency %.2fus)" packets makespan
      (1e6 *. mean_packet_latency)
  | Deadlocked { time; delivered; stuck } ->
    Format.fprintf ppf "DEADLOCK at %.6fs (%d delivered, %d stuck)" time delivered stuck
  | Out_of_events { delivered } -> Format.fprintf ppf "out of events (%d delivered)" delivered
