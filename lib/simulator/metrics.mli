(** Small statistics helpers shared by the simulators and the experiment
    harness — a re-export of {!Obs.Stat}, which owns the single
    implementation (deterministic [Float.compare] ordering, NaN sorts
    first). *)

type summary = Obs.Stat.summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  median : float;
}

(** Summary of a non-empty sample. @raise Invalid_argument on empty. *)
val summarize : float array -> summary

(** [percentile p xs] for [p] in [0, 1], nearest-rank on a sorted copy. *)
val percentile : float -> float array -> float

val mean : float array -> float

val pp_summary : Format.formatter -> summary -> unit
