(** Static congestion evaluation — our reimplementation of ORCS, the
    Oblivious Routing Congestion Simulator the paper uses for Figures
    4–6: overlay every flow's route on the fabric, count routes per
    directed channel, and derive per-flow bandwidth shares.

    A flow's bandwidth share is [1 / max load along its route] (links are
    fair-shared; the most congested link is the bottleneck; virtual lanes
    share physical capacity, so load ignores layers). The effective
    bisection bandwidth of a fabric+routing is the mean share over many
    random perfect matchings — 1.0 means full wire speed for every pair. *)

type result = {
  flows : int;
  channel_load : int array;  (** routes per directed channel *)
  max_congestion : int;  (** hottest channel's load (0 if no flow moves) *)
  mean_share : float;  (** mean over flows of 1/bottleneck-load *)
  min_share : float;
  completion : float;  (** slowest flow's relative completion time, i.e.
                           max bottleneck load — the static-model time to
                           deliver one unit per flow *)
}

(** [evaluate ft ~flows] overlays the routes of all flows. Flows with
    [src = dst] are ignored.
    @raise Failure if a flow has no route in the table. *)
val evaluate : Ftable.t -> flows:Patterns.flow array -> result

(** [evaluate_store store] is the same metric over the live pairs of a
    route arena (absent pairs and empty paths are ignored) — the primitive
    behind {!evaluate}, which streams forwarding walks into an arena
    rather than materialising one path array per flow. *)
val evaluate_store : Deadlock.Route_store.t -> result

(** [evaluate_paths g ~paths] is the metric over explicitly supplied
    routes (empty paths are ignored) — for multipath routings where each
    flow's route comes from a different forwarding plane. *)
val evaluate_paths : Netgraph.Graph.t -> paths:Netgraph.Path.t array -> result

type ebb = {
  samples : Metrics.summary;  (** per-matching mean shares *)
  worst_pair : float;  (** smallest share seen in any matching *)
}

(** [effective_bisection_bandwidth ?patterns ?ranks ?domains ~rng ft]
    averages {!evaluate} over [patterns] (default 100) random perfect
    matchings of [ranks] (default: all terminals). [domains > 1] samples
    matchings on that many OCaml domains; per-matching PRNGs are split
    deterministically first, so the result is identical at any domain
    count. *)
val effective_bisection_bandwidth :
  ?patterns:int -> ?ranks:int array -> ?domains:int -> rng:Netgraph.Rng.t -> Ftable.t -> ebb

(** [completion_time ft ~flows ~bytes ~bandwidth] is the static-model time
    to complete all flows of [bytes] each over links of [bandwidth]
    (bytes/s): [bytes * max-bottleneck-load / bandwidth]. Used for the
    paper's all-to-all (Fig. 13) and NAS (Figs. 14–16) projections. *)
val completion_time : Ftable.t -> flows:Patterns.flow array -> bytes:float -> bandwidth:float -> float

type hotspot = {
  channel : int;
  load : int;
  src_name : string;
  dst_name : string;
}

(** [hotspots ?top ft ~flows] lists the most loaded directed channels
    (default 10), hottest first, with their endpoint names — the
    diagnostic view an operator wants when a routing underperforms. Only
    channels with non-zero load appear. *)
val hotspots : ?top:int -> Ftable.t -> flows:Patterns.flow array -> hotspot list

(** [load_histogram result] counts channels per load value: entry [(l, n)]
    means [n] channels carry exactly [l] routes; sorted by load, and
    [l = 0] included (idle channels). ORCS's "hist" output. *)
val load_histogram : result -> (int * int) list
