type result = {
  flows : int;
  channel_load : int array;
  max_congestion : int;
  mean_share : float;
  min_share : float;
  completion : float;
}

let evaluate_paths g ~paths =
  let load = Array.make (Netgraph.Graph.num_channels g) 0 in
  let routes = paths in
  Array.iter (fun p -> Array.iter (fun c -> load.(c) <- load.(c) + 1) p) routes;
  let max_congestion = Array.fold_left max 0 load in
  let shares =
    Array.to_list routes
    |> List.filter (fun p -> Array.length p > 0)
    |> List.map (fun p -> 1.0 /. float_of_int (Array.fold_left (fun acc c -> max acc load.(c)) 1 p))
  in
  let n = List.length shares in
  let mean_share = if n = 0 then 1.0 else List.fold_left ( +. ) 0.0 shares /. float_of_int n in
  let min_share = List.fold_left min 1.0 shares in
  let completion =
    if n = 0 then 0.0 else 1.0 /. List.fold_left min 1.0 shares
  in
  { flows = n; channel_load = load; max_congestion; mean_share; min_share; completion }

let evaluate_store store =
  let g = Deadlock.Route_store.graph store in
  let load = Array.make (Netgraph.Graph.num_channels g) 0 in
  Deadlock.Route_store.iter_pairs store (fun pair ->
      Deadlock.Route_store.iter store ~pair (fun c -> load.(c) <- load.(c) + 1));
  let max_congestion = Array.fold_left max 0 load in
  let n = ref 0 and sum = ref 0.0 and min_share = ref 1.0 in
  Deadlock.Route_store.iter_pairs store (fun pair ->
      if Deadlock.Route_store.length store ~pair > 0 then begin
        (* bottleneck load floors at 1, as in [evaluate_paths] *)
        let worst = ref 1 in
        Deadlock.Route_store.iter store ~pair (fun c ->
            if load.(c) > !worst then worst := load.(c));
        let share = 1.0 /. float_of_int !worst in
        incr n;
        sum := !sum +. share;
        if share < !min_share then min_share := share
      end);
  let flows = !n in
  {
    flows;
    channel_load = load;
    max_congestion;
    mean_share = (if flows = 0 then 1.0 else !sum /. float_of_int flows);
    min_share = !min_share;
    completion = (if flows = 0 then 0.0 else 1.0 /. !min_share);
  }

let evaluate ft ~flows =
  let g = Ftable.graph ft in
  let store = Deadlock.Route_store.create g ~capacity:(Array.length flows) in
  Array.iteri
    (fun f (src, dst) ->
      if src = dst then Deadlock.Route_store.set_path store ~pair:f [||]
      else if not (Ftable.path_into ft store ~pair:f ~src ~dst) then
        failwith (Printf.sprintf "Congestion.evaluate: no route %d -> %d" src dst))
    flows;
  evaluate_store store

type ebb = {
  samples : Metrics.summary;
  worst_pair : float;
}

let effective_bisection_bandwidth ?(patterns = 100) ?ranks ?(domains = 1) ~rng ft =
  let ranks =
    match ranks with
    | Some r -> r
    | None -> Netgraph.Graph.terminals (Ftable.graph ft)
  in
  if patterns < 1 then invalid_arg "Congestion.effective_bisection_bandwidth: patterns < 1";
  (* split per-matching PRNGs up front so parallel sampling stays
     deterministic *)
  let rngs = Array.init patterns (fun _ -> Netgraph.Rng.split rng) in
  let results =
    Netgraph.Parallel.map_array ~domains
      (fun pattern_rng ->
        let flows = Patterns.random_bisection pattern_rng ranks in
        let r = evaluate ft ~flows in
        (r.mean_share, r.min_share))
      rngs
  in
  let means = Array.map fst results in
  let worst = Array.fold_left (fun acc (_, w) -> min acc w) 1.0 results in
  { samples = Metrics.summarize means; worst_pair = worst }

let completion_time ft ~flows ~bytes ~bandwidth =
  if bytes < 0.0 || bandwidth <= 0.0 then invalid_arg "Congestion.completion_time";
  let r = evaluate ft ~flows in
  bytes *. r.completion /. bandwidth

type hotspot = {
  channel : int;
  load : int;
  src_name : string;
  dst_name : string;
}

let hotspots ?(top = 10) ft ~flows =
  let g = Ftable.graph ft in
  let r = evaluate ft ~flows in
  let loaded = ref [] in
  Array.iteri (fun c load -> if load > 0 then loaded := (c, load) :: !loaded) r.channel_load;
  let sorted = List.sort (fun (c1, l1) (c2, l2) -> compare (-l1, c1) (-l2, c2)) !loaded in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (c, load) :: rest ->
      let ch = Netgraph.Graph.channel g c in
      {
        channel = c;
        load;
        src_name = (Netgraph.Graph.node g ch.Netgraph.Channel.src).Netgraph.Node.name;
        dst_name = (Netgraph.Graph.node g ch.Netgraph.Channel.dst).Netgraph.Node.name;
      }
      :: take (n - 1) rest
  in
  take top sorted

let load_histogram r =
  let counts = Hashtbl.create 32 in
  Array.iter
    (fun load -> Hashtbl.replace counts load (1 + Option.value ~default:0 (Hashtbl.find_opt counts load)))
    r.channel_load;
  List.sort compare (Hashtbl.fold (fun load n acc -> (load, n) :: acc) counts [])
