type config = {
  buffer_slots : int;
  num_vls : int;
  max_cycles : int;
}

let default_config = { buffer_slots = 2; num_vls = 8; max_cycles = 1_000_000 }

type latency = {
  delivered : int;
  min_cycles : int;
  max_cycles : int;
  mean_cycles : float;
}

type outcome =
  | Delivered of { cycles : int; delivered : int; latency : latency }
  | Deadlocked of { cycles : int; delivered : int; in_flight : int }
  | Out_of_cycles of { delivered : int; in_flight : int }

type packet = {
  flow : int;
  injected_at : int;
  mutable hop : int; (* index into the flow's path of the occupied channel *)
  mutable moved_at : int; (* cycle of the last move, to cap at 1 hop/cycle *)
}

let run ?(config = default_config) ft ~flows =
  if config.buffer_slots < 1 then invalid_arg "Flitsim.run: buffer_slots < 1";
  if config.num_vls < 1 then invalid_arg "Flitsim.run: num_vls < 1";
  let g = Ftable.graph ft in
  let m = Netgraph.Graph.num_channels g in
  let nflows = Array.length flows in
  (* Per-flow arena slices (pair id = flow index); the cycle loop reads
     channels by flat index with zero per-hop allocation. *)
  let store = Deadlock.Route_store.create g ~capacity:nflows in
  Array.iteri
    (fun f (src, dst, packets) ->
      if src = dst then invalid_arg "Flitsim.run: flow with src = dst";
      if packets < 0 then invalid_arg "Flitsim.run: negative packet count";
      if not (Ftable.path_into ft store ~pair:f ~src ~dst) then
        failwith (Printf.sprintf "Flitsim.run: no route %d -> %d" src dst))
    flows;
  let poff = Array.init nflows (fun f -> Deadlock.Route_store.offset store ~pair:f) in
  (* fetched after the last write: arena growth replaces the buffer *)
  let pbuf = Deadlock.Route_store.buffer store in
  let channel_at f hop = pbuf.(poff.(f) + hop) in
  let vls =
    Array.map
      (fun (src, dst, _) ->
        let vl = Ftable.layer ft ~src ~dst in
        if vl >= config.num_vls then
          invalid_arg (Printf.sprintf "Flitsim.run: flow uses layer %d >= num_vls %d" vl config.num_vls);
        vl)
      flows
  in
  let remaining = Array.map (fun (_, _, packets) -> packets) flows in
  let total = Array.fold_left ( + ) 0 remaining in
  let buffers = Array.init m (fun _ -> Array.init config.num_vls (fun _ -> Queue.create ())) in
  let snapshot = Array.make_matrix m config.num_vls 0 in
  let accepted = Array.make_matrix m config.num_vls 0 in
  let channel_granted = Array.make m false in
  let delivered = ref 0 in
  let lat_min = ref max_int and lat_max = ref 0 and lat_total = ref 0 in
  let in_flight = ref 0 in
  let waiting = ref total in
  let cycle = ref 0 in
  let result = ref None in
  let is_sink c = Netgraph.Graph.is_terminal g (Netgraph.Graph.channel g c).Netgraph.Channel.dst in
  while !result = None do
    if !in_flight = 0 && !waiting = 0 then begin
      let latency =
        {
          delivered = !delivered;
          min_cycles = (if !delivered = 0 then 0 else !lat_min);
          max_cycles = !lat_max;
          mean_cycles =
            (if !delivered = 0 then 0.0 else float_of_int !lat_total /. float_of_int !delivered);
        }
      in
      result := Some (Delivered { cycles = !cycle; delivered = !delivered; latency })
    end
    else if !cycle >= config.max_cycles then
      result := Some (Out_of_cycles { delivered = !delivered; in_flight = !in_flight })
    else begin
      let progress = ref false in
      (* Start-of-cycle snapshot of buffer occupancy. *)
      for c = 0 to m - 1 do
        channel_granted.(c) <- false;
        for vl = 0 to config.num_vls - 1 do
          snapshot.(c).(vl) <- Queue.length buffers.(c).(vl);
          accepted.(c).(vl) <- 0
        done
      done;
      (* Movement, rotating the arbitration start point each cycle. A hop
         onto a terminal-bound channel consumes the packet immediately
         (the HCA sinks at wire speed; the ejection channel still forwards
         at most one packet per cycle). *)
      let try_move c vl =
        let q = buffers.(c).(vl) in
        if not (Queue.is_empty q) then begin
          let p = Queue.peek q in
          if p.moved_at < !cycle then begin
            let next_c = channel_at p.flow (p.hop + 1) in
            if is_sink next_c then begin
              if not channel_granted.(next_c) then begin
                let p = Queue.pop q in
                channel_granted.(next_c) <- true;
                let lat = !cycle - p.injected_at + 1 in
                if lat < !lat_min then lat_min := lat;
                if lat > !lat_max then lat_max := lat;
                lat_total := !lat_total + lat;
                incr delivered;
                decr in_flight;
                progress := true
              end
            end
            else if
              (not channel_granted.(next_c))
              && snapshot.(next_c).(vl) + accepted.(next_c).(vl) < config.buffer_slots
            then begin
              let p = Queue.pop q in
              p.hop <- p.hop + 1;
              p.moved_at <- !cycle;
              Queue.push p buffers.(next_c).(vl);
              accepted.(next_c).(vl) <- accepted.(next_c).(vl) + 1;
              channel_granted.(next_c) <- true;
              progress := true
            end
          end
        end
      in
      for i = 0 to m - 1 do
        let c = (i + !cycle) mod m in
        if not (is_sink c) then
          for j = 0 to config.num_vls - 1 do
            let vl = (j + !cycle) mod config.num_vls in
            try_move c vl
          done
      done;
      (* Injection, also rotating over flows. *)
      for i = 0 to nflows - 1 do
        let f = (i + !cycle) mod nflows in
        if remaining.(f) > 0 then begin
          let first = channel_at f 0 in
          let vl = vls.(f) in
          if
            (not channel_granted.(first))
            && snapshot.(first).(vl) + accepted.(first).(vl) < config.buffer_slots
          then begin
            Queue.push { flow = f; injected_at = !cycle; hop = 0; moved_at = !cycle } buffers.(first).(vl);
            accepted.(first).(vl) <- accepted.(first).(vl) + 1;
            channel_granted.(first) <- true;
            remaining.(f) <- remaining.(f) - 1;
            decr waiting;
            incr in_flight;
            progress := true
          end
        end
      done;
      incr cycle;
      if (not !progress) && !in_flight > 0 then
        result := Some (Deadlocked { cycles = !cycle; delivered = !delivered; in_flight = !in_flight })
      else if (not !progress) && !in_flight = 0 && !waiting > 0 then
        (* Unreachable: empty buffers always accept; defensive stop. *)
        result := Some (Out_of_cycles { delivered = !delivered; in_flight = 0 })
    end
  done;
  Option.get !result

let pp_outcome ppf = function
  | Delivered { cycles; delivered; latency } ->
    Format.fprintf ppf "delivered %d packets in %d cycles (latency min/mean/max %d/%.1f/%d)" delivered
      cycles latency.min_cycles latency.mean_cycles latency.max_cycles
  | Deadlocked { cycles; delivered; in_flight } ->
    Format.fprintf ppf "DEADLOCK after %d cycles (%d delivered, %d wedged)" cycles delivered in_flight
  | Out_of_cycles { delivered; in_flight } ->
    Format.fprintf ppf "out of cycles (%d delivered, %d in flight)" delivered in_flight
