(* Sample statistics for the simulators and the harness. The
   implementation lives in Obs.Stat (one deterministic ordering, shared
   with the observability timers); this module keeps the historical
   [Simulator.Metrics] doorway so simulator users never reach below. *)

type summary = Obs.Stat.summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  median : float;
}

let mean = Obs.Stat.mean
let percentile = Obs.Stat.percentile
let summarize = Obs.Stat.summarize
let pp_summary = Obs.Stat.pp_summary
