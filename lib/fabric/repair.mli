(** Incremental route repair: after an id-stable topology event, recompute
    only the destinations whose forwarding trees the event touched,
    instead of the full [|T|]-destination SSSP + cycle-breaking run.

    Soundness rests on two properties of the surrounding machinery:
    - routing is destination-based, so a destination whose tree avoids
      every failed channel keeps a valid tree verbatim;
    - layer assignment is per (src, dst) route, so kept routes keep their
      layers and only re-routed pairs need re-placement — their new
      dependencies are probed online against per-layer CDGs seeded with
      the kept routes (LASH-style), which re-runs cycle breaking only on
      the layers the new routes actually touch.

    Every patched table still goes through the full independent
    {!Dfsssp.Verify.report} before the manager swaps it in. *)

(** [affected_destinations ft ~channels] is the terminals whose forwarding
    tree in [ft] uses any channel in [channels] — the destinations that
    must be re-routed when those channels fail. *)
val affected_destinations : Ftable.t -> channels:int list -> int list

(** [beneficiary_destinations ~old_graph ~graph ~restored] is the
    terminals whose hop distance from either endpoint of a restored cable
    improved — the destinations worth re-routing to exploit a link that
    came back (existing routes stay valid on a restore; this is an
    optimization set, not a correctness set). *)
val beneficiary_destinations : old_graph:Graph.t -> graph:Graph.t -> restored:int list -> int list

type patched = {
  table : Ftable.t;
  layers_used : int;
}

(** [patch ~graph ~old ~dsts ~weights ~layer_budget] builds a fresh table
    on [graph] (which must share node/channel ids with [old]'s fabric):
    forwarding trees and layers of destinations outside [dsts] are copied
    verbatim; each destination in [dsts] is re-routed with one
    {!Sssp.route_destination} step over the shared [weights] state
    (mutated in place) and its routes re-placed into the lowest acyclic
    layer. Fails — leaving the caller to fall back to a full recompute —
    if a placement needs more than [layer_budget] layers, or the existing
    assignment already exceeds the budget. [kernel] selects the
    shortest-path core of the repair steps (default {!Spf.Auto};
    DESIGN.md §15) and never changes the resulting table.
    @raise Invalid_argument if [layer_budget < 1]. *)
val patch :
  ?kernel:Spf.kind ->
  graph:Graph.t ->
  old:Ftable.t ->
  dsts:int list ->
  weights:int array ->
  layer_budget:int ->
  unit ->
  (patched, string) result
