(** Fault schedules: ordered lists of topology events to replay against a
    {!Manager}. Either parsed from a text file (one event per line, [#]
    comments) or generated randomly against a simulated copy of the
    fabric, so every emitted event is applicable at its position — ids
    refer to the fabric as it stands then, including after a mid-schedule
    switch removal. *)

type t = Event.t list

val to_string : t -> string

(** One event per line; blank lines and [#] comments ignored. *)
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit

(** [generate g ~rng ~events ()] draws a mixed schedule of [events]
    applicable events: link downs of randomly chosen non-critical cables,
    link ups of previously failed cables (probability [up_fraction],
    default 0.35, when any cable is down), plus [switch_removals]
    (default 0) switch removals and [drains] (default 0) switch drains at
    random positions. Events that no candidate can satisfy (e.g. every
    remaining cable is a cut edge) are dropped, so the result may be
    shorter than [events]. Deterministic in [rng]. *)
val generate :
  Graph.t ->
  rng:Rng.t ->
  events:int ->
  ?switch_removals:int ->
  ?drains:int ->
  ?up_fraction:float ->
  unit ->
  t
