(** The fabric manager's operational telemetry — the counters a subnet
    manager exports — built on {!Obs} primitives and registered in a
    per-manager {!Obs.Registry.t}, so the whole set snapshots to JSON
    ([fabric_tool manage --stats-json]). Mutated by {!Manager.apply}. *)

type t = {
  registry : Obs.Registry.t;
  events_seen : Obs.Counter.t;
  events_applied : Obs.Counter.t;  (** topology actually changed *)
  events_rejected : Obs.Counter.t;  (** refused (would disconnect, unknown id, ...) *)
  incremental_repairs : Obs.Counter.t;  (** events settled by partial recompute *)
  full_recomputes : Obs.Counter.t;  (** events settled by full reroute *)
  fallbacks : Obs.Counter.t;
      (** incremental attempts abandoned for a full recompute (layer
          budget exhausted or verification rejected the candidate) *)
  dsts_repaired : Obs.Counter.t;  (** destinations recomputed, incremental events only *)
  dsts_total : Obs.Counter.t;  (** destinations present, summed over incremental events *)
  swap_epochs : Obs.Counter.t;  (** gauge: epoch counter after the latest swap *)
  verify_failures : Obs.Counter.t;  (** candidate tables rejected by the verifier *)
  repair : Obs.Timer.t;  (** seconds spent computing routes/layers *)
  verify : Obs.Timer.t;  (** seconds spent in the certificate + verifier gates *)
}

val create : unit -> t
val registry : t -> Obs.Registry.t

(** Scalar views (sums over slots), for display and tests. *)

val events_seen : t -> int
val events_applied : t -> int
val events_rejected : t -> int
val incremental_repairs : t -> int
val full_recomputes : t -> int
val fallbacks : t -> int
val dsts_repaired : t -> int
val dsts_total : t -> int
val swap_epochs : t -> int
val verify_failures : t -> int
val repair_s : t -> float
val verify_s : t -> float

(** [dsts_repaired / dsts_total] ([0.] when no incremental repair ran). *)
val repaired_fraction : t -> float

(** Snapshot of the per-manager registry. *)
val to_json : t -> Obs.Json.t

val pp : Format.formatter -> t -> unit
