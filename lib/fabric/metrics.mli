(** Counters the fabric manager accumulates over its lifetime — the
    operational telemetry a subnet manager exports. All fields are
    mutated in place by {!Manager.apply}. *)

type t = {
  mutable events_seen : int;
  mutable events_applied : int;  (** topology actually changed *)
  mutable events_rejected : int;  (** refused (would disconnect, unknown id, ...) *)
  mutable incremental_repairs : int;  (** events settled by partial recompute *)
  mutable full_recomputes : int;  (** events settled by full reroute *)
  mutable fallbacks : int;
      (** incremental attempts abandoned for a full recompute (layer
          budget exhausted or verification rejected the candidate) *)
  mutable dsts_repaired : int;  (** destinations recomputed, incremental events only *)
  mutable dsts_total : int;  (** destinations present, summed over incremental events *)
  mutable swap_epochs : int;  (** epoch counter after the latest swap *)
  mutable verify_failures : int;  (** candidate tables rejected by the verifier *)
  mutable repair_s : float;  (** seconds spent computing routes/layers *)
  mutable verify_s : float;  (** seconds spent in {!Dfsssp.Verify.report} *)
}

val create : unit -> t

(** [dsts_repaired / dsts_total] ([0.] when no incremental repair ran). *)
val repaired_fraction : t -> float

val pp : Format.formatter -> t -> unit
