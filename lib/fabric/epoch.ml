type entry = {
  epoch : int;
  label : string;
  verify_s : float;
}

type snapshot = {
  snap_epoch : int;
  tables : Ftable.t;
  store : Route_store.t;
  num_layers : int;
}

type t = {
  mutable epoch : int;
  mutable active : Ftable.t option;
  mutable entries : entry list; (* newest first *)
  mutable snap : snapshot option; (* cached export of the current epoch *)
}

let create () = { epoch = 0; active = None; entries = []; snap = None }

let epoch t = t.epoch

let active t = t.active

let history t = List.rev t.entries

(* Built lazily — paid once per epoch on the first route query, never by
   code paths that only replay schedules — and cached until the next
   swap. The returned record is never mutated afterwards, so readers may
   keep it across swaps and stay internally consistent. *)
let snapshot t =
  match t.snap with
  | Some s when s.snap_epoch = t.epoch -> Ok s
  | _ -> (
    match t.active with
    | None -> Error "no active epoch"
    | Some tables -> (
      match Ftable.to_store tables with
      | Error msg -> Error (Printf.sprintf "epoch %d: %s" t.epoch msg)
      | Ok store ->
        let s = { snap_epoch = t.epoch; tables; store; num_layers = Ftable.num_layers tables } in
        t.snap <- Some s;
        Ok s))

let try_swap t ~label candidate =
  let span =
    Obs.Trace.begin_span "fabric.try_swap" ~attrs:(fun () -> [("label", Obs.Trace.Str label)])
  in
  let finish ((result, _) as r) =
    Obs.Trace.end_span span
      ~attrs:
        [
          ("ok", Obs.Trace.Bool (Result.is_ok result));
          ("epoch", Obs.Trace.Int t.epoch);
        ];
    r
  in
  finish
  @@
  let t0 = Unix.gettimeofday () in
  (* The topology-level existence gate runs before anything touches the
     candidate's routes: a layer budget below the fabric's provable
     minimum (Analysis.Existence) cannot be certified by any table, so
     the candidate is refused without spending a certificate run on it. *)
  let ex = Analysis.Existence.analyze (Ftable.graph candidate) in
  if ex.Analysis.Existence.min_layers_lb > Ftable.num_layers candidate then
    ( Error
        (Printf.sprintf
           "existence: layer budget %d is below the provable minimum %d for this fabric"
           (Ftable.num_layers candidate) ex.Analysis.Existence.min_layers_lb),
      Unix.gettimeofday () -. t0 )
  else
  (* The independent certificate gate runs next: the trusted checker in
     lib/analysis must accept a topological witness for every layer
     before the (construction-side) verifier is even consulted. A table
     the checker cannot certify never goes live, whatever the code that
     built it believes. *)
  match Analysis.Analyzer.certify candidate with
  | Error msg ->
    (Error (Printf.sprintf "certificate: %s" msg), Unix.gettimeofday () -. t0)
  | Ok _cert -> (
    let verdict = Dfsssp.Verify.report candidate in
    let verify_s = Unix.gettimeofday () -. t0 in
    match verdict with
    | Error msg -> (Error (Printf.sprintf "incomplete routing: %s" msg), verify_s)
    | Ok r ->
      if not r.Dfsssp.Verify.deadlock_free then
        (Error "candidate tables are not deadlock-free", verify_s)
      else begin
        t.epoch <- t.epoch + 1;
        t.active <- Some candidate;
        t.entries <- { epoch = t.epoch; label; verify_s } :: t.entries;
        (Ok r, verify_s)
      end)
