type entry = {
  epoch : int;
  label : string;
  verify_s : float;
}

type t = {
  mutable epoch : int;
  mutable active : Ftable.t option;
  mutable entries : entry list; (* newest first *)
}

let create () = { epoch = 0; active = None; entries = [] }

let epoch t = t.epoch

let active t = t.active

let history t = List.rev t.entries

let try_swap t ~label candidate =
  let span =
    Obs.Trace.begin_span "fabric.try_swap" ~attrs:(fun () -> [("label", Obs.Trace.Str label)])
  in
  let finish ((result, _) as r) =
    Obs.Trace.end_span span
      ~attrs:
        [
          ("ok", Obs.Trace.Bool (Result.is_ok result));
          ("epoch", Obs.Trace.Int t.epoch);
        ];
    r
  in
  finish
  @@
  let t0 = Unix.gettimeofday () in
  (* The independent certificate gate runs first: the trusted checker in
     lib/analysis must accept a topological witness for every layer
     before the (construction-side) verifier is even consulted. A table
     the checker cannot certify never goes live, whatever the code that
     built it believes. *)
  match Analysis.Analyzer.certify candidate with
  | Error msg ->
    (Error (Printf.sprintf "certificate: %s" msg), Unix.gettimeofday () -. t0)
  | Ok _cert -> (
    let verdict = Dfsssp.Verify.report candidate in
    let verify_s = Unix.gettimeofday () -. t0 in
    match verdict with
    | Error msg -> (Error (Printf.sprintf "incomplete routing: %s" msg), verify_s)
    | Ok r ->
      if not r.Dfsssp.Verify.deadlock_free then
        (Error "candidate tables are not deadlock-free", verify_s)
      else begin
        t.epoch <- t.epoch + 1;
        t.active <- Some candidate;
        t.entries <- { epoch = t.epoch; label; verify_s } :: t.entries;
        (Ok r, verify_s)
      end)
