(** Epoch-based verified table swaps — the manager's safety gate. The
    active forwarding tables only ever advance to a candidate that (1)
    carries a deadlock-freedom certificate accepted by the trusted
    checker ({!Analysis.Analyzer.certify} — a per-layer topological
    witness validated independently of every piece of construction code)
    and (2) passed the full verifier ({!Dfsssp.Verify.report}:
    completeness over every terminal pair, per-layer CDG acyclicity). A
    rejected candidate leaves the active epoch untouched, exactly like a
    subnet manager that keeps serving the old LFTs until the new ones
    check out. *)

type entry = {
  epoch : int;
  label : string;  (** what produced this epoch, e.g. ["down 42 (incremental)"] *)
  verify_s : float;
}

(** A read-only export of one epoch's routing state: the verified tables
    plus their routes materialized once into a {!Route_store} arena, so
    route queries resolve as O(1) slices of a flat buffer with no
    per-query path allocation. Snapshots are immutable — a swap installs
    a {e new} snapshot and never mutates an exported one, so readers
    holding a snapshot across a swap keep reading a consistent epoch
    until they drop it (graceful drain, courtesy of the GC). *)
type snapshot = {
  snap_epoch : int;
  tables : Ftable.t;  (** the tables this epoch serves *)
  store : Route_store.t;  (** every ordered terminal pair's path, arena form *)
  num_layers : int;  (** layer count of [tables] at snapshot time *)
}

type t

(** No active tables, epoch 0. *)
val create : unit -> t

val epoch : t -> int

(** The tables currently being served, if any epoch was installed. *)
val active : t -> Ftable.t option

(** Installed epochs, oldest first. *)
val history : t -> entry list

(** [snapshot t] is the current epoch's read-only export, built on first
    request after a swap and cached for the epoch's lifetime (the arena
    walk is paid once, not per query). [Error] when no epoch is active
    or the active tables cannot be walked — impossible for tables that
    passed {!try_swap}'s completeness gate. *)
val snapshot : t -> (snapshot, string) result

(** [try_swap t ~label candidate] certifies and verifies [candidate] and,
    on success, installs it as the next epoch. Always returns the
    certify-plus-verify wall time; [Error] means the active tables were
    kept (a certificate refusal is prefixed ["certificate:"]). *)
val try_swap :
  t -> label:string -> Ftable.t -> (Dfsssp.Verify.report, string) result * float
