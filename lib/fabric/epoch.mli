(** Epoch-based verified table swaps — the manager's safety gate. The
    active forwarding tables only ever advance to a candidate that (1)
    carries a deadlock-freedom certificate accepted by the trusted
    checker ({!Analysis.Analyzer.certify} — a per-layer topological
    witness validated independently of every piece of construction code)
    and (2) passed the full verifier ({!Dfsssp.Verify.report}:
    completeness over every terminal pair, per-layer CDG acyclicity). A
    rejected candidate leaves the active epoch untouched, exactly like a
    subnet manager that keeps serving the old LFTs until the new ones
    check out. *)

type entry = {
  epoch : int;
  label : string;  (** what produced this epoch, e.g. ["down 42 (incremental)"] *)
  verify_s : float;
}

type t

(** No active tables, epoch 0. *)
val create : unit -> t

val epoch : t -> int

(** The tables currently being served, if any epoch was installed. *)
val active : t -> Ftable.t option

(** Installed epochs, oldest first. *)
val history : t -> entry list

(** [try_swap t ~label candidate] certifies and verifies [candidate] and,
    on success, installs it as the next epoch. Always returns the
    certify-plus-verify wall time; [Error] means the active tables were
    kept (a certificate refusal is prefixed ["certificate:"]). *)
val try_swap :
  t -> label:string -> Ftable.t -> (Dfsssp.Verify.report, string) result * float
