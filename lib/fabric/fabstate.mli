(** The topology half of the fabric manager's state: the fabric as it
    currently stands, mutated by {!Event} application. Shared between the
    manager (which routes on it) and the {!Schedule} generator (which
    simulates it to emit only applicable events), so both agree on ids at
    every point of a schedule. *)

type change =
  | Disabled of int list
      (** channel ids taken out of the adjacency; node and channel ids
          unchanged, so forwarding state indexed by id survives *)
  | Restored of int list  (** channel ids brought back; ids unchanged *)
  | Rebuilt
      (** structural change ({!Event.Switch_remove}): node and channel
          ids re-assigned, all id-keyed state must be rebuilt *)

type t

val create : Graph.t -> t

(** The current fabric. Disabled cables are absent from its adjacency but
    keep their channel ids ({!Graph.channel_enabled}). *)
val graph : t -> Graph.t

(** Bumped on every {!Rebuilt}; id-keyed caches are valid only within one
    generation. *)
val generation : t -> int

(** Lower channel ids of currently-disabled cables ([Link_up]
    candidates). *)
val disabled_cables : t -> int list

(** Lower channel ids of enabled switch-to-switch cables ([Link_down]
    candidates). *)
val enabled_cables : t -> int array

(** [apply t ev] mutates the topology. [Error] leaves it untouched —
    e.g. downing a cut cable, re-upping an enabled cable, or removing a
    switch whose loss disconnects the fabric. *)
val apply : t -> Event.t -> (change, string) result
