type t =
  | Link_down of int
  | Link_up of int
  | Switch_drain of int
  | Switch_remove of int

let to_string = function
  | Link_down c -> Printf.sprintf "down %d" c
  | Link_up c -> Printf.sprintf "up %d" c
  | Switch_drain s -> Printf.sprintf "drain %d" s
  | Switch_remove s -> Printf.sprintf "remove %d" s

let of_string s =
  match String.split_on_char ' ' (String.trim s) |> List.filter (fun w -> w <> "") with
  | [ verb; arg ] -> (
    match int_of_string_opt arg with
    | None -> Error (Printf.sprintf "event %S: %S is not an integer" s arg)
    | Some n -> (
      match String.lowercase_ascii verb with
      | "down" -> Ok (Link_down n)
      | "up" -> Ok (Link_up n)
      | "drain" -> Ok (Switch_drain n)
      | "remove" -> Ok (Switch_remove n)
      | _ -> Error (Printf.sprintf "event %S: unknown verb %S" s verb)))
  | _ -> Error (Printf.sprintf "event %S: want \"<verb> <id>\"" s)

let pp ppf e = Format.pp_print_string ppf (to_string e)
