type t = {
  mutable events_seen : int;
  mutable events_applied : int;
  mutable events_rejected : int;
  mutable incremental_repairs : int;
  mutable full_recomputes : int;
  mutable fallbacks : int;
  mutable dsts_repaired : int;
  mutable dsts_total : int;
  mutable swap_epochs : int;
  mutable verify_failures : int;
  mutable repair_s : float;
  mutable verify_s : float;
}

let create () =
  {
    events_seen = 0;
    events_applied = 0;
    events_rejected = 0;
    incremental_repairs = 0;
    full_recomputes = 0;
    fallbacks = 0;
    dsts_repaired = 0;
    dsts_total = 0;
    swap_epochs = 0;
    verify_failures = 0;
    repair_s = 0.0;
    verify_s = 0.0;
  }

let repaired_fraction m =
  if m.dsts_total = 0 then 0.0 else float_of_int m.dsts_repaired /. float_of_int m.dsts_total

let pp ppf m =
  Format.fprintf ppf
    "events: %d seen, %d applied, %d rejected@,\
     incremental repairs: %d (%d/%d destinations recomputed, %.1f%%)@,\
     full recomputes: %d (fallbacks from incremental: %d, verify failures: %d)@,\
     swap epochs: %d@,\
     time: repair %.3f s, verify %.3f s"
    m.events_seen m.events_applied m.events_rejected m.incremental_repairs m.dsts_repaired m.dsts_total
    (100.0 *. repaired_fraction m)
    m.full_recomputes m.fallbacks m.verify_failures m.swap_epochs m.repair_s m.verify_s
