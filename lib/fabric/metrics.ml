(* The fabric manager's operational telemetry, built on the Obs
   primitives (DESIGN.md section 13): every field that used to be a raw
   mutable int/float is an Obs counter or timer registered in a
   per-manager registry, so `fabric_tool manage --stats-json` exports
   the whole set as one machine-readable snapshot. *)

type t = {
  registry : Obs.Registry.t;
  events_seen : Obs.Counter.t;
  events_applied : Obs.Counter.t;
  events_rejected : Obs.Counter.t;
  incremental_repairs : Obs.Counter.t;
  full_recomputes : Obs.Counter.t;
  fallbacks : Obs.Counter.t;
  dsts_repaired : Obs.Counter.t;
  dsts_total : Obs.Counter.t;
  swap_epochs : Obs.Counter.t;
  verify_failures : Obs.Counter.t;
  repair : Obs.Timer.t;
  verify : Obs.Timer.t;
}

let create () =
  let registry = Obs.Registry.create () in
  let counter name desc = Obs.Registry.counter ~registry ~desc name in
  let timer name desc = Obs.Registry.timer ~registry ~desc name in
  {
    registry;
    events_seen = counter "fabric.events_seen" "events offered to the manager";
    events_applied = counter "fabric.events_applied" "events that changed the topology";
    events_rejected = counter "fabric.events_rejected" "events refused (would disconnect, unknown id, ...)";
    incremental_repairs = counter "fabric.incremental_repairs" "events settled by partial recompute";
    full_recomputes = counter "fabric.full_recomputes" "events settled by full reroute";
    fallbacks = counter "fabric.fallbacks" "incremental attempts abandoned for a full recompute";
    dsts_repaired = counter "fabric.dsts_repaired" "destinations recomputed, incremental events only";
    dsts_total = counter "fabric.dsts_total" "destinations present, summed over incremental events";
    swap_epochs = counter "fabric.swap_epochs" "epoch counter after the latest swap";
    verify_failures = counter "fabric.verify_failures" "candidate tables rejected by the verifier";
    repair = timer "fabric.repair" "seconds computing routes/layers";
    verify = timer "fabric.verify" "seconds in certificate + verifier gates";
  }

let registry m = m.registry

(* Scalar views, for pretty-printing and tests. *)
let events_seen m = Obs.Counter.value m.events_seen
let events_applied m = Obs.Counter.value m.events_applied
let events_rejected m = Obs.Counter.value m.events_rejected
let incremental_repairs m = Obs.Counter.value m.incremental_repairs
let full_recomputes m = Obs.Counter.value m.full_recomputes
let fallbacks m = Obs.Counter.value m.fallbacks
let dsts_repaired m = Obs.Counter.value m.dsts_repaired
let dsts_total m = Obs.Counter.value m.dsts_total
let swap_epochs m = Obs.Counter.value m.swap_epochs
let verify_failures m = Obs.Counter.value m.verify_failures
let repair_s m = Obs.Timer.sum_s m.repair
let verify_s m = Obs.Timer.sum_s m.verify

let repaired_fraction m =
  let total = dsts_total m in
  if total = 0 then 0.0 else float_of_int (dsts_repaired m) /. float_of_int total

let to_json m = Obs.Registry.to_json m.registry

let pp ppf m =
  Format.fprintf ppf
    "events: %d seen, %d applied, %d rejected@,\
     incremental repairs: %d (%d/%d destinations recomputed, %.1f%%)@,\
     full recomputes: %d (fallbacks from incremental: %d, verify failures: %d)@,\
     swap epochs: %d@,\
     time: repair %.3f s, verify %.3f s"
    (events_seen m) (events_applied m) (events_rejected m) (incremental_repairs m) (dsts_repaired m)
    (dsts_total m)
    (100.0 *. repaired_fraction m)
    (full_recomputes m) (fallbacks m) (verify_failures m) (swap_epochs m) (repair_s m) (verify_s m)
