type t = Event.t list

let to_string sched = String.concat "" (List.map (fun e -> Event.to_string e ^ "\n") sched)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc (lineno + 1) rest
      else (
        match Event.of_string line with
        | Ok e -> go (e :: acc) (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go [] 1 lines

let pp ppf sched =
  List.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_space ppf ();
      Event.pp ppf e)
    sched

(* Try removing each switch in random order; keep the first whose removal
   stays connected and leaves at least two terminals to route between. *)
let pick_switch_removal sim rng =
  let candidates = Array.copy (Graph.switches (Fabstate.graph sim)) in
  Rng.shuffle rng candidates;
  let rec go i =
    if i >= Array.length candidates then None
    else begin
      let switch = candidates.(i) in
      match Degrade.remove_switch (Fabstate.graph sim) ~switch with
      | Ok g when Graph.num_terminals g >= 2 -> (
        match Fabstate.apply sim (Event.Switch_remove switch) with
        | Ok _ -> Some (Event.Switch_remove switch)
        | Error _ -> go (i + 1))
      | _ -> go (i + 1)
    end
  in
  go 0

let pick_drain sim rng =
  let switches = Graph.switches (Fabstate.graph sim) in
  if Array.length switches = 0 then None
  else begin
    let switch = Rng.pick rng switches in
    match Fabstate.apply sim (Event.Switch_drain switch) with
    | Ok _ -> Some (Event.Switch_drain switch)
    | Error _ -> None
  end

let pick_link_up sim rng =
  match Fabstate.disabled_cables sim with
  | [] -> None
  | cables -> (
    let cable = Rng.pick rng (Array.of_list cables) in
    match Fabstate.apply sim (Event.Link_up cable) with
    | Ok _ -> Some (Event.Link_up cable)
    | Error _ -> None)

let pick_link_down sim rng =
  let candidates = Fabstate.enabled_cables sim in
  Rng.shuffle rng candidates;
  let rec go i =
    if i >= Array.length candidates then None
    else (
      match Fabstate.apply sim (Event.Link_down candidates.(i)) with
      | Ok _ -> Some (Event.Link_down candidates.(i))
      | Error _ -> go (i + 1))
  in
  go 0

let generate g ~rng ~events ?(switch_removals = 0) ?(drains = 0) ?(up_fraction = 0.35) () =
  if events < 0 then invalid_arg "Schedule.generate: events < 0";
  let specials = min events (switch_removals + drains) in
  let special_at = if specials = 0 then [||] else Rng.sample_distinct rng ~n:specials ~bound:events in
  let removal_at = Hashtbl.create 4 and drain_at = Hashtbl.create 4 in
  Array.iteri
    (fun i pos ->
      if i < min switch_removals specials then Hashtbl.replace removal_at pos ()
      else Hashtbl.replace drain_at pos ())
    special_at;
  let sim = Fabstate.create g in
  let out = ref [] in
  for i = 0 to events - 1 do
    let ev =
      if Hashtbl.mem removal_at i then pick_switch_removal sim rng
      else if Hashtbl.mem drain_at i then pick_drain sim rng
      else begin
        let want_up =
          Fabstate.disabled_cables sim <> [] && Rng.float rng 1.0 < up_fraction
        in
        if want_up then pick_link_up sim rng
        else
          match pick_link_down sim rng with
          | Some _ as ev -> ev
          | None -> pick_link_up sim rng
      end
    in
    Option.iter (fun e -> out := e :: !out) ev
  done;
  List.rev !out
