let log_src = Logs.Src.create "fabric.repair" ~doc:"incremental route repair"

module Log = (val Logs.src_log log_src : Logs.LOG)

let affected_destinations ft ~channels =
  let g = Ftable.graph ft in
  let n = Graph.num_nodes g in
  let hit_dsts = ref [] in
  Array.iter
    (fun dst ->
      let hit = ref false in
      let u = ref 0 in
      while (not !hit) && !u < n do
        (match Ftable.next ft ~node:!u ~dst with
        | Some c when List.mem c channels -> hit := true
        | _ -> ());
        incr u
      done;
      if !hit then hit_dsts := dst :: !hit_dsts)
    (Graph.terminals g);
  List.rev !hit_dsts

let beneficiary_destinations ~old_graph ~graph ~restored =
  let endpoints =
    List.sort_uniq compare (List.map (fun c -> (Graph.channel graph c).Channel.src) restored)
  in
  let dists = List.map (fun u -> (Graph.bfs_dist old_graph u, Graph.bfs_dist graph u)) endpoints in
  let dsts = ref [] in
  Array.iter
    (fun d -> if List.exists (fun (od, nd) -> nd.(d) < od.(d)) dists then dsts := d :: !dsts)
    (Graph.terminals graph);
  List.rev !dsts

type patched = {
  table : Ftable.t;
  layers_used : int;
}

(* Same probe as {!Deadlock.Online}: adding a path to an acyclic CDG
   closes a cycle iff some newly-created edge (a, b) gains a route from b
   back to a. Only 0->1 edge transitions need a DFS. Dependencies are read
   straight from the pair's arena slice. *)
let fresh_dependencies cdg store ~pair =
  let acc = ref [] in
  Route_store.iter_deps store ~pair (fun a b ->
      if not (Cdg.live cdg ~c1:a ~c2:b) then acc := (a, b) :: !acc);
  !acc

let creates_cycle cdg fresh stamp stamps =
  let rec probe = function
    | [] -> false
    | (a, b) :: rest ->
      incr stamp;
      let target = a in
      let rec dfs c =
        if c = target then true
        else if stamps.(c) = !stamp then false
        else begin
          stamps.(c) <- !stamp;
          Cdg.exists_successor cdg c dfs
        end
      in
      if dfs b then true else probe rest
  in
  probe fresh

let patch ?kernel ~graph ~old ~dsts ~weights ~layer_budget () =
  if layer_budget < 1 then invalid_arg "Repair.patch: layer_budget < 1";
  let terminals = Graph.terminals graph in
  let n = Graph.num_nodes graph in
  let repaired = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace repaired d ()) dsts;
  let base_layers = max 1 (Ftable.num_layers old) in
  if base_layers > layer_budget then
    Error
      (Printf.sprintf "existing assignment uses %d layer(s), over the incremental budget of %d"
         base_layers layer_budget)
  else begin
    let ft = Ftable.create graph ~algorithm:(Ftable.algorithm old) in
    (* Kept destinations: copy the whole forwarding tree verbatim. *)
    Array.iter
      (fun dst ->
        if not (Hashtbl.mem repaired dst) then
          for u = 0 to n - 1 do
            match Ftable.next old ~node:u ~dst with
            | Some c -> Ftable.set_next ft ~node:u ~dst ~channel:c
            | None -> ()
          done)
      terminals;
    (* Repaired destinations: one SSSP step each, over the surviving
       weight state (later repairs keep avoiding earlier load). *)
    let ws = Spf.workspace ?kernel graph in
    let route_result = ref (Ok ()) in
    List.iter
      (fun dst ->
        match !route_result with
        | Error _ -> ()
        | Ok () -> route_result := Sssp.route_destination ws graph ~weights ~ft ~dst)
      dsts;
    match !route_result with
    | Error msg -> Error msg
    | Ok () ->
      (* Layer repair: kept pairs keep their layer; their dependencies
         seed one CSR CDG per existing layer ({!Cdg.of_store} with a
         layer filter). Pairs toward repaired destinations are re-placed
         online into the lowest acyclic layer, opening new layers only
         within [layer_budget]. All routes are first streamed into one
         arena so both phases read dependencies from flat slices. *)
      let store = Route_store.create graph ~capacity:(Ftable.num_pairs ft) in
      let layer_of_pair = Array.make (Ftable.num_pairs ft) (-1) in
      let err = ref None in
      Array.iter
        (fun src ->
          Array.iter
            (fun dst ->
              if src <> dst && (not (Hashtbl.mem repaired dst)) && !err = None then begin
                let pair = Ftable.pair_id ft ~src ~dst in
                if not (Ftable.path_into ft store ~pair ~src ~dst) then
                  err := Some (Printf.sprintf "kept route %d -> %d is broken" src dst)
                else
                  let vl = Ftable.layer old ~src ~dst in
                  if vl >= base_layers then
                    err := Some (Printf.sprintf "kept route %d -> %d in layer %d >= %d" src dst vl base_layers)
                  else begin
                    Ftable.set_layer ft ~src ~dst vl;
                    layer_of_pair.(pair) <- vl
                  end
              end)
            terminals)
        terminals;
      let cdgs =
        ref
          (Array.init base_layers (fun vl ->
               if !err = None then Cdg.of_store ~filter:(fun pr -> layer_of_pair.(pr) = vl) store
               else Cdg.create graph))
      in
      let stamps = Array.make (Graph.num_channels graph) 0 in
      let stamp = ref 0 in
      List.iter
        (fun dst ->
          Array.iter
            (fun src ->
              if src <> dst && !err = None then begin
                let pair = Ftable.pair_id ft ~src ~dst in
                if not (Ftable.path_into ft store ~pair ~src ~dst) then
                  err := Some (Printf.sprintf "repaired route %d -> %d is missing" src dst)
                else begin
                  let placed = ref false in
                  let vl = ref 0 in
                  while (not !placed) && !err = None do
                    if !vl >= Array.length !cdgs then begin
                      if Array.length !cdgs >= layer_budget then
                        err :=
                          Some
                            (Printf.sprintf "route %d -> %d fits no layer within the budget of %d" src
                               dst layer_budget)
                      else cdgs := Array.append !cdgs [| Cdg.create graph |]
                    end;
                    if !err = None then begin
                      let cdg = !cdgs.(!vl) in
                      let fresh = fresh_dependencies cdg store ~pair in
                      Cdg.add_pair cdg store ~pair;
                      if creates_cycle cdg fresh stamp stamps then begin
                        Cdg.remove_pair cdg store ~pair;
                        incr vl
                      end
                      else begin
                        Ftable.set_layer ft ~src ~dst !vl;
                        placed := true
                      end
                    end
                  done
                end
              end)
            terminals)
        dsts;
      (match !err with
      | Some msg -> Error msg
      | None ->
        let layers_used = Array.length !cdgs in
        Ftable.set_num_layers ft layers_used;
        Log.debug (fun m ->
            m "patched %d destination(s) over %d layer(s)" (List.length dsts) layers_used);
        Ok { table = ft; layers_used })
  end
