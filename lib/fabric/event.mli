(** Topology events a live subnet manager reacts to. Cables are named by
    either channel id of their bidirectional pair; switches by node id.
    Ids always refer to the fabric {e as it stands when the event fires} —
    a {!Switch_remove} re-assigns ids (see {!Fabstate.change}), so later
    events must use post-rebuild ids. *)

type t =
  | Link_down of int  (** cable fails (both directed channels) *)
  | Link_up of int  (** previously failed cable comes back *)
  | Switch_drain of int
      (** operator drains a switch: every inter-switch cable that
          connectivity can spare goes down, ids preserved *)
  | Switch_remove of int
      (** switch (and its terminals) leave the fabric; structural rebuild *)

val to_string : t -> string

(** Inverse of {!to_string}: ["down 12"], ["up 12"], ["drain 3"],
    ["remove 3"]. *)
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
