(** The live fabric manager: an event-driven subnet-manager loop that owns
    a running fabric and its routing state, the way OpenSM owns an
    InfiniBand subnet. Feed it {!Event}s (or a whole {!Schedule}) and it
    converges after each one to forwarding tables that passed the full
    deadlock-freedom verifier, preferring {e incremental} repair —
    recompute only the destinations whose forwarding trees the event
    touched ({!Repair}) — and falling back to a full
    SSSP-plus-cycle-breaking recompute when the incremental path exceeds
    its budgets or its candidate fails verification. Tables advance by
    verified epoch swaps ({!Epoch}); {!Metrics} counts everything. *)

type config = {
  algorithm : string;
      (** registry name used for full recomputes (default ["dfsssp"]);
          only ["dfsssp"] has an incremental path — anything else makes
          every event a full recompute *)
  max_layers : int;  (** hard virtual-layer budget (hardware VLs) *)
  layer_budget : int;
      (** layers the incremental path may use before falling back to a
          full recompute (clamped to [max_layers]) *)
  repair_fraction : float;
      (** incremental repair only when at most this fraction of
          destinations is affected; above it, recompute everything *)
  batch : int;
      (** destinations per weight snapshot in full recomputes (the
          batched-snapshot pipeline, DESIGN.md section 12); 1 = the
          sequential recurrence. Changes the tables a full recompute
          produces (still minimal, still balanced) *)
  domains : int;
      (** routing domains for full recomputes; with [> 1] the manager
          holds a persistent worker pool for its whole lifetime (release
          with {!release}). Never changes the tables, only the
          wall-clock *)
  kernel : Spf.kind;
      (** shortest-path kernel for full recomputes and incremental
          repairs (DESIGN.md §15). Never changes the tables, only the
          wall-clock *)
  engine : Layers.engine;
      (** offline cycle-break engine for full recomputes (DESIGN.md
          section 17; default [`Scc]). [domains] also fans its
          per-component planning out. Layer counts stay within +1 of
          the [`Dfs] oracle *)
}

(** [{ algorithm = "dfsssp"; max_layers = 8; layer_budget = 8;
    repair_fraction = 0.5; batch = 1; domains = 1; kernel = Spf.Auto;
    engine = `Scc }] *)
val default_config : config

type action =
  | Incremental of {
      repaired : int;  (** destinations recomputed *)
      total : int;  (** destinations in the fabric *)
    }
  | Full of string  (** full recompute, with the reason *)
  | Noop

type outcome = {
  event : Event.t;
  applied : bool;  (** [false]: event rejected, topology unchanged *)
  action : action;
  fallback : bool;  (** incremental was attempted and abandoned *)
  epoch : int;  (** active epoch after the event *)
  verify : Dfsssp.Verify.report option;
      (** verification report of the swapped-in tables; [None] when no
          swap happened (rejected event, no-op, or a failed recompute
          that left stale tables active — see [note]) *)
  table_diff : Ftable.diff option;
      (** forwarding-entry diff against the previous tables; [None]
          across structural rebuilds (ids re-assigned) *)
  note : string;  (** human-readable detail, [""] when all went well *)
  elapsed_s : float;
}

type t

(** [create g] routes the initial fabric and installs epoch 1. [Error] if
    the fabric cannot be routed deadlock-free within [max_layers], or has
    fewer than two terminals.
    @raise Invalid_argument on a non-positive layer budget. *)
val create : ?config:config -> Graph.t -> (t, string) result

val config : t -> config

(** The fabric as the manager currently sees it. *)
val graph : t -> Graph.t

(** The active (last verified) forwarding tables. *)
val tables : t -> Ftable.t

val metrics : t -> Metrics.t
val epoch : t -> int
val epoch_history : t -> Epoch.entry list

(** All outcomes so far, oldest first — the manager's event log. *)
val event_log : t -> outcome list

(** [apply t ev] processes one topology event end to end: mutate the
    topology, repair or recompute routes, verify, swap. Never raises on
    fabric-level failures — inspect the outcome. *)
val apply : t -> Event.t -> outcome

(** [run t schedule] applies every event in order. *)
val run : t -> Schedule.t -> outcome list

(** [converged t] is [true] iff every applied, table-changing event so
    far ended in a verified swap (the convergence criterion of
    [fabric_tool manage]). *)
val converged : t -> bool

(** The current epoch's read-only export ({!Epoch.snapshot}): routes as
    arena slices, built once per epoch and cached. The serving path of
    the controller daemon ({!Service.Server}). *)
val snapshot : t -> (Epoch.snapshot, string) result

(** [release t] shuts down the manager's routing-domain pool (a no-op
    when [domains = 1] or already released). The manager remains usable;
    later full recomputes simply run without a persistent pool. *)
val release : t -> unit

(** [shutdown t] is {!release} plus a flush of any installed trace sink —
    the teardown every exit path (clean, exception, signal handler) must
    reach so a dying process neither leaks domains nor truncates traces.
    Idempotent; the manager remains usable afterwards. *)
val shutdown : t -> unit

val pp_outcome : Format.formatter -> outcome -> unit

(** Metrics, fabric stats and a fresh verification of the active tables. *)
val pp_summary : Format.formatter -> t -> unit
