type change =
  | Disabled of int list
  | Restored of int list
  | Rebuilt

type t = {
  mutable graph : Graph.t;
  mutable generation : int;
}

let create g = { graph = g; generation = 0 }

let graph t = t.graph

let generation t = t.generation

let disabled_cables t = Degrade.disabled_cables t.graph

let enabled_cables t = Degrade.switch_cables t.graph

let apply t ev =
  match ev with
  | Event.Link_down cable -> (
    match Degrade.disable_cable t.graph ~cable with
    | Error msg -> Error msg
    | Ok (g, chans) ->
      t.graph <- g;
      Ok (Disabled chans))
  | Event.Link_up cable -> (
    match Degrade.restore_cable t.graph ~cable with
    | Error msg -> Error msg
    | Ok (g, chans) ->
      t.graph <- g;
      Ok (Restored chans))
  | Event.Switch_drain switch -> (
    match Degrade.drain_switch t.graph ~switch with
    | Error msg -> Error msg
    | Ok (g, chans) ->
      t.graph <- g;
      Ok (Disabled chans))
  | Event.Switch_remove switch -> (
    match Degrade.remove_switch t.graph ~switch with
    | Error msg -> Error msg
    | Ok g ->
      t.graph <- g;
      t.generation <- t.generation + 1;
      Ok Rebuilt)
