let log_src = Logs.Src.create "fabric.manager" ~doc:"event-driven fabric manager"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  algorithm : string;
  max_layers : int;
  layer_budget : int;
  repair_fraction : float;
  batch : int;
  domains : int;
  kernel : Spf.kind;
  engine : Layers.engine;
}

let default_config =
  {
    algorithm = "dfsssp";
    max_layers = 8;
    layer_budget = 8;
    repair_fraction = 0.5;
    batch = 1;
    domains = 1;
    kernel = Spf.Auto;
    engine = `Scc;
  }

type action =
  | Incremental of {
      repaired : int;
      total : int;
    }
  | Full of string
  | Noop

type outcome = {
  event : Event.t;
  applied : bool;
  action : action;
  fallback : bool;
  epoch : int;
  verify : Dfsssp.Verify.report option;
  table_diff : Ftable.diff option;
  note : string;
  elapsed_s : float;
}

type t = {
  config : config;
  state : Fabstate.t;
  epochs : Epoch.t;
  metrics : Metrics.t;
  mutable weights : int array;
  mutable outcomes : outcome list; (* newest first *)
  mutable pool : Sssp.pool option;
      (* persistent routing-domain pool ([domains > 1] only): scratch is
         epoch-stamped, so the same pool serves every full recompute even
         across structural rebuilds of the graph *)
}

let config t = t.config

let graph t = Fabstate.graph t.state

let tables t = Option.get (Epoch.active t.epochs)

let metrics t = t.metrics

let epoch t = Epoch.epoch t.epochs

let epoch_history t = Epoch.history t.epochs

let event_log t = List.rev t.outcomes

(* Full recompute: fresh weight state, route everything, re-break all
   cycles. The incremental path's last resort and the only path for
   structural rebuilds and non-DFSSSP algorithms. *)
let full_route t =
  let g = Fabstate.graph t.state in
  Obs.Trace.with_span "fabric.full_route"
    ~attrs:(fun () ->
      [
        ("algorithm", Obs.Trace.Str t.config.algorithm);
        ("terminals", Obs.Trace.Int (Graph.num_terminals g));
      ])
  @@ fun () ->
  if t.config.algorithm = "dfsssp" then begin
    t.weights <- Sssp.initial_weights g;
    match
      Sssp.route_plane ~batch:t.config.batch ?pool:t.pool ~kernel:t.config.kernel g
        ~weights:t.weights
    with
    | Error msg -> Error msg
    | Ok ft -> (
      match
        Dfsssp.assign_layers ~engine:t.config.engine ~domains:t.config.domains
          ~max_layers:t.config.max_layers ft
      with
      | Ok ft -> Ok ft
      | Error e -> Error (Dfsssp.error_to_string e))
  end
  else
    match
      Dfsssp.Registry.find ~max_layers:t.config.max_layers ~engine:t.config.engine
        ~batch:t.config.batch ~domains:t.config.domains ~kernel:t.config.kernel
        t.config.algorithm
    with
    | None -> Error (Printf.sprintf "unknown algorithm %S" t.config.algorithm)
    | Some a -> a.Dfsssp.Registry.run g

let release t =
  match t.pool with
  | None -> ()
  | Some pool ->
    Sssp.destroy_pool pool;
    t.pool <- None

(* The one teardown path for every exit — clean, exception or signal:
   a killed daemon must neither leak worker domains nor truncate a
   JSON-lines trace mid-object. Idempotent. *)
let shutdown t =
  release t;
  Obs.Trace.flush ()

let snapshot t = Epoch.snapshot t.epochs

let create ?(config = default_config) g =
  if config.max_layers < 1 then invalid_arg "Manager.create: max_layers < 1";
  if config.layer_budget < 1 then invalid_arg "Manager.create: layer_budget < 1";
  if config.batch < 1 then invalid_arg "Manager.create: batch < 1";
  if config.domains < 1 then invalid_arg "Manager.create: domains < 1";
  if Graph.num_terminals g < 2 then Error "Manager.create: fabric has fewer than two terminals"
  else begin
    let t =
      {
        config;
        state = Fabstate.create g;
        epochs = Epoch.create ();
        metrics = Metrics.create ();
        weights = Sssp.initial_weights g;
        outcomes = [];
        pool = (if config.domains > 1 then Some (Sssp.create_pool ~domains:config.domains ()) else None);
      }
    in
    match full_route t with
    | Error msg ->
      release t;
      Error msg
    | Ok ft -> (
      match Epoch.try_swap t.epochs ~label:"initial" ft with
      | Error msg, verify_s ->
        Obs.Timer.add t.metrics.Metrics.verify verify_s;
        release t;
        Error (Printf.sprintf "initial tables rejected: %s" msg)
      | Ok _, verify_s ->
        Obs.Timer.add t.metrics.Metrics.verify verify_s;
        Obs.Counter.set t.metrics.Metrics.swap_epochs (Epoch.epoch t.epochs);
        Ok t)
  end

let finish t outcome =
  t.outcomes <- outcome :: t.outcomes;
  Log.info (fun m ->
      m "%s: %s%s epoch %d" (Event.to_string outcome.event)
        (match outcome.action with
        | Incremental { repaired; total } -> Printf.sprintf "incremental %d/%d" repaired total
        | Full reason -> "full (" ^ reason ^ ")"
        | Noop -> "noop")
        (if outcome.note = "" then "" else " [" ^ outcome.note ^ "]")
        outcome.epoch);
  outcome

let full_swap t ~event ~t0 ~reason ~fallback ~diff_against =
  let m = t.metrics in
  let tr0 = Unix.gettimeofday () in
  match full_route t with
  | Error msg ->
    Obs.Timer.add m.Metrics.repair (Unix.gettimeofday () -. tr0);
    finish t
      {
        event;
        applied = true;
        action = Full reason;
        fallback;
        epoch = Epoch.epoch t.epochs;
        verify = None;
        table_diff = None;
        note = "FULL RECOMPUTE FAILED, serving stale tables: " ^ msg;
        elapsed_s = Unix.gettimeofday () -. t0;
      }
  | Ok ft -> (
    Obs.Timer.add m.Metrics.repair (Unix.gettimeofday () -. tr0);
    match Epoch.try_swap t.epochs ~label:(Event.to_string event ^ " (full)") ft with
    | Error msg, verify_s ->
      Obs.Timer.add m.Metrics.verify verify_s;
      Obs.Counter.incr m.Metrics.verify_failures;
      finish t
        {
          event;
          applied = true;
          action = Full reason;
          fallback;
          epoch = Epoch.epoch t.epochs;
          verify = None;
          table_diff = None;
          note = "full recompute rejected, serving stale tables: " ^ msg;
          elapsed_s = Unix.gettimeofday () -. t0;
        }
    | Ok r, verify_s ->
      Obs.Timer.add m.Metrics.verify verify_s;
      Obs.Counter.incr m.Metrics.full_recomputes;
      Obs.Counter.set m.Metrics.swap_epochs (Epoch.epoch t.epochs);
      let table_diff = Option.map (fun old -> Ftable.diff old ft) diff_against in
      finish t
        {
          event;
          applied = true;
          action = Full reason;
          fallback;
          epoch = Epoch.epoch t.epochs;
          verify = Some r;
          table_diff;
          note = "";
          elapsed_s = Unix.gettimeofday () -. t0;
        })

let incremental_swap t ~event ~t0 ~old_ft ~affected =
  let m = t.metrics in
  let g = Fabstate.graph t.state in
  let total = Graph.num_terminals g in
  let budget = int_of_float (t.config.repair_fraction *. float_of_int total) in
  if t.config.algorithm <> "dfsssp" then
    full_swap t ~event ~t0 ~reason:(t.config.algorithm ^ " has no incremental path") ~fallback:false
      ~diff_against:(Some old_ft)
  else if List.length affected > budget then
    full_swap t ~event ~t0
      ~reason:(Printf.sprintf "%d/%d destinations affected, over repair budget" (List.length affected) total)
      ~fallback:false ~diff_against:(Some old_ft)
  else begin
    let tr0 = Unix.gettimeofday () in
    let layer_budget = min t.config.layer_budget t.config.max_layers in
    let patched =
      Obs.Trace.with_span "fabric.repair"
        ~attrs:(fun () ->
          [("destinations", Obs.Trace.Int (List.length affected)); ("total", Obs.Trace.Int total)])
        (fun () ->
          Repair.patch ~kernel:t.config.kernel ~graph:g ~old:old_ft ~dsts:affected
            ~weights:t.weights ~layer_budget ())
    in
    match patched with
    | Error msg ->
      Obs.Timer.add m.Metrics.repair (Unix.gettimeofday () -. tr0);
      Obs.Counter.incr m.Metrics.fallbacks;
      full_swap t ~event ~t0 ~reason:("incremental repair failed: " ^ msg) ~fallback:true
        ~diff_against:(Some old_ft)
    | Ok patched -> (
      Obs.Timer.add m.Metrics.repair (Unix.gettimeofday () -. tr0);
      match Epoch.try_swap t.epochs ~label:(Event.to_string event ^ " (incremental)") patched.Repair.table with
      | Error msg, verify_s ->
        Obs.Timer.add m.Metrics.verify verify_s;
        Obs.Counter.incr m.Metrics.verify_failures;
        Obs.Counter.incr m.Metrics.fallbacks;
        full_swap t ~event ~t0 ~reason:("incremental tables rejected: " ^ msg) ~fallback:true
          ~diff_against:(Some old_ft)
      | Ok r, verify_s ->
        Obs.Timer.add m.Metrics.verify verify_s;
        Obs.Counter.incr m.Metrics.incremental_repairs;
        Obs.Counter.incr ~n:(List.length affected) m.Metrics.dsts_repaired;
        Obs.Counter.incr ~n:total m.Metrics.dsts_total;
        Obs.Counter.set m.Metrics.swap_epochs (Epoch.epoch t.epochs);
        finish t
          {
            event;
            applied = true;
            action = Incremental { repaired = List.length affected; total };
            fallback = false;
            epoch = Epoch.epoch t.epochs;
            verify = Some r;
            table_diff = Some (Ftable.diff old_ft patched.Repair.table);
            note = "";
            elapsed_s = Unix.gettimeofday () -. t0;
          })
  end

let apply_inner t event =
  let t0 = Unix.gettimeofday () in
  let m = t.metrics in
  Obs.Counter.incr m.Metrics.events_seen;
  let old_ft = tables t in
  let old_graph = Fabstate.graph t.state in
  match Fabstate.apply t.state event with
  | Error msg ->
    Obs.Counter.incr m.Metrics.events_rejected;
    finish t
      {
        event;
        applied = false;
        action = Noop;
        fallback = false;
        epoch = Epoch.epoch t.epochs;
        verify = None;
        table_diff = None;
        note = "rejected: " ^ msg;
        elapsed_s = Unix.gettimeofday () -. t0;
      }
  | Ok change -> (
    Obs.Counter.incr m.Metrics.events_applied;
    match change with
    | Fabstate.Rebuilt ->
      full_swap t ~event ~t0 ~reason:"structural rebuild" ~fallback:false ~diff_against:None
    | Fabstate.Disabled [] ->
      (* a drain that could spare no cable: topology unchanged *)
      finish t
        {
          event;
          applied = true;
          action = Noop;
          fallback = false;
          epoch = Epoch.epoch t.epochs;
          verify = None;
          table_diff = None;
          note = "no cable could be drained";
          elapsed_s = Unix.gettimeofday () -. t0;
        }
    | Fabstate.Disabled chans ->
      incremental_swap t ~event ~t0 ~old_ft
        ~affected:(Repair.affected_destinations old_ft ~channels:chans)
    | Fabstate.Restored chans ->
      incremental_swap t ~event ~t0 ~old_ft
        ~affected:
          (Repair.beneficiary_destinations ~old_graph ~graph:(Fabstate.graph t.state) ~restored:chans))

let apply t event =
  let span =
    Obs.Trace.begin_span "fabric.apply" ~attrs:(fun () ->
        [("event", Obs.Trace.Str (Event.to_string event))])
  in
  let o = apply_inner t event in
  Obs.Trace.end_span span
    ~attrs:
      [
        ( "action",
          Obs.Trace.Str
            (match o.action with
            | Incremental _ -> "incremental"
            | Full _ -> "full"
            | Noop -> "noop") );
        ("applied", Obs.Trace.Bool o.applied);
        ("epoch", Obs.Trace.Int o.epoch);
      ];
  o

let run t schedule = List.map (apply t) schedule

let pp_action ppf = function
  | Incremental { repaired; total } ->
    Format.fprintf ppf "incremental %d/%d dsts (%.0f%%)" repaired total
      (if total = 0 then 0.0 else 100.0 *. float_of_int repaired /. float_of_int total)
  | Full reason -> Format.fprintf ppf "full recompute (%s)" reason
  | Noop -> Format.pp_print_string ppf "no-op"

let pp_outcome ppf o =
  Format.fprintf ppf "%-12s %a" (Event.to_string o.event) pp_action o.action;
  if o.fallback then Format.fprintf ppf " [fallback]";
  (match o.table_diff with
  | Some d when o.applied -> Format.fprintf ppf ", %d entries rewritten" d.Ftable.entries_changed
  | _ -> ());
  Format.fprintf ppf ", epoch %d" o.epoch;
  (match o.verify with
  | Some r ->
    Format.fprintf ppf ", %d layer(s), verified deadlock-free%s" r.Dfsssp.Verify.num_layers
      (if r.Dfsssp.Verify.stats.Ftable.minimal then "" else " (detours)")
  | None -> ());
  if o.note <> "" then Format.fprintf ppf " — %s" o.note

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>%a@," Metrics.pp t.metrics;
  Format.fprintf ppf "fabric: %a@," Graph.pp_stats (graph t);
  (match Epoch.active t.epochs with
  | None -> Format.fprintf ppf "no active tables@]"
  | Some ft ->
    (match Dfsssp.Verify.report ft with
    | Ok r -> Format.fprintf ppf "active tables: %a@]" Dfsssp.Verify.pp_report r
    | Error msg -> Format.fprintf ppf "active tables: INVALID (%s)@]" msg))

let converged t =
  List.for_all
    (fun o ->
      (not o.applied)
      ||
      match o.action with
      | Noop -> true
      | Incremental _ | Full _ -> o.verify <> None)
    t.outcomes
