(** Routing-runtime experiments: the paper's Fig. 7 (k-ary n-tree sweep)
    and Fig. 8 (real systems). Wall-clock seconds to compute the complete
    routing (tables plus, where applicable, the virtual-layer
    assignment).

    [domains] times the batched-snapshot pipeline
    ({!Routing.Sssp.recommended_batch} destinations per snapshot) on that
    many domains instead of the sequential recurrence; omitted, the
    figures measure the sequential baseline as before. *)

val fig7 : ?max_endpoints:int -> ?domains:int -> unit -> Report.table

val fig8 : ?scale:int -> ?domains:int -> unit -> Report.table
