type status =
  | Certified of int
  | Routed of int
  | Refused of string

type outcome = {
  algorithm : string;
  status : status;
}

type subject = {
  spec : string;
  description : string;
  switches : int;
  terminals : int;
  channels : int;
  min_layers_lb : int;
  outcomes : outcome list;
  failures : string list;
}

let find_corpus_dir () =
  List.find_opt
    (fun dir -> Sys.file_exists dir && Sys.is_directory dir)
    [ "examples/zoo"; "../examples/zoo"; "../../examples/zoo"; "../../../examples/zoo" ]

let corpus_specs ~dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun name ->
       let path = Filename.concat dir name in
       match String.lowercase_ascii (Filename.extension name) with
       | ".dot" | ".gv" -> Some ("dot:" ^ path)
       | ".edges" | ".edgelist" -> Some ("edgelist:" ^ path)
       | _ -> None)

let generator_specs =
  [ "jellyfish:10,6,3:3"; "jellyfish:14,8,5:7"; "xpander:3,4:5"; "xpander:4,5:11" ]

let verdict_text (report : Analysis.Analyzer.report) =
  match report.Analysis.Analyzer.verdict with
  | Analysis.Analyzer.Certified _ -> "lint errors"
  | Analysis.Analyzer.Rejected msg -> msg

let check_spec ?max_layers spec =
  match Topospec.parse spec with
  | Error e -> Error e
  | Ok t ->
    let g = t.Topospec.graph in
    let coords = t.Topospec.coords in
    let fails = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> fails := m :: !fails) fmt in
    let existence = Analysis.Existence.analyze g in
    (match existence.Analysis.Existence.unreachable with
    | Some (s, d) -> fail "existence: terminal %d cannot reach terminal %d" s d
    | None -> ());
    let lb = existence.Analysis.Existence.min_layers_lb in
    let algorithms = Dfsssp.Registry.all ?coords ?max_layers () in
    let outcomes =
      List.map
        (fun (a : Dfsssp.Registry.algorithm) ->
          match a.Dfsssp.Registry.run g with
          | Error msg ->
            if a.Dfsssp.Registry.name = "dfsssp" then fail "dfsssp refused: %s" msg;
            { algorithm = a.Dfsssp.Registry.name; status = Refused msg }
          | Ok ft ->
            let name = a.Dfsssp.Registry.name in
            let layers = Ftable.num_layers ft in
            (match Ftable.validate ft with
            | Error msg ->
              fail "%s: invalid table: %s" name msg;
              { algorithm = name; status = Routed layers }
            | Ok _ ->
              if a.Dfsssp.Registry.deadlock_free_by_design then begin
                let report = Analysis.Analyzer.analyze ~graph:g ft in
                if not (Analysis.Analyzer.ok report) then
                  fail "%s: certificate rejected: %s" name (verdict_text report);
                if layers < lb then
                  fail "%s: %d layer(s) below the provable lower bound %d" name layers lb;
                { algorithm = name; status = Certified layers }
              end
              else { algorithm = name; status = Routed layers }))
        algorithms
    in
    (* Kernel parity: every SSSP kernel must produce the identical table. *)
    let kernel_run kind = Runs.run_named ?coords ?max_layers ~kernel:kind "dfsssp" g in
    (match (kernel_run Spf.Heap, kernel_run Spf.Bucket, kernel_run Spf.Incremental) with
    | Ok heap, Ok bucket, Ok incr ->
      let same a b = (Ftable.diff a b).Ftable.entries_changed = 0 in
      if not (same heap bucket) then fail "kernel parity: heap and bucket tables differ";
      if not (same heap incr) then fail "kernel parity: heap and incremental tables differ";
      if Ftable.num_layers heap <> Ftable.num_layers bucket
         || Ftable.num_layers heap <> Ftable.num_layers incr
      then fail "kernel parity: layer counts differ across kernels"
    | _ -> fail "kernel parity: a kernel run refused where dfsssp should succeed");
    (* Engine parity: SCC condensation within +1 layer of the DFS oracle. *)
    let engine_run e = Runs.run_named ?coords ?max_layers ~engine:e "dfsssp" g in
    (match (engine_run `Scc, engine_run `Dfs) with
    | Ok scc, Ok dfs ->
      let ls = Ftable.num_layers scc and ld = Ftable.num_layers dfs in
      if ls > ld + 1 then fail "engine parity: scc uses %d layers, dfs oracle %d" ls ld;
      (match Analysis.Analyzer.certify scc with
      | Ok _ -> ()
      | Error msg -> fail "engine parity: scc table rejected: %s" msg)
    | _ -> fail "engine parity: an engine run refused where dfsssp should succeed");
    Ok
      {
        spec;
        description = t.Topospec.description;
        switches = Graph.num_switches g;
        terminals = Graph.num_terminals g;
        channels = Graph.num_channels g;
        min_layers_lb = lb;
        outcomes;
        failures = List.rev !fails;
      }

let run ?max_layers ~specs () =
  List.map
    (fun spec ->
      match check_spec ?max_layers spec with
      | Ok s -> s
      | Error e ->
        {
          spec;
          description = "unparsable spec";
          switches = 0;
          terminals = 0;
          channels = 0;
          min_layers_lb = 0;
          outcomes = [];
          failures = [ Printf.sprintf "spec: %s" e ];
        })
    specs

let failures subjects =
  List.concat_map
    (fun s -> List.map (fun f -> Printf.sprintf "%s: %s" s.spec f) s.failures)
    subjects

let pp_outcome ppf { algorithm; status } =
  match status with
  | Certified layers -> Format.fprintf ppf "%s=%dL" algorithm layers
  | Routed _ -> Format.fprintf ppf "%s=ok" algorithm
  | Refused _ -> Format.fprintf ppf "%s=-" algorithm

let pp_summary ppf subjects =
  List.iter
    (fun s ->
      if s.failures = [] then
        Format.fprintf ppf "PASS %-34s sw=%-3d term=%-3d lb=%d  %a@." s.spec s.switches
          s.terminals s.min_layers_lb
          (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp_outcome)
          s.outcomes
      else begin
        Format.fprintf ppf "FAIL %s@." s.spec;
        List.iter (fun f -> Format.fprintf ppf "  - %s@." f) s.failures
      end)
    subjects;
  let bad = List.length (List.filter (fun s -> s.failures <> []) subjects) in
  Format.fprintf ppf "%d subject(s), %d failing@." (List.length subjects) bad
