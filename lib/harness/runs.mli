(** Shared plumbing for the per-figure experiment drivers: run a named
    algorithm on a fabric, time it, and turn outcomes into table cells
    (failures become the paper's missing bars). *)

(** The paper's Fig. 4 algorithm line-up (names for {!Dfsssp.Registry}). *)
val paper_algorithms : string list

(** [run_named ?coords ?max_layers name g] routes [g], or explains why the
    algorithm refused. [batch]/[domains] select the batched-snapshot
    pipeline, [kernel] the shortest-path core and [engine] the offline
    cycle-break engine on supporting algorithms (see
    {!Dfsssp.Registry.all}). *)
val run_named :
  ?coords:Coords.t ->
  ?max_layers:int ->
  ?engine:Layers.engine ->
  ?batch:int ->
  ?domains:int ->
  ?kernel:Routing.Spf.kind ->
  string ->
  Graph.t ->
  (Ftable.t, string) result

(** [timed f] is [(wall-clock seconds, f ())]. *)
val timed : (unit -> 'a) -> float * 'a

(** [ebb_cell ?coords ~patterns ~seed name g] is the effective bisection
    bandwidth as a table cell, [Missing] if the algorithm refuses [g]. *)
val ebb_cell : ?coords:Coords.t -> ?ranks:int array -> patterns:int -> seed:int -> string -> Graph.t -> Report.cell

(** [vl_cell name g] is the number of virtual layers the algorithm needs
    on [g] ([Missing] on refusal). *)
val vl_cell : ?coords:Coords.t -> ?max_layers:int -> string -> Graph.t -> Report.cell

(** [analyzer_cell ft] is the static analyzer's verdict on [ft] as a table
    cell: ["certified"] when the certificate checker accepts and lint
    reports no errors, ["REJECTED (n error(s))"] otherwise. *)
val analyzer_cell : Ftable.t -> Report.cell

(** [analyzer_run_cell name g] routes [g] with [name] and analyzes the
    result ([Missing] on refusal). *)
val analyzer_run_cell : ?coords:Coords.t -> ?max_layers:int -> string -> Graph.t -> Report.cell

(** [runtime_cell name g] is the routing wall-clock time ([Missing] on
    refusal). [batch]/[domains] as in {!run_named} — the pipeline whose
    runtime the cell reports. *)
val runtime_cell : ?coords:Coords.t -> ?batch:int -> ?domains:int -> string -> Graph.t -> Report.cell

(** [sample_ranks ~rng ~count g] picks [count] distinct terminals uniformly
    (a scattered job allocation); all terminals if [count] exceeds the
    fabric. *)
val sample_ranks : rng:Rng.t -> count:int -> Graph.t -> int array
