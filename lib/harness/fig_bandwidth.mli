(** Effective-bisection-bandwidth experiments: the paper's Fig. 4
    (real-world systems), Fig. 5 (XGFT sweep) and Fig. 6 (Kautz sweep).
    Each cell is the mean bandwidth share over random bisection patterns
    (1.0 = uncongested); [-] marks an algorithm that refused the fabric.

    Cells are independent (each routes and simulates with its own seeded
    RNG), so [domains > 1] fills the grid with a worker pool — identical
    numbers, shorter sweep. *)

(** [fig4 ?scale ?patterns ?seed ()]: one row per real-world system
    stand-in, one column per algorithm. [scale] divides system sizes
    (default 4 — see DESIGN.md §8); [patterns] random bisections per cell
    (default 50). *)
val fig4 : ?scale:int -> ?patterns:int -> ?seed:int -> ?domains:int -> unit -> Report.table

(** [fig5 ?max_endpoints ?patterns ?seed ()]: XGFT sweep over Table I
    sizes up to [max_endpoints] (default 1024). *)
val fig5 : ?max_endpoints:int -> ?patterns:int -> ?seed:int -> ?domains:int -> unit -> Report.table

(** [fig6 ?max_endpoints ?patterns ?seed ()]: Kautz sweep. *)
val fig6 : ?max_endpoints:int -> ?patterns:int -> ?seed:int -> ?domains:int -> unit -> Report.table
