let sssp_initial_weight () =
  let fabrics =
    [
      ("ring8", Topo_ring.make ~switches:8 ~terminals_per_switch:2);
      ("kautz(2,3)", Topo_kautz.make ~b:2 ~n:3 ~endpoints:36);
      ("6-ary 2-tree", Topo_tree.make ~k:6 ~n:2 ());
      ( "random",
        let rng = Rng.create 5 in
        Topo_random.make ~switches:10 ~switch_radix:10 ~terminals:20 ~inter_links:14 ~rng );
    ]
  in
  let rows =
    List.concat_map
      (fun (name, g) ->
        List.filter_map
          (fun (label, initial_weight) ->
            match Routing.Sssp.route ?initial_weight g with
            | Error _ -> None
            | Ok ft -> (
              match Ftable.validate ft with
              | Error _ -> None
              | Ok s ->
                Some
                  [
                    Report.Str name;
                    Report.Str label;
                    Report.Str (if s.Ftable.minimal then "yes" else "NO");
                    Report.Int s.Ftable.max_hops;
                    Report.Flt s.Ftable.avg_hops;
                  ]))
          [ ("|V|^2 (paper)", None); ("1 (naive)", Some 1) ])
      fabrics
  in
  {
    Report.title = "Ablation: SSSP initial channel weight (paper Fig. 1)";
    columns = [ "fabric"; "initial weight"; "minimal"; "max hops"; "avg hops" ];
    rows;
    notes = [ "weight 1 lets accumulated increments exceed a hop's cost: detours appear" ];
  }

let ebb_of ft ~patterns ~seed =
  let rng = Rng.create seed in
  (Simulator.Congestion.effective_bisection_bandwidth ~patterns ~rng ft).Simulator.Congestion.samples
    .Simulator.Metrics.mean

let hardened_routings ?(patterns = 30) ?(seed = 21) ?batch ?domains () =
  let g, coords = Topo_torus.torus ~dims:[| 6; 6 |] ~terminals_per_switch:1 in
  let lb = Analysis.Existence.min_layers_lb g in
  let rows =
    List.filter_map
      (fun name ->
        match Runs.run_named ~coords ~max_layers:8 ?batch ?domains name g with
        | Error _ -> None
        | Ok ft ->
          Some
            [
              Report.Str name;
              Report.Str (if Dfsssp.Verify.deadlock_free ft then "yes" else "NO");
              Report.Int (Ftable.num_layers ft);
              Report.Int lb;
              Report.Flt (ebb_of ft ~patterns ~seed);
              Runs.analyzer_cell ft;
            ])
      [ "dor"; "dfdor"; "minhop"; "dfminhop"; "sssp"; "dfsssp" ]
  in
  {
    Report.title = "Ablation: hardening arbitrary routings with the layer assignment (6x6 torus)";
    columns = [ "routing"; "deadlock-free"; "VLs"; "VL lower bound"; "eBB"; "analyzer" ];
    rows;
    notes =
      [
        "df* = base routes unchanged, offline cycle-breaking applied on top";
        "VL lower bound = provable per-topology layer minimum (Analysis.Existence)";
      ];
  }

let dragonfly ?(patterns = 30) ?(seed = 22) ?batch ?domains () =
  let g = Topo_dragonfly.make ~a:4 ~p:2 ~h:2 () in
  let lb = Analysis.Existence.min_layers_lb g in
  let missing_row name =
    [
      Report.Str name; Report.Missing; Report.Missing; Report.Int lb; Report.Missing;
      Report.Missing; Report.Missing;
    ]
  in
  let rows =
    List.map
      (fun name ->
        match Runs.run_named ~max_layers:8 ?batch ?domains name g with
        | Error _ -> missing_row name
        | Ok ft -> (
          match Ftable.validate ft with
          | Error _ -> missing_row name
          | Ok s ->
            [
              Report.Str name;
              Report.Str (if Dfsssp.Verify.deadlock_free ft then "yes" else "NO");
              Report.Int (Ftable.num_layers ft);
              Report.Int lb;
              Report.Flt s.Ftable.avg_hops;
              Report.Flt (ebb_of ft ~patterns ~seed);
              Runs.analyzer_cell ft;
            ]))
      Runs.paper_algorithms
  in
  {
    Report.title = "Extension: dragonfly(a=4,p=2,h=2), 9 groups, 72 nodes";
    columns = [ "routing"; "deadlock-free"; "VLs"; "VL lower bound"; "avg hops"; "eBB"; "analyzer" ];
    rows;
    notes =
      [
        "a topology class outside the paper's evaluation set (generality check)";
        "VL lower bound = provable per-topology layer minimum (Analysis.Existence)";
      ];
  }

let random_graphs ?(max_layers = 8) () =
  let rows =
    List.filter_map
      (fun spec ->
        match Topospec.parse spec with
        | Error _ -> None
        | Ok t ->
          let g = t.Topospec.graph in
          let existence = Analysis.Existence.analyze g in
          Some
            [
              Report.Str spec;
              Report.Int (Graph.num_switches g);
              Report.Int (Graph.num_terminals g);
              Report.Str
                (if Analysis.Existence.feasible existence ~budget:max_layers then "yes" else "NO");
              Report.Int existence.Analysis.Existence.min_layers_lb;
              Runs.vl_cell ~max_layers "updown" g;
              Runs.vl_cell ~max_layers "lash" g;
              Runs.vl_cell ~max_layers "dfsssp" g;
              Runs.analyzer_run_cell ~max_layers "dfsssp" g;
            ])
      Zoo.generator_specs
  in
  {
    Report.title = "Extension: expander-family random graphs (jellyfish, xpander) — existence and VL lower bounds";
    columns =
      [ "spec"; "switches"; "terminals"; "feasible@8"; "VL lower bound"; "updown VLs"; "lash VLs"; "dfsssp VLs"; "analyzer" ];
    rows;
    notes =
      [
        "seeded samples from the zoo battery (Zoo.generator_specs); deterministic in the spec";
        "VL lower bound = provable per-topology layer minimum (Analysis.Existence)";
      ];
  }

let balancing ?(seed = 23) () =
  (* Layer balancing spreads routes over unused lanes: same wire, more
     buffer slots in use. Measure drain time of a heavy shift pattern on
     the packet simulator. *)
  let g = fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1) in
  ignore seed;
  let terminals = Graph.terminals g in
  let n = Array.length terminals in
  (* two superposed shifts, single-slot buffers: lane occupancy is the
     bottleneck, so spreading routes over more lanes pays *)
  let flows =
    Array.init (2 * n) (fun i ->
        let j = i / 2 in
        let hop = if i mod 2 = 0 then n / 2 else (n / 4) + 1 in
        (terminals.(j), terminals.((j + hop) mod n), 40))
  in
  let rows =
    List.filter_map
      (fun (label, balance) ->
        match Dfsssp.route ~max_layers:8 ~balance g with
        | Error _ -> None
        | Ok ft -> (
          let config = { Simulator.Flitsim.default_config with num_vls = 8; buffer_slots = 1 } in
          match Simulator.Flitsim.run ~config ft ~flows with
          | Simulator.Flitsim.Delivered { cycles; delivered; _ } ->
            Some [ Report.Str label; Report.Int (Ftable.num_layers ft); Report.Int cycles; Report.Int delivered ]
          | Simulator.Flitsim.Deadlocked _ | Simulator.Flitsim.Out_of_cycles _ -> None))
      [ ("required lanes only", false); ("balanced over 8 lanes", true) ]
  in
  {
    Report.title = "Ablation: layer balancing (tail of Algorithm 2), packet simulator on 4x4 torus";
    columns = [ "assignment"; "lanes used"; "drain cycles"; "packets" ];
    rows;
    notes = [ "more lanes = more buffer slots per physical link = fewer stalls" ];
  }

let online_engines ?(max_endpoints = 512) () =
  let rows =
    List.map
      (fun (r : Tableone.row) ->
        let g = Tableone.tree_graph r in
        match Routing.Sssp.route g with
        | Error _ -> [ Report.Int r.Tableone.endpoints ]
        | Ok ft -> (
          match Ftable.to_store ft with
          | Error _ -> [ Report.Int r.Tableone.endpoints ]
          | Ok store ->
          let time f =
            let dt, outcome = Runs.timed f in
            match outcome with
            | Ok _ -> Report.Time dt
            | Error _ -> Report.Missing
          in
          let online engine () = Online.assign_store ~engine store ~max_layers:16 in
          let offline engine () =
            Layers.assign_store ~engine store ~max_layers:16 ~heuristic:Heuristic.Weakest
          in
          [
            Report.Int r.Tableone.endpoints;
            time (online `Dfs);
            time (online `Pk);
            time (offline `Dfs);
            time (offline `Scc);
          ]))
      (Tableone.rows_up_to max_endpoints)
  in
  {
    Report.title = "Ablation: online cycle-check engines vs offline sweep (k-ary n-tree, SSSP paths)";
    columns =
      [ "#endpoints"; "online DFS"; "online Pearce-Kelly"; "offline DFS"; "offline SCC" ];
    rows;
    notes = [ "assignment time only (routes precomputed); all four are deadlock-free" ];
  }

let adversarial_patterns () =
  let algorithms = [ "minhop"; "updown"; "lash"; "dfsssp" ] in
  let fabrics =
    [
      ("8x8 torus", fst (Topo_torus.torus ~dims:[| 8; 8 |] ~terminals_per_switch:1));
      ("16-ary 2-tree", Topo_tree.make ~k:16 ~n:2 ());
    ]
  in
  let rows =
    List.concat_map
      (fun (fname, g) ->
        let ranks = Graph.terminals g in
        let routed =
          List.filter_map
            (fun name ->
              match Runs.run_named name g with
              | Ok ft -> Some (name, ft)
              | Error _ -> None)
            algorithms
        in
        List.filter_map
          (fun (pname, pattern) ->
            match pattern ranks with
            | Error _ -> None
            | Ok flows ->
              Some
                (Report.Str fname :: Report.Str pname
                :: List.map
                     (fun name ->
                       match List.assoc_opt name routed with
                       | None -> Report.Missing
                       | Some ft ->
                         let r = Simulator.Congestion.evaluate ft ~flows in
                         Report.Flt r.Simulator.Congestion.mean_share)
                     algorithms))
          Simulator.Patterns.adversarial)
      fabrics
  in
  {
    Report.title = "Extension: adversarial permutation patterns (mean bandwidth share)";
    columns = "fabric" :: "pattern" :: algorithms;
    rows;
    notes = [ "deterministic permutations; 1.0 = every flow at wire speed" ];
  }

let multipath ?(matchings = 20) ?(seed = 29) () =
  let g = fst (Topo_torus.torus ~dims:[| 8; 8 |] ~terminals_per_switch:1) in
  let ranks = Graph.terminals g in
  let tornado_flows =
    match Simulator.Patterns.tornado ranks with
    | Ok f -> f
    | Error _ -> [||]
  in
  let rows =
    List.map
      (fun planes ->
        match Dfsssp.Multipath.route ~planes ~max_layers:16 g with
        | Error _ -> [ Report.Int planes; Report.Missing; Report.Missing; Report.Missing ]
        | Ok mp ->
          let tornado_share =
            let paths = Dfsssp.Multipath.spread_paths mp ~flows:tornado_flows in
            (Simulator.Congestion.evaluate_paths g ~paths).Simulator.Congestion.mean_share
          in
          let rng = Rng.create seed in
          let means =
            Array.init matchings (fun _ ->
                let flows = Simulator.Patterns.random_bisection rng ranks in
                let paths = Dfsssp.Multipath.spread_paths mp ~flows in
                (Simulator.Congestion.evaluate_paths g ~paths).Simulator.Congestion.mean_share)
          in
          [
            Report.Int planes;
            Report.Int (Dfsssp.Multipath.num_layers mp);
            Report.Flt tornado_share;
            Report.Flt (Simulator.Metrics.mean means);
          ])
      [ 1; 2; 4 ]
  in
  {
    Report.title = "Extension: LMC-style multipath on the 8x8 torus (16-lane budget)";
    columns = [ "planes"; "joint VLs"; "tornado share"; "bisection eBB" ];
    rows;
    notes =
      [
        "planes share channel weights: each avoids its predecessors' load";
        "one joint lane assignment covers every plane (shared buffers)";
      ];
  }

let routing_quality ?(scale = 8) ?batch ?domains () =
  let g = (Clusters.deimos ~scale ()).Clusters.graph in
  let rows =
    List.filter_map
      (fun name ->
        match Runs.run_named ?batch ?domains name g with
        | Error _ ->
          Some
            [
              Report.Str name; Report.Missing; Report.Missing; Report.Missing; Report.Missing;
              Report.Missing; Report.Missing;
            ]
        | Ok ft ->
          let q = Simulator.Quality.measure ft in
          Some
            [
              Report.Str name;
              Report.Flt q.Simulator.Quality.mean_hops;
              Report.Int q.Simulator.Quality.max_hops;
              Report.Str (if q.Simulator.Quality.max_hops = q.Simulator.Quality.diameter_hops then "yes" else "no");
              Report.Int q.Simulator.Quality.max_load;
              Report.Flt q.Simulator.Quality.load_cv;
              Runs.analyzer_cell ft;
            ])
      Runs.paper_algorithms
  in
  {
    Report.title = Printf.sprintf "Quality: all-pairs path length and load balance, Deimos stand-in (scale 1/%d)" scale;
    columns = [ "routing"; "mean hops"; "max hops"; "tight"; "max load"; "load cv"; "analyzer" ];
    rows;
    notes =
      [
        "tight = the longest route matches the fabric diameter (no detours)";
        "load cv = coefficient of variation over switch-channel loads; lower = better balanced";
      ];
  }

let vl_budget ?(budgets = [ 1; 2; 3; 4; 6; 8 ]) () =
  let g = fst (Topo_torus.torus ~dims:[| 6; 6 |] ~terminals_per_switch:1) in
  let terminals = Graph.terminals g in
  let n = Array.length terminals in
  let flows =
    Array.init (2 * n) (fun i ->
        let j = i / 2 in
        let hop = if i mod 2 = 0 then n / 2 else (n / 4) + 1 in
        (terminals.(j), terminals.((j + hop) mod n), 30))
  in
  let rows =
    List.map
      (fun budget ->
        match Dfsssp.route ~max_layers:budget ~balance:true g with
        | Error _ -> [ Report.Int budget; Report.Str "failed"; Report.Missing; Report.Missing ]
        | Ok ft -> (
          let config =
            { Simulator.Flitsim.default_config with num_vls = budget; buffer_slots = 1 }
          in
          match Simulator.Flitsim.run ~config ft ~flows with
          | Simulator.Flitsim.Delivered { cycles; _ } ->
            [ Report.Int budget; Report.Str "ok"; Report.Int (Ftable.num_layers ft); Report.Int cycles ]
          | Simulator.Flitsim.Deadlocked _ | Simulator.Flitsim.Out_of_cycles _ ->
            [ Report.Int budget; Report.Str "sim stall"; Report.Int (Ftable.num_layers ft); Report.Missing ]))
      budgets
  in
  {
    Report.title = "Ablation: virtual-lane budget on the 6x6 torus (DFSSSP, balancing on)";
    columns = [ "budget"; "status"; "lanes used"; "drain cycles" ];
    rows;
    notes = [ "below the APP requirement the assignment fails; surplus lanes buy buffering" ];
  }

let collectives ?(message_bytes = 65536.0) () =
  let algorithms = [ "minhop"; "updown"; "lash"; "dfsssp" ] in
  let bandwidth = 1e9 in
  let fabrics =
    [
      ("deimos/8", (Clusters.deimos ~scale:8 ()).Clusters.graph);
      ("8x8 torus", fst (Topo_torus.torus ~dims:[| 8; 8 |] ~terminals_per_switch:1));
    ]
  in
  let rows =
    List.concat_map
      (fun (fname, g) ->
        let ranks = Graph.terminals g in
        let schedules =
          [ Simulator.Collective.all_to_all_pairwise ranks; Simulator.Collective.allreduce_ring ranks ]
          @ (match Simulator.Collective.allreduce_recursive_doubling ranks with
            | Ok s -> [ s ]
            | Error _ -> [])
        in
        let routed =
          List.filter_map
            (fun name ->
              match Runs.run_named name g with
              | Ok ft -> Some (name, ft)
              | Error _ -> None)
            algorithms
        in
        List.map
          (fun (sched : Simulator.Collective.schedule) ->
            Report.Str fname :: Report.Str sched.Simulator.Collective.name
            :: List.map
                 (fun name ->
                   match List.assoc_opt name routed with
                   | None -> Report.Missing
                   | Some ft ->
                     Report.Time
                       (Simulator.Collective.completion_time ft sched ~message_bytes ~bandwidth))
                 algorithms)
          schedules)
      fabrics
  in
  {
    Report.title =
      Printf.sprintf "Extension: phased collectives, %.0f KiB per rank, 1 GB/s links" (message_bytes /. 1024.0);
    columns = "fabric" :: "schedule" :: algorithms;
    rows;
    notes = [ "rounds are barriers; each round is a permutation priced at its bottleneck load" ];
  }

let complexity ?(max_endpoints = 512) () =
  let rows =
    List.filter_map
      (fun (r : Tableone.row) ->
        let g = Tableone.tree_graph r in
        match Routing.Sssp.route g with
        | Error _ -> None
        | Ok ft -> (
          match Ftable.to_store ft with
          | Error _ -> None
          | Ok store ->
            (* CDG size of the full (single-layer) dependency graph *)
            let cdg = Cdg.of_store store in
            let dt, outcome =
              Runs.timed (fun () -> Layers.assign_store store ~max_layers:16 ~heuristic:Heuristic.Weakest)
            in
            (match outcome with
            | Error _ -> None
            | Ok o ->
              Some
                [
                  Report.Int r.Tableone.endpoints;
                  Report.Int (Graph.num_channels g);
                  Report.Int (Cdg.num_edges cdg);
                  Report.Int (Route_store.num_paths store);
                  Report.Int o.Layers.layers_used;
                  Report.Int o.Layers.cycles_broken;
                  Report.Time dt;
                ])))
      (Tableone.rows_up_to max_endpoints)
  in
  {
    Report.title = "Complexity: CDG size and offline assignment cost on the k-ary n-tree sweep (Prop. 2)";
    columns = [ "#endpoints"; "|C| channels"; "|E| CDG edges"; "paths"; "layers"; "cycles broken"; "assign time" ];
    rows;
    notes =
      [
        "Prop. 2: offline time O(|N|^2 (log|N| + V) + |N||C| + V(|C|+|E|)); watch the growth, not constants";
      ];
  }
