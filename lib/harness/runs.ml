let paper_algorithms = [ "minhop"; "updown"; "ftree"; "dor"; "lash"; "sssp"; "dfsssp" ]

let run_named ?coords ?max_layers ?engine ?batch ?domains ?kernel name g =
  match Dfsssp.Registry.find ?coords ?max_layers ?engine ?batch ?domains ?kernel name with
  | None -> Error (Printf.sprintf "unknown algorithm %S" name)
  | Some alg -> alg.Dfsssp.Registry.run g

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

let ebb_cell ?coords ?ranks ~patterns ~seed name g =
  match run_named ?coords name g with
  | Error _ -> Report.Missing
  | Ok ft ->
    let rng = Rng.create seed in
    let ebb = Simulator.Congestion.effective_bisection_bandwidth ~patterns ?ranks ~rng ft in
    Report.Flt ebb.Simulator.Congestion.samples.Simulator.Metrics.mean

let vl_cell ?coords ?max_layers name g =
  match run_named ?coords ?max_layers name g with
  | Error _ -> Report.Missing
  | Ok ft -> Report.Int (Ftable.num_layers ft)

let analyzer_cell ft =
  let r = Analysis.Analyzer.analyze ft in
  if Analysis.Analyzer.ok r then Report.Str "certified"
  else
    let errs = Analysis.Diag.num_errors r.Analysis.Analyzer.findings in
    Report.Str (Printf.sprintf "REJECTED (%d error(s))" errs)

let analyzer_run_cell ?coords ?max_layers name g =
  match run_named ?coords ?max_layers name g with
  | Error _ -> Report.Missing
  | Ok ft -> analyzer_cell ft

let runtime_cell ?coords ?batch ?domains name g =
  match timed (fun () -> run_named ?coords ?batch ?domains name g) with
  | _, Error _ -> Report.Missing
  | dt, Ok _ -> Report.Time dt

let sample_ranks ~rng ~count g =
  let terminals = Graph.terminals g in
  let n = Array.length terminals in
  if count >= n then Array.copy terminals
  else begin
    let idx = Rng.sample_distinct rng ~n:count ~bound:n in
    Array.map (fun i -> terminals.(i)) idx
  end
