(** Fabric churn soak: drive a {!Fabric.Manager} through a long seeded
    schedule of link failures, recoveries, drains and switch removals
    ({!Fabric.Schedule.generate}), and re-verify invariants after every
    event:

    - an applied, table-changing event must end in a verified epoch swap
      whose {!Dfsssp.Verify} report says deadlock-free;
    - on every epoch swap the active tables must re-certify under the
      trusted checker ({!Analysis.Analyzer.certify}) — the independent
      gate, not the manager's own verifier;
    - the manager must report {!Fabric.Manager.converged} at the end,
      and the final tables must pass the full analyzer.

    Runs are deterministic in [(spec, seed, events, ...)]. On failure the
    soak writes a reproduction artifact — a JSON file holding the spec,
    the seed, the failure messages and the {!Obs.Trace} spans of the run
    — under [artifact_dir] and records its path, so
    [fabric_tool soak <spec> --seed <seed>] replays the exact run. *)

type result = {
  spec : string;
  seed : int;
  scheduled : int;  (** events in the generated schedule *)
  applied : int;  (** events the manager accepted *)
  swaps : int;  (** verified epoch swaps *)
  incremental : int;  (** events served by incremental repair *)
  full : int;  (** events served by full recompute *)
  failures : string list;  (** invariant violations; empty means pass *)
  artifact : string option;
      (** reproduction artifact path; written on every failure, including
          unparsable specs and manager refusals (those carry no trace) *)
}

(** [run_one ~spec ~seed ~events ()] soaks one fabric. [switch_removals]
    and [drains] default to [events / 20] and [events / 10];
    [artifact_dir] defaults to ["_build/soak"] (created on demand,
    written only on failure). A spec that fails to parse, or a fabric the
    manager refuses, is a single-failure result. *)
val run_one :
  ?config:Fabric.Manager.config ->
  ?switch_removals:int ->
  ?drains:int ->
  ?artifact_dir:string ->
  spec:string ->
  seed:int ->
  events:int ->
  unit ->
  result

(** [run ~specs ~seed ~events ()] soaks every spec with the same seed and
    per-spec event count. *)
val run :
  ?config:Fabric.Manager.config ->
  ?switch_removals:int ->
  ?drains:int ->
  ?artifact_dir:string ->
  specs:string list ->
  seed:int ->
  events:int ->
  unit ->
  result list

val failures : result list -> string list

(** One line per soak plus a closing tally; failing runs print their
    failures and reproduction artifact path. *)
val pp_summary : Format.formatter -> result list -> unit
