let algorithms = [ "minhop"; "updown"; "lash"; "sssp"; "dfsssp"; "dfsssp-online" ]

let note = "wall-clock; includes virtual-layer assignment where the algorithm has one"

let pipeline_note = function
  | None -> []
  | Some domains ->
    [ Printf.sprintf "batched-snapshot pipeline: %d domain(s), batch %d" domains Routing.Sssp.recommended_batch ]

(* With [domains] set, the supporting engines run the batched-snapshot
   pipeline ({!Routing.Sssp.recommended_batch} destinations per
   snapshot) — the figure then reports the parallel pipeline's runtime
   instead of the sequential recurrence's. *)
let cells ?domains g =
  let batch = Option.map (fun _ -> Routing.Sssp.recommended_batch) domains in
  List.map (fun alg -> Runs.runtime_cell ?batch ?domains alg g) algorithms

let fig7 ?(max_endpoints = 1024) ?domains () =
  let rows =
    List.map
      (fun (r : Tableone.row) ->
        let g = Tableone.tree_graph r in
        Report.Int r.Tableone.endpoints :: cells ?domains g)
      (Tableone.rows_up_to max_endpoints)
  in
  {
    Report.title = "Fig. 7: routing runtime, k-ary n-tree";
    columns = "#endpoints" :: algorithms;
    rows;
    notes = note :: pipeline_note domains;
  }

let fig8 ?(scale = 4) ?domains () =
  let rows =
    List.map
      (fun (s : Clusters.system) ->
        Report.Str (Printf.sprintf "%s(%d)" s.name (Graph.num_terminals s.graph))
        :: cells ?domains s.graph)
      (Clusters.all ~scale ())
  in
  {
    Report.title = Printf.sprintf "Fig. 8: routing runtime, real systems (scale 1/%d)" scale;
    columns = "fabric" :: algorithms;
    rows;
    notes = note :: pipeline_note domains;
  }
