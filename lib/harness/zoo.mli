(** Table-driven topology-zoo conformance harness.

    Runs every subject — imported corpus files under [examples/zoo/] and
    seeded {!Netgraph.Topo_jellyfish}/{!Netgraph.Topo_xpander} samples —
    through the full {!Dfsssp.Registry} line-up and checks, per subject:

    - the topology-level existence analysis ({!Analysis.Existence})
      reports every demand routable;
    - every algorithm that produces a table yields a valid one (all
      ordered terminal pairs routed loop-free);
    - every deadlock-free-by-design algorithm's table is accepted by the
      {!Analysis.Analyzer} certificate checker, and its layer count is
      at least the fabric's provable lower bound;
    - DFSSSP never refuses (it is the paper's universal algorithm);
    - kernel parity: the Heap, Bucket and Incremental SSSP kernels give
      byte-identical DFSSSP tables;
    - engine parity: the [`Scc] cycle-break engine certifies with a layer
      count within +1 of the [`Dfs] oracle.

    Refusals by non-universal algorithms (DOR without coordinates, FTree
    off a fat tree, ...) are recorded but are not failures — they are the
    paper's missing bars. *)

type status =
  | Certified of int  (** table certified deadlock-free with this many layers *)
  | Routed of int
      (** valid table from a non-deadlock-free-by-design algorithm (its
          layer count, always 1) *)
  | Refused of string  (** the algorithm declined this fabric *)

type outcome = {
  algorithm : string;
  status : status;
}

type subject = {
  spec : string;  (** the {!Topospec} string naming the subject *)
  description : string;
  switches : int;
  terminals : int;
  channels : int;
  min_layers_lb : int;  (** provable layer lower bound of the fabric *)
  outcomes : outcome list;  (** one per registry algorithm, registry order *)
  failures : string list;  (** conformance violations; empty means pass *)
}

(** Find the corpus directory from either the repo root or a dune test
    sandbox ([examples/zoo], [../examples/zoo], ...). [None] if no
    candidate exists. *)
val find_corpus_dir : unit -> string option

(** Specs for every recognized corpus file in [dir] (by extension:
    [.dot]/[.gv] and [.edges]/[.edgelist]), sorted by filename. *)
val corpus_specs : dir:string -> string list

(** The built-in seeded generator samples: two jellyfish and two xpander
    configurations. *)
val generator_specs : string list

(** [check_spec spec] runs the full conformance battery on one subject.
    [Error] means the spec itself failed to parse. *)
val check_spec : ?max_layers:int -> string -> (subject, string) result

(** [run ~specs ()] checks every spec; unparsable specs become subjects
    with a single failure. *)
val run : ?max_layers:int -> specs:string list -> unit -> subject list

(** Every failure across the run, prefixed by its subject spec. *)
val failures : subject list -> string list

(** One PASS/FAIL line per subject plus a closing tally. *)
val pp_summary : Format.formatter -> subject list -> unit
