type result = {
  spec : string;
  seed : int;
  scheduled : int;
  applied : int;
  swaps : int;
  incremental : int;
  full : int;
  failures : string list;
  artifact : string option;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sanitize spec =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '-') spec

(* The reproduction artifact: everything needed to replay the failing
   run, plus the trace spans captured while it happened. *)
let write_artifact ~dir ~spec ~seed ~events ~scheduled ~failures ~trace_buf =
  mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "soak-%s-seed%d.json" (sanitize spec) seed) in
  let trace =
    String.split_on_char '\n' (Buffer.contents trace_buf)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
         match Obs.Json.of_string l with Ok j -> j | Error _ -> Obs.Json.Str l)
  in
  let doc =
    Obs.Json.Obj
      [
        ("spec", Obs.Json.Str spec);
        ("seed", Obs.Json.Num (float_of_int seed));
        ("events", Obs.Json.Num (float_of_int events));
        ("scheduled", Obs.Json.Num (float_of_int scheduled));
        ("failures", Obs.Json.List (List.map (fun f -> Obs.Json.Str f) failures));
        ("trace", Obs.Json.List trace);
      ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  path

let failed ~dir ~spec ~seed ~events msg =
  let artifact =
    write_artifact ~dir ~spec ~seed ~events ~scheduled:0 ~failures:[ msg ]
      ~trace_buf:(Buffer.create 0)
  in
  {
    spec;
    seed;
    scheduled = 0;
    applied = 0;
    swaps = 0;
    incremental = 0;
    full = 0;
    failures = [ msg ];
    artifact = Some artifact;
  }

let run_one ?config ?switch_removals ?drains ?(artifact_dir = Filename.concat "_build" "soak")
    ~spec ~seed ~events () =
  let failed = failed ~dir:artifact_dir ~spec ~seed ~events in
  match Topospec.parse spec with
  | Error e -> failed (Printf.sprintf "spec: %s" e)
  | Ok t -> (
    let g = t.Topospec.graph in
    let switch_removals = Option.value switch_removals ~default:(events / 20) in
    let drains = Option.value drains ~default:(events / 10) in
    let rng = Rng.create seed in
    let schedule =
      Fabric.Schedule.generate g ~rng ~events ~switch_removals ~drains ()
    in
    let scheduled = List.length schedule in
    match Fabric.Manager.create ?config g with
    | Error e -> failed (Printf.sprintf "manager: %s" e)
    | Ok m ->
      let fails = ref [] in
      let fail fmt = Printf.ksprintf (fun msg -> fails := msg :: !fails) fmt in
      let applied = ref 0 and swaps = ref 0 and incremental = ref 0 and full = ref 0 in
      let trace_buf = Buffer.create 4096 in
      Fun.protect
        ~finally:(fun () -> Fabric.Manager.shutdown m)
        (fun () ->
          Obs.Control.with_enabled true (fun () ->
              Obs.Trace.with_sink (Obs.Trace.buffer_sink trace_buf) (fun () ->
                  let prev_epoch = ref (Fabric.Manager.epoch m) in
                  List.iteri
                    (fun i ev ->
                      let o = Fabric.Manager.apply m ev in
                      let tag = Printf.sprintf "event %d (%s)" i (Fabric.Event.to_string ev) in
                      if o.Fabric.Manager.applied then begin
                        incr applied;
                        (match o.Fabric.Manager.action with
                        | Fabric.Manager.Incremental _ -> incr incremental
                        | Fabric.Manager.Full _ -> incr full
                        | Fabric.Manager.Noop -> ());
                        (match (o.Fabric.Manager.action, o.Fabric.Manager.verify) with
                        | Fabric.Manager.Noop, _ -> ()
                        | _, Some v ->
                          if not v.Dfsssp.Verify.deadlock_free then
                            fail "%s: swapped tables not deadlock-free" tag
                        | _, None ->
                          fail "%s: no verified swap (%s)" tag o.Fabric.Manager.note)
                      end;
                      let epoch = Fabric.Manager.epoch m in
                      if epoch <> !prev_epoch then begin
                        incr swaps;
                        prev_epoch := epoch;
                        (* Independent recertification on every swap: the
                           trusted checker, not the manager's verifier. *)
                        match Analysis.Analyzer.certify (Fabric.Manager.tables m) with
                        | Ok _ -> ()
                        | Error msg -> fail "%s: epoch %d recertification: %s" tag epoch msg
                      end)
                    schedule;
                  if not (Fabric.Manager.converged m) then
                    fail "manager did not converge (%d events)" scheduled;
                  let report =
                    Analysis.Analyzer.analyze ~graph:(Fabric.Manager.graph m)
                      (Fabric.Manager.tables m)
                  in
                  if not (Analysis.Analyzer.ok report) then
                    fail "final tables rejected by the analyzer")));
      let failures = List.rev !fails in
      let artifact =
        if failures = [] then None
        else
          Some
            (write_artifact ~dir:artifact_dir ~spec ~seed ~events ~scheduled ~failures
               ~trace_buf)
      in
      {
        spec;
        seed;
        scheduled;
        applied = !applied;
        swaps = !swaps;
        incremental = !incremental;
        full = !full;
        failures;
        artifact;
      })

let run ?config ?switch_removals ?drains ?artifact_dir ~specs ~seed ~events () =
  List.map
    (fun spec ->
      run_one ?config ?switch_removals ?drains ?artifact_dir ~spec ~seed ~events ())
    specs

let failures results =
  List.concat_map
    (fun r -> List.map (fun f -> Printf.sprintf "%s: %s" r.spec f) r.failures)
    results

let pp_summary ppf results =
  List.iter
    (fun r ->
      if r.failures = [] then
        Format.fprintf ppf
          "PASS %-28s seed=%-4d events=%d/%d swaps=%d incremental=%d full=%d@." r.spec
          r.seed r.applied r.scheduled r.swaps r.incremental r.full
      else begin
        Format.fprintf ppf "FAIL %s seed=%d@." r.spec r.seed;
        List.iter (fun f -> Format.fprintf ppf "  - %s@." f) r.failures;
        match r.artifact with
        | Some path -> Format.fprintf ppf "  reproduction artifact: %s@." path
        | None -> ()
      end)
    results;
  let bad = List.length (List.filter (fun r -> r.failures <> []) results) in
  Format.fprintf ppf "%d soak(s), %d failing@." (List.length results) bad
