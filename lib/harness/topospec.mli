(** Parse compact command-line topology specifications into fabrics. Used
    by the [dfsssp_route] and [experiments] executables and handy in user
    scripts.

    Grammar (parameters after [:]):
    - [ring:<switches>[:<terminals_per_switch>]]
    - [torus:<d1>x<d2>[x...][:<terminals_per_switch>]] (also [mesh:...])
    - [hypercube:<dim>[:<terminals_per_switch>]]
    - [tree:<k>,<n>[:<endpoints>]] — k-ary n-tree
    - [xgft:<m1>,..,<mh>/<w1>,..,<wh>[:<endpoints>]]
    - [kautz:<b>,<n>[:<endpoints>]]
    - [dragonfly:<a>,<p>,<h>[:<groups>]]
    - [hyperx:<d1>x<d2>[x...][:<terminals_per_switch>]]
    - [random:<switches>,<radix>,<terminals>,<links>[:<seed>]]
    - [jellyfish:<switches>,<ports>,<net_ports>[:<seed>]] — {!Netgraph.Topo_jellyfish}
    - [xpander:<degree>,<lift>[,<terminals_per_switch>][:<seed>]] — {!Netgraph.Topo_xpander}
    - [cluster:<name>[:<scale>]] — chic|juropa|odin|ranger|tsubame|deimos
    - [file:<path>] — the {!Netgraph.Serial} text format
    - [dot:<path>[:<terminals_per_switch>]] — DOT subset via {!Netgraph.Topo_import}
      (lenient mode: repairs are applied and counted in the description)
    - [edgelist:<path>[:<terminals_per_switch>]] — whitespace edge list via
      {!Netgraph.Topo_import}

    Grid topologies also return coordinates (enabling DOR). Unknown kinds
    produce an error naming the offending token with a nearest-match
    suggestion. *)

type t = {
  graph : Graph.t;
  coords : Coords.t option;
  description : string;
}

val parse : string -> (t, string) result

(** One line per supported form, for [--help] texts. *)
val grammar_lines : string list
