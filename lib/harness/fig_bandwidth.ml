let header = "fabric" :: Runs.paper_algorithms

let sweep_note patterns = Printf.sprintf "%d random bisection patterns per cell; 1.0 = full wire speed" patterns

(* One eBB cell per (fabric, algorithm) pair. Every cell routes and
   simulates independently with its own seeded RNG, so with [domains > 1]
   the grid is filled by a worker pool, cell by cell — same numbers in
   any case, the domains only shorten the sweep's wall-clock. *)
let ebb_grid ?(domains = 1) ~patterns ~seed graphs =
  let algs = Array.of_list Runs.paper_algorithms in
  let gs = Array.of_list graphs in
  let na = Array.length algs in
  let n = Array.length gs * na in
  let out = Array.make n Report.Missing in
  let compute i = out.(i) <- Runs.ebb_cell ~patterns ~seed algs.(i mod na) gs.(i / na) in
  if domains <= 1 then
    for i = 0 to n - 1 do
      compute i
    done
  else
    Parallel.Pool.with_pool ~domains
      (fun _slot -> ())
      (fun pool -> Parallel.Pool.run pool ~n ~grain:1 (fun () i -> compute i));
  List.init (Array.length gs) (fun r -> Array.to_list (Array.sub out (r * na) na))

let fig4 ?(scale = 4) ?(patterns = 50) ?(seed = 1) ?domains () =
  let systems = Clusters.all ~scale () in
  let grid = ebb_grid ?domains ~patterns ~seed (List.map (fun (s : Clusters.system) -> s.graph) systems) in
  let rows =
    List.map2
      (fun (s : Clusters.system) cells ->
        Report.Str (Printf.sprintf "%s(%d)" s.name (Graph.num_terminals s.graph)) :: cells)
      systems grid
  in
  {
    Report.title = Printf.sprintf "Fig. 4: effective bisection bandwidth, real systems (scale 1/%d)" scale;
    columns = header;
    rows;
    notes =
      [
        sweep_note patterns;
        "systems are stand-ins rebuilt from published descriptions (DESIGN.md:substitutions)";
      ];
  }

let sweep title graph_of ?(max_endpoints = 1024) ?(patterns = 50) ?(seed = 1) ?domains () =
  let sizes = Tableone.rows_up_to max_endpoints in
  let grid = ebb_grid ?domains ~patterns ~seed (List.map graph_of sizes) in
  let rows =
    List.map2 (fun (r : Tableone.row) cells -> Report.Int r.Tableone.endpoints :: cells) sizes grid
  in
  { Report.title; columns = "#endpoints" :: Runs.paper_algorithms; rows; notes = [ sweep_note patterns ] }

let fig5 ?max_endpoints ?patterns ?seed ?domains () =
  sweep "Fig. 5: effective bisection bandwidth, XGFT" Tableone.xgft_graph ?max_endpoints ?patterns
    ?seed ?domains ()

let fig6 ?max_endpoints ?patterns ?seed ?domains () =
  sweep "Fig. 6: effective bisection bandwidth, Kautz" Tableone.kautz_graph ?max_endpoints ?patterns
    ?seed ?domains ()
