(** Ablation experiments for the design choices DESIGN.md calls out —
    beyond the paper's own evaluation:

    - the SSSP initial channel weight ([|V|^2] vs the naive 1), the point
      of the paper's Fig. 1: the naive weight trades latency for balance;
    - hardening arbitrary base routings (DOR, MinHop) with the offline
      layer assignment, showing the APP machinery is routing-agnostic;
    - a dragonfly fabric, a topology class the paper never evaluated, as a
      generality check for every algorithm in the registry;
    - the post-assignment layer balancing step (tail of Algorithm 2),
      measured with the packet-level simulator where extra lanes mean
      extra buffers. *)

(** Fig. 1 ablation: routes under initial weight 1 vs [|V|^2]. *)
val sssp_initial_weight : unit -> Report.table

(** DOR and MinHop, raw vs hardened, on a wrap-around torus.
    [batch]/[domains] run the table fills on the batched-snapshot
    pipeline ({!Runs.run_named}). *)
val hardened_routings : ?patterns:int -> ?seed:int -> ?batch:int -> ?domains:int -> unit -> Report.table

(** The full algorithm line-up on a dragonfly. [batch]/[domains] as in
    {!hardened_routings}. *)
val dragonfly : ?patterns:int -> ?seed:int -> ?batch:int -> ?domains:int -> unit -> Report.table

(** The expander-family random graphs of the zoo battery
    ({!Zoo.generator_specs}: two jellyfish and two xpander samples):
    existence feasibility, the provable VL lower bound, and the layer
    counts the deadlock-free algorithms actually pay on each. *)
val random_graphs : ?max_layers:int -> unit -> Report.table

(** Packet-simulator throughput with and without layer balancing. *)
val balancing : ?seed:int -> unit -> Report.table

(** Online-assignment engines (naive DFS probe vs Pearce-Kelly dynamic
    topological ordering) vs the paper's offline algorithm: wall-clock
    over a k-ary n-tree sweep. All three produce deadlock-free
    assignments; the offline sweep is the paper's answer to the online
    cost, PK is ours. *)
val online_engines : ?max_endpoints:int -> unit -> Report.table

(** Classic adversarial permutations (bit complement/reverse, transpose,
    tornado) on a torus and a fat tree: mean bandwidth share per routing.
    Deterministic patterns expose weaknesses random bisections average
    away — tornado on the torus is the textbook case. *)
val adversarial_patterns : unit -> Report.table

(** LMC-style multipath ({!Dfsssp.Multipath}): effective bisection
    bandwidth and tornado share vs the number of forwarding planes, with
    the joint virtual-lane bill. Diversity helps adversarial patterns and
    costs lanes — on the torus, four planes no longer fit in 8 lanes
    (reported as a failed row), InfiniBand's full 16 absorb them. *)
val multipath : ?matchings:int -> ?seed:int -> unit -> Report.table

(** All-pairs routing quality (path lengths, load balance) per algorithm
    on the Deimos stand-in: the two quantities the paper trades —
    Up*/Down* sacrifices length and balance at the root, LASH sacrifices
    balance, SSSP/DFSSSP keep both. [batch]/[domains] as in
    {!hardened_routings}. *)
val routing_quality : ?scale:int -> ?batch:int -> ?domains:int -> unit -> Report.table

(** Virtual-lane budget sweep on a wrap-around torus: DFSSSP fails below
    its requirement, succeeds at it, and converts any surplus into extra
    buffering via the balancing step (drain time on the packet
    simulator keeps improving). *)
val vl_budget : ?budgets:int list -> unit -> Report.table

(** Phased collective schedules ({!Simulator.Collective}): completion time
    of pairwise-exchange all-to-all and both allreduce algorithms under
    each routing. Every round is a permutation, so the routing's balance
    is priced n-1 times — closer to what MPI puts on the wire than the
    flat Fig. 13 model. *)
val collectives : ?message_bytes:float -> unit -> Report.table

(** Empirical check of the paper's complexity analysis (Propositions 1-2):
    for the k-ary n-tree sweep, the size of the channel dependency graph,
    the number of routes, cycles broken, and the offline assignment's
    runtime — the quantities whose growth the propositions bound. The
    offline algorithm's one-amortized-sweep-per-layer claim shows as
    near-linear growth in |C| + |E| per layer. *)
val complexity : ?max_endpoints:int -> unit -> Report.table
