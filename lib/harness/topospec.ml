type t = {
  graph : Graph.t;
  coords : Coords.t option;
  description : string;
}

let grammar_lines =
  [
    "ring:<switches>[:<terminals_per_switch>]";
    "torus:<d1>x<d2>[x...][:<terminals_per_switch>]";
    "mesh:<d1>x<d2>[x...][:<terminals_per_switch>]";
    "hypercube:<dim>[:<terminals_per_switch>]";
    "tree:<k>,<n>[:<endpoints>]";
    "xgft:<m1>,..,<mh>/<w1>,..,<wh>[:<endpoints>]";
    "kautz:<b>,<n>[:<endpoints>]";
    "dragonfly:<a>,<p>,<h>[:<groups>]";
    "hyperx:<d1>x<d2>[x...][:<terminals_per_switch>]";
    "random:<switches>,<radix>,<terminals>,<links>[:<seed>]";
    "jellyfish:<switches>,<ports>,<net_ports>[:<seed>]";
    "xpander:<degree>,<lift>[,<terminals_per_switch>][:<seed>]";
    "cluster:<chic|juropa|odin|ranger|tsubame|deimos>[:<scale>]";
    "file:<path>";
    "dot:<path>[:<terminals_per_switch>]";
    "edgelist:<path>[:<terminals_per_switch>]";
  ]

(* Kind names for the did-you-mean suggestion on unknown specs. *)
let known_kinds =
  [
    "ring"; "torus"; "mesh"; "hypercube"; "tree"; "xgft"; "kautz"; "dragonfly"; "hyperx";
    "random"; "jellyfish"; "xpander"; "cluster"; "file"; "dot"; "edgelist";
  ]

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggestion token =
  let scored = List.map (fun k -> (levenshtein token k, k)) known_kinds in
  let sorted = List.sort compare scored in
  match sorted with
  | (d, k) :: _ when d <= 3 && d < String.length k -> Printf.sprintf " (did you mean %S?)" k
  | _ -> ""

let unknown_kind token =
  Error
    (Printf.sprintf "unknown topology kind %S%s; known kinds: %s" token (suggestion token)
       (String.concat ", " known_kinds))

let int_of s = match int_of_string_opt (String.trim s) with Some v -> Ok v | None -> Error (Printf.sprintf "not a number: %S" s)

let ints_of sep s =
  let parts = String.split_on_char sep s in
  List.fold_right
    (fun part acc ->
      match (acc, int_of part) with
      | Ok rest, Ok v -> Ok (v :: rest)
      | (Error _ as e), _ -> e
      | _, Error e -> Error e)
    parts (Ok [])

let ( let* ) r f = Result.bind r f

let parse spec =
  let parts = String.split_on_char ':' spec in
  match parts with
  | [] | [ "" ] -> Error "empty topology spec"
  | kind :: args -> (
    let arg n = List.nth_opt args n in
    let opt_int n default =
      match arg n with
      | None | Some "" -> Ok default
      | Some s -> int_of s
    in
    let wrap ?coords description graph = Ok { graph; coords; description } in
    try
      match String.lowercase_ascii kind with
      | "ring" ->
        let* switches = match arg 0 with Some s -> int_of s | None -> Error "ring: missing switch count" in
        let* terminals = opt_int 1 1 in
        wrap
          (Printf.sprintf "ring of %d switches, %d terminals each" switches terminals)
          (Topo_ring.make ~switches ~terminals_per_switch:terminals)
      | ("torus" | "mesh") as which ->
        let* dims = match arg 0 with Some s -> ints_of 'x' s | None -> Error (which ^ ": missing dims") in
        let dims = Array.of_list dims in
        let* terminals = opt_int 1 1 in
        let graph, coords =
          if which = "torus" then Topo_torus.torus ~dims ~terminals_per_switch:terminals
          else Topo_torus.mesh ~dims ~terminals_per_switch:terminals
        in
        let dim_text = String.concat "x" (Array.to_list (Array.map string_of_int dims)) in
        wrap ~coords (Printf.sprintf "%s %s, %d terminals/switch" which dim_text terminals) graph
      | "hypercube" ->
        let* dim = match arg 0 with Some s -> int_of s | None -> Error "hypercube: missing dimension" in
        let* terminals = opt_int 1 1 in
        let graph, coords = Topo_hypercube.make ~dim ~terminals_per_switch:terminals in
        wrap ~coords (Printf.sprintf "%d-cube, %d terminals/switch" dim terminals) graph
      | "tree" -> (
        let* kn = match arg 0 with Some s -> ints_of ',' s | None -> Error "tree: missing k,n" in
        match kn with
        | [ k; n ] ->
          let* endpoints = opt_int 1 (-1) in
          let endpoints = if endpoints < 0 then None else Some endpoints in
          wrap
            (Printf.sprintf "%d-ary %d-tree" k n)
            (Topo_tree.make ~k ~n ?endpoints ())
        | _ -> Error "tree: want k,n")
      | "xgft" -> (
        match arg 0 with
        | None -> Error "xgft: missing m/w lists"
        | Some lists -> (
          match String.split_on_char '/' lists with
          | [ ms; ws ] ->
            let* ms = ints_of ',' ms in
            let* ws = ints_of ',' ws in
            let ms = Array.of_list ms and ws = Array.of_list ws in
            let* endpoints = opt_int 1 (Topo_xgft.num_leaves ~ms * 12) in
            wrap
              (Printf.sprintf "XGFT(%d), %d endpoints" (Array.length ms) endpoints)
              (Topo_xgft.make ~ms ~ws ~endpoints)
          | _ -> Error "xgft: want m1,../w1,.."))
      | "kautz" -> (
        let* bn = match arg 0 with Some s -> ints_of ',' s | None -> Error "kautz: missing b,n" in
        match bn with
        | [ b; n ] ->
          let* endpoints = opt_int 1 (Topo_kautz.num_switches ~b ~n * 12) in
          wrap
            (Printf.sprintf "Kautz(%d,%d), %d endpoints" b n endpoints)
            (Topo_kautz.make ~b ~n ~endpoints)
        | _ -> Error "kautz: want b,n")
      | "hyperx" ->
        let* dims = match arg 0 with Some s -> ints_of 'x' s | None -> Error "hyperx: missing dims" in
        let dims = Array.of_list dims in
        let* terminals = opt_int 1 1 in
        let graph, coords = Topo_hyperx.make ~dims ~terminals_per_switch:terminals in
        let dim_text = String.concat "x" (Array.to_list (Array.map string_of_int dims)) in
        wrap ~coords (Printf.sprintf "hyperx %s, %d terminals/switch" dim_text terminals) graph
      | "dragonfly" -> (
        let* aph = match arg 0 with Some s -> ints_of ',' s | None -> Error "dragonfly: missing a,p,h" in
        match aph with
        | [ a; p; h ] ->
          let* groups = opt_int 1 ((a * h) + 1) in
          wrap
            (Printf.sprintf "dragonfly(a=%d,p=%d,h=%d), %d groups" a p h groups)
            (Topo_dragonfly.make ~a ~p ~h ~groups ())
        | _ -> Error "dragonfly: want a,p,h")
      | "random" -> (
        let* params = match arg 0 with Some s -> ints_of ',' s | None -> Error "random: missing parameters" in
        match params with
        | [ switches; radix; terminals; links ] ->
          let* seed = opt_int 1 1 in
          let rng = Rng.create seed in
          wrap
            (Printf.sprintf "random fabric: %d switches x %d ports, %d terminals, %d links (seed %d)"
               switches radix terminals links seed)
            (Topo_random.make ~switches ~switch_radix:radix ~terminals ~inter_links:links ~rng)
        | _ -> Error "random: want switches,radix,terminals,links")
      | "cluster" -> (
        match arg 0 with
        | None -> Error "cluster: missing system name"
        | Some name -> (
          let* scale = opt_int 1 1 in
          match Clusters.by_name ~scale name with
          | None -> Error (Printf.sprintf "unknown system %S" name)
          | Some s -> wrap s.Clusters.description s.Clusters.graph))
      | "jellyfish" -> (
        let* params = match arg 0 with Some s -> ints_of ',' s | None -> Error "jellyfish: missing parameters" in
        match params with
        | [ switches; ports; net_ports ] ->
          let* seed = opt_int 1 1 in
          let rng = Rng.create seed in
          wrap
            (Printf.sprintf "jellyfish: %d switches x %d ports (%d network), seed %d"
               switches ports net_ports seed)
            (Topo_jellyfish.make ~switches ~ports ~net_ports ~rng)
        | _ -> Error "jellyfish: want switches,ports,net_ports")
      | "xpander" -> (
        let* params = match arg 0 with Some s -> ints_of ',' s | None -> Error "xpander: missing parameters" in
        match params with
        | [ net_degree; lift ] | [ net_degree; lift; _ ] ->
          let terminals = match params with [ _; _; t ] -> Some t | _ -> None in
          let* seed = opt_int 1 1 in
          let rng = Rng.create seed in
          wrap
            (Printf.sprintf "xpander: degree %d, lift %d (%d switches), seed %d"
               net_degree lift ((net_degree + 1) * lift) seed)
            (Topo_xpander.make ~net_degree ~lift ?terminals_per_switch:terminals ~rng ())
        | _ -> Error "xpander: want degree,lift[,terminals_per_switch]")
      | "file" -> (
        match arg 0 with
        | None -> Error "file: missing path"
        | Some path ->
          let* graph = Serial.load path in
          wrap (Printf.sprintf "loaded from %s" path) graph)
      | ("dot" | "edgelist") as which -> (
        match arg 0 with
        | None -> Error (which ^ ": missing path")
        | Some path ->
          let format = if which = "dot" then Topo_import.Dot else Topo_import.Edge_list in
          let* terminals = opt_int 1 1 in
          let* imported =
            Topo_import.load ~mode:Topo_import.Lenient ~format ~terminals_per_switch:terminals path
          in
          let repairs =
            match List.length imported.Topo_import.diags with
            | 0 -> ""
            | n -> Printf.sprintf ", %d repair%s" n (if n = 1 then "" else "s")
          in
          wrap
            (Printf.sprintf "imported %s from %s%s" which path repairs)
            imported.Topo_import.graph)
      | other -> unknown_kind other
    with Invalid_argument msg -> Error msg)
