type algorithm = {
  name : string;
  deadlock_free_by_design : bool;
  run : Graph.t -> (Ftable.t, string) result;
}

let dfsssp_run ?variant ?engine ~max_layers ?batch ?domains ?kernel g =
  match Router.route ?variant ?engine ~max_layers ?batch ?domains ?kernel g with
  | Ok ft -> Ok ft
  | Error e -> Error (Router.error_to_string e)

(* Harden an arbitrary base routing with the offline layer assignment —
   the APP machinery is routing-agnostic (DESIGN.md: ablations). *)
let hardened ?engine ?domains base ~max_layers g =
  match base g with
  | Error _ as e -> e
  | Ok ft ->
    Result.map_error Router.error_to_string (Router.assign_layers ?engine ?domains ~max_layers ft)

let all ?coords ?(max_layers = 8) ?engine ?batch ?domains ?kernel () =
  [
    {
      name = "minhop";
      deadlock_free_by_design = false;
      run = Routing.Minhop.route ?batch ?domains ?kernel;
    };
    {
      name = "updown";
      deadlock_free_by_design = true;
      run = Routing.Updown.route ?batch ?domains ?kernel;
    };
    { name = "ftree"; deadlock_free_by_design = true; run = Routing.Ftree.route ?domains ?kernel };
    {
      name = "dor";
      deadlock_free_by_design = false;
      run =
        (fun g ->
          match coords with
          | None -> Error "dor: no grid coordinates available for this fabric"
          | Some c -> Routing.Dor.route ?domains ?kernel g c);
    };
    {
      name = "lash";
      deadlock_free_by_design = true;
      run = (fun g -> Routing.Lash.route ~max_layers ?kernel g);
    };
    {
      name = "sssp";
      deadlock_free_by_design = false;
      run = Routing.Sssp.route ?batch ?domains ?kernel;
    };
    {
      name = "dfsssp";
      deadlock_free_by_design = true;
      run = dfsssp_run ?engine ~max_layers ?batch ?domains ?kernel;
    };
    {
      name = "dfsssp-online";
      deadlock_free_by_design = true;
      run = dfsssp_run ~variant:Router.Online ~max_layers ?batch ?domains ?kernel;
    };
    {
      name = "dfminhop";
      deadlock_free_by_design = true;
      run = (fun g -> hardened ?engine ?domains (Routing.Minhop.route ?batch ?domains ?kernel) ~max_layers g);
    };
    {
      name = "dfdor";
      deadlock_free_by_design = true;
      run =
        (fun g ->
          match coords with
          | None -> Error "dfdor: no grid coordinates available for this fabric"
          | Some c -> hardened ?engine ?domains (fun g -> Routing.Dor.route ?domains ?kernel g c) ~max_layers g);
    };
  ]

let names = List.map (fun a -> a.name) (all ())

let find ?coords ?max_layers ?engine ?batch ?domains ?kernel name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun a -> a.name = target) (all ?coords ?max_layers ?engine ?batch ?domains ?kernel ())
