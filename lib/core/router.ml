let log_src = Logs.Src.create "dfsssp" ~doc:"deadlock-free SSSP routing"

module Log = (val Logs.src_log log_src : Logs.LOG)

type variant =
  | Offline
  | Online

type error =
  | Routing_failed of string
  | Layers_exhausted of string

let error_to_string = function
  | Routing_failed msg -> "dfsssp: routing failed: " ^ msg
  | Layers_exhausted msg -> "dfsssp: virtual layers exhausted: " ^ msg

let apply_layers ft store layer_of_path layers_used =
  Route_store.iter_pairs store (fun pair ->
      let src, dst = Routing.Ftable.pair_of_id ft pair in
      Routing.Ftable.set_layer ft ~src ~dst layer_of_path.(pair));
  Routing.Ftable.set_num_layers ft layers_used

let assign_layers ?(variant = Offline) ?engine ?domains ?(heuristic = Heuristic.Weakest)
    ?(max_layers = 8) ?(balance = false) ft =
  match Routing.Ftable.to_store ft with
  | Error msg -> Error (Routing_failed msg)
  | Ok store -> (
    let assignment =
      match variant with
      | Offline -> (
        match Layers.assign_store ?engine ?domains store ~max_layers ~heuristic with
        | Error msg -> Error msg
        | Ok outcome ->
          let layer_of_path, layers_in_use =
            if balance then Layers.balance outcome ~max_layers
            else (outcome.Layers.layer_of_path, outcome.Layers.layers_used)
          in
          Ok (layer_of_path, layers_in_use))
      | Online -> (
        match Online.assign_store store ~max_layers with
        | Error msg -> Error msg
        | Ok outcome -> Ok (outcome.Online.layer_of_path, outcome.Online.layers_used))
    in
    match assignment with
    | Error msg -> Error (Layers_exhausted msg)
    | Ok (layer_of_path, layers_used) ->
      apply_layers ft store layer_of_path layers_used;
      Ok ft)

let route ?variant ?engine ?heuristic ?max_layers ?balance ?batch ?domains ?pool ?kernel g =
  let span =
    Obs.Trace.begin_span "dfsssp.route" ~attrs:(fun () ->
        [
          ("terminals", Obs.Trace.Int (Graph.num_terminals g));
          ("channels", Obs.Trace.Int (Graph.num_channels g));
          ( "variant",
            Obs.Trace.Str (match variant with Some Online -> "online" | _ -> "offline") );
        ])
  in
  let result =
    match Routing.Sssp.route ?batch ?domains ?pool ?kernel g with
    | Error msg -> Error (Routing_failed msg)
    | Ok ft -> (
      match assign_layers ?variant ?engine ?domains ?heuristic ?max_layers ?balance ft with
      | Ok ft as ok ->
        Log.info (fun m ->
            m "routed %d terminals over %d channels: %d virtual layer(s)"
              (Graph.num_terminals (Routing.Ftable.graph ft))
              (Graph.num_channels (Routing.Ftable.graph ft))
              (Routing.Ftable.num_layers ft));
        ok
      | Error e as err ->
        Log.err (fun m -> m "%s" (error_to_string e));
        err)
  in
  (match result with
  | Ok ft ->
    Obs.Trace.end_span span
      ~attrs:[ ("layers", Obs.Trace.Int (Routing.Ftable.num_layers ft)) ]
  | Error e -> Obs.Trace.end_span span ~attrs:[ ("error", Obs.Trace.Str (error_to_string e)) ]);
  result

let layers_required ?variant ?engine ?heuristic ?max_layers ?batch ?domains ?kernel g =
  match route ?variant ?engine ?heuristic ?max_layers ?batch ?domains ?kernel g with
  | Error e -> Error e
  | Ok ft -> Ok (Routing.Ftable.num_layers ft)

let route_min_layers ?engine ?(max_layers = 8) ?batch ?(domains = 1) ?kernel g =
  (* Try every cycle-breaking heuristic and keep the assignment with the
     fewest layers — cheap insurance against the APP heuristic gap the
     paper leaves open (Section IV). With [domains > 1] the heuristics
     run concurrently (each full route is independent of the others; the
     inner routes stay single-domain so the machine is not
     oversubscribed); the winner is picked by (layers, heuristic order),
     identical to the sequential scan. *)
  let heuristics = Array.of_list Heuristic.all in
  let nh = Array.length heuristics in
  let results = Array.make nh (Error (Routing_failed "not attempted")) in
  let run _scratch i =
    results.(i) <- route ?engine ~heuristic:heuristics.(i) ~max_layers ?batch ?kernel g
  in
  if domains > 1 && nh > 1 then
    Parallel.Pool.with_pool ~domains
      (fun _slot -> ())
      (fun pool -> Parallel.Pool.run pool ~n:nh ~grain:1 run)
  else
    for i = 0 to nh - 1 do
      run () i
    done;
  let best = ref None in
  let last_error = ref None in
  Array.iteri
    (fun i result ->
      match result with
      | Error e -> last_error := Some e
      | Ok ft -> (
        let layers = Routing.Ftable.num_layers ft in
        match !best with
        | Some (_, _, best_layers) when best_layers <= layers -> ()
        | _ -> best := Some (ft, heuristics.(i), layers)))
    results;
  match (!best, !last_error) with
  | Some (ft, heuristic, _), _ -> Ok (ft, heuristic)
  | None, Some e -> Error e
  | None, None -> Error (Routing_failed "no heuristic available")
