include Router
module Verify = Verify
module Registry = Registry
module Multipath = Multipath
(* The route arena lives in lib/cdg (the CDG layers sit below routing in
   the dependency order); alias it here so downstream users (bin/, bench/)
   reach it as [Dfsssp.Route_store] without depending on the [deadlock]
   library directly. *)
module Route_store = Deadlock.Route_store
