include Router
module Verify = Verify
module Registry = Registry
module Multipath = Multipath
module Route_store = Route_store
