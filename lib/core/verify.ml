type report = {
  stats : Ftable.stats;
  num_layers : int;
  max_layer_seen : int;
  deadlock_free : bool;
}

let collect_store ft =
  match Routing.Ftable.to_store ft with
  | Error _ as e -> e
  | Ok store ->
    let layer_of_path = Array.make (Route_store.capacity store) (-1) in
    Route_store.iter_pairs store (fun pair ->
        let src, dst = Routing.Ftable.pair_of_id ft pair in
        layer_of_path.(pair) <- Routing.Ftable.layer ft ~src ~dst);
    Ok (store, layer_of_path)

let deadlock_free ?(domains = 1) ft =
  match collect_store ft with
  | Error _ -> false (* some pair unroutable; report this via {!report} *)
  | Ok (store, layer_of_path) ->
    let num_layers = 1 + Array.fold_left max 0 layer_of_path in
    Acyclic.layers_acyclic_store ~domains store ~layer_of_path ~num_layers

let report ft =
  match Routing.Ftable.validate ft with
  | Error _ as e -> e |> Result.map (fun _ -> assert false)
  | Ok stats -> (
    match collect_store ft with
    | Error _ as e -> e |> Result.map (fun _ -> assert false)
    | Ok (store, layer_of_path) ->
      let max_layer_seen = Array.fold_left max 0 layer_of_path in
      Ok
        {
          stats;
          num_layers = Routing.Ftable.num_layers ft;
          max_layer_seen;
          deadlock_free =
            Acyclic.layers_acyclic_store store ~layer_of_path ~num_layers:(1 + max_layer_seen);
        })

let pp_report ppf r =
  Format.fprintf ppf "%a layers=%d (max used %d) deadlock_free=%b" Routing.Ftable.pp_stats r.stats
    r.num_layers r.max_layer_seen r.deadlock_free
