(* Re-export of the route arena at the top-level API, so downstream users
   (bin/, bench/) reach it as [Dfsssp.Route_store] without depending on
   the [deadlock] library directly. The ISSUE places the store here; the
   implementation lives in lib/cdg because the CDG layers sit below
   routing in the dependency order. *)
include Deadlock.Route_store
