(** DFSSSP route computation engine (see {!Dfsssp} for the public umbrella). — the
    paper's contribution. SSSP's globally-balanced minimal routes are kept
    unchanged; deadlock freedom is obtained purely by partitioning the
    routes over virtual layers so that each layer's channel dependency
    graph is acyclic (the APP problem), using the offline cycle-breaking
    of Algorithm 2 by default.

    {[
      let fabric = Netgraph.Topo_torus.torus ~dims:[|4;4|] ~terminals_per_switch:2 |> fst in
      match Dfsssp.route fabric with
      | Ok ft ->
        Format.printf "virtual layers needed: %d@." (Routing.Ftable.num_layers ft)
      | Error e -> prerr_endline (Dfsssp.error_to_string e)
    ]} *)

type variant =
  | Offline  (** Algorithm 2: one amortized cycle sweep per layer (default) *)
  | Online  (** LASH-style path-at-a-time placement on SSSP routes *)

type error =
  | Routing_failed of string  (** SSSP could not route (disconnected fabric) *)
  | Layers_exhausted of string  (** no deadlock-free assignment within [max_layers] *)

val error_to_string : error -> string

(** [route ?variant ?heuristic ?max_layers ?balance g] routes the fabric
    deadlock-free.

    - [variant] (default [Offline]) selects the layer-assignment engine.
    - [engine] (default [`Scc]) selects the offline cycle-break engine
      ({!Layers.engine}; DESIGN.md section 17). Ignored by [Online].
    - [heuristic] (default {!Cdg.Heuristic.Weakest}) picks the cycle edge
      to evict (offline variant only).
    - [max_layers] (default 8, the virtual lanes current InfiniBand
      hardware offers) bounds the layers; the paper's failed bars are
      [Layers_exhausted].
    - [balance] (default [false]) additionally spreads routes over the
      unused layers afterwards (the tail of Algorithm 2). The reported
      {!Routing.Ftable.num_layers} remains the number {e required}.
    - [batch]/[domains]/[pool] select {!Routing.Sssp}'s batched-snapshot
      pipeline for the SSSP stage (defaults reproduce the sequential
      recurrence; see DESIGN.md section 12). [domains] also fans the
      [`Scc] break planning out across components.
    - [kernel] selects the shortest-path core of the SSSP stage
      (default {!Routing.Spf.Auto}; DESIGN.md §15). Never changes the
      tables.

    The result carries per-route layers; {!Verify.deadlock_free} holds on
    every successful result. *)
val route :
  ?variant:variant ->
  ?engine:Layers.engine ->
  ?heuristic:Heuristic.t ->
  ?max_layers:int ->
  ?balance:bool ->
  ?batch:int ->
  ?domains:int ->
  ?pool:Routing.Sssp.pool ->
  ?kernel:Routing.Spf.kind ->
  Graph.t ->
  (Ftable.t, error) result

(** [layers_required ?variant ?heuristic ?max_layers g] is the virtual
    layer count alone (the quantity of the paper's Figs. 9/10). *)
val layers_required :
  ?variant:variant ->
  ?engine:Layers.engine ->
  ?heuristic:Heuristic.t ->
  ?max_layers:int ->
  ?batch:int ->
  ?domains:int ->
  ?kernel:Routing.Spf.kind ->
  Graph.t ->
  (int, error) result

(** [assign_layers ?variant ?heuristic ?max_layers ?balance ft] applies the
    cycle-breaking layer assignment to an {e existing} routing — any
    oblivious routing (DOR on a torus, MinHop on an irregular fabric)
    becomes deadlock-free this way, not only SSSP; the APP machinery is
    routing-agnostic. Overwrites [ft]'s layer table in place and returns
    it. [engine]/[domains] select and parallelise the offline break
    engine as in {!route}. *)
val assign_layers :
  ?variant:variant ->
  ?engine:Layers.engine ->
  ?domains:int ->
  ?heuristic:Heuristic.t ->
  ?max_layers:int ->
  ?balance:bool ->
  Ftable.t ->
  (Ftable.t, error) result

(** [route_min_layers ?max_layers g] runs the offline assignment under
    every heuristic and keeps the result using the fewest virtual layers
    (APP is NP-complete, so no single heuristic dominates — paper
    Section IV). Returns the winning table and its heuristic.

    [domains > 1] runs the heuristics concurrently (each inner route
    stays single-domain); the winner — by (layers, heuristic order) — is
    identical to the sequential scan's. [batch] is forwarded to the SSSP
    stage and, unlike [domains], changes the routes themselves. *)
val route_min_layers :
  ?engine:Layers.engine ->
  ?max_layers:int ->
  ?batch:int ->
  ?domains:int ->
  ?kernel:Routing.Spf.kind ->
  Graph.t ->
  (Ftable.t * Heuristic.t, error) result
