(** Uniform access to every routing algorithm the paper compares
    (its Figs. 4–8): MinHop, SSSP, Up*/Down*, FatTree, LASH, DOR, DFSSSP
    (offline and online). Each entry may refuse fabrics it does not
    support — a refusal is the paper's "missing bar". *)

type algorithm = {
  name : string;
  deadlock_free_by_design : bool;
  run : Graph.t -> (Ftable.t, string) result;
}

(** The paper's line-up, in its Fig. 4 legend order:
    MinHop, Up*/Down*, FatTree, DOR, LASH, SSSP, DFSSSP.
    [coords] enables DOR on grid fabrics; without it DOR refuses.
    [batch]/[domains] select the batched-snapshot pipeline (DESIGN.md
    section 12) on the engines that support it — [batch] changes the
    tables (defaults to the sequential recurrence), [domains] only the
    wall-clock; LASH ignores both. [kernel] selects the shortest-path
    core (DESIGN.md §15) on the engines that compute shortest paths
    (MinHop, LASH, SSSP, DFSSSP and the hardened variants); it never
    changes any table. [engine] selects the offline cycle-break engine
    (DESIGN.md section 17) on DFSSSP and the hardened variants; it
    changes only the wall-clock of the break stage, with layer counts
    within +1 of the DFS oracle. *)
val all :
  ?coords:Coords.t ->
  ?max_layers:int ->
  ?engine:Layers.engine ->
  ?batch:int ->
  ?domains:int ->
  ?kernel:Routing.Spf.kind ->
  unit ->
  algorithm list

(** [find ?coords name] is case-insensitive; accepts "dfsssp-online" for
    the online variant. *)
val find :
  ?coords:Coords.t ->
  ?max_layers:int ->
  ?engine:Layers.engine ->
  ?batch:int ->
  ?domains:int ->
  ?kernel:Routing.Spf.kind ->
  string ->
  algorithm option

val names : string list
