type t = {
  planes : Ftable.t array;
  num_layers : int;
}

let planes t = t.planes

let graph t = Routing.Ftable.graph t.planes.(0)

let num_layers t = t.num_layers

(* Combined arena over all planes: pair id [plane * nt^2 + si * nt + di],
   so one joint layer assignment sees every plane's routes. *)
let combined_store planes =
  let g = Routing.Ftable.graph planes.(0) in
  let terminals = Graph.terminals g in
  let nt = Array.length terminals in
  let per_plane = nt * nt in
  let store = Route_store.create g ~capacity:(Array.length planes * per_plane) in
  Array.iteri
    (fun plane ft ->
      Array.iteri
        (fun si src ->
          Array.iteri
            (fun di dst ->
              if si <> di then
                let pair = (plane * per_plane) + (si * nt) + di in
                if not (Routing.Ftable.path_into ft store ~pair ~src ~dst) then
                  failwith (Printf.sprintf "Multipath: no route %d -> %d in plane %d" src dst plane))
            terminals)
        terminals)
    planes;
  store

let decode_pair planes pair =
  let terminals = Graph.terminals (Routing.Ftable.graph planes.(0)) in
  let nt = Array.length terminals in
  let per_plane = nt * nt in
  let plane = pair / per_plane and rest = pair mod per_plane in
  (plane, terminals.(rest / nt), terminals.(rest mod nt))

let route ?(planes = 2) ?(heuristic = Heuristic.Weakest) ?(max_layers = 8) g =
  if planes < 1 then invalid_arg "Multipath.route: planes < 1";
  let weights = Routing.Sssp.initial_weights g in
  let rec build i acc =
    if i >= planes then Ok (Array.of_list (List.rev acc))
    else
      match Routing.Sssp.route_plane g ~weights with
      | Error msg -> Error (Router.Routing_failed msg)
      | Ok ft -> build (i + 1) (ft :: acc)
  in
  match build 0 [] with
  | Error _ as e -> e
  | Ok plane_tables -> (
    let store = combined_store plane_tables in
    match Layers.assign_store store ~max_layers ~heuristic with
    | Error msg -> Error (Router.Layers_exhausted msg)
    | Ok outcome ->
      Route_store.iter_pairs store (fun pair ->
          let plane, src, dst = decode_pair plane_tables pair in
          Routing.Ftable.set_layer plane_tables.(plane) ~src ~dst
            outcome.Layers.layer_of_path.(pair));
      Array.iter
        (fun ft -> Routing.Ftable.set_num_layers ft outcome.Layers.layers_used)
        plane_tables;
      Ok { planes = plane_tables; num_layers = outcome.Layers.layers_used })

let path t ~plane ~src ~dst =
  if plane < 0 || plane >= Array.length t.planes then invalid_arg "Multipath.path: plane out of range";
  Routing.Ftable.path t.planes.(plane) ~src ~dst

let spread_paths t ~flows =
  let k = Array.length t.planes in
  Array.mapi
    (fun i (src, dst) ->
      if src = dst then [||]
      else
        match Routing.Ftable.path t.planes.(i mod k) ~src ~dst with
        | Some p -> p
        | None -> failwith (Printf.sprintf "Multipath.spread_paths: no route %d -> %d" src dst))
    flows

let deadlock_free t =
  let store = combined_store t.planes in
  let layer_of_path = Array.make (Route_store.capacity store) (-1) in
  Route_store.iter_pairs store (fun pair ->
      let plane, src, dst = decode_pair t.planes pair in
      layer_of_path.(pair) <- Routing.Ftable.layer t.planes.(plane) ~src ~dst);
  Acyclic.layers_acyclic_store store ~layer_of_path ~num_layers:t.num_layers
