(** Deadlock-free single-source-shortest-path routing (DFSSSP) — the
    public API of this library. [Dfsssp.route] computes globally-balanced
    minimal routes (SSSP) and partitions them over virtual layers so every
    layer's channel dependency graph is acyclic; {!Verify} checks the
    result end to end; {!Registry} exposes the paper's full algorithm
    line-up under one interface. *)

include module type of struct
  include Router
end

module Verify : module type of Verify

module Registry : module type of Registry

module Multipath : module type of Multipath

module Route_store : module type of Deadlock.Route_store
