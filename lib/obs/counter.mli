(** Monotonic counters with optional per-slot cells. With [slots = k]
    each worker slot owns a cache-line-strided atomic cell, so parallel
    increments from distinct slots never contend; [value] folds the
    cells at read time (advisory snapshot, not linearizable). *)

type t

(** @raise Invalid_argument when [slots < 1]. *)
val create : ?slots:int -> ?desc:string -> string -> t

val name : t -> string
val desc : t -> string
val slots : t -> int

(** [incr ?slot ?n t] adds [n] (default 1) to [slot]'s cell (default 0).
    Slots outside [0, slots) clamp to the nearest valid cell. *)
val incr : ?slot:int -> ?n:int -> t -> unit

(** Gauge-style assignment (epoch numbers, high-water marks); only
    meaningful on single-writer counters. *)
val set : ?slot:int -> t -> int -> unit

val slot_value : t -> int -> int

(** Sum over all slots. *)
val value : t -> int

val reset : t -> unit
val to_json : t -> Json.t
