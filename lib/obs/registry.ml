(* A named collection of counters and timers, snapshotable as JSON. The
   default registry holds the process-wide library instrumentation
   (routing planes, pool utilization, certifier runs); subsystems with
   per-instance telemetry (the fabric manager) carry their own. *)

type item =
  | Counter of Counter.t
  | Timer of Timer.t

type t = {
  lock : Mutex.t;
  mutable items : item list; (* insertion order, newest first *)
}

let create () = { lock = Mutex.create (); items = [] }

let default_registry = create ()

let default () = default_registry

let item_name = function
  | Counter c -> Counter.name c
  | Timer t -> Timer.name t

let register ?(registry = default_registry) item =
  Mutex.lock registry.lock;
  (* same-name re-registration replaces: module re-initialization and
     repeated tool runs must not grow the snapshot *)
  registry.items <- item :: List.filter (fun i -> item_name i <> item_name item) registry.items;
  Mutex.unlock registry.lock

let counter ?registry ?slots ?desc name =
  let c = Counter.create ?slots ?desc name in
  register ?registry (Counter c);
  c

let timer ?registry ?slots ?desc ?capacity name =
  let t = Timer.create ?slots ?desc ?capacity name in
  register ?registry (Timer t);
  t

let items registry =
  Mutex.lock registry.lock;
  let xs = List.rev registry.items in
  Mutex.unlock registry.lock;
  xs

let find_counter registry name =
  List.find_map
    (function
      | Counter c when Counter.name c = name -> Some c
      | _ -> None)
    (items registry)

let find_timer registry name =
  List.find_map
    (function
      | Timer t when Timer.name t = name -> Some t
      | _ -> None)
    (items registry)

let reset registry =
  List.iter
    (function
      | Counter c -> Counter.reset c
      | Timer t -> Timer.reset t)
    (items registry)

let to_json registry =
  Json.Obj
    (List.map
       (function
         | Counter c -> (Counter.name c, Counter.to_json c)
         | Timer t -> (Timer.name t, Timer.to_json t))
       (items registry))

let json_string registry = Json.to_string (to_json registry)
