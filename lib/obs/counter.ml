(* Monotonic counters with per-slot cells. A counter created with
   [slots = k] gives every worker slot its own cell, so domains on
   different slots never contend on the same atomic; cells are strided
   across cache lines to keep neighbouring slots from false sharing.
   [value] folds the cells at read time — snapshots are advisory, not
   linearizable, which is all telemetry needs. *)

let stride = 8 (* ints per cell: one 64-byte cache line apart *)

type t = {
  name : string;
  desc : string;
  slots : int;
  cells : int Atomic.t array; (* length slots * stride; cell i lives at i * stride *)
}

let create ?(slots = 1) ?(desc = "") name =
  if slots < 1 then invalid_arg "Obs.Counter.create: slots < 1";
  { name; desc; slots; cells = Array.init (slots * stride) (fun _ -> Atomic.make 0) }

let name t = t.name
let desc t = t.desc
let slots t = t.slots

(* Out-of-range slots clamp to the last cell, so callers with more
   workers than cells degrade to sharing rather than crashing. *)
let cell t slot = t.cells.(min (max slot 0) (t.slots - 1) * stride)

let incr ?(slot = 0) ?(n = 1) t = ignore (Atomic.fetch_and_add (cell t slot) n)

(* Gauge-style assignment (epoch numbers, high-water marks): writes slot
   0; only meaningful on single-writer counters. *)
let set ?(slot = 0) t v = Atomic.set (cell t slot) v

let slot_value t slot = Atomic.get (cell t slot)

let value t =
  let sum = ref 0 in
  for i = 0 to t.slots - 1 do
    sum := !sum + Atomic.get t.cells.(i * stride)
  done;
  !sum

let reset t =
  for i = 0 to t.slots - 1 do
    Atomic.set t.cells.(i * stride) 0
  done

let to_json t =
  let base =
    [ ("kind", Json.Str "counter"); ("value", Json.Num (float_of_int (value t))) ]
  in
  let per_slot =
    if t.slots <= 1 then []
    else
      [
        ( "per_slot",
          Json.List (List.init t.slots (fun i -> Json.Num (float_of_int (slot_value t i)))) );
      ]
  in
  let desc = if t.desc = "" then [] else [ ("desc", Json.Str t.desc) ] in
  Json.Obj (base @ per_slot @ desc)
