(** Duration accumulators with per-slot cells and a bounded ring of
    recent samples per slot, summarized on demand as a {!Stat.summary}.
    Each slot is meant to be written by a single domain; snapshot reads
    may race writers and observe slightly stale values (advisory). *)

type t

(** @raise Invalid_argument when [slots < 1] or [capacity < 1]. *)
val create : ?slots:int -> ?desc:string -> ?capacity:int -> string -> t

val name : t -> string
val desc : t -> string
val slots : t -> int

(** Record a duration in seconds against a slot (default 0; slots clamp
    to the valid range). *)
val add : ?slot:int -> t -> float -> unit

(** Time [f] with [Unix.gettimeofday], recording even when it raises. *)
val time : ?slot:int -> t -> (unit -> 'a) -> 'a

val count : t -> int
val sum_s : t -> float
val slot_count : t -> int -> int
val slot_sum_s : t -> int -> float

(** Retained recent samples, merged across slots (unspecified order). *)
val samples : t -> float array

(** [None] until at least one sample was recorded. *)
val summary : t -> Stat.summary option

val reset : t -> unit
val to_json : t -> Json.t
