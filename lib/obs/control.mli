(** The process-wide observability switch. Counters and timers always
    accumulate (word-sized adds at coarse granularity); trace spans and
    per-slot pool timing run only while [enabled ()] — a single atomic
    load on the fast path — so the instrumented hot paths cost nothing
    measurable when the switch is off (the default). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Run [f] with the switch forced to [b], restoring the previous state
    afterwards (exception-safe; meant for tests). *)
val with_enabled : bool -> (unit -> 'a) -> 'a
