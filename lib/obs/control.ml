(* The master switch. Observability is compiled in everywhere but OFF by
   default: counters and timers always count (they are a handful of
   word-sized adds at batch/event granularity), while anything that
   costs real work — trace spans, per-slot pool timing — is gated here
   and skipped with a single load when disabled. *)

let flag = Atomic.make false

let enabled () = Atomic.get flag

let set_enabled b = Atomic.set flag b

let with_enabled b f =
  let prev = Atomic.get flag in
  Atomic.set flag b;
  Fun.protect ~finally:(fun () -> Atomic.set flag prev) f
