(* A minimal JSON tree: enough to emit every observability artifact
   (registry snapshots, trace spans) and to parse them back in tests and
   benchmark gates, without a third-party dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_num buf x =
  if Float.is_nan x || Float.abs x = Float.infinity then
    (* NaN / infinities are not JSON; null keeps the document valid *)
    Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.12g" x)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> add_num buf x
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: a small recursive-descent reader over the whole string      *)
(* ------------------------------------------------------------------ *)

exception Parse of string

(* The parser is recursive descent, so an adversarial document of the
   shape "[[[[..." costs one stack frame per bracket; now that the codec
   frames a network protocol (lib/service), the depth is capped well
   below any stack limit. No legitimate artifact nests past a handful of
   levels. *)
let default_max_depth = 512

let of_string ?(max_depth = default_max_depth) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      &&
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' -> true
      | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
            in
            (* UTF-8 encode the BMP code point; surrogate pairs are rare
               in telemetry and land as two encoded halves *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "malformed number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value (depth + 1) in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elements ();
        List (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Num x -> Some x
  | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None

let to_list = function
  | List xs -> Some xs
  | _ -> None
