(* Structured trace spans with a pluggable sink. A span is emitted once,
   at its end, as a flat record: id, parent (per-domain nesting tracked
   through domain-local state), name, start time, duration and typed
   attributes. The default sink is none at all: with no sink installed
   or with {!Control} disabled, [with_span] is one load and a branch
   around the traced function, and attribute thunks are never forced. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type attrs = (string * value) list

type span = {
  id : int;
  parent : int option;
  name : string;
  start_s : float; (* Unix.gettimeofday at span start *)
  dur_s : float;
  attrs : attrs;
}

type sink = {
  emit : span -> unit;
  flush : unit -> unit;
}

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)
(* ------------------------------------------------------------------ *)

let value_to_json = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Num (float_of_int i)
  | Float x -> Json.Num x
  | Str s -> Json.Str s

let span_to_json s =
  Json.Obj
    ([
       ("id", Json.Num (float_of_int s.id));
       ("parent", match s.parent with None -> Json.Null | Some p -> Json.Num (float_of_int p));
       ("name", Json.Str s.name);
       ("ts", Json.Num s.start_s);
       ("dur_ms", Json.Num (1000.0 *. s.dur_s));
     ]
    @
    match s.attrs with
    | [] -> []
    | attrs -> [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) attrs)) ])

(* One JSON object per line, serialized under a mutex: spans ending on
   different domains interleave by line, never within one. *)
let json_lines ?(flush = fun () -> ()) write =
  let lock = Mutex.create () in
  {
    emit =
      (fun s ->
        let line = Json.to_string (span_to_json s) ^ "\n" in
        Mutex.lock lock;
        Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> write line));
    flush;
  }

let channel_sink oc = json_lines ~flush:(fun () -> Out_channel.flush oc) (Out_channel.output_string oc)

let buffer_sink buf = json_lines (Buffer.add_string buf)

let counting_sink counter = { emit = (fun _ -> Counter.incr counter); flush = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* The installed sink                                                   *)
(* ------------------------------------------------------------------ *)

let current : sink option Atomic.t = Atomic.make None

let set_sink s =
  (match Atomic.get current with
  | Some old -> old.flush ()
  | None -> ());
  Atomic.set current s

let flush () =
  match Atomic.get current with
  | Some s -> s.flush ()
  | None -> ()

let enabled () =
  Control.enabled ()
  &&
  match Atomic.get current with
  | Some _ -> true
  | None -> false

let with_sink s f =
  let prev = Atomic.get current in
  set_sink (Some s);
  Fun.protect
    ~finally:(fun () ->
      s.flush ();
      Atomic.set current prev)
    f

(* ------------------------------------------------------------------ *)
(* Span lifecycle                                                       *)
(* ------------------------------------------------------------------ *)

let next_id = Atomic.make 1

(* per-domain stack of open span ids, for parent attribution *)
let open_spans : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

type handle =
  | No_span
  | Active of {
      id : int;
      parent : int option;
      name : string;
      start_s : float;
      start_attrs : attrs;
    }

let begin_span ?attrs name =
  if not (enabled ()) then No_span
  else begin
    let stack = Domain.DLS.get open_spans in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    let id = Atomic.fetch_and_add next_id 1 in
    stack := id :: !stack;
    Active
      {
        id;
        parent;
        name;
        start_s = Unix.gettimeofday ();
        start_attrs = (match attrs with None -> [] | Some f -> f ());
      }
  end

let end_span ?(attrs = []) handle =
  match handle with
  | No_span -> ()
  | Active { id; parent; name; start_s; start_attrs } ->
    let stack = Domain.DLS.get open_spans in
    (* pop through any spans an exception left open below us *)
    let rec pop = function
      | x :: rest when x <> id -> pop rest
      | x :: rest when x = id -> rest
      | rest -> rest
    in
    stack := pop !stack;
    (match Atomic.get current with
    | None -> ()
    | Some sink ->
      sink.emit
        {
          id;
          parent;
          name;
          start_s;
          dur_s = Unix.gettimeofday () -. start_s;
          attrs = start_attrs @ attrs;
        })

let with_span ?attrs name f =
  if not (enabled ()) then f ()
  else begin
    let h = begin_span ?attrs name in
    match f () with
    | result ->
      end_span h;
      result
    | exception e ->
      end_span ~attrs:[ ("error", Str (Printexc.to_string e)) ] h;
      raise e
  end

let instant ?attrs name =
  if enabled () then begin
    let h = begin_span ?attrs name in
    end_span h
  end
