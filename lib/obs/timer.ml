(* Duration accumulators: per-slot count + total seconds, plus a bounded
   ring of recent samples per slot so snapshots can report a
   {!Stat.summary} (the histogram view) without unbounded memory. Slots
   are written by one domain each; the snapshot reader may race a writer
   and observe a slightly stale mix — telemetry reads are advisory. *)

type cell = {
  mutable count : int;
  mutable sum_s : float;
  ring : float array;
  mutable ring_len : int; (* samples retained, <= capacity *)
  mutable ring_pos : int; (* next write position *)
}

type t = {
  name : string;
  desc : string;
  cells : cell array;
}

let default_capacity = 512

let create ?(slots = 1) ?(desc = "") ?(capacity = default_capacity) name =
  if slots < 1 then invalid_arg "Obs.Timer.create: slots < 1";
  if capacity < 1 then invalid_arg "Obs.Timer.create: capacity < 1";
  {
    name;
    desc;
    cells =
      Array.init slots (fun _ ->
          { count = 0; sum_s = 0.0; ring = Array.make capacity 0.0; ring_len = 0; ring_pos = 0 });
  }

let name t = t.name
let desc t = t.desc
let slots t = Array.length t.cells

let add ?(slot = 0) t seconds =
  let c = t.cells.(min (max slot 0) (Array.length t.cells - 1)) in
  c.count <- c.count + 1;
  c.sum_s <- c.sum_s +. seconds;
  let cap = Array.length c.ring in
  c.ring.(c.ring_pos) <- seconds;
  c.ring_pos <- (c.ring_pos + 1) mod cap;
  if c.ring_len < cap then c.ring_len <- c.ring_len + 1

let time ?slot t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add ?slot t (Unix.gettimeofday () -. t0)) f

let count t = Array.fold_left (fun acc c -> acc + c.count) 0 t.cells

let sum_s t = Array.fold_left (fun acc c -> acc +. c.sum_s) 0.0 t.cells

let slot_count t slot = t.cells.(slot).count

let slot_sum_s t slot = t.cells.(slot).sum_s

(* Recent samples, merged across slots (each slot keeps its newest
   [capacity]); order is unspecified, which the summary does not care
   about. *)
let samples t =
  let total = Array.fold_left (fun acc c -> acc + c.ring_len) 0 t.cells in
  let out = Array.make total 0.0 in
  let k = ref 0 in
  Array.iter
    (fun c ->
      for i = 0 to c.ring_len - 1 do
        out.(!k) <- c.ring.(i);
        incr k
      done)
    t.cells;
  out

let summary t =
  let xs = samples t in
  if Array.length xs = 0 then None else Some (Stat.summarize xs)

let reset t =
  Array.iter
    (fun c ->
      c.count <- 0;
      c.sum_s <- 0.0;
      c.ring_len <- 0;
      c.ring_pos <- 0)
    t.cells

let to_json t =
  let base =
    [
      ("kind", Json.Str "timer");
      ("count", Json.Num (float_of_int (count t)));
      ("sum_s", Json.Num (sum_s t));
    ]
  in
  let summ =
    match summary t with
    | None -> []
    | Some s -> [ ("seconds", Stat.summary_to_json s) ]
  in
  let per_slot =
    if Array.length t.cells <= 1 then []
    else
      [
        ( "per_slot",
          Json.List
            (Array.to_list
               (Array.map
                  (fun c ->
                    Json.Obj
                      [ ("count", Json.Num (float_of_int c.count)); ("sum_s", Json.Num c.sum_s) ])
                  t.cells)) );
      ]
  in
  let desc = if t.desc = "" then [] else [ ("desc", Json.Str t.desc) ] in
  Json.Obj (base @ summ @ per_slot @ desc)
