(* Sample statistics shared by the simulators, the harness and the
   timers. One implementation, one ordering: sorting uses [Float.compare]
   (the IEEE total order: NaN first, then -inf .. +inf), never the
   polymorphic [compare], so percentile ranks are deterministic and
   independent of the input order even for samples containing NaN. *)

type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  median : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Obs.Stat.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let sorted_copy xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  sorted

(* Nearest-rank percentile on an already-sorted sample. *)
let percentile_sorted p sorted =
  if Array.length sorted = 0 then invalid_arg "Obs.Stat.percentile: empty sample";
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Obs.Stat.percentile: p out of range";
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let percentile p xs = percentile_sorted p (sorted_copy xs)

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Obs.Stat.summarize: empty sample";
  let sorted = sorted_copy xs in
  let mu = mean xs in
  let var = Array.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs /. float_of_int n in
  {
    n;
    (* extrema off the sorted ends: deterministic under the total order,
       where a fold with [min]/[max] would be order-sensitive around NaN *)
    min = sorted.(0);
    max = sorted.(n - 1);
    mean = mu;
    stddev = sqrt var;
    median = percentile_sorted 0.5 sorted;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d min=%.4f median=%.4f mean=%.4f max=%.4f sd=%.4f" s.n s.min s.median s.mean s.max
    s.stddev

let summary_to_json s =
  Json.Obj
    [
      ("n", Json.Num (float_of_int s.n));
      ("min", Json.Num s.min);
      ("max", Json.Num s.max);
      ("mean", Json.Num s.mean);
      ("stddev", Json.Num s.stddev);
      ("median", Json.Num s.median);
    ]
