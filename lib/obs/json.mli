(** A dependency-free JSON tree, encoder and parser — the wire format of
    every observability artifact (registry snapshots, trace spans,
    benchmark gates). The parser exists so tests and bench gates can
    consume what the sinks emit without a third-party library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Escape a string for embedding between double quotes. *)
val escape : string -> string

val to_buffer : Buffer.t -> t -> unit

(** Compact (single-line) rendering. NaN and infinities encode as
    [null]; integral floats print without a fractional part. *)
val to_string : t -> string

(** Parse a complete JSON document. Built for hostile input now that the
    codec frames a network protocol: trailing garbage is an error, and
    nesting deeper than [max_depth] (default 512) is rejected instead of
    recursing toward a stack overflow. *)
val of_string : ?max_depth:int -> string -> (t, string) result

(** [member key j] is the field [key] of object [j], if any. *)
val member : string -> t -> t option

val to_float : t -> float option

(** Integral numbers only. *)
val to_int : t -> int option

val to_str : t -> string option
val to_list : t -> t list option
