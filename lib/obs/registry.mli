(** A named collection of counters and timers, snapshotable as JSON.

    The {!default} registry carries the process-wide library
    instrumentation (routing planes, pool utilization, certifier runs);
    subsystems with per-instance telemetry — the fabric manager — create
    their own. Registering an item under an existing name replaces the
    old item, so re-initialization never grows a snapshot. *)

type item =
  | Counter of Counter.t
  | Timer of Timer.t

type t

val create : unit -> t

(** The process-wide registry. *)
val default : unit -> t

(** Register into [registry] (default: the process-wide one). *)
val register : ?registry:t -> item -> unit

(** Create a counter/timer and register it in one step. *)
val counter : ?registry:t -> ?slots:int -> ?desc:string -> string -> Counter.t

val timer : ?registry:t -> ?slots:int -> ?desc:string -> ?capacity:int -> string -> Timer.t

(** Registered items in registration order. *)
val items : t -> item list

val find_counter : t -> string -> Counter.t option
val find_timer : t -> string -> Timer.t option

(** Reset every registered item (meant for tests and tools). *)
val reset : t -> unit

(** Snapshot: an object mapping item names to their JSON forms. *)
val to_json : t -> Json.t

val json_string : t -> string
