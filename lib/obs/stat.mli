(** Sample statistics, with one deterministic ordering. All sorting uses
    [Float.compare] (IEEE total order: NaN sorts first), never the
    polymorphic [compare], so results are independent of input order
    even when a sample contains NaN. *)

type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  median : float;
}

(** Summary of a non-empty sample. @raise Invalid_argument on empty. *)
val summarize : float array -> summary

(** [percentile p xs] for [p] in [0, 1], nearest-rank on a sorted copy.
    @raise Invalid_argument on an empty sample or [p] outside [0, 1]
    (including NaN). *)
val percentile : float -> float array -> float

val mean : float array -> float
val pp_summary : Format.formatter -> summary -> unit
val summary_to_json : summary -> Json.t
