(** Structured trace spans with a pluggable sink.

    A span is emitted once, when it ends, as a flat record: id, parent
    (nesting is tracked per domain), name, start timestamp, duration and
    typed attributes. With no sink installed — the default — or with
    {!Control} disabled, tracing reduces to one atomic load and a branch
    per call site, and attribute thunks are never forced. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type attrs = (string * value) list

type span = {
  id : int;
  parent : int option;
  name : string;
  start_s : float;
  dur_s : float;
  attrs : attrs;
}

type sink = {
  emit : span -> unit;
  flush : unit -> unit;
}

val span_to_json : span -> Json.t

(** [json_lines write] emits one compact JSON object per span through
    [write], one line each, serialized under a mutex. *)
val json_lines : ?flush:(unit -> unit) -> (string -> unit) -> sink

val channel_sink : out_channel -> sink
val buffer_sink : Buffer.t -> sink

(** Counts emitted spans and drops them — for overhead measurement. *)
val counting_sink : Counter.t -> sink

(** Install (or with [None] remove) the process-wide sink; the previous
    sink, if any, is flushed. *)
val set_sink : sink option -> unit

(** Flush the installed sink, if any — the shutdown/crash path of
    long-running processes (a killed daemon must not truncate its
    JSON-lines trace mid-object). *)
val flush : unit -> unit

(** Tracing is live: {!Control.enabled} and a sink is installed. *)
val enabled : unit -> bool

(** Run [f] with [sink] installed, restoring (and flushing) on exit. *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** [with_span ?attrs name f] traces [f]. [attrs] is a thunk, evaluated
    only when tracing is live. If [f] raises, the span is emitted with
    an ["error"] attribute and the exception rethrown. *)
val with_span : ?attrs:(unit -> attrs) -> string -> (unit -> 'a) -> 'a

(** Explicit lifecycle for spans whose ending attributes depend on the
    computed result. [begin_span] is a no-op token when tracing is off;
    [end_span] appends [attrs] to the ones captured at the start. *)
type handle

val begin_span : ?attrs:(unit -> attrs) -> string -> handle
val end_span : ?attrs:attrs -> handle -> unit

(** A zero-duration marker span. *)
val instant : ?attrs:(unit -> attrs) -> string -> unit
