(** Fork-join helpers over OCaml 5 domains for the embarrassingly parallel
    parts of the pipeline — effective-bisection-bandwidth sampling
    (independent random matchings) and per-layer verification (independent
    channel dependency graphs). Work functions must be pure with respect
    to shared state: they may read the immutable fabric and routing
    tables, and must not touch shared mutable structures. *)

(** [Domain.recommended_domain_count], capped at 8 — the fan-out sweet
    spot for the workloads here. *)
val recommended_domains : unit -> int

(** [map_array ~domains f a] is [Array.map f a] computed on [domains]
    domains (contiguous chunks). [domains <= 1], or arrays of fewer than 2
    elements, run sequentially. The first exception raised by any chunk is
    re-raised after all domains joined. Ordering of results matches the
    input regardless of scheduling. *)
val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [init ~domains n f] is [Array.init n f], parallelised the same way. *)
val init : ?domains:int -> int -> (int -> 'a) -> 'a array

(** [for_all ~domains f a] evaluates [f] on every element (no
    short-circuit across chunks) and conjoins. *)
val for_all : ?domains:int -> ('a -> bool) -> 'a array -> bool

(** Persistent worker pool with per-domain scratch state — the substrate
    of the domain-parallel routing pipeline (DESIGN.md section 12).

    Unlike {!init}/{!map_array}, which spawn fresh domains per call, a
    pool keeps its domains alive between tasks (idle workers sleep on a
    condition variable), so per-domain scratch — Dijkstra workspaces,
    flow arrays, weight-delta accumulators — survives from one task to
    the next and is re-validated cheaply by the caller (e.g. via epoch
    stamping) instead of being reallocated.

    A pool is driven from one domain at a time (the domain that calls
    {!Pool.run}); work functions may freely mutate their own scratch and
    any shared state partitioned so that no two indices touch the same
    cell. *)
module Pool : sig
  type 's t

  (** [create ?domains scratch] spawns [domains - 1] worker domains
      (default {!recommended_domains}) plus the calling domain as worker
      slot 0, and builds one scratch value per slot with [scratch slot].
      A pool of size 1 spawns nothing and runs everything inline. *)
  val create : ?domains:int -> (int -> 's) -> 's t

  (** Number of workers, including the calling domain. *)
  val size : 's t -> int

  (** [run pool ~n ?grain f] evaluates [f scratch i] for every
      [i] in [0..n-1], distributing indices over the workers in chunks of
      [grain] (default [n / (4 * size)], at least 1) via a shared cursor.
      Blocks until every index is done; the first exception raised by any
      chunk is re-raised afterwards (remaining chunks of that worker are
      abandoned, other workers drain normally).
      @raise Invalid_argument on a pool that was {!shutdown}. *)
  val run : 's t -> n:int -> ?grain:int -> ('s -> int -> unit) -> unit

  (** [map_reduce pool ~n ~map ~fold init] maps in parallel and folds the
      results {e sequentially in index order} — the fold order (and hence
      the result, even for non-commutative folds) is independent of the
      pool size and of scheduling. *)
  val map_reduce :
    's t -> n:int -> ?grain:int -> map:('s -> int -> 'b) -> fold:('a -> 'b -> 'a) -> 'a -> 'a

  (** [iter_scratch pool f] applies [f] to every worker's scratch, in slot
      order, on the calling domain. Call it between {!run}s to merge
      per-domain accumulators into shared state deterministically. *)
  val iter_scratch : 's t -> ('s -> unit) -> unit

  (** [slot_scratch pool slot] is the scratch value of slot [slot]
      (0 being the calling domain's slot). Useful for running a batch
      inline on the caller without paying pool dispatch — the inline
      path of {!Routing.Batched.run} uses slot 0.
      @raise Invalid_argument if [slot] is out of range. *)
  val slot_scratch : 's t -> int -> 's

  (** Terminate and join the worker domains. Idempotent; the pool must
      not be used afterwards. *)
  val shutdown : 's t -> unit

  (** [with_pool ?domains scratch f] is [f (create ?domains scratch)]
      with a guaranteed {!shutdown}. *)
  val with_pool : ?domains:int -> (int -> 's) -> ('s t -> 'a) -> 'a
end
