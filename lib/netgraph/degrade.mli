(** Fault injection: derive degraded fabrics by removing cables or
    switches. The paper's introduction motivates DFSSSP exactly here —
    real machines lose links, grow sideways, and stop being the clean
    fat tree or torus their specialized routing assumed; a general
    deadlock-free routing must keep working on the remainder. *)

(** [remove_cables g ~rng ~count] removes [count] random switch-to-switch
    cables (both directed channels) while keeping the fabric connected:
    cables whose removal would disconnect it are skipped (like an operator
    draining redundant links only). Returns the degraded fabric and the
    number of cables actually removed — possibly fewer than requested when
    no further cable is redundant. Terminal attachment cables are never
    touched. Node ids are preserved; channel ids are re-assigned. *)
val remove_cables : Graph.t -> rng:Rng.t -> count:int -> Graph.t * int

(** [remove_switch g ~switch] removes one switch, its cables, and the
    terminals attached to it. Fails if the remainder is disconnected or
    [switch] is not a switch id. Node and channel ids are re-assigned;
    nodes keep their names. Channels disabled via {!disable_cable} are
    dropped from the rebuilt fabric. *)
val remove_switch : Graph.t -> switch:int -> (Graph.t, string) result

(** {1 Id-stable fault injection}

    Unlike {!remove_cables}, these keep every node {e and channel} id
    intact: a disabled cable's channels merely leave the adjacency arrays
    ({!Graph.with_enabled}), so external bookkeeping keyed by channel id
    — forwarding tables, SSSP weight state, metrics — stays valid across
    events. This is what the fabric manager's incremental re-routing is
    built on. A cable is named by either channel id of its bidirectional
    pair. *)

(** [disable_cable g ~cable] takes one switch-to-switch cable down (both
    directed channels). Fails if [cable] is unknown, touches a terminal,
    is already down, or its loss would disconnect the fabric. Returns the
    new graph and the disabled channel ids (ascending). *)
val disable_cable : Graph.t -> cable:int -> (Graph.t * int list, string) result

(** [restore_cable g ~cable] brings a disabled cable back up. Fails if the
    cable is not currently disabled. Returns the new graph and the
    restored channel ids (ascending). *)
val restore_cable : Graph.t -> cable:int -> (Graph.t * int list, string) result

(** [drain_switch g ~switch] disables as many of the switch's
    inter-switch cables as connectivity allows (an operator preparing a
    switch for maintenance). Cables whose loss would strand part of the
    fabric — including the drained switch's own terminals — survive.
    Returns the new graph and the disabled channel ids (possibly [[]]). *)
val drain_switch : Graph.t -> switch:int -> (Graph.t * int list, string) result

(** Lower channel ids of all currently-disabled cables, ascending. *)
val disabled_cables : Graph.t -> int list

(** Lower channel ids of all enabled switch-to-switch cables — the
    candidates for {!disable_cable} (and for {!remove_cables}'s random
    draw). *)
val switch_cables : Graph.t -> int array
