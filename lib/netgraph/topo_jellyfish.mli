(** Jellyfish random topology (Singla et al., NSDI'12): [switches]
    switches of [ports] ports each, [net_ports] of them wired into a
    random (near-)regular graph of inter-switch cables, the remaining
    [ports - net_ports] ports carrying one terminal each.

    The construction is the paper's incremental one — link random
    non-adjacent switch pairs with free ports; when stuck, free ports by
    splicing an existing cable — followed by a degree-preserving
    edge-swap pass that guarantees connectivity. No self loops, no
    parallel cables. Deterministic in [rng]. *)

(** @raise Invalid_argument on [switches < 2], [net_ports < 2],
    [net_ports > ports], or [net_ports >= switches] (a simple graph
    needs enough distinct peers). *)
val make : switches:int -> ports:int -> net_ports:int -> rng:Rng.t -> Graph.t
