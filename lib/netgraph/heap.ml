type t = {
  mutable size : int;
  elt : int array; (* heap slot -> element *)
  pos : int array; (* element -> heap slot, or -1 (valid while stamp = gen) *)
  prio : int array; (* element -> priority (valid while pos >= 0 and stamp = gen) *)
  stamp : int array; (* element -> generation that last wrote pos.(x) *)
  mutable gen : int; (* current generation; bumped by clear *)
}

let create capacity =
  if capacity < 0 then invalid_arg "Heap.create";
  let cap = max capacity 1 in
  {
    size = 0;
    elt = Array.make cap (-1);
    pos = Array.make cap (-1);
    prio = Array.make cap 0;
    stamp = Array.make cap (-1);
    gen = 0;
  }

let size t = t.size

let is_empty t = t.size = 0

let mem t x =
  x >= 0 && x < Array.length t.pos && t.stamp.(x) = t.gen && t.pos.(x) >= 0

let priority t x = if mem t x then t.prio.(x) else raise Not_found

let swap t i j =
  let a = t.elt.(i) and b = t.elt.(j) in
  t.elt.(i) <- b;
  t.elt.(j) <- a;
  t.pos.(a) <- j;
  t.pos.(b) <- i

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(t.elt.(i)) < t.prio.(t.elt.(parent)) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.prio.(t.elt.(l)) < t.prio.(t.elt.(!smallest)) then smallest := l;
  if r < t.size && t.prio.(t.elt.(r)) < t.prio.(t.elt.(!smallest)) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let insert t x p =
  if x < 0 || x >= Array.length t.pos then invalid_arg "Heap.insert: out of range";
  if mem t x then invalid_arg "Heap.insert: already present";
  let i = t.size in
  t.size <- t.size + 1;
  t.elt.(i) <- x;
  t.pos.(x) <- i;
  t.stamp.(x) <- t.gen;
  t.prio.(x) <- p;
  sift_up t i

let decrease t x p =
  if not (mem t x) then invalid_arg "Heap.decrease: absent";
  if p > t.prio.(x) then invalid_arg "Heap.decrease: priority increase";
  t.prio.(x) <- p;
  sift_up t t.pos.(x)

let insert_or_decrease t x p =
  if mem t x then (if p < t.prio.(x) then decrease t x p) else insert t x p

let pop_min t =
  if t.size = 0 then None
  else begin
    let x = t.elt.(0) in
    let p = t.prio.(x) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.elt.(t.size) in
      t.elt.(0) <- last;
      t.pos.(last) <- 0;
      sift_down t 0
    end;
    t.pos.(x) <- -1;
    Some (x, p)
  end

let clear t =
  t.gen <- t.gen + 1;
  t.size <- 0
