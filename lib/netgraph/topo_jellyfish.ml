let make ~switches ~ports ~net_ports ~rng =
  if switches < 2 then invalid_arg "Topo_jellyfish.make: switches < 2";
  if net_ports < 2 then invalid_arg "Topo_jellyfish.make: net_ports < 2";
  if net_ports > ports then invalid_arg "Topo_jellyfish.make: net_ports > ports";
  if net_ports >= switches then invalid_arg "Topo_jellyfish.make: net_ports >= switches";
  let adjacent = Hashtbl.create (switches * net_ports) in
  let key a b = (min a b, max a b) in
  let degree = Array.make switches 0 in
  let edges = ref [] in
  let num_edges = ref 0 in
  let add a b =
    Hashtbl.replace adjacent (key a b) ();
    degree.(a) <- degree.(a) + 1;
    degree.(b) <- degree.(b) + 1;
    edges := (a, b) :: !edges;
    incr num_edges
  in
  let remove a b =
    Hashtbl.remove adjacent (key a b);
    degree.(a) <- degree.(a) - 1;
    degree.(b) <- degree.(b) - 1;
    edges := List.filter (fun e -> e <> (a, b) && e <> (b, a)) !edges;
    decr num_edges
  in
  let free s = net_ports - degree.(s) in
  let linked a b = Hashtbl.mem adjacent (key a b) in
  (* Phase 1 (the paper's incremental construction): keep linking
     uniformly random non-adjacent pairs that both have free ports. *)
  let candidates () =
    let acc = ref [] in
    for a = 0 to switches - 1 do
      if free a > 0 then
        for b = a + 1 to switches - 1 do
          if free b > 0 && not (linked a b) then acc := (a, b) :: !acc
        done
    done;
    Array.of_list (List.rev !acc)
  in
  let rec fill () =
    let c = candidates () in
    if Array.length c > 0 then begin
      let a, b = Rng.pick rng c in
      add a b;
      fill ()
    end
  in
  fill ();
  (* Phase 2: a switch still holding >= 2 free ports splices itself into
     a random cable neither of whose ends it already touches. *)
  let rec splice () =
    let stuck = ref [] in
    for s = 0 to switches - 1 do
      if free s >= 2 then stuck := s :: !stuck
    done;
    match List.rev !stuck with
    | [] -> ()
    | stuck ->
      let order = Array.of_list stuck in
      Rng.shuffle rng order;
      let spliced = ref false in
      Array.iter
        (fun u ->
          if not !spliced then begin
            let usable =
              List.filter
                (fun (x, y) -> x <> u && y <> u && not (linked u x) && not (linked u y))
                !edges
            in
            match usable with
            | [] -> () (* nothing to splice this switch into *)
            | usable ->
              let x, y = Rng.pick rng (Array.of_list (List.rev usable)) in
              remove x y;
              add u x;
              add u y;
              spliced := true
          end)
        order;
      if !spliced then splice ()
  in
  splice ();
  let edges = Rewire.connect_components ~switches ~edges:(List.rev !edges) ~rng in
  let b = Builder.create () in
  let sw = Array.init switches (fun i -> Builder.add_switch b ~name:(Printf.sprintf "s%d" i)) in
  let terminals_per_switch = ports - net_ports in
  for s = 0 to switches - 1 do
    for t = 0 to terminals_per_switch - 1 do
      let (_ : int) =
        Builder.add_terminal b ~name:(Printf.sprintf "t%d_%d" s t) ~switch:sw.(s)
      in
      ()
    done
  done;
  List.iter (fun (x, y) -> ignore (Builder.add_link b sw.(x) sw.(y))) edges;
  Builder.build b
