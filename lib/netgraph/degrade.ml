(* Rebuild a graph from a subset of its cables. [keep_cable] receives the
   lower channel id of each bidirectional pair. Disabled channels are
   dropped: the rebuilt graph materializes only the enabled fabric. *)
let rebuild g ~keep_node ~keep_cable =
  let b = Builder.create () in
  let remap = Array.make (Graph.num_nodes g) (-1) in
  Array.iter
    (fun (nd : Node.t) ->
      if keep_node nd.id && Node.is_switch nd then remap.(nd.id) <- Builder.add_switch b ~name:nd.name)
    (Graph.nodes g);
  Array.iter
    (fun (nd : Node.t) ->
      if keep_node nd.id && Node.is_terminal nd then begin
        let attach = (Graph.channel g (Graph.out_channels g nd.id).(0)).Channel.dst in
        if remap.(attach) >= 0 then remap.(nd.id) <- Builder.add_terminal b ~name:nd.name ~switch:remap.(attach)
      end)
    (Graph.nodes g);
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.id with
      | Some r when r < c.id -> ()
      | _ ->
        let a = Graph.node g c.src and d = Graph.node g c.dst in
        if
          Node.is_switch a && Node.is_switch d && remap.(c.src) >= 0 && remap.(c.dst) >= 0
          && Graph.channel_enabled g c.id && keep_cable c.id
        then begin
          let (_ : int * int) = Builder.add_link b remap.(c.src) remap.(c.dst) in
          ()
        end)
    (Graph.channels g);
  Builder.build b

let switch_cables g =
  let out = ref [] in
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.id with
      | Some r when r < c.id -> ()
      | _ ->
        if Graph.is_switch g c.src && Graph.is_switch g c.dst && Graph.channel_enabled g c.id then
          out := c.id :: !out)
    (Graph.channels g);
  Array.of_list (List.rev !out)

let remove_cables g ~rng ~count =
  let removed = Hashtbl.create 16 in
  let connected_without extra =
    (* BFS over switches only, skipping removed cables and [extra]. *)
    let skip c =
      Hashtbl.mem removed c
      || (match Graph.reverse_channel g c with Some r -> Hashtbl.mem removed (min c r) | None -> false)
      || c = extra
      || (match Graph.reverse_channel g c with Some r -> min c r = extra | None -> false)
    in
    let switches = Graph.switches g in
    if Array.length switches = 0 then true
    else begin
      let seen = Hashtbl.create 64 in
      let queue = Queue.create () in
      Hashtbl.replace seen switches.(0) ();
      Queue.add switches.(0) queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        Array.iter
          (fun c ->
            let v = (Graph.channel g c).Channel.dst in
            if Graph.is_switch g v && (not (skip c)) && not (Hashtbl.mem seen v) then begin
              Hashtbl.replace seen v ();
              Queue.add v queue
            end)
          (Graph.out_channels g u)
      done;
      Hashtbl.length seen = Array.length switches
    end
  in
  let candidates = switch_cables g in
  Rng.shuffle rng candidates;
  let taken = ref 0 in
  Array.iter
    (fun cable ->
      if !taken < count && connected_without cable then begin
        Hashtbl.replace removed cable ();
        incr taken
      end)
    candidates;
  let g' = rebuild g ~keep_node:(fun _ -> true) ~keep_cable:(fun c -> not (Hashtbl.mem removed c)) in
  (g', !taken)

let cable_channels g c =
  match Graph.reverse_channel g c with
  | Some r -> if r < c then [ r; c ] else [ c; r ]
  | None -> [ c ]

(* Switch-level connectivity over the enabled adjacency, pretending the
   channels in [skip] are gone too. *)
let switch_connected_without g ~skip =
  let switches = Graph.switches g in
  if Array.length switches = 0 then true
  else begin
    let skipped = Hashtbl.create 4 in
    List.iter (fun c -> Hashtbl.replace skipped c ()) skip;
    let seen = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.replace seen switches.(0) ();
    Queue.add switches.(0) queue;
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      Array.iter
        (fun c ->
          let v = (Graph.channel g c).Channel.dst in
          if Graph.is_switch g v && (not (Hashtbl.mem skipped c)) && not (Hashtbl.mem seen v) then begin
            Hashtbl.replace seen v ();
            Queue.add v queue
          end)
        (Graph.out_channels g u)
    done;
    Hashtbl.length seen = Array.length switches
  end

let check_cable g ~cable =
  if cable < 0 || cable >= Graph.num_channels g then Error "unknown channel id"
  else
    let c = Graph.channel g cable in
    if not (Graph.is_switch g c.Channel.src && Graph.is_switch g c.Channel.dst) then
      Error "not a switch-to-switch cable"
    else Ok (cable_channels g cable)

let disable_cable g ~cable =
  match check_cable g ~cable with
  | Error msg -> Error (Printf.sprintf "Degrade.disable_cable: %s" msg)
  | Ok chans ->
    if List.exists (fun c -> not (Graph.channel_enabled g c)) chans then
      Error "Degrade.disable_cable: cable already disabled"
    else if not (switch_connected_without g ~skip:chans) then
      Error "Degrade.disable_cable: would disconnect the fabric"
    else begin
      let enabled = Array.init (Graph.num_channels g) (Graph.channel_enabled g) in
      List.iter (fun c -> enabled.(c) <- false) chans;
      Ok (Graph.with_enabled g ~enabled, chans)
    end

let restore_cable g ~cable =
  match check_cable g ~cable with
  | Error msg -> Error (Printf.sprintf "Degrade.restore_cable: %s" msg)
  | Ok chans ->
    if List.exists (Graph.channel_enabled g) chans then
      Error "Degrade.restore_cable: cable not disabled"
    else begin
      let enabled = Array.init (Graph.num_channels g) (Graph.channel_enabled g) in
      List.iter (fun c -> enabled.(c) <- true) chans;
      Ok (Graph.with_enabled g ~enabled, chans)
    end

let drain_switch g ~switch =
  if switch < 0 || switch >= Graph.num_nodes g || not (Graph.is_switch g switch) then
    Error "Degrade.drain_switch: not a switch"
  else begin
    (* Greedily disable the switch's inter-switch cables, keeping the ones
       whose loss would disconnect the fabric (terminals attached to the
       drained switch keep a path out through those survivors). *)
    let enabled = Array.init (Graph.num_channels g) (Graph.channel_enabled g) in
    let taken = ref [] in
    Array.iter
      (fun c ->
        let dst = (Graph.channel g c).Channel.dst in
        if Graph.is_switch g dst && enabled.(c) then begin
          let chans = cable_channels g c in
          if switch_connected_without g ~skip:(!taken @ chans) then begin
            List.iter (fun c -> enabled.(c) <- false) chans;
            taken := chans @ !taken
          end
        end)
      (Graph.out_channels g switch);
    if !taken = [] then Ok (g, [])
    else Ok (Graph.with_enabled g ~enabled, List.sort compare !taken)
  end

let disabled_cables g =
  let out = ref [] in
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.id with
      | Some r when r < c.id -> ()
      | _ -> if not (Graph.channel_enabled g c.id) then out := c.id :: !out)
    (Graph.channels g);
  List.rev !out

let remove_switch g ~switch =
  if switch < 0 || switch >= Graph.num_nodes g || not (Graph.is_switch g switch) then
    Error "Degrade.remove_switch: not a switch"
  else begin
    let keep_node v =
      v <> switch
      &&
      if Graph.is_terminal g v then (Graph.channel g (Graph.out_channels g v).(0)).Channel.dst <> switch
      else true
    in
    let g' = rebuild g ~keep_node ~keep_cable:(fun _ -> true) in
    if Graph.num_nodes g' > 0 && Graph.connected g' then Ok g'
    else Error "Degrade.remove_switch: remainder disconnected"
  end
