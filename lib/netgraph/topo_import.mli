(** Topology ingestion frontend: parse foreign topology files — a
    Graphviz DOT subset (the Topology-Zoo interchange form) and plain
    whitespace edge lists — into {!Graph.t}, with writers that round-trip.

    Both formats describe a switch-level network; a node becomes a
    terminal only when the file marks it ([kind=terminal] in DOT — what
    {!write_dot} emits). When a file declares {e no} terminals,
    [terminals_per_switch] synthetic terminals (default 1, named
    [<switch>_h<i>]) are attached to every switch so the imported fabric
    is immediately routable.

    {b Strict vs lenient.} Real zoo files are messy: repeated edges,
    self loops, disconnected fragments. [Strict] refuses each with a
    positioned error; [Lenient] repairs — duplicate edge statements
    collapse to one cable, self loops are dropped, and only the largest
    connected component is kept — recording one {!diag} per repair so an
    ingestion pipeline can surface exactly what was cleaned up.

    Intentional parallel cables survive both modes via an explicit
    multiplicity (the [mult=N] edge attribute in DOT, a third column in
    edge lists); only {e repeated statements} for the same endpoint pair
    count as duplicates. *)

type mode =
  | Strict  (** refuse messy input with a positioned error *)
  | Lenient  (** repair and record a {!diag} per repair *)

(** One lenient-mode repair (or informational note), tied to the input
    line that triggered it ([line = 0] for whole-file diagnostics). *)
type diag = {
  line : int;
  message : string;
}

type imported = {
  graph : Graph.t;
  diags : diag list;  (** oldest first; always [[]] in strict mode *)
  dropped_nodes : int;
      (** nodes discarded with smaller components (lenient only) *)
}

type format =
  | Dot
  | Edge_list

(** {1 Parsing} *)

(** [parse_dot text] reads the DOT subset: [strict]? ([graph]|[digraph])
    name? [{] node / edge / attribute statements [}], with [//], [/* */]
    and [#] comments, quoted or bare identifiers, attribute lists
    (ignored except [kind=terminal] and [mult=N]), and [a -- b -- c]
    edge chains. In a [digraph], [a -> b] and [b -> a] pair into one
    bidirectional cable; an unpaired direction is an error in strict
    mode and a repaired cable in lenient. Subgraphs are not supported.
    Whitespace inside quoted names becomes ['_'].
    @raise nothing; all failures are [Error "line N: ..."]. *)
val parse_dot :
  ?mode:mode -> ?terminals_per_switch:int -> string -> (imported, string) result

(** [parse_edge_list text] reads one cable per line — [<a> <b> [mult]]
    with [#] comments — declaring nodes implicitly. *)
val parse_edge_list :
  ?mode:mode -> ?terminals_per_switch:int -> string -> (imported, string) result

(** {1 Writing (round-trips with the parsers)} *)

(** Emit the DOT subset: every node quoted, terminals tagged
    [kind=terminal], parallel cables as one edge with [mult=N]. Parsing
    the result back in [Strict] mode reproduces the graph up to node
    ids (names and the cable multiset are preserved). *)
val write_dot : Graph.t -> string

(** Emit the edge-list form: switch-to-switch cables only (the format
    cannot express terminals — re-import synthesizes them). Parsing the
    result back with [~terminals_per_switch:0] reproduces the switch
    subgraph. *)
val write_edge_list : Graph.t -> string

(** {1 Files} *)

(** [sniff ?path contents] guesses the format: a [.dot]/[.gv] extension
    or a [graph]/[digraph] keyword means {!Dot}, else {!Edge_list}. *)
val sniff : ?path:string -> string -> format

(** [load path] reads and parses a file, sniffing the format unless
    [format] forces one. *)
val load :
  ?mode:mode ->
  ?format:format ->
  ?terminals_per_switch:int ->
  string ->
  (imported, string) result
