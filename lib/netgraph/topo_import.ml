type mode =
  | Strict
  | Lenient

type diag = {
  line : int;
  message : string;
}

type imported = {
  graph : Graph.t;
  diags : diag list;
  dropped_nodes : int;
}

type format =
  | Dot
  | Edge_list

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Intermediate representation shared by both parsers                   *)
(* ------------------------------------------------------------------ *)

type node_rec = {
  name : string;
  mutable terminal : bool;
  node_line : int;
}

type edge_rec = {
  a : int;
  b : int;
  mult : int;
  edge_line : int;
}

(* Node names may not contain whitespace (the Serial format and the
   writers below are line-oriented); quoted DOT names often do. *)
let normalize_name s =
  String.map (fun c -> match c with ' ' | '\t' | '\n' | '\r' -> '_' | c -> c) s

type interner = {
  index : (string, int) Hashtbl.t;
  mutable rev_nodes : node_rec list;
  mutable count : int;
}

let interner () = { index = Hashtbl.create 64; rev_nodes = []; count = 0 }

let intern t ~line raw =
  let name = normalize_name raw in
  if name = "" then Error (Printf.sprintf "line %d: empty node name" line)
  else
    match Hashtbl.find_opt t.index name with
    | Some i -> Ok i
    | None ->
      let i = t.count in
      Hashtbl.replace t.index name i;
      t.rev_nodes <- { name; terminal = false; node_line = line } :: t.rev_nodes;
      t.count <- i + 1;
      Ok i

let interned_nodes t = Array.of_list (List.rev t.rev_nodes)

(* [finish] runs the shared back half of both parsers: self-loop and
   duplicate-statement policy, terminal validation, connectivity, and
   the Builder pass. *)
let finish ~mode ~terminals_per_switch ~pre_diags nodes edges =
  if terminals_per_switch < 0 then Error "terminals_per_switch must be >= 0"
  else if Array.length nodes = 0 then Error "no nodes in input"
  else begin
    let rev_diags = ref (List.rev pre_diags) in
    let diag line fmt =
      Format.kasprintf (fun message -> rev_diags := { line; message } :: !rev_diags) fmt
    in
    let err line fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "line %d: %s" line s)) fmt in
    (* self loops *)
    let* edges =
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest when e.a = e.b -> (
          match mode with
          | Strict -> err e.edge_line "self loop on %s" nodes.(e.a).name
          | Lenient ->
            diag e.edge_line "dropped self loop on %s" nodes.(e.a).name;
            go acc rest)
        | e :: rest -> go (e :: acc) rest
      in
      go [] edges
    in
    (* duplicate statements for the same unordered pair: error in strict
       mode, collapsed to the largest stated multiplicity in lenient *)
    let* edges =
      let seen = Hashtbl.create 64 in
      let key e = (min e.a e.b, max e.a e.b) in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
          match Hashtbl.find_opt seen (key e) with
          | None ->
            Hashtbl.replace seen (key e) e;
            go (e :: acc) rest
          | Some first -> (
            match mode with
            | Strict ->
              err e.edge_line "duplicate edge %s -- %s (first at line %d)" nodes.(e.a).name
                nodes.(e.b).name first.edge_line
            | Lenient ->
              diag e.edge_line "collapsed duplicate edge %s -- %s (first at line %d)"
                nodes.(e.a).name nodes.(e.b).name first.edge_line;
              let merged = { first with mult = max first.mult e.mult } in
              Hashtbl.replace seen (key e) merged;
              go
                (List.map (fun x -> if key x = key e then merged else x) acc)
                rest))
      in
      go [] edges
    in
    (* terminal validation: exactly one unit cable to a switch *)
    let incident = Array.make (Array.length nodes) [] in
    List.iter
      (fun e ->
        incident.(e.a) <- e :: incident.(e.a);
        incident.(e.b) <- e :: incident.(e.b))
      edges;
    let valid_terminal i =
      match incident.(i) with
      | [ e ] ->
        let partner = if e.a = i then e.b else e.a in
        e.mult = 1 && not nodes.(partner).terminal
      | _ -> false
    in
    let* () =
      let invalid =
        Array.to_list nodes
        |> List.mapi (fun i nd -> (i, nd))
        |> List.filter (fun (i, nd) -> nd.terminal && not (valid_terminal i))
      in
      match (invalid, mode) with
      | [], _ -> Ok ()
      | (i, nd) :: _, Strict ->
        err nd.node_line "terminal %s must have exactly one unit cable to a switch" nodes.(i).name
      | invalid, Lenient ->
        List.iter
          (fun (_, nd) ->
            diag nd.node_line "node %s marked terminal but not attached like one; kept as switch"
              nd.name;
            nd.terminal <- false)
          invalid;
        Ok ()
    in
    (* connectivity: keep the largest component in lenient mode *)
    let n = Array.length nodes in
    let dsu = Dsu.create n in
    List.iter (fun e -> ignore (Dsu.union dsu e.a e.b)) edges;
    let components = Dsu.count dsu in
    let* keep =
      if components = 1 then Ok (Array.make n true)
      else
        match mode with
        | Strict -> Error (Printf.sprintf "disconnected: %d components" components)
        | Lenient ->
          let size = Hashtbl.create 16 in
          for i = 0 to n - 1 do
            let r = Dsu.find dsu i in
            Hashtbl.replace size r (1 + Option.value ~default:0 (Hashtbl.find_opt size r))
          done;
          (* largest component; ties go to the earliest-declared node *)
          let best = ref (Dsu.find dsu 0) in
          for i = 1 to n - 1 do
            let r = Dsu.find dsu i in
            if Hashtbl.find size r > Hashtbl.find size !best then best := r
          done;
          let keep = Array.init n (fun i -> Dsu.find dsu i = !best) in
          let dropped = n - Hashtbl.find size !best in
          diag 0 "kept largest component (%d of %d nodes); dropped %d node(s) in %d smaller component(s)"
            (Hashtbl.find size !best) n dropped (components - 1);
          Ok keep
    in
    let dropped_nodes = Array.fold_left (fun acc k -> if k then acc else acc + 1) 0 keep in
    (* build *)
    let builder = Builder.create () in
    let ids = Array.make n (-1) in
    Array.iteri
      (fun i nd -> if keep.(i) && not nd.terminal then ids.(i) <- Builder.add_switch builder ~name:nd.name)
      nodes;
    let declared_terminals = ref 0 in
    Array.iteri
      (fun i nd ->
        if keep.(i) && nd.terminal then begin
          incr declared_terminals;
          match incident.(i) with
          | [ e ] ->
            let partner = if e.a = i then e.b else e.a in
            ids.(i) <- Builder.add_terminal builder ~name:nd.name ~switch:ids.(partner)
          | _ -> assert false
        end)
      nodes;
    List.iter
      (fun e ->
        if keep.(e.a) && not (nodes.(e.a).terminal || nodes.(e.b).terminal) then
          for _ = 1 to e.mult do
            ignore (Builder.add_link builder ids.(e.a) ids.(e.b))
          done)
      edges;
    (* a file with no terminals of its own gets synthetic ones so the
       fabric is immediately routable *)
    if !declared_terminals = 0 && terminals_per_switch > 0 then begin
      let taken = Hashtbl.create 64 in
      Array.iteri (fun i nd -> if keep.(i) then Hashtbl.replace taken nd.name ()) nodes;
      Array.iteri
        (fun i nd ->
          if keep.(i) && not nd.terminal then
            for k = 0 to terminals_per_switch - 1 do
              let base = Printf.sprintf "%s_h%d" nd.name k in
              let rec fresh name = if Hashtbl.mem taken name then fresh (name ^ "_") else name in
              let name = fresh base in
              Hashtbl.replace taken name ();
              ignore (Builder.add_terminal builder ~name ~switch:ids.(i))
            done)
        nodes
    end;
    Ok { graph = Builder.build builder; diags = List.rev !rev_diags; dropped_nodes }
  end

(* ------------------------------------------------------------------ *)
(* Edge-list parser                                                     *)
(* ------------------------------------------------------------------ *)

let parse_edge_list ?(mode = Strict) ?(terminals_per_switch = 1) text =
  let t = interner () in
  let err line fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "line %d: %s" line s)) fmt in
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.trim (String.sub raw 0 i)
        | None -> String.trim raw
      in
      if line = "" then go (lineno + 1) acc rest
      else
        let words = List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)) in
        match words with
        | [ a; b ] | [ a; b; _ ] -> (
          let* mult =
            match words with
            | [ _; _ ] -> Ok 1
            | [ _; _; m ] -> (
              match int_of_string_opt m with
              | Some v when v >= 1 -> Ok v
              | _ -> err lineno "bad multiplicity %S" m)
            | _ -> assert false
          in
          let* ia = intern t ~line:lineno a in
          let* ib = intern t ~line:lineno b in
          go (lineno + 1) ({ a = ia; b = ib; mult; edge_line = lineno } :: acc) rest)
        | _ -> err lineno "want <a> <b> [mult], got %S" line)
  in
  let* edges = go 1 [] lines in
  finish ~mode ~terminals_per_switch ~pre_diags:[] (interned_nodes t) edges

(* ------------------------------------------------------------------ *)
(* DOT lexer                                                            *)
(* ------------------------------------------------------------------ *)

type token =
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Equals
  | Undirected_edge
  | Directed_edge
  | Ident of string
  | Eof

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '+' || c = '-'

(* One token plus the line it started on; lexing the whole input up
   front keeps the parser a plain list walk. *)
let lex text =
  let n = String.length text in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let error = ref None in
  let emit tok = toks := (tok, !line) :: !toks in
  (try
     while !i < n && !error = None do
       let c = text.[!i] in
       if c = '\n' then begin
         incr line;
         incr i
       end
       else if c = ' ' || c = '\t' || c = '\r' then incr i
       else if c = '#' then while !i < n && text.[!i] <> '\n' do incr i done
       else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then
         while !i < n && text.[!i] <> '\n' do incr i done
       else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
         let start_line = !line in
         i := !i + 2;
         let closed = ref false in
         while !i < n && not !closed do
           if text.[!i] = '\n' then incr line;
           if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
             closed := true;
             i := !i + 2
           end
           else incr i
         done;
         if not !closed then error := Some (Printf.sprintf "line %d: unterminated comment" start_line)
       end
       else if c = '"' then begin
         let start_line = !line in
         let buf = Buffer.create 16 in
         incr i;
         let closed = ref false in
         while !i < n && not !closed do
           let c = text.[!i] in
           if c = '\\' && !i + 1 < n then begin
             Buffer.add_char buf text.[!i + 1];
             i := !i + 2
           end
           else if c = '"' then begin
             closed := true;
             incr i
           end
           else begin
             if c = '\n' then incr line;
             Buffer.add_char buf c;
             incr i
           end
         done;
         if !closed then begin
           let saved = !line in
           line := start_line;
           emit (Ident (Buffer.contents buf));
           line := saved
         end
         else error := Some (Printf.sprintf "line %d: unterminated string" start_line)
       end
       else if c = '-' && !i + 1 < n && text.[!i + 1] = '-' then begin
         emit Undirected_edge;
         i := !i + 2
       end
       else if c = '-' && !i + 1 < n && text.[!i + 1] = '>' then begin
         emit Directed_edge;
         i := !i + 2
       end
       else if is_ident_char c then begin
         let start = !i in
         while !i < n && is_ident_char text.[!i] do incr i done;
         emit (Ident (String.sub text start (!i - start)))
       end
       else begin
         (match c with
         | '{' -> emit Lbrace
         | '}' -> emit Rbrace
         | '[' -> emit Lbracket
         | ']' -> emit Rbracket
         | ';' -> emit Semi
         | ',' -> emit Comma
         | '=' -> emit Equals
         | c -> error := Some (Printf.sprintf "line %d: unexpected character %C" !line c));
         incr i
       end
     done
   with _ -> error := Some "lexer error");
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev ((Eof, !line) :: !toks))

(* ------------------------------------------------------------------ *)
(* DOT parser                                                           *)
(* ------------------------------------------------------------------ *)

let token_text = function
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Equals -> "="
  | Undirected_edge -> "--"
  | Directed_edge -> "->"
  | Ident s -> Printf.sprintf "%S" s
  | Eof -> "end of input"

let parse_dot ?(mode = Strict) ?(terminals_per_switch = 1) text =
  let* toks = lex text in
  let toks = ref toks in
  let peek () = List.hd !toks in
  let advance () = toks := List.tl !toks in
  let next () =
    let t = peek () in
    advance ();
    t
  in
  let err line fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "line %d: %s" line s)) fmt in
  let unexpected (tok, line) where = err line "unexpected %s %s" (token_text tok) where in
  let expect_ident where =
    match next () with
    | Ident s, line -> Ok (s, line)
    | (tok, line) -> err line "expected a name %s, got %s" where (token_text tok)
  in
  (* [attrs] is an assoc of lowercased keys; later lists override *)
  let rec parse_attr_lists acc =
    match peek () with
    | Lbracket, _ ->
      advance ();
      let rec items acc =
        match peek () with
        | Rbracket, _ ->
          advance ();
          Ok acc
        | (Comma | Semi), _ ->
          advance ();
          items acc
        | Ident key, _ -> (
          advance ();
          match peek () with
          | Equals, _ ->
            advance ();
            let* value, _ = expect_ident "as attribute value" in
            items ((String.lowercase_ascii key, value) :: acc)
          | _ -> items ((String.lowercase_ascii key, "true") :: acc))
        | (tok, line) -> err line "unexpected %s in attribute list" (token_text tok)
      in
      let* acc = items acc in
      parse_attr_lists acc
    | _ -> Ok acc
  in
  let intr = interner () in
  let edges = ref [] in
  (* digraph edges are paired into cables after parsing *)
  let directed = ref false in
  let* () =
    match next () with
    | Ident kw, line -> (
      let kw, line =
        if String.lowercase_ascii kw = "strict" then
          match next () with
          | Ident kw2, line2 -> (kw2, line2)
          | (tok, l) -> (token_text tok, l)
        else (kw, line)
      in
      match String.lowercase_ascii kw with
      | "graph" -> Ok ()
      | "digraph" ->
        directed := true;
        Ok ()
      | _ -> err line "expected \"graph\" or \"digraph\", got %S" kw)
    | (tok, line) -> err line "expected \"graph\" or \"digraph\", got %s" (token_text tok)
  in
  let* () =
    (* optional graph name *)
    (match peek () with
    | Ident _, _ -> advance ()
    | _ -> ());
    match next () with
    | Lbrace, _ -> Ok ()
    | (tok, line) -> err line "expected '{', got %s" (token_text tok)
  in
  let rec statements () =
    match next () with
    | Rbrace, _ -> Ok ()
    | Semi, _ -> statements ()
    | Eof, line -> err line "unexpected end of input (missing '}')"
    | Ident raw, line -> (
      let lower = String.lowercase_ascii raw in
      match (lower, peek ()) with
      | "subgraph", _ -> err line "subgraph is not supported"
      | ("node" | "edge" | "graph"), (Lbracket, _) ->
        (* default-attribute statement: parsed and ignored *)
        let* (_ : (string * string) list) = parse_attr_lists [] in
        statements ()
      | _, (Equals, _) ->
        (* top-level attribute assignment, e.g. overlap=false *)
        advance ();
        let* (_, _) = expect_ident "as attribute value" in
        statements ()
      | _ -> (
        let* first = intern intr ~line raw in
        (* edge chain: a -- b -- c *)
        let rec chain acc =
          match peek () with
          | Undirected_edge, op_line | Directed_edge, op_line -> (
            let op = fst (peek ()) in
            let want = if !directed then Directed_edge else Undirected_edge in
            if op <> want then
              err op_line "%s edge operator in a %s" (token_text op)
                (if !directed then "digraph (use ->)" else "graph (use --)")
            else begin
              advance ();
              let* name, nline = expect_ident "after edge operator" in
              let* id = intern intr ~line:nline name in
              chain (id :: acc)
            end)
          | _ -> Ok (List.rev acc)
        in
        let* chain_ids = chain [ first ] in
        let* attrs = parse_attr_lists [] in
        let* mult =
          match List.assoc_opt "mult" attrs with
          | None -> Ok 1
          | Some v -> (
            match int_of_string_opt v with
            | Some m when m >= 1 -> Ok m
            | _ -> err line "bad mult attribute %S" v)
        in
        (match chain_ids with
        | [ node ] ->
          (* node statement; [kind=terminal] marks a terminal *)
          (match List.assoc_opt "kind" attrs with
          | Some v when String.lowercase_ascii v = "terminal" ->
            (List.nth (List.rev intr.rev_nodes) node).terminal <- true
          | _ -> ())
        | _ ->
          let rec pairs = function
            | a :: (b :: _ as rest) ->
              edges := { a; b; mult; edge_line = line } :: !edges;
              pairs rest
            | _ -> ()
          in
          pairs chain_ids);
        statements ()))
    | (tok, line) -> unexpected (tok, line) "at statement start"
  in
  let* () = statements () in
  let* () =
    match next () with
    | Eof, _ -> Ok ()
    | (tok, line) -> err line "trailing input after '}': %s" (token_text tok)
  in
  let nodes = interned_nodes intr in
  let edges = List.rev !edges in
  (* pair digraph arcs into bidirectional cables *)
  let* edges, pre_diags =
    if not !directed then Ok (edges, [])
    else begin
      let fwd = Hashtbl.create 64 in
      (* per unordered pair: (mult a->b, mult b->a, first line) with a < b *)
      let exception Dup of string in
      try
        List.iter
          (fun e ->
            let a = min e.a e.b and b = max e.a e.b in
            let forward = e.a <= e.b in
            let f, r, l =
              Option.value ~default:(0, 0, e.edge_line) (Hashtbl.find_opt fwd (a, b))
            in
            if (forward && f > 0) || ((not forward) && r > 0) then begin
              if mode = Strict then
                raise
                  (Dup
                     (Printf.sprintf "line %d: duplicate edge %s -> %s (first at line %d)"
                        e.edge_line nodes.(e.a).name nodes.(e.b).name l))
            end;
            let f = if forward then max f e.mult else f in
            let r = if forward then r else max r e.mult in
            Hashtbl.replace fwd (a, b) (f, r, min l e.edge_line))
          edges;
        let cables = ref [] and diags = ref [] in
        let ordered = Hashtbl.fold (fun k v acc -> (k, v) :: acc) fwd [] in
        let ordered = List.sort (fun ((_, _), (_, _, l1)) ((_, _), (_, _, l2)) -> compare l1 l2) ordered in
        List.iter
          (fun ((a, b), (f, r, l)) ->
            if f <> r && mode = Strict then
              raise
                (Dup
                   (Printf.sprintf
                      "line %d: unpaired directed edge between %s and %s (%d forward, %d reverse)" l
                      nodes.(a).name nodes.(b).name f r))
            else begin
              if f <> r then
                diags :=
                  {
                    line = l;
                    message =
                      Printf.sprintf "paired unbalanced directed edges %s/%s as %d cable(s)"
                        nodes.(a).name nodes.(b).name (max f r);
                  }
                  :: !diags;
              cables := { a; b; mult = max f r; edge_line = l } :: !cables
            end)
          ordered;
        Ok (List.rev !cables, List.rev !diags)
      with Dup msg -> Error msg
    end
  in
  finish ~mode ~terminals_per_switch ~pre_diags nodes edges

(* ------------------------------------------------------------------ *)
(* Writers                                                              *)
(* ------------------------------------------------------------------ *)

let quote name = Printf.sprintf "%S" name

(* cables as ((name a, name b), multiplicity) with [a <= b], sorted by
   name — canonical across node-id permutations, so writer output is
   stable under an import round trip *)
let cables g =
  let counts = Hashtbl.create 256 in
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.Channel.id with
      | Some r when r < c.Channel.id -> ()
      | _ ->
        let key = (min c.Channel.src c.Channel.dst, max c.Channel.src c.Channel.dst) in
        Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    (Graph.channels g);
  Hashtbl.fold
    (fun (a, b) mult acc ->
      let na = (Graph.node g a).Node.name and nb = (Graph.node g b).Node.name in
      let pair = if na <= nb then (na, nb) else (nb, na) in
      ((pair, (a, b)), mult) :: acc)
    counts []
  |> List.sort compare

let write_dot g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "graph imported {\n";
  Array.iter
    (fun (nd : Node.t) ->
      if Node.is_terminal nd then
        Buffer.add_string buf (Printf.sprintf "  %s [kind=terminal];\n" (quote nd.Node.name))
      else Buffer.add_string buf (Printf.sprintf "  %s;\n" (quote nd.Node.name)))
    (Graph.nodes g);
  List.iter
    (fun (((na, nb), _), mult) ->
      if mult = 1 then Buffer.add_string buf (Printf.sprintf "  %s -- %s;\n" (quote na) (quote nb))
      else
        Buffer.add_string buf (Printf.sprintf "  %s -- %s [mult=%d];\n" (quote na) (quote nb) mult))
    (cables g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_edge_list g =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (((na, nb), (a, b)), mult) ->
      if Graph.is_switch g a && Graph.is_switch g b then begin
        if mult = 1 then Buffer.add_string buf (Printf.sprintf "%s %s\n" na nb)
        else Buffer.add_string buf (Printf.sprintf "%s %s %d\n" na nb mult)
      end)
    (cables g);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Files                                                                *)
(* ------------------------------------------------------------------ *)

let find_substring s sub =
  let sl = String.length s and subl = String.length sub in
  let rec go i =
    if i + subl > sl then None
    else if String.sub s i subl = sub then Some i
    else go (i + 1)
  in
  go 0

let sniff ?path contents =
  let by_extension =
    match path with
    | Some p when Filename.check_suffix p ".dot" || Filename.check_suffix p ".gv" -> Some Dot
    | Some p when Filename.check_suffix p ".edges" || Filename.check_suffix p ".edgelist" ->
      Some Edge_list
    | _ -> None
  in
  match by_extension with
  | Some f -> f
  | None ->
    (* first interesting word decides *)
    let words =
      String.split_on_char '\n' contents
      |> List.concat_map (fun l ->
             let l = match String.index_opt l '#' with Some i -> String.sub l 0 i | None -> l in
             let l =
               match find_substring l "//" with Some i -> String.sub l 0 i | None -> l
             in
             String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) l))
      |> List.filter (fun w -> String.trim w <> "")
    in
    (match words with
    | w :: _ when List.mem (String.lowercase_ascii w) [ "strict"; "graph"; "digraph" ] -> Dot
    | _ -> Edge_list)

let load ?(mode = Strict) ?format ?terminals_per_switch path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    let format = match format with Some f -> f | None -> sniff ~path contents in
    match format with
    | Dot -> parse_dot ~mode ?terminals_per_switch contents
    | Edge_list -> parse_edge_list ~mode ?terminals_per_switch contents)
