(** Degree-preserving connectivity repair for the random topology
    generators ({!Topo_jellyfish}, {!Topo_xpander}).

    Random near-regular graphs are connected with high probability but
    not always; rather than resample (which would make the cable count
    depend on luck), repair deterministically: while more than one
    component remains, replace one cable [(a, b)] of the component
    containing switch 0 and one cable [(c, d)] of another component with
    [(a, c)] and [(b, d)]. Both new cables span the two components, so
    every switch keeps its degree, no self loops or parallel cables can
    appear, and the components merge. *)

(** [connect_components ~switches ~edges ~rng] returns the repaired
    cable list (same length, same degree sequence). [edges] are
    unordered switch pairs without self loops or duplicates.
    @raise Invalid_argument if some switch has no cable at all — degree
    swaps cannot help an isolated switch. *)
val connect_components :
  switches:int -> edges:(int * int) list -> rng:Rng.t -> (int * int) list
