(** Indexed binary min-heap over integer elements [0 .. capacity-1] with
    integer priorities and decrease-key, as required by Dijkstra's
    algorithm over dense node-id spaces.

    {b Reuse across runs.} A single heap is meant to be allocated once per
    workspace and reused for every shortest-path tree: [clear] is O(1) (it
    bumps an internal generation counter instead of walking the occupied
    slots), so per-destination reuse costs nothing beyond the live
    elements actually pushed.

    {b decrease_key-free operation.} Callers that cannot (or prefer not
    to) track membership may skip [decrease] entirely and reinsert a
    fresh (element, priority) pair on every improvement, skipping stale
    pops whose priority no longer matches the caller's distance array.
    This heap supports both styles; the bucket-queue kernel in
    [Routing.Spf] uses the reinsertion discipline exclusively, while the
    binary-heap oracle uses [insert_or_decrease] to keep each element
    resident at most once. *)

type t

(** [create capacity] makes an empty heap able to hold elements
    [0 .. capacity-1]. *)
val create : int -> t

(** Number of elements currently in the heap. *)
val size : t -> int

val is_empty : t -> bool

(** [mem t x] is [true] iff [x] is currently in the heap. *)
val mem : t -> int -> bool

(** [priority t x] is the current priority of [x].
    @raise Not_found if [x] is not in the heap. *)
val priority : t -> int -> int

(** [insert t x p] adds [x] with priority [p].
    @raise Invalid_argument if [x] is already present or out of range. *)
val insert : t -> int -> int -> unit

(** [decrease t x p] lowers the priority of [x] to [p].
    @raise Invalid_argument if [x] is absent or [p] is larger than the
    current priority. *)
val decrease : t -> int -> int -> unit

(** [insert_or_decrease t x p] inserts [x], or decreases its key if present
    and [p] improves on it; a no-op if [p] is not an improvement. *)
val insert_or_decrease : t -> int -> int -> unit

(** [pop_min t] removes and returns the element with the smallest priority
    (ties broken arbitrarily but deterministically). *)
val pop_min : t -> (int * int) option

(** Remove all elements in O(1): the current generation is invalidated
    wholesale rather than walking the occupied slots, so clearing a heap
    between destinations is free regardless of how full it was. *)
val clear : t -> unit
