let make ~net_degree ~lift ?(terminals_per_switch = 1) ~rng () =
  if net_degree < 2 then invalid_arg "Topo_xpander.make: net_degree < 2";
  if lift < 1 then invalid_arg "Topo_xpander.make: lift < 1";
  if terminals_per_switch < 0 then invalid_arg "Topo_xpander.make: terminals_per_switch < 0";
  let meta = net_degree + 1 in
  let switches = meta * lift in
  (* switch (u, i) = copy i of meta-node u *)
  let id u i = (u * lift) + i in
  let edges = ref [] in
  for u = 0 to meta - 1 do
    for v = u + 1 to meta - 1 do
      (* one random perfect matching per meta-edge *)
      let pi = Array.init lift (fun i -> i) in
      Rng.shuffle rng pi;
      for i = 0 to lift - 1 do
        edges := (id u i, id v pi.(i)) :: !edges
      done
    done
  done;
  let edges = Rewire.connect_components ~switches ~edges:(List.rev !edges) ~rng in
  let b = Builder.create () in
  let sw = Array.init switches (fun i -> Builder.add_switch b ~name:(Printf.sprintf "s%d" i)) in
  for s = 0 to switches - 1 do
    for t = 0 to terminals_per_switch - 1 do
      let (_ : int) =
        Builder.add_terminal b ~name:(Printf.sprintf "t%d_%d" s t) ~switch:sw.(s)
      in
      ()
    done
  done;
  List.iter (fun (x, y) -> ignore (Builder.add_link b sw.(x) sw.(y))) edges;
  Builder.build b
