(** The network fabric: an immutable directed multigraph of switches and
    terminals connected by directed channels (the [I = G(N, C)] of the
    paper). Construct one with {!Builder}. *)

type t

(** {1 Accessors} *)

val num_nodes : t -> int
val num_channels : t -> int

(** All nodes, indexed by node id. Do not mutate. *)
val nodes : t -> Node.t array

(** All channels, indexed by channel id. Do not mutate. *)
val channels : t -> Channel.t array

val node : t -> int -> Node.t
val channel : t -> int -> Channel.t

(** Channel ids leaving the given node. Do not mutate. *)
val out_channels : t -> int -> int array

(** Channel ids entering the given node. Do not mutate. *)
val in_channels : t -> int -> int array

(** Ids of all switch nodes. Do not mutate. *)
val switches : t -> int array

(** Ids of all terminal nodes. Do not mutate. *)
val terminals : t -> int array

val num_switches : t -> int
val num_terminals : t -> int

(** [reverse_channel g c] is the id of the opposite-direction channel of the
    same physical cable, if the cable was added bidirectionally. *)
val reverse_channel : t -> int -> int option

val is_switch : t -> int -> bool
val is_terminal : t -> int -> bool

(** {1 Channel enablement}

    Every channel exists forever under its original id; a channel may
    additionally be {e disabled}, which removes it from the adjacency
    arrays (so graph algorithms route around it) while keeping
    {!channels}, {!reverse_channel} and all ids untouched. This is the
    substrate for id-stable fault injection ({!Degrade.disable_cable})
    and the incremental re-routing of the fabric manager. *)

(** [channel_enabled g c] is [true] unless [c] was disabled by
    {!with_enabled}. *)
val channel_enabled : t -> int -> bool

(** Number of channels currently carried in the adjacency arrays. *)
val num_enabled_channels : t -> int

(** [with_enabled g ~enabled] is [g] with exactly the channels whose mask
    entry is [true] present in the adjacency arrays. Nodes, channels and
    ids are shared unchanged; the mask is copied.
    @raise Invalid_argument if the mask length differs from
    [num_channels g]. *)
val with_enabled : t -> enabled:bool array -> t

(** {1 Graph algorithms} *)

(** [bfs_dist g src] is the array of hop distances from node [src]
    ([max_int] for unreachable nodes). *)
val bfs_dist : t -> int -> int array

(** [connected g] is [true] iff every node can reach every other node. *)
val connected : t -> bool

(** Longest shortest-path hop count over all node pairs ([0] for a
    single-node graph). @raise Invalid_argument if the graph is empty or
    disconnected. *)
val diameter : t -> int

(** [degree g v] is the number of outgoing channels of [v]. *)
val degree : t -> int -> int

(** {1 Consistency} *)

(** Structural invariants: ids dense and consistent, adjacency symmetric
    with the channel array, terminals attached to exactly one switch by a
    bidirectional link. Returns [Error msg] describing the first violation. *)
val validate : t -> (unit, string) result

val pp_stats : Format.formatter -> t -> unit

(** {1 Construction (used by {!Builder})} *)

val make :
  nodes:Node.t array ->
  channels:Channel.t array ->
  reverse:int array ->
  t
