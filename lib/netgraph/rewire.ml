let connect_components ~switches ~edges ~rng =
  let edges = Array.of_list edges in
  let degree = Array.make switches 0 in
  Array.iter
    (fun (a, b) ->
      degree.(a) <- degree.(a) + 1;
      degree.(b) <- degree.(b) + 1)
    edges;
  Array.iteri
    (fun s d -> if d = 0 then invalid_arg (Printf.sprintf "Rewire.connect_components: switch %d isolated" s))
    degree;
  let dsu = Dsu.create switches in
  Array.iter (fun (a, b) -> ignore (Dsu.union dsu a b)) edges;
  while Dsu.count dsu > 1 do
    (* one cable inside switch 0's component, one outside; swapping their
       endpoints merges the two components and touches no degree *)
    let trunk = Dsu.find dsu 0 in
    let inside = ref [] and outside = ref [] in
    Array.iteri
      (fun i (a, _) ->
        if Dsu.find dsu a = trunk then inside := i :: !inside else outside := i :: !outside)
      edges;
    let i = Rng.pick rng (Array.of_list (List.rev !inside)) in
    let j = Rng.pick rng (Array.of_list (List.rev !outside)) in
    let a, b = edges.(i) and c, d = edges.(j) in
    edges.(i) <- (a, c);
    edges.(j) <- (b, d);
    ignore (Dsu.union dsu a c);
    ignore (Dsu.union dsu b d)
  done;
  Array.to_list edges
