let recommended_domains () = min 8 (Domain.recommended_domain_count ())

(* Pool telemetry (process-wide, in the default Obs registry). Counters
   are per-slot cells so workers never contend; the busy-time timer only
   runs while Obs.Control is enabled, so the disabled pool pays two
   untaken branches per task. Slot indices clamp inside Obs, so pools
   larger than the cell count degrade to sharing the last cell. *)
let obs_slots = 16

let c_runs = Obs.Registry.counter "pool.runs" ~desc:"parallel fan-outs dispatched"

let c_chunks =
  Obs.Registry.counter "pool.chunks" ~slots:obs_slots ~desc:"work chunks claimed off the shared cursor"

let c_stalls =
  Obs.Registry.counter "pool.stalls" ~slots:obs_slots
    ~desc:"workers that found the chunk cursor already exhausted"

let t_slot_busy =
  Obs.Registry.timer "pool.slot_busy" ~slots:obs_slots
    ~desc:"per-slot seconds inside pool tasks (recorded only while obs is enabled)"

module Pool = struct
  type 's t = {
    size : int; (* workers, including the calling domain as slot 0 *)
    scratch : 's array;
    lock : Mutex.t;
    ready : Condition.t; (* a new task was published (or shutdown) *)
    finished : Condition.t; (* a worker left the current task *)
    mutable seq : int; (* task sequence number; workers wait for it to move *)
    mutable task : (int -> unit) option; (* worker slot -> unit *)
    mutable active : int; (* spawned workers still inside the current task *)
    mutable stop : bool;
    mutable workers : unit Domain.t array;
  }

  (* Spawned workers sleep on [ready] between tasks, so an idle pool costs
     nothing; the calling domain always participates as slot 0, so a pool
     of size 1 spawns no domains at all. *)
  let rec worker_loop pool slot last =
    Mutex.lock pool.lock;
    while (not pool.stop) && pool.seq = last do
      Condition.wait pool.ready pool.lock
    done;
    if pool.stop then Mutex.unlock pool.lock
    else begin
      let seq = pool.seq in
      let task = Option.get pool.task in
      Mutex.unlock pool.lock;
      task slot;
      Mutex.lock pool.lock;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.finished;
      Mutex.unlock pool.lock;
      worker_loop pool slot seq
    end

  let create ?domains scratch =
    let size = max 1 (Option.value domains ~default:(recommended_domains ())) in
    let pool =
      {
        size;
        scratch = Array.init size scratch;
        lock = Mutex.create ();
        ready = Condition.create ();
        finished = Condition.create ();
        seq = 0;
        task = None;
        active = 0;
        stop = false;
        workers = [||];
      }
    in
    pool.workers <- Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1) 0));
    pool

  let size pool = pool.size

  let iter_scratch pool f = Array.iter f pool.scratch

  let slot_scratch pool slot =
    if slot < 0 || slot >= pool.size then invalid_arg "Pool.slot_scratch";
    pool.scratch.(slot)

  let run pool ~n ?grain f =
    if n > 0 then begin
      if pool.size = 1 || n = 1 then
        for i = 0 to n - 1 do
          f pool.scratch.(0) i
        done
      else begin
        let grain = max 1 (Option.value grain ~default:(n / (4 * pool.size))) in
        let next = Atomic.make 0 in
        let failure = Atomic.make None in
        Obs.Counter.incr c_runs;
        (* chunked work distribution: each worker grabs [grain] indices at a
           time off a shared cursor, so uneven per-index cost still balances *)
        let task slot =
          let timed = Obs.Control.enabled () in
          let t0 = if timed then Unix.gettimeofday () else 0.0 in
          let s = pool.scratch.(slot) in
          let chunks = ref 0 in
          let continue = ref true in
          while !continue do
            let lo = Atomic.fetch_and_add next grain in
            if lo >= n then continue := false
            else begin
              incr chunks;
              let hi = min n (lo + grain) in
              try
                for i = lo to hi - 1 do
                  f s i
                done
              with e ->
                (match Atomic.get failure with
                | None -> Atomic.set failure (Some e)
                | Some _ -> ());
                continue := false
            end
          done;
          if !chunks > 0 then Obs.Counter.incr ~slot ~n:!chunks c_chunks
          else Obs.Counter.incr ~slot c_stalls;
          if timed then Obs.Timer.add ~slot t_slot_busy (Unix.gettimeofday () -. t0)
        in
        Mutex.lock pool.lock;
        if pool.stop then begin
          Mutex.unlock pool.lock;
          invalid_arg "Parallel.Pool.run: pool is shut down"
        end;
        pool.task <- Some task;
        pool.active <- pool.size - 1;
        pool.seq <- pool.seq + 1;
        Condition.broadcast pool.ready;
        Mutex.unlock pool.lock;
        task 0;
        Mutex.lock pool.lock;
        while pool.active > 0 do
          Condition.wait pool.finished pool.lock
        done;
        pool.task <- None;
        Mutex.unlock pool.lock;
        match Atomic.get failure with
        | Some e -> raise e
        | None -> ()
      end
    end

  let map_reduce pool ~n ?grain ~map ~fold init =
    if n <= 0 then init
    else begin
      let out = Array.make n None in
      run pool ~n ?grain (fun s i -> out.(i) <- Some (map s i));
      Array.fold_left (fun acc r -> fold acc (Option.get r)) init out
    end

  let shutdown pool =
    Mutex.lock pool.lock;
    let already = pool.stop in
    pool.stop <- true;
    Condition.broadcast pool.ready;
    Mutex.unlock pool.lock;
    if not already then begin
      Array.iter Domain.join pool.workers;
      pool.workers <- [||]
    end

  let with_pool ?domains scratch f =
    let pool = create ?domains scratch in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
end

let init ?(domains = 1) n f =
  if n <= 0 then [||]
  else if domains <= 1 || n < 2 then Array.init n f
  else begin
    (* seed the result array with one sequentially-computed element *)
    let first = f 0 in
    let out = Array.make n first in
    let workers = min domains n in
    let chunk = (n + workers - 1) / workers in
    let failure = Atomic.make None in
    let work w () =
      let lo = max 1 (w * chunk) in
      let hi = min n ((w + 1) * chunk) in
      try
        for i = lo to hi - 1 do
          out.(i) <- f i
        done
      with e -> (
        (* keep the first failure; result array contents are discarded *)
        match Atomic.get failure with
        | None -> Atomic.set failure (Some e)
        | Some _ -> ())
    in
    let handles = Array.init workers (fun w -> Domain.spawn (work w)) in
    Array.iter Domain.join handles;
    (match Atomic.get failure with
    | Some e -> raise e
    | None -> ());
    out
  end

let map_array ?domains f a = init ?domains (Array.length a) (fun i -> f a.(i))

let for_all ?domains f a =
  let results = map_array ?domains f a in
  Array.for_all Fun.id results
