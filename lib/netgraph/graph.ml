type t = {
  nodes : Node.t array;
  channels : Channel.t array;
  out_channels : int array array;
  in_channels : int array array;
  switches : int array;
  terminals : int array;
  reverse : int array; (* channel id -> paired opposite channel id, or -1 *)
  enabled : bool array; (* channel id -> carried in the adjacency arrays *)
}

let num_nodes g = Array.length g.nodes

let num_channels g = Array.length g.channels

let nodes g = g.nodes

let channels g = g.channels

let node g i = g.nodes.(i)

let channel g i = g.channels.(i)

let out_channels g v = g.out_channels.(v)

let in_channels g v = g.in_channels.(v)

let switches g = g.switches

let terminals g = g.terminals

let num_switches g = Array.length g.switches

let num_terminals g = Array.length g.terminals

let reverse_channel g c = if g.reverse.(c) < 0 then None else Some g.reverse.(c)

let is_switch g v = Node.is_switch g.nodes.(v)

let is_terminal g v = Node.is_terminal g.nodes.(v)

let adjacency_of ~num_nodes:n ~channels ~enabled =
  (* the mask is indexed by array position (= id on well-formed graphs):
     malformed channel records must still construct so validate can
     report them *)
  let out_count = Array.make n 0 and in_count = Array.make n 0 in
  Array.iteri
    (fun i (c : Channel.t) ->
      if enabled.(i) then begin
        out_count.(c.src) <- out_count.(c.src) + 1;
        in_count.(c.dst) <- in_count.(c.dst) + 1
      end)
    channels;
  let out_channels = Array.init n (fun v -> Array.make out_count.(v) 0) in
  let in_channels = Array.init n (fun v -> Array.make in_count.(v) 0) in
  let out_fill = Array.make n 0 and in_fill = Array.make n 0 in
  Array.iteri
    (fun i (c : Channel.t) ->
      if enabled.(i) then begin
        out_channels.(c.src).(out_fill.(c.src)) <- c.id;
        out_fill.(c.src) <- out_fill.(c.src) + 1;
        in_channels.(c.dst).(in_fill.(c.dst)) <- c.id;
        in_fill.(c.dst) <- in_fill.(c.dst) + 1
      end)
    channels;
  (out_channels, in_channels)

let make ~nodes ~channels ~reverse =
  let n = Array.length nodes in
  let enabled = Array.make (Array.length channels) true in
  let out_channels, in_channels = adjacency_of ~num_nodes:n ~channels ~enabled in
  let switches =
    Array.of_list
      (Array.fold_right (fun (nd : Node.t) acc -> if Node.is_switch nd then nd.id :: acc else acc) nodes [])
  in
  let terminals =
    Array.of_list
      (Array.fold_right (fun (nd : Node.t) acc -> if Node.is_terminal nd then nd.id :: acc else acc) nodes [])
  in
  { nodes; channels; out_channels; in_channels; switches; terminals; reverse; enabled }

let channel_enabled g c = g.enabled.(c)

let num_enabled_channels g = Array.fold_left (fun acc e -> if e then acc + 1 else acc) 0 g.enabled

let with_enabled g ~enabled =
  if Array.length enabled <> num_channels g then invalid_arg "Graph.with_enabled: mask size";
  let enabled = Array.copy enabled in
  let out_channels, in_channels = adjacency_of ~num_nodes:(num_nodes g) ~channels:g.channels ~enabled in
  { g with out_channels; in_channels; enabled }

let bfs_dist g src =
  let n = num_nodes g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    let du = dist.(u) in
    Array.iter
      (fun c ->
        let v = g.channels.(c).Channel.dst in
        if dist.(v) = max_int then begin
          dist.(v) <- du + 1;
          Queue.add v queue
        end)
      g.out_channels.(u)
  done;
  dist

let connected g =
  let n = num_nodes g in
  if n = 0 then true
  else begin
    let dist = bfs_dist g 0 in
    let ok = ref (Array.for_all (fun d -> d < max_int) dist) in
    (* Directed graphs also need reverse reachability; check by BFS on the
       reversed adjacency. *)
    if !ok then begin
      let rdist = Array.make n max_int in
      let queue = Queue.create () in
      rdist.(0) <- 0;
      Queue.add 0 queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        Array.iter
          (fun c ->
            let v = g.channels.(c).Channel.src in
            if rdist.(v) = max_int then begin
              rdist.(v) <- rdist.(u) + 1;
              Queue.add v queue
            end)
          g.in_channels.(u)
      done;
      ok := Array.for_all (fun d -> d < max_int) rdist
    end;
    !ok
  end

let diameter g =
  if num_nodes g = 0 then invalid_arg "Graph.diameter: empty graph";
  let best = ref 0 in
  Array.iter
    (fun (nd : Node.t) ->
      let dist = bfs_dist g nd.id in
      Array.iter
        (fun d ->
          if d = max_int then invalid_arg "Graph.diameter: disconnected graph";
          if d > !best then best := d)
        dist)
    g.nodes;
  !best

let degree g v = Array.length g.out_channels.(v)

let validate g =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let n = num_nodes g and m = num_channels g in
  let check_nodes () =
    let rec go i =
      if i >= n then Ok ()
      else if g.nodes.(i).Node.id <> i then err "node %d carries id %d" i g.nodes.(i).Node.id
      else go (i + 1)
    in
    go 0
  in
  let check_channels () =
    let rec go i =
      if i >= m then Ok ()
      else
        let c = g.channels.(i) in
        if c.Channel.id <> i then err "channel %d carries id %d" i c.Channel.id
        else if c.Channel.src < 0 || c.Channel.src >= n then err "channel %d: bad src %d" i c.Channel.src
        else if c.Channel.dst < 0 || c.Channel.dst >= n then err "channel %d: bad dst %d" i c.Channel.dst
        else if c.Channel.src = c.Channel.dst then err "channel %d: self loop at %d" i c.Channel.src
        else go (i + 1)
    in
    go 0
  in
  let check_reverse () =
    let rec go i =
      if i >= m then Ok ()
      else
        let r = g.reverse.(i) in
        if r < 0 then go (i + 1)
        else if r >= m then err "channel %d: reverse out of range" i
        else
          let c = g.channels.(i) and c' = g.channels.(r) in
          if g.reverse.(r) <> i then err "channel %d: reverse not symmetric" i
          else if c.Channel.src <> c'.Channel.dst || c.Channel.dst <> c'.Channel.src then
            err "channel %d: reverse %d is not the opposite direction" i r
          else go (i + 1)
    in
    go 0
  in
  let check_terminals () =
    let ok = ref (Ok ()) in
    Array.iter
      (fun tid ->
        match !ok with
        | Error _ -> ()
        | Ok () ->
          let outs = g.out_channels.(tid) in
          if Array.length outs <> 1 then ok := err "terminal %d has %d outgoing channels (want 1)" tid (Array.length outs)
          else begin
            let c = g.channels.(outs.(0)) in
            if not (is_switch g c.Channel.dst) then ok := err "terminal %d attached to non-switch %d" tid c.Channel.dst
            else if Array.length g.in_channels.(tid) <> 1 then
              ok := err "terminal %d has %d incoming channels (want 1)" tid (Array.length g.in_channels.(tid))
          end)
      g.terminals;
    !ok
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  check_nodes () >>= check_channels >>= check_reverse >>= check_terminals

let pp_stats ppf g =
  Format.fprintf ppf "nodes=%d (switches=%d terminals=%d) channels=%d" (num_nodes g) (num_switches g)
    (num_terminals g) (num_channels g)
