(** Xpander topology (Valadarsky et al., HotNets'15 / NSDI'16 line):
    a deterministic-given-seed random [lift] of the complete graph
    [K_(net_degree + 1)] — each of the [net_degree + 1] meta-nodes
    becomes [lift] switches, and each meta-edge becomes a uniformly
    random perfect matching between the two copies' switch groups. The
    result is [net_degree]-regular on [(net_degree + 1) * lift]
    switches with near-optimal expansion; a degree-preserving edge-swap
    pass ({!Rewire}) guarantees connectivity on the rare disconnected
    draw. [terminals_per_switch] terminals (default 1) attach to every
    switch. *)

(** @raise Invalid_argument on [net_degree < 2], [lift < 1], or
    [terminals_per_switch < 0]. *)
val make :
  net_degree:int -> lift:int -> ?terminals_per_switch:int -> rng:Rng.t -> unit -> Graph.t
