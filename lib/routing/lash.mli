(** LAyered SHortest-path routing (Skeie/Lysne/Theiss): minimum-hop routes
    made deadlock-free by assigning each source-destination route to a
    virtual layer, online — every route goes to the lowest layer whose
    channel dependency graph stays acyclic. The paper's deadlock-free
    reference algorithm (designed for tori; needs more layers than DFSSSP
    on sparse irregular fabrics, fewer on dense ones — its Fig. 9/10). *)

(** [route ?max_layers g] (default 16 layers, the InfiniBand ceiling).
    Fails if the fabric is disconnected or the layer budget is exceeded.
    [kernel] selects the shortest-path core computing the hop distances
    (default {!Spf.Auto}); it never changes the tables. *)
val route : ?max_layers:int -> ?kernel:Spf.kind -> Graph.t -> (Ftable.t, string) result
