(** Dimension-order routing (DOR) for grid fabrics: correct the position
    one dimension at a time, taking the shorter way around wrap-around
    dimensions. As in OpenSM, no virtual-channel escape is applied, so DOR
    is deadlock-free on meshes but {e not} on tori — the paper's example
    of a specialized algorithm whose guarantees evaporate off its home
    topology. *)

(** [route g coords] requires every switch to carry a coordinate.
    Fails if the grid metadata is incomplete or a required neighbour
    channel is missing.

    Forwarding is a pure function of coordinates, so [domains] (default
    1) parallelizes the per-destination fills with no snapshotting;
    tables are identical for any [domains]. [kernel] is accepted for
    registry uniformity and ignored: dimension-ordered routing is
    coordinate arithmetic. *)
val route : ?domains:int -> ?kernel:Spf.kind -> Graph.t -> Coords.t -> (Ftable.t, string) result
