(* LASH computes its own minimum-hop routes with no port balancing: the
   original optimizes layer usage, not link load — which is why its
   bandwidth trails MinHop/SSSP on fat trees (paper Fig. 5) while staying
   competitive on Kautz graphs. Min-hop ties are broken by a
   per-destination hash, mimicking OpenSM's discovery-order-dependent BFS
   trees: destinations do not share one canonical tree, so dependencies
   are diverse (this diversity is what drives LASH's layer demand on
   sparse irregular fabrics, Fig. 9). *)
let tie_break c dst = ((c * 0x9E3779B1) lxor (dst * 0x85EBCA77)) land max_int

let plain_minhop ?(kernel = Spf.Auto) g =
  let n = Graph.num_nodes g in
  let ft = Ftable.create g ~algorithm:"lash" in
  let ws = Spf.workspace ~kernel g in
  (* Unit weights never change, so one stamp serves every destination
     and the incremental kernel reuses each switch's tree. *)
  let stamp = Spf.fresh_stamp () in
  let result = ref (Ok ()) in
  Array.iter
    (fun dst ->
      match !result with
      | Error _ -> ()
      | Ok () ->
        let { Spf.dist; reached; _ } = Spf.compute_hops ws g ~stamp ~dst in
        if reached < n then
          result := Error (Printf.sprintf "node unreachable toward %d" dst)
        else
          for u = 0 to n - 1 do
            if u <> dst then begin
              let best = ref (-1) in
              Array.iter
                (fun c ->
                  let v = (Graph.channel g c).Channel.dst in
                  if dist.(v) + 1 = dist.(u) && (!best < 0 || tie_break c dst < tie_break !best dst)
                  then best := c)
                (Graph.out_channels g u);
              if !best >= 0 then Ftable.set_next ft ~node:u ~dst ~channel:!best
            end
          done)
    (Graph.terminals g);
  match !result with
  | Error msg -> Error msg
  | Ok () -> Ok ft

let route ?(max_layers = 16) ?kernel g =
  match plain_minhop ?kernel g with
  | Error msg -> Error ("lash: " ^ msg)
  | Ok ft -> (
    match Ftable.to_store ft with
    | Error msg -> Error ("lash: " ^ msg)
    | Ok store -> (
      match Online.assign_store store ~max_layers with
      | Error msg -> Error ("lash: " ^ msg)
      | Ok outcome ->
        Route_store.iter_pairs store (fun pair ->
            let src, dst = Ftable.pair_of_id ft pair in
            Ftable.set_layer ft ~src ~dst outcome.Online.layer_of_path.(pair));
        Ftable.set_num_layers ft outcome.Online.layers_used;
        Ok ft))
