type workspace = {
  dist : int array;
  via : int array;
  heap : Heap.t;
  mutable unit_weights : int array;
      (* per-workspace unit-weight vector for [hops_toward], grown on
         demand. Keeping it here (rather than in a module-global ref)
         makes concurrent Dijkstras on separate workspaces race-free:
         workspaces are confined to one domain each. *)
}

let workspace g =
  let n = Graph.num_nodes g in
  {
    dist = Array.make n max_int;
    via = Array.make n (-1);
    heap = Heap.create n;
    unit_weights = Array.make (Graph.num_channels g) 1;
  }

let toward ws g ~weights ~dst =
  let n = Graph.num_nodes g in
  Array.fill ws.dist 0 n max_int;
  Array.fill ws.via 0 n (-1);
  Heap.clear ws.heap;
  ws.dist.(dst) <- 0;
  Heap.insert ws.heap dst 0;
  let continue = ref true in
  while !continue do
    match Heap.pop_min ws.heap with
    | None -> continue := false
    | Some (v, dv) ->
      (* Relax channels entering v: a node u one hop behind v reaches dst
         through channel (u -> v). *)
      Array.iter
        (fun c ->
          let u = (Graph.channel g c).Channel.src in
          let w = weights.(c) in
          let cand = dv + w in
          if cand < ws.dist.(u) || (cand = ws.dist.(u) && c < ws.via.(u)) then begin
            if cand < ws.dist.(u) then begin
              ws.dist.(u) <- cand;
              Heap.insert_or_decrease ws.heap u cand
            end;
            ws.via.(u) <- c
          end)
        (Graph.in_channels g v)
  done;
  (ws.dist, ws.via)

let hops_toward ws g ~dst =
  let m = Graph.num_channels g in
  if Array.length ws.unit_weights < m then ws.unit_weights <- Array.make m 1;
  toward ws g ~weights:ws.unit_weights ~dst
