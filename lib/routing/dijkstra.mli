(** Single-source shortest paths toward a destination, over the reversed
    graph — the building block of MinHop, SSSP and Up*/Down*. Distances
    are measured {e to} the destination, and the recorded channel at each
    node is its first hop toward the destination, which is exactly a
    forwarding-table column. *)

(** Reusable scratch space; create once per graph and pass to every call
    to avoid reallocating arrays for each of the |T| destinations. A
    workspace is fully self-contained (no shared module state), so
    Dijkstras over distinct workspaces may run on distinct domains
    concurrently — the basis of the parallel routing pipeline. A single
    workspace must stay confined to one domain at a time. *)
type workspace

val workspace : Graph.t -> workspace

(** [toward ws g ~weights ~dst] computes, for every node [u], the weighted
    distance [dist.(u)] from [u] to [dst] and the out-channel [via.(u)]
    that starts a shortest path (or [-1] at [dst] and at unreachable
    nodes). [weights.(c)] is the cost of channel [c] (must be
    non-negative). The returned arrays are owned by the workspace and are
    overwritten by the next call. Ties are broken toward the
    lowest-numbered channel, deterministically. *)
val toward : workspace -> Graph.t -> weights:int array -> dst:int -> int array * int array

(** [hops_toward ws g ~dst] is [toward] with unit weights (plain BFS);
    same ownership rules. *)
val hops_toward : workspace -> Graph.t -> dst:int -> int array * int array
