(** Up*/Down* routing: a BFS spanning tree orients every channel "up"
    (toward the root) or "down"; legal routes climb zero or more up
    channels and then descend zero or more down channels, which provably
    leaves the channel dependency graph acyclic — deadlock-free with a
    single virtual layer, at the price of longer-than-minimal routes and
    congestion near the root (the classic trade-off the paper measures). *)

(** [route g] picks the root switch minimizing eccentricity and builds
    legal, consistent, near-minimal forwarding tables (see DESIGN.md for
    the down-mode consistency rule). Fails on disconnected fabrics.

    [batch]/[domains] (both default 1) select the batched-snapshot
    pipeline of DESIGN.md section 12: the load counters behind the
    equal-length tie-break are frozen per batch of [batch] destinations.
    [~batch:1] reproduces the sequential tables bit-for-bit; for any
    fixed [batch] the result is independent of [domains]. [kernel] is
    accepted so every registry engine shares one option surface, but the
    up/down-restricted BFS runs no shortest-path kernel; it is
    ignored. *)
val route :
  ?batch:int -> ?domains:int -> ?kernel:Spf.kind -> Graph.t -> (Ftable.t, string) result

(** Expose the orientation for tests: [up_channels g] maps channel id to
    [true] iff the channel is an up channel for the root [route] would
    pick. *)
val orientation : Graph.t -> (int * bool array, string) result
