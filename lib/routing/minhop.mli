(** MinHop routing, modelled on OpenSM's default algorithm: minimum-hop
    forwarding with port balancing — among the min-hop out-channels toward
    a destination, each node picks the channel with the least accumulated
    route load. Not deadlock-free in general (the paper's reference
    algorithm). *)

(** [route g] computes forwarding entries for every (node, terminal)
    pair. Fails on disconnected fabrics.

    [batch]/[domains] (both default 1) select the batched-snapshot
    pipeline of DESIGN.md section 12: port loads are frozen per batch of
    [batch] destinations and each destination balances against the
    snapshot plus its own increments (MinHop reads loads mid-destination,
    so the snapshot alone is not enough). [~batch:1] reproduces the
    sequential tables bit-for-bit; for any fixed [batch] the result is
    independent of [domains].

    [kernel] selects the shortest-path core computing the hop distances
    (default {!Spf.Auto}); hop distances are load-independent, so the
    incremental kernel shares one switch tree across the whole run.
    Kernel choice never changes the tables. *)
val route :
  ?batch:int -> ?domains:int -> ?kernel:Spf.kind -> Graph.t -> (Ftable.t, string) result
