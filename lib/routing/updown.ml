(* Channel (u -> v) is "up" iff (rank v, v) < (rank u, u) lexicographically,
   where rank is the BFS depth from the chosen root. The strict total order
   makes the up-relation acyclic.

   Forwarding tables must stay legal end-to-end: if a node's entry takes a
   down channel, the next node's entry must also take a down channel.
   Construction per destination (DESIGN.md):
   1. d_down: BFS from dst over reversed down channels (all-down routes).
   2. d_up(u) = min over up channels (u -> v) of 1 + min(d_up v, d_down v),
      computed in increasing (rank, id) order (up strictly decreases it).
   3. Nodes preferring down are closed transitively along their down
      parents (forcing keeps legality; only lengths can grow).

   All load reads (the step-2 tie-break) happen before any of the same
   destination's load increments (step 4), so the batched pipeline needs
   only the per-batch snapshot — no per-destination overlay. *)

let pick_root g =
  let switches = Graph.switches g in
  if Array.length switches = 0 then Error "updown: no switches"
  else begin
    let best = ref (-1) and best_ecc = ref max_int in
    Array.iter
      (fun s ->
        let dist = Graph.bfs_dist g s in
        let ecc = Array.fold_left (fun acc d -> if d = max_int then max_int else max acc d) 0 dist in
        if ecc < !best_ecc then begin
          best_ecc := ecc;
          best := s
        end)
      switches;
    if !best_ecc = max_int then Error "updown: disconnected fabric" else Ok !best
  end

let rank_and_orientation g root =
  let rank = Graph.bfs_dist g root in
  let key v = (rank.(v), v) in
  let up = Array.map (fun (c : Channel.t) -> key c.dst < key c.src) (Graph.channels g) in
  (rank, up)

let orientation g =
  match pick_root g with
  | Error _ as e -> e
  | Ok root ->
    let _, up = rank_and_orientation g root in
    Ok (root, up)

type scratch = {
  d_down : int array;
  down_via : int array;
  d_up : int array;
  up_via : int array;
  down_mode : bool array;
  queue : int Queue.t;
  delta : int array;
  touched : int array;
  mutable num_touched : int;
}

let fresh_scratch n m _slot =
  {
    d_down = Array.make n max_int;
    down_via = Array.make n (-1);
    d_up = Array.make n max_int;
    up_via = Array.make n (-1);
    down_mode = Array.make n false;
    queue = Queue.create ();
    delta = Array.make m 0;
    touched = Array.make m 0;
    num_touched = 0;
  }

let route_destination g ~up ~order ~get_load ~bump sc ~ft ~dst =
  let n = Graph.num_nodes g in
  Array.fill sc.d_down 0 n max_int;
  Array.fill sc.down_via 0 n (-1);
  Array.fill sc.d_up 0 n max_int;
  Array.fill sc.up_via 0 n (-1);
  Array.fill sc.down_mode 0 n false;
  (* 1. All-down distances: BFS from dst across reversed down channels. *)
  sc.d_down.(dst) <- 0;
  Queue.clear sc.queue;
  Queue.add dst sc.queue;
  while not (Queue.is_empty sc.queue) do
    let v = Queue.take sc.queue in
    Array.iter
      (fun c ->
        let u = (Graph.channel g c).Channel.src in
        if (not up.(c)) && sc.d_down.(u) = max_int then begin
          sc.d_down.(u) <- sc.d_down.(v) + 1;
          sc.down_via.(u) <- c;
          Queue.add u sc.queue
        end)
      (Graph.in_channels g v)
  done;
  (* 2. Up continuations, bottom-up in the (rank, id) order. *)
  Array.iter
    (fun u ->
      if u <> dst then
        Array.iter
          (fun c ->
            if up.(c) then begin
              let v = (Graph.channel g c).Channel.dst in
              let dv = min sc.d_up.(v) sc.d_down.(v) in
              if dv < max_int then begin
                let cand = dv + 1 in
                if
                  cand < sc.d_up.(u)
                  || (cand = sc.d_up.(u) && sc.up_via.(u) >= 0 && get_load c < get_load sc.up_via.(u))
                then begin
                  sc.d_up.(u) <- cand;
                  sc.up_via.(u) <- c
                end
              end
            end)
          (Graph.out_channels g u))
    order;
  (* 3. Mode selection with transitive down-closure. *)
  Array.iter (fun u -> if u <> dst then sc.down_mode.(u) <- sc.d_down.(u) <= sc.d_up.(u)) order;
  (* Force every node on a down-mode node's parent chain into down mode as
     well; chains of already-forced nodes are walked by their own outer
     iteration. *)
  let rec force u =
    if u <> dst && not sc.down_mode.(u) then begin
      sc.down_mode.(u) <- true;
      force (Graph.channel g sc.down_via.(u)).Channel.dst
    end
  in
  Array.iter
    (fun u ->
      if u <> dst && sc.down_mode.(u) && sc.down_via.(u) >= 0 then
        force (Graph.channel g sc.down_via.(u)).Channel.dst)
    order;
  (* 4. Emit entries. *)
  let error = ref None in
  let i = ref 0 in
  let nn = Array.length order in
  while !error = None && !i < nn do
    let u = order.(!i) in
    if u <> dst then begin
      let c = if sc.down_mode.(u) then sc.down_via.(u) else sc.up_via.(u) in
      if c < 0 then error := Some (Printf.sprintf "updown: node %d cannot reach %d" u dst)
      else begin
        Ftable.set_next ft ~node:u ~dst ~channel:c;
        bump c
      end
    end;
    incr i
  done;
  match !error with
  | Some msg -> Error msg
  | None -> Ok ()

(* [kernel] is accepted for registry/CLI uniformity but unused: the
   up/down-restricted BFS is not a shortest-path-kernel computation. *)
let route ?(batch = 1) ?(domains = 1) ?kernel:(_ : Spf.kind option) g =
  match pick_root g with
  | Error msg -> Error msg
  | Ok root ->
    let n = Graph.num_nodes g in
    let m = Graph.num_channels g in
    let rank, up = rank_and_orientation g root in
    let ft = Ftable.create g ~algorithm:"updown" in
    (* Nodes in increasing (rank, id): up channels point strictly earlier. *)
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare (rank.(a), a) (rank.(b), b)) order;
    let load = Array.make m 0 in
    let dsts = Graph.terminals g in
    let result =
      if batch <= 1 && domains <= 1 then begin
        let sc = fresh_scratch n m 0 in
        let nt = Array.length dsts in
        let rec go i =
          if i >= nt then Ok ()
          else
            match
              route_destination g ~up ~order
                ~get_load:(fun c -> load.(c))
                ~bump:(fun c -> load.(c) <- load.(c) + 1)
                sc ~ft ~dst:dsts.(i)
            with
            | Ok () -> go (i + 1)
            | Error _ as e -> e
        in
        go 0
      end
      else begin
        let snapshot = Array.make m 0 in
        Parallel.Pool.with_pool ~domains (fresh_scratch n m) (fun pool ->
            Batched.run ~cost:(Graph.num_channels g) ~pool ~batch ~dsts
              ~freeze:(fun () -> Array.blit load 0 snapshot 0 m)
              ~dest:(fun sc dst ->
                route_destination g ~up ~order
                  ~get_load:(fun c -> snapshot.(c))
                  ~bump:(fun c ->
                    if sc.delta.(c) = 0 then begin
                      sc.touched.(sc.num_touched) <- c;
                      sc.num_touched <- sc.num_touched + 1
                    end;
                    sc.delta.(c) <- sc.delta.(c) + 1)
                  sc ~ft ~dst)
              ~merge:(fun sc ->
                for i = 0 to sc.num_touched - 1 do
                  let c = sc.touched.(i) in
                  load.(c) <- load.(c) + sc.delta.(c);
                  sc.delta.(c) <- 0
                done;
                sc.num_touched <- 0))
      end
    in
    (match result with
    | Error _ as e -> e
    | Ok () -> Ok ft)
