(* Pluggable single-destination shortest-path kernels (DESIGN.md §15).

   Every routing engine in this repo reduces to "build a shortest-path
   tree toward each destination over the reversed graph".  This module
   owns that inner loop behind a small kernel interface so engines can
   select the core that fits their weight structure:

   - [Heap]: the binary-heap Dijkstra previously embedded in
     {!Dijkstra.toward}; the oracle the other kernels are tested
     against.
   - [Bucket]: a Dial-style bucket queue specialised to the bounded
     weight ratios we actually route (SSSP weights start at |V|^2 per
     channel and loads stay below |V|^2, so max/min < 2; MinHop/LASH
     weights are all 1).  Falls back to the heap automatically when the
     weight bounds put the bucket window out of range.
   - [Incremental]: reuses the previous destination's tree.  A terminal
     attached to a single switch sees the whole fabric through that
     switch, so its tree is the switch's tree plus one injection edge;
     consecutive destinations on the same switch (the common case when a
     plane walks terminals in id order) share one core run.

   All three kernels produce bit-for-bit identical (dist, via, order)
   results.  The relaxation rule settles node [v] and, for each channel
   [c : u -> v], improves [u] when [dist v + w c < dist u], or updates
   [via u] to the smaller channel id on ties.  Once every neighbour of
   [u] is settled, [dist u] is the true distance and [via u] is the
   minimum channel id among achievers — a value independent of the
   order in which equal-distance nodes were settled.  Any correct
   settle order therefore yields the same arrays, which is what the
   equivalence property in [test/test_spf.ml] checks. *)

type kind = Auto | Heap | Bucket | Incremental

let all_kinds = [ Auto; Heap; Bucket; Incremental ]

let kind_to_string = function
  | Auto -> "auto"
  | Heap -> "heap"
  | Bucket -> "bucket"
  | Incremental -> "incremental"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Ok Auto
  | "heap" | "binary-heap" | "dijkstra" -> Ok Heap
  | "bucket" | "dial" | "delta-stepping" -> Ok Bucket
  | "incremental" | "reuse" -> Ok Incremental
  | _ ->
    Error (Printf.sprintf "unknown SSSP kernel %S (expected auto|heap|bucket|incremental)" s)

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

(* [Auto] resolves to the incremental kernel: it contains the bucket
   core (used for both cache fills and non-terminal destinations) and
   adds switch-tree reuse on top, so it dominates on every workload the
   bench matrix measures. *)
let resolve = function Auto -> Incremental | k -> k

type tree = { dist : int array; via : int array; order : int array; reached : int }

(* Stamps are drawn from one process-wide counter so that two distinct
   weight snapshots can never collide: equal stamps imply "same weights,
   same graph" by construction at every call site. *)
let stamp_counter = Atomic.make 1

let fresh_stamp () = Atomic.fetch_and_add stamp_counter 1

(* Bucket windows beyond this trip the heap fallback: a window this wide
   means the weight ratio is so skewed that sweeping empty buckets would
   cost more than the heap's log factor. *)
let max_window = 1024

let c_trees = Obs.Registry.counter "spf.trees" ~desc:"shortest-path tree core runs"

let c_cache =
  Obs.Registry.counter "spf.cache_hits" ~desc:"incremental switch-tree cache hits"

let c_fallback =
  Obs.Registry.counter "spf.fallbacks" ~desc:"bucket-queue runs downgraded to the heap oracle"

type workspace = {
  requested : kind;
  kernel : kind; (* [requested] with [Auto] resolved *)
  n : int;
  (* primary result arrays, aliased by the returned [tree] *)
  dist : int array;
  via : int array;
  order : int array;
  (* heap core *)
  heap : Heap.t;
  (* bucket core: a circular window of LIFO stacks plus a generation
     mark per node so stale reinsertions are skipped in O(1) *)
  mutable buckets : int array array;
  mutable blens : int array;
  settled : int array;
  mutable gen : int;
  (* incremental switch-tree cache *)
  cdist : int array;
  cvia : int array;
  corder : int array;
  mutable creached : int;
  mutable cstamp : int; (* stamp the cache was built under; 0 = empty *)
  mutable csw : int;
  mutable unit_weights : int array;
}

let workspace ?(kernel = Auto) g =
  let n = Graph.num_nodes g in
  {
    requested = kernel;
    kernel = resolve kernel;
    n;
    dist = Array.make n max_int;
    via = Array.make n (-1);
    order = Array.make n (-1);
    heap = Heap.create n;
    buckets = [||];
    blens = [||];
    settled = Array.make n 0;
    gen = 0;
    cdist = Array.make n max_int;
    cvia = Array.make n (-1);
    corder = Array.make n (-1);
    creached = 0;
    cstamp = 0;
    csw = -1;
    unit_weights = [||];
  }

let kind ws = ws.requested

(* ------------------------------------------------------------------ *)
(* Heap core (the oracle): classic decrease-key Dijkstra, recording the
   settle order. *)

let heap_core ws g ~weights ~dst ~dist ~via ~order =
  Obs.Counter.incr c_trees;
  let n = ws.n in
  Array.fill dist 0 n max_int;
  Array.fill via 0 n (-1);
  Heap.clear ws.heap;
  dist.(dst) <- 0;
  Heap.insert ws.heap dst 0;
  let k = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.pop_min ws.heap with
    | None -> continue := false
    | Some (v, dv) ->
      order.(!k) <- v;
      incr k;
      (* Relax channels entering v: a node u one hop behind v reaches
         dst through channel (u -> v). *)
      Array.iter
        (fun c ->
          let u = (Graph.channel g c).Channel.src in
          let cand = dv + weights.(c) in
          if cand < dist.(u) || (cand = dist.(u) && c < via.(u)) then begin
            if cand < dist.(u) then begin
              dist.(u) <- cand;
              Heap.insert_or_decrease ws.heap u cand
            end;
            via.(u) <- c
          end)
        (Graph.in_channels g v)
  done;
  !k

(* ------------------------------------------------------------------ *)
(* Bucket core.  With bucket width delta = minw, every edge adds at
   least one full bucket, so no relaxation can land in the bucket being
   scanned: when the sweep reaches bucket [cur], every node whose final
   distance maps there already carries that distance and can settle in
   any order.  Entries are reinserted on strict improvement (no
   decrease-key; see {!Netgraph.Heap}) and stale entries are skipped by
   comparing the node's current bucket against the sweep position plus a
   per-run generation mark.  An entry pushed while scanning [cur] has
   distance in [cur*delta, (cur+1)*delta - 1 + maxw], i.e. lands within
   [window = ceil(maxw/delta) + 2] buckets, so a circular window of that
   many stacks suffices and each entry is consumed exactly at its
   absolute bucket. *)

let ensure_window ws window =
  if Array.length ws.buckets < window then begin
    let old = ws.buckets in
    let olen = Array.length old in
    ws.buckets <-
      Array.init window (fun i -> if i < olen then old.(i) else Array.make 16 0);
    ws.blens <- Array.make window 0
  end

let push_bucket ws b x =
  let s = ws.buckets.(b) in
  let len = ws.blens.(b) in
  let s =
    if len = Array.length s then begin
      let s' = Array.make (2 * len) 0 in
      Array.blit s 0 s' 0 len;
      ws.buckets.(b) <- s';
      s'
    end
    else s
  in
  s.(len) <- x;
  ws.blens.(b) <- len + 1

let bucket_core ws g ~weights ~delta ~window ~dst ~dist ~via ~order =
  Obs.Counter.incr c_trees;
  let n = ws.n in
  ensure_window ws window;
  Array.fill ws.blens 0 (Array.length ws.blens) 0;
  ws.gen <- ws.gen + 1;
  let gen = ws.gen in
  Array.fill dist 0 n max_int;
  Array.fill via 0 n (-1);
  dist.(dst) <- 0;
  push_bucket ws 0 dst;
  let pending = ref 1 in
  let cur = ref 0 in
  let k = ref 0 in
  while !pending > 0 do
    let b = !cur mod window in
    while ws.blens.(b) > 0 do
      let len = ws.blens.(b) - 1 in
      let v = ws.buckets.(b).(len) in
      ws.blens.(b) <- len;
      decr pending;
      if ws.settled.(v) <> gen && dist.(v) / delta = !cur then begin
        ws.settled.(v) <- gen;
        order.(!k) <- v;
        incr k;
        let dv = dist.(v) in
        Array.iter
          (fun c ->
            let u = (Graph.channel g c).Channel.src in
            let cand = dv + weights.(c) in
            if cand < dist.(u) || (cand = dist.(u) && c < via.(u)) then begin
              if cand < dist.(u) then begin
                dist.(u) <- cand;
                push_bucket ws (cand / delta mod window) u;
                incr pending
              end;
              via.(u) <- c
            end)
          (Graph.in_channels g v)
      end
    done;
    incr cur
  done;
  !k

(* ------------------------------------------------------------------ *)

let scan_bounds weights =
  let minw = ref max_int and maxw = ref 0 in
  Array.iter
    (fun w ->
      if w < !minw then minw := w;
      if w > !maxw then maxw := w)
    weights;
  (!minw, !maxw)

(* The weight-bound fallback rule: the bucket core applies iff
   1 <= minw (zero-weight edges would allow intra-bucket relaxations)
   and the window ceil(maxw/minw) + 2 fits [max_window]. *)
let run_core ws g ~weights ~minw ~maxw ~dst ~dist ~via ~order =
  if minw >= 1 && maxw < max_int then begin
    let delta = minw in
    let window = ((maxw + delta - 1) / delta) + 2 in
    if window <= max_window then
      bucket_core ws g ~weights ~delta ~window ~dst ~dist ~via ~order
    else begin
      Obs.Counter.incr c_fallback;
      heap_core ws g ~weights ~dst ~dist ~via ~order
    end
  end
  else begin
    Obs.Counter.incr c_fallback;
    heap_core ws g ~weights ~dst ~dist ~via ~order
  end

(* ------------------------------------------------------------------ *)
(* Incremental core.  A terminal [dst] whose in-channels all come from
   one switch [sw] sees every path end with an [sw -> dst] channel of
   the injection weight K = min over those channels (ties to the lowest
   channel id), so

     dist_dst u  = dist_sw u + K   (u <> dst)
     via_dst  u  = via_sw u        (u <> sw, dst)
     via_dst  sw = the injection channel
     via_dst  dst = -1

   and the settle order is dst followed by sw's order with dst removed.
   The via(sw) line needs minw >= 1: any other achiever would be a
   zero-cost detour back through sw.  The cache is keyed by (stamp, sw);
   stamps are globally unique per weight snapshot, so a stale cache can
   never be confused for a current one. *)

let attached_switch g dst =
  if not (Graph.is_terminal g dst) then -1
  else begin
    let ins = Graph.in_channels g dst in
    if Array.length ins = 0 then -1
    else begin
      let sw = (Graph.channel g ins.(0)).Channel.src in
      if sw = dst then -1
      else begin
        let ok = ref true in
        Array.iter (fun c -> if (Graph.channel g c).Channel.src <> sw then ok := false) ins;
        if !ok then sw else -1
      end
    end
  end

let derive ws g ~weights ~dst ~sw =
  let inj = ref (-1) in
  Array.iter
    (fun c ->
      if
        !inj < 0
        || weights.(c) < weights.(!inj)
        || (weights.(c) = weights.(!inj) && c < !inj)
      then inj := c)
    (Graph.in_channels g dst);
  let kconst = weights.(!inj) in
  let n = ws.n in
  for u = 0 to n - 1 do
    let d = ws.cdist.(u) in
    ws.dist.(u) <- (if d = max_int then max_int else d + kconst);
    ws.via.(u) <- ws.cvia.(u)
  done;
  ws.dist.(dst) <- 0;
  ws.via.(dst) <- -1;
  ws.dist.(sw) <- kconst;
  ws.via.(sw) <- !inj;
  ws.order.(0) <- dst;
  let k = ref 1 in
  for i = 0 to ws.creached - 1 do
    let u = ws.corder.(i) in
    if u <> dst then begin
      ws.order.(!k) <- u;
      incr k
    end
  done;
  !k

(* ------------------------------------------------------------------ *)

let compute ?minw ?maxw ws g ~weights ~stamp ~dst =
  let minw, maxw =
    if ws.kernel = Heap then (1, 1)
    else
      match (minw, maxw) with
      | Some a, Some b -> (a, b)
      | _ -> scan_bounds weights
  in
  let reached =
    match ws.kernel with
    | Auto -> assert false (* resolved at workspace creation *)
    | Heap -> heap_core ws g ~weights ~dst ~dist:ws.dist ~via:ws.via ~order:ws.order
    | Bucket -> run_core ws g ~weights ~minw ~maxw ~dst ~dist:ws.dist ~via:ws.via ~order:ws.order
    | Incremental ->
      if minw < 1 then
        (* zero-weight edges void the switch-tree derivation *)
        heap_core ws g ~weights ~dst ~dist:ws.dist ~via:ws.via ~order:ws.order
      else begin
        let sw = attached_switch g dst in
        if sw < 0 then
          run_core ws g ~weights ~minw ~maxw ~dst ~dist:ws.dist ~via:ws.via ~order:ws.order
        else begin
          if ws.cstamp <> stamp || ws.csw <> sw then begin
            ws.creached <-
              run_core ws g ~weights ~minw ~maxw ~dst:sw ~dist:ws.cdist ~via:ws.cvia
                ~order:ws.corder;
            ws.cstamp <- stamp;
            ws.csw <- sw
          end
          else Obs.Counter.incr c_cache;
          derive ws g ~weights ~dst ~sw
        end
      end
  in
  { dist = ws.dist; via = ws.via; order = ws.order; reached }

let compute_hops ws g ~stamp ~dst =
  let m = Graph.num_channels g in
  if Array.length ws.unit_weights < m then ws.unit_weights <- Array.make m 1;
  compute ws g ~weights:ws.unit_weights ~minw:1 ~maxw:1 ~stamp ~dst
