let initial_weights g =
  let n = Graph.num_nodes g in
  Array.make (Graph.num_channels g) (n * n)

let recommended_batch = 32

(* Plane-level telemetry (doc/observability.md): one counter bump per
   destination tree, one timer sample + span per route_destinations
   call. Nothing inside the Dijkstra or tree-walk loops is touched. *)
let c_dsts = Obs.Registry.counter "sssp.destinations" ~desc:"destination trees routed"

let c_planes = Obs.Registry.counter "sssp.planes" ~desc:"route_destinations invocations"

let t_plane =
  Obs.Registry.timer "sssp.route_destinations" ~desc:"seconds per route_destinations invocation"

(* One destination: weighted Dijkstra toward [dst] over [weights], table
   entries from the via-tree, then the tree's terminal flows accumulated
   far-to-near and emitted through [record] (one call per tree channel).
   [record] abstracts where the load lands: the live weight array for the
   sequential recurrence, a per-domain delta for the batched pipeline. *)
let route_destination_core ws g ~weights ~record ~order ~flow ~ft ~dst =
  Obs.Counter.incr c_dsts;
  let dist, via = Dijkstra.toward ws g ~weights ~dst in
  if Array.exists (fun d -> d = max_int) dist then
    Error (Printf.sprintf "sssp: node unreachable toward %d" dst)
  else begin
    Array.iteri (fun u c -> if u <> dst && c >= 0 then Ftable.set_next ft ~node:u ~dst ~channel:c) via;
    (* Weight update: add to each channel the number of terminal
       routes to [dst] crossing it, accumulating flows far-to-near
       along the shortest-path tree. *)
    Array.sort (fun a b -> compare dist.(b) dist.(a)) order;
    Array.iteri (fun v _ -> flow.(v) <- if Graph.is_terminal g v && v <> dst then 1 else 0) flow;
    Array.iter
      (fun u ->
        if u <> dst && flow.(u) > 0 then begin
          let c = via.(u) in
          record c flow.(u);
          let v = (Graph.channel g c).Channel.dst in
          flow.(v) <- flow.(v) + flow.(u)
        end)
      order;
    Ok ()
  end

let route_destination_scratch ws g ~weights ~order ~flow ~ft ~dst =
  route_destination_core ws g ~weights
    ~record:(fun c f -> weights.(c) <- weights.(c) + f)
    ~order ~flow ~ft ~dst

let route_destination ws g ~weights ~ft ~dst =
  let n = Graph.num_nodes g in
  if Array.length weights <> Graph.num_channels g then invalid_arg "Sssp.route_destination: weights size";
  route_destination_scratch ws g ~weights ~order:(Array.init n (fun i -> i)) ~flow:(Array.make n 0) ~ft
    ~dst

(* ------------------------------------------------------------------ *)
(* Per-domain scratch for the batched pipeline                          *)
(* ------------------------------------------------------------------ *)

(* A worker's private state: Dijkstra workspace, tree-walk arrays, and a
   sparse per-channel delta of the flow its destinations contributed in
   the current batch. Scratch lives as long as its pool does and is
   re-validated lazily via epoch stamping: every plane invocation draws a
   fresh epoch; a worker first touching its scratch under a new epoch
   resizes the arrays if the graph changed shape and clears any residue,
   then reuses everything for the rest of the invocation. *)
type scratch = {
  mutable epoch : int;
  mutable nodes : int;
  mutable channels : int;
  mutable ws : Dijkstra.workspace option;
  mutable order : int array;
  mutable flow : int array;
  mutable delta : int array; (* channel -> flow contributed this batch *)
  mutable touched : int array; (* channels with delta > 0, first num_touched *)
  mutable num_touched : int;
}

type pool = scratch Parallel.Pool.t

let fresh_scratch _slot =
  {
    epoch = -1;
    nodes = -1;
    channels = -1;
    ws = None;
    order = [||];
    flow = [||];
    delta = [||];
    touched = [||];
    num_touched = 0;
  }

let create_pool ?domains () = Parallel.Pool.create ?domains fresh_scratch

let destroy_pool = Parallel.Pool.shutdown

let pool_domains = Parallel.Pool.size

let plane_epoch = Atomic.make 0

let revalidate sc g ~epoch =
  if sc.epoch <> epoch then begin
    (* Heal residue from an invocation aborted by an exception: deltas
       recorded but never merged must not leak into this plane. *)
    for i = 0 to sc.num_touched - 1 do
      sc.delta.(sc.touched.(i)) <- 0
    done;
    sc.num_touched <- 0;
    let n = Graph.num_nodes g and m = Graph.num_channels g in
    if sc.nodes <> n then begin
      sc.ws <- Some (Dijkstra.workspace g);
      sc.order <- Array.init n (fun i -> i);
      sc.flow <- Array.make n 0;
      sc.nodes <- n
    end;
    if sc.channels <> m then begin
      sc.delta <- Array.make m 0;
      sc.touched <- Array.make m 0;
      sc.channels <- m
    end;
    sc.epoch <- epoch
  end

let route_destinations_batched pool ~batch g ~weights ~ft ~dsts =
  let epoch = Atomic.fetch_and_add plane_epoch 1 in
  let m = Graph.num_channels g in
  let snapshot = Array.make m 0 in
  Batched.run ~pool ~batch ~dsts
    ~freeze:(fun () -> Array.blit weights 0 snapshot 0 m)
    ~dest:(fun sc dst ->
      revalidate sc g ~epoch;
      route_destination_core (Option.get sc.ws) g ~weights:snapshot
        ~record:(fun c f ->
          if sc.delta.(c) = 0 then begin
            sc.touched.(sc.num_touched) <- c;
            sc.num_touched <- sc.num_touched + 1
          end;
          sc.delta.(c) <- sc.delta.(c) + f)
        ~order:sc.order ~flow:sc.flow ~ft ~dst)
    ~merge:(fun sc ->
      if sc.epoch = epoch then begin
        for i = 0 to sc.num_touched - 1 do
          let c = sc.touched.(i) in
          weights.(c) <- weights.(c) + sc.delta.(c);
          sc.delta.(c) <- 0
        done;
        sc.num_touched <- 0
      end)

let route_destinations_inner ?(batch = 1) ?(domains = 1) ?pool g ~weights ~ft ~dsts =
  match pool with
  | Some pool -> route_destinations_batched pool ~batch g ~weights ~ft ~dsts
  | None ->
    if batch <= 1 && domains <= 1 then begin
      (* the sequential recurrence, verbatim; stops at the first error *)
      let n = Graph.num_nodes g in
      let ws = Dijkstra.workspace g in
      let order = Array.init n (fun i -> i) in
      let flow = Array.make n 0 in
      let nt = Array.length dsts in
      let rec go i =
        if i >= nt then Ok ()
        else
          match route_destination_scratch ws g ~weights ~order ~flow ~ft ~dst:dsts.(i) with
          | Ok () -> go (i + 1)
          | Error _ as e -> e
      in
      go 0
    end
    else
      Parallel.Pool.with_pool ~domains fresh_scratch (fun pool ->
          route_destinations_batched pool ~batch g ~weights ~ft ~dsts)

let route_destinations ?batch ?domains ?pool g ~weights ~ft ~dsts =
  if Array.length weights <> Graph.num_channels g then
    invalid_arg "Sssp.route_destinations: weights size";
  Obs.Counter.incr c_planes;
  Obs.Timer.time t_plane (fun () ->
      Obs.Trace.with_span "sssp.route_destinations"
        ~attrs:(fun () ->
          [
            ("destinations", Obs.Trace.Int (Array.length dsts));
            ("batch", Obs.Trace.Int (Option.value batch ~default:1));
            ( "domains",
              Obs.Trace.Int
                (match pool with
                | Some p -> Parallel.Pool.size p
                | None -> Option.value domains ~default:1) );
            ("pooled", Obs.Trace.Bool (pool <> None));
          ])
        (fun () -> route_destinations_inner ?batch ?domains ?pool g ~weights ~ft ~dsts))

let route_plane ?batch ?domains ?pool g ~weights =
  if Array.length weights <> Graph.num_channels g then invalid_arg "Sssp.route_plane: weights size";
  Array.iter (fun w -> if w < 1 then invalid_arg "Sssp.route_plane: weight < 1") weights;
  let ft = Ftable.create g ~algorithm:"sssp" in
  match route_destinations ?batch ?domains ?pool g ~weights ~ft ~dsts:(Graph.terminals g) with
  | Error _ as e -> e
  | Ok () -> Ok ft

let route ?initial_weight ?batch ?domains ?pool g =
  let weights =
    match initial_weight with
    | None -> initial_weights g
    | Some w ->
      if w < 1 then invalid_arg "Sssp.route: initial_weight < 1";
      Array.make (Graph.num_channels g) w
  in
  route_plane ?batch ?domains ?pool g ~weights
