let initial_weights g =
  let n = Graph.num_nodes g in
  Array.make (Graph.num_channels g) (n * n)

let recommended_batch = 32

let default_kernel = Spf.Auto

(* Plane-level telemetry (doc/observability.md): one counter bump per
   destination tree, one timer sample + span per route_destinations
   call, one snapshot-timer sample per batch freeze. Nothing inside the
   kernel or tree-walk loops is touched. *)
let c_dsts = Obs.Registry.counter "sssp.destinations" ~desc:"destination trees routed"

let c_planes = Obs.Registry.counter "sssp.planes" ~desc:"route_destinations invocations"

let t_plane =
  Obs.Registry.timer "sssp.route_destinations" ~desc:"seconds per route_destinations invocation"

let t_snapshot =
  Obs.Registry.timer "sssp.snapshot" ~desc:"seconds freezing weight snapshots (per batch)"

let scan_bounds weights =
  let minw = ref max_int and maxw = ref 1 in
  Array.iter
    (fun w ->
      if w < !minw then minw := w;
      if w > !maxw then maxw := w)
    weights;
  (!minw, !maxw)

(* One destination: a shortest-path tree toward [dst] over [weights]
   from the selected kernel (Spf, DESIGN.md §15), table entries from the
   via-tree, then the tree's terminal flows accumulated far-to-near and
   emitted through [record] (one call per tree channel). [record]
   abstracts where the load lands: the live weight array for the
   sequential recurrence, a per-domain delta for the batched pipeline.

   The kernel's settle order is non-decreasing in distance, and with
   weights >= 1 every via-parent settles strictly before its children,
   so walking the order backwards visits the tree far-to-near — the
   per-destination sort the previous implementation needed is gone. *)
let route_destination_core ws g ~weights ~minw ~maxw ~stamp ~record ~flow ~ft ~dst =
  Obs.Counter.incr c_dsts;
  let { Spf.via; order; reached; _ } = Spf.compute ws g ~weights ~minw ~maxw ~stamp ~dst in
  let n = Graph.num_nodes g in
  if reached < n then Error (Printf.sprintf "sssp: node unreachable toward %d" dst)
  else begin
    Array.iteri (fun u c -> if u <> dst && c >= 0 then Ftable.set_next ft ~node:u ~dst ~channel:c) via;
    (* Weight update: add to each channel the number of terminal routes
       to [dst] crossing it, accumulating flows far-to-near along the
       shortest-path tree. *)
    for v = 0 to n - 1 do
      flow.(v) <- (if Graph.is_terminal g v && v <> dst then 1 else 0)
    done;
    for i = n - 1 downto 0 do
      let u = order.(i) in
      if u <> dst && flow.(u) > 0 then begin
        let c = via.(u) in
        record c flow.(u);
        let v = (Graph.channel g c).Channel.dst in
        flow.(v) <- flow.(v) + flow.(u)
      end
    done;
    Ok ()
  end

(* Sequential step: record straight into the live weights, keeping the
   running max up to date so kernel bucket bounds stay valid without
   rescanning. Weights only grow, so [minw] is stable. *)
let route_destination_scratch ws g ~weights ~minw ~maxw ~flow ~ft ~dst =
  route_destination_core ws g ~weights ~minw ~maxw:!maxw ~stamp:(Spf.fresh_stamp ())
    ~record:(fun c f ->
      let w = weights.(c) + f in
      weights.(c) <- w;
      if w > !maxw then maxw := w)
    ~flow ~ft ~dst

let route_destination ws g ~weights ~ft ~dst =
  let n = Graph.num_nodes g in
  if Array.length weights <> Graph.num_channels g then invalid_arg "Sssp.route_destination: weights size";
  let minw, maxw0 = scan_bounds weights in
  route_destination_scratch ws g ~weights ~minw ~maxw:(ref maxw0) ~flow:(Array.make n 0) ~ft ~dst

(* ------------------------------------------------------------------ *)
(* Per-domain scratch for the batched pipeline                          *)
(* ------------------------------------------------------------------ *)

(* A worker's private state: kernel workspace, tree-walk flow array, and
   a sparse per-channel delta of the flow its destinations contributed in
   the current batch. Scratch lives as long as its pool does and is
   re-validated lazily via epoch stamping: every plane invocation draws a
   fresh epoch; a worker first touching its scratch under a new epoch
   resizes the arrays if the graph (or requested kernel) changed and
   clears any residue, then reuses everything for the rest of the
   invocation. *)
type scratch = {
  mutable epoch : int;
  mutable nodes : int;
  mutable channels : int;
  mutable ws : Spf.workspace option;
  mutable flow : int array;
  mutable delta : int array; (* channel -> flow contributed this batch *)
  mutable touched : int array; (* channels with delta > 0, first num_touched *)
  mutable num_touched : int;
}

type pool = scratch Parallel.Pool.t

let fresh_scratch _slot =
  {
    epoch = -1;
    nodes = -1;
    channels = -1;
    ws = None;
    flow = [||];
    delta = [||];
    touched = [||];
    num_touched = 0;
  }

let create_pool ?domains () = Parallel.Pool.create ?domains fresh_scratch

let destroy_pool = Parallel.Pool.shutdown

let pool_domains = Parallel.Pool.size

let plane_epoch = Atomic.make 0

let revalidate sc ~kernel g ~epoch =
  if sc.epoch <> epoch then begin
    (* Heal residue from an invocation aborted by an exception: deltas
       recorded but never merged must not leak into this plane. *)
    for i = 0 to sc.num_touched - 1 do
      sc.delta.(sc.touched.(i)) <- 0
    done;
    sc.num_touched <- 0;
    let n = Graph.num_nodes g and m = Graph.num_channels g in
    let ws_stale =
      match sc.ws with None -> true | Some ws -> sc.nodes <> n || Spf.kind ws <> kernel
    in
    if ws_stale then begin
      sc.ws <- Some (Spf.workspace ~kernel g);
      sc.flow <- Array.make n 0;
      sc.nodes <- n
    end;
    if sc.channels <> m then begin
      sc.delta <- Array.make m 0;
      sc.touched <- Array.make m 0;
      sc.channels <- m
    end;
    sc.epoch <- epoch
  end

(* The batched pipeline. Two execution shapes, selected by the same
   pool-aware sizing as {!Batched.run} (so the two layers always agree):

   - fan-out: weights are blitted into a per-batch snapshot that the
     worker domains read while the caller's weights stay writable for
     the merge.
   - inline (effective workers <= 1): the whole batch runs on the
     calling domain, and because contributions are recorded into the
     slot-0 delta rather than applied, [weights] itself {e is} the
     frozen snapshot — the copy is skipped entirely. Small planes and
     single-domain hardware take this path.

   Both shapes draw one fresh kernel stamp per batch: within a batch the
   (effective) snapshot is immutable, so consecutive destinations on the
   same switch share one incremental-kernel tree. *)
let route_destinations_batched ~kernel pool ~batch g ~weights ~ft ~dsts =
  let epoch = Atomic.fetch_and_add plane_epoch 1 in
  let m = Graph.num_channels g in
  let minw, maxw0 = scan_bounds weights in
  let maxw = ref maxw0 in
  let stamp = ref 0 in
  let cost = m in
  let workers = Batched.effective_workers ~cost ~pool ~batch ~items:(Array.length dsts) in
  let merge sc =
    if sc.epoch = epoch then begin
      for i = 0 to sc.num_touched - 1 do
        let c = sc.touched.(i) in
        let w = weights.(c) + sc.delta.(c) in
        weights.(c) <- w;
        if w > !maxw then maxw := w;
        sc.delta.(c) <- 0
      done;
      sc.num_touched <- 0
    end
  in
  let record sc c f =
    if sc.delta.(c) = 0 then begin
      sc.touched.(sc.num_touched) <- c;
      sc.num_touched <- sc.num_touched + 1
    end;
    sc.delta.(c) <- sc.delta.(c) + f
  in
  if workers <= 1 then
    Batched.run ~cost ~pool ~batch ~dsts
      ~freeze:(fun () -> Obs.Timer.time t_snapshot (fun () -> stamp := Spf.fresh_stamp ()))
      ~dest:(fun sc dst ->
        revalidate sc ~kernel g ~epoch;
        route_destination_core (Option.get sc.ws) g ~weights ~minw ~maxw:!maxw ~stamp:!stamp
          ~record:(record sc) ~flow:sc.flow ~ft ~dst)
      ~merge
  else begin
    let snapshot = Array.make m 0 in
    Batched.run ~cost ~pool ~batch ~dsts
      ~freeze:(fun () ->
        Obs.Timer.time t_snapshot (fun () ->
            Array.blit weights 0 snapshot 0 m;
            stamp := Spf.fresh_stamp ()))
      ~dest:(fun sc dst ->
        revalidate sc ~kernel g ~epoch;
        route_destination_core (Option.get sc.ws) g ~weights:snapshot ~minw ~maxw:!maxw
          ~stamp:!stamp ~record:(record sc) ~flow:sc.flow ~ft ~dst)
      ~merge
  end

let route_destinations_inner ?(batch = 1) ?(domains = 1) ?pool ~kernel g ~weights ~ft ~dsts =
  match pool with
  | Some pool -> route_destinations_batched ~kernel pool ~batch g ~weights ~ft ~dsts
  | None ->
    if batch <= 1 && domains <= 1 then begin
      (* the sequential recurrence, verbatim; stops at the first error.
         Weights change after every destination, so each step draws its
         own stamp and incremental reuse never applies here — batch:1
         stays bit-for-bit identical to the historical sequential code
         for every kernel. *)
      let n = Graph.num_nodes g in
      let ws = Spf.workspace ~kernel g in
      let flow = Array.make n 0 in
      let minw, maxw0 = scan_bounds weights in
      let maxw = ref maxw0 in
      let nt = Array.length dsts in
      let rec go i =
        if i >= nt then Ok ()
        else
          match route_destination_scratch ws g ~weights ~minw ~maxw ~flow ~ft ~dst:dsts.(i) with
          | Ok () -> go (i + 1)
          | Error _ as e -> e
      in
      go 0
    end
    else
      Parallel.Pool.with_pool ~domains fresh_scratch (fun pool ->
          route_destinations_batched ~kernel pool ~batch g ~weights ~ft ~dsts)

let route_destinations ?batch ?domains ?pool ?(kernel = default_kernel) g ~weights ~ft ~dsts =
  if Array.length weights <> Graph.num_channels g then
    invalid_arg "Sssp.route_destinations: weights size";
  Obs.Counter.incr c_planes;
  Obs.Timer.time t_plane (fun () ->
      Obs.Trace.with_span "sssp.route_destinations"
        ~attrs:(fun () ->
          [
            ("destinations", Obs.Trace.Int (Array.length dsts));
            ("batch", Obs.Trace.Int (Option.value batch ~default:1));
            ( "domains",
              Obs.Trace.Int
                (match pool with
                | Some p -> Parallel.Pool.size p
                | None -> Option.value domains ~default:1) );
            ("pooled", Obs.Trace.Bool (pool <> None));
            ("kernel", Obs.Trace.Str (Spf.kind_to_string kernel));
          ])
        (fun () -> route_destinations_inner ?batch ?domains ?pool ~kernel g ~weights ~ft ~dsts))

let route_plane ?batch ?domains ?pool ?kernel g ~weights =
  if Array.length weights <> Graph.num_channels g then invalid_arg "Sssp.route_plane: weights size";
  Array.iter (fun w -> if w < 1 then invalid_arg "Sssp.route_plane: weight < 1") weights;
  let ft = Ftable.create g ~algorithm:"sssp" in
  match route_destinations ?batch ?domains ?pool ?kernel g ~weights ~ft ~dsts:(Graph.terminals g) with
  | Error _ as e -> e
  | Ok () -> Ok ft

let route ?initial_weight ?batch ?domains ?pool ?kernel g =
  let weights =
    match initial_weight with
    | None -> initial_weights g
    | Some w ->
      if w < 1 then invalid_arg "Sssp.route: initial_weight < 1";
      Array.make (Graph.num_channels g) w
  in
  route_plane ?batch ?domains ?pool ?kernel g ~weights
