let initial_weights g =
  let n = Graph.num_nodes g in
  Array.make (Graph.num_channels g) (n * n)

let route_destination_scratch ws g ~weights ~order ~flow ~ft ~dst =
  let dist, via = Dijkstra.toward ws g ~weights ~dst in
  if Array.exists (fun d -> d = max_int) dist then
    Error (Printf.sprintf "sssp: node unreachable toward %d" dst)
  else begin
    Array.iteri (fun u c -> if u <> dst && c >= 0 then Ftable.set_next ft ~node:u ~dst ~channel:c) via;
    (* Weight update: add to each channel the number of terminal
       routes to [dst] crossing it, accumulating flows far-to-near
       along the shortest-path tree. *)
    Array.sort (fun a b -> compare dist.(b) dist.(a)) order;
    Array.iteri (fun v _ -> flow.(v) <- if Graph.is_terminal g v && v <> dst then 1 else 0) flow;
    Array.iter
      (fun u ->
        if u <> dst && flow.(u) > 0 then begin
          let c = via.(u) in
          weights.(c) <- weights.(c) + flow.(u);
          let v = (Graph.channel g c).Channel.dst in
          flow.(v) <- flow.(v) + flow.(u)
        end)
      order;
    Ok ()
  end

let route_destination ws g ~weights ~ft ~dst =
  let n = Graph.num_nodes g in
  if Array.length weights <> Graph.num_channels g then invalid_arg "Sssp.route_destination: weights size";
  route_destination_scratch ws g ~weights ~order:(Array.init n (fun i -> i)) ~flow:(Array.make n 0) ~ft
    ~dst

let route_plane g ~weights =
  let n = Graph.num_nodes g in
  if Array.length weights <> Graph.num_channels g then invalid_arg "Sssp.route_plane: weights size";
  Array.iter (fun w -> if w < 1 then invalid_arg "Sssp.route_plane: weight < 1") weights;
  let ft = Ftable.create g ~algorithm:"sssp" in
  let ws = Dijkstra.workspace g in
  let order = Array.init n (fun i -> i) in
  let flow = Array.make n 0 in
  let result = ref (Ok ()) in
  Array.iter
    (fun dst ->
      match !result with
      | Error _ -> ()
      | Ok () -> result := route_destination_scratch ws g ~weights ~order ~flow ~ft ~dst)
    (Graph.terminals g);
  match !result with
  | Error _ as e -> e
  | Ok () -> Ok ft

let route ?initial_weight g =
  let weights =
    match initial_weight with
    | None -> initial_weights g
    | Some w ->
      if w < 1 then invalid_arg "Sssp.route: initial_weight < 1";
      Array.make (Graph.num_channels g) w
  in
  route_plane g ~weights
