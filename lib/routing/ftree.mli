(** Fat-tree routing, modelled on OpenSM's ftree: on a leveled tree fabric
    (k-ary n-tree, XGFT), route up toward the first common ancestor —
    choosing up-ports by destination index so destinations spread over the
    spine (d-mod-k) — then down along the unique descending path.
    Deadlock-free (routes are up*/down* by construction) with one virtual
    layer, but only applicable to tree-like fabrics: any non-tree fabric
    is rejected, mirroring the failed FatTree bars in the paper's Fig. 4. *)

(** [route g] fails with a descriptive message if the fabric is not a
    leveled fat tree (a switch-switch cable must span exactly one level,
    and every up-walk must end at an ancestor of the destination).

    d-mod-k spreading makes every destination independent of the others,
    so [domains] (default 1) parallelizes the fill with no snapshotting;
    tables are identical for any [domains]. [kernel] is accepted for
    registry uniformity and ignored: fat-tree routing is ancestor-level
    arithmetic, not a shortest-path kernel. *)
val route : ?domains:int -> ?kernel:Spf.kind -> Graph.t -> (Ftable.t, string) result

(** Levels as ftree sees them: distance of each switch from the leaf
    (terminal-holding) layer; exposed for tests. Fails on fabrics without
    terminals. *)
val levels : Graph.t -> (int array, string) result
