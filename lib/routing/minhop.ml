(* Per destination: BFS hop distances toward dst, then every node picks
   the min-hop channel with the fewest forwarding-table entries so far.
   The load counter is per LFT entry — NOT per end-to-end route — which
   is exactly OpenSM's port balancing and the reason MinHop's balance is
   only local: a table entry on a trunk carries far more traffic than one
   on a leaf link, but both count the same (the gap SSSP closes by
   weighting channels with actual route counts).

   Unlike SSSP and Up*/Down*, MinHop reads the balancing state {e while}
   it updates it within a destination (node u's pick bumps a load that
   node u+1 reads), so the batched pipeline layers a per-destination
   local overlay on top of the per-batch snapshot: effective load =
   snapshot + this destination's own increments. That keeps the picks a
   function of (snapshot, destination) alone, independent of which
   domain routes which destination. *)

let route_destination g ws ~stamp ~n ~get_load ~bump ~ft ~dst =
  let { Spf.dist; reached; _ } = Spf.compute_hops ws g ~stamp ~dst in
  if reached < n then
    Error (Printf.sprintf "minhop: node unreachable toward %d" dst)
  else begin
    let error = ref None in
    let u = ref 0 in
    while !error = None && !u < n do
      let u0 = !u in
      if u0 <> dst then begin
        let best = ref (-1) in
        Array.iter
          (fun c ->
            let v = (Graph.channel g c).Channel.dst in
            if dist.(v) + 1 = dist.(u0) && (!best < 0 || get_load c < get_load !best) then best := c)
          (Graph.out_channels g u0);
        match !best with
        | -1 -> error := Some (Printf.sprintf "minhop: no min-hop channel at %d toward %d" u0 dst)
        | c ->
          Ftable.set_next ft ~node:u0 ~dst ~channel:c;
          bump c
      end;
      incr u
    done;
    match !error with
    | Some msg -> Error msg
    | None -> Ok ()
  end

type scratch = {
  ws : Spf.workspace;
  local : int array; (* this destination's own increments *)
  local_touched : int array;
  mutable num_local : int;
  delta : int array; (* batch increments awaiting merge *)
  delta_touched : int array;
  mutable num_delta : int;
}

let route ?(batch = 1) ?(domains = 1) ?(kernel = Spf.Auto) g =
  let n = Graph.num_nodes g in
  let m = Graph.num_channels g in
  let ft = Ftable.create g ~algorithm:"minhop" in
  let load = Array.make m 0 in
  let dsts = Graph.terminals g in
  (* Hop distances do not depend on the load state, so one stamp covers
     the whole run: the incremental kernel reuses a switch tree across
     every destination on that switch. *)
  let stamp = Spf.fresh_stamp () in
  let result =
    if batch <= 1 && domains <= 1 then begin
      let ws = Spf.workspace ~kernel g in
      let nt = Array.length dsts in
      let rec go i =
        if i >= nt then Ok ()
        else
          match
            route_destination g ws ~stamp ~n
              ~get_load:(fun c -> load.(c))
              ~bump:(fun c -> load.(c) <- load.(c) + 1)
              ~ft ~dst:dsts.(i)
          with
          | Ok () -> go (i + 1)
          | Error _ as e -> e
      in
      go 0
    end
    else begin
      let snapshot = Array.make m 0 in
      Parallel.Pool.with_pool ~domains
        (fun _slot ->
          {
            ws = Spf.workspace ~kernel g;
            local = Array.make m 0;
            local_touched = Array.make m 0;
            num_local = 0;
            delta = Array.make m 0;
            delta_touched = Array.make m 0;
            num_delta = 0;
          })
        (fun pool ->
          Batched.run ~cost:m ~pool ~batch ~dsts
            ~freeze:(fun () -> Array.blit load 0 snapshot 0 m)
            ~dest:(fun sc dst ->
              let r =
                route_destination g sc.ws ~stamp ~n
                  ~get_load:(fun c -> snapshot.(c) + sc.local.(c))
                  ~bump:(fun c ->
                    if sc.local.(c) = 0 then begin
                      sc.local_touched.(sc.num_local) <- c;
                      sc.num_local <- sc.num_local + 1
                    end;
                    sc.local.(c) <- sc.local.(c) + 1;
                    if sc.delta.(c) = 0 then begin
                      sc.delta_touched.(sc.num_delta) <- c;
                      sc.num_delta <- sc.num_delta + 1
                    end;
                    sc.delta.(c) <- sc.delta.(c) + 1)
                  ~ft ~dst
              in
              for i = 0 to sc.num_local - 1 do
                sc.local.(sc.local_touched.(i)) <- 0
              done;
              sc.num_local <- 0;
              r)
            ~merge:(fun sc ->
              for i = 0 to sc.num_delta - 1 do
                let c = sc.delta_touched.(i) in
                load.(c) <- load.(c) + sc.delta.(c);
                sc.delta.(c) <- 0
              done;
              sc.num_delta <- 0))
    end
  in
  match result with
  | Error _ as e -> e
  | Ok () -> Ok ft
