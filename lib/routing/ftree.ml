let levels g =
  let n = Graph.num_nodes g in
  let level = Array.make n max_int in
  let queue = Queue.create () in
  Array.iter
    (fun t ->
      let sw = (Graph.channel g (Graph.out_channels g t).(0)).Channel.dst in
      if level.(sw) = max_int then begin
        level.(sw) <- 0;
        Queue.add sw queue
      end)
    (Graph.terminals g);
  if Queue.is_empty queue then Error "ftree: no terminals"
  else begin
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      Array.iter
        (fun c ->
          let v = (Graph.channel g c).Channel.dst in
          if Graph.is_switch g v && level.(v) = max_int then begin
            level.(v) <- level.(u) + 1;
            Queue.add v queue
          end)
        (Graph.out_channels g u)
    done;
    Ok level
  end

(* One destination is a pure function of (level map, destination): mark
   ancestors level by level, then emit entries — no balancing state is
   shared between destinations, so destinations parallelize with no
   snapshot at all and the tables are identical for any domain count. *)
let route_destination g ~level ~up_channels ~order_by_level ~anc_channel ~ft ~dst =
  let n = Graph.num_nodes g in
  let error = ref None in
  let fail fmt = Format.kasprintf (fun s -> if !error = None then error := Some s) fmt in
  let dst_injection = (Graph.out_channels g dst).(0) in
  let dst_sw = (Graph.channel g dst_injection).Channel.dst in
  Array.fill anc_channel 0 n (-1);
  (* Ancestor marking, level by level upward: u is an ancestor iff a down
     channel leads to an ancestor (or to dst's leaf switch); parallel
     candidate cables are spread over destinations (d-mod-k on the way
     down too). *)
  let dst_index = Ftable.dst_index ft dst in
  Array.iter
    (fun u ->
      if Graph.is_switch g u && level.(u) < max_int && u <> dst_sw && anc_channel.(u) < 0 then begin
        let candidates = ref [] in
        Array.iter
          (fun c ->
            let v = (Graph.channel g c).Channel.dst in
            if Graph.is_switch g v && level.(v) = level.(u) - 1 && (v = dst_sw || anc_channel.(v) >= 0)
            then candidates := c :: !candidates)
          (Graph.out_channels g u);
        match List.rev !candidates with
        | [] -> ()
        | l ->
          let arr = Array.of_list l in
          anc_channel.(u) <- arr.(dst_index mod Array.length arr)
      end)
    order_by_level;
  let u = ref 0 in
  while !error = None && !u < n do
    let u0 = !u in
    if u0 <> dst then
      if Graph.is_terminal g u0 then
        Ftable.set_next ft ~node:u0 ~dst ~channel:(Graph.out_channels g u0).(0)
      else if u0 = dst_sw then begin
        (* Deliver to the terminal itself. *)
        match Graph.reverse_channel g dst_injection with
        | Some c -> Ftable.set_next ft ~node:u0 ~dst ~channel:c
        | None -> fail "ftree: terminal %d has a one-way cable" dst
      end
      else if anc_channel.(u0) >= 0 then Ftable.set_next ft ~node:u0 ~dst ~channel:anc_channel.(u0)
      else begin
        let ups = up_channels.(u0) in
        if Array.length ups = 0 then
          fail "ftree: not a fat tree (switch %d cannot reach destination %d)" u0 dst
        else Ftable.set_next ft ~node:u0 ~dst ~channel:ups.(dst_index mod Array.length ups)
      end;
    incr u
  done;
  match !error with
  | Some msg -> Error msg
  | None -> Ok ()

(* [kernel] is accepted for registry/CLI uniformity but unused: fat-tree
   routing follows ancestor levels, not a shortest-path kernel. *)
let route ?(domains = 1) ?kernel:(_ : Spf.kind option) g =
  match levels g with
  | Error msg -> Error msg
  | Ok level ->
    let n = Graph.num_nodes g in
    let result = ref (Ok ()) in
    let fail fmt = Format.kasprintf (fun s -> if !result = Ok () then result := Error s) fmt in
    (* Tree check: switch-switch cables span exactly one level. *)
    Array.iter
      (fun (c : Channel.t) ->
        if Graph.is_switch g c.src && Graph.is_switch g c.dst then begin
          if level.(c.src) = max_int || level.(c.dst) = max_int then
            fail "ftree: switch without level (disconnected switch layer)"
          else if abs (level.(c.src) - level.(c.dst)) <> 1 then
            fail "ftree: not a fat tree (cable %d spans levels %d and %d)" c.id level.(c.src) level.(c.dst)
        end)
      (Graph.channels g);
    (match !result with
    | Error msg -> Error msg
    | Ok () ->
      let ft = Ftable.create g ~algorithm:"ftree" in
      let up_channels =
        (* up = toward higher level *)
        Array.map
          (fun u ->
            if Graph.is_switch g u then
              Array.of_list
                (List.filter
                   (fun c ->
                     let v = (Graph.channel g c).Channel.dst in
                     Graph.is_switch g v && level.(v) = level.(u) + 1)
                   (Array.to_list (Graph.out_channels g u)))
            else [||])
          (Array.init n (fun i -> i))
      in
      let order_by_level = Array.init n (fun i -> i) in
      Array.sort
        (fun a b -> compare (if level.(a) = max_int then -1 else level.(a)) (if level.(b) = max_int then -1 else level.(b)))
        order_by_level;
      let dsts = Graph.terminals g in
      let routed =
        if domains <= 1 then begin
          let anc_channel = Array.make n (-1) in
          let nt = Array.length dsts in
          let rec go i =
            if i >= nt then Ok ()
            else
              match route_destination g ~level ~up_channels ~order_by_level ~anc_channel ~ft ~dst:dsts.(i) with
              | Ok () -> go (i + 1)
              | Error _ as e -> e
          in
          go 0
        end
        else
          Parallel.Pool.with_pool ~domains
            (fun _slot -> Array.make n (-1))
            (fun pool ->
              Batched.run ~cost:(Graph.num_channels g) ~pool ~batch:(Array.length dsts) ~dsts
                ~freeze:(fun () -> ())
                ~dest:(fun anc_channel dst ->
                  route_destination g ~level ~up_channels ~order_by_level ~anc_channel ~ft ~dst)
                ~merge:(fun _ -> ()))
      in
      (match routed with
      | Error msg -> Error msg
      | Ok () -> Ok ft))
