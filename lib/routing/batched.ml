(* The batched-snapshot driver behind every domain-parallel table fill
   (DESIGN.md section 12). Shared balancing state (SSSP channel weights,
   MinHop/Up*Down* port loads) makes the per-destination loop sequential;
   freezing that state per batch relaxes the dependency in controlled
   steps: within a batch every destination reads the same frozen
   snapshot, so the batch is embarrassingly parallel, and the batch's
   contributions are merged before the next snapshot is taken. *)

(* One counter bump per snapshot: the batch count is the telemetry that
   explains a plane's parallel shape (destinations / batches = average
   fan-out width). Spans per batch appear only while tracing is live. *)
let c_snapshots =
  Obs.Registry.counter "batched.snapshots" ~desc:"balancing-state snapshots frozen by the batched driver"

let run ~pool ~batch ~dsts ~freeze ~dest ~merge =
  let nt = Array.length dsts in
  let batch = max 1 batch in
  let error = ref None in
  let lo = ref 0 in
  while !error = None && !lo < nt do
    let base = !lo in
    let hi = min nt (base + batch) in
    Obs.Counter.incr c_snapshots;
    freeze ();
    (* Per-slot error cells: the error reported is the one of the lowest
       destination index, exactly as a sequential scan would find it. *)
    let errs = Array.make (hi - base) None in
    Obs.Trace.with_span "batched.batch"
      ~attrs:(fun () -> [ ("base", Obs.Trace.Int base); ("size", Obs.Trace.Int (hi - base)) ])
      (fun () ->
        Parallel.Pool.run pool ~n:(hi - base) ~grain:1 (fun s k ->
            match dest s dsts.(base + k) with
            | Ok () -> ()
            | Error msg -> errs.(k) <- Some msg);
        (* Merge per-domain contributions in slot order. The merged state is
           a sum of per-destination contributions, so any merge order yields
           identical weights; slot order just makes the walk deterministic. *)
        Parallel.Pool.iter_scratch pool merge);
    Array.iter (fun e -> if !error = None && e <> None then error := e) errs;
    lo := hi
  done;
  match !error with
  | Some msg -> Error msg
  | None -> Ok ()
