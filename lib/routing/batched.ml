(* The batched-snapshot driver behind every domain-parallel table fill
   (DESIGN.md section 12). Shared balancing state (SSSP channel weights,
   MinHop/Up*Down* port loads) makes the per-destination loop sequential;
   freezing that state per batch relaxes the dependency in controlled
   steps: within a batch every destination reads the same frozen
   snapshot, so the batch is embarrassingly parallel, and the batch's
   contributions are merged before the next snapshot is taken. *)

(* One counter bump per snapshot: the batch count is the telemetry that
   explains a plane's parallel shape (destinations / batches = average
   fan-out width). Spans per batch appear only while tracing is live. *)
let c_snapshots =
  Obs.Registry.counter "batched.snapshots" ~desc:"balancing-state snapshots frozen by the batched driver"

let c_inline =
  Obs.Registry.counter "batched.inline_runs" ~desc:"batched runs executed inline (pool dispatch skipped)"

(* Pool-aware sizing (DESIGN.md §15). Fanning a batch out over worker
   domains only pays when (a) the hardware actually has spare domains,
   (b) the batch holds more than one destination, and (c) the batch
   carries enough work to amortise the dispatch handshake. When any of
   those fail the driver runs the batch inline on the caller's slot-0
   scratch — same snapshots, same merges, bit-for-bit identical tables,
   no pool round-trip. Tests that need to exercise the fan-out path on
   small boxes can force it with [set_auto_sizing false]. *)
let auto = Atomic.make true

let set_auto_sizing b = Atomic.set auto b

let auto_sizing () = Atomic.get auto

(* Below this many unit-cost items per batch (items x cost, where cost
   is the caller's per-item work proxy — channel count for the routing
   engines), the dispatch handshake dominates the work being dispatched. *)
let inline_threshold = 16384

let effective_workers ~cost ~pool ~batch ~items =
  let size = Parallel.Pool.size pool in
  if not (Atomic.get auto) then size
  else begin
    let per_batch = min (max 1 batch) (max 1 items) in
    let w = min size (min (Parallel.recommended_domains ()) per_batch) in
    if w > 1 && per_batch * max 1 cost < inline_threshold then 1 else w
  end

let run ~cost ~pool ~batch ~dsts ~freeze ~dest ~merge =
  let nt = Array.length dsts in
  let batch = max 1 batch in
  let workers = effective_workers ~cost ~pool ~batch ~items:nt in
  if workers <= 1 then Obs.Counter.incr c_inline;
  let s0 = Parallel.Pool.slot_scratch pool 0 in
  let error = ref None in
  let lo = ref 0 in
  while !error = None && !lo < nt do
    let base = !lo in
    let hi = min nt (base + batch) in
    Obs.Counter.incr c_snapshots;
    freeze ();
    (* Per-slot error cells: the error reported is the one of the lowest
       destination index, exactly as a sequential scan would find it. *)
    let errs = Array.make (hi - base) None in
    Obs.Trace.with_span "batched.batch"
      ~attrs:(fun () -> [ ("base", Obs.Trace.Int base); ("size", Obs.Trace.Int (hi - base)) ])
      (fun () ->
        if workers <= 1 then begin
          (* Inline: the whole batch runs on the caller against slot-0
             scratch. Snapshot semantics are untouched (freeze already
             ran; contributions still land in the scratch and merge at
             batch end), so results match the fan-out path exactly. *)
          for k = 0 to hi - base - 1 do
            match dest s0 dsts.(base + k) with
            | Ok () -> ()
            | Error msg -> errs.(k) <- Some msg
          done;
          merge s0
        end
        else begin
          Parallel.Pool.run pool ~n:(hi - base) ~grain:1 (fun s k ->
              match dest s dsts.(base + k) with
              | Ok () -> ()
              | Error msg -> errs.(k) <- Some msg);
          (* Merge per-domain contributions in slot order. The merged state is
             a sum of per-destination contributions, so any merge order yields
             identical weights; slot order just makes the walk deterministic. *)
          Parallel.Pool.iter_scratch pool merge
        end);
    Array.iter (fun e -> if !error = None && e <> None then error := e) errs;
    lo := hi
  done;
  match !error with
  | Some msg -> Error msg
  | None -> Ok ()
