(** Single-source-shortest-path routing (Hoefler et al., the paper's
    Algorithm 1): iterate a weighted shortest-path tree per destination
    and, after each destination is routed, increase every used channel's
    weight by the number of routes crossing it — globally balancing
    route load.

    The initial channel weight is [|V|^2]: accumulated increments stay
    below [|V|^2], so a two-channel detour can never undercut a direct
    channel and all routes keep minimal hop count (paper Section II).
    This bound is independent of how destinations are batched, so the
    batched-snapshot pipeline below preserves minimality.

    SSSP is {e not} deadlock-free in general — see {!Dfsssp} for the
    virtual-layer extension.

    {2 Kernels}

    The per-destination tree comes from a pluggable kernel ({!Spf},
    DESIGN.md §15), selected with [?kernel] on every entry point below.
    All kernels produce bit-for-bit identical tables and weights —
    kernel choice is purely a performance knob. The [|V|^2] weight base
    also makes SSSP the bucket kernel's best case: max/min weight stays
    below 2, so the bucket window is 4.

    {2 Batched-snapshot parallelism}

    The per-destination recurrence is sequential: destination [k+1]'s
    tree reads the weights destination [k] wrote. The [?batch] argument
    relaxes this in controlled steps (DESIGN.md section 12): weights are
    frozen once per batch of [batch] destinations, every destination in
    the batch is routed against the frozen snapshot — independently, so
    the batch spreads across [?domains] OCaml domains — and the batch's
    per-channel load contributions are merged back before the next
    snapshot.

    When the pool-aware sizing ({!Batched.effective_workers}) decides
    fan-out cannot pay — single-domain hardware, batch of one, or a
    plane too small to amortise the dispatch — the same batched loop
    runs inline on the caller and skips the snapshot copy entirely: with
    contributions recorded into a delta, the live weight array already
    {e is} the frozen snapshot. Within each batch the frozen weights let
    the incremental kernel share one core tree among all destinations on
    the same switch, which is why batched mode beats the sequential
    recurrence even on one domain.

    Contract: [batch] changes the algorithm (a coarser snapshot yields a
    slightly different — still minimal, still balanced — table);
    [domains] and [kernel] never do. [~batch:1] is bit-for-bit identical
    to the sequential recurrence for any [domains] and [kernel], and for
    any fixed [batch] the table and final weights are independent of
    [domains] and [kernel]. *)

(** Batch size used by callers that opt into the pipeline without a
    preference (currently 32): small enough that balancing quality is
    indistinguishable in the Fig. 4/5 metrics, large enough to keep every
    domain busy. *)
val recommended_batch : int

(** The kernel used when [?kernel] is omitted: {!Spf.Auto}. *)
val default_kernel : Spf.kind

(** A pool of routing domains with per-domain scratch (kernel workspace,
    tree-walk arrays, load-delta accumulator). Pools are
    graph-independent — scratch is (re)validated lazily against the
    graph (and requested kernel) of each invocation via epoch stamping —
    so one pool can serve many planes, graphs and engines (e.g. a
    {!Fabric.Manager} holding a pool across incremental re-routes). Must
    be released with {!destroy_pool}. *)
type pool

(** [create_pool ?domains ()] spawns [domains - 1] worker domains
    (default {!Parallel.recommended_domains}); the calling domain
    participates as the remaining slot. *)
val create_pool : ?domains:int -> unit -> pool

val destroy_pool : pool -> unit

(** Number of domains the pool runs on (including the caller). *)
val pool_domains : pool -> int

(** [route ?initial_weight ?batch ?domains ?pool ?kernel g] fails only
    on disconnected fabrics.

    [initial_weight] overrides the [|V|^2] base weight — the paper's
    Fig. 1 shows why the default matters: with [~initial_weight:1] the
    accumulated increments can make two lightly-loaded channels cheaper
    than one loaded channel and the router takes latency-increasing
    detours. Exposed for the ablation bench; leave it alone otherwise.

    [batch] (default 1) and [domains] (default 1) select the
    batched-snapshot pipeline; [pool] reuses an existing pool (its size
    overrides [domains]). [kernel] selects the shortest-path core
    (default {!Spf.Auto}). Defaults reproduce the sequential recurrence
    exactly. *)
val route :
  ?initial_weight:int ->
  ?batch:int ->
  ?domains:int ->
  ?pool:pool ->
  ?kernel:Spf.kind ->
  Graph.t ->
  (Ftable.t, string) result

(** [route_plane g ~weights] runs one SSSP pass over an {e existing}
    weight state, updating [weights] in place with the new routes' load.
    Successive calls over the same array produce diverse forwarding planes
    — later planes avoid channels earlier planes loaded — which is exactly
    how OpenSM's SSSP routes the extra LIDs of an LMC > 0 subnet (see
    {!Dfsssp.Multipath}). [weights] must have one entry per channel, all
    >= 1. [batch]/[domains]/[pool]/[kernel] as in {!route}. *)
val route_plane :
  ?batch:int ->
  ?domains:int ->
  ?pool:pool ->
  ?kernel:Spf.kind ->
  Graph.t ->
  weights:int array ->
  (Ftable.t, string) result

(** [route_destinations g ~weights ~ft ~dsts] is {!route_plane}
    restricted to the given destination terminals, writing into an
    existing table — the batch building block behind {!route_plane}
    itself, incremental repair and the routing bench. Destinations are
    processed in [dsts] order. Stops at the first failing destination
    (lowest index, as a sequential scan would find it); on [Error],
    [weights] and [ft] retain the contributions of the destinations
    already routed. [weights] entries must all be >= 1. *)
val route_destinations :
  ?batch:int ->
  ?domains:int ->
  ?pool:pool ->
  ?kernel:Spf.kind ->
  Graph.t ->
  weights:int array ->
  ft:Ftable.t ->
  dsts:int array ->
  (unit, string) result

(** Fresh weight state for {!route_plane}: every channel at [|V|^2]. *)
val initial_weights : Graph.t -> int array

(** [route_destination ws g ~weights ~ft ~dst] runs the per-destination
    step of {!route_plane} for a single terminal [dst]: one
    shortest-path tree toward [dst] (using the kernel [ws] was created
    with), forwarding entries written into [ft], and the new routes'
    load added to [weights]. This is the building block of incremental
    route repair (see {!Fabric.Repair}): after a topology event only the
    affected destinations are re-run over the surviving weight state.
    Fails if some node cannot reach [dst]. *)
val route_destination :
  Spf.workspace -> Graph.t -> weights:int array -> ft:Ftable.t -> dst:int -> (unit, string) result
