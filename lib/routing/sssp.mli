(** Single-source-shortest-path routing (Hoefler et al., the paper's
    Algorithm 1): iterate a weighted Dijkstra per destination and, after
    each destination is routed, increase every used channel's weight by
    the number of routes crossing it — globally balancing route load.

    The initial channel weight is [|V|^2]: accumulated increments stay
    below [|V|^2], so a two-channel detour can never undercut a direct
    channel and all routes keep minimal hop count (paper Section II).

    SSSP is {e not} deadlock-free in general — see {!Dfsssp} for the
    virtual-layer extension. *)

(** [route ?initial_weight g] fails only on disconnected fabrics.

    [initial_weight] overrides the [|V|^2] base weight — the paper's
    Fig. 1 shows why the default matters: with [~initial_weight:1] the
    accumulated increments can make two lightly-loaded channels cheaper
    than one loaded channel and the router takes latency-increasing
    detours. Exposed for the ablation bench; leave it alone otherwise. *)
val route : ?initial_weight:int -> Graph.t -> (Ftable.t, string) result

(** [route_plane g ~weights] runs one SSSP pass over an {e existing}
    weight state, updating [weights] in place with the new routes' load.
    Successive calls over the same array produce diverse forwarding planes
    — later planes avoid channels earlier planes loaded — which is exactly
    how OpenSM's SSSP routes the extra LIDs of an LMC > 0 subnet (see
    {!Dfsssp.Multipath}). [weights] must have one entry per channel, all
    >= 1. *)
val route_plane : Graph.t -> weights:int array -> (Ftable.t, string) result

(** Fresh weight state for {!route_plane}: every channel at [|V|^2]. *)
val initial_weights : Graph.t -> int array

(** [route_destination ws g ~weights ~ft ~dst] runs the per-destination
    step of {!route_plane} for a single terminal [dst]: one weighted
    Dijkstra toward [dst], forwarding entries written into [ft], and the
    new routes' load added to [weights]. This is the building block of
    incremental route repair (see {!Fabric.Repair}): after a topology
    event only the affected destinations are re-run over the surviving
    weight state. Fails if some node cannot reach [dst]. *)
val route_destination :
  Dijkstra.workspace -> Graph.t -> weights:int array -> ft:Ftable.t -> dst:int -> (unit, string) result
