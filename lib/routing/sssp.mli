(** Single-source-shortest-path routing (Hoefler et al., the paper's
    Algorithm 1): iterate a weighted Dijkstra per destination and, after
    each destination is routed, increase every used channel's weight by
    the number of routes crossing it — globally balancing route load.

    The initial channel weight is [|V|^2]: accumulated increments stay
    below [|V|^2], so a two-channel detour can never undercut a direct
    channel and all routes keep minimal hop count (paper Section II).
    This bound is independent of how destinations are batched, so the
    batched-snapshot pipeline below preserves minimality.

    SSSP is {e not} deadlock-free in general — see {!Dfsssp} for the
    virtual-layer extension.

    {2 Batched-snapshot parallelism}

    The per-destination recurrence is sequential: destination [k+1]'s
    Dijkstra reads the weights destination [k] wrote. The [?batch]
    argument relaxes this in controlled steps (DESIGN.md section 12):
    weights are frozen once per batch of [batch] destinations, every
    destination in the batch is routed against the frozen snapshot —
    independently, so the batch spreads across [?domains] OCaml domains —
    and the batch's per-channel load contributions are merged back before
    the next snapshot.

    Contract: [batch] changes the algorithm (a coarser snapshot yields a
    slightly different — still minimal, still balanced — table);
    [domains] never does. [~batch:1] is bit-for-bit identical to the
    sequential recurrence for any [domains], and for any fixed [batch]
    the table and final weights are independent of [domains]. *)

(** Batch size used by callers that opt into the pipeline without a
    preference (currently 32): small enough that balancing quality is
    indistinguishable in the Fig. 4/5 metrics, large enough to keep every
    domain busy. *)
val recommended_batch : int

(** A pool of routing domains with per-domain scratch (Dijkstra
    workspace, tree-walk arrays, load-delta accumulator). Pools are
    graph-independent — scratch is (re)validated lazily against the graph
    of each invocation via epoch stamping — so one pool can serve many
    planes, graphs and engines (e.g. a {!Fabric.Manager} holding a pool
    across incremental re-routes). Must be released with
    {!destroy_pool}. *)
type pool

(** [create_pool ?domains ()] spawns [domains - 1] worker domains
    (default {!Parallel.recommended_domains}); the calling domain
    participates as the remaining slot. *)
val create_pool : ?domains:int -> unit -> pool

val destroy_pool : pool -> unit

(** Number of domains the pool runs on (including the caller). *)
val pool_domains : pool -> int

(** [route ?initial_weight ?batch ?domains ?pool g] fails only on
    disconnected fabrics.

    [initial_weight] overrides the [|V|^2] base weight — the paper's
    Fig. 1 shows why the default matters: with [~initial_weight:1] the
    accumulated increments can make two lightly-loaded channels cheaper
    than one loaded channel and the router takes latency-increasing
    detours. Exposed for the ablation bench; leave it alone otherwise.

    [batch] (default 1) and [domains] (default 1) select the
    batched-snapshot pipeline; [pool] reuses an existing pool (its size
    overrides [domains]). Defaults reproduce the sequential recurrence
    exactly. *)
val route :
  ?initial_weight:int -> ?batch:int -> ?domains:int -> ?pool:pool -> Graph.t -> (Ftable.t, string) result

(** [route_plane g ~weights] runs one SSSP pass over an {e existing}
    weight state, updating [weights] in place with the new routes' load.
    Successive calls over the same array produce diverse forwarding planes
    — later planes avoid channels earlier planes loaded — which is exactly
    how OpenSM's SSSP routes the extra LIDs of an LMC > 0 subnet (see
    {!Dfsssp.Multipath}). [weights] must have one entry per channel, all
    >= 1. [batch]/[domains]/[pool] as in {!route}. *)
val route_plane :
  ?batch:int -> ?domains:int -> ?pool:pool -> Graph.t -> weights:int array -> (Ftable.t, string) result

(** [route_destinations g ~weights ~ft ~dsts] is {!route_plane}
    restricted to the given destination terminals, writing into an
    existing table — the batch building block behind {!route_plane}
    itself, incremental repair and the routing bench. Destinations are
    processed in [dsts] order. Stops at the first failing destination
    (lowest index, as a sequential scan would find it); on [Error],
    [weights] and [ft] retain the contributions of the destinations
    already routed. *)
val route_destinations :
  ?batch:int ->
  ?domains:int ->
  ?pool:pool ->
  Graph.t ->
  weights:int array ->
  ft:Ftable.t ->
  dsts:int array ->
  (unit, string) result

(** Fresh weight state for {!route_plane}: every channel at [|V|^2]. *)
val initial_weights : Graph.t -> int array

(** [route_destination ws g ~weights ~ft ~dst] runs the per-destination
    step of {!route_plane} for a single terminal [dst]: one weighted
    Dijkstra toward [dst], forwarding entries written into [ft], and the
    new routes' load added to [weights]. This is the building block of
    incremental route repair (see {!Fabric.Repair}): after a topology
    event only the affected destinations are re-run over the surviving
    weight state. Fails if some node cannot reach [dst]. *)
val route_destination :
  Dijkstra.workspace -> Graph.t -> weights:int array -> ft:Ftable.t -> dst:int -> (unit, string) result
