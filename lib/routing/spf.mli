(** Pluggable single-destination shortest-path kernels (DESIGN.md §15).

    Every routing engine here reduces to "build a shortest-path tree
    toward each destination over the reversed graph"; this module owns
    that inner loop behind a kernel interface.  All kernels produce
    bit-for-bit identical [(dist, via, order)] results — the relaxation
    rule makes [via u] the minimum channel id among shortest-path
    achievers, a quantity independent of the settle order — so kernel
    choice is purely a performance knob.  [test/test_spf.ml] enforces
    the equivalence against the heap oracle property-style. *)

(** Kernel selector. [Auto] (the default everywhere) currently resolves
    to [Incremental], which embeds the bucket core and adds switch-tree
    reuse on top.

    - [Heap]: binary-heap Dijkstra with decrease-key; the oracle.
    - [Bucket]: Dial-style bucket queue for bounded small-integer weight
      ratios. Bucket width is the minimum channel weight, so every edge
      spans at least one full bucket and nodes in the current bucket
      settle in any order. Falls back to [Heap] automatically when the
      bounds put the window out of range (see {!compute}).
    - [Incremental]: derives a single-switch-attached terminal's tree
      from its switch's tree (one injection edge), reusing one core run
      across all destinations on the same switch within one weight
      snapshot. Non-terminal or multi-homed destinations fall back to
      the bucket/heap core. *)
type kind = Auto | Heap | Bucket | Incremental

val all_kinds : kind list

val kind_to_string : kind -> string

(** Inverse of {!kind_to_string}; also accepts a few aliases
    ("dijkstra", "dial", "reuse", ...). *)
val kind_of_string : string -> (kind, string) result

val pp_kind : Format.formatter -> kind -> unit

(** [resolve k] is [k] with [Auto] replaced by the concrete default
    kernel. *)
val resolve : kind -> kind

(** Result of one tree computation. [order] lists settled nodes in
    non-decreasing [dist] order; the first [reached] entries are valid
    ([reached < num_nodes] means some node cannot reach [dst]).
    Iterating [order] backwards visits the tree far-to-near — exactly
    the order flow accumulation needs, with no sort.

    The arrays are {b owned by the workspace}: valid until the next
    {!compute}/{!compute_hops} on the same workspace, and must not be
    mutated by the caller. *)
type tree = {
  dist : int array;
  via : int array;
  order : int array;
  reached : int;
}

(** One workspace per (graph, domain): all kernel state — heap, bucket
    window, incremental cache, result arrays — lives here, so concurrent
    computations on separate workspaces are race-free. *)
type workspace

(** [workspace ?kernel g] allocates kernel state sized for [g].
    [kernel] defaults to [Auto]. *)
val workspace : ?kernel:kind -> Graph.t -> workspace

(** The kernel this workspace was created with ([Auto] preserved, for
    cache-revalidation comparisons). *)
val kind : workspace -> kind

(** Weight-snapshot stamps for the incremental cache. Two calls to
    {!compute} may share a stamp {b only if} the weight array contents
    and the graph (including its enabled mask) are identical at both
    calls. Stamps come from one process-wide atomic counter, so a fresh
    stamp is never equal to any other stamp in the process — when in
    doubt, draw a fresh one and forgo reuse. *)
val fresh_stamp : unit -> int

(** [compute ws g ~weights ~stamp ~dst] builds the shortest-path tree
    toward [dst] over the reversed graph with per-channel [weights].

    [minw]/[maxw] are bounds on the weight values: [minw <= weights.(c)
    <= maxw] for every channel that can be relaxed. When omitted they
    are recovered by scanning [weights] (O(channels)). The bucket core
    applies iff [minw >= 1] and [ceil(maxw/minw) + 2 <= 1024]; outside
    those bounds the call silently falls back to the heap oracle (the
    ["spf.fallbacks"] counter records it), so results never depend on
    the bounds.

    @raise Invalid_argument if [dst] is out of range. *)
val compute :
  ?minw:int ->
  ?maxw:int ->
  workspace ->
  Graph.t ->
  weights:int array ->
  stamp:int ->
  dst:int ->
  tree

(** [compute_hops ws g ~stamp ~dst] is {!compute} over all-ones weights:
    [dist] counts hops. Hop distances are load-independent, so one stamp
    per routing run maximises incremental reuse. *)
val compute_hops : workspace -> Graph.t -> stamp:int -> dst:int -> tree
