(** Destination-based forwarding tables — the analogue of InfiniBand linear
    forwarding tables (LFTs) that OpenSM programs into every switch — plus
    the per-route virtual-layer assignment computed by deadlock-free
    algorithms (the analogue of the SL/VL mapping).

    Destinations are terminals; [next t ~node ~dst] is the channel a packet
    standing at [node] takes toward terminal [dst]. Routes are therefore
    trees per destination, exactly as in the paper's oblivious
    routing-function model [R : C x N -> C]. *)

type t

(** [create g ~algorithm] makes an empty table (no routes, 1 layer). *)
val create : Graph.t -> algorithm:string -> t

val graph : t -> Graph.t
val algorithm : t -> string

(** [dst_index t node] is the dense terminal index of a terminal node id.
    @raise Invalid_argument if [node] is not a terminal. *)
val dst_index : t -> int -> int

(** [set_next t ~node ~dst ~channel] routes traffic for terminal [dst]
    standing at [node] into [channel].
    @raise Invalid_argument if [channel] does not leave [node] or [dst] is
    not a terminal. *)
val set_next : t -> node:int -> dst:int -> channel:int -> unit

(** [next t ~node ~dst] is the forwarding entry, or [None] if unset. *)
val next : t -> node:int -> dst:int -> int option

(** [path t ~src ~dst] follows the table from terminal [src] to terminal
    [dst]. [None] if an entry is missing or a forwarding loop is hit
    (a loop-free walk takes at most [num_nodes - 1] hops; reaching that
    bound without arriving proves a loop). [Some [||]] iff [src = dst]. *)
val path : t -> src:int -> dst:int -> Path.t option

(** {1 Route-store integration}

    The canonical pair-id scheme for a forwarding table is
    [src_index * num_terminals + dst_index] over the graph's dense
    terminal indices — the encoding of {!Deadlock.Route_store.Pair}. *)

(** [num_pairs t] is [num_terminals ^ 2], the store capacity covering
    every ordered pair (diagonal included but left absent). *)
val num_pairs : t -> int

(** [pair_id t ~src ~dst] is the pair id of two terminal node ids. *)
val pair_id : t -> src:int -> dst:int -> int

(** [pair_of_id t id] decodes a pair id back to terminal node ids. *)
val pair_of_id : t -> int -> int * int

(** [path_into t store ~pair ~src ~dst] streams the forwarding walk for
    [src -> dst] directly into [store] under [pair] — no intermediate
    path array. Returns [false] (store unchanged for that pair) if an
    entry is missing or a loop is hit. [src = dst] stores the empty
    path. *)
val path_into : t -> Deadlock.Route_store.t -> pair:int -> src:int -> dst:int -> bool

(** [to_store t] walks every ordered pair of distinct terminals into a
    fresh arena of capacity {!num_pairs}, pair ids as above. [Error]
    names the first pair with no loop-free route. *)
val to_store : t -> (Deadlock.Route_store.t, string) result

(** [iter_pairs t f] calls [f ~src ~dst path] for every ordered pair of
    distinct terminals, in a deterministic order.
    @raise Failure if some pair has no path. *)
val iter_pairs : t -> (src:int -> dst:int -> Path.t -> unit) -> unit

(** {1 Virtual layers} *)

(** Layer of the route [src -> dst] (terminal node ids); 0 if never set. *)
val layer : t -> src:int -> dst:int -> int

val set_layer : t -> src:int -> dst:int -> int -> unit

(** Number of virtual layers the assignment uses ([>= 1]). *)
val num_layers : t -> int

val set_num_layers : t -> int -> unit

(** {1 Diffing} *)

type diff = {
  dsts_changed : int;  (** destinations with at least one rewritten entry *)
  entries_changed : int;  (** total [(node, dst)] entries that differ *)
  per_dst : (int * int) array;
      (** (terminal id, changed entries) for each changed destination, in
          terminal order *)
}

(** [diff a b] compares the forwarding entries of two tables over fabrics
    with identical node and terminal ids — e.g. before and after an
    id-stable topology event ({!Netgraph.Degrade.disable_cable}). The
    per-destination counts are what a subnet manager would push to each
    switch on a table swap.
    @raise Invalid_argument if node counts or terminal ids differ. *)
val diff : t -> t -> diff

val pp_diff : Format.formatter -> diff -> unit

(** {1 Validation} *)

type stats = {
  pairs : int;  (** routed ordered pairs *)
  max_hops : int;
  avg_hops : float;
  minimal : bool;  (** every route has min-hop length *)
}

(** Check that every ordered terminal pair has a loop-free path and collect
    statistics. [Error msg] names the first offending pair. *)
val validate : t -> (stats, string) result

val pp_stats : Format.formatter -> stats -> unit
