open Netgraph

type t = {
  graph : Graph.t;
  algorithm : string;
  next : int array array; (* node id -> terminal index -> channel id or -1 *)
  mutable layers : Bytes.t array option; (* terminal index -> terminal index -> layer *)
  mutable num_layers : int;
  index_of : int array; (* node id -> terminal index or -1 *)
}

let create graph ~algorithm =
  let n = Graph.num_nodes graph in
  let terminals = Graph.terminals graph in
  let nt = Array.length terminals in
  let index_of = Array.make n (-1) in
  Array.iteri (fun i tid -> index_of.(tid) <- i) terminals;
  { graph; algorithm; next = Array.init n (fun _ -> Array.make nt (-1)); layers = None; num_layers = 1; index_of }

let graph t = t.graph

let algorithm t = t.algorithm

let dst_index t node =
  let i = t.index_of.(node) in
  if i < 0 then invalid_arg "Ftable.dst_index: not a terminal";
  i

let set_next t ~node ~dst ~channel =
  let c = Graph.channel t.graph channel in
  if c.Channel.src <> node then invalid_arg "Ftable.set_next: channel does not leave node";
  t.next.(node).(dst_index t dst) <- channel

let next t ~node ~dst =
  let c = t.next.(node).(dst_index t dst) in
  if c < 0 then None else Some c

(* A loop-free walk visits distinct nodes, so it takes at most
   num_nodes - 1 hops; the destination test precedes the bound test, so a
   Hamiltonian-length route still resolves while hop num_nodes proves a
   forwarding loop. *)
let hop_limit t = Graph.num_nodes t.graph - 1

let path t ~src ~dst =
  if src = dst then Some [||]
  else begin
    let di = dst_index t dst in
    let limit = hop_limit t in
    let rec follow node acc steps =
      if node = dst then Some (Array.of_list (List.rev acc))
      else if steps >= limit then None (* forwarding loop *)
      else
        let c = t.next.(node).(di) in
        if c < 0 then None
        else follow (Graph.channel t.graph c).Channel.dst (c :: acc) (steps + 1)
    in
    follow src [] 0
  end

let num_pairs t =
  let nt = Graph.num_terminals t.graph in
  nt * nt

let pair_id t ~src ~dst =
  let nt = Graph.num_terminals t.graph in
  Route_store.Pair.encode ~num_terminals:nt ~src_index:(dst_index t src) ~dst_index:(dst_index t dst)

let pair_of_id t id =
  let terminals = Graph.terminals t.graph in
  let si, di = Route_store.Pair.decode ~num_terminals:(Array.length terminals) id in
  (terminals.(si), terminals.(di))

let path_into t store ~pair ~src ~dst =
  if src = dst then begin
    Route_store.set_path store ~pair [||];
    true
  end
  else begin
    let di = dst_index t dst in
    let limit = hop_limit t in
    Route_store.begin_path store ~pair;
    let rec follow node steps =
      if node = dst then begin
        Route_store.commit_path store;
        true
      end
      else if steps >= limit then begin
        Route_store.abort_path store;
        false
      end
      else
        let c = t.next.(node).(di) in
        if c < 0 then begin
          Route_store.abort_path store;
          false
        end
        else begin
          Route_store.push store c;
          follow (Graph.channel t.graph c).Channel.dst (steps + 1)
        end
    in
    follow src 0
  end

let to_store t =
  let terminals = Graph.terminals t.graph in
  let nt = Array.length terminals in
  let store = Route_store.create t.graph ~capacity:(nt * nt) in
  let failure = ref None in
  Array.iteri
    (fun si src ->
      if !failure = None then
        Array.iteri
          (fun di dst ->
            if si <> di && !failure = None then
              let pair = (si * nt) + di in
              if not (path_into t store ~pair ~src ~dst) then
                failure := Some (Printf.sprintf "no loop-free route %d -> %d" src dst))
          terminals)
    terminals;
  match !failure with
  | Some msg -> Error msg
  | None -> Ok store

let iter_pairs t f =
  let terminals = Graph.terminals t.graph in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst then
            match path t ~src ~dst with
            | Some p -> f ~src ~dst p
            | None -> failwith (Printf.sprintf "Ftable.iter_pairs: no route %d -> %d" src dst))
        terminals)
    terminals

let ensure_layers t =
  match t.layers with
  | Some l -> l
  | None ->
    let nt = Graph.num_terminals t.graph in
    let l = Array.init nt (fun _ -> Bytes.make (max nt 1) '\000') in
    t.layers <- Some l;
    l

let layer t ~src ~dst =
  match t.layers with
  | None -> 0
  | Some l -> Char.code (Bytes.get l.(dst_index t src) (dst_index t dst))

let set_layer t ~src ~dst vl =
  if vl < 0 || vl > 255 then invalid_arg "Ftable.set_layer: layer out of range";
  let l = ensure_layers t in
  Bytes.set l.(dst_index t src) (dst_index t dst) (Char.chr vl)

let num_layers t = t.num_layers

let set_num_layers t n =
  if n < 1 then invalid_arg "Ftable.set_num_layers";
  t.num_layers <- n

type diff = {
  dsts_changed : int;
  entries_changed : int;
  per_dst : (int * int) array;
}

let diff a b =
  let ga = a.graph and gb = b.graph in
  if Graph.num_nodes ga <> Graph.num_nodes gb then invalid_arg "Ftable.diff: node count mismatch";
  let ta = Graph.terminals ga and tb = Graph.terminals gb in
  if ta <> tb then invalid_arg "Ftable.diff: terminal sets differ";
  let n = Graph.num_nodes ga in
  let per_dst = ref [] and entries = ref 0 in
  Array.iteri
    (fun di dst ->
      let changed = ref 0 in
      for u = 0 to n - 1 do
        if a.next.(u).(di) <> b.next.(u).(di) then incr changed
      done;
      if !changed > 0 then begin
        per_dst := (dst, !changed) :: !per_dst;
        entries := !entries + !changed
      end)
    ta;
  let per_dst = Array.of_list (List.rev !per_dst) in
  { dsts_changed = Array.length per_dst; entries_changed = !entries; per_dst }

let pp_diff ppf d =
  Format.fprintf ppf "%d destination(s) changed, %d entries rewritten" d.dsts_changed d.entries_changed

type stats = {
  pairs : int;
  max_hops : int;
  avg_hops : float;
  minimal : bool;
}

let validate t =
  let g = t.graph in
  let terminals = Graph.terminals g in
  let pairs = ref 0 and max_hops = ref 0 and total_hops = ref 0 and minimal = ref true in
  let failure = ref None in
  Array.iter
    (fun dst ->
      if !failure = None then begin
        (* Hop distances for minimality are measured against BFS on the
           reversed graph (distance from every node TO dst). *)
        let dist = Array.make (Graph.num_nodes g) max_int in
        let queue = Queue.create () in
        dist.(dst) <- 0;
        Queue.add dst queue;
        while not (Queue.is_empty queue) do
          let v = Queue.take queue in
          Array.iter
            (fun c ->
              let u = (Graph.channel g c).Channel.src in
              if dist.(u) = max_int then begin
                dist.(u) <- dist.(v) + 1;
                Queue.add u queue
              end)
            (Graph.in_channels g v)
        done;
        Array.iter
          (fun src ->
            if src <> dst && !failure = None then
              match path t ~src ~dst with
              | None -> failure := Some (Printf.sprintf "no loop-free route %d -> %d" src dst)
              | Some p ->
                if not (Path.is_consistent g p) then
                  failure := Some (Printf.sprintf "inconsistent path %d -> %d" src dst)
                else begin
                  let hops = Path.length p in
                  incr pairs;
                  total_hops := !total_hops + hops;
                  if hops > !max_hops then max_hops := hops;
                  if hops > dist.(src) then minimal := false
                end)
          terminals
      end)
    terminals;
  match !failure with
  | Some msg -> Error msg
  | None ->
    Ok
      {
        pairs = !pairs;
        max_hops = !max_hops;
        avg_hops = (if !pairs = 0 then 0.0 else float_of_int !total_hops /. float_of_int !pairs);
        minimal = !minimal;
      }

let pp_stats ppf s =
  Format.fprintf ppf "pairs=%d max_hops=%d avg_hops=%.2f minimal=%b" s.pairs s.max_hops s.avg_hops s.minimal
