(** Batched-snapshot destination loop: the common driver of the
    domain-parallel table fills (SSSP, MinHop, Up*/Down* — DESIGN.md
    section 12). Destinations are processed in batches; before each
    batch, [freeze] snapshots the shared balancing state; within a batch
    every destination is routed against that frozen snapshot on the
    pool's domains; after the batch, [merge] folds each worker's
    accumulated contributions back into the shared state, in worker-slot
    order, before the next snapshot is taken.

    With [batch = 1] the loop is observably identical to the sequential
    per-destination recurrence (a snapshot of one destination's worth of
    state is always current). For any fixed [batch], the result is
    independent of the pool size: destinations only read the snapshot,
    contributions are per-destination sums merged with commutative
    addition, and forwarding entries live in per-destination table
    columns. *)

(** [effective_workers ?cost ~pool ~batch ~items ()] is the number of
    workers a batched run over [items] destinations will actually use:
    the pool size clamped by the hardware domain count and the per-batch
    item count, and forced to 1 when the per-batch work
    ([items_per_batch x cost], with [cost] the caller's per-item work
    proxy — typically the channel count) is too small to amortise the
    pool dispatch handshake. A result [<= 1] means {!run} executes
    inline on the caller; engines use the same predicate to skip
    snapshot copies entirely. Always the pool size when auto sizing is
    off. *)
val effective_workers :
  cost:int -> pool:'s Parallel.Pool.t -> batch:int -> items:int -> int

(** [set_auto_sizing false] disables pool-aware sizing process-wide:
    every batched run fans out over the full pool regardless of
    hardware, batch width, or work size. Results are identical either
    way; the switch exists so determinism tests exercise the real
    fan-out path even on single-domain machines. Default: enabled. *)
val set_auto_sizing : bool -> unit

val auto_sizing : unit -> bool

(** [run ~cost ~pool ~batch ~dsts ~freeze ~dest ~merge] routes every
    destination in [dsts], in batches of [batch] (clamped to [>= 1]).
    [dest scratch dst] routes one destination using the worker's own
    scratch; its [Error] stops the loop after the current batch, and the
    error returned is the one of the lowest destination index, as a
    sequential scan would find it. Exceptions from [dest] propagate.

    When {!effective_workers} (given the same [cost]) is [<= 1] the
    whole run executes on the calling domain against the pool's slot-0
    scratch — identical snapshots, merges, and results, minus the
    dispatch overhead. *)
val run :
  cost:int ->
  pool:'s Parallel.Pool.t ->
  batch:int ->
  dsts:int array ->
  freeze:(unit -> unit) ->
  dest:('s -> int -> (unit, string) result) ->
  merge:('s -> unit) ->
  (unit, string) result
