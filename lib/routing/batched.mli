(** Batched-snapshot destination loop: the common driver of the
    domain-parallel table fills (SSSP, MinHop, Up*/Down* — DESIGN.md
    section 12). Destinations are processed in batches; before each
    batch, [freeze] snapshots the shared balancing state; within a batch
    every destination is routed against that frozen snapshot on the
    pool's domains; after the batch, [merge] folds each worker's
    accumulated contributions back into the shared state, in worker-slot
    order, before the next snapshot is taken.

    With [batch = 1] the loop is observably identical to the sequential
    per-destination recurrence (a snapshot of one destination's worth of
    state is always current). For any fixed [batch], the result is
    independent of the pool size: destinations only read the snapshot,
    contributions are per-destination sums merged with commutative
    addition, and forwarding entries live in per-destination table
    columns. *)

(** [run ~pool ~batch ~dsts ~freeze ~dest ~merge] routes every
    destination in [dsts], in batches of [batch] (clamped to [>= 1]).
    [dest scratch dst] routes one destination using the worker's own
    scratch; its [Error] stops the loop after the current batch, and the
    error returned is the one of the lowest destination index, as a
    sequential scan would find it. Exceptions from [dest] propagate. *)
val run :
  pool:'s Parallel.Pool.t ->
  batch:int ->
  dsts:int array ->
  freeze:(unit -> unit) ->
  dest:('s -> int -> (unit, string) result) ->
  merge:('s -> unit) ->
  (unit, string) result
