(* Forwarding is a pure function of (current switch coordinate, destination
   switch coordinate): find the lowest-index dimension where they differ
   and step toward the destination, wrapping when the torus direction is
   shorter (ties go the positive way). Because it is a pure function, the
   per-destination fills share no state at all and parallelize with no
   snapshot; tables are identical for any domain count. *)

let step dims wrap cur goal d =
  let size = dims.(d) in
  let fwd = (goal - cur + size) mod size in
  let back = (cur - goal + size) mod size in
  if wrap.(d) && size > 2 then if fwd <= back then (cur + 1) mod size else (cur + size - 1) mod size
  else if goal > cur then cur + 1
  else cur - 1

(* Find the channel from switch [u] to switch [v] (first cable). *)
let channel_between g u v =
  let found = ref (-1) in
  Array.iter
    (fun c -> if !found < 0 && (Graph.channel g c).Channel.dst = v then found := c)
    (Graph.out_channels g u);
  !found

let switch_of_terminal g t = (Graph.channel g (Graph.out_channels g t).(0)).Channel.dst

let route_destination g coords ~dims ~wrap ~ndims ~ft ~dst =
  let n = Graph.num_nodes g in
  let error = ref None in
  let fail fmt = Format.kasprintf (fun s -> if !error = None then error := Some s) fmt in
  let dst_sw = switch_of_terminal g dst in
  let goal = Coords.get coords dst_sw in
  let u = ref 0 in
  while !error = None && !u < n do
    let u0 = !u in
    if u0 <> dst then
      if Graph.is_terminal g u0 then
        Ftable.set_next ft ~node:u0 ~dst ~channel:(Graph.out_channels g u0).(0)
      else if u0 = dst_sw then begin
        (* Deliver to the attached terminal. *)
        let c = channel_between g u0 dst in
        if c < 0 then fail "dor: lost terminal channel at %d" u0
        else Ftable.set_next ft ~node:u0 ~dst ~channel:c
      end
      else begin
        let cur = Coords.get coords u0 in
        let rec first_diff d =
          if d >= ndims then -1 else if cur.(d) <> goal.(d) then d else first_diff (d + 1)
        in
        let d = first_diff 0 in
        if d < 0 then fail "dor: distinct switches share coordinate (%d, %d)" u0 dst_sw
        else begin
          let next_coord = Array.copy cur in
          next_coord.(d) <- step dims wrap cur.(d) goal.(d) d;
          match Coords.node_at coords next_coord with
          | exception Not_found -> fail "dor: no switch at neighbour coordinate from %d" u0
          | v ->
            let c = channel_between g u0 v in
            if c < 0 then fail "dor: missing grid channel %d -> %d" u0 v
            else Ftable.set_next ft ~node:u0 ~dst ~channel:c
        end
      end;
    incr u
  done;
  match !error with
  | Some msg -> Error msg
  | None -> Ok ()

(* [kernel] is accepted for registry/CLI uniformity but unused:
   dimension-ordered routing is coordinate arithmetic. *)
let route ?(domains = 1) ?kernel:(_ : Spf.kind option) g coords =
  let ft = Ftable.create g ~algorithm:"dor" in
  let dims = Coords.dims coords and wrap = Coords.wrap coords in
  let ndims = Array.length dims in
  let missing = ref None in
  Array.iter
    (fun sw ->
      if !missing = None && not (Coords.mem coords sw) then
        missing := Some (Printf.sprintf "dor: switch %d has no coordinate" sw))
    (Graph.switches g);
  let result =
    match !missing with
    | Some msg -> Error msg
    | None ->
      let dsts = Graph.terminals g in
      let nt = Array.length dsts in
      if domains <= 1 || nt <= 1 then begin
        let rec go i =
          if i >= nt then Ok ()
          else
            match route_destination g coords ~dims ~wrap ~ndims ~ft ~dst:dsts.(i) with
            | Ok () -> go (i + 1)
            | Error _ as e -> e
        in
        go 0
      end
      else
        Parallel.Pool.with_pool ~domains
          (fun _slot -> ())
          (fun pool ->
            Batched.run ~cost:(Graph.num_channels g) ~pool ~batch:nt ~dsts
              ~freeze:(fun () -> ())
              ~dest:(fun () dst -> route_destination g coords ~dims ~wrap ~ndims ~ft ~dst)
              ~merge:(fun () -> ()))
  in
  match result with
  | Error _ as e -> e
  | Ok () -> Ok ft
