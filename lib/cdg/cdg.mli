(** Channel dependency graphs (Dally & Seitz): nodes are the fabric's
    directed channels; a directed edge (c1, c2) exists iff some route
    traverses c1 immediately followed by c2. A routing is deadlock-free if
    its CDG is acyclic (the sufficient condition the paper builds on).

    Each edge carries the multiset of routes ("pairs") inducing it — the
    bookkeeping the paper's offline algorithm needs to relocate all routes
    of a broken edge to the next virtual layer. Pair identifiers are
    caller-chosen dense integers.

    Representation: a CSR (compressed-sparse-row) adjacency over channels
    — [row_ptr]/[col]/[count] int arrays built in one pass from a
    {!Route_store} by {!of_store}, with pair membership stored as arena
    slices — plus a hashtable overlay for edges added afterwards. The
    overlay folds back into the CSR base on demand ({!compact}; large
    overlays compact automatically), so weakest-edge sweeps and
    reachability probes stay on cache-friendly array scans. Membership is
    exact: {!edge_pairs} reports precisely the live inducing pairs. *)

type t

(** [create g] makes an empty CDG. Allocates O(channels) ints and no
    per-channel tables; edges added before any {!of_store}/{!compact} live
    in the overlay. *)
val create : Graph.t -> t

(** [of_store ?filter ?pairs store] builds the CDG of every present pair
    of [store] ([filter] restricts to pairs satisfying it — e.g. one
    virtual layer) straight into CSR form, in one pass over the
    dependencies. [pairs] replaces the full-capacity scan with an explicit
    id list (each present, no duplicates) — how the SCC layer engine
    streams just-evicted pairs into the next layer's build. *)
val of_store : ?filter:(int -> bool) -> ?pairs:int array -> Route_store.t -> t

(** Fold the overlay (and any tombstoned membership slots) back into a
    fresh CSR base. Semantically a no-op; scans get faster. *)
val compact : t -> unit

val graph : t -> Graph.t

(** [add_path t ~pair p] inserts every dependency of path [p], crediting
    [pair]. A pair must not be added to the same CDG twice. Paths shorter
    than two channels induce nothing but still count as carried paths. *)
val add_path : t -> pair:int -> Path.t -> unit

(** [remove_path t ~pair p] removes [pair]'s membership from every
    dependency of [p]. The caller must only remove paths previously added.
    @raise Invalid_argument if an edge of [p] is not present or [pair] is
    not among its inducers. *)
val remove_path : t -> pair:int -> Path.t -> unit

(** {!add_path} / {!remove_path} reading the path from a store slice
    instead of a materialized array. *)
val add_pair : t -> Route_store.t -> pair:int -> unit

val remove_pair : t -> Route_store.t -> pair:int -> unit

(** [live t ~c1 ~c2] is [true] iff the edge currently has a positive
    count. *)
val live : t -> c1:int -> c2:int -> bool

(** Current number of inducing routes of an edge (0 if absent). *)
val edge_count : t -> c1:int -> c2:int -> int

(** Exactly the pairs currently inducing a live edge (a multiset, in
    unspecified order); [[]] if the edge is dead. *)
val edge_pairs : t -> c1:int -> c2:int -> int list

(** Snapshot of the live successor channels of [c] (fresh array). *)
val successors : t -> int -> int array

(** Slot-level access to the CSR base, for allocation-free DFS cursors
    ({!Cycle}). [slot_range t c] is the half-open slot interval of [c]'s
    base row; [slot_col]/[slot_live] read one slot. Slots cover the base
    only — overlay successors of [c] must be fetched separately with
    {!overlay_successors} — and ranges are invalidated by {!compact}. *)
val slot_range : t -> int -> int * int

val slot_col : t -> int -> int

val slot_live : t -> int -> bool

(** Live inducing-route count of one base slot (0 = dead edge). *)
val slot_count : t -> int -> int

(** [iter_slot_pairs t sl f] calls [f] on each live inducing pair of base
    slot [sl], without allocating. Like {!edge_pairs} this is a multiset;
    the order is unspecified but deterministic for an untouched base. *)
val iter_slot_pairs : t -> int -> (int -> unit) -> unit

(** Snapshot of [c]'s overlay successors; the shared empty array when the
    overlay holds none (the common case after {!of_store}/{!compact}). *)
val overlay_successors : t -> int -> int array

(** [iter_successors t c f] calls [f] on each live successor of [c]
    without allocating. *)
val iter_successors : t -> int -> (int -> unit) -> unit

(** Short-circuiting successor scans, for DFS probes over the CSR rows. *)
val exists_successor : t -> int -> (int -> bool) -> bool

val for_all_successors : t -> int -> (int -> bool) -> bool

(** Number of live edges. *)
val num_edges : t -> int

(** Number of paths currently carried (added minus removed). *)
val num_paths : t -> int

val is_empty : t -> bool

(** Number of live edges currently in the overlay rather than the CSR
    base (0 right after {!of_store} or {!compact}). *)
val overlay_edges : t -> int

(** [iter_edges t f] calls [f c1 c2 count] for every live edge. *)
val iter_edges : t -> (int -> int -> int -> unit) -> unit
