let is_acyclic cdg =
  let g = Cdg.graph cdg in
  let m = Graph.num_channels g in
  let indeg = Array.make m 0 in
  Cdg.iter_edges cdg (fun _ c2 _ -> indeg.(c2) <- indeg.(c2) + 1);
  let queue = Queue.create () in
  for c = 0 to m - 1 do
    if indeg.(c) = 0 then Queue.add c queue
  done;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let c = Queue.take queue in
    incr seen;
    Cdg.iter_successors cdg c (fun c2 ->
        indeg.(c2) <- indeg.(c2) - 1;
        if indeg.(c2) = 0 then Queue.add c2 queue)
  done;
  !seen = m

let layers_acyclic_store ?(domains = 1) store ~layer_of_path ~num_layers =
  if Array.length layer_of_path <> Route_store.capacity store then
    invalid_arg "Acyclic.layers_acyclic_store: length mismatch";
  let check vl = is_acyclic (Cdg.of_store ~filter:(fun pr -> layer_of_path.(pr) = vl) store) in
  Parallel.for_all ~domains:(min domains num_layers) check (Array.init num_layers Fun.id)

let layers_acyclic ?domains g ~paths ~layer_of_path ~num_layers =
  if Array.length paths <> Array.length layer_of_path then
    invalid_arg "Acyclic.layers_acyclic: length mismatch";
  layers_acyclic_store ?domains (Route_store.of_paths g paths) ~layer_of_path ~num_layers
