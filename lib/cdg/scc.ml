(* Iterative Tarjan over the live edges of a CDG. Frames walk the CSR
   base rows by slot index plus an overlay-successor snapshot (same
   cursor scheme as {!Cycle}); liveness is checked at consumption, so a
   compacted CDG condenses on pure array scans. The CDG must not be
   mutated while [of_cdg] runs. *)

type t = {
  comp_of : int array;
  num_comps : int;
  nontrivial : int array array;
}

type frame = {
  node : int;
  mutable sl : int; (* next base slot to examine *)
  sl_hi : int;
  over : int array; (* overlay successors at push time *)
  mutable oc : int;
}

let of_cdg cdg =
  let m = Graph.num_channels (Cdg.graph cdg) in
  let index = Array.make m (-1) in
  let lowlink = Array.make m 0 in
  let on_stack = Array.make m false in
  let self_loop = Array.make m false in
  let comp_of = Array.make m (-1) in
  let next_index = ref 0 in
  let num_comps = ref 0 in
  let tstack = ref [] in
  let dfs = ref [] in
  let push node =
    index.(node) <- !next_index;
    lowlink.(node) <- !next_index;
    incr next_index;
    tstack := node :: !tstack;
    on_stack.(node) <- true;
    let lo, hi = Cdg.slot_range cdg node in
    dfs := { node; sl = lo; sl_hi = hi; over = Cdg.overlay_successors cdg node; oc = 0 } :: !dfs
  in
  let close_root node =
    let c = !num_comps in
    incr num_comps;
    let closing = ref true in
    while !closing do
      match !tstack with
      | [] -> assert false
      | v :: rest ->
        tstack := rest;
        on_stack.(v) <- false;
        comp_of.(v) <- c;
        if v = node then closing := false
    done
  in
  for root = 0 to m - 1 do
    if index.(root) = -1 then begin
      push root;
      while !dfs <> [] do
        let f = List.hd !dfs in
        (* Advance the cursor to the next live successor, if any. *)
        let next = ref (-1) in
        let scanning = ref true in
        while !scanning do
          if f.sl < f.sl_hi then begin
            let sl = f.sl in
            f.sl <- f.sl + 1;
            if Cdg.slot_live cdg sl then begin
              next := Cdg.slot_col cdg sl;
              scanning := false
            end
          end
          else if f.oc < Array.length f.over then begin
            let s = f.over.(f.oc) in
            f.oc <- f.oc + 1;
            if Cdg.live cdg ~c1:f.node ~c2:s then begin
              next := s;
              scanning := false
            end
          end
          else scanning := false
        done;
        if !next >= 0 then begin
          let s = !next in
          if s = f.node then self_loop.(s) <- true
          else if index.(s) = -1 then push s
          else if on_stack.(s) then lowlink.(f.node) <- min lowlink.(f.node) index.(s)
        end
        else begin
          dfs := List.tl !dfs;
          if lowlink.(f.node) = index.(f.node) then close_root f.node;
          match !dfs with
          | parent :: _ -> lowlink.(parent.node) <- min lowlink.(parent.node) lowlink.(f.node)
          | [] -> ()
        end
      done
    end
  done;
  let sizes = Array.make !num_comps 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp_of;
  let members = Array.map (fun n -> Array.make n 0) sizes in
  let fill = Array.make !num_comps 0 in
  (* Channels are placed in ascending order, so every member array comes
     out sorted, and the first member of a component is its smallest —
     collecting components at that moment orders them by smallest member. *)
  let order = ref [] in
  for v = 0 to m - 1 do
    let c = comp_of.(v) in
    if fill.(c) = 0 && (sizes.(c) >= 2 || self_loop.(v)) then order := c :: !order;
    members.(c).(fill.(c)) <- v;
    fill.(c) <- fill.(c) + 1
  done;
  let nontrivial = Array.of_list (List.rev_map (fun c -> members.(c)) !order) in
  { comp_of; num_comps = !num_comps; nontrivial }
