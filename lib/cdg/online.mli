(** Online (path-at-a-time) virtual-layer assignment, as used by LASH and
    by the paper's first, slower DFSSSP variant: each route is placed into
    the lowest layer where its dependencies close no cycle; a fresh layer
    is opened when none fits. Requires a cycle check per path — the
    O(|N|^2 (|C|+|E|)) cost the offline algorithm avoids. *)

type outcome = {
  layer_of_path : int array;  (** pair id -> virtual layer; -1 for absent pairs *)
  layers_used : int;
  cycle_checks : int;  (** number of cycle probes performed *)
}

(** Incremental cycle-check engine:
    - [`Dfs] (default): one reachability DFS per fresh dependency — the
      straightforward implementation whose cost the paper complains about;
    - [`Pk]: Pearce–Kelly dynamic topological ordering ({!Pk_order}) —
      only the affected region between the new edge's endpoints is
      visited, which makes the online variant far cheaper on large
      fabrics. Both engines accept and reject exactly the same paths. *)

(** [assign_store ?engine store ~max_layers] places every present pair of
    [store] in id order, reading dependencies from arena slices.
    [layer_of_path] covers the store's full capacity; absent pairs are
    [-1]. *)
val assign_store :
  ?engine:[ `Dfs | `Pk ] -> Route_store.t -> max_layers:int -> (outcome, string) result

(** [assign g ~paths ~max_layers] is {!assign_store} over a store holding
    path [i] under pair id [i]. *)
val assign :
  ?engine:[ `Dfs | `Pk ] ->
  Graph.t ->
  paths:Path.t array ->
  max_layers:int ->
  (outcome, string) result
