(** One arena owning every computed path of a routing: a single flat [int]
    channel buffer plus a per-pair offset/length table. Consumers read
    paths as O(1) slices of the shared buffer instead of materializing a
    fresh [int array] per query — the representation every layer of the
    system (layer assignment, verification, simulation, fabric repair)
    shares since the dense-route-store refactor (DESIGN.md §10).

    A store is created with a fixed pair capacity; pair identifiers are
    caller-chosen dense integers in [[0, capacity)]. Routing code derives
    them from terminal indices via {!Pair}; simulators use flow indices.
    Replacing a pair's path appends the new slice and abandons the old one
    (the arena is append-only; it is sized for write-once workloads). *)

module Pair : sig
  (** Dense pair identifier: [src_index * num_terminals + dst_index] over
      terminal {e indices} (see {!Routing.Ftable.dst_index}). *)
  type id = int

  (** @raise Invalid_argument if an index is outside [[0, num_terminals)]. *)
  val encode : num_terminals:int -> src_index:int -> dst_index:int -> id

  (** [decode ~num_terminals id] is [(src_index, dst_index)]. *)
  val decode : num_terminals:int -> id -> int * int
end

type t

(** [create g ~capacity] makes an empty store with [capacity] pair slots,
    all absent. @raise Invalid_argument if [capacity < 0]. *)
val create : Graph.t -> capacity:int -> t

(** [of_paths g paths] stores path [i] under pair id [i]. *)
val of_paths : Graph.t -> Path.t array -> t

val graph : t -> Graph.t

(** Number of pair slots (present or absent). *)
val capacity : t -> int

(** Number of pairs currently holding a path. *)
val num_paths : t -> int

(** Whether the pair currently holds a path. *)
val mem : t -> pair:int -> bool

(** {1 Producing}

    Paths are either written whole with {!set_path} or streamed channel by
    channel between {!begin_path} and {!commit_path} — the streaming form
    lets {!Routing.Ftable} walk forwarding tables straight into the arena
    with no intermediate list. At most one path may be under construction
    at a time. *)

(** [set_path t ~pair p] copies [p] into the arena (replacing any previous
    path of [pair]). *)
val set_path : t -> pair:int -> Path.t -> unit

val begin_path : t -> pair:int -> unit
val push : t -> int -> unit
val commit_path : t -> unit

(** Drop the path under construction; the pair is left absent. *)
val abort_path : t -> unit

(** Mark the pair absent (its arena slice is abandoned). *)
val remove : t -> pair:int -> unit

(** {1 Reading} *)

(** Slice length of the pair's path.
    @raise Invalid_argument if the pair is absent. *)
val length : t -> pair:int -> int

(** Slice offset into {!buffer}.
    @raise Invalid_argument if the pair is absent. *)
val offset : t -> pair:int -> int

(** [get t ~pair i] is channel [i] of the pair's path. *)
val get : t -> pair:int -> int -> int

(** The shared arena. Hot loops index it directly as
    [buffer.(offset + hop)] — zero allocation per lookup. The array is
    replaced when the arena grows, so re-fetch it after any write. *)
val buffer : t -> int array

(** Fresh copy of the pair's path (for consumers that outlive the store). *)
val to_path : t -> pair:int -> Path.t

(** [iter t ~pair f] calls [f] on each channel of the pair's path. *)
val iter : t -> pair:int -> (int -> unit) -> unit

(** [iter_deps t ~pair f] calls [f c1 c2] on each consecutive channel pair
    (the path's CDG dependencies). *)
val iter_deps : t -> pair:int -> (int -> int -> unit) -> unit

(** [iter_pairs t f] calls [f pair] for every present pair, in id order. *)
val iter_pairs : t -> (int -> unit) -> unit

(** Total channels over all present paths. *)
val total_channels : t -> int
