(** Strongly-connected-component condensation of a {!Cdg.t} (iterative
    Tarjan, O(V+E)) — the front end of the SCC layer-assignment engine
    (DESIGN.md §17). Any directed cycle of a CDG lies entirely inside one
    SCC, so condensing once per layer certifies every singleton component
    acyclic for free and confines cycle breaking to the non-trivial
    components, which are mutually independent. *)

type t = {
  comp_of : int array;  (** channel -> component id, [0 .. num_comps) *)
  num_comps : int;
  nontrivial : int array array;
      (** members of each component that can still hold a cycle — size
          >= 2, or a singleton with a self-dependency. Members sorted
          ascending; components ordered by smallest member. Both orders
          (and [comp_of]) are deterministic for a given CDG. *)
}

(** [of_cdg cdg] condenses the live edges of [cdg] (base and overlay).
    Channels with no live edges form singleton components. *)
val of_cdg : Cdg.t -> t
