let log_src = Logs.Src.create "deadlock.layers" ~doc:"offline virtual-layer assignment (Algorithm 2)"

module Log = (val Logs.src_log log_src : Logs.LOG)

type outcome = {
  layer_of_path : int array;
  layers_used : int;
  cycles_broken : int;
}

let c_assignments = Obs.Registry.counter "layers.assignments" ~desc:"offline layer assignments run"

let c_cycles = Obs.Registry.counter "layers.cycles_broken" ~desc:"CDG cycles broken across all assignments"

let t_assign = Obs.Registry.timer "layers.assign" ~desc:"seconds per offline layer assignment"

let assign_store_inner store ~max_layers ~heuristic =
  let g = Route_store.graph store in
  let layer_of_path = Array.make (Route_store.capacity store) (-1) in
  Route_store.iter_pairs store (fun pr -> layer_of_path.(pr) <- 0);
  let cycles_broken = ref 0 in
  let cdgs = Array.make max_layers None in
  let cdg i =
    match cdgs.(i) with
    | Some c -> c
    | None ->
      let c = Cdg.create g in
      cdgs.(i) <- Some c;
      c
  in
  cdgs.(0) <- Some (Cdg.of_store store);
  let error = ref None in
  let vl = ref 0 in
  while !error = None && !vl < max_layers && cdgs.(!vl) <> None do
    let current = cdg !vl in
    (* Layers above 0 were filled through {!Cdg.add_pair}, i.e. the
       overlay; fold them into a CSR base so the sweep runs on array
       scans (and {!Cycle}'s slot cursors stay valid: nothing below adds
       to or compacts [current] while [search] is alive). *)
    if Cdg.overlay_edges current > 0 then Cdg.compact current;
    let search = Cycle.create current in
    let sweeping = ref true in
    while !sweeping && !error = None do
      match Cycle.find_cycle search with
      | None -> sweeping := false
      | Some cycle ->
        incr cycles_broken;
        if !vl + 1 >= max_layers then
          error :=
            Some
              (Printf.sprintf "cycle remains in layer %d and no layer is left (max %d)" !vl max_layers)
        else begin
          let c1, c2 = Heuristic.choose heuristic current cycle in
          (* membership is exact, so every inducing pair lives here; the
             multiset may repeat a pair, hence the dedup *)
          let movers = List.sort_uniq compare (Cdg.edge_pairs current ~c1 ~c2) in
          Log.debug (fun m ->
              m "layer %d: cycle of %d edges; evicting edge (%d,%d) with %d routes" !vl
                (Array.length cycle) c1 c2 (List.length movers));
          let next = cdg (!vl + 1) in
          List.iter
            (fun pr ->
              Cdg.remove_pair current store ~pair:pr;
              Cdg.add_pair next store ~pair:pr;
              layer_of_path.(pr) <- !vl + 1)
            movers;
          Cycle.notify_removed search
        end
    done;
    incr vl
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
    let layers_used = 1 + Array.fold_left max 0 layer_of_path in
    Log.info (fun m ->
        m "assigned %d routes over %d layer(s), breaking %d cycle(s)" (Route_store.num_paths store)
          layers_used !cycles_broken);
    Ok { layer_of_path; layers_used; cycles_broken = !cycles_broken }

let assign_store store ~max_layers ~heuristic =
  if max_layers < 1 then invalid_arg "Layers.assign: max_layers < 1";
  Obs.Counter.incr c_assignments;
  let span =
    Obs.Trace.begin_span "layers.assign" ~attrs:(fun () ->
        [
          ("paths", Obs.Trace.Int (Route_store.num_paths store));
          ("max_layers", Obs.Trace.Int max_layers);
        ])
  in
  let result = Obs.Timer.time t_assign (fun () -> assign_store_inner store ~max_layers ~heuristic) in
  (match result with
  | Ok o ->
    Obs.Counter.incr ~n:o.cycles_broken c_cycles;
    Obs.Trace.end_span span
      ~attrs:
        [
          ("layers_used", Obs.Trace.Int o.layers_used);
          ("cycles_broken", Obs.Trace.Int o.cycles_broken);
        ]
  | Error msg -> Obs.Trace.end_span span ~attrs:[ ("error", Obs.Trace.Str msg) ]);
  result

let assign g ~paths ~max_layers ~heuristic =
  assign_store (Route_store.of_paths g paths) ~max_layers ~heuristic

let balance outcome ~max_layers =
  let used = outcome.layers_used in
  let total = Array.fold_left (fun acc l -> if l >= 0 then acc + 1 else acc) 0 outcome.layer_of_path in
  if max_layers <= used || total = 0 then (Array.copy outcome.layer_of_path, used)
  else begin
    let counts = Array.make used 0 in
    Array.iter (fun l -> if l >= 0 then counts.(l) <- counts.(l) + 1) outcome.layer_of_path;
    (* Apportion the max_layers slots to the original layers proportionally
       to their route counts (largest remainder), at least one slot each. *)
    let total = float_of_int total in
    let slots = Array.make used 1 in
    let assigned = ref used in
    let quota = Array.init used (fun l -> float_of_int counts.(l) /. total *. float_of_int max_layers) in
    (* integer parts beyond the guaranteed 1 *)
    for l = 0 to used - 1 do
      let extra = max 0 (int_of_float quota.(l) - 1) in
      let extra = min extra (max_layers - !assigned) in
      slots.(l) <- slots.(l) + extra;
      assigned := !assigned + extra
    done;
    let order = Array.init used (fun l -> l) in
    Array.sort
      (fun a b ->
        compare (quota.(b) -. Float.of_int slots.(b)) (quota.(a) -. Float.of_int slots.(a)))
      order;
    let i = ref 0 in
    while !assigned < max_layers do
      let l = order.(!i mod used) in
      slots.(l) <- slots.(l) + 1;
      incr assigned;
      incr i
    done;
    (* New layer ids: original layer l owns a contiguous block of slots;
       its routes round-robin over the block. Any subset of an acyclic
       layer is acyclic, and blocks never mix layers. *)
    let base = Array.make used 0 in
    for l = 1 to used - 1 do
      base.(l) <- base.(l - 1) + slots.(l - 1)
    done;
    let seen = Array.make used 0 in
    let fresh =
      Array.map
        (fun l ->
          if l < 0 then -1
          else begin
            let slot = seen.(l) mod slots.(l) in
            seen.(l) <- seen.(l) + 1;
            base.(l) + slot
          end)
        outcome.layer_of_path
    in
    (fresh, max_layers)
  end
