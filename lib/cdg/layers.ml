let log_src = Logs.Src.create "deadlock.layers" ~doc:"offline virtual-layer assignment (Algorithm 2)"

module Log = (val Logs.src_log log_src : Logs.LOG)

type engine =
  [ `Scc
  | `Dfs
  ]

let engine_to_string = function `Scc -> "scc" | `Dfs -> "dfs"

let engine_of_string = function
  | "scc" -> Ok `Scc
  | "dfs" -> Ok `Dfs
  | s -> Error (Printf.sprintf "unknown break engine %S (expected \"scc\" or \"dfs\")" s)

type outcome = {
  layer_of_path : int array;
  layers_used : int;
  cycles_broken : int;
}

let c_assignments = Obs.Registry.counter "layers.assignments" ~desc:"offline layer assignments run"

let c_cycles = Obs.Registry.counter "layers.cycles_broken" ~desc:"CDG cycles broken across all assignments"

let c_evictions =
  Obs.Registry.counter "layers.evictions" ~desc:"CDG edges evicted to a higher layer across all assignments"

let t_assign = Obs.Registry.timer "layers.assign" ~desc:"seconds per offline layer assignment"

(* Stage timers, shared by both engines so benches can diff the split:
   condense = SCC condensation / DFS cycle search, evict = eviction
   planning and pair relocation, rebuild = CDG construction/compaction. *)
let t_condense =
  Obs.Registry.timer "layers.condense" ~desc:"seconds condensing/searching layer CDGs for cycles"

let t_evict = Obs.Registry.timer "layers.evict" ~desc:"seconds planning and applying edge evictions"

let t_rebuild = Obs.Registry.timer "layers.rebuild" ~desc:"seconds building/compacting layer CDGs"

let budget_error vl max_layers =
  Printf.sprintf "cycle remains in layer %d and no layer is left (max %d)" vl max_layers

(* ------------------------------------------------------------------ *)
(* DFS oracle: the paper's one-cycle-at-a-time resumable search.       *)
(* ------------------------------------------------------------------ *)

let assign_store_dfs store ~max_layers ~heuristic =
  let g = Route_store.graph store in
  let layer_of_path = Array.make (Route_store.capacity store) (-1) in
  Route_store.iter_pairs store (fun pr -> layer_of_path.(pr) <- 0);
  let cycles_broken = ref 0 in
  let cdgs = Array.make max_layers None in
  let cdg i =
    match cdgs.(i) with
    | Some c -> c
    | None ->
      let c = Cdg.create g in
      cdgs.(i) <- Some c;
      c
  in
  cdgs.(0) <- Some (Obs.Timer.time t_rebuild (fun () -> Cdg.of_store store));
  let error = ref None in
  let vl = ref 0 in
  while !error = None && !vl < max_layers && cdgs.(!vl) <> None do
    let current = cdg !vl in
    let span =
      Obs.Trace.begin_span "layers.layer" ~attrs:(fun () ->
          [ ("layer", Obs.Trace.Int !vl); ("engine", Obs.Trace.Str "dfs") ])
    in
    (* Layers above 0 were filled through {!Cdg.add_pair}, i.e. the
       overlay; fold them into a CSR base so the sweep runs on array
       scans (and {!Cycle}'s slot cursors stay valid: nothing below adds
       to or compacts [current] while [search] is alive). *)
    if Cdg.overlay_edges current > 0 then Obs.Timer.time t_rebuild (fun () -> Cdg.compact current);
    let search = Cycle.create current in
    let layer_cycles = ref 0 in
    let layer_movers = ref 0 in
    let sweeping = ref true in
    while !sweeping && !error = None do
      match Obs.Timer.time t_condense (fun () -> Cycle.find_cycle search) with
      | None -> sweeping := false
      | Some cycle ->
        incr cycles_broken;
        incr layer_cycles;
        if !vl + 1 >= max_layers then error := Some (budget_error !vl max_layers)
        else begin
          Obs.Timer.time t_evict (fun () ->
              let c1, c2 = Heuristic.choose heuristic current cycle in
              (* membership is exact, so every inducing pair lives here;
                 the multiset may repeat a pair, hence the dedup *)
              let movers = List.sort_uniq compare (Cdg.edge_pairs current ~c1 ~c2) in
              Log.debug (fun m ->
                  m "layer %d: cycle of %d edges; evicting edge (%d,%d) with %d routes" !vl
                    (Array.length cycle) c1 c2 (List.length movers));
              let next = cdg (!vl + 1) in
              layer_movers := !layer_movers + List.length movers;
              List.iter
                (fun pr ->
                  Cdg.remove_pair current store ~pair:pr;
                  Cdg.add_pair next store ~pair:pr;
                  layer_of_path.(pr) <- !vl + 1)
                movers);
          Obs.Timer.time t_condense (fun () -> Cycle.notify_removed search)
        end
    done;
    Obs.Counter.incr ~n:!layer_cycles c_evictions;
    Obs.Trace.end_span span
      ~attrs:
        [ ("evictions", Obs.Trace.Int !layer_cycles); ("movers", Obs.Trace.Int !layer_movers) ];
    incr vl
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
    let layers_used = 1 + Array.fold_left max 0 layer_of_path in
    Ok { layer_of_path; layers_used; cycles_broken = !cycles_broken }

(* ------------------------------------------------------------------ *)
(* SCC engine: condense once per layer, plan evictions per component.  *)
(* ------------------------------------------------------------------ *)

(* The eviction plan of one non-trivial SCC: which pairs leave this
   layer, computed without mutating the shared CDG. *)
type plan = {
  p_evicted : int list; (* in eviction order *)
  p_edges : int; (* edges evicted, one per cycle found *)
}

(* Plan evictions for the non-trivial component [members] of [cdg]
   (whose condensation produced [comp_of]); [local_of] maps each member
   channel to its index in [members]. Reads [cdg] only through the CSR
   base — the caller compacts first — so concurrent planning of disjoint
   components is safe.

   The component's internal edges are mirrored into a local CSR with an
   exact live-inducer count per edge and a (c1, c2) -> edge map over
   just the internal edges, so evicting a pair is a walk of its path
   deps with O(1) count decrements — no tombstone scans in the shared
   structure, and no per-pair bookkeeping for the vast majority of
   pairs that never move. Cycles never leave their SCC (edges removed
   from a digraph cannot merge SCCs), so a resumable cycle DFS confined
   to the component — with the oracle's search order and on-cycle
   heuristic — finds and breaks everything the oracle would, at a
   fraction of the bookkeeping cost. The plan never consults other
   components, so results are deterministic under any domain count. *)
let plan_comp cdg ~store ~comp_of ~local_of ~heuristic members =
  let n = Array.length members in
  let mycomp = comp_of.(members.(0)) in
  let m = Graph.num_channels (Cdg.graph cdg) in
  (* Local CSR over internal live edges: row [li] owns edges
     [deg.(li) .. deg.(li+1) - 1]. *)
  let deg = Array.make (n + 1) 0 in
  Array.iteri
    (fun li v ->
      let lo, hi = Cdg.slot_range cdg v in
      for sl = lo to hi - 1 do
        if Cdg.slot_count cdg sl > 0 && comp_of.(Cdg.slot_col cdg sl) = mycomp then
          deg.(li + 1) <- deg.(li + 1) + 1
      done)
    members;
  for i = 1 to n do
    deg.(i) <- deg.(i) + deg.(i - 1)
  done;
  let ne = deg.(n) in
  let edst = Array.make ne 0 in
  let eslot = Array.make ne 0 in
  let elive = Array.make ne 0 in
  let e_of = Hashtbl.create (2 * ne) in
  let pos = Array.sub deg 0 n in
  Array.iteri
    (fun li v ->
      let lo, hi = Cdg.slot_range cdg v in
      for sl = lo to hi - 1 do
        let cnt = Cdg.slot_count cdg sl in
        if cnt > 0 then begin
          let w = Cdg.slot_col cdg sl in
          if comp_of.(w) = mycomp then begin
            let e = pos.(li) in
            pos.(li) <- e + 1;
            edst.(e) <- local_of.(w);
            eslot.(e) <- sl;
            elive.(e) <- cnt;
            Hashtbl.replace e_of ((v * m) + w) e
          end
        end
      done)
    members;
  let evicted = Hashtbl.create 64 in
  let ev_order = ref [] in
  let edges_evicted = ref 0 in
  (* Evict every still-live pair of edge [e]: replaying a pair's path
     deps decrements exactly the counts its insertion bumped. *)
  let evict_pairs e =
    Cdg.iter_slot_pairs cdg eslot.(e) (fun pr ->
        if not (Hashtbl.mem evicted pr) then begin
          Hashtbl.add evicted pr ();
          ev_order := pr :: !ev_order;
          Route_store.iter_deps store ~pair:pr (fun c1 c2 ->
              match Hashtbl.find_opt e_of ((c1 * m) + c2) with
              | Some e' -> elive.(e') <- elive.(e') - 1
              | None -> ())
        end)
  in
  (* Resumable cycle DFS over the local CSR — the oracle's search order
     and on-cycle heuristic choice ({!Cycle} + {!Heuristic.choose}), but
     every eviction is O(edges of the pair) decrements here instead of
     tombstone scans in the shared CDG. [fedge.(i)] is the live edge the
     stack followed into frame [i]; after an eviction the stack is cut
     at the first dead one, reverting the frames above to white. *)
  let white = 0 and gray = 1 and black = 2 in
  let color = Array.make n white in
  let spos = Array.make n (-1) in
  let fnode = Array.make n 0 in
  let fcur = Array.make n 0 in
  let fedge = Array.make n (-1) in
  let sp = ref 0 in
  let next_root = ref 0 in
  let push li e =
    color.(li) <- gray;
    spos.(li) <- !sp;
    fnode.(!sp) <- li;
    fcur.(!sp) <- deg.(li);
    fedge.(!sp) <- e;
    incr sp
  in
  let searching = ref true in
  while !searching do
    if !sp = 0 then begin
      if !next_root >= n then searching := false
      else if color.(!next_root) = white then push !next_root (-1)
      else incr next_root
    end
    else begin
      let top = !sp - 1 in
      let li = fnode.(top) in
      if fcur.(top) >= deg.(li + 1) then begin
        color.(li) <- black;
        spos.(li) <- -1;
        decr sp
      end
      else begin
        let e = fcur.(top) in
        if elive.(e) = 0 then fcur.(top) <- e + 1
        else begin
          let w = edst.(e) in
          if color.(w) = black then fcur.(top) <- e + 1
          else if color.(w) = white then begin
            fcur.(top) <- e + 1;
            push w e
          end
          else begin
            (* [w] is gray: the cycle is frames [spos.(w) .. top] plus
               the closing edge [e]. Choose exactly as the oracle does —
               cycle order starting at [w], first edge wins ties. *)
            let start = spos.(w) in
            let best = ref (if top > start then fedge.(start + 1) else e) in
            (match heuristic with
            | Heuristic.First_edge -> ()
            | Heuristic.Weakest | Heuristic.Heaviest ->
              let better a b = if heuristic = Heuristic.Weakest then a < b else a > b in
              let best_count = ref elive.(!best) in
              for i = start + 2 to top do
                let c = elive.(fedge.(i)) in
                if better c !best_count then begin
                  best := fedge.(i);
                  best_count := c
                end
              done;
              if top > start && better elive.(e) !best_count then best := e);
            incr edges_evicted;
            evict_pairs !best;
            (* The chosen edge died (and shared pairs may have killed
               others): cut the stack at the first dead edge, as
               {!Cycle.notify_removed} does. If only the closing edge
               died, resume in place — the cursor re-examines it and
               skips. *)
            let cut = ref (-1) in
            let i = ref 1 in
            while !cut < 0 && !i < !sp do
              if elive.(fedge.(!i)) = 0 then cut := !i;
              incr i
            done;
            if !cut >= 0 then begin
              for j = !cut to !sp - 1 do
                color.(fnode.(j)) <- white;
                spos.(fnode.(j)) <- -1
              done;
              sp := !cut
            end
          end
        end
      end
    end
  done;
  { p_evicted = List.rev !ev_order; p_edges = !edges_evicted }

let assign_store_scc store ~max_layers ~heuristic ~domains =
  let g = Route_store.graph store in
  let layer_of_path = Array.make (Route_store.capacity store) (-1) in
  Route_store.iter_pairs store (fun pr -> layer_of_path.(pr) <- 0);
  let cycles_broken = ref 0 in
  let local_of = Array.make (Graph.num_channels g) (-1) in
  let error = ref None in
  let vl = ref 0 in
  let current = ref (Some (Obs.Timer.time t_rebuild (fun () -> Cdg.of_store store))) in
  while !error = None && !current <> None do
    let cdg =
      match !current with
      | Some c -> c
      | None -> assert false
    in
    if Cdg.overlay_edges cdg > 0 then Cdg.compact cdg;
    let span =
      Obs.Trace.begin_span "layers.layer" ~attrs:(fun () ->
          [ ("layer", Obs.Trace.Int !vl); ("engine", Obs.Trace.Str "scc") ])
    in
    let scc = Obs.Timer.time t_condense (fun () -> Scc.of_cdg cdg) in
    let nontrivial = scc.Scc.nontrivial in
    let n_nontrivial = Array.length nontrivial in
    let largest = Array.fold_left (fun acc c -> max acc (Array.length c)) 0 nontrivial in
    if n_nontrivial = 0 then begin
      Obs.Trace.end_span span
        ~attrs:
          [
            ("sccs", Obs.Trace.Int scc.Scc.num_comps);
            ("nontrivial", Obs.Trace.Int 0);
            ("evictions", Obs.Trace.Int 0);
            ("movers", Obs.Trace.Int 0);
          ];
      current := None
    end
    else if !vl + 1 >= max_layers then begin
      Obs.Trace.end_span span
        ~attrs:[ ("error", Obs.Trace.Str "layer budget exhausted") ];
      error := Some (budget_error !vl max_layers)
    end
    else begin
      let plans =
        Obs.Timer.time t_evict (fun () ->
            Array.iter (Array.iteri (fun li v -> local_of.(v) <- li)) nontrivial;
            let comp_of = scc.Scc.comp_of in
            let plans =
              Parallel.map_array ~domains
                (fun members -> plan_comp cdg ~store ~comp_of ~local_of ~heuristic members)
                nontrivial
            in
            Array.iter (Array.iter (fun v -> local_of.(v) <- -1)) nontrivial;
            plans)
      in
      (* Merge sequentially in component order: plans are independent,
         so a pair evicted by two components moves once. *)
      let movers = ref [] in
      let n_movers = ref 0 in
      let layer_edges = ref 0 in
      Array.iter
        (fun p ->
          layer_edges := !layer_edges + p.p_edges;
          List.iter
            (fun pr ->
              if layer_of_path.(pr) = !vl then begin
                layer_of_path.(pr) <- !vl + 1;
                movers := pr :: !movers;
                incr n_movers
              end)
            p.p_evicted)
        plans;
      cycles_broken := !cycles_broken + !layer_edges;
      Obs.Counter.incr ~n:!layer_edges c_evictions;
      Log.debug (fun m ->
          m "layer %d: %d non-trivial SCC(s) (largest %d); evicted %d edge(s), moving %d route(s)"
            !vl n_nontrivial largest !layer_edges !n_movers);
      Obs.Trace.end_span span
        ~attrs:
          [
            ("sccs", Obs.Trace.Int scc.Scc.num_comps);
            ("nontrivial", Obs.Trace.Int n_nontrivial);
            ("largest", Obs.Trace.Int largest);
            ("evictions", Obs.Trace.Int !layer_edges);
            ("movers", Obs.Trace.Int !n_movers);
          ];
      (* Stream the movers straight into layer k+1's CSR build — a scan
         of just the moved pairs, not the store's full capacity. *)
      let movers = Array.of_list !movers in
      Array.sort compare movers;
      current := Some (Obs.Timer.time t_rebuild (fun () -> Cdg.of_store ~pairs:movers store));
      incr vl
    end
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
    let layers_used = 1 + Array.fold_left max 0 layer_of_path in
    Ok { layer_of_path; layers_used; cycles_broken = !cycles_broken }

let assign_store ?(engine = `Scc) ?(domains = 1) store ~max_layers ~heuristic =
  if max_layers < 1 then invalid_arg "Layers.assign: max_layers < 1";
  Obs.Counter.incr c_assignments;
  let span =
    Obs.Trace.begin_span "layers.assign" ~attrs:(fun () ->
        [
          ("paths", Obs.Trace.Int (Route_store.num_paths store));
          ("max_layers", Obs.Trace.Int max_layers);
          ("engine", Obs.Trace.Str (engine_to_string engine));
        ])
  in
  let result =
    Obs.Timer.time t_assign (fun () ->
        match engine with
        | `Dfs -> assign_store_dfs store ~max_layers ~heuristic
        | `Scc -> assign_store_scc store ~max_layers ~heuristic ~domains)
  in
  (match result with
  | Ok o ->
    Obs.Counter.incr ~n:o.cycles_broken c_cycles;
    Log.info (fun m ->
        m "assigned %d routes over %d layer(s), breaking %d cycle(s)" (Route_store.num_paths store)
          o.layers_used o.cycles_broken);
    Obs.Trace.end_span span
      ~attrs:
        [
          ("layers_used", Obs.Trace.Int o.layers_used);
          ("cycles_broken", Obs.Trace.Int o.cycles_broken);
        ]
  | Error msg -> Obs.Trace.end_span span ~attrs:[ ("error", Obs.Trace.Str msg) ]);
  result

let assign ?engine ?domains g ~paths ~max_layers ~heuristic =
  assign_store ?engine ?domains (Route_store.of_paths g paths) ~max_layers ~heuristic

let balance outcome ~max_layers =
  let used = outcome.layers_used in
  let total = Array.fold_left (fun acc l -> if l >= 0 then acc + 1 else acc) 0 outcome.layer_of_path in
  if max_layers <= used || total = 0 then (Array.copy outcome.layer_of_path, used)
  else begin
    let counts = Array.make used 0 in
    Array.iter (fun l -> if l >= 0 then counts.(l) <- counts.(l) + 1) outcome.layer_of_path;
    (* Apportion the max_layers slots to the original layers proportionally
       to their route counts (largest remainder), at least one slot each. *)
    let total = float_of_int total in
    let slots = Array.make used 1 in
    let assigned = ref used in
    let quota = Array.init used (fun l -> float_of_int counts.(l) /. total *. float_of_int max_layers) in
    (* integer parts beyond the guaranteed 1 *)
    for l = 0 to used - 1 do
      let extra = max 0 (int_of_float quota.(l) - 1) in
      let extra = min extra (max_layers - !assigned) in
      slots.(l) <- slots.(l) + extra;
      assigned := !assigned + extra
    done;
    let order = Array.init used (fun l -> l) in
    Array.sort
      (fun a b ->
        compare (quota.(b) -. Float.of_int slots.(b)) (quota.(a) -. Float.of_int slots.(a)))
      order;
    let i = ref 0 in
    while !assigned < max_layers do
      let l = order.(!i mod used) in
      slots.(l) <- slots.(l) + 1;
      incr assigned;
      incr i
    done;
    (* New layer ids: original layer l owns a contiguous block of slots;
       its routes round-robin over the block. Any subset of an acyclic
       layer is acyclic, and blocks never mix layers. *)
    let base = Array.make used 0 in
    for l = 1 to used - 1 do
      base.(l) <- base.(l - 1) + slots.(l - 1)
    done;
    let seen = Array.make used 0 in
    let fresh =
      Array.map
        (fun l ->
          if l < 0 then -1
          else begin
            let slot = seen.(l) mod slots.(l) in
            seen.(l) <- seen.(l) + 1;
            base.(l) + slot
          end)
        outcome.layer_of_path
    in
    (fresh, max_layers)
  end
