module Pair = struct
  type id = int

  let encode ~num_terminals ~src_index ~dst_index =
    if src_index < 0 || src_index >= num_terminals || dst_index < 0 || dst_index >= num_terminals then
      invalid_arg "Route_store.Pair.encode: terminal index out of range";
    (src_index * num_terminals) + dst_index

  let decode ~num_terminals id =
    if num_terminals < 1 || id < 0 then invalid_arg "Route_store.Pair.decode";
    (id / num_terminals, id mod num_terminals)
end

type t = {
  graph : Graph.t;
  mutable buf : int array; (* one flat channel arena for every path *)
  mutable fill : int; (* arena high-water mark *)
  off : int array; (* pair id -> arena offset *)
  len : int array; (* pair id -> slice length, -1 = absent *)
  mutable num_paths : int;
  mutable building : int; (* pair id being streamed, or -1 *)
  mutable start : int; (* arena offset where the streamed path began *)
}

let create graph ~capacity =
  if capacity < 0 then invalid_arg "Route_store.create: capacity < 0";
  {
    graph;
    buf = Array.make (max 16 (min (4 * capacity) 65536)) 0;
    fill = 0;
    off = Array.make capacity 0;
    len = Array.make capacity (-1);
    num_paths = 0;
    building = -1;
    start = 0;
  }

let graph t = t.graph

let capacity t = Array.length t.off

let num_paths t = t.num_paths

let check_pair t pair =
  if pair < 0 || pair >= Array.length t.off then invalid_arg "Route_store: pair id out of range"

let mem t ~pair =
  check_pair t pair;
  t.len.(pair) >= 0

let ensure t n =
  let need = t.fill + n in
  if need > Array.length t.buf then begin
    let size = ref (2 * Array.length t.buf) in
    while !size < need do
      size := 2 * !size
    done;
    let fresh = Array.make !size 0 in
    Array.blit t.buf 0 fresh 0 t.fill;
    t.buf <- fresh
  end

let begin_path t ~pair =
  if t.building >= 0 then invalid_arg "Route_store.begin_path: a path is already being built";
  check_pair t pair;
  if t.len.(pair) >= 0 then begin
    (* replacing: the old slice stays in the arena but is unreachable *)
    t.len.(pair) <- -1;
    t.num_paths <- t.num_paths - 1
  end;
  t.building <- pair;
  t.start <- t.fill

let push t c =
  if t.building < 0 then invalid_arg "Route_store.push: no path being built";
  ensure t 1;
  t.buf.(t.fill) <- c;
  t.fill <- t.fill + 1

let commit_path t =
  if t.building < 0 then invalid_arg "Route_store.commit_path: no path being built";
  let pair = t.building in
  t.off.(pair) <- t.start;
  t.len.(pair) <- t.fill - t.start;
  t.num_paths <- t.num_paths + 1;
  t.building <- -1

let abort_path t =
  if t.building < 0 then invalid_arg "Route_store.abort_path: no path being built";
  t.fill <- t.start;
  t.building <- -1

let set_path t ~pair p =
  begin_path t ~pair;
  let n = Array.length p in
  ensure t n;
  Array.blit p 0 t.buf t.fill n;
  t.fill <- t.fill + n;
  commit_path t

let remove t ~pair =
  check_pair t pair;
  if t.len.(pair) >= 0 then begin
    t.len.(pair) <- -1;
    t.num_paths <- t.num_paths - 1
  end

let absent pair = invalid_arg (Printf.sprintf "Route_store: pair %d has no path" pair)

let length t ~pair =
  check_pair t pair;
  let l = t.len.(pair) in
  if l < 0 then absent pair;
  l

let offset t ~pair =
  check_pair t pair;
  if t.len.(pair) < 0 then absent pair;
  t.off.(pair)

let get t ~pair i =
  let l = length t ~pair in
  if i < 0 || i >= l then invalid_arg "Route_store.get: index out of slice";
  t.buf.(t.off.(pair) + i)

let buffer t = t.buf

let to_path t ~pair = Array.sub t.buf (offset t ~pair) (length t ~pair)

let iter t ~pair f =
  let off = offset t ~pair and len = t.len.(pair) in
  for i = off to off + len - 1 do
    f t.buf.(i)
  done

let iter_deps t ~pair f =
  let off = offset t ~pair and len = t.len.(pair) in
  for i = off to off + len - 2 do
    f t.buf.(i) t.buf.(i + 1)
  done

let iter_pairs t f =
  for pair = 0 to Array.length t.off - 1 do
    if t.len.(pair) >= 0 then f pair
  done

let total_channels t =
  let total = ref 0 in
  iter_pairs t (fun pair -> total := !total + t.len.(pair));
  !total

let of_paths graph paths =
  let t = create graph ~capacity:(Array.length paths) in
  Array.iteri (fun i p -> set_path t ~pair:i p) paths;
  t
