type edge = {
  mutable count : int;
  mutable pairs : int list;
}

type t = {
  graph : Graph.t;
  adj : (int, edge) Hashtbl.t array; (* channel -> successor channel -> edge *)
  mutable num_edges : int;
  mutable num_paths : int;
}

let create graph =
  { graph; adj = Array.init (Graph.num_channels graph) (fun _ -> Hashtbl.create 4); num_edges = 0; num_paths = 0 }

let graph t = t.graph

let add_path t ~pair p =
  let n = Array.length p in
  for i = 0 to n - 2 do
    let c1 = p.(i) and c2 = p.(i + 1) in
    match Hashtbl.find_opt t.adj.(c1) c2 with
    | Some e ->
      e.count <- e.count + 1;
      e.pairs <- pair :: e.pairs
    | None ->
      Hashtbl.replace t.adj.(c1) c2 { count = 1; pairs = [ pair ] };
      t.num_edges <- t.num_edges + 1
  done;
  t.num_paths <- t.num_paths + 1

let rec drop_one x = function
  | [] -> None
  | y :: rest when y = x -> Some rest
  | y :: rest -> ( match drop_one x rest with None -> None | Some r -> Some (y :: r))

let remove_path t ~pair p =
  let n = Array.length p in
  for i = 0 to n - 2 do
    let c1 = p.(i) and c2 = p.(i + 1) in
    match Hashtbl.find_opt t.adj.(c1) c2 with
    | None -> invalid_arg "Cdg_ref.remove_path: edge not present"
    | Some e ->
      (match drop_one pair e.pairs with
      | None -> invalid_arg "Cdg_ref.remove_path: pair not on edge"
      | Some rest -> e.pairs <- rest);
      e.count <- e.count - 1;
      if e.count = 0 then begin
        Hashtbl.remove t.adj.(c1) c2;
        t.num_edges <- t.num_edges - 1
      end
  done;
  t.num_paths <- t.num_paths - 1

let live t ~c1 ~c2 = Hashtbl.mem t.adj.(c1) c2

let edge_count t ~c1 ~c2 =
  match Hashtbl.find_opt t.adj.(c1) c2 with Some e -> e.count | None -> 0

let edge_pairs t ~c1 ~c2 =
  match Hashtbl.find_opt t.adj.(c1) c2 with Some e -> e.pairs | None -> []

let successors t c =
  let out = Array.make (Hashtbl.length t.adj.(c)) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun c2 _ ->
      out.(!i) <- c2;
      incr i)
    t.adj.(c);
  out

let num_edges t = t.num_edges

let num_paths t = t.num_paths

let iter_edges t f =
  Array.iteri (fun c1 tbl -> Hashtbl.iter (fun c2 e -> f c1 c2 e.count) tbl) t.adj
