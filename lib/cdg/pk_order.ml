type t = {
  cdg : Cdg.t;
  ord : int array; (* channel -> position *)
  at : int array; (* position -> channel *)
  visited : int array; (* stamp marks *)
  mutable stamp : int;
  registered : (int * int, unit) Hashtbl.t;
      (* Edges this structure has accepted. DFS probes traverse only
         registered live edges: the CDG may hold a just-added path whose
         remaining dependencies are not ordered yet, and walking those
         would break the bounded-search invariant (their endpoints can sit
         anywhere in the order). A cycle is still always caught — at the
         insertion of its last unregistered edge. *)
}

let create cdg =
  let n = Graph.num_channels (Cdg.graph cdg) in
  {
    cdg;
    ord = Array.init n Fun.id;
    at = Array.init n Fun.id;
    visited = Array.make n 0;
    stamp = 0;
    registered = Hashtbl.create 256;
  }

let traversable t a b = Hashtbl.mem t.registered (a, b) && Cdg.live t.cdg ~c1:a ~c2:b

let position t c = t.ord.(c)

(* Forward DFS from [start] over live CDG edges, restricted to positions
   <= [bound]. Returns [false] if [target] is reached (cycle); collects
   visited nodes into [acc]. *)
let forward t start ~bound ~target acc =
  let rec dfs c =
    if c = target then false
    else begin
      t.visited.(c) <- t.stamp;
      acc := c :: !acc;
      Cdg.for_all_successors t.cdg c (fun s ->
          if t.ord.(s) <= bound && t.visited.(s) <> t.stamp && traversable t c s then dfs s else true)
    end
  in
  dfs start

(* Backward DFS from [start] over live CDG edges, restricted to positions
   >= [bound]. Predecessor iteration walks the fabric's channel adjacency:
   a CDG edge into channel c can only come from a channel ending where c
   starts, so candidate predecessors are the in-channels of c's source
   node — a radix-bounded set. *)
let backward t start ~bound acc =
  let g = Cdg.graph t.cdg in
  let rec dfs c =
    t.visited.(c) <- t.stamp;
    acc := c :: !acc;
    let src = (Graph.channel g c).Channel.src in
    Array.iter
      (fun p ->
        if t.ord.(p) >= bound && t.visited.(p) <> t.stamp && traversable t p c then dfs p)
      (Graph.in_channels g src)
  in
  dfs start

let insert t ~c1 ~c2 =
  if c1 = c2 then false
  else if t.ord.(c1) < t.ord.(c2) then begin
    (* order already consistent *)
    Hashtbl.replace t.registered (c1, c2) ();
    true
  end
  else begin
    let lower = t.ord.(c2) and upper = t.ord.(c1) in
    (* discover the affected region *)
    t.stamp <- t.stamp + 1;
    let fwd = ref [] in
    if not (forward t c2 ~bound:upper ~target:c1 fwd) then false (* cycle: c1 reachable from c2 *)
    else begin
      let fwd_nodes = !fwd in
      t.stamp <- t.stamp + 1;
      let bwd = ref [] in
      backward t c1 ~bound:lower bwd;
      let bwd_nodes = !bwd in
      (* Reassign the union's positions: the backward set (things that
         must precede c2's region) first, then the forward set, each in
         their existing relative order. *)
      let by_ord l = List.sort (fun a b -> compare t.ord.(a) t.ord.(b)) l in
      let nodes = by_ord bwd_nodes @ by_ord fwd_nodes in
      let slots = List.sort compare (List.map (fun c -> t.ord.(c)) nodes) in
      List.iter2
        (fun c slot ->
          t.ord.(c) <- slot;
          t.at.(slot) <- c)
        nodes slots;
      Hashtbl.replace t.registered (c1, c2) ();
      true
    end
  end

let consistent t =
  let ok = ref true in
  (* every registered live edge must respect the order *)
  Cdg.iter_edges t.cdg (fun c1 c2 _ ->
      if Hashtbl.mem t.registered (c1, c2) && t.ord.(c1) >= t.ord.(c2) then ok := false);
  (* ord and at must stay inverse permutations *)
  Array.iteri (fun c p -> if t.at.(p) <> c then ok := false) t.ord;
  !ok
