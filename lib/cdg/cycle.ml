type color =
  | White
  | Gray
  | Black

(* A frame walks the CSR base row of [node] by slot index (no per-push
   successor array), then any overlay successors snapshotted at push
   time. Liveness is re-checked at consumption either way, so edges
   removed after the push are skipped. The caller must not compact the
   CDG while a search is in flight — slot indices would dangle. *)
type frame = {
  node : int;
  mutable sl : int; (* next base slot to examine *)
  sl_hi : int;
  over : int array; (* overlay successors at push time *)
  mutable oc : int;
}

type t = {
  cdg : Cdg.t;
  color : color array;
  mutable stack : frame list; (* top first *)
  stack_pos : int array; (* channel -> depth in stack, or -1 *)
  mutable depth : int;
  mutable next_root : int;
}

let create cdg =
  let m = Graph.num_channels (Cdg.graph cdg) in
  { cdg; color = Array.make m White; stack = []; stack_pos = Array.make m (-1); depth = 0; next_root = 0 }

let push t node =
  t.color.(node) <- Gray;
  t.stack_pos.(node) <- t.depth;
  t.depth <- t.depth + 1;
  let lo, hi = Cdg.slot_range t.cdg node in
  t.stack <- { node; sl = lo; sl_hi = hi; over = Cdg.overlay_successors t.cdg node; oc = 0 } :: t.stack

let pop t =
  match t.stack with
  | [] -> assert false
  | f :: rest ->
    t.color.(f.node) <- Black;
    t.stack_pos.(f.node) <- -1;
    t.depth <- t.depth - 1;
    t.stack <- rest

(* Cycle through the gray node [target]: the stack edges from [target]'s
   depth up to the top, plus the closing back edge (top, target). *)
let extract_cycle t target =
  let top_depth = t.depth - 1 in
  let start_depth = t.stack_pos.(target) in
  let len = top_depth - start_depth + 1 in
  let nodes = Array.make len 0 in
  List.iteri (fun i f -> if i < len then nodes.(len - 1 - i) <- f.node) t.stack;
  Array.init len (fun i -> if i = len - 1 then (nodes.(i), target) else (nodes.(i), nodes.(i + 1)))

let find_cycle t =
  let m = Array.length t.color in
  let result = ref None in
  let running = ref true in
  (* Examine the live successor [s]; [advance] moves past it. Does not
     advance on Gray: if the caller breaks the cycle elsewhere, the same
     back edge must be re-examined; if the caller kills this edge, the
     liveness check skips it. *)
  let visit s advance =
    match t.color.(s) with
    | Gray ->
      result := Some (extract_cycle t s);
      running := false
    | Black -> advance ()
    | White ->
      advance ();
      push t s
  in
  while !running do
    match t.stack with
    | [] ->
      if t.next_root >= m then running := false
      else if t.color.(t.next_root) = White then push t t.next_root
      else t.next_root <- t.next_root + 1
    | f :: _ ->
      if f.sl < f.sl_hi then begin
        let sl = f.sl in
        if not (Cdg.slot_live t.cdg sl) then f.sl <- f.sl + 1
        else visit (Cdg.slot_col t.cdg sl) (fun () -> f.sl <- f.sl + 1)
      end
      else if f.oc < Array.length f.over then begin
        let s = f.over.(f.oc) in
        if not (Cdg.live t.cdg ~c1:f.node ~c2:s) then f.oc <- f.oc + 1
        else visit s (fun () -> f.oc <- f.oc + 1)
      end
      else pop t
  done;
  !result

let notify_removed t =
  (* Walk from the bottom; cut at the first dead stack edge. *)
  let frames = Array.of_list (List.rev t.stack) in
  let n = Array.length frames in
  let cut = ref n in
  for i = 1 to n - 1 do
    if !cut = n && not (Cdg.live t.cdg ~c1:frames.(i - 1).node ~c2:frames.(i).node) then cut := i
  done;
  if !cut < n then begin
    (* Frames cut..n-1 revert to white (unexplored). *)
    for i = !cut to n - 1 do
      t.color.(frames.(i).node) <- White;
      t.stack_pos.(frames.(i).node) <- -1
    done;
    t.depth <- !cut;
    let rec keep i acc = if i >= !cut then acc else keep (i + 1) (frames.(i) :: acc) in
    t.stack <- keep 0 []
  end
