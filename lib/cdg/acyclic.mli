(** Acyclicity verification for channel dependency graphs, by Kahn's
    topological sort — deliberately independent of the resumable DFS in
    {!Cycle} so each can validate the other in tests. *)

(** [is_acyclic cdg] is [true] iff the CDG currently has no directed
    cycle. *)
val is_acyclic : Cdg.t -> bool

(** [layers_acyclic_store ?domains store ~layer_of_path ~num_layers]
    builds one CSR CDG per layer from the store ({!Cdg.of_store} with a
    layer filter) and checks each — the end-to-end deadlock-freedom
    criterion (paper Theorem 1 direction used: acyclic => deadlock-free).
    [layer_of_path] is indexed by pair id over the store's capacity;
    absent pairs carry [-1]. Layers are independent; [domains > 1] checks
    them on that many OCaml domains. *)
val layers_acyclic_store :
  ?domains:int -> Route_store.t -> layer_of_path:int array -> num_layers:int -> bool

(** Array-of-paths convenience form of {!layers_acyclic_store} (path [i]
    becomes pair id [i]). *)
val layers_acyclic :
  ?domains:int -> Graph.t -> paths:Path.t array -> layer_of_path:int array -> num_layers:int -> bool
