let log_src = Logs.Src.create "deadlock.online" ~doc:"online virtual-layer assignment"

module Log = (val Logs.src_log log_src : Logs.LOG)

type outcome = {
  layer_of_path : int array;
  layers_used : int;
  cycle_checks : int;
}

(* Adding path edges E_new to an acyclic CDG creates a cycle iff some
   {e newly created} edge (a, b) has a directed route from b back to a
   afterwards — dependencies the layer already carried cannot close
   anything new, so only 0->1 count transitions are probed (this is what
   keeps LASH tractable on fabrics with millions of routes: distinct
   routes share almost all their dependencies). One DFS from each new
   edge's head suffices; stamped visit marks avoid reinitialization, and
   the probe walks CSR successor rows without allocating. *)
let creates_cycle cdg fresh_edges stamp stamps checks =
  let rec probe = function
    | [] -> false
    | (a, b) :: rest ->
      incr checks;
      incr stamp;
      let target = a in
      let rec dfs c =
        if c = target then true
        else if stamps.(c) = !stamp then false
        else begin
          stamps.(c) <- !stamp;
          Cdg.exists_successor cdg c dfs
        end
      in
      if dfs b then true else probe rest
  in
  probe fresh_edges

let fresh_dependencies cdg store ~pair =
  let fresh = ref [] in
  Route_store.iter_deps store ~pair (fun a b ->
      if not (Cdg.live cdg ~c1:a ~c2:b) then fresh := (a, b) :: !fresh);
  !fresh

let assign_store ?(engine = `Dfs) store ~max_layers =
  if max_layers < 1 then invalid_arg "Online.assign: max_layers < 1";
  let g = Route_store.graph store in
  let layer_of_path = Array.make (Route_store.capacity store) (-1) in
  let cdgs = ref [| Cdg.create g |] in
  let pks = ref [| (match engine with `Pk -> Some (Pk_order.create !cdgs.(0)) | `Dfs -> None) |] in
  let stamps = Array.make (Graph.num_channels g) 0 in
  let stamp = ref 0 in
  let checks = ref 0 in
  let error = ref None in
  (* [`Pk] registers the fresh dependencies one by one; a rejected edge
     leaves the order untouched and the path is rolled out of the CDG
     (edge deletions never invalidate a topological order). *)
  let pk_rejects pk fresh =
    let rec go = function
      | [] -> false
      | (a, b) :: rest ->
        incr checks;
        if Pk_order.insert pk ~c1:a ~c2:b then go rest else true
    in
    go (List.rev fresh)
  in
  Route_store.iter_pairs store (fun i ->
      if !error = None then begin
        let placed = ref false in
        let vl = ref 0 in
        while (not !placed) && !error = None do
          if !vl >= Array.length !cdgs then
            if Array.length !cdgs >= max_layers then
              error := Some (Printf.sprintf "path %d fits no layer (max %d)" i max_layers)
            else begin
              let cdg = Cdg.create g in
              cdgs := Array.append !cdgs [| cdg |];
              pks :=
                Array.append !pks [| (match engine with `Pk -> Some (Pk_order.create cdg) | `Dfs -> None) |]
            end;
          if !error = None then begin
            let cdg = !cdgs.(!vl) in
            let fresh = fresh_dependencies cdg store ~pair:i in
            Cdg.add_pair cdg store ~pair:i;
            let rejected =
              match !pks.(!vl) with
              | Some pk -> pk_rejects pk fresh
              | None -> creates_cycle cdg fresh stamp stamps checks
            in
            if rejected then begin
              Cdg.remove_pair cdg store ~pair:i;
              incr vl
            end
            else begin
              layer_of_path.(i) <- !vl;
              placed := true
            end
          end
        done
      end);
  match !error with
  | Some msg -> Error msg
  | None ->
    let layers_used = 1 + Array.fold_left max 0 layer_of_path in
    Log.info (fun m ->
        m "placed %d routes over %d layer(s) with %d cycle probes" (Route_store.num_paths store)
          layers_used !checks);
    Ok { layer_of_path; layers_used; cycle_checks = !checks }

let assign ?engine g ~paths ~max_layers =
  assign_store ?engine (Route_store.of_paths g paths) ~max_layers
