(** Offline virtual-layer assignment — the paper's Algorithm 2 ("Search
    and Remove Deadlocks"). All routes start in layer 0; cycles in each
    layer's CDG are broken by relocating the routes of
    heuristically-chosen edges to the next layer, until every layer is
    acyclic.

    Two interchangeable break engines (DESIGN.md section 17):

    - [`Scc] (default): condense the layer's CDG into strongly connected
      components once per pass (Tarjan, O(V+E)), skip every singleton
      component — already acyclic, the vast majority — and break only
      inside the non-trivial SCCs, evicting one heuristically best edge
      per surviving sub-component per pass. Components are independent,
      so planning fans out over [domains] OCaml domains; results are
      identical for any domain count.
    - [`Dfs]: the original one-cycle-at-a-time resumable DFS
      ({!Cycle}) — the oracle the SCC engine is validated against. *)

type engine =
  [ `Scc
  | `Dfs
  ]

val engine_to_string : engine -> string

(** Inverse of {!engine_to_string} ("scc" | "dfs"); [Error] explains the
    accepted spellings. *)
val engine_of_string : string -> (engine, string) result

type outcome = {
  layer_of_path : int array;  (** pair id -> virtual layer; -1 for absent pairs *)
  layers_used : int;  (** number of non-empty layers, the paper's VL count *)
  cycles_broken : int;
      (** [`Dfs]: cycles found and broken. [`Scc]: edges evicted (each
          eviction kills at least one cycle). *)
}

(** [assign_store store ~max_layers ~heuristic] distributes every present
    pair of [store] over at most [max_layers] virtual layers so every
    layer's CDG is acyclic. Layer 0's CDG is built in one CSR pass
    ({!Cdg.of_store}); under [`Scc] each next layer is likewise built in
    one pass over just the moved pairs. [layer_of_path] is indexed by
    pair id over the store's full capacity, with [-1] marking absent
    pairs. [domains] (default 1) parallelises [`Scc] planning across
    components and is ignored by [`Dfs]. Returns [Error] if a cycle
    survives in the last allowed layer (the fabric then cannot be routed
    deadlock-free with this budget — the paper's failed configurations). *)
val assign_store :
  ?engine:engine ->
  ?domains:int ->
  Route_store.t ->
  max_layers:int ->
  heuristic:Heuristic.t ->
  (outcome, string) result

(** [assign g ~paths ~max_layers ~heuristic] is {!assign_store} over a
    store holding path [i] under pair id [i] — the array-of-paths
    convenience entry point ([layer_of_path] then has no [-1]s). *)
val assign :
  ?engine:engine ->
  ?domains:int ->
  Graph.t ->
  paths:Path.t array ->
  max_layers:int ->
  heuristic:Heuristic.t ->
  (outcome, string) result

(** [balance outcome ~max_layers] spreads routes of heavily-populated
    layers over the unused layers (the tail of Algorithm 2): each unused
    layer receives a subset of exactly one original layer — subsets of an
    acyclic edge set stay acyclic, so no new cycle search is needed.
    Absent pairs stay [-1]. Returns the new per-pair layer array and the
    (now larger) number of layers in use; [layers_used] of the original
    outcome remains the VL requirement to report. *)
val balance : outcome -> max_layers:int -> int array * int
