(* CSR base + overlay representation (DESIGN.md §10).

   The base is a compressed-sparse-row adjacency over channels: slot range
   [row.(c1), row.(c1+1)) lists the successors of c1 in [col], each with a
   live inducing-route count in [cnt] and an inducing-pair slice
   [poff.(sl), poff.(sl+1)) into [pbuf]. Removing a pair tombstones its
   [pbuf] entry (-1); pairs added to an existing base edge after the build
   go to the per-slot [extra] list. Edges absent from the base live in the
   [over] overlay (a nested hashtable) until [compact] folds everything
   back into a fresh base. The invariant throughout: [cnt] / [o_count] of
   an edge equals its number of live pair memberships. *)

type over_edge = {
  mutable o_count : int;
  mutable o_pairs : int list;
}

type t = {
  graph : Graph.t;
  mutable row : int array; (* length m+1 *)
  mutable col : int array; (* length nslots *)
  mutable cnt : int array; (* per slot: live inducing routes; 0 = dead edge *)
  mutable poff : int array; (* length nslots+1 *)
  mutable pbuf : int array; (* inducing pair ids; -1 = tombstone *)
  mutable extra : int list array; (* per slot: pairs added after the build *)
  over : (int, (int, over_edge) Hashtbl.t) Hashtbl.t; (* c1 -> c2 -> edge *)
  mutable over_edges : int;
  mutable num_edges : int;
  mutable num_paths : int;
}

let create graph =
  let m = Graph.num_channels graph in
  {
    graph;
    row = Array.make (m + 1) 0;
    col = [||];
    cnt = [||];
    poff = [| 0 |];
    pbuf = [||];
    extra = [||];
    over = Hashtbl.create 16;
    over_edges = 0;
    num_edges = 0;
    num_paths = 0;
  }

let graph t = t.graph

let find_slot t c1 c2 =
  let hi = t.row.(c1 + 1) in
  let rec go i = if i >= hi then -1 else if t.col.(i) = c2 then i else go (i + 1) in
  go t.row.(c1)

let find_over t c1 c2 =
  match Hashtbl.find_opt t.over c1 with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl c2

(* Build a fresh CSR base from the live edges of [t] (base + overlay) and
   clear the overlay. Counting pass then filling pass, both in row order. *)
let compact t =
  let m = Array.length t.row - 1 in
  let nslots = ref 0 and npairs = ref 0 in
  for sl = 0 to Array.length t.col - 1 do
    if t.cnt.(sl) > 0 then begin
      incr nslots;
      npairs := !npairs + t.cnt.(sl)
    end
  done;
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun _ e ->
          incr nslots;
          npairs := !npairs + e.o_count)
        tbl)
    t.over;
  let row = Array.make (m + 1) 0 in
  let col = Array.make !nslots 0 in
  let cnt = Array.make !nslots 0 in
  let poff = Array.make (!nslots + 1) 0 in
  let pbuf = Array.make !npairs 0 in
  let s = ref 0 and p = ref 0 in
  for c = 0 to m - 1 do
    row.(c) <- !s;
    for sl = t.row.(c) to t.row.(c + 1) - 1 do
      if t.cnt.(sl) > 0 then begin
        col.(!s) <- t.col.(sl);
        cnt.(!s) <- t.cnt.(sl);
        poff.(!s) <- !p;
        for i = t.poff.(sl) to t.poff.(sl + 1) - 1 do
          if t.pbuf.(i) >= 0 then begin
            pbuf.(!p) <- t.pbuf.(i);
            incr p
          end
        done;
        List.iter
          (fun pr ->
            pbuf.(!p) <- pr;
            incr p)
          t.extra.(sl);
        incr s
      end
    done;
    match Hashtbl.find_opt t.over c with
    | None -> ()
    | Some tbl ->
      Hashtbl.iter
        (fun c2 e ->
          col.(!s) <- c2;
          cnt.(!s) <- e.o_count;
          poff.(!s) <- !p;
          List.iter
            (fun pr ->
              pbuf.(!p) <- pr;
              incr p)
            e.o_pairs;
          incr s)
        tbl
  done;
  row.(m) <- !s;
  poff.(!nslots) <- !p;
  t.row <- row;
  t.col <- col;
  t.cnt <- cnt;
  t.poff <- poff;
  t.pbuf <- pbuf;
  t.extra <- Array.make !nslots [];
  Hashtbl.reset t.over;
  t.over_edges <- 0

(* Fold the overlay into the base once it outgrows it: keeps long-lived
   CDGs under add/remove churn (the fabric manager's repair loop) on the
   scan-friendly CSR path, with geometrically amortized rebuild cost. *)
let maybe_compact t = if t.over_edges > 256 && t.over_edges > Array.length t.col then compact t

let add_edge t c1 c2 pair =
  let sl = find_slot t c1 c2 in
  if sl >= 0 then begin
    if t.cnt.(sl) = 0 then t.num_edges <- t.num_edges + 1;
    t.cnt.(sl) <- t.cnt.(sl) + 1;
    t.extra.(sl) <- pair :: t.extra.(sl)
  end
  else begin
    let tbl =
      match Hashtbl.find_opt t.over c1 with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace t.over c1 tbl;
        tbl
    in
    match Hashtbl.find_opt tbl c2 with
    | Some e ->
      e.o_count <- e.o_count + 1;
      e.o_pairs <- pair :: e.o_pairs
    | None ->
      Hashtbl.replace tbl c2 { o_count = 1; o_pairs = [ pair ] };
      t.over_edges <- t.over_edges + 1;
      t.num_edges <- t.num_edges + 1
  end

(* Remove one occurrence of [x]; None if absent. *)
let rec drop_one x = function
  | [] -> None
  | y :: rest when y = x -> Some rest
  | y :: rest -> ( match drop_one x rest with None -> None | Some r -> Some (y :: r))

let not_present () = invalid_arg "Cdg.remove_path: edge not present"

let remove_edge t c1 c2 pair =
  let sl = find_slot t c1 c2 in
  if sl >= 0 && t.cnt.(sl) > 0 then begin
    (match drop_one pair t.extra.(sl) with
    | Some rest -> t.extra.(sl) <- rest
    | None ->
      let hi = t.poff.(sl + 1) in
      let rec tombstone i =
        if i >= hi then invalid_arg "Cdg.remove_path: pair not on edge"
        else if t.pbuf.(i) = pair then t.pbuf.(i) <- -1
        else tombstone (i + 1)
      in
      tombstone t.poff.(sl));
    t.cnt.(sl) <- t.cnt.(sl) - 1;
    if t.cnt.(sl) = 0 then t.num_edges <- t.num_edges - 1
  end
  else
    match Hashtbl.find_opt t.over c1 with
    | None -> not_present ()
    | Some tbl -> (
      match Hashtbl.find_opt tbl c2 with
      | None -> not_present ()
      | Some e ->
        (match drop_one pair e.o_pairs with
        | None -> invalid_arg "Cdg.remove_path: pair not on edge"
        | Some rest -> e.o_pairs <- rest);
        e.o_count <- e.o_count - 1;
        if e.o_count = 0 then begin
          Hashtbl.remove tbl c2;
          t.over_edges <- t.over_edges - 1;
          t.num_edges <- t.num_edges - 1
        end)

let add_path t ~pair p =
  for i = 0 to Array.length p - 2 do
    add_edge t p.(i) p.(i + 1) pair
  done;
  t.num_paths <- t.num_paths + 1;
  maybe_compact t

let remove_path t ~pair p =
  for i = 0 to Array.length p - 2 do
    remove_edge t p.(i) p.(i + 1) pair
  done;
  t.num_paths <- t.num_paths - 1

let add_pair t store ~pair =
  Route_store.iter_deps store ~pair (fun c1 c2 -> add_edge t c1 c2 pair);
  t.num_paths <- t.num_paths + 1;
  maybe_compact t

let remove_pair t store ~pair =
  Route_store.iter_deps store ~pair (fun c1 c2 -> remove_edge t c1 c2 pair);
  t.num_paths <- t.num_paths - 1

let edge_count t ~c1 ~c2 =
  let sl = find_slot t c1 c2 in
  if sl >= 0 then t.cnt.(sl)
  else match find_over t c1 c2 with Some e -> e.o_count | None -> 0

let live t ~c1 ~c2 = edge_count t ~c1 ~c2 > 0

let edge_pairs t ~c1 ~c2 =
  let sl = find_slot t c1 c2 in
  if sl >= 0 then begin
    if t.cnt.(sl) = 0 then []
    else begin
      let acc = ref t.extra.(sl) in
      for i = t.poff.(sl + 1) - 1 downto t.poff.(sl) do
        if t.pbuf.(i) >= 0 then acc := t.pbuf.(i) :: !acc
      done;
      !acc
    end
  end
  else match find_over t c1 c2 with Some e -> e.o_pairs | None -> []

let iter_successors t c f =
  for sl = t.row.(c) to t.row.(c + 1) - 1 do
    if t.cnt.(sl) > 0 then f t.col.(sl)
  done;
  match Hashtbl.find_opt t.over c with
  | None -> ()
  | Some tbl -> Hashtbl.iter (fun c2 _ -> f c2) tbl

let exists_successor t c f =
  let hi = t.row.(c + 1) in
  let rec go sl = sl < hi && ((t.cnt.(sl) > 0 && f t.col.(sl)) || go (sl + 1)) in
  go t.row.(c)
  ||
  match Hashtbl.find_opt t.over c with
  | None -> false
  | Some tbl -> Hashtbl.fold (fun c2 _ acc -> acc || f c2) tbl false

let for_all_successors t c f = not (exists_successor t c (fun s -> not (f s)))

let slot_range t c = (t.row.(c), t.row.(c + 1))

let slot_col t sl = t.col.(sl)

let slot_live t sl = t.cnt.(sl) > 0

let slot_count t sl = t.cnt.(sl)

let iter_slot_pairs t sl f =
  for i = t.poff.(sl) to t.poff.(sl + 1) - 1 do
    if t.pbuf.(i) >= 0 then f t.pbuf.(i)
  done;
  List.iter f t.extra.(sl)

let no_over = [||]

let overlay_successors t c =
  match Hashtbl.find_opt t.over c with
  | None -> no_over
  | Some tbl ->
    let out = Array.make (Hashtbl.length tbl) 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun c2 _ ->
        out.(!i) <- c2;
        incr i)
      tbl;
    out

let successors t c =
  let n = ref 0 in
  for sl = t.row.(c) to t.row.(c + 1) - 1 do
    if t.cnt.(sl) > 0 then incr n
  done;
  (match Hashtbl.find_opt t.over c with None -> () | Some tbl -> n := !n + Hashtbl.length tbl);
  let out = Array.make !n 0 in
  let i = ref 0 in
  iter_successors t c (fun c2 ->
      out.(!i) <- c2;
      incr i);
  out

let num_edges t = t.num_edges

let num_paths t = t.num_paths

let is_empty t = t.num_paths = 0

let overlay_edges t = t.over_edges

let iter_edges t f =
  let m = Array.length t.row - 1 in
  for c1 = 0 to m - 1 do
    for sl = t.row.(c1) to t.row.(c1 + 1) - 1 do
      if t.cnt.(sl) > 0 then f c1 t.col.(sl) t.cnt.(sl)
    done
  done;
  Hashtbl.iter (fun c1 tbl -> Hashtbl.iter (fun c2 e -> f c1 c2 e.o_count) tbl) t.over

(* One-pass CSR construction from a route store: counting sort of all
   dependency occurrences by head channel, then per-row successor
   dedup via stamps. O(total dependencies + channels). *)
let of_store ?filter ?pairs store =
  let g = Route_store.graph store in
  let m = Graph.num_channels g in
  let keep = match filter with None -> fun _ -> true | Some f -> f in
  (* [pairs] narrows the sweep to an explicit id list (each present in the
     store, no duplicates) — the streaming handoff of the SCC engine,
     which knows exactly which pairs it moved into the next layer and
     skips the full-capacity scan. *)
  let iter_members f =
    match pairs with
    | None -> Route_store.iter_pairs store f
    | Some ids -> Array.iter f ids
  in
  (* occurrence counts per head channel, shifted by one for the prefix sum *)
  let occ = Array.make (m + 1) 0 in
  let npaths = ref 0 in
  iter_members (fun pr ->
      if keep pr then begin
        incr npaths;
        Route_store.iter_deps store ~pair:pr (fun a _ -> occ.(a + 1) <- occ.(a + 1) + 1)
      end);
  for c = 1 to m do
    occ.(c) <- occ.(c) + occ.(c - 1)
  done;
  let total = occ.(m) in
  let dep_col = Array.make total 0 in
  let dep_pair = Array.make total 0 in
  let cursor = Array.copy occ in
  iter_members (fun pr ->
      if keep pr then
        Route_store.iter_deps store ~pair:pr (fun a b ->
            let k = cursor.(a) in
            dep_col.(k) <- b;
            dep_pair.(k) <- pr;
            cursor.(a) <- k + 1));
  (* distinct successors per row *)
  let stamp = Array.make m (-1) in
  let nslots = ref 0 in
  for c = 0 to m - 1 do
    for k = occ.(c) to occ.(c + 1) - 1 do
      let s = dep_col.(k) in
      if stamp.(s) <> c then begin
        stamp.(s) <- c;
        incr nslots
      end
    done
  done;
  let nslots = !nslots in
  let row = Array.make (m + 1) 0 in
  let col = Array.make nslots 0 in
  let cnt = Array.make nslots 0 in
  let poff = Array.make (nslots + 1) 0 in
  let pbuf = Array.make total 0 in
  let slot_of = Array.make m 0 in
  let pcur = Array.make nslots 0 in
  Array.fill stamp 0 m (-1);
  let slot = ref 0 and pfill = ref 0 in
  for c = 0 to m - 1 do
    row.(c) <- !slot;
    let row_start = !slot in
    for k = occ.(c) to occ.(c + 1) - 1 do
      let s = dep_col.(k) in
      if stamp.(s) <> c then begin
        stamp.(s) <- c;
        slot_of.(s) <- !slot;
        col.(!slot) <- s;
        incr slot
      end;
      let sl = slot_of.(s) in
      cnt.(sl) <- cnt.(sl) + 1
    done;
    for sl = row_start to !slot - 1 do
      poff.(sl) <- !pfill;
      pcur.(sl) <- !pfill;
      pfill := !pfill + cnt.(sl)
    done;
    for k = occ.(c) to occ.(c + 1) - 1 do
      let sl = slot_of.(dep_col.(k)) in
      pbuf.(pcur.(sl)) <- dep_pair.(k);
      pcur.(sl) <- pcur.(sl) + 1
    done
  done;
  row.(m) <- !slot;
  poff.(nslots) <- !pfill;
  {
    graph = g;
    row;
    col;
    cnt;
    poff;
    pbuf;
    extra = Array.make nslots [];
    over = Hashtbl.create 16;
    over_edges = 0;
    num_edges = nslots;
    num_paths = !npaths;
  }
