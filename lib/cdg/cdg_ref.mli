(** Naive hashtable CDG: one [Hashtbl] per channel, pair membership as
    plain lists — the representation {!Cdg} used before the CSR refactor.
    Kept as the oracle for the representation-equivalence property tests
    and as the baseline of the [bench/cdg_bench] microbenchmark. Not for
    production use: {!Cdg} is the real thing. *)

type t

val create : Graph.t -> t
val graph : t -> Graph.t
val add_path : t -> pair:int -> Path.t -> unit

(** @raise Invalid_argument if an edge is absent or the pair is not among
    its inducers. *)
val remove_path : t -> pair:int -> Path.t -> unit

val live : t -> c1:int -> c2:int -> bool
val edge_count : t -> c1:int -> c2:int -> int
val edge_pairs : t -> c1:int -> c2:int -> int list
val successors : t -> int -> int array
val num_edges : t -> int
val num_paths : t -> int
val iter_edges : t -> (int -> int -> int -> unit) -> unit
