(* Blocking request/reply client over Proto frames. *)

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable closed : bool;
}

let connect ?(max_frame = Proto.default_max_frame) addr =
  let sock_addr, domain =
    match addr with
    | Proto.Unix_path path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Proto.Tcp (host, port) ->
      let inet =
        if host = "" || host = "*" then Unix.inet_addr_loopback
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (Unix.ADDR_INET (inet, port), Unix.PF_INET)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sock_addr with
  | () -> Ok { fd; max_frame; closed = false }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "connect %s: %s" (Proto.addr_to_string addr) (Unix.error_message e))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connect ?max_frame addr f =
  match connect ?max_frame addr with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let call_raw t payload =
  try
    Proto.write_frame t.fd payload;
    match Proto.read_frame ~max_frame:t.max_frame t.fd with
    | Ok (Some reply) -> Ok reply
    | Ok None -> Error "server closed the connection"
    | Error e -> Error e
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let call t j =
  match call_raw t (Obs.Json.to_string j) with
  | Error _ as e -> e
  | Ok reply -> (
    match Obs.Json.of_string reply with
    | Ok r -> Ok r
    | Error e -> Error ("unparseable reply: " ^ e))

(* ------------------------------------------------------------------ *)
(* Typed helpers                                                       *)
(* ------------------------------------------------------------------ *)

let status j = Option.bind (Obs.Json.member "status" j) Obs.Json.to_str

let error_message j =
  match Option.bind (Obs.Json.member "error" j) Obs.Json.to_str with
  | Some e -> e
  | None -> "unspecified server error"

(* Send [req]; hand an [Ok]-status reply to [decode]. *)
let request t req decode =
  match call t (Proto.request_to_json req) with
  | Error _ as e -> e
  | Ok reply -> (
    match status reply with
    | Some "ok" -> decode reply
    | Some "busy" -> decode reply
    | Some "error" -> Error (error_message reply)
    | _ -> Error "reply carries no status")

let int_field j name =
  match Option.bind (Obs.Json.member name j) Obs.Json.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "reply is missing %S" name)

type route_reply = {
  epoch : int;
  layers : int;
  layer : int;
  path : int array;
}

type event_reply =
  | Applied of {
      epoch : int;
      applied : bool;
      action : string;
      note : string;
      batch_size : int;
    }
  | Busy of { queue_depth : int }

let ping t = request t Proto.Ping (fun reply -> int_field reply "epoch")

let route t ~src ~dst =
  request t
    (Proto.Route { src; dst })
    (fun reply ->
      match (int_field reply "epoch", int_field reply "layers", int_field reply "layer") with
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
      | Ok epoch, Ok layers, Ok layer -> (
        match Option.bind (Obs.Json.member "path" reply) Obs.Json.to_list with
        | None -> Error "reply is missing \"path\""
        | Some hops -> (
          let path = Array.make (List.length hops) (-1) in
          let bad = ref false in
          List.iteri
            (fun i h ->
              match Obs.Json.to_int h with
              | Some c -> path.(i) <- c
              | None -> bad := true)
            hops;
          match !bad with
          | true -> Error "non-integer channel in \"path\""
          | false -> Ok { epoch; layers; layer; path })))

let event t ev =
  match call t (Proto.request_to_json (Proto.Event ev)) with
  | Error _ as e -> e
  | Ok reply -> (
    match status reply with
    | Some "busy" -> (
      match int_field reply "queue_depth" with
      | Ok queue_depth -> Ok (Busy { queue_depth })
      | Error _ -> Ok (Busy { queue_depth = -1 }))
    | Some "ok" -> (
      match (int_field reply "epoch", int_field reply "batch_size") with
      | Error e, _ | _, Error e -> Error e
      | Ok epoch, Ok batch_size ->
        let str name =
          Option.value ~default:"" (Option.bind (Obs.Json.member name reply) Obs.Json.to_str)
        in
        let applied =
          match Obs.Json.member "applied" reply with
          | Some (Obs.Json.Bool b) -> b
          | _ -> false
        in
        Ok (Applied { epoch; applied; action = str "action"; note = str "note"; batch_size }))
    | Some "error" -> Error (error_message reply)
    | _ -> Error "reply carries no status")

let stats t =
  request t Proto.Stats (fun reply ->
      match Obs.Json.member "stats" reply with
      | Some s -> Ok s
      | None -> Error "reply is missing \"stats\"")

let trace ?limit t =
  request t (Proto.Trace limit) (fun reply ->
      match Option.bind (Obs.Json.member "spans" reply) Obs.Json.to_list with
      | Some spans -> Ok spans
      | None -> Error "reply is missing \"spans\"")

let analyze t =
  request t Proto.Analyze (fun reply ->
      match (Obs.Json.member "certified" reply, Obs.Json.member "report" reply) with
      | Some (Obs.Json.Bool certified), Some report -> Ok (certified, report)
      | _ -> Error "reply is missing \"certified\" or \"report\"")

let epoch_history t =
  request t Proto.Epoch_info (fun reply ->
      match Option.bind (Obs.Json.member "history" reply) Obs.Json.to_list with
      | None -> Error "reply is missing \"history\""
      | Some entries ->
        Ok
          (List.filter_map
             (fun e ->
               match
                 ( Option.bind (Obs.Json.member "epoch" e) Obs.Json.to_int,
                   Option.bind (Obs.Json.member "label" e) Obs.Json.to_str )
               with
               | Some epoch, Some label -> Some (epoch, label)
               | _ -> None)
             entries))

let shutdown t = request t Proto.Shutdown (fun _ -> Ok ())
