type t = {
  registry : Obs.Registry.t;
  connections : Obs.Counter.t;
  disconnects : Obs.Counter.t;
  requests : Obs.Counter.t;
  route_queries : Obs.Counter.t;
  route_errors : Obs.Counter.t;
  events_enqueued : Obs.Counter.t;
  events_applied : Obs.Counter.t;
  event_batches : Obs.Counter.t;
  busy_replies : Obs.Counter.t;
  bad_requests : Obs.Counter.t;
  bytes_in : Obs.Counter.t;
  bytes_out : Obs.Counter.t;
  queue_depth : Obs.Counter.t;
  queue_peak : Obs.Counter.t;
  route_s : Obs.Timer.t;
  apply_s : Obs.Timer.t;
}

let create () =
  let registry = Obs.Registry.create () in
  let counter ?desc name = Obs.Registry.counter ~registry ?desc name in
  let timer ?desc name = Obs.Registry.timer ~registry ?desc name in
  {
    registry;
    connections = counter ~desc:"client connections accepted" "service.connections";
    disconnects = counter ~desc:"client connections closed" "service.disconnects";
    requests = counter ~desc:"request frames handled" "service.requests";
    route_queries = counter ~desc:"route queries served" "service.route_queries";
    route_errors = counter ~desc:"route queries refused" "service.route_errors";
    events_enqueued = counter ~desc:"topology events admitted" "service.events_enqueued";
    events_applied = counter ~desc:"topology events applied" "service.events_applied";
    event_batches = counter ~desc:"event queue drains" "service.event_batches";
    busy_replies = counter ~desc:"busy replies (queue full)" "service.busy_replies";
    bad_requests = counter ~desc:"malformed or unknown requests" "service.bad_requests";
    bytes_in = counter ~desc:"payload bytes received" "service.bytes_in";
    bytes_out = counter ~desc:"payload bytes sent" "service.bytes_out";
    queue_depth = counter ~desc:"gauge: events waiting" "service.queue_depth";
    queue_peak = counter ~desc:"gauge: event queue high-water mark" "service.queue_peak";
    route_s = timer ~desc:"route query serve seconds" "service.route_s";
    apply_s = timer ~desc:"per-event manager step seconds" "service.apply_s";
  }

let to_json t = Obs.Registry.to_json t.registry
