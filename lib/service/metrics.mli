(** Operational telemetry of the controller daemon, on {!Obs} primitives
    in a per-server registry — what an operator scrapes to see whether
    the service is keeping up or shedding load. *)

type t = {
  registry : Obs.Registry.t;
  connections : Obs.Counter.t;  (** accepted *)
  disconnects : Obs.Counter.t;
  requests : Obs.Counter.t;  (** complete frames handled *)
  route_queries : Obs.Counter.t;
  route_errors : Obs.Counter.t;  (** unroutable / bad ids *)
  events_enqueued : Obs.Counter.t;  (** admitted into the event queue *)
  events_applied : Obs.Counter.t;
  event_batches : Obs.Counter.t;  (** queue drains (one per manager step group) *)
  busy_replies : Obs.Counter.t;  (** load shed: admission queue full *)
  bad_requests : Obs.Counter.t;  (** unparseable / unknown / refused frames *)
  bytes_in : Obs.Counter.t;
  bytes_out : Obs.Counter.t;
  queue_depth : Obs.Counter.t;  (** gauge: events waiting right now *)
  queue_peak : Obs.Counter.t;  (** gauge: high-water mark of the queue *)
  route_s : Obs.Timer.t;  (** per-query serve time *)
  apply_s : Obs.Timer.t;  (** per-event manager step time *)
}

val create : unit -> t

(** Snapshot of the per-server registry. *)
val to_json : t -> Obs.Json.t
