(* Wire protocol of the fabric controller: 4-byte big-endian length,
   then that many bytes of JSON. The framing is deliberately dumb — any
   language can speak it with two reads — and the payloads reuse
   Obs.Json, the same codec every observability artifact already uses. *)

type addr =
  | Unix_path of string
  | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let version = 1

let default_max_frame = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Requests                                                             *)
(* ------------------------------------------------------------------ *)

type request =
  | Ping
  | Route of {
      src : int;
      dst : int;
    }
  | Event of Fabric.Event.t
  | Stats
  | Trace of int option
  | Analyze
  | Epoch_info
  | Shutdown

let request_to_json = function
  | Ping -> Obs.Json.Obj [ ("op", Obs.Json.Str "ping") ]
  | Route { src; dst } ->
    Obs.Json.Obj
      [
        ("op", Obs.Json.Str "route");
        ("src", Obs.Json.Num (float_of_int src));
        ("dst", Obs.Json.Num (float_of_int dst));
      ]
  | Event ev ->
    Obs.Json.Obj [ ("op", Obs.Json.Str "event"); ("event", Obs.Json.Str (Fabric.Event.to_string ev)) ]
  | Stats -> Obs.Json.Obj [ ("op", Obs.Json.Str "stats") ]
  | Trace limit ->
    Obs.Json.Obj
      (("op", Obs.Json.Str "trace")
      ::
      (match limit with
      | None -> []
      | Some n -> [ ("limit", Obs.Json.Num (float_of_int n)) ]))
  | Analyze -> Obs.Json.Obj [ ("op", Obs.Json.Str "analyze") ]
  | Epoch_info -> Obs.Json.Obj [ ("op", Obs.Json.Str "epoch") ]
  | Shutdown -> Obs.Json.Obj [ ("op", Obs.Json.Str "shutdown") ]

let int_field j name =
  match Obs.Json.member name j with
  | None -> Error (Printf.sprintf "missing %S" name)
  | Some v -> (
    match Obs.Json.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%S is not an integer" name))

let request_of_json j =
  match Obs.Json.member "op" j with
  | None -> Error "missing \"op\""
  | Some op -> (
    match Obs.Json.to_str op with
    | None -> Error "\"op\" is not a string"
    | Some "ping" -> Ok Ping
    | Some "route" -> (
      match (int_field j "src", int_field j "dst") with
      | Ok src, Ok dst -> Ok (Route { src; dst })
      | Error e, _ | _, Error e -> Error e)
    | Some "event" -> (
      match Obs.Json.member "event" j with
      | None -> Error "missing \"event\""
      | Some ev -> (
        match Obs.Json.to_str ev with
        | None -> Error "\"event\" is not a string"
        | Some s -> (
          match Fabric.Event.of_string s with
          | Ok ev -> Ok (Event ev)
          | Error e -> Error e)))
    | Some "stats" -> Ok Stats
    | Some "trace" -> (
      match Obs.Json.member "limit" j with
      | None -> Ok (Trace None)
      | Some v -> (
        match Obs.Json.to_int v with
        | Some n when n >= 0 -> Ok (Trace (Some n))
        | _ -> Error "\"limit\" is not a non-negative integer"))
    | Some "analyze" -> Ok Analyze
    | Some "epoch" -> Ok Epoch_info
    | Some "shutdown" -> Ok Shutdown
    | Some op -> Error (Printf.sprintf "unknown op %S" op))

let request_id j = Obs.Json.member "id" j

(* ------------------------------------------------------------------ *)
(* Framing                                                              *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  b

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let write_frame fd payload = write_all fd (frame payload)

(* [read_exact fd n] is [Some bytes] or [None] on EOF before the first
   byte; EOF mid-buffer raises. *)
let read_exact fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    let k = Unix.read fd b !off (n - !off) in
    if k = 0 then eof := true else off := !off + k
  done;
  if !off = n then Some b else if !off = 0 then None else failwith "truncated frame"

let read_frame ?(max_frame = default_max_frame) fd =
  try
    match read_exact fd 4 with
    | None -> Ok None
    | Some header ->
      let len = Int32.to_int (Bytes.get_int32_be header 0) in
      if len < 0 || len > max_frame then
        Error (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len max_frame)
      else (
        match read_exact fd len with
        | Some payload -> Ok (Some (Bytes.to_string payload))
        | None -> Error "connection closed mid-frame")
  with
  | Failure msg -> Error msg
  | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
