(** Blocking client for the controller daemon: one connection, strict
    request/reply over {!Proto} frames. Used by [fabric_tool client],
    the soak tests and the service benchmark; thin enough that each
    soak thread owns one. *)

type t

val connect : ?max_frame:int -> Proto.addr -> (t, string) result
val close : t -> unit

(** [with_connect addr f] connects, runs [f], always closes. *)
val with_connect : ?max_frame:int -> Proto.addr -> (t -> ('a, string) result) -> ('a, string) result

(** {1 Raw calls} *)

(** One framed round trip with a JSON payload. [Error] on I/O failure or
    server EOF; protocol-level refusals come back as a normal reply
    object with [status = "error"]. *)
val call : t -> Obs.Json.t -> (Obs.Json.t, string) result

(** Same, with an unparsed request payload ([--script] mode); the reply
    is returned as received. *)
val call_raw : t -> string -> (string, string) result

(** {1 Typed helpers}

    Each sends one request and decodes the reply; a [status = "error"]
    reply becomes [Error] with the server's message. *)

type route_reply = {
  epoch : int;  (** the certified epoch that served this query *)
  layers : int;  (** layer count of that epoch's tables *)
  layer : int;  (** virtual layer of this route *)
  path : int array;  (** channel ids, source terminal to destination *)
}

type event_reply =
  | Applied of {
      epoch : int;
      applied : bool;
      action : string;  (** ["incremental"], ["full"] or ["noop"] *)
      note : string;
      batch_size : int;  (** events drained in the same manager step group *)
    }
  | Busy of { queue_depth : int }
      (** explicit backpressure: the admission queue was full; retry *)

(** Returns the server's epoch. *)
val ping : t -> (int, string) result

val route : t -> src:int -> dst:int -> (route_reply, string) result
val event : t -> Fabric.Event.t -> (event_reply, string) result

(** The [stats] reply's ["stats"] object (manager/process/service). *)
val stats : t -> (Obs.Json.t, string) result

(** Recent trace spans, oldest first. *)
val trace : ?limit:int -> t -> (Obs.Json.t list, string) result

(** The analyzer report for the active tables; [fst] is the certified
    flag. *)
val analyze : t -> (bool * Obs.Json.t, string) result

(** [(epoch, label)] history, oldest first. *)
val epoch_history : t -> ((int * string) list, string) result

(** Ask the server to drain and exit; [Ok] once the reply arrives. *)
val shutdown : t -> (unit, string) result
