(** The fabric controller daemon: a single-threaded, select-based event
    loop wrapping a {!Fabric.Manager}, serving many concurrent clients
    over the {!Proto} wire protocol.

    Design (DESIGN.md §14):

    - {b Reads are immediate and zero-copy.} Route queries resolve
      against the current epoch's {!Fabric.Epoch.snapshot} — paths are
      emitted straight from the {!Route_store} arena into the reply
      buffer, no per-query path materialization. A snapshot is immutable,
      so a reply under construction can never observe a half-swapped
      table; readers of an old epoch drain gracefully because the swap
      installs a new snapshot instead of mutating the exported one.
    - {b Writes are admission-controlled and batched.} Topology events
      enter a bounded queue; when it is full the client gets an explicit
      [{"status":"busy"}] reply {e immediately} — load is shed visibly,
      never by hanging or silent drops. The queue is drained in one step
      per loop iteration: every admitted event becomes a manager step
      back-to-back, replies are sent at the batch boundary.
    - {b Shutdown is graceful everywhere.} A [shutdown] request, {!stop}
      (signal-handler safe) or an exception all funnel into the same
      teardown: drain pending replies (bounded by [drain_s]), close
      sockets, unlink the Unix socket path, and
      {!Fabric.Manager.shutdown} the manager so worker domains are
      released and trace sinks flushed. *)

type config = {
  addr : Proto.addr;
  queue_depth : int;  (** admission bound for pending topology events *)
  max_frame : int;  (** refuse request frames larger than this *)
  tick_s : float;  (** select timeout: stop/drain latency bound *)
  trace_capacity : int;
      (** keep the most recent N trace spans in a ring served by the
          [trace] op; [0] leaves tracing untouched *)
  drain_s : float;  (** max seconds to flush replies at shutdown *)
  manager : Fabric.Manager.config;
}

(** [fabric.sock] in the working directory, queue depth 64, 1 MiB
    frames, 512-span ring, 20 ms tick, 5 s drain,
    {!Fabric.Manager.default_config}. *)
val default_config : config

type t

(** [create g] routes the initial fabric (exactly {!Fabric.Manager.create})
    and binds the listening socket; clients may connect as soon as this
    returns, even before {!serve} starts accepting. [Error] if the fabric
    cannot be routed or the address cannot be bound (an existing socket
    path is refused, not clobbered — remove it explicitly). *)
val create : ?config:config -> Graph.t -> (t, string) result

val config : t -> config

(** The bound address; for [Tcp (host, 0)] the port is the one the
    kernel picked. *)
val addr : t -> Proto.addr

val manager : t -> Fabric.Manager.t
val metrics : t -> Metrics.t

(** [serve t] runs the event loop until a [shutdown] request or {!stop},
    then tears down (sockets closed, path unlinked, manager shut down) —
    even when the loop body raises. Call at most once. *)
val serve : t -> unit

(** Request a graceful stop from a signal handler or another thread; the
    loop notices within [tick_s]. Safe to call repeatedly. *)
val stop : t -> unit

(** [true] from {!create} until {!serve}'s teardown finished. *)
val running : t -> bool
