(* The controller daemon's event loop. One thread, one select: reads are
   served inline against the immutable epoch snapshot (zero-copy from
   the route arena), mutations are admission-queued and drained in
   batches between selects, writes are non-blocking with per-connection
   output buffers. See server.mli / DESIGN.md §14 for the contract. *)

let log_src = Logs.Src.create "service.server" ~doc:"fabric controller daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  addr : Proto.addr;
  queue_depth : int;
  max_frame : int;
  tick_s : float;
  trace_capacity : int;
  drain_s : float;
  manager : Fabric.Manager.config;
}

let default_config =
  {
    addr = Proto.Unix_path "fabric.sock";
    queue_depth = 64;
    max_frame = Proto.default_max_frame;
    tick_s = 0.02;
    trace_capacity = 512;
    drain_s = 5.0;
    manager = Fabric.Manager.default_config;
  }

(* ------------------------------------------------------------------ *)
(* Span ring: the [trace] op serves the most recent spans              *)
(* ------------------------------------------------------------------ *)

type ring = {
  spans : Obs.Trace.span option array;
  mutable next : int;
  lock : Mutex.t;
}

let ring_sink r =
  {
    Obs.Trace.emit =
      (fun s ->
        Mutex.lock r.lock;
        r.spans.(r.next mod Array.length r.spans) <- Some s;
        r.next <- r.next + 1;
        Mutex.unlock r.lock);
    flush = (fun () -> ());
  }

(* Most recent spans, oldest first, at most [limit]. *)
let ring_recent r limit =
  Mutex.lock r.lock;
  let cap = Array.length r.spans in
  let stored = min r.next cap in
  let take = min limit stored in
  let out = ref [] in
  for i = 0 to take - 1 do
    (* walk newest to oldest; consing leaves the result oldest-first *)
    match r.spans.((r.next - 1 - i) mod cap) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  Mutex.unlock r.lock;
  !out

(* ------------------------------------------------------------------ *)
(* Connections: growable input/output byte buffers                     *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  mutable inbuf : Bytes.t;
  mutable inlen : int;
  mutable outbuf : Bytes.t;
  mutable outlen : int;
  mutable outpos : int;
  mutable closing : bool; (* close once the output buffer drains *)
  mutable dead : bool; (* remove at end of iteration *)
}

let grow_out c needed =
  let cap = Bytes.length c.outbuf in
  if c.outlen + needed > cap then begin
    let ncap = max (2 * cap) (c.outlen + needed) in
    let nb = Bytes.create ncap in
    Bytes.blit c.outbuf 0 nb 0 c.outlen;
    c.outbuf <- nb
  end

let grow_in c needed =
  let cap = Bytes.length c.inbuf in
  if c.inlen + needed > cap then begin
    let ncap = max (2 * cap) (c.inlen + needed) in
    let nb = Bytes.create ncap in
    Bytes.blit c.inbuf 0 nb 0 c.inlen;
    c.inbuf <- nb
  end

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  config : config;
  mgr : Fabric.Manager.t;
  listen_fd : Unix.file_descr;
  actual_addr : Proto.addr;
  metrics : Metrics.t;
  ring : ring option;
  prev_obs_enabled : bool;
  pending : (conn * Fabric.Event.t * Obs.Json.t option) Queue.t;
  stop_flag : bool Atomic.t;
  scratch : Buffer.t; (* reply payloads; single-threaded loop *)
  read_chunk : Bytes.t;
  mutable conns : conn list;
  mutable stopping : bool;
  mutable drain_until : float;
  mutable running : bool;
  mutable next_cid : int;
}

let config t = t.config

let addr t = t.actual_addr

let manager t = t.mgr

let metrics t = t.metrics

let running t = t.running

let stop t = Atomic.set t.stop_flag true

let bind_listen addr =
  match addr with
  | Proto.Unix_path path ->
    if Sys.file_exists path then
      Error (Printf.sprintf "%s: path already exists (live or stale server?); remove it first" path)
    else begin
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 128;
        Unix.set_nonblock fd;
        Ok (fd, addr)
      with e ->
        Unix.close fd;
        Error (Printexc.to_string e)
    end
  | Proto.Tcp (host, port) -> (
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    try
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let inet =
        if host = "" || host = "*" then Unix.inet_addr_any
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      let actual_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      Ok (fd, Proto.Tcp (host, actual_port))
    with e ->
      Unix.close fd;
      Error (Printexc.to_string e))

let create ?(config = default_config) g =
  if config.queue_depth < 1 then invalid_arg "Server.create: queue_depth < 1";
  if config.max_frame < 16 then invalid_arg "Server.create: max_frame too small";
  match Fabric.Manager.create ~config:config.manager g with
  | Error msg -> Error ("initial routing failed: " ^ msg)
  | Ok mgr -> (
    match bind_listen config.addr with
    | Error msg ->
      Fabric.Manager.shutdown mgr;
      Error msg
    | Ok (listen_fd, actual_addr) ->
      let prev_obs_enabled = Obs.Control.enabled () in
      let ring =
        if config.trace_capacity > 0 then begin
          let r =
            { spans = Array.make config.trace_capacity None; next = 0; lock = Mutex.create () }
          in
          Obs.Control.set_enabled true;
          Obs.Trace.set_sink (Some (ring_sink r));
          Some r
        end
        else None
      in
      Ok
        {
          config;
          mgr;
          listen_fd;
          actual_addr;
          metrics = Metrics.create ();
          ring;
          prev_obs_enabled;
          pending = Queue.create ();
          stop_flag = Atomic.make false;
          scratch = Buffer.create 1024;
          read_chunk = Bytes.create 4096;
          conns = [];
          stopping = false;
          drain_until = 0.0;
          running = true;
          next_cid = 1;
        })

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

(* Append one frame (header + [scratch] payload) to [conn]'s output. *)
let flush_scratch t conn =
  if not conn.dead then begin
    let len = Buffer.length t.scratch in
    grow_out conn (4 + len);
    Bytes.set_int32_be conn.outbuf conn.outlen (Int32.of_int len);
    Buffer.blit t.scratch 0 conn.outbuf (conn.outlen + 4) len;
    conn.outlen <- conn.outlen + 4 + len;
    Obs.Counter.incr ~n:len t.metrics.Metrics.bytes_out
  end

let add_id buf = function
  | None -> ()
  | Some id ->
    Buffer.add_string buf ",\"id\":";
    Obs.Json.to_buffer buf id

(* A reply built as an Obs.Json object: status + optional id + fields. *)
let send_obj t conn ~id ~status fields =
  Buffer.clear t.scratch;
  Buffer.add_string t.scratch "{\"status\":\"";
  Buffer.add_string t.scratch status;
  Buffer.add_char t.scratch '"';
  add_id t.scratch id;
  List.iter
    (fun (k, v) ->
      Buffer.add_string t.scratch ",\"";
      Buffer.add_string t.scratch (Obs.Json.escape k);
      Buffer.add_string t.scratch "\":";
      Obs.Json.to_buffer t.scratch v)
    fields;
  Buffer.add_char t.scratch '}';
  flush_scratch t conn

let send_ok t conn ~id fields = send_obj t conn ~id ~status:"ok" fields

let send_error t conn ~id msg = send_obj t conn ~id ~status:"error" [ ("error", Obs.Json.Str msg) ]

let send_busy t conn ~id =
  Obs.Counter.incr t.metrics.Metrics.busy_replies;
  send_obj t conn ~id ~status:"busy"
    [
      ("error", Obs.Json.Str "admission queue full, retry later");
      ("queue_depth", Obs.Json.Num (float_of_int (Queue.length t.pending)));
    ]

(* ------------------------------------------------------------------ *)
(* Request handlers                                                    *)
(* ------------------------------------------------------------------ *)

(* The zero-copy read path: the reply's path array is emitted straight
   from the epoch snapshot's route arena — no Path.t is materialized,
   no slice is copied. The snapshot is immutable, so the reply is
   internally consistent with exactly one certified epoch even if a
   swap lands between two queries. *)
let handle_route t conn ~id ~src ~dst =
  Obs.Counter.incr t.metrics.Metrics.route_queries;
  Obs.Timer.time t.metrics.Metrics.route_s @@ fun () ->
  match Fabric.Manager.snapshot t.mgr with
  | Error e ->
    Obs.Counter.incr t.metrics.Metrics.route_errors;
    send_error t conn ~id ("no snapshot: " ^ e)
  | Ok snap ->
    let ft = snap.Fabric.Epoch.tables in
    let g = Ftable.graph ft in
    let terminal x = x >= 0 && x < Graph.num_nodes g && Graph.is_terminal g x in
    if not (terminal src) then begin
      Obs.Counter.incr t.metrics.Metrics.route_errors;
      send_error t conn ~id (Printf.sprintf "src %d is not a terminal of the current fabric" src)
    end
    else if not (terminal dst) then begin
      Obs.Counter.incr t.metrics.Metrics.route_errors;
      send_error t conn ~id (Printf.sprintf "dst %d is not a terminal of the current fabric" dst)
    end
    else begin
      let store = snap.Fabric.Epoch.store in
      let pair = Ftable.pair_id ft ~src ~dst in
      if src <> dst && not (Route_store.mem store ~pair) then begin
        Obs.Counter.incr t.metrics.Metrics.route_errors;
        send_error t conn ~id (Printf.sprintf "no route for %d -> %d" src dst)
      end
      else begin
        let buf = t.scratch in
        Buffer.clear buf;
        Buffer.add_string buf "{\"status\":\"ok\"";
        add_id buf id;
        Buffer.add_string buf ",\"epoch\":";
        Buffer.add_string buf (string_of_int snap.Fabric.Epoch.snap_epoch);
        Buffer.add_string buf ",\"layers\":";
        Buffer.add_string buf (string_of_int snap.Fabric.Epoch.num_layers);
        Buffer.add_string buf ",\"layer\":";
        Buffer.add_string buf (string_of_int (Ftable.layer ft ~src ~dst));
        let len = if src = dst then 0 else Route_store.length store ~pair in
        Buffer.add_string buf ",\"hops\":";
        Buffer.add_string buf (string_of_int len);
        Buffer.add_string buf ",\"path\":[";
        if len > 0 then begin
          let off = Route_store.offset store ~pair in
          let arena = Route_store.buffer store in
          for i = 0 to len - 1 do
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (string_of_int arena.(off + i))
          done
        end;
        Buffer.add_string buf "]}";
        flush_scratch t conn
      end
    end

let stats_json t =
  Obs.Json.Obj
    [
      ("manager", Fabric.Metrics.to_json (Fabric.Manager.metrics t.mgr));
      ("process", Obs.Registry.to_json (Obs.Registry.default ()));
      ("service", Metrics.to_json t.metrics);
    ]

let handle_stats t conn ~id =
  send_ok t conn ~id
    [
      ("epoch", Obs.Json.Num (float_of_int (Fabric.Manager.epoch t.mgr)));
      ("queue_depth", Obs.Json.Num (float_of_int (Queue.length t.pending)));
      ("connections", Obs.Json.Num (float_of_int (List.length t.conns)));
      ("stats", stats_json t);
    ]

let handle_trace t conn ~id limit =
  match t.ring with
  | None -> send_error t conn ~id "tracing is disabled (trace_capacity = 0)"
  | Some r ->
    let limit = Option.value limit ~default:(Array.length r.spans) in
    let spans = ring_recent r limit in
    send_ok t conn ~id
      [
        ("count", Obs.Json.Num (float_of_int (List.length spans)));
        ("spans", Obs.Json.List (List.map Obs.Trace.span_to_json spans));
      ]

let handle_analyze t conn ~id =
  let report = Analysis.Analyzer.analyze (Fabric.Manager.tables t.mgr) in
  let s = Analysis.Analyzer.to_json ~target:"active-tables" report in
  match Obs.Json.of_string s with
  | Ok j ->
    send_ok t conn ~id
      [
        ("certified", Obs.Json.Bool (Analysis.Analyzer.ok report));
        ("epoch", Obs.Json.Num (float_of_int (Fabric.Manager.epoch t.mgr)));
        ("report", j);
      ]
  | Error e -> send_error t conn ~id ("analyzer report did not round-trip: " ^ e)

let handle_epoch_info t conn ~id =
  let entries =
    List.map
      (fun e ->
        Obs.Json.Obj
          [
            ("epoch", Obs.Json.Num (float_of_int e.Fabric.Epoch.epoch));
            ("label", Obs.Json.Str e.Fabric.Epoch.label);
            ("verify_ms", Obs.Json.Num (1000.0 *. e.Fabric.Epoch.verify_s));
          ])
      (Fabric.Manager.epoch_history t.mgr)
  in
  send_ok t conn ~id
    [
      ("epoch", Obs.Json.Num (float_of_int (Fabric.Manager.epoch t.mgr)));
      ("history", Obs.Json.List entries);
    ]

let action_string = function
  | Fabric.Manager.Incremental _ -> "incremental"
  | Fabric.Manager.Full _ -> "full"
  | Fabric.Manager.Noop -> "noop"

(* Drain the whole admission queue in one go: every admitted event
   becomes a manager step back-to-back — one "batch" — and the replies
   land together at the batch boundary. Readers in the same iteration
   saw the pre-batch snapshot; the next iteration serves the new epoch. *)
let drain_events t =
  if not (Queue.is_empty t.pending) then begin
    let batch_size = Queue.length t.pending in
    Obs.Counter.incr t.metrics.Metrics.event_batches;
    while not (Queue.is_empty t.pending) do
      let conn, ev, id = Queue.pop t.pending in
      let o = Obs.Timer.time t.metrics.Metrics.apply_s (fun () -> Fabric.Manager.apply t.mgr ev) in
      Obs.Counter.incr t.metrics.Metrics.events_applied;
      if not conn.dead then
        send_ok t conn ~id
          [
            ("event", Obs.Json.Str (Fabric.Event.to_string ev));
            ("applied", Obs.Json.Bool o.Fabric.Manager.applied);
            ("action", Obs.Json.Str (action_string o.Fabric.Manager.action));
            ("fallback", Obs.Json.Bool o.Fabric.Manager.fallback);
            ("epoch", Obs.Json.Num (float_of_int o.Fabric.Manager.epoch));
            ("note", Obs.Json.Str o.Fabric.Manager.note);
            ("elapsed_ms", Obs.Json.Num (1000.0 *. o.Fabric.Manager.elapsed_s));
            ("batch_size", Obs.Json.Num (float_of_int batch_size));
          ]
    done;
    Obs.Counter.set t.metrics.Metrics.queue_depth 0
  end

let handle_request t conn payload =
  Obs.Counter.incr t.metrics.Metrics.requests;
  Obs.Counter.incr ~n:(String.length payload) t.metrics.Metrics.bytes_in;
  match Obs.Json.of_string payload with
  | Error e ->
    Obs.Counter.incr t.metrics.Metrics.bad_requests;
    send_error t conn ~id:None ("bad JSON: " ^ e)
  | Ok j -> (
    let id = Proto.request_id j in
    match Proto.request_of_json j with
    | Error e ->
      Obs.Counter.incr t.metrics.Metrics.bad_requests;
      send_error t conn ~id e
    | Ok req -> (
      match req with
      | Proto.Ping ->
        send_ok t conn ~id
          [
            ("server", Obs.Json.Str "fabric_service");
            ("proto", Obs.Json.Num (float_of_int Proto.version));
            ("epoch", Obs.Json.Num (float_of_int (Fabric.Manager.epoch t.mgr)));
          ]
      | _ when t.stopping ->
        (* the drain phase serves nothing new; admitted work still
           completes and flushes *)
        send_error t conn ~id "shutting down"
      | Proto.Route { src; dst } -> handle_route t conn ~id ~src ~dst
      | Proto.Event ev ->
        if Queue.length t.pending >= t.config.queue_depth then send_busy t conn ~id
        else begin
          Queue.push (conn, ev, id) t.pending;
          Obs.Counter.incr t.metrics.Metrics.events_enqueued;
          let depth = Queue.length t.pending in
          Obs.Counter.set t.metrics.Metrics.queue_depth depth;
          if depth > Obs.Counter.value t.metrics.Metrics.queue_peak then
            Obs.Counter.set t.metrics.Metrics.queue_peak depth
        end
      | Proto.Stats -> handle_stats t conn ~id
      | Proto.Trace limit -> handle_trace t conn ~id limit
      | Proto.Analyze -> handle_analyze t conn ~id
      | Proto.Epoch_info -> handle_epoch_info t conn ~id
      | Proto.Shutdown ->
        Log.info (fun m -> m "shutdown requested by client %d" conn.cid);
        send_ok t conn ~id [ ("epoch", Obs.Json.Num (float_of_int (Fabric.Manager.epoch t.mgr))) ];
        Atomic.set t.stop_flag true))

(* ------------------------------------------------------------------ *)
(* I/O                                                                 *)
(* ------------------------------------------------------------------ *)

(* Extract every complete frame from the connection's input buffer. A
   frame that oversteps [max_frame] is a protocol violation: reply,
   then close once the reply flushes (there is no way to resync). *)
let parse_frames t conn =
  let pos = ref 0 in
  let continue = ref true in
  while !continue && conn.inlen - !pos >= 4 do
    let len = Int32.to_int (Bytes.get_int32_be conn.inbuf !pos) in
    if len < 0 || len > t.config.max_frame then begin
      Obs.Counter.incr t.metrics.Metrics.bad_requests;
      send_error t conn ~id:None
        (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len t.config.max_frame);
      conn.closing <- true;
      conn.inlen <- 0;
      pos := 0;
      continue := false
    end
    else if conn.inlen - !pos >= 4 + len then begin
      let payload = Bytes.sub_string conn.inbuf (!pos + 4) len in
      pos := !pos + 4 + len;
      (try handle_request t conn payload
       with e ->
         Obs.Counter.incr t.metrics.Metrics.bad_requests;
         send_error t conn ~id:None ("internal error: " ^ Printexc.to_string e))
    end
    else continue := false
  done;
  if !pos > 0 then begin
    Bytes.blit conn.inbuf !pos conn.inbuf 0 (conn.inlen - !pos);
    conn.inlen <- conn.inlen - !pos
  end

let handle_readable t conn =
  let keep_reading = ref true in
  while !keep_reading && not conn.dead do
    match Unix.read conn.fd t.read_chunk 0 (Bytes.length t.read_chunk) with
    | 0 ->
      conn.dead <- true;
      keep_reading := false
    | k ->
      grow_in conn k;
      Bytes.blit t.read_chunk 0 conn.inbuf conn.inlen k;
      conn.inlen <- conn.inlen + k;
      if k < Bytes.length t.read_chunk then keep_reading := false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      keep_reading := false
    | exception Unix.Unix_error (_, _, _) ->
      conn.dead <- true;
      keep_reading := false
  done;
  if not conn.dead then parse_frames t conn

let handle_writable conn =
  let keep = ref true in
  while !keep && conn.outpos < conn.outlen do
    match Unix.write conn.fd conn.outbuf conn.outpos (conn.outlen - conn.outpos) with
    | k -> conn.outpos <- conn.outpos + k
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> keep := false
    | exception Unix.Unix_error (_, _, _) ->
      conn.dead <- true;
      keep := false
  done;
  if conn.outpos >= conn.outlen then begin
    conn.outpos <- 0;
    conn.outlen <- 0;
    if conn.closing then conn.dead <- true
  end

let accept_clients t =
  let keep = ref true in
  while !keep do
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ | Invalid_argument _ -> ());
      let c =
        {
          fd;
          cid = t.next_cid;
          inbuf = Bytes.create 4096;
          inlen = 0;
          outbuf = Bytes.create 4096;
          outlen = 0;
          outpos = 0;
          closing = false;
          dead = false;
        }
      in
      t.next_cid <- t.next_cid + 1;
      t.conns <- c :: t.conns;
      Obs.Counter.incr t.metrics.Metrics.connections
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> keep := false
    | exception Unix.Unix_error (_, _, _) -> keep := false
  done

let cull t =
  let dead, alive = List.partition (fun c -> c.dead) t.conns in
  List.iter
    (fun c ->
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      Obs.Counter.incr t.metrics.Metrics.disconnects)
    dead;
  t.conns <- alive

let teardown t =
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.actual_addr with
  | Proto.Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Proto.Tcp _ -> ());
  (match t.ring with
  | Some _ ->
    Obs.Trace.set_sink None;
    Obs.Control.set_enabled t.prev_obs_enabled
  | None -> ());
  Fabric.Manager.shutdown t.mgr;
  t.running <- false

let serve t =
  Fun.protect ~finally:(fun () -> teardown t)
  @@ fun () ->
  let continue = ref true in
  while !continue do
    (* a stop request (signal handler, another thread, shutdown op)
       flips the loop into its bounded drain phase *)
    if Atomic.get t.stop_flag && not t.stopping then begin
      t.stopping <- true;
      t.drain_until <- Unix.gettimeofday () +. t.config.drain_s
    end;
    let reads =
      (if t.stopping then [] else [ t.listen_fd ])
      @ List.filter_map (fun c -> if c.dead then None else Some c.fd) t.conns
    in
    let writes =
      List.filter_map (fun c -> if (not c.dead) && c.outlen > c.outpos then Some c.fd else None) t.conns
    in
    (match Unix.select reads writes [] t.config.tick_s with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      if List.mem t.listen_fd readable then accept_clients t;
      List.iter
        (fun c -> if (not c.dead) && List.mem c.fd readable then handle_readable t c)
        t.conns;
      (* mutating requests admitted this iteration become one batched
         manager step group, replies at the batch boundary *)
      drain_events t;
      List.iter
        (fun c ->
          if (not c.dead) && (List.mem c.fd writable || c.outlen > c.outpos) then handle_writable c)
        t.conns);
    cull t;
    if t.stopping then begin
      (* even during drain, admitted events complete *)
      drain_events t;
      let pending_out = List.exists (fun c -> c.outlen > c.outpos) t.conns in
      if (not pending_out) || Unix.gettimeofday () > t.drain_until then continue := false
    end
  done
