(** The controller wire protocol: length-prefixed JSON frames over a
    Unix-domain or TCP stream socket.

    A frame is a 4-byte big-endian unsigned payload length followed by
    exactly that many bytes of UTF-8 JSON ({!Obs.Json} is the codec on
    both ends). Requests are JSON objects with an ["op"] field; replies
    are JSON objects with a ["status"] field — ["ok"], ["busy"] (the
    admission queue sheds load, retry later) or ["error"]. A request may
    carry an ["id"] member (any JSON value), echoed verbatim in its
    reply: replies to mutating requests are deferred to the next batch
    boundary, so pipelining clients correlate by id, not order. See
    [doc/fabric_service.md] for the full reference. *)

(** Where a server listens / a client connects. *)
type addr =
  | Unix_path of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host, port *)

val addr_to_string : addr -> string

(** Protocol revision, echoed by [ping]. *)
val version : int

(** Default cap on a single frame's payload (1 MiB). Both sides refuse
    larger frames instead of allocating unboundedly. *)
val default_max_frame : int

(** {1 Requests} *)

type request =
  | Ping
  | Route of {
      src : int;
      dst : int;
    }  (** per-pair path + layer lookup against the active epoch *)
  | Event of Fabric.Event.t  (** topology event; admission-queued and batched *)
  | Stats  (** manager + process + service registry snapshots *)
  | Trace of int option  (** most recent trace spans (optional limit) *)
  | Analyze  (** lint + certify the active tables *)
  | Epoch_info  (** epoch history *)
  | Shutdown  (** graceful drain and exit *)

val request_to_json : request -> Obs.Json.t

(** Decode a request object; [Error] is a human-readable refusal
    (unknown op, missing field, non-terminal ids left for the server). *)
val request_of_json : Obs.Json.t -> (request, string) result

(** The request's ["id"] member, if any — echo it in the reply. *)
val request_id : Obs.Json.t -> Obs.Json.t option

(** {1 Framing}

    Blocking helpers used by clients and tests; the server runs its own
    non-blocking framing inside the event loop. *)

(** [write_frame fd payload] writes one complete frame.
    @raise Unix.Unix_error on I/O failure. *)
val write_frame : Unix.file_descr -> string -> unit

(** [read_frame fd] reads one complete frame. [Ok None] on clean EOF at
    a frame boundary; [Error] on truncation, oversize or I/O failure. *)
val read_frame : ?max_frame:int -> Unix.file_descr -> (string option, string) result

(** [frame payload] is the on-wire bytes of one frame (header + payload). *)
val frame : string -> Bytes.t
