type verdict =
  | Certified of Cert.t
  | Rejected of string

type report = {
  algorithm : string;
  channels : int;
  terminals : int;
  num_layers : int;
  min_layers_lb : int;
  findings : Diag.finding list;
  verdict : verdict;
}

(* Certifier telemetry: one counter/timer sample per run, a span per
   analyze — the per-engine "performance counters" the InfiniBand
   controller literature exports for its routing engines. *)
let c_certify = Obs.Registry.counter "analysis.certify" ~desc:"certificate generate+check runs"

let c_analyses = Obs.Registry.counter "analysis.analyses" ~desc:"full analyzer runs"

let c_certified = Obs.Registry.counter "analysis.certified" ~desc:"analyzer verdicts: certified"

let c_rejected = Obs.Registry.counter "analysis.rejected" ~desc:"analyzer verdicts: rejected"

let t_certify = Obs.Registry.timer "analysis.certify" ~desc:"seconds per certificate generate+check"

let t_analyze = Obs.Registry.timer "analysis.analyze" ~desc:"seconds per full analyzer run"

let certify ft =
  Obs.Counter.incr c_certify;
  Obs.Timer.time t_certify (fun () ->
      match Cert.of_table ft with
      | Error e -> Error (Cert.error_to_string e)
      | Ok cert -> (
        (* the generated witness is untrusted until the checker re-derives
           every dependency from the artifact and accepts it *)
        match Cert.check_table cert ft with
        | Ok () -> Ok cert
        | Error msg -> Error (Printf.sprintf "checker refuted the generated witness: %s" msg)))

(* Topology-level findings (A008/A009/A010): computed on the fabric the
   table is judged against, so a degraded [?graph] override is analyzed,
   not the construction-time topology. *)
let existence_findings ex ~num_layers =
  let open Existence in
  match ex.unreachable with
  | Some (s, d) ->
    [
      Diag.finding Diag.a008_no_deadlock_free_routing
        (Printf.sprintf
           "terminal %d has no path to terminal %d in the enabled fabric: no routing, \
            deadlock-free or otherwise, serves the demand set"
           s d);
    ]
  | None ->
    if ex.min_layers_lb > num_layers then
      let detail =
        match ex.cores with
        | c :: _ ->
          Printf.sprintf
            "declared budget %d is below the provable minimum %d (forced by a unidirectional \
             core of %d channels)"
            num_layers ex.min_layers_lb (Array.length c.cycle)
        | [] ->
          Printf.sprintf "declared budget %d is below the provable minimum %d" num_layers
            ex.min_layers_lb
      in
      [ Diag.finding Diag.a009_layer_budget_infeasible detail ]
    else
      [
        Diag.finding Diag.a010_layer_slack
          (Printf.sprintf "%d layer(s) used, provable minimum %d (slack %d)" num_layers
             ex.min_layers_lb (num_layers - ex.min_layers_lb));
      ]

let analyze_inner ?hop_budget ?graph ft =
  let findings = Lint.table ?hop_budget ?graph ft in
  let fabric = Option.value graph ~default:(Ftable.graph ft) in
  let ex = Existence.analyze fabric in
  let findings = findings @ existence_findings ex ~num_layers:(Ftable.num_layers ft) in
  let findings, verdict =
    match Cert.of_table ft with
    | Error (Cert.Cycle { layer; stuck } as e) ->
      ( findings
        @ [
            Diag.finding ~count:stuck Diag.a007_cdg_cycle
              (Printf.sprintf "layer %d: %d channel(s) stuck on a dependency cycle" layer stuck);
          ],
        Rejected (Cert.error_to_string e) )
    | Error (Cert.Incomplete _ as e) -> (findings, Rejected (Cert.error_to_string e))
    | Ok cert -> (
      match Cert.check_table cert ft with
      | Ok () -> (findings, Certified cert)
      | Error msg -> (findings, Rejected (Printf.sprintf "checker refuted the generated witness: %s" msg)))
  in
  let g = Ftable.graph ft in
  {
    algorithm = Ftable.algorithm ft;
    channels = Graph.num_channels g;
    terminals = Graph.num_terminals g;
    num_layers = Ftable.num_layers ft;
    min_layers_lb = ex.Existence.min_layers_lb;
    findings;
    verdict;
  }

let analyze ?hop_budget ?graph ft =
  Obs.Counter.incr c_analyses;
  let span =
    Obs.Trace.begin_span "analysis.analyze" ~attrs:(fun () ->
        [
          ("algorithm", Obs.Trace.Str (Ftable.algorithm ft));
          ("terminals", Obs.Trace.Int (Graph.num_terminals (Ftable.graph ft)));
        ])
  in
  let report = Obs.Timer.time t_analyze (fun () -> analyze_inner ?hop_budget ?graph ft) in
  (match report.verdict with
  | Certified _ -> Obs.Counter.incr c_certified
  | Rejected _ -> Obs.Counter.incr c_rejected);
  Obs.Trace.end_span span
    ~attrs:
      [
        ( "verdict",
          Obs.Trace.Str (match report.verdict with Certified _ -> "certified" | Rejected _ -> "rejected")
        );
        ("errors", Obs.Trace.Int (Diag.num_errors report.findings));
        ("warnings", Obs.Trace.Int (Diag.num_warnings report.findings));
      ];
  report

let ok r =
  (match r.verdict with Certified _ -> true | Rejected _ -> false) && Diag.num_errors r.findings = 0

let pp ppf r =
  Format.fprintf ppf "@[<v>%s: %d terminals, %d channels, %d layer(s) (provable minimum %d)@,"
    r.algorithm r.terminals r.channels r.num_layers r.min_layers_lb;
  (match r.findings with
  | [] -> Format.fprintf ppf "lint: no findings@,"
  | fs ->
    Format.fprintf ppf "lint: %d error(s), %d warning(s)@," (Diag.num_errors fs) (Diag.num_warnings fs);
    List.iter (fun f -> Format.fprintf ppf "  %a@," Diag.pp_finding f) fs);
  (match r.verdict with
  | Certified cert ->
    Format.fprintf ppf "certificate: CERTIFIED (%d layer(s), topological witness checked)"
      (Cert.num_layers cert)
  | Rejected msg -> Format.fprintf ppf "certificate: REJECTED — %s" msg);
  Format.fprintf ppf "@]"

let to_json ?target r =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  (match target with
  | Some t -> Buffer.add_string buf (Printf.sprintf {|"target":"%s",|} (Diag.json_escape t))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf
       {|"algorithm":"%s","terminals":%d,"channels":%d,"num_layers":%d,"min_layers_lb":%d,|}
       (Diag.json_escape r.algorithm) r.terminals r.channels r.num_layers r.min_layers_lb);
  Buffer.add_string buf
    (Printf.sprintf {|"errors":%d,"warnings":%d,"findings":[%s],|} (Diag.num_errors r.findings)
       (Diag.num_warnings r.findings)
       (String.concat "," (List.map Diag.finding_to_json r.findings)));
  (match r.verdict with
  | Certified cert ->
    Buffer.add_string buf
      (Printf.sprintf {|"verdict":"certified","certificate_layers":%d|} (Cert.num_layers cert))
  | Rejected msg ->
    Buffer.add_string buf (Printf.sprintf {|"verdict":"rejected","reason":"%s"|} (Diag.json_escape msg)));
  Buffer.add_char buf '}';
  Buffer.contents buf
