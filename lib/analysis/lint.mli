(** Static linter over forwarding tables — the entry-level and walk-level
    half of the certifier (the certificate side lives in {!Cert}).

    The linter never trusts the code that produced the table: it reads
    entries through a plain {!view} (a function, not [Ftable]'s internal
    arrays), so tests can inject arbitrary corruption — including entries
    [Ftable]'s own setters would refuse, like out-of-range ports — and
    operators can lint a table against a {e different} (e.g. degraded)
    fabric than the one it was computed for.

    Rules (see {!Diag.catalog}):
    - entry-level, every (node, destination) entry: A003 port-range,
      A005 dead-entry;
    - walk-level, following the functional graph of each destination from
      every terminal: A001 unreachable-dest (a walk starves at a missing
      entry), A002 forwarding-loop (a walk enters a cycle), A006
      nonminimal-hop-budget (a walk arrives but over budget). Walks that
      die at an entry-level defect are charged to that defect only, so
      every corruption maps to exactly one rule id.
    - pair-level: A004 layer-transition (a route's layer is outside the
      declared layer count). *)

type hop_budget =
  [ `Minimal  (** every route must have min-hop length *)
  | `Slack of int  (** min-hop length plus at most this many extra hops *)
  ]

type view = {
  graph : Graph.t;  (** fabric to lint against (enablement, adjacency) *)
  num_nodes : int;
  terminals : int array;
  next : node:int -> dst:int -> int option;
  layer : src:int -> dst:int -> int;
  num_layers : int;
}

(** [view_of_table ?graph ft] reads entries from [ft]; [graph] overrides
    the fabric (same node/channel id space) — the degraded-fabric case. *)
val view_of_table : ?graph:Graph.t -> Ftable.t -> view

(** [run ?hop_budget v] lints the view and returns all findings, grouped
    per destination in rule-id order. Without [hop_budget], A006 is off
    (routing algorithms differ on minimality by design). *)
val run : ?hop_budget:hop_budget -> view -> Diag.finding list

(** [table ?hop_budget ?graph ft] is [run] over {!view_of_table}. *)
val table : ?hop_budget:hop_budget -> ?graph:Graph.t -> Ftable.t -> Diag.finding list
