type severity =
  | Error
  | Warning
  | Info

type rule = {
  id : string;
  severity : severity;
  title : string;
}

let a001_unreachable_dest =
  { id = "A001-unreachable-dest"; severity = Error; title = "destination unreachable by following the table" }

let a002_forwarding_loop =
  { id = "A002-forwarding-loop"; severity = Error; title = "forwarding entries form a loop" }

let a003_port_range =
  { id = "A003-port-range"; severity = Error; title = "entry names a channel that does not leave its node" }

let a004_layer_transition =
  {
    id = "A004-layer-transition";
    severity = Error;
    title = "route layer outside the declared layer count (illegal SL\xe2\x86\x92VL transition mid-route)";
  }

let a005_dead_entry =
  { id = "A005-dead-entry"; severity = Error; title = "entry points into a disabled channel" }

let a006_nonminimal =
  { id = "A006-nonminimal-hop-budget"; severity = Warning; title = "route exceeds its hop budget" }

let a007_cdg_cycle =
  {
    id = "A007-cdg-cycle";
    severity = Error;
    title = "a layer's channel dependency graph has a cycle (Dally/Seitz condition violated)";
  }

let catalog =
  [
    a001_unreachable_dest;
    a002_forwarding_loop;
    a003_port_range;
    a004_layer_transition;
    a005_dead_entry;
    a006_nonminimal;
    a007_cdg_cycle;
  ]

type finding = {
  rule : rule;
  dst : int option;
  count : int;
  detail : string;
}

let finding ?dst ?(count = 1) rule detail = { rule; dst; count; detail }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let has_rule findings id = List.exists (fun f -> f.rule.id = id) findings

let num_errors findings = List.length (List.filter (fun f -> f.rule.severity = Error) findings)

let num_warnings findings = List.length (List.filter (fun f -> f.rule.severity = Warning) findings)

let pp_finding ppf f =
  Format.fprintf ppf "%-7s %s" (severity_to_string f.rule.severity) f.rule.id;
  (match f.dst with
  | Some d -> Format.fprintf ppf " dst=%d" d
  | None -> ());
  if f.count > 1 then Format.fprintf ppf " (%d)" f.count;
  Format.fprintf ppf ": %s" f.detail

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Printf.sprintf {|{"rule":"%s","severity":"%s","dst":%s,"count":%d,"detail":"%s"}|}
    (json_escape f.rule.id)
    (severity_to_string f.rule.severity)
    (match f.dst with
    | Some d -> string_of_int d
    | None -> "null")
    f.count (json_escape f.detail)
