type severity =
  | Error
  | Warning
  | Info

type rule = {
  id : string;
  severity : severity;
  title : string;
}

let a001_unreachable_dest =
  { id = "A001-unreachable-dest"; severity = Error; title = "destination unreachable by following the table" }

let a002_forwarding_loop =
  { id = "A002-forwarding-loop"; severity = Error; title = "forwarding entries form a loop" }

let a003_port_range =
  { id = "A003-port-range"; severity = Error; title = "entry names a channel that does not leave its node" }

let a004_layer_transition =
  {
    id = "A004-layer-transition";
    severity = Error;
    title = "route layer outside the declared layer count (illegal SL->VL transition mid-route)";
  }

let a005_dead_entry =
  { id = "A005-dead-entry"; severity = Error; title = "entry points into a disabled channel" }

let a006_nonminimal =
  { id = "A006-nonminimal-hop-budget"; severity = Warning; title = "route exceeds its hop budget" }

let a007_cdg_cycle =
  {
    id = "A007-cdg-cycle";
    severity = Error;
    title = "a layer's channel dependency graph has a cycle (Dally/Seitz condition violated)";
  }

let a008_no_deadlock_free_routing =
  {
    id = "A008-no-deadlock-free-routing";
    severity = Error;
    title = "no deadlock-free routing exists: some terminal pair is unreachable in the enabled fabric";
  }

let a009_layer_budget_infeasible =
  {
    id = "A009-layer-budget-infeasible";
    severity = Error;
    title = "the declared layer budget is below the fabric's provable layer minimum";
  }

let a010_layer_slack =
  {
    id = "A010-layer-slack";
    severity = Info;
    title = "layers used vs. the fabric's provable layer minimum (per-topology slack)";
  }

let catalog =
  [
    a001_unreachable_dest;
    a002_forwarding_loop;
    a003_port_range;
    a004_layer_transition;
    a005_dead_entry;
    a006_nonminimal;
    a007_cdg_cycle;
    a008_no_deadlock_free_routing;
    a009_layer_budget_infeasible;
    a010_layer_slack;
  ]

let find_rule id = List.find_opt (fun r -> r.id = id) catalog

let explain r =
  match r.id with
  | "A001-unreachable-dest" ->
    "A forwarding walk from some terminal toward this destination reaches a node with no entry \
     for it, so traffic is dropped. Re-run the routing engine over the current fabric; if the \
     fabric itself is partitioned the analyzer also raises A008, and the cabling must be repaired \
     before any table can serve the demand."
  | "A002-forwarding-loop" ->
    "Following the per-destination entries revisits a node, so packets circulate forever. This is \
     always a table-construction bug (destination-based tables define one tree per destination); \
     rebuild the table rather than patching entries by hand."
  | "A003-port-range" ->
    "An entry names a channel id that is out of range or whose source is not the node holding the \
     entry. The table and the fabric disagree about channel ids, usually a stale artifact loaded \
     against a regenerated topology. Regenerate or reload the matching pair."
  | "A004-layer-transition" ->
    "A route is assigned a virtual layer at or above the table's declared layer count, so the \
     packet would need an SL->VL transition mid-route that InfiniBand-style fabrics cannot \
     express. Raise the declared layer count to cover every assigned layer, or rerun the layer \
     assignment under the intended budget."
  | "A005-dead-entry" ->
    "An entry forwards into a channel that is disabled in the fabric (a pruned cable the tables \
     still reference). Rerun repair/rerouting against the degraded fabric so every entry uses \
     enabled channels only."
  | "A006-nonminimal-hop-budget" ->
    "A route exceeds its hop budget (shortest-path, or shortest-plus-slack when --slack is \
     given). Detours are legal and sometimes deliberate (deadlock avoidance, load balancing); \
     treat this as a quality signal, not a veto."
  | "A007-cdg-cycle" ->
    "Some virtual layer's channel dependency graph has a directed cycle, violating the \
     Dally/Seitz condition, the layer can deadlock and no certificate exists. Re-run the cycle \
     breaking with a larger layer budget, and compare against the fabric's provable minimum \
     (A010) to see whether any budget can work."
  | "A008-no-deadlock-free-routing" ->
    "Some ordered terminal pair has no path at all in the enabled fabric, so no routing, \
     deadlock-free or otherwise, can serve the demand set; with reachability restored, one \
     simple path per route on its own layer is always deadlock-free, so reachability is exactly \
     the existence condition. Repair the fabric (re-enable or re-cable the cut) before routing."
  | "A009-layer-budget-infeasible" ->
    "The fabric contains a clean unidirectional core (a simple channel cycle that all routes \
     between its attached terminals must traverse in order) whose piercing bound exceeds the \
     declared layer budget, so every destination-based routing under this budget has a cyclic \
     layer. Raise the budget to at least the reported minimum, or add reverse cabling to break \
     the core; the emitted witness shows the forced dependency cycle."
  | "A010-layer-slack" ->
    "Informational: the table's layer count against the fabric's provable lower bound. Zero \
     slack means the engine is provably optimal on this fabric; positive slack bounds how many \
     layers a better engine could still save (the true optimum may lie anywhere in between)."
  | _ -> "No remediation recorded for this rule."

type finding = {
  rule : rule;
  dst : int option;
  count : int;
  detail : string;
}

let finding ?dst ?(count = 1) rule detail = { rule; dst; count; detail }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let has_rule findings id = List.exists (fun f -> f.rule.id = id) findings

let num_errors findings = List.length (List.filter (fun f -> f.rule.severity = Error) findings)

let num_warnings findings = List.length (List.filter (fun f -> f.rule.severity = Warning) findings)

let pp_finding ppf f =
  Format.fprintf ppf "%-7s %s" (severity_to_string f.rule.severity) f.rule.id;
  (match f.dst with
  | Some d -> Format.fprintf ppf " dst=%d" d
  | None -> ());
  if f.count > 1 then Format.fprintf ppf " (%d)" f.count;
  Format.fprintf ppf ": %s" f.detail

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Printf.sprintf {|{"rule":"%s","severity":"%s","dst":%s,"count":%d,"detail":"%s"}|}
    (json_escape f.rule.id)
    (severity_to_string f.rule.severity)
    (match f.dst with
    | Some d -> string_of_int d
    | None -> "null")
    f.count (json_escape f.detail)
