type kind =
  | Layer_cycle of { layer : int }
  | Topology_core of { min_layers : int }

type t = {
  kind : kind;
  num_channels : int;
  cycle : int array;
  srcs : int array;
  dsts : int array;
}

(* ------------------------------------------------------------------ *)
(* Generation: layer cycles                                            *)
(* ------------------------------------------------------------------ *)

(* Greedy edge-deletion minimization: while the cycle has a chord in the
   layer's CDG, replace it with the strictly shorter cycle through the
   chord. The fixed point is chordless, so removing any single
   dependency from the witness leaves an acyclic remainder. *)
let minimize cdg seq0 =
  let seq = ref seq0 in
  let improved = ref true in
  while !improved do
    improved := false;
    let s = !seq in
    let k = Array.length s in
    if k > 2 then (
      try
        for i = 0 to k - 1 do
          for d = 2 to k - 1 do
            let j = (i + d) mod k in
            if Cdg.live cdg ~c1:s.(i) ~c2:s.(j) then begin
              let len = ((i - j + k) mod k) + 1 in
              if len < k then begin
                seq := Array.init len (fun x -> s.((j + x) mod k));
                improved := true;
                raise Exit
              end
            end
          done
        done
      with Exit -> ())
  done;
  !seq

let of_table ft =
  match Cert.artifacts_of_table ft with
  | Error msg -> Error msg
  | Ok (store, layer_of_path) ->
    let num_layers =
      Array.fold_left (fun acc l -> max acc (l + 1)) (Ftable.num_layers ft) layer_of_path
    in
    let found = ref None in
    let l = ref 0 in
    while !found = None && !l < num_layers do
      let layer = !l in
      let cdg = Cdg.of_store ~filter:(fun p -> layer_of_path.(p) = layer) store in
      (match Cycle.find_cycle (Cycle.create cdg) with
      | None -> ()
      | Some edges ->
        let seq = minimize cdg (Array.map fst edges) in
        let n = Array.length seq in
        let srcs = Array.make n 0 and dsts = Array.make n 0 in
        for p = 0 to n - 1 do
          let c1 = seq.(p) and c2 = seq.((p + 1) mod n) in
          match Cdg.edge_pairs cdg ~c1 ~c2 with
          | [] -> invalid_arg "Witness.of_table: live cycle edge without an inducing pair"
          | pairs ->
            let pid = List.fold_left min max_int pairs in
            let src, dst = Ftable.pair_of_id ft pid in
            srcs.(p) <- src;
            dsts.(p) <- dst
        done;
        found :=
          Some
            {
              kind = Layer_cycle { layer };
              num_channels = Graph.num_channels (Ftable.graph ft);
              cycle = seq;
              srcs;
              dsts;
            });
      incr l
    done;
    Ok !found

(* ------------------------------------------------------------------ *)
(* Generation: topology cores                                          *)
(* ------------------------------------------------------------------ *)

let of_core g (core : Existence.core) =
  let n = Array.length core.Existence.cycle in
  let hosts = core.Existence.hosts in
  let r = Array.length hosts in
  if core.Existence.bound < 2 || r < 2 then
    Error "Witness.of_core: core does not force more than one layer"
  else begin
    let srcs = Array.make n 0 and dsts = Array.make n 0 in
    let missing = ref None in
    for p = 0 to n - 1 do
      (* the route between consecutive hosts h_i -> h_{i-1} covers every
         pair outside the window [h_{i-1}-1 .. h_i-1]; piercing >= 2
         guarantees some window misses p *)
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < r do
        let cur = hosts.(!i) and prev = hosts.((!i + r - 1) mod r) in
        let wstart = ((prev - 1) mod n + n) mod n in
        let wlen = (((cur - prev) mod n + n) mod n) + 1 in
        if ((p - wstart + n) mod n) >= wlen then begin
          srcs.(p) <- core.Existence.host_terminal.(cur);
          dsts.(p) <- core.Existence.host_terminal.(prev);
          found := true
        end;
        incr i
      done;
      if not !found && !missing = None then missing := Some p
    done;
    match !missing with
    | Some p -> Error (Printf.sprintf "Witness.of_core: no host route covers position %d" p)
    | None ->
      Ok
        {
          kind = Topology_core { min_layers = core.Existence.bound };
          num_channels = Graph.num_channels g;
          cycle = Array.copy core.Existence.cycle;
          srcs;
          dsts;
        }
  end

(* ------------------------------------------------------------------ *)
(* Checking (trusted side)                                             *)
(* ------------------------------------------------------------------ *)

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Shared shape checks: cycle length, channel range/distinctness, and
   head-to-tail chaining in the graph. *)
let check_shape w g =
  let m = Graph.num_channels g in
  let n = Array.length w.cycle in
  if w.num_channels <> m then err "witness is for %d channels, graph has %d" w.num_channels m
  else if n < 2 then err "cycle has %d channel(s); need at least 2" n
  else if Array.length w.srcs <> n || Array.length w.dsts <> n then
    err "witness names %d/%d demands for %d positions" (Array.length w.srcs) (Array.length w.dsts) n
  else begin
    let seen = Hashtbl.create n in
    let result = ref (Ok ()) in
    Array.iteri
      (fun i c ->
        if !result = Ok () then
          if c < 0 || c >= m then result := err "position %d: channel %d out of range" i c
          else if Hashtbl.mem seen c then result := err "channel %d appears twice in the cycle" c
          else begin
            Hashtbl.add seen c ();
            if not (Graph.channel_enabled g c) then
              result := err "position %d: channel %d is disabled" i c
            else
              let nxt = w.cycle.((i + 1) mod n) in
              if nxt >= 0 && nxt < m then begin
                let hd = (Graph.channel g c).Channel.dst in
                let tl = (Graph.channel g nxt).Channel.src in
                if hd <> tl then
                  result := err "position %d: head of channel %d is %d, not tail of %d" i c hd nxt
              end
          end)
      w.cycle;
    !result
  end

let ( let* ) r f =
  match r with
  | Ok () -> f ()
  | Error _ as e -> e

let check_table w ft =
  match w.kind with
  | Topology_core _ -> Error "topology-core witness: check it against the graph, not a table"
  | Layer_cycle { layer } -> (
    let g = Ftable.graph ft in
    let* () = check_shape w g in
    if layer < 0 then err "negative layer %d" layer
    else
      match Cert.artifacts_of_table ft with
      | Error msg -> err "routes not materializable: %s" msg
      | Ok (store, layer_of_path) ->
        let n = Array.length w.cycle in
        let result = ref (Ok ()) in
        for p = 0 to n - 1 do
          if !result = Ok () then begin
            let c1 = w.cycle.(p) and c2 = w.cycle.((p + 1) mod n) in
            let src = w.srcs.(p) and dst = w.dsts.(p) in
            if not (Graph.is_terminal g src && Graph.is_terminal g dst) then
              result := err "position %d: demand (%d, %d) is not a terminal pair" p src dst
            else if src = dst then result := err "position %d: demand source equals destination" p
            else begin
              let pair = Ftable.pair_id ft ~src ~dst in
              if not (Route_store.mem store ~pair) then
                result := err "position %d: no route for demand (%d, %d)" p src dst
              else if layer_of_path.(pair) <> layer then
                result :=
                  err "position %d: route (%d, %d) rides layer %d, witness claims %d" p src dst
                    layer_of_path.(pair) layer
              else begin
                let induced = ref false in
                Route_store.iter_deps store ~pair (fun a b ->
                    if a = c1 && b = c2 then induced := true);
                if not !induced then
                  result :=
                    err "position %d: route (%d, %d) does not induce dependency (%d, %d)" p src dst
                      c1 c2
              end
            end
          end
        done;
        !result)

(* Re-derive the clean-core structure from the graph alone: the cycle
   channels must be the only enabled channels between core nodes, the
   core's strongly-connected neighborhood must split into one component
   per core node once the cycle channels are removed, and every named
   demand must be forced across its dependency pair. The bound is then
   recomputed from the verified hosts with the pure piercing arithmetic,
   so an inflated claim is refused even if the structure checks out. *)
let check_graph w g =
  match w.kind with
  | Layer_cycle _ -> Error "layer-cycle witness: check it against the forwarding table"
  | Topology_core { min_layers } ->
    let* () = check_shape w g in
    if min_layers < 2 then err "claimed minimum %d proves nothing (need >= 2)" min_layers
    else begin
      let n = Array.length w.cycle in
      let num_nodes = Graph.num_nodes g in
      let tail c = (Graph.channel g c).Channel.src in
      let head c = (Graph.channel g c).Channel.dst in
      let rev c = match Graph.reverse_channel g c with Some r -> r | None -> -1 in
      let* () =
        let bad = ref (Ok ()) in
        for i = 0 to n - 1 do
          if !bad = Ok () && w.cycle.((i + 1) mod n) = rev w.cycle.(i) then
            bad :=
              err "position %d: dependency onto the reverse channel (%d, %d) is never induced" i
                w.cycle.(i)
                (w.cycle.((i + 1) mod n))
        done;
        !bad
      in
      (* the core's node SCC: forward/backward reachability from core
         node 0 (all core nodes are mutually reachable along the cycle) *)
      let reach seed next =
        let mark = Array.make num_nodes false in
        let queue = Queue.create () in
        mark.(seed) <- true;
        Queue.add seed queue;
        while not (Queue.is_empty queue) do
          let v = Queue.take queue in
          next v (fun w ->
              if not mark.(w) then begin
                mark.(w) <- true;
                Queue.add w queue
              end)
        done;
        mark
      in
      let fwd =
        reach (tail w.cycle.(0)) (fun v visit ->
            Array.iter (fun c -> visit (head c)) (Graph.out_channels g v))
      in
      let bwd =
        reach (tail w.cycle.(0)) (fun v visit ->
            Array.iter (fun c -> visit (tail c)) (Graph.in_channels g v))
      in
      let in_scc v = fwd.(v) && bwd.(v) in
      (* component labeling: seed core node i with label i, flood over
         enabled non-core channels (both directions) within the SCC; a
         merge of two labels is a bypass and refutes the witness *)
      let is_core = Array.make (Graph.num_channels g) false in
      Array.iter (fun c -> is_core.(c) <- true) w.cycle;
      let label = Array.make num_nodes (-1) in
      let conflict = ref None in
      let queue = Queue.create () in
      Array.iteri
        (fun i c ->
          let v = tail c in
          if label.(v) >= 0 then begin
            if !conflict = None then conflict := Some v
          end
          else begin
            label.(v) <- i;
            Queue.add v queue
          end)
        w.cycle;
      while !conflict = None && not (Queue.is_empty queue) do
        let v = Queue.take queue in
        let lab = label.(v) in
        let visit u =
          if in_scc u then
            if label.(u) < 0 then begin
              label.(u) <- lab;
              Queue.add u queue
            end
            else if label.(u) <> lab then conflict := Some u
        in
        Array.iter (fun c -> if not is_core.(c) then visit (head c)) (Graph.out_channels g v);
        Array.iter (fun c -> if not is_core.(c) then visit (tail c)) (Graph.in_channels g v)
      done;
      match !conflict with
      | Some v -> err "node %d bridges two core components: routes can bypass the core" v
      | None ->
        let result = ref (Ok ()) in
        for p = 0 to n - 1 do
          if !result = Ok () then begin
            let src = w.srcs.(p) and dst = w.dsts.(p) in
            if not (Graph.is_terminal g src && Graph.is_terminal g dst) then
              result := err "position %d: demand (%d, %d) is not a terminal pair" p src dst
            else if not (in_scc src && in_scc dst) then
              result := err "position %d: demand (%d, %d) is not inside the core's SCC" p src dst
            else begin
              let a = label.(src) and b = label.(dst) in
              if a < 0 || b < 0 then
                result := err "position %d: demand terminal outside every core component" p
              else if a = b then
                result := err "position %d: demand stays inside one core component" p
              else begin
                let d = ((b - a) mod n + n) mod n in
                let off = ((p - a) mod n + n) mod n in
                if off > d - 2 then
                  result :=
                    err "position %d: forced route %d -> %d does not cover pair (%d, %d)" p src dst
                      w.cycle.(p)
                      (w.cycle.((p + 1) mod n))
              end
            end
          end
        done;
        let* () = !result in
        (* hosts are re-derived from the fabric itself, not from the
           witness's demand list: a position is a host iff its verified
           component contains a terminal. The recomputed bound therefore
           never depends on which demands the generator happened to
           name, only on the conflict-free labeling above. *)
        let host = Array.make n false in
        Array.iter (fun t -> if label.(t) >= 0 then host.(label.(t)) <- true) (Graph.terminals g);
        let hosts =
          Array.of_list (List.filter (fun i -> host.(i)) (List.init n (fun i -> i)))
        in
        let pierce = Existence.piercing ~n ~hosts in
        if min_layers > pierce then
          err "claimed minimum %d exceeds the recomputed piercing bound %d" min_layers pierce
        else Ok ()
    end

(* ------------------------------------------------------------------ *)
(* Artifacts                                                           *)
(* ------------------------------------------------------------------ *)

let to_string w =
  let buf = Buffer.create 256 in
  let n = Array.length w.cycle in
  (match w.kind with
  | Layer_cycle { layer } ->
    Buffer.add_string buf
      (Printf.sprintf "witness v1 kind layer channels %d length %d layer %d\n" w.num_channels n
         layer)
  | Topology_core { min_layers } ->
    Buffer.add_string buf
      (Printf.sprintf "witness v1 kind core channels %d length %d min-layers %d\n" w.num_channels n
         min_layers));
  Buffer.add_string buf "cycle";
  Array.iter (fun c -> Buffer.add_string buf (Printf.sprintf " %d" c)) w.cycle;
  Buffer.add_char buf '\n';
  for p = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "dep %d %d %d\n" p w.srcs.(p) w.dsts.(p))
  done;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let ints_of l = List.map int_of_string l in
  try
    match lines with
    | header :: rest -> (
      let kind, m, n =
        match String.split_on_char ' ' header |> List.filter (fun t -> t <> "") with
        | [ "witness"; "v1"; "kind"; "layer"; "channels"; m; "length"; n; "layer"; l ] ->
          (Layer_cycle { layer = int_of_string l }, int_of_string m, int_of_string n)
        | [ "witness"; "v1"; "kind"; "core"; "channels"; m; "length"; n; "min-layers"; k ] ->
          (Topology_core { min_layers = int_of_string k }, int_of_string m, int_of_string n)
        | _ -> failwith "bad header"
      in
      if n < 2 then Error "witness: cycle length below 2"
      else begin
        let cycle = ref [||] in
        let srcs = Array.make n 0 and dsts = Array.make n 0 in
        let seen_dep = Array.make n false in
        let finished = ref false in
        List.iter
          (fun line ->
            if not !finished then
              match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
              | "cycle" :: ids ->
                let a = Array.of_list (ints_of ids) in
                if Array.length a <> n then failwith "cycle length mismatch";
                cycle := a
              | [ "dep"; p; src; dst ] ->
                let p = int_of_string p in
                if p < 0 || p >= n then failwith "dep position out of range";
                if seen_dep.(p) then failwith "duplicate dep position";
                seen_dep.(p) <- true;
                srcs.(p) <- int_of_string src;
                dsts.(p) <- int_of_string dst
              | [ "end" ] -> finished := true
              | _ -> failwith "unrecognized line")
          rest;
        if not !finished then Error "witness: missing end line"
        else if Array.length !cycle <> n then Error "witness: missing cycle line"
        else if not (Array.for_all (fun b -> b) seen_dep) then
          Error "witness: missing dep line(s)"
        else Ok { kind; num_channels = m; cycle = !cycle; srcs; dsts }
      end)
    | [] -> Error "witness: empty input"
  with
  | Failure msg -> Error (Printf.sprintf "witness: %s" msg)

let to_json w =
  let n = Array.length w.cycle in
  let ints a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
  let deps =
    String.concat ","
      (List.init n (fun p -> Printf.sprintf {|{"src":%d,"dst":%d}|} w.srcs.(p) w.dsts.(p)))
  in
  match w.kind with
  | Layer_cycle { layer } ->
    Printf.sprintf {|{"kind":"layer-cycle","layer":%d,"channels":%d,"cycle":[%s],"deps":[%s]}|}
      layer w.num_channels (ints w.cycle) deps
  | Topology_core { min_layers } ->
    Printf.sprintf
      {|{"kind":"topology-core","min_layers":%d,"channels":%d,"cycle":[%s],"deps":[%s]}|}
      min_layers w.num_channels (ints w.cycle) deps
