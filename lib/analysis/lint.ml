type hop_budget =
  [ `Minimal
  | `Slack of int
  ]

type view = {
  graph : Graph.t;
  num_nodes : int;
  terminals : int array;
  next : node:int -> dst:int -> int option;
  layer : src:int -> dst:int -> int;
  num_layers : int;
}

let view_of_table ?graph ft =
  let g = Option.value graph ~default:(Ftable.graph ft) in
  {
    graph = g;
    num_nodes = Graph.num_nodes g;
    terminals = Graph.terminals g;
    next = (fun ~node ~dst -> Ftable.next ft ~node ~dst);
    layer = (fun ~src ~dst -> Ftable.layer ft ~src ~dst);
    num_layers = Ftable.num_layers ft;
  }

(* Walk statuses, memoized per destination over all nodes. *)
let st_unknown = -2

let st_visiting = -1

let st_reach = 0

let st_missing = 1 (* A001 *)

let st_loop = 2 (* A002 *)

let st_bad_port = 3 (* A003, counted at the entry level *)

let st_dead = 4 (* A005, counted at the entry level *)

let valid_channel g ~node c =
  c >= 0 && c < Graph.num_channels g && (Graph.channel g c).Channel.src = node

(* Hop distance of every node TO dst over the enabled adjacency (reverse
   BFS), for the hop-budget rule. *)
let dist_to g dst =
  let dist = Array.make (Graph.num_nodes g) max_int in
  let queue = Queue.create () in
  dist.(dst) <- 0;
  Queue.add dst queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    Array.iter
      (fun c ->
        let u = (Graph.channel g c).Channel.src in
        if dist.(u) = max_int then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u queue
        end)
      (Graph.in_channels g v)
  done;
  dist

(* Per-(rule, dst) aggregation: count plus the first offender's detail. *)
type agg = {
  mutable n : int;
  mutable first : string;
}

let agg () = { n = 0; first = "" }

let hit a detail =
  if a.n = 0 then a.first <- detail;
  a.n <- a.n + 1

let flush ?dst acc rule a = if a.n > 0 then acc := Diag.finding ?dst ~count:a.n rule a.first :: !acc

let run ?hop_budget v =
  let g = v.graph in
  let findings = ref [] in
  let status = Array.make v.num_nodes st_unknown in
  let hops = Array.make v.num_nodes 0 in
  Array.iter
    (fun dst ->
      let a001 = agg () and a002 = agg () and a003 = agg () in
      let a004 = agg () and a005 = agg () and a006 = agg () in
      (* entry-level scan: every node's entry toward dst *)
      for node = 0 to v.num_nodes - 1 do
        match v.next ~node ~dst with
        | None -> ()
        | Some c ->
          if not (valid_channel g ~node c) then
            hit a003 (Printf.sprintf "node %d forwards to channel %d, which does not leave it" node c)
          else if not (Graph.channel_enabled g c) then
            hit a005 (Printf.sprintf "node %d forwards into disabled channel %d" node c)
      done;
      (* walk-level: resolve the functional graph of dst lazily *)
      Array.fill status 0 v.num_nodes st_unknown;
      let rec walk n =
        if n = dst then (st_reach, 0)
        else if status.(n) = st_visiting then (st_loop, 0)
        else if status.(n) <> st_unknown then (status.(n), hops.(n))
        else
          match v.next ~node:n ~dst with
          | None ->
            status.(n) <- st_missing;
            (st_missing, 0)
          | Some c ->
            if not (valid_channel g ~node:n c) then begin
              status.(n) <- st_bad_port;
              (st_bad_port, 0)
            end
            else if not (Graph.channel_enabled g c) then begin
              status.(n) <- st_dead;
              (st_dead, 0)
            end
            else begin
              status.(n) <- st_visiting;
              let code, h = walk (Graph.channel g c).Channel.dst in
              if code = st_reach then begin
                status.(n) <- st_reach;
                hops.(n) <- h + 1;
                (st_reach, h + 1)
              end
              else begin
                (* inherit the first defect downstream; a node inside or
                   upstream of a cycle never delivers *)
                status.(n) <- code;
                (code, 0)
              end
            end
      in
      let dist = match hop_budget with None -> [||] | Some _ -> dist_to g dst in
      Array.iter
        (fun src ->
          if src <> dst then begin
            (match walk src with
            | code, _ when code = st_missing ->
              hit a001 (Printf.sprintf "terminal %d starves toward %d at a missing entry" src dst)
            | code, _ when code = st_loop ->
              hit a002 (Printf.sprintf "terminal %d enters a forwarding loop toward %d" src dst)
            | code, h when code = st_reach -> (
              match hop_budget with
              | None -> ()
              | Some budget ->
                let slack = match budget with `Minimal -> 0 | `Slack s -> s in
                if dist.(src) < max_int && h > dist.(src) + slack then
                  hit a006
                    (Printf.sprintf "route %d -> %d takes %d hops, budget %d" src dst h (dist.(src) + slack)))
            | _ -> () (* st_bad_port / st_dead: charged at the entry level *));
            let l = v.layer ~src ~dst in
            if l < 0 || l >= v.num_layers then
              hit a004
                (Printf.sprintf "route %d -> %d rides layer %d of a %d-layer table" src dst l v.num_layers)
          end)
        v.terminals;
      (* prepend in id order; the final List.rev yields destinations in
         terminal order and rules in id order within each *)
      flush ~dst findings Diag.a001_unreachable_dest a001;
      flush ~dst findings Diag.a002_forwarding_loop a002;
      flush ~dst findings Diag.a003_port_range a003;
      flush ~dst findings Diag.a004_layer_transition a004;
      flush ~dst findings Diag.a005_dead_entry a005;
      flush ~dst findings Diag.a006_nonminimal a006)
    v.terminals;
  List.rev !findings

let table ?hop_budget ?graph ft = run ?hop_budget (view_of_table ?graph ft)
