(** Checkable deadlock-freedom certificates.

    The paper's safety claim is an offline graph property: every virtual
    layer's channel dependency graph (CDG) is acyclic (Dally & Seitz).
    Instead of trusting the code that constructed the layers, the
    {e generator} emits, per layer, a topological numbering of all
    channels — a compact int-array witness — and the small trusted
    {e checker} re-derives every dependency straight from the routing
    artifact and verifies that each one ascends in the numbering. Any
    numbering that ascends along every dependency proves the layer's CDG
    acyclic, so the checker's soundness does not depend on how the
    numbering was obtained: the generator, the layer assigner, and the
    whole of [lib/cdg] stay outside the trusted base.

    The checker runs in one O(V+E) pass (V = channels, E = route
    dependencies); the generator is a per-layer Kahn sort, also
    O(V+E). *)

type t = {
  num_channels : int;
  layers : int array array;
      (** [layers.(l).(c)] is channel [c]'s topological position in
          layer [l]'s numbering; length {!num_channels} per layer *)
}

val num_layers : t -> int

(** {1 Generation (untrusted side)} *)

type error =
  | Incomplete of string
      (** the artifact has no loop-free route for some pair — nothing to
          certify (the linter names the defect) *)
  | Cycle of {
      layer : int;
      stuck : int;  (** channels left on the cycle(s) after the sort *)
    }  (** a layer's CDG is cyclic — no certificate exists *)

val error_to_string : error -> string

(** [generate store ~layer_of_path ~num_layers] builds one topological
    numbering per layer from the route store ([layer_of_path] indexed by
    pair id, [-1] for absent pairs).
    @raise Invalid_argument if [layer_of_path] does not cover the store
    or [num_layers < 1]. *)
val generate : Route_store.t -> layer_of_path:int array -> num_layers:int -> (t, error) result

(** [of_table ft] materializes the table's routes and layer assignment
    and certifies them; layers are sized to cover both the declared
    layer count and the highest layer any route uses. *)
val of_table : Ftable.t -> (t, error) result

(** {1 Checking (trusted side)} *)

(** [check cert store ~layer_of_path] validates the certificate against
    the routing artifact in one pass: shape (channel count, one complete
    numbering per layer), every pair's layer within the certificate, and
    every dependency [(c1, c2)] strictly ascending in its layer's
    numbering. [Error] names the first violation. *)
val check : t -> Route_store.t -> layer_of_path:int array -> (unit, string) result

(** {!check} against a forwarding table's materialized routes. [Error]
    also covers tables whose routes cannot be materialized at all. *)
val check_table : t -> Ftable.t -> (unit, string) result

(** {1 Artifacts}

    Text format (line-oriented, [#] comments):
    {v
    certificate v1 channels <m> layers <k>
    layer <l> <pos_0> <pos_1> ... <pos_{m-1}>
    end
    v} *)

val to_string : t -> string

val of_string : string -> (t, string) result

(** Extract the per-pair artifacts ([store], [layer_of_path]) the
    certifier works over from a forwarding table. Shared by the analyzer
    and the generator; independent of [lib/cdg]. *)
val artifacts_of_table : Ftable.t -> (Route_store.t * int array, string) result
