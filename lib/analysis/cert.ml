type t = {
  num_channels : int;
  layers : int array array;
}

let num_layers t = Array.length t.layers

type error =
  | Incomplete of string
  | Cycle of {
      layer : int;
      stuck : int;
    }

let error_to_string = function
  | Incomplete msg -> Printf.sprintf "nothing to certify: %s" msg
  | Cycle { layer; stuck } ->
    Printf.sprintf "layer %d: channel dependency cycle (%d channel(s) unsortable)" layer stuck

(* One topological numbering per layer, each by Kahn's algorithm over a
   throwaway CSR adjacency built straight from the store's dependencies —
   deliberately NOT Deadlock.Cdg: the certifier must not share code with
   the machinery it certifies. Multi-edges are kept (indegree counts
   multiplicity); they change nothing about the order. *)
let generate store ~layer_of_path ~num_layers =
  if num_layers < 1 then invalid_arg "Cert.generate: num_layers < 1";
  if Array.length layer_of_path <> Route_store.capacity store then
    invalid_arg "Cert.generate: layer_of_path does not cover the store";
  let g = Route_store.graph store in
  let m = Graph.num_channels g in
  let failure = ref None in
  let layers =
    Array.init num_layers (fun l ->
        match !failure with
        | Some _ -> [||]
        | None ->
          let cnt = Array.make (m + 1) 0 in
          Route_store.iter_pairs store (fun pair ->
              if layer_of_path.(pair) = l then
                Route_store.iter_deps store ~pair (fun c1 _ -> cnt.(c1 + 1) <- cnt.(c1 + 1) + 1));
          let row = cnt in
          for c = 0 to m - 1 do
            row.(c + 1) <- row.(c + 1) + row.(c)
          done;
          let col = Array.make row.(m) 0 in
          let cursor = Array.copy row in
          let indeg = Array.make m 0 in
          Route_store.iter_pairs store (fun pair ->
              if layer_of_path.(pair) = l then
                Route_store.iter_deps store ~pair (fun c1 c2 ->
                    col.(cursor.(c1)) <- c2;
                    cursor.(c1) <- cursor.(c1) + 1;
                    indeg.(c2) <- indeg.(c2) + 1));
          let pos = Array.make m 0 in
          let queue = Queue.create () in
          for c = 0 to m - 1 do
            if indeg.(c) = 0 then Queue.add c queue
          done;
          let k = ref 0 in
          while not (Queue.is_empty queue) do
            let c = Queue.take queue in
            pos.(c) <- !k;
            incr k;
            for s = row.(c) to cursor.(c) - 1 do
              let c2 = col.(s) in
              indeg.(c2) <- indeg.(c2) - 1;
              if indeg.(c2) = 0 then Queue.add c2 queue
            done
          done;
          if !k < m then begin
            failure := Some (Cycle { layer = l; stuck = m - !k });
            [||]
          end
          else pos)
  in
  match !failure with
  | Some e -> Error e
  | None -> Ok { num_channels = m; layers }

let artifacts_of_table ft =
  match Ftable.to_store ft with
  | Error _ as e -> e
  | Ok store ->
    let layer_of_path = Array.make (Route_store.capacity store) (-1) in
    Route_store.iter_pairs store (fun pair ->
        let src, dst = Ftable.pair_of_id ft pair in
        layer_of_path.(pair) <- Ftable.layer ft ~src ~dst);
    Ok (store, layer_of_path)

let table_num_layers ft layer_of_path =
  max (Ftable.num_layers ft) (1 + Array.fold_left max 0 layer_of_path)

let of_table ft =
  match artifacts_of_table ft with
  | Error msg -> Error (Incomplete msg)
  | Ok (store, layer_of_path) ->
    generate store ~layer_of_path ~num_layers:(table_num_layers ft layer_of_path)

exception Violation of string

let check cert store ~layer_of_path =
  let m = Graph.num_channels (Route_store.graph store) in
  if cert.num_channels <> m then
    Error (Printf.sprintf "certificate covers %d channels, fabric has %d" cert.num_channels m)
  else if Array.length layer_of_path <> Route_store.capacity store then
    Error "layer assignment does not cover the store"
  else if Array.exists (fun pos -> Array.length pos <> m) cert.layers then
    Error "a layer's numbering does not cover every channel"
  else begin
    let k = Array.length cert.layers in
    try
      Route_store.iter_pairs store (fun pair ->
          let l = layer_of_path.(pair) in
          if l < 0 || l >= k then
            raise
              (Violation (Printf.sprintf "pair %d rides layer %d outside the certificate's %d" pair l k));
          let pos = cert.layers.(l) in
          Route_store.iter_deps store ~pair (fun c1 c2 ->
              if pos.(c1) >= pos.(c2) then
                raise
                  (Violation
                     (Printf.sprintf "layer %d: dependency %d -> %d not ascending (%d >= %d)" l c1 c2
                        pos.(c1) pos.(c2)))));
      Ok ()
    with Violation msg -> Error msg
  end

let check_table cert ft =
  match artifacts_of_table ft with
  | Error msg -> Error (Printf.sprintf "routes not materializable: %s" msg)
  | Ok (store, layer_of_path) -> check cert store ~layer_of_path

let to_string t =
  let buf = Buffer.create (16 * t.num_channels * Array.length t.layers) in
  Buffer.add_string buf
    (Printf.sprintf "certificate v1 channels %d layers %d\n" t.num_channels (Array.length t.layers));
  Array.iteri
    (fun l pos ->
      Buffer.add_string buf (Printf.sprintf "layer %d" l);
      Array.iter
        (fun p ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int p))
        pos;
      Buffer.add_char buf '\n')
    t.layers;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let words l = List.filter (fun w -> w <> "") (String.split_on_char ' ' l) in
  let significant =
    List.filter (fun l -> String.trim l <> "" && (String.trim l).[0] <> '#') lines |> List.map String.trim
  in
  match significant with
  | [] -> Error "empty certificate"
  | header :: rest -> (
    match words header with
    | [ "certificate"; "v1"; "channels"; m; "layers"; k ] -> (
      match (int_of_string_opt m, int_of_string_opt k) with
      | Some m, Some k when m >= 0 && k >= 1 -> (
        let layers = Array.make k [||] in
        let rec go seen = function
          | [] -> Error "missing 'end'"
          | "end" :: _ ->
            if seen <> k then Error (Printf.sprintf "expected %d layer lines, got %d" k seen)
            else if Array.exists (fun pos -> Array.length pos <> m) layers then
              Error "a layer line does not cover every channel"
            else Ok { num_channels = m; layers }
          | line :: tl -> (
            match words line with
            | "layer" :: l :: ps -> (
              match int_of_string_opt l with
              | Some l when l >= 0 && l < k -> (
                match List.map int_of_string_opt ps with
                | exception _ -> Error "unreadable layer line"
                | opts ->
                  if List.exists Option.is_none opts then Error (Printf.sprintf "layer %d: bad position" l)
                  else begin
                    layers.(l) <- Array.of_list (List.map Option.get opts);
                    go (seen + 1) tl
                  end)
              | _ -> Error "bad layer index")
            | _ -> Error (Printf.sprintf "unrecognized directive %S" line))
        in
        go 0 rest)
      | _ -> Error "bad channel or layer count in header")
    | _ -> Error "bad header (want: certificate v1 channels <m> layers <k>)")
