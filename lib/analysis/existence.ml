type core = {
  cycle : int array;
  host_terminal : int array;
  hosts : int array;
  bound : int;
}

type t = {
  num_terminals : int;
  unreachable : (int * int) option;
  min_layers_lb : int;
  cores : core list;
}

let c_analyses = Obs.Registry.counter "analysis.existence" ~desc:"topology existence analyses"

let t_analyze = Obs.Registry.timer "analysis.existence" ~desc:"seconds per topology existence analysis"

(* ------------------------------------------------------------------ *)
(* Strongly connected components of an implicit digraph (iterative
   Kosaraju: forward DFS finish order, then reverse-graph sweeps).
   Neighbors are served from caller-owned arrays through a mapper that
   may return -1 to skip an entry, so neither the node graph nor the
   complete CDG is ever materialized.                                   *)
(* ------------------------------------------------------------------ *)

let sccs ~n ~fwd_deg ~fwd_nb ~bwd_deg ~bwd_nb =
  let cap = max n 1 in
  let order = Array.make cap 0 in
  let nord = ref 0 in
  let visited = Array.make cap false in
  let stack_v = Array.make cap 0 in
  let stack_i = Array.make cap 0 in
  for root = 0 to n - 1 do
    if not visited.(root) then begin
      visited.(root) <- true;
      let sp = ref 0 in
      stack_v.(0) <- root;
      stack_i.(0) <- 0;
      while !sp >= 0 do
        let v = stack_v.(!sp) in
        let i = stack_i.(!sp) in
        if i < fwd_deg v then begin
          stack_i.(!sp) <- i + 1;
          let w = fwd_nb v i in
          if w >= 0 && not visited.(w) then begin
            visited.(w) <- true;
            incr sp;
            stack_v.(!sp) <- w;
            stack_i.(!sp) <- 0
          end
        end
        else begin
          order.(!nord) <- v;
          incr nord;
          decr sp
        end
      done
    end
  done;
  let comp = Array.make cap (-1) in
  let ncomp = ref 0 in
  let work = stack_v in
  for k = n - 1 downto 0 do
    let root = order.(k) in
    if comp.(root) < 0 then begin
      let c = !ncomp in
      incr ncomp;
      comp.(root) <- c;
      let sp = ref 0 in
      work.(0) <- root;
      while !sp >= 0 do
        let v = work.(!sp) in
        decr sp;
        for i = 0 to bwd_deg v - 1 do
          let w = bwd_nb v i in
          if w >= 0 && comp.(w) < 0 then begin
            comp.(w) <- c;
            incr sp;
            work.(!sp) <- w
          end
        done
      done
    end
  done;
  (comp, !ncomp)

let node_sccs g =
  let dst ch = (Graph.channel g ch).Channel.dst in
  let src ch = (Graph.channel g ch).Channel.src in
  sccs ~n:(Graph.num_nodes g)
    ~fwd_deg:(fun v -> Array.length (Graph.out_channels g v))
    ~fwd_nb:(fun v i -> dst (Graph.out_channels g v).(i))
    ~bwd_deg:(fun v -> Array.length (Graph.in_channels g v))
    ~bwd_nb:(fun v i -> src (Graph.in_channels g v).(i))

(* Complete-CDG adjacency: successors of channel [c] are the enabled
   channels leaving [head c], except the reverse of [c] (loop-free
   destination-based routes never U-turn); predecessors symmetrically.
   Adjacency arrays only ever list enabled channels, so a disabled
   channel is isolated once its own degree is forced to zero. *)
let chan_sccs g rev =
  let head c = (Graph.channel g c).Channel.dst in
  let tail c = (Graph.channel g c).Channel.src in
  sccs ~n:(Graph.num_channels g)
    ~fwd_deg:(fun c ->
      if Graph.channel_enabled g c then Array.length (Graph.out_channels g (head c)) else 0)
    ~fwd_nb:(fun c i ->
      let d = (Graph.out_channels g (head c)).(i) in
      if d = rev.(c) then -1 else d)
    ~bwd_deg:(fun c ->
      if Graph.channel_enabled g c then Array.length (Graph.in_channels g (tail c)) else 0)
    ~bwd_nb:(fun c i ->
      let d = (Graph.in_channels g (tail c)).(i) in
      if d = rev.(c) then -1 else d)

(* ------------------------------------------------------------------ *)
(* Circular-interval piercing                                          *)
(* ------------------------------------------------------------------ *)

(* Host windows: the route between consecutive hosts h_{i-1} -> h_i
   covers every dependency pair except those in the circular window
   [h_{i-1}-1 .. h_i-1]. A layer carrying a host route must avoid a pair
   inside that route's window, and one avoided pair serves all routes
   whose windows contain it — so the layers needed is exactly the
   piercing number of the windows. An optimal piercing may be assumed to
   stab the shortest window; fixing that point makes the rest a linear
   interval-stabbing problem solved greedily by right endpoint. *)
let piercing ~n ~hosts =
  let r = Array.length hosts in
  if r < 2 then 1
  else begin
    let starts = Array.make r 0 and lens = Array.make r 0 in
    for i = 0 to r - 1 do
      let prev = hosts.((i + r - 1) mod r) and cur = hosts.(i) in
      let gap = ((cur - prev) mod n + n) mod n in
      starts.(i) <- ((prev - 1) mod n + n) mod n;
      lens.(i) <- gap + 1
    done;
    let wmin = ref 0 in
    for i = 1 to r - 1 do
      if lens.(i) < lens.(!wmin) then wmin := i
    done;
    let contains s len p = ((p - s + n) mod n) < len in
    let best = ref max_int in
    for o = 0 to lens.(!wmin) - 1 do
      let p = (starts.(!wmin) + o) mod n in
      let ivals = ref [] in
      for i = 0 to r - 1 do
        if not (contains starts.(i) lens.(i) p) then begin
          (* unroll the circle at p: coordinates count from p+1 *)
          let a = ((starts.(i) - p - 1) mod n + n) mod n in
          ivals := (a + lens.(i) - 1, a) :: !ivals
        end
      done;
      let arr = Array.of_list !ivals in
      Array.sort compare arr;
      let count = ref 1 and last = ref (-1) in
      Array.iter (fun (b, a) -> if a > !last then begin incr count; last := b end) arr;
      if !count < !best then best := !count
    done;
    !best
  end

(* ------------------------------------------------------------------ *)
(* Clean-core detection                                                *)
(* ------------------------------------------------------------------ *)

(* Given a nontrivial SCC of the complete CDG that forms a single simple
   channel cycle, check the surrounding structure and compute the bound:
   remove the cycle channels and label the core's node SCC by undirected
   connectivity; the decomposition is clean iff every cycle node lands
   in its own component (any chord, parallel arc or bypass merges two
   components and disqualifies the core). Hosts are components holding a
   terminal; the bound is the piercing number of their windows. *)
let core_of_cycle g ~node_comp ~is_core cycle =
  let n = Array.length cycle in
  let tail c = (Graph.channel g c).Channel.src in
  let head c = (Graph.channel g c).Channel.dst in
  let num_nodes = Graph.num_nodes g in
  let scomp = node_comp.(tail cycle.(0)) in
  let label = Array.make num_nodes (-1) in
  let queue = Queue.create () in
  let clean = ref true in
  (* core nodes must be distinct and share the node SCC *)
  Array.iteri
    (fun i c ->
      let v = tail c in
      if node_comp.(v) <> scomp || label.(v) >= 0 then clean := false else label.(v) <- i)
    cycle;
  if !clean then begin
    Array.iter (fun c -> Queue.add (tail c) queue) cycle;
    let visit lab w =
      if node_comp.(w) = scomp then
        if label.(w) < 0 then begin
          label.(w) <- lab;
          Queue.add w queue
        end
        else if label.(w) <> lab then clean := false
    in
    while !clean && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let lab = label.(v) in
      Array.iter (fun ch -> if not is_core.(ch) then visit lab (head ch)) (Graph.out_channels g v);
      Array.iter (fun ch -> if not is_core.(ch) then visit lab (tail ch)) (Graph.in_channels g v)
    done
  end;
  if not !clean then None
  else begin
    let host_terminal = Array.make n (-1) in
    Array.iter
      (fun t ->
        let lab = label.(t) in
        if lab >= 0 && host_terminal.(lab) < 0 then host_terminal.(lab) <- t)
      (Graph.terminals g);
    let hosts =
      Array.of_list (List.filter (fun i -> host_terminal.(i) >= 0) (List.init n (fun i -> i)))
    in
    let bound = piercing ~n ~hosts in
    if bound < 2 then None else Some { cycle; host_terminal; hosts; bound }
  end

(* Extract the simple-cycle SCCs of the complete CDG: an SCC qualifies
   iff every member channel has exactly one successor inside the SCC (a
   strongly connected functional graph is a single cycle). *)
let simple_cycles g rev chan_comp ncomp =
  let m = Graph.num_channels g in
  let head c = (Graph.channel g c).Channel.dst in
  let size = Array.make ncomp 0 in
  for c = 0 to m - 1 do
    size.(chan_comp.(c)) <- size.(chan_comp.(c)) + 1
  done;
  let succ = Array.make m (-1) in
  let simple = Array.map (fun s -> s >= 2) size in
  for c = 0 to m - 1 do
    let k = chan_comp.(c) in
    if simple.(k) then begin
      if not (Graph.channel_enabled g c) then simple.(k) <- false
      else
        Array.iter
          (fun d ->
            if d <> rev.(c) && chan_comp.(d) = k then
              if succ.(c) >= 0 then simple.(k) <- false else succ.(c) <- d)
          (Graph.out_channels g (head c));
      if succ.(c) < 0 then simple.(k) <- false
    end
  done;
  let seen = Array.make m false in
  let cycles = ref [] in
  for c = 0 to m - 1 do
    let k = chan_comp.(c) in
    if simple.(k) && not seen.(c) then begin
      (* walk the functional successor until it closes; guard against
         anything other than one simple cycle covering the SCC *)
      let members = ref [] in
      let count = ref 0 in
      let cur = ref c in
      let ok = ref true in
      while !ok && not seen.(!cur) do
        seen.(!cur) <- true;
        members := !cur :: !members;
        incr count;
        let nxt = succ.(!cur) in
        if nxt < 0 || chan_comp.(nxt) <> k then ok := false else cur := nxt
      done;
      if !ok && !cur = c && !count = size.(k) then
        cycles := Array.of_list (List.rev !members) :: !cycles
    end
  done;
  !cycles

let analyze_inner g =
  let terminals = Graph.terminals g in
  let nt = Array.length terminals in
  let node_comp, _ = node_sccs g in
  let unreachable =
    if nt < 2 then None
    else begin
      (* all demands routable iff every terminal shares one node SCC;
         name a concrete broken ordered pair via one BFS *)
      let base = terminals.(0) in
      let off = Array.fold_left (fun acc t -> match acc with
        | Some _ -> acc
        | None -> if node_comp.(t) <> node_comp.(base) then Some t else None)
        None terminals
      in
      match off with
      | None -> None
      | Some t ->
        let dist = Graph.bfs_dist g base in
        if dist.(t) < max_int then Some (t, base) else Some (base, t)
    end
  in
  let rev =
    Array.init (Graph.num_channels g) (fun c ->
        match Graph.reverse_channel g c with
        | Some r -> r
        | None -> -1)
  in
  let chan_comp, ncomp = chan_sccs g rev in
  let is_core = Array.make (Graph.num_channels g) false in
  let cores =
    List.filter_map
      (fun cycle ->
        Array.iter (fun c -> is_core.(c) <- true) cycle;
        let r = core_of_cycle g ~node_comp ~is_core cycle in
        Array.iter (fun c -> is_core.(c) <- false) cycle;
        r)
      (simple_cycles g rev chan_comp ncomp)
  in
  let cores = List.sort (fun a b -> compare b.bound a.bound) cores in
  let min_layers_lb =
    if nt < 2 then 0
    else List.fold_left (fun acc c -> max acc c.bound) 1 cores
  in
  { num_terminals = nt; unreachable; min_layers_lb; cores }

let analyze g =
  Obs.Counter.incr c_analyses;
  Obs.Timer.time t_analyze (fun () -> analyze_inner g)

let min_layers_lb g = (analyze g).min_layers_lb

let feasible t ~budget = t.unreachable = None && budget >= t.min_layers_lb
