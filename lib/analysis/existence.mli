(** Topology-level deadlock-freedom existence analysis.

    Everything else in [lib/analysis] judges one concrete forwarding
    table. This module answers the prior, table-free questions about the
    fabric itself, in the spirit of Mendlovic & Matias 2025 ("Existence
    of Deadlock-Free Routing for Arbitrary Networks"), specialized to
    this repo's routing model — destination-based tables whose routes
    are loop-free simple paths, each route riding exactly one virtual
    layer, deadlock freedom meaning every layer's channel dependency
    graph is acyclic (Dally & Seitz):

    - {e Existence} (rule A008): with the layer count unconstrained, a
      deadlock-free routing exists iff every ordered pair of distinct
      terminals is connected in the enabled fabric — one simple path per
      route on its own layer induces no intra-layer dependency cycle, so
      reachability is both necessary and sufficient. Decided via one
      strongly-connected-component pass over the node graph.

    - {e Layer lower bound} (rules A009/A010): how many layers does
      {e any} such routing provably need? We work over the complete CDG
      [C]: vertices are enabled channels, with an edge [(c1, c2)]
      whenever [head c1 = tail c2] and [c2] is not the reverse of [c1]
      (a loop-free route never makes a U-turn). Every layer's CDG is a
      subgraph of [C], so dependency cycles live inside the nontrivial
      SCCs of [C]. For each SCC that is a single simple channel cycle
      whose surrounding fabric decomposes cleanly (see {!core}), routes
      between terminals attached to different cycle nodes are forced
      along the cycle arcs, and a counting argument over the dependency
      pairs each layer must avoid yields a piercing-number lower bound
      on the layers — [ceil n/2] for a fully-populated unidirectional
      n-ring. SCCs without that clean structure contribute the trivial
      bound 1, keeping the total sound for every fabric. *)

(** A {e clean core}: a nontrivial SCC of the complete CDG forming a
    single simple channel cycle, such that removing the cycle channels
    splits the core's node SCC into one component per cycle node. Routes
    between terminals of different components are then forced through
    the cycle arcs in order, which is what makes the piercing bound
    sound. *)
type core = {
  cycle : int array;
      (** the [n] channel ids in dependency order:
          [head cycle.(i) = tail cycle.((i+1) mod n)] *)
  host_terminal : int array;
      (** length [n]; a representative terminal whose component is the
          one of [tail cycle.(i)], or [-1] if that component hosts no
          terminal (positions with a terminal are the {e hosts}) *)
  hosts : int array;  (** host positions, strictly increasing *)
  bound : int;
      (** provable layer minimum forced by this core (the circular
          piercing number of the hosts' uncovered windows; [>= 2]) *)
}

type t = {
  num_terminals : int;
  unreachable : (int * int) option;
      (** [Some (s, d)]: terminal [s] has no path to terminal [d] in the
          enabled fabric, so no routing — deadlock-free or otherwise —
          serves the demand set (rule A008) *)
  min_layers_lb : int;
      (** provable lower bound on the virtual layers any deadlock-free
          destination-based routing needs: [0] when there are no demands
          (fewer than two terminals), else the max over clean cores of
          their bound, at least [1] *)
  cores : core list;  (** clean cores with [bound >= 2], strongest first *)
}

(** Analyze the enabled fabric. Cost is O(V + E + sum over nodes of
    in-degree * out-degree) — two SCC passes plus per-core labeling —
    independent of any routing run. *)
val analyze : Graph.t -> t

(** [min_layers_lb g] is [(analyze g).min_layers_lb]. *)
val min_layers_lb : Graph.t -> int

(** [feasible t ~budget] is [false] iff some demand is unroutable
    ({!field-unreachable}) or [budget < min_layers_lb]. *)
val feasible : t -> budget:int -> bool

(** [piercing ~n ~hosts] is the minimum number of points on the circle
    [0 .. n-1] meeting every host window (the circular-interval piercing
    number used for {!core.bound}); [1] when fewer than two hosts.
    [hosts] must be strictly increasing positions in [0 .. n-1]. Shared
    with the witness checker, which recomputes bounds from verified
    hosts only. *)
val piercing : n:int -> hosts:int array -> int
