(** Minimized counterexample witnesses.

    When the analyzer refuses a configuration it can emit a small,
    independently checkable artifact saying {e why} — the counterpart of
    {!Cert}'s positive certificates:

    - {e Layer cycle} ([A007]): a layer's CDG is cyclic. The witness is
      a minimal dependency cycle (greedy chord-elimination shrinks the
      first cycle found until no shortcut remains, so dropping any one
      dependency breaks it) together with one concrete route inducing
      each dependency. The trusted re-check re-derives every dependency
      from the table's own routes.

    - {e Topology core} ([A009]): the declared layer budget is below the
      fabric's provable minimum. The witness is a clean core
      ({!Existence.core}) plus, per cycle position, a demand whose
      forced route covers that dependency pair; the trusted re-check
      re-derives the core structure from the graph, verifies each
      demand's forced coverage, and recomputes the piercing bound from
      the verified hosts only.

    Both checks are independent of [lib/cdg] and of the generation code
    here: they consume only the graph, the table's materialized routes
    ({!Cert.artifacts_of_table}) and the pure {!Existence.piercing}
    arithmetic.

    Text format (line-oriented, [#] comments):
    {v
    witness v1 kind layer channels <m> length <n> layer <l>
    witness v1 kind core channels <m> length <n> min-layers <k>
    cycle <c_0> <c_1> ... <c_{n-1}>
    dep <i> <src> <dst>
    end
    v}
    The cycle lists channel ids in dependency order; dep line [i] names
    the demand inducing (layer kind) or covering (core kind) the
    dependency [(c_i, c_{i+1 mod n})]. *)

type kind =
  | Layer_cycle of { layer : int }
  | Topology_core of { min_layers : int }

type t = {
  kind : kind;
  num_channels : int;  (** channel-id space of the graph analyzed *)
  cycle : int array;  (** [n >= 2] channel ids in dependency order *)
  srcs : int array;  (** length [n]: demand source per position *)
  dsts : int array;  (** length [n]: demand destination per position *)
}

(** {1 Generation (untrusted side)} *)

(** Find the first cyclic layer of the table's routes, shrink the cycle
    to a chordless one, and attach an inducing route per dependency.
    [Ok None] means every layer is acyclic (nothing to witness);
    [Error] means the routes cannot be materialized at all. *)
val of_table : Ftable.t -> (t option, string) result

(** Build a budget-infeasibility witness from a clean core found by
    {!Existence.analyze} (requires [core.bound >= 2]). *)
val of_core : Graph.t -> Existence.core -> (t, string) result

(** {1 Checking (trusted side)} *)

(** Validate a [Layer_cycle] witness against a forwarding table: every
    dependency of the cycle must be induced by the named route, all
    routes on the claimed layer. [Error] names the first violation (and
    rejects [Topology_core] witnesses outright). *)
val check_table : t -> Ftable.t -> (unit, string) result

(** Validate a [Topology_core] witness against the fabric alone:
    re-derives the clean-core structure, checks every demand's forced
    coverage, and accepts only if the claimed layer minimum is at most
    the piercing bound recomputed from the verified hosts. *)
val check_graph : t -> Graph.t -> (unit, string) result

(** {1 Artifacts} *)

val to_string : t -> string

val of_string : string -> (t, string) result

(** One JSON object (no trailing newline). *)
val to_json : t -> string
