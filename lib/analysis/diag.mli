(** Diagnostics framework for the routing certifier: a stable rule
    catalog, severity levels, and findings that carry enough context
    (destination, affected-entry counts, human detail) to act on without
    re-running the analysis. Rule ids are part of the tool's contract —
    tests, CI gates and the JSON output all key on them, so ids are never
    renumbered or reused. *)

type severity =
  | Error  (** the table must not be installed *)
  | Warning  (** suspicious but installable *)
  | Info

type rule = {
  id : string;  (** stable, e.g. ["A002-forwarding-loop"] *)
  severity : severity;
  title : string;  (** one-line description for the catalog *)
}

(** {1 Rule catalog} *)

(** Some terminal cannot reach the destination: a forwarding walk hits a
    node with no entry for that destination. *)
val a001_unreachable_dest : rule

(** Forwarding entries for a destination form a directed cycle: packets
    circulate forever. *)
val a002_forwarding_loop : rule

(** An entry names a channel id that is out of range or does not leave
    the node holding the entry. *)
val a003_port_range : rule

(** A route is assigned a virtual layer outside the table's declared
    layer count — a packet injected on that SL would need an illegal
    SL→VL transition mid-route. *)
val a004_layer_transition : rule

(** An entry points into a channel that is disabled in the fabric (a
    pruned cable still referenced by the tables). *)
val a005_dead_entry : rule

(** A route exceeds its hop budget (minimal or minimal-plus-slack);
    detours are legal but worth flagging. *)
val a006_nonminimal : rule

(** A virtual layer's channel dependency graph has a directed cycle —
    the Dally/Seitz deadlock-freedom condition is violated and no
    certificate exists for the layer. *)
val a007_cdg_cycle : rule

(** Some ordered terminal pair is unreachable in the enabled fabric, so
    no routing of any kind serves the demand set ({!Existence}). *)
val a008_no_deadlock_free_routing : rule

(** The declared layer budget is below the fabric's provable layer
    minimum ({!Existence.t.min_layers_lb}): every destination-based
    routing under the budget has a cyclic layer. *)
val a009_layer_budget_infeasible : rule

(** Informational: achieved layer count vs. the fabric's provable
    minimum — the per-topology slack of the routing engine. *)
val a010_layer_slack : rule

(** Every rule above, in id order (the published catalog). *)
val catalog : rule list

(** Look a rule up by its stable id. *)
val find_rule : string -> rule option

(** A one-paragraph remediation for the rule, suitable for
    [fabric_tool analyze --explain]; every catalog rule has one. *)
val explain : rule -> string

(** {1 Findings} *)

type finding = {
  rule : rule;
  dst : int option;  (** destination terminal (node id) the finding is scoped to *)
  count : int;  (** affected entries / routes under this (rule, dst) *)
  detail : string;  (** human-readable specifics, names the first offender *)
}

val finding : ?dst:int -> ?count:int -> rule -> string -> finding

val severity_to_string : severity -> string

(** [has_rule findings id] is [true] iff some finding carries rule [id]. *)
val has_rule : finding list -> string -> bool

val num_errors : finding list -> int

val num_warnings : finding list -> int

val pp_finding : Format.formatter -> finding -> unit

(** One JSON object (no trailing newline); strings are escaped. *)
val finding_to_json : finding -> string

(** Escape a string for embedding in a JSON string literal. *)
val json_escape : string -> string
