(** The routing certifier's front door: lint a forwarding table
    ({!Lint}), generate its deadlock-freedom certificate, and validate
    the certificate with the trusted checker ({!Cert}) — all without
    touching the construction code in [lib/cdg] or [lib/core]. A table is
    {e certified} only when the checker accepts a topological witness for
    every virtual layer; lint errors independently veto installation
    ({!ok}). *)

type verdict =
  | Certified of Cert.t
  | Rejected of string

type report = {
  algorithm : string;
  channels : int;
  terminals : int;
  num_layers : int;  (** the table's declared layer count *)
  min_layers_lb : int;
      (** the fabric's provable layer lower bound ({!Existence}); the
          per-topology slack is [num_layers - min_layers_lb] *)
  findings : Diag.finding list;
  verdict : verdict;
}

(** [analyze ?hop_budget ?graph ft] lints and certifies [ft], and runs
    the topology-level existence analysis ({!Existence}) on the fabric
    the table is judged against. [graph] lints against an overriding
    fabric (see {!Lint.view_of_table}); certification always runs over
    the table's own artifacts. A cyclic layer surfaces both as
    [Rejected] and as an {!Diag.a007_cdg_cycle} finding; an unroutable
    demand raises {!Diag.a008_no_deadlock_free_routing}, a provably
    infeasible layer budget {!Diag.a009_layer_budget_infeasible}, and a
    feasible one the informational {!Diag.a010_layer_slack}. *)
val analyze : ?hop_budget:Lint.hop_budget -> ?graph:Graph.t -> Ftable.t -> report

(** [certify ft] is the install gate used by {!Fabric.Epoch}: generate a
    certificate and have the trusted checker validate it against the
    table's own routes. [Error] explains the refusal. *)
val certify : Ftable.t -> (Cert.t, string) result

(** [ok r] is [true] iff the verdict is [Certified] and no finding has
    [Error] severity (warnings do not veto). *)
val ok : report -> bool

val pp : Format.formatter -> report -> unit

(** One JSON object; [target] labels the analyzed artifact (a topology
    spec or file name). *)
val to_json : ?target:string -> report -> string
