(* Shared helpers for the test suites: string search, qcheck glue, and
   the topology/table generators the property suites have in common. *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* qcheck-alcotest glue. [count] is explicit: each suite owns its budget
   (test_properties defaults to 40 trials, test_parallel — whose trials
   spawn domains — to 8). *)
let qtest ~count name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let seed_gen = QCheck2.Gen.int_range 0 100_000

(* The fabric mix of the parallel-pipeline suites: ring, torus, XGFT,
   dragonfly — sizes jittered by the seed. *)
let fabric seed =
  match seed mod 4 with
  | 0 -> ("ring", Topo_ring.make ~switches:(6 + (seed mod 5)) ~terminals_per_switch:2)
  | 1 ->
    ( "torus",
      fst (Topo_torus.torus ~dims:[| 3 + (seed mod 3); 3 + (seed / 3 mod 3) |] ~terminals_per_switch:2) )
  | 2 ->
    let ms = [| 2 + (seed mod 2); 3 |] and ws = [| 1; 2 |] in
    ("xgft", Topo_xgft.make ~ms ~ws ~endpoints:(2 * Topo_xgft.num_leaves ~ms))
  | _ -> ("dragonfly", Topo_dragonfly.make ~a:(3 + (seed mod 2)) ~p:2 ~h:2 ())

(* The small irregular fabric most property tests run on. *)
let random_graph ?(switches = 8) ?(switch_radix = 10) ?(terminals = 16) ?(inter_links = 14) rng =
  Topo_random.make ~switches ~switch_radix ~terminals ~inter_links ~rng

let same_tables a b = (Routing.Ftable.diff a b).Routing.Ftable.entries_changed = 0
