(* The determinism contract of the domain-parallel routing pipeline
   (DESIGN.md section 12), as executable properties:

   - for any fixed [batch], tables and final weights are independent of
     [domains] (and of whether a persistent pool is reused);
   - [batch:1] reproduces the sequential recurrence bit-for-bit, for
     SSSP and for every batched engine;
   - engines without shared balancing state (FTree, DOR) are
     domains-invariant outright;
   - batching never costs minimality (the |V|^2 argument is independent
     of snapshot granularity);
   - the destination loop stops at the first error, and parallel runs
     report the same (lowest-destination) error as sequential ones.

   `make check` runs this binary as the 2-domain smoke test of the
   pipeline. *)

(* This suite exists to exercise the real multi-domain fan-out path.
   Pool-aware sizing (DESIGN.md §15) would collapse every run to the
   inline path on a single-domain CI box — disable it so the pool
   dispatch, per-slot scratch, and merge machinery stay under test.
   Results are contractually identical either way. *)
let () = Routing.Batched.set_auto_sizing false

let qtest ?(count = 8) name gen prop = Testutil.qtest ~count name gen prop

let seed_gen = Testutil.seed_gen

(* The fabric mix of the ISSUE (ring, torus, XGFT, dragonfly), shared
   with the other suites via Testutil. *)
let fabric = Testutil.fabric

let same_tables = Testutil.same_tables

let route_plane_exn ?batch ?domains ?pool g ~weights =
  match Routing.Sssp.route_plane ?batch ?domains ?pool g ~weights with
  | Ok ft -> ft
  | Error msg -> Alcotest.failf "route_plane failed: %s" msg

(* ------------------------------------------------------------------ *)
(* SSSP: the tentpole contract                                          *)
(* ------------------------------------------------------------------ *)

let sssp_domains_invariant =
  qtest "sssp: fixed batch, tables and weights independent of domains" seed_gen (fun seed ->
      let _, g = fabric seed in
      let batch = 1 + (seed mod 40) in
      let w1 = Routing.Sssp.initial_weights g in
      let ft1 = route_plane_exn ~batch ~domains:1 g ~weights:w1 in
      List.for_all
        (fun domains ->
          let wd = Routing.Sssp.initial_weights g in
          let ftd = route_plane_exn ~batch ~domains g ~weights:wd in
          same_tables ft1 ftd && wd = w1)
        [ 2; 4 ])

let sssp_batch1_is_sequential =
  qtest "sssp: batch 1 on 2 domains = the sequential recurrence" seed_gen (fun seed ->
      let _, g = fabric seed in
      let w_seq = Routing.Sssp.initial_weights g in
      let ft_seq = route_plane_exn g ~weights:w_seq (* defaults: the legacy path *) in
      let w_par = Routing.Sssp.initial_weights g in
      let ft_par = route_plane_exn ~batch:1 ~domains:2 g ~weights:w_par in
      same_tables ft_seq ft_par && w_seq = w_par)

let sssp_pool_reuse =
  qtest ~count:4 "sssp: one pool, many graphs — same results as fresh pools" seed_gen (fun seed ->
      let pool = Routing.Sssp.create_pool ~domains:2 () in
      Fun.protect
        ~finally:(fun () -> Routing.Sssp.destroy_pool pool)
        (fun () ->
          List.for_all
            (fun offset ->
              let _, g = fabric (seed + offset) in
              let batch = Routing.Sssp.recommended_batch in
              let w_pool = Routing.Sssp.initial_weights g in
              let ft_pool = route_plane_exn ~batch ~pool g ~weights:w_pool in
              let w_ref = Routing.Sssp.initial_weights g in
              let ft_ref = route_plane_exn ~batch ~domains:1 g ~weights:w_ref in
              same_tables ft_pool ft_ref && w_pool = w_ref)
            [ 0; 1; 2; 3 ]))

let sssp_batched_still_minimal =
  qtest "sssp: recommended batch keeps routes minimal and balanced-valid" seed_gen (fun seed ->
      let _, g = fabric seed in
      match Routing.Sssp.route ~batch:Routing.Sssp.recommended_batch ~domains:2 g with
      | Error _ -> false
      | Ok ft -> (
        match Routing.Ftable.validate ft with
        | Error _ -> false
        | Ok stats -> stats.Routing.Ftable.minimal))

let sssp_error_parity () =
  (* Cut one switch out of a ring: every destination is unreachable from
     it, so routing must fail — with the same (first-destination) error
     sequentially, batched, and on 2 domains. *)
  let g = Topo_ring.make ~switches:6 ~terminals_per_switch:2 in
  let sw = (Graph.switches g).(0) in
  let enabled =
    Array.map
      (fun (c : Channel.t) -> c.src <> sw && c.dst <> sw)
      (Graph.channels g)
  in
  let cut = Graph.with_enabled g ~enabled in
  let attempt ?batch ?domains () =
    match Routing.Sssp.route_plane ?batch ?domains cut ~weights:(Routing.Sssp.initial_weights cut) with
    | Ok _ -> Alcotest.fail "routing a cut fabric succeeded"
    | Error msg -> msg
  in
  let seq = attempt () in
  Alcotest.(check string) "batched error" seq (attempt ~batch:4 ());
  Alcotest.(check string) "parallel error" seq (attempt ~batch:4 ~domains:2 ())

let sssp_route_destinations_subset () =
  let g = fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:2) in
  let dsts = Array.sub (Graph.terminals g) 0 8 in
  let run ?batch ?domains () =
    let weights = Routing.Sssp.initial_weights g in
    let ft = Routing.Ftable.create g ~algorithm:"sssp" in
    match Routing.Sssp.route_destinations ?batch ?domains g ~weights ~ft ~dsts with
    | Ok () -> (ft, weights)
    | Error msg -> Alcotest.failf "route_destinations failed: %s" msg
  in
  let ft_seq, w_seq = run () in
  let ft_par, w_par = run ~batch:1 ~domains:2 () in
  Alcotest.(check bool) "subset tables" true (same_tables ft_seq ft_par);
  Alcotest.(check (array int)) "subset weights" w_seq w_par

(* Switching observability on — spans flowing to a live sink, per-slot
   pool timing active — must not perturb the routed tables: batch 1 on
   2 instrumented domains still reproduces the bare sequential
   recurrence bit-for-bit, and every emitted span line parses as JSON. *)
let sssp_deterministic_under_instrumentation =
  qtest ~count:4 "sssp: tracing enabled does not perturb tables" seed_gen (fun seed ->
      let _, g = fabric seed in
      let w_seq = Routing.Sssp.initial_weights g in
      let ft_seq = route_plane_exn g ~weights:w_seq in
      let buf = Buffer.create 4096 in
      let w_par = Routing.Sssp.initial_weights g in
      let ft_par =
        Obs.Control.with_enabled true (fun () ->
            Obs.Trace.with_sink (Obs.Trace.buffer_sink buf) (fun () ->
                route_plane_exn ~batch:1 ~domains:2 g ~weights:w_par))
      in
      let lines =
        String.split_on_char '\n' (Buffer.contents buf) |> List.filter (fun l -> l <> "")
      in
      lines <> []
      && List.for_all (fun l -> Result.is_ok (Obs.Json.of_string l)) lines
      && same_tables ft_seq ft_par && w_seq = w_par)

(* ------------------------------------------------------------------ *)
(* Engines                                                              *)
(* ------------------------------------------------------------------ *)

let engine_exn name r =
  match r with
  | Ok ft -> ft
  | Error msg -> Alcotest.failf "%s failed: %s" name msg

let minhop_contract =
  qtest "minhop: batch 1 = sequential; fixed batch domains-invariant" seed_gen (fun seed ->
      let _, g = fabric seed in
      let seq = engine_exn "minhop" (Routing.Minhop.route g) in
      let b1 = engine_exn "minhop" (Routing.Minhop.route ~batch:1 ~domains:2 g) in
      let batch = 1 + (seed mod 17) in
      let d1 = engine_exn "minhop" (Routing.Minhop.route ~batch ~domains:1 g) in
      let d4 = engine_exn "minhop" (Routing.Minhop.route ~batch ~domains:4 g) in
      same_tables seq b1 && same_tables d1 d4)

let updown_contract =
  qtest "updown: batch 1 = sequential; fixed batch domains-invariant" seed_gen (fun seed ->
      let _, g = fabric seed in
      let seq = engine_exn "updown" (Routing.Updown.route g) in
      let b1 = engine_exn "updown" (Routing.Updown.route ~batch:1 ~domains:2 g) in
      let batch = 1 + (seed mod 17) in
      let d1 = engine_exn "updown" (Routing.Updown.route ~batch ~domains:1 g) in
      let d4 = engine_exn "updown" (Routing.Updown.route ~batch ~domains:4 g) in
      same_tables seq b1 && same_tables d1 d4)

let ftree_domains_invariant =
  qtest "ftree: tables independent of domains" seed_gen (fun seed ->
      let ms = [| 2 + (seed mod 3); 3 |] and ws = [| 1; 2 |] in
      let g = Topo_xgft.make ~ms ~ws ~endpoints:(2 * Topo_xgft.num_leaves ~ms) in
      let seq = engine_exn "ftree" (Routing.Ftree.route g) in
      let par = engine_exn "ftree" (Routing.Ftree.route ~domains:3 g) in
      same_tables seq par)

let dor_domains_invariant =
  qtest "dor: tables independent of domains" seed_gen (fun seed ->
      let g, coords =
        Topo_torus.torus ~dims:[| 3 + (seed mod 3); 3 + (seed / 3 mod 3) |] ~terminals_per_switch:2
      in
      let seq = engine_exn "dor" (Routing.Dor.route g coords) in
      let par = engine_exn "dor" (Routing.Dor.route ~domains:3 g coords) in
      same_tables seq par)

(* ------------------------------------------------------------------ *)
(* Whole pipeline through the registry                                  *)
(* ------------------------------------------------------------------ *)

let registry_domains_invariant =
  qtest ~count:4 "registry: dfsssp tables independent of domains at fixed batch" seed_gen
    (fun seed ->
      let _, g = fabric seed in
      let run domains =
        match
          Dfsssp.Registry.find ~max_layers:8 ~batch:Routing.Sssp.recommended_batch ~domains "dfsssp"
        with
        | None -> Alcotest.fail "dfsssp not in registry"
        | Some a -> engine_exn "dfsssp" (a.Dfsssp.Registry.run g)
      in
      let ft1 = run 1 and ft2 = run 2 in
      same_tables ft1 ft2
      && Routing.Ftable.num_layers ft1 = Routing.Ftable.num_layers ft2
      && Dfsssp.Verify.deadlock_free ft2)

let () =
  Alcotest.run "parallel routing"
    [
      ( "sssp",
        [
          sssp_domains_invariant;
          sssp_batch1_is_sequential;
          sssp_pool_reuse;
          sssp_batched_still_minimal;
          Alcotest.test_case "error parity" `Quick sssp_error_parity;
          Alcotest.test_case "destination subset" `Quick sssp_route_destinations_subset;
          sssp_deterministic_under_instrumentation;
        ] );
      ("engines", [ minhop_contract; updown_contract; ftree_domains_invariant; dor_domains_invariant ]);
      ("registry", [ registry_domains_invariant ]);
    ]
