(* Tests for the experiment harness: table rendering/CSV, Table I data,
   shared runners, and small instances of every figure experiment. *)

let check = Alcotest.check

let cells row = List.map Harness.Report.cell_to_string row

(* ------------------------------------------------------------------ *)
(* Report                                                               *)
(* ------------------------------------------------------------------ *)

let sample_table =
  {
    Harness.Report.title = "Sample";
    columns = [ "name"; "value" ];
    rows = [ [ Harness.Report.Str "x"; Harness.Report.Int 42 ]; [ Harness.Report.Str "y"; Harness.Report.Missing ] ];
    notes = [ "a note" ];
  }

let test_cell_to_string () =
  check Alcotest.string "str" "abc" (Harness.Report.cell_to_string (Harness.Report.Str "abc"));
  check Alcotest.string "int" "7" (Harness.Report.cell_to_string (Harness.Report.Int 7));
  check Alcotest.string "flt" "0.1235" (Harness.Report.cell_to_string (Harness.Report.Flt 0.12345));
  check Alcotest.string "pct" "+12.3%" (Harness.Report.cell_to_string (Harness.Report.Pct 0.123));
  check Alcotest.string "pct negative" "-5.0%" (Harness.Report.cell_to_string (Harness.Report.Pct (-0.05)));
  check Alcotest.string "missing" "-" (Harness.Report.cell_to_string Harness.Report.Missing);
  check Alcotest.string "time us" "12.0us" (Harness.Report.cell_to_string (Harness.Report.Time 12e-6));
  check Alcotest.string "time ms" "3.40ms" (Harness.Report.cell_to_string (Harness.Report.Time 3.4e-3));
  check Alcotest.string "time s" "2.50s" (Harness.Report.cell_to_string (Harness.Report.Time 2.5))

let test_render () =
  let text = Harness.Report.render sample_table in
  Alcotest.(check bool) "title" true (Testutil.contains text "Sample");
  Alcotest.(check bool) "header" true (Testutil.contains text "name");
  Alcotest.(check bool) "cell" true (Testutil.contains text "42");
  Alcotest.(check bool) "note" true (Testutil.contains text "note: a note")

let test_csv () =
  let csv = Harness.Report.to_csv sample_table in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  check Alcotest.int "line count" 3 (List.length lines);
  check Alcotest.string "header" "name,value" (List.nth lines 0);
  check Alcotest.string "row" "x,42" (List.nth lines 1);
  (* escaping *)
  let tricky =
    { sample_table with Harness.Report.rows = [ [ Harness.Report.Str "a,b"; Harness.Report.Str "q\"uote" ] ] }
  in
  let csv = Harness.Report.to_csv tricky in
  Alcotest.(check bool) "comma quoted" true (Testutil.contains csv "\"a,b\"");
  Alcotest.(check bool) "quote doubled" true (Testutil.contains csv "\"q\"\"uote\"")

let test_save_csv () =
  let dir = Filename.temp_file "dfsssp" "dir" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Harness.Report.save_csv ~dir sample_table in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  Alcotest.(check bool) "slug name" true (Testutil.contains (Filename.basename path) "sample")

(* ------------------------------------------------------------------ *)
(* Table I                                                              *)
(* ------------------------------------------------------------------ *)

let test_tableone_rows () =
  check Alcotest.int "seven rows" 7 (List.length Harness.Tableone.rows);
  check Alcotest.int "rows up to 512" 4 (List.length (Harness.Tableone.rows_up_to 512));
  List.iter
    (fun (r : Harness.Tableone.row) ->
      let xg = Harness.Tableone.xgft_graph r in
      check Alcotest.int
        (Printf.sprintf "xgft %d endpoints" r.Harness.Tableone.endpoints)
        r.Harness.Tableone.endpoints (Graph.num_terminals xg);
      let kg = Harness.Tableone.kautz_graph r in
      check Alcotest.int "kautz endpoints" r.Harness.Tableone.endpoints (Graph.num_terminals kg);
      let tg = Harness.Tableone.tree_graph r in
      check Alcotest.int "tree endpoints" r.Harness.Tableone.endpoints (Graph.num_terminals tg))
    (Harness.Tableone.rows_up_to 256)

let test_tableone_table () =
  let t = Harness.Tableone.table () in
  check Alcotest.int "rows" 7 (List.length t.Harness.Report.rows);
  check Alcotest.int "columns" 7 (List.length t.Harness.Report.columns)

(* ------------------------------------------------------------------ *)
(* Runs                                                                 *)
(* ------------------------------------------------------------------ *)

let small = lazy (Topo_tree.make ~k:4 ~n:2 ())

let test_run_named () =
  let g = Lazy.force small in
  Alcotest.(check bool) "dfsssp runs" true (Result.is_ok (Harness.Runs.run_named "dfsssp" g));
  Alcotest.(check bool) "unknown fails" true (Result.is_error (Harness.Runs.run_named "bogus" g));
  Alcotest.(check bool) "dor refuses without coords" true
    (Result.is_error (Harness.Runs.run_named "dor" g))

let test_cells () =
  let g = Lazy.force small in
  (match Harness.Runs.ebb_cell ~patterns:5 ~seed:1 "dfsssp" g with
  | Harness.Report.Flt v -> Alcotest.(check bool) "ebb in (0,1]" true (v > 0.0 && v <= 1.0)
  | _ -> Alcotest.fail "expected Flt");
  (match Harness.Runs.ebb_cell ~patterns:5 ~seed:1 "dor" g with
  | Harness.Report.Missing -> ()
  | _ -> Alcotest.fail "expected Missing for dor");
  (match Harness.Runs.vl_cell "dfsssp" g with
  | Harness.Report.Int 1 -> ()
  | c -> Alcotest.failf "expected 1 layer on a fat tree, got %s" (Harness.Report.cell_to_string c));
  match Harness.Runs.runtime_cell "minhop" g with
  | Harness.Report.Time t -> Alcotest.(check bool) "positive time" true (t >= 0.0)
  | _ -> Alcotest.fail "expected Time"

let test_timed () =
  let dt, v = Harness.Runs.timed (fun () -> 41 + 1) in
  check Alcotest.int "value" 42 v;
  Alcotest.(check bool) "non-negative" true (dt >= 0.0)

let test_sample_ranks () =
  let g = Lazy.force small in
  let rng = Rng.create 1 in
  let ranks = Harness.Runs.sample_ranks ~rng ~count:5 g in
  check Alcotest.int "count" 5 (Array.length ranks);
  let distinct = List.sort_uniq compare (Array.to_list ranks) in
  check Alcotest.int "distinct" 5 (List.length distinct);
  let all = Harness.Runs.sample_ranks ~rng ~count:10_000 g in
  check Alcotest.int "capped at fabric size" (Graph.num_terminals g) (Array.length all)

(* ------------------------------------------------------------------ *)
(* Experiments (tiny instances)                                         *)
(* ------------------------------------------------------------------ *)

let algorithms_count = List.length Harness.Runs.paper_algorithms

let well_formed ?(expect_dfsssp = true) (t : Harness.Report.table) min_rows =
  Alcotest.(check bool)
    (t.Harness.Report.title ^ " rows")
    true
    (List.length t.Harness.Report.rows >= min_rows);
  List.iter
    (fun row ->
      check Alcotest.int (t.Harness.Report.title ^ " row width") (List.length t.Harness.Report.columns)
        (List.length row);
      if expect_dfsssp then begin
        (* the dfsssp column must never be missing: it routes everything *)
        match List.rev (cells row) with
        | last :: _ -> Alcotest.(check bool) "dfsssp cell present" true (last <> "-")
        | [] -> ()
      end)
    t.Harness.Report.rows

let test_fig4_small () =
  let t = Harness.Fig_bandwidth.fig4 ~scale:16 ~patterns:4 () in
  check Alcotest.int "six systems" 6 (List.length t.Harness.Report.rows);
  check Alcotest.int "columns" (1 + algorithms_count) (List.length t.Harness.Report.columns);
  well_formed t 6

let test_fig5_small () =
  let t = Harness.Fig_bandwidth.fig5 ~max_endpoints:128 ~patterns:4 () in
  check Alcotest.int "two sizes" 2 (List.length t.Harness.Report.rows);
  well_formed t 2

let test_fig6_small () =
  let t = Harness.Fig_bandwidth.fig6 ~max_endpoints:128 ~patterns:4 () in
  well_formed t 2

let test_fig7_small () =
  let t = Harness.Fig_runtime.fig7 ~max_endpoints:128 () in
  well_formed t 2

let test_fig8_small () =
  let t = Harness.Fig_runtime.fig8 ~scale:16 () in
  well_formed t 6

let test_fig9_small () =
  let t =
    Harness.Fig_vls.fig9 ~switches:8 ~switch_radix:8 ~terminals_per_switch:2 ~links:[ 10; 14 ] ~trials:2
      ()
  in
  check Alcotest.int "two rows" 2 (List.length t.Harness.Report.rows);
  check Alcotest.int "seven columns" 7 (List.length t.Harness.Report.columns);
  (* VL cells are small positive numbers *)
  List.iter
    (fun row ->
      match row with
      | _links :: rest ->
        List.iter
          (fun c ->
            match c with
            | Harness.Report.Int v -> Alcotest.(check bool) "vl range" true (v >= 1 && v <= 16)
            | Harness.Report.Flt v -> Alcotest.(check bool) "avg range" true (v >= 1.0 && v <= 16.0)
            | _ -> Alcotest.fail "unexpected cell")
          rest
      | [] -> Alcotest.fail "empty row")
    t.Harness.Report.rows

let test_fig10_small () =
  let t = Harness.Fig_vls.fig10 ~scale:16 () in
  check Alcotest.int "six systems" 6 (List.length t.Harness.Report.rows)

let test_heuristics_small () =
  let t =
    Harness.Fig_vls.heuristics ~switches:8 ~switch_radix:8 ~terminals_per_switch:2 ~inter_links:12
      ~trials:2 ()
  in
  check Alcotest.int "three heuristics" 3 (List.length t.Harness.Report.rows)

let test_fig12_small () =
  let t = Harness.Fig_deimos.fig12 ~scale:16 ~cores:[ 8; 16 ] ~patterns:4 () in
  check Alcotest.int "two rows" 2 (List.length t.Harness.Report.rows);
  well_formed t 2

let test_fig12_dynamic_small () =
  let t = Harness.Fig_deimos.fig12_dynamic ~scale:16 ~cores:[ 8 ] ~matchings:1 () in
  check Alcotest.int "one row" 1 (List.length t.Harness.Report.rows);
  match t.Harness.Report.rows with
  | [ row ] ->
    List.iteri
      (fun i cell ->
        if i > 0 then
          match cell with
          | Harness.Report.Flt v -> Alcotest.(check bool) "bandwidth positive" true (v > 0.0)
          | _ -> Alcotest.fail "expected bandwidth")
      row
  | _ -> Alcotest.fail "unexpected shape"

let test_fig13_monotone () =
  let t = Harness.Fig_deimos.fig13 ~scale:16 ~cores:8 ~float_counts:[ 4; 64; 1024 ] () in
  check Alcotest.int "three rows" 3 (List.length t.Harness.Report.rows);
  (* completion time grows with message size for every algorithm *)
  let times col =
    List.map
      (fun row ->
        match List.nth row col with
        | Harness.Report.Time v -> v
        | c -> Alcotest.failf "expected Time, got %s" (Harness.Report.cell_to_string c))
      t.Harness.Report.rows
  in
  List.iteri
    (fun i _ ->
      if i > 0 then begin
        let series = times i in
        let rec ascending = function
          | a :: b :: rest -> a <= b && ascending (b :: rest)
          | _ -> true
        in
        Alcotest.(check bool) "ascending in size" true (ascending series)
      end)
    t.Harness.Report.columns

let test_nas_figures_small () =
  List.iter
    (fun fig ->
      let t : Harness.Report.table = fig () in
      Alcotest.(check bool) (t.Harness.Report.title ^ " nonempty") true (t.Harness.Report.rows <> []))
    [
      (fun () -> Harness.Fig_deimos.fig14 ~scale:16 ~cores:[ 16; 32 ] ());
      (fun () -> Harness.Fig_deimos.fig15 ~scale:16 ~cores:[ 16; 32 ] ());
      (fun () -> Harness.Fig_deimos.fig16 ~scale:16 ~cores:[ 16; 32 ] ());
    ]

let test_nas_figure_unknown_kernel () =
  match Harness.Fig_deimos.nas_figure ~kernel:"ZZ" () with
  | Error msg -> Alcotest.(check bool) "explains" true (Testutil.contains msg "unknown NAS kernel")
  | Ok _ -> Alcotest.fail "unknown kernel accepted"

let test_table2_small () =
  let t = Harness.Fig_deimos.table2 ~scale:16 ~cores:32 () in
  check Alcotest.int "six kernels" 6 (List.length t.Harness.Report.rows);
  List.iter
    (fun row ->
      match row with
      | [ Harness.Report.Str kernel; _; Harness.Report.Flt base; Harness.Report.Flt ours; Harness.Report.Pct imp ]
        ->
        Alcotest.(check bool) (kernel ^ " base positive") true (base > 0.0);
        Alcotest.(check bool) (kernel ^ " ours positive") true (ours > 0.0);
        check (Alcotest.float 1e-6) (kernel ^ " improvement consistent") ((ours -. base) /. base) imp
      | _ -> Alcotest.fail "unexpected row shape")
    t.Harness.Report.rows

(* ------------------------------------------------------------------ *)
(* Topospec                                                             *)
(* ------------------------------------------------------------------ *)

let spec_ok s =
  match Harness.Topospec.parse s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_topospec_forms () =
  let cases =
    [
      ("ring:5", 5, 5);
      ("ring:5:2", 5, 10);
      ("torus:3x3", 9, 9);
      ("torus:3x3:0", 9, 0);
      ("mesh:2x2x2:1", 8, 8);
      ("hypercube:3", 8, 8);
      ("tree:4,2", 8, 16);
      ("tree:4,2:10", 8, 10);
      ("kautz:2,2:12", 6, 12);
      ("dragonfly:4,2,2", 36, 72);
      ("hyperx:3x3:2", 9, 18);
      ("random:6,8,12,10:3", 6, 12);
      ("xgft:4,4/2,2:32", 28, 32);
    ]
  in
  List.iter
    (fun (spec, switches, terminals) ->
      let t = spec_ok spec in
      check Alcotest.int (spec ^ " switches") switches (Graph.num_switches t.Harness.Topospec.graph);
      check Alcotest.int (spec ^ " terminals") terminals (Graph.num_terminals t.Harness.Topospec.graph))
    cases

let test_topospec_coords () =
  Alcotest.(check bool) "torus has coords" true ((spec_ok "torus:4x4").Harness.Topospec.coords <> None);
  Alcotest.(check bool) "hypercube has coords" true
    ((spec_ok "hypercube:3").Harness.Topospec.coords <> None);
  Alcotest.(check bool) "ring has none" true ((spec_ok "ring:5").Harness.Topospec.coords = None)

let test_topospec_cluster_and_errors () =
  let t = spec_ok "cluster:odin:4" in
  check Alcotest.int "scaled odin" 32 (Graph.num_terminals t.Harness.Topospec.graph);
  List.iter
    (fun bad ->
      Alcotest.(check bool) (bad ^ " rejected") true (Result.is_error (Harness.Topospec.parse bad)))
    [
      "";
      "nonesuch:3";
      "ring";
      "ring:x";
      "tree:4";
      "xgft:4,4";
      "cluster:unknown";
      "random:1,2,3";
      "dragonfly:4,2";
      "file:/does/not/exist";
      "torus:0x3";
    ]

let test_topospec_file_roundtrip () =
  let g = Topo_ring.make ~switches:4 ~terminals_per_switch:1 in
  let path = Filename.temp_file "topo" ".txt" in
  Serial.save path g;
  let t = spec_ok ("file:" ^ path) in
  check Alcotest.int "nodes" (Graph.num_nodes g) (Graph.num_nodes t.Harness.Topospec.graph);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let test_ablation_initial_weight () =
  let t = Harness.Ablations.sssp_initial_weight () in
  (* each fabric contributes a paper row and a naive row *)
  check Alcotest.int "rows" 8 (List.length t.Harness.Report.rows);
  (* the paper weight is always minimal; the naive weight is not, on at
     least one fabric *)
  let minimal_of row = List.nth (cells row) 2 in
  let paper_rows, naive_rows =
    List.partition (fun row -> List.nth (cells row) 1 = "|V|^2 (paper)") t.Harness.Report.rows
  in
  List.iter (fun row -> check Alcotest.string "paper minimal" "yes" (minimal_of row)) paper_rows;
  Alcotest.(check bool) "naive detours somewhere" true
    (List.exists (fun row -> minimal_of row = "NO") naive_rows)

let test_ablation_hardened () =
  let t = Harness.Ablations.hardened_routings ~patterns:5 () in
  check Alcotest.int "rows" 6 (List.length t.Harness.Report.rows);
  List.iter
    (fun row ->
      let name = List.nth (cells row) 0 and df = List.nth (cells row) 1 in
      if String.length name > 1 && String.sub name 0 2 = "df" then
        check Alcotest.string (name ^ " hardened") "yes" df)
    t.Harness.Report.rows

let test_ablation_dragonfly () =
  let t = Harness.Ablations.dragonfly ~patterns:5 () in
  check Alcotest.int "all algorithms listed" 7 (List.length t.Harness.Report.rows)

let test_ablation_random_graphs () =
  let t = Harness.Ablations.random_graphs () in
  check Alcotest.int "two jellyfish + two xpander samples" 4 (List.length t.Harness.Report.rows);
  List.iter
    (fun row ->
      let cs = cells row in
      check Alcotest.string (List.nth cs 0 ^ " feasible") "yes" (List.nth cs 3);
      check Alcotest.string (List.nth cs 0 ^ " certified") "certified" (List.nth cs 8);
      (* the lower bound never exceeds what dfsssp actually pays *)
      match (List.nth row 4, List.nth row 7) with
      | Harness.Report.Int lb, Harness.Report.Int vls ->
        Alcotest.(check bool) "lb <= dfsssp VLs" true (lb <= vls)
      | _ -> Alcotest.fail "lower bound or dfsssp VLs missing")
    t.Harness.Report.rows;
  Alcotest.(check bool) "jellyfish sampled" true
    (List.exists (fun row -> Testutil.contains (List.nth (cells row) 0) "jellyfish") t.Harness.Report.rows);
  Alcotest.(check bool) "xpander sampled" true
    (List.exists (fun row -> Testutil.contains (List.nth (cells row) 0) "xpander") t.Harness.Report.rows)

let test_ablation_quality_and_budget () =
  let q = Harness.Ablations.routing_quality ~scale:16 () in
  check Alcotest.int "seven algorithms" 7 (List.length q.Harness.Report.rows);
  let b = Harness.Ablations.vl_budget ~budgets:[ 1; 8 ] () in
  (match b.Harness.Report.rows with
  | [ low; high ] ->
    check Alcotest.string "low budget fails" "failed" (List.nth (cells low) 1);
    check Alcotest.string "high budget ok" "ok" (List.nth (cells high) 1)
  | _ -> Alcotest.fail "unexpected shape");
  let m = Harness.Ablations.multipath ~matchings:2 () in
  check Alcotest.int "three plane counts" 3 (List.length m.Harness.Report.rows)

let test_ablation_complexity () =
  let t = Harness.Ablations.complexity ~max_endpoints:128 () in
  check Alcotest.int "two sizes" 2 (List.length t.Harness.Report.rows);
  (* CDG edge counts and path counts grow with size *)
  let col i row = match List.nth row i with Harness.Report.Int v -> v | _ -> Alcotest.fail "int" in
  (match t.Harness.Report.rows with
  | [ small; big ] ->
    Alcotest.(check bool) "edges grow" true (col 2 big > col 2 small);
    Alcotest.(check bool) "paths grow" true (col 3 big > col 3 small);
    (* a fat tree needs one layer and breaks no cycles *)
    check Alcotest.int "one layer" 1 (col 4 small);
    check Alcotest.int "no cycles" 0 (col 5 small)
  | _ -> Alcotest.fail "unexpected shape")

let test_ablation_balancing () =
  let t = Harness.Ablations.balancing () in
  check Alcotest.int "two rows" 2 (List.length t.Harness.Report.rows);
  match t.Harness.Report.rows with
  | [ plain; balanced ] ->
    let cycles row = match List.nth row 2 with Harness.Report.Int v -> v | _ -> Alcotest.fail "cycles" in
    Alcotest.(check bool) "balancing not slower" true (cycles balanced <= cycles plain)
  | _ -> Alcotest.fail "unexpected shape"

let test_growth_sweep () =
  let t = Harness.Growth.sweep ~patterns:4 () in
  check Alcotest.int "four stages" 4 (List.length t.Harness.Report.rows);
  (match t.Harness.Report.rows with
  | first :: rest ->
    (* clean tree: ftree ok; every later stage: refused *)
    check Alcotest.string "clean tree ftree ok" "ok" (List.nth (cells first) 2);
    List.iter
      (fun row -> check Alcotest.string "grown fabric refused" "refused" (List.nth (cells row) 2))
      rest
  | [] -> Alcotest.fail "no rows");
  (* stages are all valid connected fabrics *)
  List.iter
    (fun (st : Harness.Growth.stage) ->
      Alcotest.(check bool) (st.Harness.Growth.label ^ " valid") true
        (Result.is_ok (Graph.validate st.Harness.Growth.graph) && Graph.connected st.Harness.Growth.graph))
    (Harness.Growth.stages ())

let test_planner () =
  let g = fst (Topo_torus.torus ~dims:[| 3; 3 |] ~terminals_per_switch:2) in
  match Harness.Planner.suggest ~candidates:3 ~patterns:5 ~algorithm:"dfsssp" g with
  | Error e -> Alcotest.fail e
  | Ok suggestions ->
    Alcotest.(check bool) "has suggestions" true (List.length suggestions > 0);
    Alcotest.(check bool) "at most requested" true (List.length suggestions <= 3);
    (* sorted by gain, consistent arithmetic *)
    let rec sorted = function
      | (a : Harness.Planner.suggestion) :: (b :: _ as tl) ->
        a.Harness.Planner.gain >= b.Harness.Planner.gain && sorted tl
      | _ -> true
    in
    Alcotest.(check bool) "sorted by gain" true (sorted suggestions);
    List.iter
      (fun (s : Harness.Planner.suggestion) ->
        Alcotest.(check bool) "gain arithmetic" true
          (Float.abs (s.Harness.Planner.gain -. ((s.Harness.Planner.ebb_after -. s.Harness.Planner.ebb_before) /. s.Harness.Planner.ebb_before)) < 1e-9))
      suggestions

let test_fault_tolerance () =
  List.iter
    (fun fabric ->
      let t = Harness.Fault_tolerance.sweep ~fabric ~removals:[ 0; 2 ] ~patterns:4 () in
      check Alcotest.int "two rows" 2 (List.length t.Harness.Report.rows);
      List.iter
        (fun row ->
          (* the dfsssp eBB column must always be there *)
          match List.nth row 4 with
          | Harness.Report.Flt v -> Alcotest.(check bool) "dfsssp routes" true (v > 0.0)
          | _ -> Alcotest.fail "dfsssp missing")
        t.Harness.Report.rows)
    [ Harness.Fault_tolerance.Torus; Harness.Fault_tolerance.Fat_tree ]

let () =
  Alcotest.run "harness"
    [
      ( "report",
        [
          Alcotest.test_case "cell_to_string" `Quick test_cell_to_string;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "save csv" `Quick test_save_csv;
        ] );
      ( "tableone",
        [
          Alcotest.test_case "rows" `Quick test_tableone_rows;
          Alcotest.test_case "table" `Quick test_tableone_table;
        ] );
      ( "runs",
        [
          Alcotest.test_case "run_named" `Quick test_run_named;
          Alcotest.test_case "cells" `Quick test_cells;
          Alcotest.test_case "timed" `Quick test_timed;
          Alcotest.test_case "sample ranks" `Quick test_sample_ranks;
        ] );
      ( "topospec",
        [
          Alcotest.test_case "forms" `Quick test_topospec_forms;
          Alcotest.test_case "coords" `Quick test_topospec_coords;
          Alcotest.test_case "clusters and errors" `Quick test_topospec_cluster_and_errors;
          Alcotest.test_case "file roundtrip" `Quick test_topospec_file_roundtrip;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "initial weight" `Quick test_ablation_initial_weight;
          Alcotest.test_case "hardened routings" `Quick test_ablation_hardened;
          Alcotest.test_case "dragonfly" `Quick test_ablation_dragonfly;
          Alcotest.test_case "random graphs" `Quick test_ablation_random_graphs;
          Alcotest.test_case "balancing" `Quick test_ablation_balancing;
          Alcotest.test_case "quality, budget, multipath" `Slow test_ablation_quality_and_budget;
          Alcotest.test_case "complexity" `Quick test_ablation_complexity;
        ] );
      ( "fault-tolerance",
        [ Alcotest.test_case "sweeps" `Quick test_fault_tolerance ] );
      ( "growth-and-planning",
        [
          Alcotest.test_case "growth sweep" `Slow test_growth_sweep;
          Alcotest.test_case "planner" `Quick test_planner;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig4" `Slow test_fig4_small;
          Alcotest.test_case "fig5" `Quick test_fig5_small;
          Alcotest.test_case "fig6" `Quick test_fig6_small;
          Alcotest.test_case "fig7" `Quick test_fig7_small;
          Alcotest.test_case "fig8" `Slow test_fig8_small;
          Alcotest.test_case "fig9" `Quick test_fig9_small;
          Alcotest.test_case "fig10" `Slow test_fig10_small;
          Alcotest.test_case "heuristics" `Quick test_heuristics_small;
          Alcotest.test_case "fig12" `Quick test_fig12_small;
          Alcotest.test_case "fig12 dynamic" `Quick test_fig12_dynamic_small;
          Alcotest.test_case "fig13 monotone" `Quick test_fig13_monotone;
          Alcotest.test_case "nas figures" `Quick test_nas_figures_small;
          Alcotest.test_case "nas unknown kernel" `Quick test_nas_figure_unknown_kernel;
          Alcotest.test_case "table2" `Quick test_table2_small;
        ] );
    ]
