(* Tests for the live fabric manager subsystem: id-stable fault
   injection, forwarding-table diffing, incremental repair, verified
   epoch swaps, the fallback policy, and the end-to-end acceptance run
   on a 4x4x4 torus under a mixed fault schedule. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let torus dims = fst (Topo_torus.torus ~dims ~terminals_per_switch:1)

let chan_between g a b =
  let found = ref (-1) in
  Array.iter
    (fun (c : Channel.t) -> if c.Channel.src = a && c.Channel.dst = b then found := c.Channel.id)
    (Graph.channels g);
  if !found < 0 then Alcotest.failf "no channel %d -> %d" a b;
  !found

let first_switch_cable g = (Degrade.switch_cables g).(0)

let route_dfsssp ?(max_layers = 8) g =
  let weights = Routing.Sssp.initial_weights g in
  match Routing.Sssp.route_plane g ~weights with
  | Error msg -> Alcotest.failf "route_plane: %s" msg
  | Ok ft -> (
    match Dfsssp.assign_layers ~max_layers ft with
    | Ok ft -> ft
    | Error e -> Alcotest.failf "assign_layers: %s" (Dfsssp.error_to_string e))

(* ------------------------------------------------------------------ *)
(* Events                                                               *)
(* ------------------------------------------------------------------ *)

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      match Fabric.Event.of_string (Fabric.Event.to_string ev) with
      | Ok ev' -> check Alcotest.bool (Fabric.Event.to_string ev) true (ev = ev')
      | Error msg -> Alcotest.failf "roundtrip %s: %s" (Fabric.Event.to_string ev) msg)
    [ Fabric.Event.Link_down 3; Fabric.Event.Link_up 0; Fabric.Event.Switch_drain 7; Fabric.Event.Switch_remove 12 ]

let test_event_parse_rejects_garbage () =
  List.iter
    (fun s -> check Alcotest.bool s true (Result.is_error (Fabric.Event.of_string s)))
    [ "explode 3"; "down"; "down x"; ""; "up 1 2" ]

(* ------------------------------------------------------------------ *)
(* Id-stable degrade: disable / restore / drain                         *)
(* ------------------------------------------------------------------ *)

let test_disable_restore_id_stable () =
  let g = torus [| 3; 3 |] in
  let nc = Graph.num_channels g in
  let cable = first_switch_cable g in
  match Degrade.disable_cable g ~cable with
  | Error msg -> Alcotest.failf "disable: %s" msg
  | Ok (g', chans) ->
    check Alcotest.int "channel ids preserved" nc (Graph.num_channels g');
    check Alcotest.int "two directed channels down" (nc - 2) (Graph.num_enabled_channels g');
    List.iter (fun c -> check Alcotest.bool "disabled" false (Graph.channel_enabled g' c)) chans;
    check Alcotest.(list int) "disabled_cables lists the pair" [ List.hd chans ] (Degrade.disabled_cables g');
    check Alcotest.bool "still connected" true (Graph.connected g');
    check Alcotest.bool "still valid" true (Result.is_ok (Graph.validate g'));
    (* the channel record itself is untouched: same endpoints, same id *)
    let c = Graph.channel g cable and c' = Graph.channel g' cable in
    check Alcotest.int "src stable" c.Channel.src c'.Channel.src;
    check Alcotest.int "dst stable" c.Channel.dst c'.Channel.dst;
    (match Degrade.restore_cable g' ~cable with
    | Error msg -> Alcotest.failf "restore: %s" msg
    | Ok (g'', chans') ->
      check Alcotest.(list int) "same pair restored" chans chans';
      check Alcotest.int "all channels back" nc (Graph.num_enabled_channels g'');
      check Alcotest.(list int) "nothing left disabled" [] (Degrade.disabled_cables g''))

let test_disable_rejections () =
  let g = torus [| 3; 3 |] in
  let t = (Graph.terminals g).(0) in
  let attach = (Graph.out_channels g t).(0) in
  check Alcotest.bool "terminal cable rejected" true (Result.is_error (Degrade.disable_cable g ~cable:attach));
  check Alcotest.bool "unknown cable rejected" true (Result.is_error (Degrade.disable_cable g ~cable:(-1)));
  let cable = first_switch_cable g in
  let g', _ = Result.get_ok (Degrade.disable_cable g ~cable) in
  check Alcotest.bool "double disable rejected" true (Result.is_error (Degrade.disable_cable g' ~cable));
  check Alcotest.bool "restore of an enabled cable rejected" true
    (Result.is_error (Degrade.restore_cable g ~cable))

let test_disable_cut_edge_rejected () =
  (* a line s0 - s1 - s2: both inter-switch cables are cut edges *)
  let b = Builder.create () in
  let s0 = Builder.add_switch b ~name:"s0" in
  let s1 = Builder.add_switch b ~name:"s1" in
  let s2 = Builder.add_switch b ~name:"s2" in
  let _ = Builder.add_terminal b ~name:"t0" ~switch:s0 in
  let _ = Builder.add_terminal b ~name:"t2" ~switch:s2 in
  let c01, _ = Builder.add_link b s0 s1 in
  let c12, _ = Builder.add_link b s1 s2 in
  let g = Builder.build b in
  List.iter
    (fun cable ->
      match Degrade.disable_cable g ~cable with
      | Ok _ -> Alcotest.failf "disabling cut cable %d should be rejected" cable
      | Error _ -> ())
    [ c01; c12 ]

let test_drain_switch () =
  let g = torus [| 3; 3 |] in
  let sw = (Graph.switches g).(0) in
  match Degrade.drain_switch g ~switch:sw with
  | Error msg -> Alcotest.failf "drain: %s" msg
  | Ok (g', chans) ->
    check Alcotest.bool "some cables drained" true (List.length chans >= 2);
    check Alcotest.int "whole pairs only" 0 (List.length chans mod 2);
    check Alcotest.bool "still connected" true (Graph.connected g')

let test_remove_switch_drops_disabled () =
  let g = torus [| 3; 3 |] in
  let victim = (Graph.switches g).(0) in
  let cable =
    Array.to_list (Degrade.switch_cables g)
    |> List.find (fun c ->
           let ch = Graph.channel g c in
           ch.Channel.src <> victim && ch.Channel.dst <> victim)
  in
  let a = (Graph.channel g cable).Channel.src and b = (Graph.channel g cable).Channel.dst in
  let name n = (Graph.node g n).Node.name in
  let g', _ = Result.get_ok (Degrade.disable_cable g ~cable) in
  match Degrade.remove_switch g' ~switch:victim with
  | Error msg -> Alcotest.failf "remove_switch: %s" msg
  | Ok g2 ->
    check Alcotest.int "rebuilt fabric has no disabled channels" (Graph.num_channels g2)
      (Graph.num_enabled_channels g2);
    let survived =
      Array.exists
        (fun (c : Channel.t) ->
          let ns = (Graph.node g2 c.Channel.src).Node.name
          and nd = (Graph.node g2 c.Channel.dst).Node.name in
          (ns = name a && nd = name b) || (ns = name b && nd = name a))
        (Graph.channels g2)
    in
    check Alcotest.bool "disabled cable dropped by the rebuild" false survived

(* ------------------------------------------------------------------ *)
(* Ftable.diff                                                          *)
(* ------------------------------------------------------------------ *)

(* Hand-built fixture: two switches with one terminal each, one cable. *)
let diff_fixture () =
  let b = Builder.create () in
  let s0 = Builder.add_switch b ~name:"s0" in
  let s1 = Builder.add_switch b ~name:"s1" in
  let t0 = Builder.add_terminal b ~name:"t0" ~switch:s0 in
  let t1 = Builder.add_terminal b ~name:"t1" ~switch:s1 in
  let _ = Builder.add_link b s0 s1 in
  let g = Builder.build b in
  let route () =
    let ft = Routing.Ftable.create g ~algorithm:"hand" in
    List.iter
      (fun (node, dst, nxt) -> Routing.Ftable.set_next ft ~node ~dst ~channel:(chan_between g node nxt))
      [ (s0, t1, s1); (s1, t1, t1); (t0, t1, s0); (s1, t0, s0); (s0, t0, t0); (t1, t0, s1) ];
    ft
  in
  (g, s0, t0, t1, route)

let test_diff_identical () =
  let _, _, _, _, route = diff_fixture () in
  let d = Routing.Ftable.diff (route ()) (route ()) in
  check Alcotest.int "no dsts changed" 0 d.Routing.Ftable.dsts_changed;
  check Alcotest.int "no entries changed" 0 d.Routing.Ftable.entries_changed;
  check Alcotest.int "empty per_dst" 0 (Array.length d.Routing.Ftable.per_dst)

let test_diff_counts_changed_entries () =
  let g, s0, t0, t1, route = diff_fixture () in
  let a = route () and b = route () in
  (* point s0's entry for t1 at its terminal port instead — nonsense as a
     route, but a legal entry, and diff only counts disagreements *)
  Routing.Ftable.set_next b ~node:s0 ~dst:t1 ~channel:(chan_between g s0 t0);
  let d = Routing.Ftable.diff a b in
  check Alcotest.int "one dst changed" 1 d.Routing.Ftable.dsts_changed;
  check Alcotest.int "one entry changed" 1 d.Routing.Ftable.entries_changed;
  check Alcotest.(array (pair int int)) "per_dst pins the destination" [| (t1, 1) |] d.Routing.Ftable.per_dst

let test_diff_mismatch_rejected () =
  let _, _, _, _, route = diff_fixture () in
  let other = route_dfsssp (torus [| 3; 3 |]) in
  check Alcotest.bool "different fabrics rejected" true
    (match Routing.Ftable.diff (route ()) other with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Incremental repair                                                   *)
(* ------------------------------------------------------------------ *)

(* The regression the subsystem exists for: on a single-link failure the
   incremental path recomputes strictly fewer destinations than the full
   recompute would (which touches all of them). *)
let test_affected_strictly_fewer_than_full () =
  let g = torus [| 4; 4 |] in
  let ft = route_dfsssp g in
  let total = Graph.num_terminals g in
  let some_cable_in_use = ref false in
  Array.iter
    (fun cable ->
      let pair = Option.get (Graph.reverse_channel g cable) in
      let affected = Fabric.Repair.affected_destinations ft ~channels:[ cable; pair ] in
      if affected <> [] then some_cable_in_use := true;
      check Alcotest.bool "strictly fewer destinations than a full recompute" true
        (List.length affected < total))
    (Degrade.switch_cables g);
  check Alcotest.bool "routing does use the switch cables" true !some_cable_in_use

(* ------------------------------------------------------------------ *)
(* Manager                                                              *)
(* ------------------------------------------------------------------ *)

let test_manager_single_link_incremental () =
  let g = torus [| 4; 4 |] in
  let mgr = Result.get_ok (Fabric.Manager.create g) in
  let total = Graph.num_terminals g in
  (* pick a cable some routes use but under the 50% repair budget *)
  let cable =
    Array.to_list (Degrade.switch_cables g)
    |> List.find (fun c ->
           let pair = Option.get (Graph.reverse_channel g c) in
           let n =
             List.length
               (Fabric.Repair.affected_destinations (Fabric.Manager.tables mgr) ~channels:[ c; pair ])
           in
           n > 0 && 2 * n <= total)
  in
  let o = Fabric.Manager.apply mgr (Fabric.Event.Link_down cable) in
  check Alcotest.bool "applied" true o.Fabric.Manager.applied;
  (match o.Fabric.Manager.action with
  | Fabric.Manager.Incremental { repaired; total = t } ->
    check Alcotest.bool "repaired a strict subset" true (repaired > 0 && repaired < t);
    (match o.Fabric.Manager.table_diff with
    | Some d ->
      check Alcotest.bool "kept trees copied verbatim" true (d.Routing.Ftable.dsts_changed <= repaired)
    | None -> Alcotest.fail "incremental swap without a table diff")
  | _ -> Alcotest.fail "expected an incremental repair");
  check Alcotest.bool "no fallback" false o.Fabric.Manager.fallback;
  check Alcotest.int "epoch advanced" 2 o.Fabric.Manager.epoch;
  (match o.Fabric.Manager.verify with
  | Some r -> check Alcotest.bool "verified deadlock-free" true r.Dfsssp.Verify.deadlock_free
  | None -> Alcotest.fail "swap without a verification report");
  (* bring the link back: the beneficiary repair must also end verified *)
  let o2 = Fabric.Manager.apply mgr (Fabric.Event.Link_up cable) in
  check Alcotest.bool "restore applied" true o2.Fabric.Manager.applied;
  check Alcotest.bool "restore ends verified" true (o2.Fabric.Manager.verify <> None);
  check Alcotest.bool "converged" true (Fabric.Manager.converged mgr)

let test_manager_rejects_bad_event () =
  let g = torus [| 3; 3 |] in
  let mgr = Result.get_ok (Fabric.Manager.create g) in
  let t = (Graph.terminals g).(0) in
  let attach = (Graph.out_channels g t).(0) in
  let o = Fabric.Manager.apply mgr (Fabric.Event.Link_down attach) in
  check Alcotest.bool "not applied" false o.Fabric.Manager.applied;
  check Alcotest.int "epoch unchanged" 1 o.Fabric.Manager.epoch;
  check Alcotest.int "counted as rejected" 1 (Fabric.Metrics.events_rejected (Fabric.Manager.metrics mgr));
  check Alcotest.bool "rejection does not break convergence" true (Fabric.Manager.converged mgr)

(* Deterministic fallback: a ring needs two virtual layers, so with
   layer_budget = 1 the incremental path must refuse and the manager must
   fall back to a (verified) full recompute. *)
let test_manager_fallback_on_layer_budget () =
  let g = Topo_ring.make ~switches:8 ~terminals_per_switch:1 in
  let config = { Fabric.Manager.default_config with layer_budget = 1; repair_fraction = 1.0 } in
  let mgr = Result.get_ok (Fabric.Manager.create ~config g) in
  check Alcotest.bool "ring routing needs multiple layers" true
    (Routing.Ftable.num_layers (Fabric.Manager.tables mgr) > 1);
  let o = Fabric.Manager.apply mgr (Fabric.Event.Link_down (first_switch_cable g)) in
  check Alcotest.bool "applied" true o.Fabric.Manager.applied;
  check Alcotest.bool "fell back" true o.Fabric.Manager.fallback;
  (match o.Fabric.Manager.action with
  | Fabric.Manager.Full _ -> ()
  | _ -> Alcotest.fail "expected a full recompute after the fallback");
  (match o.Fabric.Manager.verify with
  | Some r -> check Alcotest.bool "fallback tables verified deadlock-free" true r.Dfsssp.Verify.deadlock_free
  | None -> Alcotest.fail "fallback swap without a verification report");
  check Alcotest.bool "fallback counted" true (Fabric.Metrics.fallbacks (Fabric.Manager.metrics mgr) >= 1);
  check Alcotest.bool "converged despite the fallback" true (Fabric.Manager.converged mgr)

(* The acceptance run from the issue: 4x4x4 torus, 10-event mixed
   schedule (link downs, a link up, one switch removal). Every applied
   event must end in a verified deadlock-free swap, and single-link
   events must repair under 50% of the destinations. *)
let test_manager_acceptance_4x4x4 () =
  let g = torus [| 4; 4; 4 |] in
  let rng = Rng.create 3 in
  let schedule = Fabric.Schedule.generate g ~rng ~events:10 ~switch_removals:1 () in
  check Alcotest.int "full-length schedule" 10 (List.length schedule);
  check Alcotest.bool "schedule restores a link" true
    (List.exists (function Fabric.Event.Link_up _ -> true | _ -> false) schedule);
  check Alcotest.bool "schedule removes a switch" true
    (List.exists (function Fabric.Event.Switch_remove _ -> true | _ -> false) schedule);
  let mgr = Result.get_ok (Fabric.Manager.create g) in
  let outcomes = Fabric.Manager.run mgr schedule in
  List.iter
    (fun (o : Fabric.Manager.outcome) ->
      check Alcotest.bool "event applied" true o.Fabric.Manager.applied;
      match o.Fabric.Manager.action with
      | Fabric.Manager.Noop -> ()
      | Fabric.Manager.Incremental { repaired; total } ->
        check Alcotest.bool "single-link repair under 50% of destinations" true (2 * repaired < total);
        (match o.Fabric.Manager.verify with
        | Some r -> check Alcotest.bool "incremental swap verified" true r.Dfsssp.Verify.deadlock_free
        | None -> Alcotest.fail "incremental swap without verification")
      | Fabric.Manager.Full _ -> (
        match o.Fabric.Manager.verify with
        | Some r -> check Alcotest.bool "full swap verified" true r.Dfsssp.Verify.deadlock_free
        | None -> Alcotest.fail "full swap without verification"))
    outcomes;
  let m = Fabric.Manager.metrics mgr in
  check Alcotest.bool "the switch removal forced a full recompute" true (Fabric.Metrics.full_recomputes m >= 1);
  check Alcotest.bool "incremental repairs dominated" true (Fabric.Metrics.incremental_repairs m >= 5);
  check Alcotest.bool "overall repaired fraction under 50%" true (Fabric.Metrics.repaired_fraction m < 0.5);
  check Alcotest.bool "converged" true (Fabric.Manager.converged mgr);
  match Dfsssp.Verify.report (Fabric.Manager.tables mgr) with
  | Ok r -> check Alcotest.bool "final tables deadlock-free" true r.Dfsssp.Verify.deadlock_free
  | Error msg -> Alcotest.failf "final tables invalid: %s" msg

(* ------------------------------------------------------------------ *)
(* Epoch snapshots and shutdown (the controller daemon's serving path)   *)
(* ------------------------------------------------------------------ *)

let test_snapshot_cached_per_epoch () =
  let g = torus [| 3; 3 |] in
  let mgr = Result.get_ok (Fabric.Manager.create g) in
  let snap1 =
    match Fabric.Manager.snapshot mgr with
    | Ok s -> s
    | Error msg -> Alcotest.failf "snapshot: %s" msg
  in
  check Alcotest.int "snapshot epoch" (Fabric.Manager.epoch mgr) snap1.Fabric.Epoch.snap_epoch;
  (* Same epoch, same export: the arena walk is paid once. *)
  let snap1' = Result.get_ok (Fabric.Manager.snapshot mgr) in
  check Alcotest.bool "cached store" true (snap1.Fabric.Epoch.store == snap1'.Fabric.Epoch.store);
  (* A swap installs a new snapshot; the old one is untouched (graceful
     drain for readers holding it). *)
  let paths_before = Deadlock.Route_store.num_paths snap1.Fabric.Epoch.store in
  check Alcotest.bool "snapshot populated" true (paths_before > 0);
  let cable = first_switch_cable g in
  let o = Fabric.Manager.apply mgr (Fabric.Event.Link_down cable) in
  check Alcotest.bool "event applied" true o.Fabric.Manager.applied;
  let snap2 = Result.get_ok (Fabric.Manager.snapshot mgr) in
  check Alcotest.bool "new epoch exported" true
    (snap2.Fabric.Epoch.snap_epoch > snap1.Fabric.Epoch.snap_epoch);
  (* the swap installed a new export; the old one was not mutated *)
  check Alcotest.int "old snapshot still serves every pair" paths_before
    (Deadlock.Route_store.num_paths snap1.Fabric.Epoch.store);
  check Alcotest.bool "stores distinct" true
    (not (snap1.Fabric.Epoch.store == snap2.Fabric.Epoch.store))

let test_shutdown_idempotent_and_usable () =
  let g = torus [| 4; 4 |] in
  let config = { Fabric.Manager.default_config with domains = 2 } in
  let mgr = Result.get_ok (Fabric.Manager.create ~config g) in
  let cable = first_switch_cable g in
  let o = Fabric.Manager.apply mgr (Fabric.Event.Link_down cable) in
  check Alcotest.bool "applied with pool" true o.Fabric.Manager.applied;
  Fabric.Manager.shutdown mgr;
  Fabric.Manager.shutdown mgr;
  (* Shutdown releases the domain pool and flushes sinks but the manager
     stays usable: later recomputes just run without a persistent pool. *)
  let o2 = Fabric.Manager.apply mgr (Fabric.Event.Link_up cable) in
  check Alcotest.bool "applied after shutdown" true o2.Fabric.Manager.applied;
  Fabric.Manager.shutdown mgr

(* ------------------------------------------------------------------ *)
(* Schedules                                                            *)
(* ------------------------------------------------------------------ *)

let test_schedule_deterministic_roundtrip () =
  let g = torus [| 4; 4 |] in
  let gen seed =
    Fabric.Schedule.generate g ~rng:(Rng.create seed) ~events:8 ~switch_removals:1 ~drains:1 ()
  in
  check Alcotest.bool "deterministic in the seed" true (gen 7 = gen 7);
  let s = gen 7 in
  check Alcotest.bool "non-trivial schedule" true (List.length s > 0);
  match Fabric.Schedule.of_string (Fabric.Schedule.to_string s) with
  | Ok s' -> check Alcotest.bool "text roundtrip" true (s = s')
  | Error msg -> Alcotest.failf "roundtrip: %s" msg

let test_schedule_parse () =
  match Fabric.Schedule.of_string "# maintenance window\ndown 3\n\nup 3\nremove 1\n" with
  | Ok [ Fabric.Event.Link_down 3; Fabric.Event.Link_up 3; Fabric.Event.Switch_remove 1 ] -> ()
  | Ok s -> Alcotest.failf "unexpected parse: %s" (Fabric.Schedule.to_string s)
  | Error msg -> Alcotest.failf "parse: %s" msg

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fabric"
    [
      ( "event",
        [
          Alcotest.test_case "text roundtrip" `Quick test_event_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_event_parse_rejects_garbage;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "disable/restore keeps ids" `Quick test_disable_restore_id_stable;
          Alcotest.test_case "rejections" `Quick test_disable_rejections;
          Alcotest.test_case "cut edges survive" `Quick test_disable_cut_edge_rejected;
          Alcotest.test_case "drain keeps connectivity" `Quick test_drain_switch;
          Alcotest.test_case "rebuild drops disabled cables" `Quick test_remove_switch_drops_disabled;
        ] );
      ( "ftable-diff",
        [
          Alcotest.test_case "identical tables" `Quick test_diff_identical;
          Alcotest.test_case "counts changed entries" `Quick test_diff_counts_changed_entries;
          Alcotest.test_case "mismatched fabrics rejected" `Quick test_diff_mismatch_rejected;
        ] );
      ( "repair",
        [
          Alcotest.test_case "affected < full recompute" `Quick test_affected_strictly_fewer_than_full;
        ] );
      ( "manager",
        [
          Alcotest.test_case "single link down/up incremental" `Quick test_manager_single_link_incremental;
          Alcotest.test_case "bad events rejected" `Quick test_manager_rejects_bad_event;
          Alcotest.test_case "layer budget fallback" `Quick test_manager_fallback_on_layer_budget;
          Alcotest.test_case "acceptance: 4x4x4 torus, mixed schedule" `Quick test_manager_acceptance_4x4x4;
        ] );
      ( "epoch-snapshot",
        [
          Alcotest.test_case "cached per epoch, immutable" `Quick test_snapshot_cached_per_epoch;
          Alcotest.test_case "shutdown idempotent, manager usable" `Quick test_shutdown_idempotent_and_usable;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "deterministic + roundtrip" `Quick test_schedule_deterministic_roundtrip;
          Alcotest.test_case "parser" `Quick test_schedule_parse;
        ] );
    ]
