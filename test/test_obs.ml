(* The observability layer (DESIGN.md section 13): deterministic
   statistics, contention-free counters and timers, JSON wire format,
   span nesting, registry snapshots — and the acceptance path: tracing an
   entire fabric-manager run into parseable JSON-lines. *)

let check = Alcotest.check

let feq = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Stat: one deterministic ordering                                     *)
(* ------------------------------------------------------------------ *)

let stat_basic () =
  let s = Obs.Stat.summarize [| 3.0; 1.0; 4.0; 2.0 |] in
  check Alcotest.int "n" 4 s.Obs.Stat.n;
  check feq "min" 1.0 s.Obs.Stat.min;
  check feq "max" 4.0 s.Obs.Stat.max;
  check feq "mean" 2.5 s.Obs.Stat.mean;
  check feq "median" 2.0 s.Obs.Stat.median;
  check feq "p75" 3.0 (Obs.Stat.percentile 0.75 [| 3.0; 1.0; 4.0; 2.0 |])

(* The regression behind the Float.compare fix: with polymorphic compare
   the sort order of a NaN-bearing sample depended on element positions,
   so percentile/summarize changed with input order. Float.compare is a
   total order (NaN first): any permutation must summarize identically. *)
let stat_nan_deterministic () =
  let base = [| 5.0; Float.nan; 1.0; 3.0; 2.0; 4.0 |] in
  let rotations =
    List.init (Array.length base) (fun k ->
        Array.init (Array.length base) (fun i -> base.((i + k) mod Array.length base)))
  in
  let reference = Obs.Stat.summarize base in
  List.iter
    (fun xs ->
      let s = Obs.Stat.summarize xs in
      (* NaN sorts first, so min is NaN for every ordering... *)
      check Alcotest.bool "min is nan" true (Float.is_nan s.Obs.Stat.min);
      (* ...and max/median come off the same sorted array every time. *)
      check feq "max" reference.Obs.Stat.max s.Obs.Stat.max;
      check feq "median" reference.Obs.Stat.median s.Obs.Stat.median;
      List.iter
        (fun p -> check feq "percentile" (Obs.Stat.percentile p base) (Obs.Stat.percentile p xs))
        [ 0.3; 0.5; 0.9; 1.0 ])
    rotations

let stat_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Obs.Stat.summarize: empty sample") (fun () ->
      ignore (Obs.Stat.summarize [||]));
  Alcotest.check_raises "bad p" (Invalid_argument "Obs.Stat.percentile: p out of range") (fun () ->
      ignore (Obs.Stat.percentile 1.5 [| 1.0 |]));
  (* a NaN percentile must not slip through the range check *)
  Alcotest.check_raises "nan p" (Invalid_argument "Obs.Stat.percentile: p out of range") (fun () ->
      ignore (Obs.Stat.percentile Float.nan [| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Counters                                                             *)
(* ------------------------------------------------------------------ *)

let counter_basic () =
  let c = Obs.Counter.create ~slots:4 "test.counter" in
  Obs.Counter.incr c;
  Obs.Counter.incr ~slot:2 ~n:5 c;
  Obs.Counter.incr ~slot:3 c;
  check Alcotest.int "sum" 7 (Obs.Counter.value c);
  check Alcotest.int "slot 0" 1 (Obs.Counter.slot_value c 0);
  check Alcotest.int "slot 2" 5 (Obs.Counter.slot_value c 2);
  (* out-of-range slots clamp instead of crashing a worker *)
  Obs.Counter.incr ~slot:(-7) c;
  Obs.Counter.incr ~slot:99 ~n:2 c;
  check Alcotest.int "clamped low" 2 (Obs.Counter.slot_value c 0);
  check Alcotest.int "clamped high" 3 (Obs.Counter.slot_value c 3);
  Obs.Counter.set c 42;
  check Alcotest.int "gauge set" 42 (Obs.Counter.slot_value c 0);
  Obs.Counter.reset c;
  check Alcotest.int "reset" 0 (Obs.Counter.value c)

let counter_parallel () =
  (* 4 domains hammering distinct slots: no update may be lost *)
  let c = Obs.Counter.create ~slots:4 "test.parallel" in
  let per = 10_000 in
  let worker slot =
    Domain.spawn (fun () ->
        for _ = 1 to per do
          Obs.Counter.incr ~slot c
        done)
  in
  let ds = List.init 4 worker in
  List.iter Domain.join ds;
  check Alcotest.int "total" (4 * per) (Obs.Counter.value c);
  List.iter (fun slot -> check Alcotest.int "slot" per (Obs.Counter.slot_value c slot)) [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Timers                                                               *)
(* ------------------------------------------------------------------ *)

let timer_basic () =
  let t = Obs.Timer.create ~slots:2 ~capacity:8 "test.timer" in
  Obs.Timer.add t 0.25;
  Obs.Timer.add ~slot:1 t 0.75;
  check Alcotest.int "count" 2 (Obs.Timer.count t);
  check feq "sum" 1.0 (Obs.Timer.sum_s t);
  check Alcotest.int "slot count" 1 (Obs.Timer.slot_count t 1);
  (match Obs.Timer.summary t with
  | None -> Alcotest.fail "summary expected"
  | Some s ->
    check Alcotest.int "summary n" 2 s.Obs.Stat.n;
    check feq "summary mean" 0.5 s.Obs.Stat.mean);
  (* the ring is bounded: overflow keeps the newest [capacity] samples *)
  for _ = 1 to 20 do
    Obs.Timer.add t 0.1
  done;
  check Alcotest.bool "ring bounded" true (Array.length (Obs.Timer.samples t) <= 16);
  check Alcotest.int "count keeps going" 22 (Obs.Timer.count t)

let timer_records_on_raise () =
  let t = Obs.Timer.create "test.raise" in
  (try Obs.Timer.time t (fun () -> failwith "boom") with Failure _ -> ());
  check Alcotest.int "raised call counted" 1 (Obs.Timer.count t)

(* ------------------------------------------------------------------ *)
(* JSON wire format                                                     *)
(* ------------------------------------------------------------------ *)

let json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("name", Obs.Json.Str "sssp.route \"fast\"\npath");
        ("count", Obs.Json.Num 42.0);
        ("ratio", Obs.Json.Num 0.125);
        ("ok", Obs.Json.Bool true);
        ("none", Obs.Json.Null);
        ("xs", Obs.Json.List [ Obs.Json.Num 1.0; Obs.Json.Num 2.0 ]);
      ]
  in
  match Obs.Json.of_string (Obs.Json.to_string doc) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok doc' ->
    check Alcotest.bool "fixpoint" true (doc = doc');
    check (Alcotest.option Alcotest.int) "member" (Some 42) Obs.Json.(member "count" doc' |> Option.get |> to_int)
      |> ignore

let json_special_floats () =
  (* NaN/infinity have no JSON encoding: they become null, and the result
     must still parse *)
  let s = Obs.Json.to_string (Obs.Json.List [ Obs.Json.Num Float.nan; Obs.Json.Num Float.infinity ]) in
  check Alcotest.string "nulls" "[null,null]" s;
  check Alcotest.bool "parses" true (Result.is_ok (Obs.Json.of_string s))

let json_errors () =
  check Alcotest.bool "trailing garbage" true (Result.is_error (Obs.Json.of_string "{} junk"));
  check Alcotest.bool "unterminated" true (Result.is_error (Obs.Json.of_string "{\"a\": [1, 2"));
  check Alcotest.bool "bare word" true (Result.is_error (Obs.Json.of_string "nope"))

let json_unicode () =
  match Obs.Json.of_string {|"aé\n\t\"b\""|} with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok (Obs.Json.Str s) -> check Alcotest.string "decoded" "a\xc3\xa9\n\t\"b\"" s
  | Ok _ -> Alcotest.fail "expected a string"

let json_depth_bomb () =
  (* A nesting bomb must be rejected by the depth cap, not by blowing the
     stack: the parser now frames a network protocol (DESIGN.md §14). *)
  let bomb = String.make 100_000 '[' in
  (match Obs.Json.of_string bomb with
  | Ok _ -> Alcotest.fail "bomb parsed"
  | Error msg -> check Alcotest.bool "mentions nesting" true (String.length msg > 0));
  (* ... while documents within the default cap still parse. *)
  let deep n = String.make n '[' ^ "0" ^ String.make n ']' in
  check Alcotest.bool "depth 400 ok" true (Result.is_ok (Obs.Json.of_string (deep 400)));
  (* The cap is tunable per call site. *)
  check Alcotest.bool "shallow cap rejects" true
    (Result.is_error (Obs.Json.of_string ~max_depth:3 (deep 5)));
  check Alcotest.bool "shallow cap admits" true
    (Result.is_ok (Obs.Json.of_string ~max_depth:3 (deep 3)));
  (* Objects count toward the same budget. *)
  let deep_obj n =
    String.concat "" (List.init n (fun _ -> "{\"k\":"))
    ^ "null"
    ^ String.make n '}'
  in
  check Alcotest.bool "object bomb rejected" true
    (Result.is_error (Obs.Json.of_string ~max_depth:10 (deep_obj 12)))

(* Wire-hardening property (satellite of the controller service): every
   tree the encoder can emit losslessly — integral [Num]s, since
   [%.12g] is the codec's precision contract — survives a round trip
   through the hostile-input parser. *)
let json_roundtrip_prop =
  let gen =
    let open QCheck2.Gen in
    let scalar =
      oneof
        [
          return Obs.Json.Null;
          map (fun b -> Obs.Json.Bool b) bool;
          map (fun i -> Obs.Json.Num (float_of_int i)) (int_range (-1_000_000_000) 1_000_000_000);
          map (fun s -> Obs.Json.Str s) (string_size ~gen:printable (int_range 0 16));
        ]
    in
    let key = string_size ~gen:(char_range 'a' 'z') (int_range 0 6) in
    sized
    @@ fix (fun self n ->
           if n <= 0 then scalar
           else
             frequency
               [
                 (3, scalar);
                 (1, map (fun l -> Obs.Json.List l) (list_size (int_range 0 4) (self (n / 2))));
                 ( 1,
                   map
                     (fun kvs -> Obs.Json.Obj kvs)
                     (list_size (int_range 0 4) (pair key (self (n / 2)))) );
               ])
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"encode/decode fixpoint" gen (fun doc ->
         match Obs.Json.of_string (Obs.Json.to_string doc) with
         | Ok doc' -> doc = doc'
         | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Trace spans                                                          *)
(* ------------------------------------------------------------------ *)

let parse_lines buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match Obs.Json.of_string l with
         | Ok j -> j
         | Error msg -> Alcotest.failf "bad span line %S: %s" l msg)

let trace_nesting () =
  let buf = Buffer.create 512 in
  Obs.Control.with_enabled true (fun () ->
      Obs.Trace.with_sink (Obs.Trace.buffer_sink buf) (fun () ->
          Obs.Trace.with_span "outer" (fun () ->
              Obs.Trace.with_span "inner"
                ~attrs:(fun () -> [ ("k", Obs.Trace.Int 7) ])
                (fun () -> ()))));
  match parse_lines buf with
  | [ inner; outer ] ->
    (* innermost ends (and is emitted) first *)
    check (Alcotest.option Alcotest.string) "inner name" (Some "inner")
      Obs.Json.(member "name" inner |> Option.get |> to_str);
    check (Alcotest.option Alcotest.string) "outer name" (Some "outer")
      Obs.Json.(member "name" outer |> Option.get |> to_str);
    let id j = Obs.Json.(member "id" j |> Option.get |> to_int) in
    check (Alcotest.option Alcotest.int) "parent link" (id outer)
      Obs.Json.(member "parent" inner |> Option.get |> to_int);
    check Alcotest.bool "outer is a root" true (Obs.Json.member "parent" outer = Some Obs.Json.Null);
    check (Alcotest.option Alcotest.int) "attr" (Some 7)
      Obs.Json.(member "attrs" inner |> Option.get |> member "k" |> Option.get |> to_int)
  | lines -> Alcotest.failf "expected 2 spans, got %d" (List.length lines)

let trace_disabled_is_silent () =
  let buf = Buffer.create 64 in
  (* a sink without the switch: nothing may be emitted, and attribute
     thunks may never run *)
  Obs.Control.with_enabled false (fun () ->
      Obs.Trace.with_sink (Obs.Trace.buffer_sink buf) (fun () ->
          Obs.Trace.with_span "quiet"
            ~attrs:(fun () -> Alcotest.fail "attrs forced while disabled")
            (fun () -> ())));
  check Alcotest.string "no output" "" (Buffer.contents buf);
  (* and the switch without a sink is equally silent *)
  Obs.Control.with_enabled true (fun () -> Obs.Trace.with_span "no sink" (fun () -> ()));
  check Alcotest.bool "not enabled without sink" false
    (Obs.Control.with_enabled true (fun () -> Obs.Trace.enabled ()))

let trace_error_attr () =
  let buf = Buffer.create 256 in
  (try
     Obs.Control.with_enabled true (fun () ->
         Obs.Trace.with_sink (Obs.Trace.buffer_sink buf) (fun () ->
             Obs.Trace.with_span "doomed" (fun () -> failwith "expected")))
   with Failure _ -> ());
  match parse_lines buf with
  | [ span ] ->
    check Alcotest.bool "error attr present" true
      (Obs.Json.(member "attrs" span |> Option.get |> member "error") <> None)
  | lines -> Alcotest.failf "expected 1 span, got %d" (List.length lines)

(* ------------------------------------------------------------------ *)
(* Registry snapshots                                                   *)
(* ------------------------------------------------------------------ *)

let registry_snapshot () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter ~registry:r ~desc:"a counter" "snap.counter" in
  let t = Obs.Registry.timer ~registry:r "snap.timer" in
  Obs.Counter.incr ~n:3 c;
  Obs.Timer.add t 0.5;
  let json = Obs.Registry.to_json r in
  check (Alcotest.option Alcotest.int) "counter value" (Some 3)
    Obs.Json.(member "snap.counter" json |> Option.get |> member "value" |> Option.get |> to_int);
  check (Alcotest.option Alcotest.int) "timer count" (Some 1)
    Obs.Json.(member "snap.timer" json |> Option.get |> member "count" |> Option.get |> to_int);
  check Alcotest.bool "reparses" true (Result.is_ok (Obs.Json.of_string (Obs.Registry.json_string r)));
  (* registering the same name again replaces, not duplicates *)
  let c2 = Obs.Registry.counter ~registry:r "snap.counter" in
  Obs.Counter.incr c2;
  check Alcotest.int "replaced" 2 (List.length (Obs.Registry.items r));
  (match Obs.Registry.find_counter r "snap.counter" with
  | Some found -> check Alcotest.int "fresh cell" 1 (Obs.Counter.value found)
  | None -> Alcotest.fail "lookup failed");
  Obs.Registry.reset r;
  check Alcotest.int "reset finds zero" 0
    (Option.get (Obs.Registry.find_counter r "snap.counter") |> Obs.Counter.value)

(* ------------------------------------------------------------------ *)
(* Acceptance: tracing the fabric manage path                           *)
(* ------------------------------------------------------------------ *)

(* Enabled tracing on a full fabric-manager run must emit valid
   JSON-lines spans covering the repair/verify/swap pipeline, with the
   routing and layer spans nested under manager spans. *)
let fabric_manage_path_traced () =
  let g = fst (Topo_torus.torus ~dims:[| 3; 3 |] ~terminals_per_switch:2) in
  let rng = Rng.create 7 in
  let schedule = Fabric.Schedule.generate g ~rng ~events:5 ~switch_removals:1 ~drains:1 () in
  let buf = Buffer.create 8192 in
  let mgr_metrics =
    Obs.Control.with_enabled true (fun () ->
        Obs.Trace.with_sink (Obs.Trace.buffer_sink buf) (fun () ->
            match Fabric.Manager.create g with
            | Error msg -> Alcotest.failf "manager refused: %s" msg
            | Ok mgr ->
              let _ = Fabric.Manager.run mgr schedule in
              check Alcotest.bool "converged" true (Fabric.Manager.converged mgr);
              Fabric.Manager.metrics mgr))
  in
  let spans = parse_lines buf in
  check Alcotest.bool "spans emitted" true (List.length spans > 5);
  let names =
    List.filter_map (fun j -> Obs.Json.(member "name" j |> Option.get |> to_str)) spans
  in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " span present") true (List.mem expected names))
    [ "fabric.apply"; "fabric.full_route"; "fabric.try_swap"; "sssp.route_destinations"; "layers.assign" ];
  (* every span carries the flat record shape the sink promises *)
  List.iter
    (fun j ->
      List.iter
        (fun field -> check Alcotest.bool ("field " ^ field) true (Obs.Json.member field j <> None))
        [ "id"; "parent"; "name"; "ts"; "dur_ms"; "attrs" ])
    spans;
  (* parent links resolve within the emitted set *)
  let ids = List.filter_map (fun j -> Obs.Json.(member "id" j |> Option.get |> to_int)) spans in
  List.iter
    (fun j ->
      match Obs.Json.member "parent" j with
      | Some Obs.Json.Null | None -> ()
      | Some p -> (
        match Obs.Json.to_int p with
        | Some pid -> check Alcotest.bool "parent resolves" true (List.mem pid ids)
        | None -> Alcotest.fail "non-integer parent"))
    spans;
  (* the migrated manager metrics saw the same run the spans did *)
  check Alcotest.bool "events counted" true (Fabric.Metrics.events_seen mgr_metrics = 5);
  check Alcotest.bool "verify timed" true (Fabric.Metrics.verify_s mgr_metrics > 0.0);
  (* and the combined registry snapshot is valid JSON *)
  check Alcotest.bool "manager registry parses" true
    (Result.is_ok (Obs.Json.of_string (Obs.Json.to_string (Fabric.Metrics.to_json mgr_metrics))))

let () =
  Alcotest.run "obs"
    [
      ( "stat",
        [
          Alcotest.test_case "summarize/percentile" `Quick stat_basic;
          Alcotest.test_case "NaN ordering regression" `Quick stat_nan_deterministic;
          Alcotest.test_case "errors" `Quick stat_errors;
        ] );
      ( "counter",
        [
          Alcotest.test_case "slots and clamping" `Quick counter_basic;
          Alcotest.test_case "parallel increments" `Quick counter_parallel;
        ] );
      ( "timer",
        [
          Alcotest.test_case "accumulate and summarize" `Quick timer_basic;
          Alcotest.test_case "records on raise" `Quick timer_records_on_raise;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "special floats" `Quick json_special_floats;
          Alcotest.test_case "errors" `Quick json_errors;
          Alcotest.test_case "unicode escapes" `Quick json_unicode;
          Alcotest.test_case "depth bomb rejected" `Quick json_depth_bomb;
          json_roundtrip_prop;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and attrs" `Quick trace_nesting;
          Alcotest.test_case "disabled is silent" `Quick trace_disabled_is_silent;
          Alcotest.test_case "error attribute" `Quick trace_error_attr;
        ] );
      ("registry", [ Alcotest.test_case "snapshot" `Quick registry_snapshot ]);
      ("fabric", [ Alcotest.test_case "manage path traced" `Quick fabric_manage_path_traced ]);
    ]
