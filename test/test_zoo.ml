(* The topology-zoo conformance battery as a test suite: every corpus
   file under examples/zoo and every seeded generator sample must route,
   certify and respect the existence lower bounds across the full
   registry — plus the churn-soak harness invariants (quick mode,
   failure artifacts, determinism). *)

let check = Alcotest.check

let corpus_dir () =
  match Harness.Zoo.find_corpus_dir () with
  | Some dir -> dir
  | None -> Alcotest.fail "examples/zoo corpus not found (test deps missing?)"

let test_corpus_present () =
  let specs = Harness.Zoo.corpus_specs ~dir:(corpus_dir ()) in
  if List.length specs < 4 then
    Alcotest.failf "corpus too small: %s" (String.concat ", " specs);
  check Alcotest.bool "dot files recognized" true
    (List.exists (fun s -> Testutil.contains s "dot:") specs);
  check Alcotest.bool "edge lists recognized" true
    (List.exists (fun s -> Testutil.contains s "edgelist:") specs)

let test_zoo_conformance () =
  let specs =
    Harness.Zoo.corpus_specs ~dir:(corpus_dir ()) @ Harness.Zoo.generator_specs
  in
  let subjects = Harness.Zoo.run ~specs () in
  (match Harness.Zoo.failures subjects with
  | [] -> ()
  | fs -> Alcotest.failf "conformance failures:\n%s" (String.concat "\n" fs));
  check Alcotest.int "every subject checked" (List.length specs) (List.length subjects);
  List.iter
    (fun (s : Harness.Zoo.subject) ->
      (* dfsssp is universal: it must have produced a certified table *)
      match
        List.find_opt (fun (o : Harness.Zoo.outcome) -> o.Harness.Zoo.algorithm = "dfsssp") s.Harness.Zoo.outcomes
      with
      | Some { Harness.Zoo.status = Harness.Zoo.Certified layers; _ } ->
        if layers < s.Harness.Zoo.min_layers_lb then
          Alcotest.failf "%s: dfsssp below lower bound" s.Harness.Zoo.spec
      | _ -> Alcotest.failf "%s: no certified dfsssp outcome" s.Harness.Zoo.spec)
    subjects

let test_zoo_quirky_repairs () =
  let spec = "dot:" ^ Filename.concat (corpus_dir ()) "quirky.dot" in
  match Harness.Zoo.check_spec spec with
  | Error e -> Alcotest.fail e
  | Ok s ->
    check Alcotest.(list string) "quirky certifies despite repairs" [] s.Harness.Zoo.failures;
    check Alcotest.bool "repairs surface in the description" true
      (Testutil.contains s.Harness.Zoo.description "repair")

let test_zoo_bad_spec () =
  let subjects = Harness.Zoo.run ~specs:[ "nonsense:1" ] () in
  match Harness.Zoo.failures subjects with
  | [ msg ] -> check Alcotest.bool "carries the parse error" true (Testutil.contains msg "nonsense")
  | other -> Alcotest.failf "expected one failure, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Churn soak                                                           *)
(* ------------------------------------------------------------------ *)

let tmp_artifact_dir () =
  let dir = Filename.temp_file "soak" "" in
  Sys.remove dir;
  dir

let test_soak_quick () =
  let r =
    Harness.Soak.run_one ~artifact_dir:(tmp_artifact_dir ()) ~spec:"torus:3x3" ~seed:5
      ~events:40 ()
  in
  check Alcotest.(list string) "no invariant violations" [] r.Harness.Soak.failures;
  check Alcotest.(option string) "no artifact on success" None r.Harness.Soak.artifact;
  if r.Harness.Soak.swaps = 0 then Alcotest.fail "soak made no epoch swaps";
  if r.Harness.Soak.applied = 0 then Alcotest.fail "soak applied no events"

let test_soak_deterministic () =
  let run () =
    Harness.Soak.run_one ~artifact_dir:(tmp_artifact_dir ()) ~spec:"torus:3x3" ~seed:9
      ~events:30 ()
  in
  let a = run () and b = run () in
  check Alcotest.int "same schedule" a.Harness.Soak.scheduled b.Harness.Soak.scheduled;
  check Alcotest.int "same swaps" a.Harness.Soak.swaps b.Harness.Soak.swaps;
  check Alcotest.int "same repair mix" a.Harness.Soak.incremental b.Harness.Soak.incremental

let test_soak_failure_artifact () =
  let dir = tmp_artifact_dir () in
  (* a fabric with no terminals: the manager refuses, and the refusal
     must still leave a reproduction artifact with the seed inside *)
  let r = Harness.Soak.run_one ~artifact_dir:dir ~spec:"ring:5:0" ~seed:42 ~events:10 () in
  (match r.Harness.Soak.failures with
  | [] -> Alcotest.fail "expected a failure"
  | _ -> ());
  match r.Harness.Soak.artifact with
  | None -> Alcotest.fail "failure left no artifact"
  | Some path ->
    check Alcotest.bool "artifact under the requested dir" true (Testutil.contains path dir);
    let content = In_channel.with_open_text path In_channel.input_all in
    (match Obs.Json.of_string content with
    | Error e -> Alcotest.failf "artifact is not JSON: %s" e
    | Ok json ->
      check
        Alcotest.(option int)
        "seed recorded" (Some 42)
        (Option.bind (Obs.Json.member "seed" json) Obs.Json.to_int);
      check
        Alcotest.(option string)
        "spec recorded" (Some "ring:5:0")
        (Option.bind (Obs.Json.member "spec" json) Obs.Json.to_str));
    Sys.remove path;
    Unix.rmdir dir

let () =
  Alcotest.run "zoo"
    [
      ( "conformance",
        [
          Alcotest.test_case "corpus present" `Quick test_corpus_present;
          Alcotest.test_case "full battery" `Slow test_zoo_conformance;
          Alcotest.test_case "quirky repairs" `Quick test_zoo_quirky_repairs;
          Alcotest.test_case "bad spec" `Quick test_zoo_bad_spec;
        ] );
      ( "soak",
        [
          Alcotest.test_case "quick churn" `Quick test_soak_quick;
          Alcotest.test_case "deterministic" `Quick test_soak_deterministic;
          Alcotest.test_case "failure artifact" `Quick test_soak_failure_artifact;
        ] );
    ]
