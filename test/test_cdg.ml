(* Tests for the deadlock library: channel dependency graphs, cycle
   search, layer assignment (offline Algorithm 2 and the online variant),
   heuristics, and the APP problem with its NP-completeness reduction. *)

open Deadlock

let check = Alcotest.check

let qtest ?(count = 60) name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A ring fabric and the clockwise 2-hop paths of the paper's Fig. 2: the
   canonical cyclic-CDG instance. *)
let ring_fixture switches =
  let g = Topo_ring.make ~switches ~terminals_per_switch:1 in
  let chan a b =
    let found = ref (-1) in
    Array.iter (fun c -> if (Graph.channel g c).Channel.dst = b then found := c) (Graph.out_channels g a);
    if !found < 0 then Alcotest.failf "no channel %d -> %d" a b;
    !found
  in
  let terminals = Graph.terminals g in
  let switch_of t = (Graph.channel g (Graph.out_channels g t).(0)).Channel.dst in
  let paths =
    Array.init switches (fun i ->
        let src_t = terminals.(i) in
        let s0 = switch_of src_t in
        let s1 = switch_of terminals.((i + 1) mod switches) in
        let s2 = switch_of terminals.((i + 2) mod switches) in
        let dst_t = terminals.((i + 2) mod switches) in
        [| chan src_t s0; chan s0 s1; chan s1 s2; chan s2 dst_t |])
  in
  (g, paths)

(* ------------------------------------------------------------------ *)
(* Cdg                                                                  *)
(* ------------------------------------------------------------------ *)

let test_cdg_add_remove () =
  let g, paths = ring_fixture 5 in
  let cdg = Cdg.create g in
  Array.iteri (fun i p -> Cdg.add_path cdg ~pair:i p) paths;
  check Alcotest.int "paths" 5 (Cdg.num_paths cdg);
  (* each 4-channel path induces 3 dependencies, all distinct overall *)
  check Alcotest.int "edges" 15 (Cdg.num_edges cdg);
  let p = paths.(0) in
  Alcotest.(check bool) "edge live" true (Cdg.live cdg ~c1:p.(1) ~c2:p.(2));
  check Alcotest.int "edge count" 1 (Cdg.edge_count cdg ~c1:p.(1) ~c2:p.(2));
  check Alcotest.(list int) "edge pairs" [ 0 ] (Cdg.edge_pairs cdg ~c1:p.(1) ~c2:p.(2));
  Cdg.remove_path cdg ~pair:0 p;
  check Alcotest.int "paths after remove" 4 (Cdg.num_paths cdg);
  Alcotest.(check bool) "edge dead" false (Cdg.live cdg ~c1:p.(1) ~c2:p.(2));
  check Alcotest.int "dead edge count" 0 (Cdg.edge_count cdg ~c1:p.(1) ~c2:p.(2));
  check Alcotest.(list int) "dead edge pairs" [] (Cdg.edge_pairs cdg ~c1:p.(1) ~c2:p.(2));
  Alcotest.check_raises "double remove" (Invalid_argument "Cdg.remove_path: edge not present")
    (fun () -> Cdg.remove_path cdg ~pair:0 p)

let test_cdg_shared_edges () =
  let g, _ = ring_fixture 5 in
  let cdg = Cdg.create g in
  (* two paths sharing one dependency *)
  let p = [| 0; 2; 4 |] in
  (* fabricate channel chains? use real consistent ones instead *)
  ignore p;
  let _, paths = ring_fixture 5 in
  Cdg.add_path cdg ~pair:0 paths.(0);
  (* same shape path, different pair id *)
  Cdg.add_path cdg ~pair:1 paths.(0);
  check Alcotest.int "count 2" 2 (Cdg.edge_count cdg ~c1:paths.(0).(0) ~c2:paths.(0).(1));
  let prs = List.sort compare (Cdg.edge_pairs cdg ~c1:paths.(0).(0) ~c2:paths.(0).(1)) in
  check Alcotest.(list int) "both pairs" [ 0; 1 ] prs;
  Cdg.remove_path cdg ~pair:0 paths.(0);
  Alcotest.(check bool) "still live" true (Cdg.live cdg ~c1:paths.(0).(0) ~c2:paths.(0).(1));
  check Alcotest.int "count 1" 1 (Cdg.edge_count cdg ~c1:paths.(0).(0) ~c2:paths.(0).(1))

(* Regression for the stale-pair leak: edge_pairs must reflect exact live
   membership across add -> remove -> add churn on a shared edge. *)
let test_cdg_add_remove_add_membership () =
  let g, paths = ring_fixture 5 in
  let cdg = Cdg.create g in
  let p = paths.(0) in
  Cdg.add_path cdg ~pair:7 p;
  Cdg.add_path cdg ~pair:8 p;
  Cdg.remove_path cdg ~pair:7 p;
  check Alcotest.(list int) "after remove" [ 8 ] (Cdg.edge_pairs cdg ~c1:p.(0) ~c2:p.(1));
  Cdg.add_path cdg ~pair:7 p;
  check Alcotest.(list int) "after re-add" [ 7; 8 ]
    (List.sort compare (Cdg.edge_pairs cdg ~c1:p.(0) ~c2:p.(1)));
  Cdg.remove_path cdg ~pair:8 p;
  check Alcotest.(list int) "exact membership" [ 7 ] (Cdg.edge_pairs cdg ~c1:p.(0) ~c2:p.(1));
  check Alcotest.int "count tracks membership" 1 (Cdg.edge_count cdg ~c1:p.(0) ~c2:p.(1));
  Alcotest.check_raises "wrong pair" (Invalid_argument "Cdg.remove_path: pair not on edge")
    (fun () -> Cdg.remove_path cdg ~pair:42 p)

let test_route_store_basics () =
  let g, paths = ring_fixture 5 in
  let store = Route_store.create g ~capacity:8 in
  check Alcotest.int "capacity" 8 (Route_store.capacity store);
  Alcotest.(check bool) "absent" false (Route_store.mem store ~pair:3);
  Route_store.set_path store ~pair:3 paths.(0);
  Alcotest.(check bool) "present" true (Route_store.mem store ~pair:3);
  check Alcotest.int "length" (Array.length paths.(0)) (Route_store.length store ~pair:3);
  check Alcotest.(array int) "round trip" paths.(0) (Route_store.to_path store ~pair:3);
  (* streaming producer protocol *)
  Route_store.begin_path store ~pair:4;
  Array.iter (Route_store.push store) paths.(1);
  Route_store.commit_path store;
  check Alcotest.(array int) "streamed" paths.(1) (Route_store.to_path store ~pair:4);
  Route_store.begin_path store ~pair:5;
  Route_store.push store paths.(2).(0);
  Route_store.abort_path store;
  Alcotest.(check bool) "aborted absent" false (Route_store.mem store ~pair:5);
  (* overwrite, then remove *)
  Route_store.set_path store ~pair:3 paths.(2);
  check Alcotest.(array int) "overwritten" paths.(2) (Route_store.to_path store ~pair:3);
  check Alcotest.int "num_paths" 2 (Route_store.num_paths store);
  Route_store.remove store ~pair:3;
  Alcotest.(check bool) "removed" false (Route_store.mem store ~pair:3);
  check Alcotest.int "num_paths after remove" 1 (Route_store.num_paths store);
  Alcotest.check_raises "length of absent pair" (Invalid_argument "Route_store: pair 3 has no path")
    (fun () -> ignore (Route_store.length store ~pair:3));
  (* arena growth must not corrupt earlier slices *)
  let store2 = Route_store.create g ~capacity:4096 in
  for i = 0 to 4095 do
    Route_store.set_path store2 ~pair:i paths.(i mod 5)
  done;
  let ok = ref true in
  for i = 0 to 4095 do
    if Route_store.to_path store2 ~pair:i <> paths.(i mod 5) then ok := false
  done;
  Alcotest.(check bool) "slices survive growth" true !ok;
  let deps = ref 0 in
  Route_store.iter_deps store2 ~pair:0 (fun _ _ -> incr deps);
  check Alcotest.int "dep count" (Array.length paths.(0) - 1) !deps

let test_cdg_of_store_and_compact () =
  let g, paths = ring_fixture 5 in
  let store = Route_store.of_paths g paths in
  let csr = Cdg.of_store store in
  check Alcotest.int "edges" 15 (Cdg.num_edges csr);
  check Alcotest.int "paths" 5 (Cdg.num_paths csr);
  (* churn: remove two paths, re-add one, then compact back to pure CSR *)
  Cdg.remove_path csr ~pair:1 paths.(1);
  Cdg.remove_path csr ~pair:2 paths.(2);
  Cdg.add_path csr ~pair:2 paths.(2);
  Cdg.compact csr;
  check Alcotest.int "overlay drained" 0 (Cdg.overlay_edges csr);
  let reference = Cdg.create g in
  Array.iteri (fun i p -> if i <> 1 then Cdg.add_path reference ~pair:i p) paths;
  check Alcotest.int "edges agree" (Cdg.num_edges reference) (Cdg.num_edges csr);
  Cdg.iter_edges reference (fun c1 c2 count ->
      check Alcotest.int "count agrees" count (Cdg.edge_count csr ~c1 ~c2);
      check Alcotest.(list int) "pairs agree"
        (List.sort compare (Cdg.edge_pairs reference ~c1 ~c2))
        (List.sort compare (Cdg.edge_pairs csr ~c1 ~c2)));
  (* a filtered build sees only the selected pairs *)
  let only0 = Cdg.of_store ~filter:(fun pr -> pr = 0) store in
  check Alcotest.int "filtered paths" 1 (Cdg.num_paths only0);
  check Alcotest.int "filtered edges" 3 (Cdg.num_edges only0)

let test_cdg_successors () =
  let g, paths = ring_fixture 5 in
  let cdg = Cdg.create g in
  Array.iteri (fun i p -> Cdg.add_path cdg ~pair:i p) paths;
  let p = paths.(2) in
  let succ = Cdg.successors cdg p.(0) in
  check Alcotest.(array int) "single successor" [| p.(1) |] succ;
  (* iter_edges visits every live edge exactly once *)
  let seen = ref 0 in
  Cdg.iter_edges cdg (fun _ _ count ->
      incr seen;
      check Alcotest.int "unit counts" 1 count);
  check Alcotest.int "edge visits" 15 !seen

(* ------------------------------------------------------------------ *)
(* Acyclic / Cycle                                                      *)
(* ------------------------------------------------------------------ *)

let test_acyclic_detects () =
  let g, paths = ring_fixture 5 in
  let cdg = Cdg.create g in
  Alcotest.(check bool) "empty acyclic" true (Acyclic.is_acyclic cdg);
  Cdg.add_path cdg ~pair:0 paths.(0);
  Alcotest.(check bool) "one path acyclic" true (Acyclic.is_acyclic cdg);
  Array.iteri (fun i p -> if i > 0 then Cdg.add_path cdg ~pair:i p) paths;
  Alcotest.(check bool) "ring pattern cyclic" false (Acyclic.is_acyclic cdg)

let test_cycle_finds_and_resumes () =
  let g, paths = ring_fixture 5 in
  let cdg = Cdg.create g in
  Array.iteri (fun i p -> Cdg.add_path cdg ~pair:i p) paths;
  let search = Cycle.create cdg in
  (match Cycle.find_cycle search with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
    Alcotest.(check bool) "non-trivial" true (Array.length cycle >= 2);
    (* every reported edge is live and they chain up *)
    Array.iter
      (fun (a, b) -> Alcotest.(check bool) "cycle edge live" true (Cdg.live cdg ~c1:a ~c2:b))
      cycle;
    Array.iteri
      (fun i (_, b) ->
        let a', _ = cycle.((i + 1) mod Array.length cycle) in
        check Alcotest.int "chains" a' b)
      cycle;
    (* break it: remove the paths of the first cycle edge *)
    let a, b = cycle.(0) in
    let movers = Cdg.edge_pairs cdg ~c1:a ~c2:b in
    List.iter (fun pr -> Cdg.remove_path cdg ~pair:pr paths.(pr)) movers;
    Cycle.notify_removed search);
  (* the ring has exactly one switch-level cycle; breaking one edge of the
     5-cycle leaves the rest acyclic *)
  (match Cycle.find_cycle search with
  | None -> ()
  | Some _ -> Alcotest.fail "cycle should be gone");
  Alcotest.(check bool) "kahn agrees" true (Acyclic.is_acyclic cdg)

let test_cycle_none_on_acyclic () =
  let g, paths = ring_fixture 6 in
  let cdg = Cdg.create g in
  (* two non-overlapping paths cannot build the full ring cycle *)
  Cdg.add_path cdg ~pair:0 paths.(0);
  Cdg.add_path cdg ~pair:1 paths.(3);
  let search = Cycle.create cdg in
  (match Cycle.find_cycle search with
  | None -> ()
  | Some _ -> Alcotest.fail "no cycle expected");
  Alcotest.(check bool) "kahn agrees" true (Acyclic.is_acyclic cdg)

let test_cycle_repeated_call_stable () =
  let g, paths = ring_fixture 5 in
  let cdg = Cdg.create g in
  Array.iteri (fun i p -> Cdg.add_path cdg ~pair:i p) paths;
  let search = Cycle.create cdg in
  match (Cycle.find_cycle search, Cycle.find_cycle search) with
  | Some c1, Some c2 -> check Alcotest.(array (pair int int)) "same cycle" c1 c2
  | _ -> Alcotest.fail "expected cycles"

(* ------------------------------------------------------------------ *)
(* Heuristic                                                            *)
(* ------------------------------------------------------------------ *)

let test_heuristic_strings () =
  List.iter
    (fun h ->
      match Heuristic.of_string (Heuristic.to_string h) with
      | Ok h' -> Alcotest.(check bool) "round trip" true (h = h')
      | Error e -> Alcotest.fail e)
    Heuristic.all;
  Alcotest.(check bool) "unknown rejected" true (Result.is_error (Heuristic.of_string "bogus"));
  (match Heuristic.of_string "first" with
  | Ok Heuristic.First_edge -> ()
  | _ -> Alcotest.fail "alias 'first'")

let test_heuristic_choice () =
  let g, paths = ring_fixture 5 in
  let cdg = Cdg.create g in
  Array.iteri (fun i p -> Cdg.add_path cdg ~pair:i p) paths;
  (* double one edge's weight by adding an extra co-routed path *)
  Cdg.add_path cdg ~pair:10 paths.(0);
  let heavy = (paths.(0).(1), paths.(0).(2)) in
  let light = (paths.(1).(1), paths.(1).(2)) in
  let cycle = [| heavy; light |] in
  Alcotest.(check bool) "weakest avoids heavy" true (Heuristic.choose Heuristic.Weakest cdg cycle = light);
  Alcotest.(check bool) "heaviest picks heavy" true (Heuristic.choose Heuristic.Heaviest cdg cycle = heavy);
  Alcotest.(check bool) "first edge" true (Heuristic.choose Heuristic.First_edge cdg cycle = heavy);
  Alcotest.check_raises "empty cycle" (Invalid_argument "Heuristic.choose: empty cycle") (fun () ->
      ignore (Heuristic.choose Heuristic.Weakest cdg [||]))

(* ------------------------------------------------------------------ *)
(* Layers (offline)                                                     *)
(* ------------------------------------------------------------------ *)

let test_layers_ring () =
  let g, paths = ring_fixture 5 in
  match Layers.assign g ~paths ~max_layers:8 ~heuristic:Heuristic.Weakest with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    check Alcotest.int "two layers suffice" 2 outcome.Layers.layers_used;
    Alcotest.(check bool) "broke at least one cycle" true (outcome.Layers.cycles_broken >= 1);
    Alcotest.(check bool) "all layers acyclic" true
      (Acyclic.layers_acyclic g ~paths ~layer_of_path:outcome.Layers.layer_of_path
         ~num_layers:outcome.Layers.layers_used)

let test_layers_budget_exhausted () =
  let g, paths = ring_fixture 5 in
  match Layers.assign g ~paths ~max_layers:1 ~heuristic:Heuristic.Weakest with
  | Error msg -> Alcotest.(check bool) "explains" true (Testutil.contains msg "no layer is left")
  | Ok _ -> Alcotest.fail "1 layer cannot be deadlock-free on the ring pattern"

let test_layers_acyclic_input_stays_one_layer () =
  let g, paths = ring_fixture 7 in
  let some = [| paths.(0); paths.(2); paths.(4) |] in
  match Layers.assign g ~paths:some ~max_layers:8 ~heuristic:Heuristic.Weakest with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    check Alcotest.int "one layer" 1 outcome.Layers.layers_used;
    check Alcotest.int "no cycles broken" 0 outcome.Layers.cycles_broken

let test_layers_empty () =
  let g, _ = ring_fixture 5 in
  match Layers.assign g ~paths:[||] ~max_layers:4 ~heuristic:Heuristic.Weakest with
  | Error e -> Alcotest.fail e
  | Ok outcome -> check Alcotest.int "trivial" 1 outcome.Layers.layers_used

let test_layers_balance () =
  let g, paths = ring_fixture 5 in
  match Layers.assign g ~paths ~max_layers:8 ~heuristic:Heuristic.Weakest with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    let balanced, in_use = Layers.balance outcome ~max_layers:8 in
    check Alcotest.int "uses all layers" 8 in_use;
    (* balanced layers must still be acyclic *)
    Alcotest.(check bool) "balanced acyclic" true
      (Acyclic.layers_acyclic g ~paths ~layer_of_path:balanced ~num_layers:8);
    (* balance must not mix original layers inside one new layer *)
    let origin = Array.make 8 (-1) in
    Array.iteri
      (fun i new_layer ->
        let orig = outcome.Layers.layer_of_path.(i) in
        if origin.(new_layer) = -1 then origin.(new_layer) <- orig
        else check Alcotest.int "single-origin layer" origin.(new_layer) orig)
      balanced;
    (* no-op when the budget is already tight *)
    let same, in_use' = Layers.balance outcome ~max_layers:outcome.Layers.layers_used in
    check Alcotest.int "tight budget unchanged" outcome.Layers.layers_used in_use';
    check Alcotest.(array int) "assignment unchanged" outcome.Layers.layer_of_path same

let heuristics_all_sound_qcheck =
  qtest ~count:20 "offline assignment sound for every heuristic" QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:8 ~switch_radix:8 ~terminals:16 ~inter_links:12 ~rng in
      match Routing.Sssp.route g with
      | Error _ -> false
      | Ok ft ->
        let paths = ref [] in
        Routing.Ftable.iter_pairs ft (fun ~src:_ ~dst:_ p -> paths := p :: !paths);
        let paths = Array.of_list !paths in
        List.for_all
          (fun h ->
            match Layers.assign g ~paths ~max_layers:16 ~heuristic:h with
            | Error _ -> false
            | Ok outcome ->
              Acyclic.layers_acyclic g ~paths ~layer_of_path:outcome.Layers.layer_of_path
                ~num_layers:outcome.Layers.layers_used)
          Heuristic.all)

(* ------------------------------------------------------------------ *)
(* Scc and the break-engine knob                                        *)
(* ------------------------------------------------------------------ *)

let test_engine_strings () =
  List.iter
    (fun e ->
      match Layers.engine_of_string (Layers.engine_to_string e) with
      | Ok e' -> Alcotest.(check bool) "round trip" true (e = e')
      | Error msg -> Alcotest.fail msg)
    [ `Scc; `Dfs ];
  Alcotest.(check bool) "unknown rejected" true (Result.is_error (Layers.engine_of_string "bogus"))

let test_scc_condensation () =
  let g, paths = ring_fixture 5 in
  let cdg = Cdg.create g in
  Array.iteri (fun i p -> Cdg.add_path cdg ~pair:i p) paths;
  let scc = Scc.of_cdg cdg in
  (* the 5 switch->switch channels form one cycle; every other channel is
     its own singleton component *)
  check Alcotest.int "one non-trivial component" 1 (Array.length scc.Scc.nontrivial);
  check Alcotest.int "of the ring's 5 channels" 5 (Array.length scc.Scc.nontrivial.(0));
  let comp = scc.Scc.comp_of.(scc.Scc.nontrivial.(0).(0)) in
  Array.iter
    (fun c -> check Alcotest.int "members agree on comp id" comp scc.Scc.comp_of.(c))
    scc.Scc.nontrivial.(0);
  check Alcotest.int "singletons + ring" (Graph.num_channels g - 4) scc.Scc.num_comps;
  (* breaking one ring edge dissolves the component *)
  Cdg.remove_path cdg ~pair:0 paths.(0);
  let scc' = Scc.of_cdg cdg in
  check Alcotest.int "acyclic after removal" 0 (Array.length scc'.Scc.nontrivial)

let test_scc_self_loop_nontrivial () =
  let g, _ = ring_fixture 5 in
  let cdg = Cdg.create g in
  (* a path that reuses a channel makes a self-dependency *)
  let c = (Graph.out_channels g (Graph.switches g).(0)).(0) in
  Cdg.add_path cdg ~pair:0 [| c; c |];
  let scc = Scc.of_cdg cdg in
  check Alcotest.int "self-loop is non-trivial" 1 (Array.length scc.Scc.nontrivial);
  check Alcotest.(array int) "the looping channel" [| c |] scc.Scc.nontrivial.(0)

let engines = [ (`Scc, "scc"); (`Dfs, "dfs") ]

let test_layers_ring_both_engines () =
  let g, paths = ring_fixture 5 in
  List.iter
    (fun (engine, name) ->
      match Layers.assign ~engine g ~paths ~max_layers:8 ~heuristic:Heuristic.Weakest with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok outcome ->
        check Alcotest.int (name ^ ": two layers suffice") 2 outcome.Layers.layers_used;
        Alcotest.(check bool) (name ^ ": broke something") true (outcome.Layers.cycles_broken >= 1);
        Alcotest.(check bool)
          (name ^ ": acyclic layers")
          true
          (Acyclic.layers_acyclic g ~paths ~layer_of_path:outcome.Layers.layer_of_path
             ~num_layers:outcome.Layers.layers_used))
    engines

let test_layers_budget_both_engines () =
  let g, paths = ring_fixture 5 in
  List.iter
    (fun (engine, name) ->
      match Layers.assign ~engine g ~paths ~max_layers:1 ~heuristic:Heuristic.Weakest with
      | Error msg ->
        Alcotest.(check bool) (name ^ ": explains") true (Testutil.contains msg "no layer is left")
      | Ok _ -> Alcotest.failf "%s: 1 layer cannot be deadlock-free on the ring pattern" name)
    engines

let test_scc_acyclic_input () =
  let g, paths = ring_fixture 7 in
  let some = [| paths.(0); paths.(2); paths.(4) |] in
  match Layers.assign ~engine:`Scc g ~paths:some ~max_layers:8 ~heuristic:Heuristic.Weakest with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    check Alcotest.int "one layer" 1 outcome.Layers.layers_used;
    check Alcotest.int "no evictions" 0 outcome.Layers.cycles_broken

let test_scc_domains_deterministic () =
  let rng = Rng.create 11 in
  let g = Topo_random.make ~switches:8 ~switch_radix:8 ~terminals:16 ~inter_links:12 ~rng in
  match Routing.Sssp.route g with
  | Error e -> Alcotest.fail e
  | Ok ft -> (
    let paths = ref [] in
    Routing.Ftable.iter_pairs ft (fun ~src:_ ~dst:_ p -> paths := p :: !paths);
    let paths = Array.of_list !paths in
    let run domains =
      match Layers.assign ~engine:`Scc ~domains g ~paths ~max_layers:16 ~heuristic:Heuristic.Weakest with
      | Error e -> Alcotest.fail e
      | Ok o -> o
    in
    let seq = run 1 and par = run 3 in
    check Alcotest.(array int) "identical assignment" seq.Layers.layer_of_path par.Layers.layer_of_path;
    check Alcotest.int "identical layer count" seq.Layers.layers_used par.Layers.layers_used;
    check Alcotest.int "identical evictions" seq.Layers.cycles_broken par.Layers.cycles_broken)

let engines_agree_qcheck =
  qtest ~count:20 "scc engine sound and within one layer of the dfs oracle"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:8 ~switch_radix:8 ~terminals:16 ~inter_links:12 ~rng in
      match Routing.Sssp.route g with
      | Error _ -> false
      | Ok ft ->
        let paths = ref [] in
        Routing.Ftable.iter_pairs ft (fun ~src:_ ~dst:_ p -> paths := p :: !paths);
        let paths = Array.of_list !paths in
        let run engine =
          match Layers.assign ~engine g ~paths ~max_layers:16 ~heuristic:Heuristic.Weakest with
          | Error _ -> None
          | Ok o ->
            if
              Acyclic.layers_acyclic g ~paths ~layer_of_path:o.Layers.layer_of_path
                ~num_layers:o.Layers.layers_used
            then Some o.Layers.layers_used
            else None
        in
        (match (run `Scc, run `Dfs) with
        | Some scc, Some dfs -> scc <= dfs + 1
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* Online                                                               *)
(* ------------------------------------------------------------------ *)

let test_online_ring () =
  let g, paths = ring_fixture 5 in
  match Online.assign g ~paths ~max_layers:8 with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
    check Alcotest.int "two layers" 2 outcome.Online.layers_used;
    Alcotest.(check bool) "ran checks" true (outcome.Online.cycle_checks > 0);
    Alcotest.(check bool) "acyclic layers" true
      (Acyclic.layers_acyclic g ~paths ~layer_of_path:outcome.Online.layer_of_path
         ~num_layers:outcome.Online.layers_used)

let test_online_budget () =
  let g, paths = ring_fixture 5 in
  match Online.assign g ~paths ~max_layers:1 with
  | Error msg -> Alcotest.(check bool) "explains" true (Testutil.contains msg "fits no layer")
  | Ok _ -> Alcotest.fail "should not fit one layer"

let online_matches_offline_soundness_qcheck =
  qtest ~count:20 "online assignment sound on random fabrics" QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:8 ~switch_radix:8 ~terminals:16 ~inter_links:12 ~rng in
      match Routing.Sssp.route g with
      | Error _ -> false
      | Ok ft ->
        let paths = ref [] in
        Routing.Ftable.iter_pairs ft (fun ~src:_ ~dst:_ p -> paths := p :: !paths);
        let paths = Array.of_list !paths in
        (match Online.assign g ~paths ~max_layers:16 with
        | Error _ -> false
        | Ok outcome ->
          Acyclic.layers_acyclic g ~paths ~layer_of_path:outcome.Online.layer_of_path
            ~num_layers:outcome.Online.layers_used))

(* ------------------------------------------------------------------ *)
(* Pk_order                                                             *)
(* ------------------------------------------------------------------ *)

let test_pk_accepts_and_rejects () =
  let g, paths = ring_fixture 5 in
  let cdg = Cdg.create g in
  let pk = Pk_order.create cdg in
  (* register the first path's chain: fine *)
  let p = paths.(0) in
  Cdg.add_path cdg ~pair:0 p;
  Alcotest.(check bool) "chain 0-1" true (Pk_order.insert pk ~c1:p.(0) ~c2:p.(1));
  Alcotest.(check bool) "chain 1-2" true (Pk_order.insert pk ~c1:p.(1) ~c2:p.(2));
  Alcotest.(check bool) "chain 2-3" true (Pk_order.insert pk ~c1:p.(2) ~c2:p.(3));
  Alcotest.(check bool) "order consistent" true (Pk_order.consistent pk);
  (* a back edge closing the chain is rejected *)
  let fake = [| p.(2); p.(0) |] in
  Cdg.add_path cdg ~pair:99 fake;
  Alcotest.(check bool) "cycle rejected" false (Pk_order.insert pk ~c1:p.(2) ~c2:p.(0));
  Cdg.remove_path cdg ~pair:99 fake;
  Alcotest.(check bool) "order still consistent" true (Pk_order.consistent pk);
  Alcotest.(check bool) "self edge rejected" false (Pk_order.insert pk ~c1:p.(0) ~c2:p.(0))

let pk_matches_dfs_qcheck =
  qtest ~count:30 "online: PK and DFS engines agree exactly" QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:8 ~switch_radix:8 ~terminals:16 ~inter_links:12 ~rng in
      match Routing.Sssp.route g with
      | Error _ -> false
      | Ok ft ->
        let paths = ref [] in
        Routing.Ftable.iter_pairs ft (fun ~src:_ ~dst:_ p -> paths := p :: !paths);
        let paths = Array.of_list (List.rev !paths) in
        (match (Online.assign ~engine:`Dfs g ~paths ~max_layers:16,
                Online.assign ~engine:`Pk g ~paths ~max_layers:16) with
        | Ok a, Ok b ->
          a.Online.layer_of_path = b.Online.layer_of_path
          && a.Online.layers_used = b.Online.layers_used
          && Acyclic.layers_acyclic g ~paths ~layer_of_path:b.Online.layer_of_path
               ~num_layers:b.Online.layers_used
        | Error _, Error _ -> true
        | _ -> false))

let pk_order_invariant_qcheck =
  qtest ~count:30 "pk_order: random insertions keep a valid order" QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:6 ~switch_radix:8 ~terminals:12 ~inter_links:10 ~rng in
      let cdg = Cdg.create g in
      let pk = Pk_order.create cdg in
      (* generate random single-edge "paths" between adjacent channels *)
      let ok = ref true in
      for _ = 1 to 60 do
        let c1 = Rng.int rng (Graph.num_channels g) in
        let succs =
          Graph.out_channels g (Graph.channel g c1).Channel.dst
        in
        if Array.length succs > 0 then begin
          let c2 = Rng.pick rng succs in
          if c1 <> c2 && not (Cdg.live cdg ~c1 ~c2) then begin
            let fake = [| c1; c2 |] in
            Cdg.add_path cdg ~pair:0 fake;
            if Pk_order.insert pk ~c1 ~c2 then begin
              (* accepted: the CDG must indeed be acyclic *)
              if not (Acyclic.is_acyclic cdg) then ok := false
            end
            else begin
              (* rejected: removing it must leave an acyclic CDG, and
                 keeping it would have been cyclic *)
              if Acyclic.is_acyclic cdg then ok := false;
              Cdg.remove_path cdg ~pair:0 fake
            end;
            if not (Pk_order.consistent pk) then ok := false
          end
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* APP                                                                  *)
(* ------------------------------------------------------------------ *)

let test_app_edge_cases () =
  let empty = { App.num_nodes = 0; paths = [||] } in
  check Alcotest.(option int) "empty generator" (Some 0) (App.min_cover_exact empty);
  let gen = App.fig3_example in
  check Alcotest.(option (array int)) "k > n impossible" None (App.find_cover gen ~k:4);
  check Alcotest.(option int) "max_k too small" None (App.min_cover_exact ~max_k:1 gen);
  (* complete graphs need n colors; cycles alternate 2/3 *)
  let complete n =
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        edges := (i, j) :: !edges
      done
    done;
    !edges
  in
  check Alcotest.(option int) "K4 needs 4" (Some 4)
    (App.min_cover_exact (App.of_coloring ~num_vertices:4 ~edges:(complete 4)));
  let cycle n = List.init n (fun i -> (i, (i + 1) mod n)) in
  check Alcotest.(option int) "C6 needs 2" (Some 2)
    (App.min_cover_exact (App.of_coloring ~num_vertices:6 ~edges:(cycle 6)));
  check Alcotest.(option int) "C5 needs 3" (Some 3)
    (App.min_cover_exact (App.of_coloring ~num_vertices:5 ~edges:(cycle 5)))

let test_app_fig3 () =
  let gen = App.fig3_example in
  (* p1 + p2 acyclic; all three cyclic *)
  Alcotest.(check bool) "p1+p2 acyclic" true (App.induces_acyclic gen [ 0; 1 ]);
  Alcotest.(check bool) "p3 alone acyclic" true (App.induces_acyclic gen [ 2 ]);
  Alcotest.(check bool) "all cyclic" false (App.induces_acyclic gen [ 0; 1; 2 ]);
  check Alcotest.(option int) "minimum cover" (Some 2) (App.min_cover_exact gen);
  (match App.find_cover gen ~k:2 with
  | None -> Alcotest.fail "2-cover must exist"
  | Some a -> Alcotest.(check bool) "witness checks" true (App.is_cover gen ~assignment:a ~k:2));
  check Alcotest.(option (array int)) "no 1-cover" None (App.find_cover gen ~k:1)

let test_app_is_cover_conditions () =
  let gen = App.fig3_example in
  (* wrong length *)
  Alcotest.(check bool) "wrong length" false (App.is_cover gen ~assignment:[| 0; 1 |] ~k:2);
  (* empty class 1 *)
  Alcotest.(check bool) "empty class" false (App.is_cover gen ~assignment:[| 0; 0; 0 |] ~k:2);
  (* out of range class *)
  Alcotest.(check bool) "class range" false (App.is_cover gen ~assignment:[| 0; 1; 2 |] ~k:2);
  (* cyclic class *)
  Alcotest.(check bool) "cyclic class" false (App.is_cover gen ~assignment:[| 0; 0; 0 |] ~k:1)

let test_app_reduction_triangle () =
  let edges = [ (0, 1); (1, 2); (0, 2) ] in
  let gen = App.of_coloring ~num_vertices:3 ~edges in
  check Alcotest.int "paths = vertices" 3 (Array.length gen.App.paths);
  check Alcotest.(option int) "chromatic 3" (Some 3)
    (App.chromatic_number_exact ~num_vertices:3 ~edges ~max_k:5);
  check Alcotest.(option int) "cover 3" (Some 3) (App.min_cover_exact gen)

let test_app_reduction_bipartite () =
  let edges = [ (0, 2); (0, 3); (1, 2); (1, 3) ] in
  let gen = App.of_coloring ~num_vertices:4 ~edges in
  check Alcotest.(option int) "chromatic 2" (Some 2)
    (App.chromatic_number_exact ~num_vertices:4 ~edges ~max_k:5);
  check Alcotest.(option int) "cover 2" (Some 2) (App.min_cover_exact gen)

let test_app_reduction_edgeless () =
  let gen = App.of_coloring ~num_vertices:4 ~edges:[] in
  check Alcotest.(option int) "cover 1" (Some 1) (App.min_cover_exact gen)

let test_app_of_coloring_errors () =
  Alcotest.check_raises "self loop" (Invalid_argument "App.of_coloring: self loop") (fun () ->
      ignore (App.of_coloring ~num_vertices:2 ~edges:[ (1, 1) ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "App.of_coloring: duplicate edge") (fun () ->
      ignore (App.of_coloring ~num_vertices:2 ~edges:[ (0, 1); (1, 0) ]));
  Alcotest.check_raises "range" (Invalid_argument "App.of_coloring: vertex out of range") (fun () ->
      ignore (App.of_coloring ~num_vertices:2 ~edges:[ (0, 5) ]))

(* The executable heart of Theorem 1: on random small graphs, the minimum
   cover of the reduced APP instance equals the chromatic number. *)
let test_app_cover_to_coloring () =
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 0) ] (* C4, chromatic 2 *) in
  let gen = App.of_coloring ~num_vertices:4 ~edges in
  match App.find_cover gen ~k:2 with
  | None -> Alcotest.fail "C4 has a 2-cover"
  | Some assignment ->
    let color = App.coloring_of_cover ~num_vertices:4 ~assignment in
    Alcotest.(check bool) "cover induces a proper coloring" true
      (App.is_proper_coloring ~edges color)

let cover_to_coloring_qcheck =
  qtest ~count:30 "Theorem 1 (<=): every cover of a reduction is a coloring"
    QCheck2.Gen.(pair (int_range 2 6) (list_size (int_range 0 8) (pair (int_range 0 5) (int_range 0 5))))
    (fun (n, raw_edges) ->
      let edges =
        List.sort_uniq compare
          (List.filter_map
             (fun (a, b) ->
               let a = a mod n and b = b mod n in
               if a = b then None else Some (min a b, max a b))
             raw_edges)
      in
      let gen = App.of_coloring ~num_vertices:n ~edges in
      match App.min_cover_exact gen with
      | None -> false
      | Some k -> (
        match App.find_cover gen ~k with
        | None -> false
        | Some assignment ->
          App.is_proper_coloring ~edges (App.coloring_of_cover ~num_vertices:n ~assignment)))

let app_reduction_qcheck =
  qtest ~count:40 "Theorem 1 reduction: min cover = chromatic number"
    QCheck2.Gen.(pair (int_range 1 6) (list_size (int_range 0 8) (pair (int_range 0 5) (int_range 0 5))))
    (fun (n, raw_edges) ->
      let edges =
        List.sort_uniq compare
          (List.filter_map
             (fun (a, b) ->
               let a = a mod n and b = b mod n in
               if a = b then None else Some (min a b, max a b))
             raw_edges)
      in
      let gen = App.of_coloring ~num_vertices:n ~edges in
      App.chromatic_number_exact ~num_vertices:n ~edges ~max_k:n = App.min_cover_exact gen)

let () =
  Alcotest.run "cdg"
    [
      ( "cdg",
        [
          Alcotest.test_case "add/remove" `Quick test_cdg_add_remove;
          Alcotest.test_case "add/remove/add membership" `Quick test_cdg_add_remove_add_membership;
          Alcotest.test_case "shared edges" `Quick test_cdg_shared_edges;
          Alcotest.test_case "successors" `Quick test_cdg_successors;
          Alcotest.test_case "of_store and compact" `Quick test_cdg_of_store_and_compact;
        ] );
      ("route_store", [ Alcotest.test_case "basics" `Quick test_route_store_basics ]);
      ( "cycle",
        [
          Alcotest.test_case "kahn detects" `Quick test_acyclic_detects;
          Alcotest.test_case "find and resume" `Quick test_cycle_finds_and_resumes;
          Alcotest.test_case "none on acyclic" `Quick test_cycle_none_on_acyclic;
          Alcotest.test_case "repeat call stable" `Quick test_cycle_repeated_call_stable;
        ] );
      ( "heuristic",
        [
          Alcotest.test_case "strings" `Quick test_heuristic_strings;
          Alcotest.test_case "choice" `Quick test_heuristic_choice;
        ] );
      ( "layers",
        [
          Alcotest.test_case "ring needs 2" `Quick test_layers_ring;
          Alcotest.test_case "budget exhausted" `Quick test_layers_budget_exhausted;
          Alcotest.test_case "acyclic input" `Quick test_layers_acyclic_input_stays_one_layer;
          Alcotest.test_case "empty input" `Quick test_layers_empty;
          Alcotest.test_case "balance" `Quick test_layers_balance;
          heuristics_all_sound_qcheck;
        ] );
      ( "scc",
        [
          Alcotest.test_case "engine strings" `Quick test_engine_strings;
          Alcotest.test_case "condensation" `Quick test_scc_condensation;
          Alcotest.test_case "self-loop" `Quick test_scc_self_loop_nontrivial;
          Alcotest.test_case "ring needs 2 (both engines)" `Quick test_layers_ring_both_engines;
          Alcotest.test_case "budget exhausted (both engines)" `Quick test_layers_budget_both_engines;
          Alcotest.test_case "acyclic input" `Quick test_scc_acyclic_input;
          Alcotest.test_case "domains deterministic" `Quick test_scc_domains_deterministic;
          engines_agree_qcheck;
        ] );
      ( "online",
        [
          Alcotest.test_case "ring needs 2" `Quick test_online_ring;
          Alcotest.test_case "budget exhausted" `Quick test_online_budget;
          online_matches_offline_soundness_qcheck;
        ] );
      ( "pk_order",
        [
          Alcotest.test_case "accepts and rejects" `Quick test_pk_accepts_and_rejects;
          pk_matches_dfs_qcheck;
          pk_order_invariant_qcheck;
        ] );
      ( "app",
        [
          Alcotest.test_case "edge cases" `Quick test_app_edge_cases;
          Alcotest.test_case "fig3 example" `Quick test_app_fig3;
          Alcotest.test_case "cover conditions" `Quick test_app_is_cover_conditions;
          Alcotest.test_case "triangle reduction" `Quick test_app_reduction_triangle;
          Alcotest.test_case "bipartite reduction" `Quick test_app_reduction_bipartite;
          Alcotest.test_case "edgeless reduction" `Quick test_app_reduction_edgeless;
          Alcotest.test_case "of_coloring errors" `Quick test_app_of_coloring_errors;
          app_reduction_qcheck;
          Alcotest.test_case "cover to coloring" `Quick test_app_cover_to_coloring;
          cover_to_coloring_qcheck;
        ] );
    ]
