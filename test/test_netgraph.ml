(* Tests for the netgraph substrate: PRNG, heap, union-find, graph model,
   builder, paths, coordinates, serialization, and every topology
   generator. *)

let check = Alcotest.check

let qtest ?(count = 100) name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "split stream differs" true (xa <> xb)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_covers () =
  let rng = Rng.create 4 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_distinct () =
  let rng = Rng.create 6 in
  let s = Rng.sample_distinct rng ~n:20 ~bound:30 in
  check Alcotest.int "count" 20 (Array.length s);
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "in bound" true (v >= 0 && v < 30);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl v);
      Hashtbl.replace tbl v ())
    s;
  let all = Rng.sample_distinct rng ~n:10 ~bound:10 in
  Array.sort compare all;
  check Alcotest.(array int) "n = bound is a permutation" (Array.init 10 Fun.id) all

let test_rng_float_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (v >= 0.0 && v < 2.5)
  done

let rng_qcheck =
  qtest "rng: pick returns an element" QCheck2.Gen.(pair small_int (array_size (int_range 1 20) small_int))
    (fun (seed, arr) ->
      let rng = Rng.create seed in
      let v = Rng.pick rng arr in
      Array.exists (fun x -> x = v) arr)

(* ------------------------------------------------------------------ *)
(* Heap                                                                 *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Heap.create 10 in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.insert h 3 30;
  Heap.insert h 1 10;
  Heap.insert h 2 20;
  check Alcotest.int "size" 3 (Heap.size h);
  Alcotest.(check bool) "mem" true (Heap.mem h 2);
  check Alcotest.int "priority" 20 (Heap.priority h 2);
  check Alcotest.(option (pair int int)) "min" (Some (1, 10)) (Heap.pop_min h);
  check Alcotest.(option (pair int int)) "next" (Some (2, 20)) (Heap.pop_min h);
  check Alcotest.(option (pair int int)) "last" (Some (3, 30)) (Heap.pop_min h);
  check Alcotest.(option (pair int int)) "drained" None (Heap.pop_min h)

let test_heap_decrease () =
  let h = Heap.create 5 in
  Heap.insert h 0 100;
  Heap.insert h 1 50;
  Heap.decrease h 0 10;
  check Alcotest.(option (pair int int)) "decreased wins" (Some (0, 10)) (Heap.pop_min h);
  Alcotest.check_raises "decrease absent" (Invalid_argument "Heap.decrease: absent") (fun () ->
      Heap.decrease h 3 1);
  Alcotest.check_raises "increase rejected" (Invalid_argument "Heap.decrease: priority increase")
    (fun () -> Heap.decrease h 1 60)

let test_heap_insert_or_decrease () =
  let h = Heap.create 4 in
  Heap.insert_or_decrease h 2 9;
  Heap.insert_or_decrease h 2 4;
  Heap.insert_or_decrease h 2 7 (* no-op *);
  check Alcotest.int "kept lower" 4 (Heap.priority h 2)

let test_heap_duplicate_insert () =
  let h = Heap.create 4 in
  Heap.insert h 1 5;
  Alcotest.check_raises "duplicate" (Invalid_argument "Heap.insert: already present") (fun () ->
      Heap.insert h 1 6)

let test_heap_clear () =
  let h = Heap.create 4 in
  Heap.insert h 0 1;
  Heap.insert h 1 2;
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Alcotest.(check bool) "not mem" false (Heap.mem h 0);
  Heap.insert h 0 3;
  check Alcotest.(option (pair int int)) "reusable" (Some (0, 3)) (Heap.pop_min h)

let test_heap_generation_clear () =
  (* clear is O(1): it bumps a generation stamp instead of walking the
     occupied slots. Membership from an old generation must not leak
     into the new one — even for elements that were never popped. *)
  let h = Heap.create 8 in
  for round = 1 to 100 do
    Heap.insert h 0 round;
    Heap.insert h 5 (round + 1);
    Alcotest.(check bool) "mem in-generation" true (Heap.mem h 5);
    Heap.clear h;
    Alcotest.(check bool) "stale mem invalidated" false (Heap.mem h 5);
    Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)
  done;
  Heap.insert h 5 7;
  check Alcotest.int "fresh generation priority" 7 (Heap.priority h 5);
  check Alcotest.(option (pair int int)) "fresh pop" (Some (5, 7)) (Heap.pop_min h)

let heap_sort_qcheck =
  qtest "heap: pops ascending" QCheck2.Gen.(array_size (int_range 0 64) (int_range 0 1000))
    (fun prios ->
      let n = Array.length prios in
      let h = Heap.create (max n 1) in
      Array.iteri (fun i p -> Heap.insert h i p) prios;
      let out = ref [] in
      let rec drain () =
        match Heap.pop_min h with
        | None -> ()
        | Some (_, p) ->
          out := p :: !out;
          drain ()
      in
      drain ();
      let sorted = Array.copy prios in
      Array.sort compare sorted;
      List.rev !out = Array.to_list sorted)

let heap_decrease_qcheck =
  qtest "heap: random decreases keep order"
    QCheck2.Gen.(pair small_int (array_size (int_range 1 40) (int_range 10 1000)))
    (fun (seed, prios) ->
      let rng = Rng.create seed in
      let n = Array.length prios in
      let h = Heap.create n in
      Array.iteri (fun i p -> Heap.insert h i p) prios;
      let current = Array.copy prios in
      for _ = 1 to n do
        let i = Rng.int rng n in
        if Heap.mem h i && current.(i) > 1 then begin
          let p = Rng.int rng current.(i) in
          Heap.decrease h i p;
          current.(i) <- p
        end
      done;
      let rec drain last =
        match Heap.pop_min h with
        | None -> true
        | Some (x, p) -> p >= last && current.(x) = p && drain p
      in
      drain min_int)

(* ------------------------------------------------------------------ *)
(* Dsu                                                                  *)
(* ------------------------------------------------------------------ *)

let test_dsu () =
  let d = Dsu.create 6 in
  check Alcotest.int "initial count" 6 (Dsu.count d);
  Alcotest.(check bool) "fresh union" true (Dsu.union d 0 1);
  Alcotest.(check bool) "repeat union" false (Dsu.union d 1 0);
  Alcotest.(check bool) "same" true (Dsu.same d 0 1);
  Alcotest.(check bool) "not same" false (Dsu.same d 0 2);
  ignore (Dsu.union d 2 3);
  ignore (Dsu.union d 1 3);
  Alcotest.(check bool) "transitive" true (Dsu.same d 0 2);
  check Alcotest.int "count after unions" 3 (Dsu.count d)

let dsu_qcheck =
  qtest "dsu: count = components"
    QCheck2.Gen.(list_size (int_range 0 40) (pair (int_range 0 19) (int_range 0 19)))
    (fun edges ->
      let d = Dsu.create 20 in
      List.iter (fun (a, b) -> ignore (Dsu.union d a b)) edges;
      (* count components by brute force *)
      let repr = Array.init 20 (fun i -> Dsu.find d i) in
      let distinct = List.sort_uniq compare (Array.to_list repr) in
      List.length distinct = Dsu.count d)

(* ------------------------------------------------------------------ *)
(* Graph / Builder                                                      *)
(* ------------------------------------------------------------------ *)

let small_fabric () =
  let b = Builder.create () in
  let s0 = Builder.add_switch b ~name:"s0" in
  let s1 = Builder.add_switch b ~name:"s1" in
  let t0 = Builder.add_terminal b ~name:"t0" ~switch:s0 in
  let t1 = Builder.add_terminal b ~name:"t1" ~switch:s1 in
  let c01, c10 = Builder.add_link b s0 s1 in
  (Builder.build b, s0, s1, t0, t1, c01, c10)

let test_builder_basic () =
  let g, s0, s1, t0, t1, c01, c10 = small_fabric () in
  check Alcotest.int "nodes" 4 (Graph.num_nodes g);
  check Alcotest.int "channels" 6 (Graph.num_channels g);
  check Alcotest.int "switches" 2 (Graph.num_switches g);
  check Alcotest.int "terminals" 2 (Graph.num_terminals g);
  Alcotest.(check bool) "s0 switch" true (Graph.is_switch g s0);
  Alcotest.(check bool) "t0 terminal" true (Graph.is_terminal g t0);
  check Alcotest.(option int) "reverse pairing" (Some c10) (Graph.reverse_channel g c01);
  check Alcotest.(option int) "reverse symmetric" (Some c01) (Graph.reverse_channel g c10);
  let c = Graph.channel g c01 in
  check Alcotest.int "channel src" s0 c.Channel.src;
  check Alcotest.int "channel dst" s1 c.Channel.dst;
  (match Graph.validate g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  Alcotest.(check bool) "connected" true (Graph.connected g);
  check Alcotest.int "diameter t0->t1" 3 (Graph.diameter g);
  ignore (s1, t1)

let test_builder_errors () =
  let b = Builder.create () in
  let s0 = Builder.add_switch b ~name:"s0" in
  Alcotest.check_raises "self link" (Invalid_argument "Builder.add_link: self link") (fun () ->
      ignore (Builder.add_link b s0 s0));
  Alcotest.check_raises "unknown node" (Invalid_argument "Builder.add_link: unknown node") (fun () ->
      ignore (Builder.add_link b s0 99));
  let _ = Builder.build b in
  Alcotest.check_raises "reuse after build" (Invalid_argument "Builder: already built") (fun () ->
      ignore (Builder.add_switch b ~name:"s1"))

let test_builder_link_count () =
  let b = Builder.create () in
  let s0 = Builder.add_switch b ~name:"s0" in
  let s1 = Builder.add_switch b ~name:"s1" in
  ignore (Builder.add_link b s0 s1);
  ignore (Builder.add_link b s1 s0);
  check Alcotest.int "parallel cables counted" 2 (Builder.link_count b s0 s1);
  check Alcotest.int "order-insensitive" 2 (Builder.link_count b s1 s0)

let test_graph_validate_rejects () =
  (* terminal with two cables *)
  let nodes =
    [|
      { Node.id = 0; kind = Node.Switch; name = "s" };
      { Node.id = 1; kind = Node.Terminal; name = "t" };
    |]
  in
  let channels =
    [|
      { Channel.id = 0; src = 1; dst = 0 };
      { Channel.id = 1; src = 0; dst = 1 };
      { Channel.id = 2; src = 1; dst = 0 };
      { Channel.id = 3; src = 0; dst = 1 };
    |]
  in
  let g = Graph.make ~nodes ~channels ~reverse:[| 1; 0; 3; 2 |] in
  Alcotest.(check bool) "doubly-cabled terminal rejected" true (Result.is_error (Graph.validate g))

let test_graph_validate_more_violations () =
  let sw id name = { Node.id; kind = Node.Switch; name } in
  (* channel id mismatch *)
  let g =
    Graph.make
      ~nodes:[| sw 0 "a"; sw 1 "b" |]
      ~channels:[| { Channel.id = 1; src = 0; dst = 1 } |]
      ~reverse:[| -1 |]
  in
  Alcotest.(check bool) "channel id mismatch" true (Result.is_error (Graph.validate g));
  (* asymmetric reverse *)
  let g2 =
    Graph.make
      ~nodes:[| sw 0 "a"; sw 1 "b" |]
      ~channels:[| { Channel.id = 0; src = 0; dst = 1 }; { Channel.id = 1; src = 0; dst = 1 } |]
      ~reverse:[| 1; -1 |]
  in
  Alcotest.(check bool) "asymmetric reverse" true (Result.is_error (Graph.validate g2));
  (* reverse paired with a same-direction channel *)
  let g3 =
    Graph.make
      ~nodes:[| sw 0 "a"; sw 1 "b" |]
      ~channels:[| { Channel.id = 0; src = 0; dst = 1 }; { Channel.id = 1; src = 0; dst = 1 } |]
      ~reverse:[| 1; 0 |]
  in
  Alcotest.(check bool) "reverse not opposite" true (Result.is_error (Graph.validate g3));
  (* self loop *)
  let g4 =
    Graph.make ~nodes:[| sw 0 "a" |]
      ~channels:[| { Channel.id = 0; src = 0; dst = 0 } |]
      ~reverse:[| -1 |]
  in
  Alcotest.(check bool) "self loop" true (Result.is_error (Graph.validate g4))

let test_cluster_structure () =
  (* deimos full scale: 3 directors of 36 chips + 724 nodes; 30 trunks *)
  let d = (Clusters.deimos ()).Clusters.graph in
  check Alcotest.int "deimos switches" (3 * 36) (Graph.num_switches d);
  (* count inter-director cables: channels between chips of different
     directors (names d1_/d2_/d3_) *)
  let director_of name = String.sub name 0 2 in
  let trunks = ref 0 in
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel d c.id with
      | Some r when r < c.id -> ()
      | _ ->
        let a = Graph.node d c.src and b = Graph.node d c.dst in
        if
          Node.is_switch a && Node.is_switch b
          && director_of a.Node.name <> director_of b.Node.name
        then incr trunks)
    (Graph.channels d);
  check Alcotest.int "30 trunk cables" 30 !trunks;
  (* odin: 144-port director = 12 leaves + 6 spines *)
  let o = (Clusters.odin ()).Clusters.graph in
  check Alcotest.int "odin chips" 18 (Graph.num_switches o);
  check Alcotest.int "odin nodes" 128 (Graph.num_terminals o)

let test_graph_disconnected () =
  let b = Builder.create () in
  let _ = Builder.add_switch b ~name:"a" in
  let _ = Builder.add_switch b ~name:"b" in
  let g = Builder.build b in
  Alcotest.(check bool) "disconnected" false (Graph.connected g)

let test_bfs_dist () =
  let g = Topo_ring.make ~switches:6 ~terminals_per_switch:0 in
  let dist = Graph.bfs_dist g 0 in
  check Alcotest.(array int) "ring distances" [| 0; 1; 2; 3; 2; 1 |] dist

(* ------------------------------------------------------------------ *)
(* Path                                                                 *)
(* ------------------------------------------------------------------ *)

let test_path () =
  let g, _, _, t0, t1, c01, _ = small_fabric () in
  (* t0 -> s0 -> s1 -> t1 *)
  let inj = (Graph.out_channels g t0).(0) in
  let eject = (Graph.in_channels g t1).(0) in
  let p = [| inj; c01; eject |] in
  Alcotest.(check bool) "consistent" true (Path.is_consistent g p);
  Alcotest.(check bool) "simple" true (Path.is_simple g p);
  check Alcotest.int "source" t0 (Path.source g p);
  check Alcotest.int "target" t1 (Path.target g p);
  check Alcotest.int "length" 3 (Path.length p);
  check Alcotest.int "node count" 4 (Array.length (Path.node_sequence g p));
  check
    Alcotest.(list (pair int int))
    "dependencies"
    [ (inj, c01); (c01, eject) ]
    (Path.dependencies p);
  let bad = [| c01; inj |] in
  Alcotest.(check bool) "inconsistent detected" false (Path.is_consistent g bad)

let test_path_simple_rejects_revisit () =
  let g = Topo_ring.make ~switches:3 ~terminals_per_switch:0 in
  (* find channels 0->1, 1->2, 2->0: walk around the ring back to start *)
  let chan a b =
    let found = ref (-1) in
    Array.iter (fun c -> if (Graph.channel g c).Channel.dst = b then found := c) (Graph.out_channels g a);
    !found
  in
  let p = [| chan 0 1; chan 1 2; chan 2 0 |] in
  Alcotest.(check bool) "consistent loop" true (Path.is_consistent g p);
  Alcotest.(check bool) "not simple" false (Path.is_simple g p)

(* ------------------------------------------------------------------ *)
(* Coords                                                               *)
(* ------------------------------------------------------------------ *)

let test_coords () =
  let c = Coords.make ~dims:[| 3; 4 |] ~wrap:[| true; false |] in
  check Alcotest.int "dims" 2 (Coords.num_dims c);
  Coords.set c ~node:7 ~coord:[| 2; 3 |];
  check Alcotest.(array int) "get" [| 2; 3 |] (Coords.get c 7);
  check Alcotest.int "node_at" 7 (Coords.node_at c [| 2; 3 |]);
  Alcotest.(check bool) "mem" true (Coords.mem c 7);
  Alcotest.(check bool) "not mem" false (Coords.mem c 8);
  Alcotest.check_raises "arity" (Invalid_argument "Coords.set: wrong arity") (fun () ->
      Coords.set c ~node:1 ~coord:[| 1 |]);
  Alcotest.check_raises "range" (Invalid_argument "Coords.set: out of range") (fun () ->
      Coords.set c ~node:1 ~coord:[| 3; 0 |])

(* ------------------------------------------------------------------ *)
(* Topology generators                                                  *)
(* ------------------------------------------------------------------ *)

let valid g =
  match Graph.validate g with
  | Ok () -> Graph.connected g
  | Error e -> Alcotest.failf "invalid topology: %s" e

let test_ring () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:2 in
  check Alcotest.int "switches" 5 (Graph.num_switches g);
  check Alcotest.int "terminals" 10 (Graph.num_terminals g);
  (* 5 ring cables + 10 terminal cables, 2 directed each *)
  check Alcotest.int "channels" 30 (Graph.num_channels g);
  Alcotest.(check bool) "valid" true (valid g);
  Alcotest.check_raises "too small" (Invalid_argument "Topo_ring.make: need at least 3 switches")
    (fun () -> ignore (Topo_ring.make ~switches:2 ~terminals_per_switch:0))

let test_torus () =
  let g, coords = Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1 in
  check Alcotest.int "switches" 16 (Graph.num_switches g);
  check Alcotest.int "terminals" 16 (Graph.num_terminals g);
  (* per switch: 4 grid neighbours: 32 cables + 16 terminal cables *)
  check Alcotest.int "channels" ((32 + 16) * 2) (Graph.num_channels g);
  Alcotest.(check bool) "valid" true (valid g);
  Array.iter
    (fun sw -> Alcotest.(check bool) "has coords" true (Coords.mem coords sw))
    (Graph.switches g)

let test_torus_size2_no_duplicate () =
  let g, _ = Topo_torus.torus ~dims:[| 2; 2 |] ~terminals_per_switch:0 in
  (* size-2 wrap must not double the cable: 4 cables only *)
  check Alcotest.int "channels" 8 (Graph.num_channels g);
  Alcotest.(check bool) "valid" true (valid g)

let test_mesh () =
  let g, _ = Topo_torus.mesh ~dims:[| 3; 3 |] ~terminals_per_switch:1 in
  (* 2*3*2 = 12 grid cables + 9 terminal cables *)
  check Alcotest.int "channels" ((12 + 9) * 2) (Graph.num_channels g);
  Alcotest.(check bool) "valid" true (valid g)

let test_hypercube () =
  let g, _ = Topo_hypercube.make ~dim:4 ~terminals_per_switch:1 in
  check Alcotest.int "switches" 16 (Graph.num_switches g);
  Array.iter
    (fun sw -> check Alcotest.int "degree = dim + terminal" 5 (Graph.degree g sw))
    (Graph.switches g);
  Alcotest.(check bool) "valid" true (valid g)

let test_tree () =
  let g = Topo_tree.make ~k:4 ~n:3 () in
  check Alcotest.int "switches" (Topo_tree.num_switches ~k:4 ~n:3) (Graph.num_switches g);
  check Alcotest.int "switch count formula" 48 (Topo_tree.num_switches ~k:4 ~n:3);
  check Alcotest.int "terminals" 64 (Graph.num_terminals g);
  Alcotest.(check bool) "valid" true (valid g);
  (* leaf switches carry k terminals each; top level has k down-links *)
  let g2 = Topo_tree.make ~k:4 ~n:3 ~endpoints:50 () in
  check Alcotest.int "endpoint override" 50 (Graph.num_terminals g2)

let test_xgft () =
  let ms = [| 4; 3 |] and ws = [| 2; 2 |] in
  check Alcotest.int "leaves" 12 (Topo_xgft.num_leaves ~ms);
  (* level counts: l0 = 12, l1 = 3*2 = 6, l2 = 4 *)
  check Alcotest.int "switches" 22 (Topo_xgft.num_switches ~ms ~ws);
  let g = Topo_xgft.make ~ms ~ws ~endpoints:100 in
  check Alcotest.int "generated switches" 22 (Graph.num_switches g);
  check Alcotest.int "terminals" 100 (Graph.num_terminals g);
  Alcotest.(check bool) "valid" true (valid g);
  (* every leaf has w1 = 2 parents plus its terminals *)
  match Routing.Ftree.levels g with
  | Error e -> Alcotest.failf "levels: %s" e
  | Ok levels ->
    Array.iter
      (fun sw ->
        if levels.(sw) = 0 then begin
          let ups =
            Array.to_list (Graph.out_channels g sw)
            |> List.filter (fun c ->
                   let v = (Graph.channel g c).Channel.dst in
                   Graph.is_switch g v)
            |> List.length
          in
          check Alcotest.int "leaf uplinks" 2 ups
        end)
      (Graph.switches g)

let test_kautz () =
  check Alcotest.int "K(2,2) switches" 6 (Topo_kautz.num_switches ~b:2 ~n:2);
  check Alcotest.int "K(3,3) switches" 36 (Topo_kautz.num_switches ~b:3 ~n:3);
  let g = Topo_kautz.make ~b:2 ~n:3 ~endpoints:48 in
  check Alcotest.int "K(2,3) switches" 12 (Graph.num_switches g);
  check Alcotest.int "terminals" 48 (Graph.num_terminals g);
  Alcotest.(check bool) "valid" true (valid g)

let test_random_topo () =
  let rng = Rng.create 99 in
  let g = Topo_random.make ~switches:10 ~switch_radix:8 ~terminals:20 ~inter_links:15 ~rng in
  check Alcotest.int "switches" 10 (Graph.num_switches g);
  check Alcotest.int "terminals" 20 (Graph.num_terminals g);
  (* 20 terminal cables + 15 inter-switch cables *)
  check Alcotest.int "channels" ((20 + 15) * 2) (Graph.num_channels g);
  Alcotest.(check bool) "valid" true (valid g);
  (* radix respected *)
  Array.iter
    (fun sw -> Alcotest.(check bool) "radix" true (Graph.degree g sw <= 8))
    (Graph.switches g);
  Alcotest.check_raises "too few links"
    (Invalid_argument "Topo_random.make: too few links for connectivity") (fun () ->
      ignore (Topo_random.make ~switches:10 ~switch_radix:8 ~terminals:0 ~inter_links:5 ~rng))

let random_topo_qcheck =
  qtest ~count:30 "random topology: connected and within radix" QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:12 ~switch_radix:10 ~terminals:24 ~inter_links:20 ~rng in
      Graph.connected g
      && Array.for_all (fun sw -> Graph.degree g sw <= 10) (Graph.switches g)
      && Result.is_ok (Graph.validate g))

let test_dragonfly () =
  let g = Topo_dragonfly.make ~a:4 ~p:2 ~h:2 () in
  (* canonical group count a*h+1 = 9 *)
  check Alcotest.int "switches" 36 (Graph.num_switches g);
  check Alcotest.int "num_switches helper" 36 (Topo_dragonfly.num_switches ~a:4 ~h:2 ());
  check Alcotest.int "terminals" 72 (Graph.num_terminals g);
  Alcotest.(check bool) "valid" true (valid g);
  (* every switch: (a-1) local + h global + p terminal cables *)
  Array.iter
    (fun sw -> check Alcotest.int "degree" (3 + 2 + 2) (Graph.degree g sw))
    (Graph.switches g);
  (* diameter of a canonical dragonfly switch graph is 3 (l-g-l) *)
  let sw_only = Topo_dragonfly.make ~a:4 ~p:0 ~h:2 () in
  check Alcotest.int "switch diameter" 3 (Graph.diameter sw_only);
  Alcotest.check_raises "too many groups"
    (Invalid_argument "Topo_dragonfly.make: too many groups for a*h global ports") (fun () ->
      ignore (Topo_dragonfly.make ~a:2 ~p:1 ~h:1 ~groups:9 ()));
  (* reduced group count still valid and connected *)
  let small = Topo_dragonfly.make ~a:4 ~p:1 ~h:2 ~groups:5 () in
  Alcotest.(check bool) "reduced groups valid" true (valid small)

let test_hyperx () =
  let g, coords = Topo_hyperx.make ~dims:[| 3; 4 |] ~terminals_per_switch:2 in
  check Alcotest.int "switches" 12 (Graph.num_switches g);
  check Alcotest.int "terminals" 24 (Graph.num_terminals g);
  (* cables: rows of dim0 (4 rows? dims [3;4]: dim0 rows = 4 columns each C(3,2)=3 -> 12;
     dim1 rows = 3 each C(4,2)=6 -> 18; total 30 *)
  check Alcotest.int "cable count formula" 30 (Topo_hyperx.num_cables ~dims:[| 3; 4 |]);
  check Alcotest.int "channels" ((30 + 24) * 2) (Graph.num_channels g);
  Alcotest.(check bool) "valid" true (valid g);
  (* diameter of switch graph = #dims *)
  let sw_only, _ = Topo_hyperx.make ~dims:[| 3; 4 |] ~terminals_per_switch:0 in
  check Alcotest.int "diameter = dims" 2 (Graph.diameter sw_only);
  Array.iter (fun sw -> Alcotest.(check bool) "has coords" true (Coords.mem coords sw)) (Graph.switches g);
  Alcotest.check_raises "size 1 rejected" (Invalid_argument "Topo_hyperx.make: dimension size < 2")
    (fun () -> ignore (Topo_hyperx.make ~dims:[| 1; 3 |] ~terminals_per_switch:0))

let test_clusters () =
  List.iter
    (fun (s : Clusters.system) ->
      Alcotest.(check bool) (s.Clusters.name ^ " valid") true (valid s.Clusters.graph))
    (Clusters.all ~scale:8 ());
  (* Odin and Deimos at full scale too (small enough) *)
  Alcotest.(check bool) "odin full" true (valid (Clusters.odin ()).Clusters.graph);
  let deimos = Clusters.deimos () in
  Alcotest.(check bool) "deimos full" true (valid deimos.Clusters.graph);
  check Alcotest.int "deimos nodes" 724 (Graph.num_terminals deimos.Clusters.graph);
  check Alcotest.(option string) "lookup" (Some "Deimos")
    (Option.map (fun s -> s.Clusters.name) (Clusters.by_name ~scale:8 "deimos"));
  check Alcotest.(option string) "lookup miss" None
    (Option.map (fun s -> s.Clusters.name) (Clusters.by_name "nonesuch"))

(* ------------------------------------------------------------------ *)
(* Parallel                                                             *)
(* ------------------------------------------------------------------ *)

let test_parallel_map () =
  let a = Array.init 1000 Fun.id in
  let seq = Array.map (fun x -> x * x) a in
  List.iter
    (fun domains ->
      check Alcotest.(array int) (Printf.sprintf "%d domains" domains) seq
        (Parallel.map_array ~domains (fun x -> x * x) a))
    [ 1; 2; 4; 7 ];
  check Alcotest.(array int) "empty" [||] (Parallel.map_array ~domains:4 (fun x -> x) [||]);
  check Alcotest.(array int) "singleton" [| 9 |] (Parallel.map_array ~domains:4 (fun x -> x * x) [| 3 |])

let test_parallel_init_and_for_all () =
  check Alcotest.(array int) "init" (Array.init 100 (fun i -> 2 * i))
    (Parallel.init ~domains:3 100 (fun i -> 2 * i));
  Alcotest.(check bool) "for_all true" true (Parallel.for_all ~domains:3 (fun x -> x >= 0) (Array.init 50 Fun.id));
  Alcotest.(check bool) "for_all false" false
    (Parallel.for_all ~domains:3 (fun x -> x < 49) (Array.init 50 Fun.id));
  Alcotest.(check bool) "recommended sane" true
    (let d = Parallel.recommended_domains () in
     d >= 1 && d <= 8)

let test_parallel_exception () =
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      ignore (Parallel.map_array ~domains:4 (fun x -> if x = 500 then failwith "boom" else x) (Array.init 800 Fun.id)))

let test_pool_run_and_scratch () =
  List.iter
    (fun domains ->
      Parallel.Pool.with_pool ~domains
        (fun slot -> (slot, Array.make 100 0))
        (fun pool ->
          Alcotest.(check int) "size" (max 1 domains) (Parallel.Pool.size pool);
          let out = Array.make 1000 0 in
          (* several invocations reuse the same workers *)
          for round = 1 to 3 do
            Parallel.Pool.run pool ~n:1000 (fun _s i -> out.(i) <- (round * i) + 1)
          done;
          check Alcotest.(array int) (Printf.sprintf "run %d domains" domains)
            (Array.init 1000 (fun i -> (3 * i) + 1))
            out;
          (* scratch: every slot got a distinct state; increments observed
             via iter_scratch sum to the item count *)
          Parallel.Pool.run pool ~n:500 (fun (_, tally) _i -> tally.(0) <- tally.(0) + 1);
          let total = ref 0 in
          Parallel.Pool.iter_scratch pool (fun (_, tally) -> total := !total + tally.(0));
          Alcotest.(check int) (Printf.sprintf "scratch sum %d domains" domains) 500 !total))
    [ 1; 2; 4 ]

let test_pool_map_reduce () =
  Parallel.Pool.with_pool ~domains:3
    (fun _slot -> ())
    (fun pool ->
      let sum =
        Parallel.Pool.map_reduce pool ~n:101 ~map:(fun () i -> i) ~fold:( + ) 0
      in
      Alcotest.(check int) "sum 0..100" 5050 sum;
      Alcotest.(check int) "empty" 7
        (Parallel.Pool.map_reduce pool ~n:0 ~map:(fun () i -> i) ~fold:( + ) 7))

let test_pool_exception_and_shutdown () =
  let pool = Parallel.Pool.create ~domains:4 (fun _slot -> ()) in
  Alcotest.check_raises "propagates" (Failure "pool boom") (fun () ->
      Parallel.Pool.run pool ~n:800 (fun () i -> if i = 400 then failwith "pool boom"));
  (* the pool survives a failed task *)
  let hits = Atomic.make 0 in
  Parallel.Pool.run pool ~n:100 (fun () _ -> Atomic.incr hits);
  Alcotest.(check int) "usable after failure" 100 (Atomic.get hits);
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "run after shutdown" (Invalid_argument "Parallel.Pool.run: pool is shut down")
    (fun () -> Parallel.Pool.run pool ~n:10 (fun () _ -> ()))

(* ------------------------------------------------------------------ *)
(* Degrade                                                              *)
(* ------------------------------------------------------------------ *)

let test_degrade_remove_cables () =
  let g, _ = Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1 in
  let rng = Rng.create 3 in
  let g', removed = Degrade.remove_cables g ~rng ~count:5 in
  check Alcotest.int "removed as asked" 5 removed;
  check Alcotest.int "channels dropped" (Graph.num_channels g - 10) (Graph.num_channels g');
  check Alcotest.int "nodes kept" (Graph.num_nodes g) (Graph.num_nodes g');
  Alcotest.(check bool) "still valid" true (valid g')

let test_degrade_respects_connectivity () =
  (* a ring has no redundant cable once one is gone *)
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let rng = Rng.create 4 in
  let g', removed = Degrade.remove_cables g ~rng ~count:3 in
  check Alcotest.int "only one removable" 1 removed;
  Alcotest.(check bool) "still connected" true (Graph.connected g')

let degrade_qcheck =
  qtest ~count:25 "degrade: connected at any removal count" QCheck2.Gen.(pair (int_range 0 500) (int_range 0 20))
    (fun (seed, count) ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:8 ~switch_radix:10 ~terminals:16 ~inter_links:14 ~rng in
      let g', removed = Degrade.remove_cables g ~rng ~count in
      removed <= count && Graph.connected g' && Result.is_ok (Graph.validate g'))

let test_degrade_remove_switch () =
  let g = Topo_xgft.make ~ms:[| 4; 4 |] ~ws:[| 2; 2 |] ~endpoints:32 in
  (* removing one spine keeps the tree connected *)
  let spine =
    let levels = Result.get_ok (Routing.Ftree.levels g) in
    Array.to_list (Graph.switches g) |> List.find (fun sw -> levels.(sw) = 2)
  in
  (match Degrade.remove_switch g ~switch:spine with
  | Error e -> Alcotest.fail e
  | Ok g' ->
    check Alcotest.int "one switch fewer" (Graph.num_switches g - 1) (Graph.num_switches g');
    check Alcotest.int "terminals kept" 32 (Graph.num_terminals g');
    Alcotest.(check bool) "valid" true (valid g'));
  (* removing a leaf takes its terminals with it *)
  let leaf =
    let levels = Result.get_ok (Routing.Ftree.levels g) in
    Array.to_list (Graph.switches g) |> List.find (fun sw -> levels.(sw) = 0)
  in
  (match Degrade.remove_switch g ~switch:leaf with
  | Error e -> Alcotest.fail e
  | Ok g' -> check Alcotest.int "terminals dropped" 30 (Graph.num_terminals g'));
  Alcotest.(check bool) "terminal id rejected" true
    (Result.is_error (Degrade.remove_switch g ~switch:(Graph.terminals g).(0)))

(* ------------------------------------------------------------------ *)
(* Serial                                                               *)
(* ------------------------------------------------------------------ *)

let test_serial_roundtrip () =
  let g = Topo_ring.make ~switches:4 ~terminals_per_switch:2 in
  let text = Serial.to_string g in
  match Serial.of_string text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok g2 ->
    check Alcotest.int "nodes" (Graph.num_nodes g) (Graph.num_nodes g2);
    check Alcotest.int "channels" (Graph.num_channels g) (Graph.num_channels g2);
    check Alcotest.int "terminals" (Graph.num_terminals g) (Graph.num_terminals g2);
    Alcotest.(check bool) "valid" true (valid g2);
    (* idempotent second round trip *)
    check Alcotest.string "canonical form" text (Serial.to_string g2)

let test_serial_multiplicity () =
  let input = "switch a\nswitch b\nlink a b 3\nterminal t0 a\n" in
  match Serial.of_string input with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok g ->
    check Alcotest.int "three cables + terminal" 8 (Graph.num_channels g)

let test_serial_errors () =
  let expect_error input fragment =
    match Serial.of_string input with
    | Ok _ -> Alcotest.failf "expected parse error for %S" input
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got %S)" fragment msg)
        true
        (Testutil.contains msg fragment)
  in
  expect_error "switch a\nswitch a\n" "duplicate";
  expect_error "terminal t0 nowhere\n" "unknown switch";
  expect_error "link a b\n" "unknown node";
  expect_error "switch a\nswitch b\nlink a b zero\n" "multiplicity";
  expect_error "frobnicate\n" "unrecognized";
  expect_error "switch a\nlink a a\n" "self link"

let test_serial_comments_and_blanks () =
  let input = "# a comment\n\nswitch a\n  \nswitch b\nlink a b\n" in
  match Serial.of_string input with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok g -> check Alcotest.int "nodes" 2 (Graph.num_nodes g)

let test_dot () =
  let g = Topo_ring.make ~switches:3 ~terminals_per_switch:1 in
  let dot = Serial.to_dot g in
  Alcotest.(check bool) "has graph header" true (Testutil.contains dot "graph fabric");
  (* 3 ring cables + 3 terminal cables = 6 undirected edges *)
  let edges = List.length (String.split_on_char '\n' dot |> List.filter (fun l -> Testutil.contains l " -- ")) in
  check Alcotest.int "edge lines" 6 edges

let () =
  Alcotest.run "netgraph"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers" `Quick test_rng_int_covers;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          rng_qcheck;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "decrease" `Quick test_heap_decrease;
          Alcotest.test_case "insert_or_decrease" `Quick test_heap_insert_or_decrease;
          Alcotest.test_case "duplicate insert" `Quick test_heap_duplicate_insert;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "generation clear" `Quick test_heap_generation_clear;
          heap_sort_qcheck;
          heap_decrease_qcheck;
        ] );
      ("dsu", [ Alcotest.test_case "basic" `Quick test_dsu; dsu_qcheck ]);
      ( "graph",
        [
          Alcotest.test_case "builder basic" `Quick test_builder_basic;
          Alcotest.test_case "builder errors" `Quick test_builder_errors;
          Alcotest.test_case "link count" `Quick test_builder_link_count;
          Alcotest.test_case "validate rejects bad terminal" `Quick test_graph_validate_rejects;
          Alcotest.test_case "validate rejects more" `Quick test_graph_validate_more_violations;
          Alcotest.test_case "cluster structure" `Slow test_cluster_structure;
          Alcotest.test_case "disconnected" `Quick test_graph_disconnected;
          Alcotest.test_case "bfs dist" `Quick test_bfs_dist;
        ] );
      ( "path",
        [
          Alcotest.test_case "basics" `Quick test_path;
          Alcotest.test_case "revisit not simple" `Quick test_path_simple_rejects_revisit;
        ] );
      ("coords", [ Alcotest.test_case "basics" `Quick test_coords ]);
      ( "topologies",
        [
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "torus size-2" `Quick test_torus_size2_no_duplicate;
          Alcotest.test_case "mesh" `Quick test_mesh;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "k-ary n-tree" `Quick test_tree;
          Alcotest.test_case "xgft" `Quick test_xgft;
          Alcotest.test_case "kautz" `Quick test_kautz;
          Alcotest.test_case "random" `Quick test_random_topo;
          random_topo_qcheck;
          Alcotest.test_case "dragonfly" `Quick test_dragonfly;
          Alcotest.test_case "hyperx" `Quick test_hyperx;
          Alcotest.test_case "clusters" `Slow test_clusters;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map" `Quick test_parallel_map;
          Alcotest.test_case "init and for_all" `Quick test_parallel_init_and_for_all;
          Alcotest.test_case "exception" `Quick test_parallel_exception;
          Alcotest.test_case "pool run and scratch" `Quick test_pool_run_and_scratch;
          Alcotest.test_case "pool map_reduce" `Quick test_pool_map_reduce;
          Alcotest.test_case "pool exception and shutdown" `Quick test_pool_exception_and_shutdown;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "remove cables" `Quick test_degrade_remove_cables;
          Alcotest.test_case "connectivity kept" `Quick test_degrade_respects_connectivity;
          degrade_qcheck;
          Alcotest.test_case "remove switch" `Quick test_degrade_remove_switch;
        ] );
      ( "serial",
        [
          Alcotest.test_case "roundtrip" `Quick test_serial_roundtrip;
          Alcotest.test_case "multiplicity" `Quick test_serial_multiplicity;
          Alcotest.test_case "errors" `Quick test_serial_errors;
          Alcotest.test_case "comments" `Quick test_serial_comments_and_blanks;
          Alcotest.test_case "dot export" `Quick test_dot;
        ] );
    ]
