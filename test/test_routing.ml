(* Tests for the routing engines: Dijkstra machinery, forwarding tables,
   and the six algorithms the paper compares (MinHop, SSSP, Up*/Down*,
   DOR, FatTree, LASH). *)

open Routing

let check = Alcotest.check

let qtest ?(count = 40) name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let expect label = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %s" label e

let stats label ft = expect label (Ftable.validate ft)

(* shared fixtures *)
let ring5 = lazy (Topo_ring.make ~switches:5 ~terminals_per_switch:1)
let torus44 = lazy (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:2)
let mesh33 = lazy (Topo_torus.mesh ~dims:[| 3; 3 |] ~terminals_per_switch:2)
let tree62 = lazy (Topo_tree.make ~k:6 ~n:2 ())
let xgft_small = lazy (Topo_xgft.make ~ms:[| 4; 4 |] ~ws:[| 2; 2 |] ~endpoints:48)
let kautz23 = lazy (Topo_kautz.make ~b:2 ~n:3 ~endpoints:36)

(* ------------------------------------------------------------------ *)
(* Dijkstra                                                             *)
(* ------------------------------------------------------------------ *)

let test_dijkstra_matches_bfs () =
  let g = fst (Lazy.force torus44) in
  let ws = Dijkstra.workspace g in
  Array.iter
    (fun dst ->
      let dist, via = Dijkstra.hops_toward ws g ~dst in
      let dist = Array.copy dist and via = Array.copy via in
      (* reference: reverse BFS *)
      let refd = Array.make (Graph.num_nodes g) max_int in
      let q = Queue.create () in
      refd.(dst) <- 0;
      Queue.add dst q;
      while not (Queue.is_empty q) do
        let v = Queue.take q in
        Array.iter
          (fun c ->
            let u = (Graph.channel g c).Channel.src in
            if refd.(u) = max_int then begin
              refd.(u) <- refd.(v) + 1;
              Queue.add u q
            end)
          (Graph.in_channels g v)
      done;
      check Alcotest.(array int) "distances" refd dist;
      (* first hops decrease distance *)
      Array.iteri
        (fun u c ->
          if u <> dst then begin
            Alcotest.(check bool) "has first hop" true (c >= 0);
            let v = (Graph.channel g c).Channel.dst in
            check Alcotest.int "via decreases" (dist.(u) - 1) dist.(v)
          end)
        via)
    (Array.sub (Graph.terminals g) 0 4)

let test_dijkstra_weighted () =
  (* triangle with one expensive edge: the cheap two-hop detour wins *)
  let b = Builder.create () in
  let s0 = Builder.add_switch b ~name:"s0" in
  let s1 = Builder.add_switch b ~name:"s1" in
  let s2 = Builder.add_switch b ~name:"s2" in
  let c01, _ = Builder.add_link b s0 s1 in
  let c12, _ = Builder.add_link b s1 s2 in
  let c02, _ = Builder.add_link b s0 s2 in
  let g = Builder.build b in
  let weights = Array.make (Graph.num_channels g) 1 in
  weights.(c02) <- 10;
  let ws = Dijkstra.workspace g in
  let dist, via = Dijkstra.toward ws g ~weights ~dst:s2 in
  check Alcotest.int "detour distance" 2 dist.(s0);
  check Alcotest.int "detour first hop" c01 via.(s0);
  check Alcotest.int "direct from middle" c12 via.(s1)

(* ------------------------------------------------------------------ *)
(* Ftable                                                               *)
(* ------------------------------------------------------------------ *)

let test_ftable_basics () =
  let g = Lazy.force ring5 in
  let ft = Ftable.create g ~algorithm:"test" in
  check Alcotest.string "algorithm" "test" (Ftable.algorithm ft);
  let t = (Graph.terminals g).(0) and t' = (Graph.terminals g).(1) in
  check Alcotest.(option int) "unset entry" None (Ftable.next ft ~node:t ~dst:t');
  check Alcotest.(option (array int)) "self path" (Some [||]) (Ftable.path ft ~src:t ~dst:t);
  check Alcotest.(option (array int)) "missing path" None (Ftable.path ft ~src:t ~dst:t');
  Alcotest.check_raises "set_next wrong channel"
    (Invalid_argument "Ftable.set_next: channel does not leave node") (fun () ->
      Ftable.set_next ft ~node:t ~dst:t' ~channel:(Graph.out_channels g t').(0));
  Alcotest.check_raises "dst_index on switch" (Invalid_argument "Ftable.dst_index: not a terminal")
    (fun () -> ignore (Ftable.dst_index ft (Graph.switches g).(0)))

let test_ftable_layers () =
  let g = Lazy.force ring5 in
  let ft = Ftable.create g ~algorithm:"test" in
  let t = (Graph.terminals g).(0) and t' = (Graph.terminals g).(1) in
  check Alcotest.int "default layer" 0 (Ftable.layer ft ~src:t ~dst:t');
  Ftable.set_layer ft ~src:t ~dst:t' 3;
  check Alcotest.int "layer set" 3 (Ftable.layer ft ~src:t ~dst:t');
  check Alcotest.int "other pair untouched" 0 (Ftable.layer ft ~src:t' ~dst:t);
  check Alcotest.int "default num_layers" 1 (Ftable.num_layers ft);
  Ftable.set_num_layers ft 4;
  check Alcotest.int "num_layers" 4 (Ftable.num_layers ft);
  Alcotest.check_raises "layer range" (Invalid_argument "Ftable.set_layer: layer out of range")
    (fun () -> Ftable.set_layer ft ~src:t ~dst:t' 256)

let test_ftable_loop_detection () =
  (* two switches, each forwarding to the other: a forwarding loop *)
  let b = Builder.create () in
  let s0 = Builder.add_switch b ~name:"s0" in
  let s1 = Builder.add_switch b ~name:"s1" in
  let t0 = Builder.add_terminal b ~name:"t0" ~switch:s0 in
  let t1 = Builder.add_terminal b ~name:"t1" ~switch:s1 in
  let c01, c10 = Builder.add_link b s0 s1 in
  let g = Builder.build b in
  let ft = Ftable.create g ~algorithm:"loopy" in
  Ftable.set_next ft ~node:t0 ~dst:t1 ~channel:(Graph.out_channels g t0).(0);
  Ftable.set_next ft ~node:s0 ~dst:t1 ~channel:c01;
  Ftable.set_next ft ~node:s1 ~dst:t1 ~channel:c10 (* loops back! *);
  check Alcotest.(option (array int)) "loop detected" None (Ftable.path ft ~src:t0 ~dst:t1);
  Alcotest.(check bool) "validate fails" true (Result.is_error (Ftable.validate ft))

(* The loop bound is tight: a loop-free walk visits distinct nodes, so
   num_nodes - 1 hops is the exact maximum — a Hamiltonian-length route
   must still resolve, anything longer is a loop. *)
let test_ftable_loop_bound_tight () =
  let k = 4 in
  let b = Builder.create () in
  let switches = Array.init k (fun i -> Builder.add_switch b ~name:(Printf.sprintf "s%d" i)) in
  let t0 = Builder.add_terminal b ~name:"t0" ~switch:switches.(0) in
  let t1 = Builder.add_terminal b ~name:"t1" ~switch:switches.(k - 1) in
  let links = Array.init (k - 1) (fun i -> Builder.add_link b switches.(i) switches.(i + 1)) in
  let g = Builder.build b in
  let ft = Ftable.create g ~algorithm:"line" in
  Ftable.set_next ft ~node:t0 ~dst:t1 ~channel:(Graph.out_channels g t0).(0);
  Array.iteri (fun i (fwd, _) -> Ftable.set_next ft ~node:switches.(i) ~dst:t1 ~channel:fwd) links;
  let eject =
    Array.to_list (Graph.out_channels g switches.(k - 1))
    |> List.find (fun c -> (Graph.channel g c).Channel.dst = t1)
  in
  Ftable.set_next ft ~node:switches.(k - 1) ~dst:t1 ~channel:eject;
  match Ftable.path ft ~src:t0 ~dst:t1 with
  | None -> Alcotest.fail "Hamiltonian-length route must resolve"
  | Some p -> check Alcotest.int "num_nodes - 1 hops" (Graph.num_nodes g - 1) (Array.length p)

let test_ftable_cyclic_table () =
  (* deliberately cyclic 3-switch table: the walk revolves s0->s1->s2->s0
     forever and must be cut off at the num_nodes - 1 hop bound *)
  let b = Builder.create () in
  let s0 = Builder.add_switch b ~name:"s0" in
  let s1 = Builder.add_switch b ~name:"s1" in
  let s2 = Builder.add_switch b ~name:"s2" in
  let t0 = Builder.add_terminal b ~name:"t0" ~switch:s0 in
  let t1 = Builder.add_terminal b ~name:"t1" ~switch:s1 in
  let c01, _ = Builder.add_link b s0 s1 in
  let c12, _ = Builder.add_link b s1 s2 in
  let c20, _ = Builder.add_link b s2 s0 in
  let g = Builder.build b in
  let ft = Ftable.create g ~algorithm:"cyclic" in
  Ftable.set_next ft ~node:t0 ~dst:t1 ~channel:(Graph.out_channels g t0).(0);
  Ftable.set_next ft ~node:s0 ~dst:t1 ~channel:c01;
  Ftable.set_next ft ~node:s1 ~dst:t1 ~channel:c12 (* skips t1's ejection port *);
  Ftable.set_next ft ~node:s2 ~dst:t1 ~channel:c20;
  check Alcotest.(option (array int)) "cycle cut off" None (Ftable.path ft ~src:t0 ~dst:t1);
  (* the streaming variant must abort and leave the store pair absent *)
  let store = Deadlock.Route_store.create g ~capacity:(Ftable.num_pairs ft) in
  let pair = Ftable.pair_id ft ~src:t0 ~dst:t1 in
  Alcotest.(check bool) "path_into aborts" false (Ftable.path_into ft store ~pair ~src:t0 ~dst:t1);
  Alcotest.(check bool) "pair left absent" false (Deadlock.Route_store.mem store ~pair)

(* ------------------------------------------------------------------ *)
(* Algorithm conformance on applicable topologies                       *)
(* ------------------------------------------------------------------ *)

let pairs_of g =
  let t = Graph.num_terminals g in
  t * (t - 1)

let test_minhop_everywhere () =
  List.iter
    (fun (name, g) ->
      let ft = expect (name ^ "/minhop") (Minhop.route g) in
      let s = stats (name ^ "/minhop") ft in
      check Alcotest.int (name ^ " pairs") (pairs_of g) s.Ftable.pairs;
      Alcotest.(check bool) (name ^ " minimal") true s.Ftable.minimal)
    [
      ("ring", Lazy.force ring5);
      ("torus", fst (Lazy.force torus44));
      ("tree", Lazy.force tree62);
      ("xgft", Lazy.force xgft_small);
      ("kautz", Lazy.force kautz23);
    ]

let test_sssp_everywhere () =
  List.iter
    (fun (name, g) ->
      let ft = expect (name ^ "/sssp") (Sssp.route g) in
      let s = stats (name ^ "/sssp") ft in
      check Alcotest.int (name ^ " pairs") (pairs_of g) s.Ftable.pairs;
      Alcotest.(check bool) (name ^ " minimal") true s.Ftable.minimal)
    [
      ("ring", Lazy.force ring5);
      ("torus", fst (Lazy.force torus44));
      ("tree", Lazy.force tree62);
      ("xgft", Lazy.force xgft_small);
      ("kautz", Lazy.force kautz23);
    ]

let test_sssp_balances_better_than_plain () =
  (* On a 2-level tree the SSSP load spread should never be worse than the
     most naive routing: compare hottest-channel load under all-to-all. *)
  let g = Lazy.force tree62 in
  let hottest ft =
    let flows = ref [] in
    Ftable.iter_pairs ft (fun ~src ~dst _ -> flows := (src, dst) :: !flows);
    let load = Array.make (Graph.num_channels g) 0 in
    List.iter
      (fun (src, dst) ->
        match Ftable.path ft ~src ~dst with
        | Some p -> Array.iter (fun c -> load.(c) <- load.(c) + 1) p
        | None -> Alcotest.fail "missing path")
      !flows;
    Array.fold_left max 0 load
  in
  let sssp = expect "sssp" (Sssp.route g) in
  let lash = expect "lash" (Lash.route g) in
  Alcotest.(check bool) "sssp hottest <= lash hottest" true (hottest sssp <= hottest lash)

let test_sssp_initial_weight_fig1 () =
  (* paper Fig. 1: with base weight 1 the accumulated balancing increments
     cause latency-increasing detours; the |V|^2 base forbids them *)
  let g = Lazy.force ring5 in
  let g8 = Topo_ring.make ~switches:8 ~terminals_per_switch:2 in
  ignore g;
  let naive = expect "sssp w=1" (Sssp.route ~initial_weight:1 g8) in
  let s_naive = stats "sssp w=1" naive in
  Alcotest.(check bool) "naive weight detours" false s_naive.Ftable.minimal;
  let proper = expect "sssp default" (Sssp.route g8) in
  let s_proper = stats "sssp default" proper in
  Alcotest.(check bool) "paper weight minimal" true s_proper.Ftable.minimal;
  Alcotest.check_raises "weight must be positive" (Invalid_argument "Sssp.route: initial_weight < 1")
    (fun () -> ignore (Sssp.route ~initial_weight:0 g8))

let test_updown_properties () =
  List.iter
    (fun (name, g) ->
      let ft = expect (name ^ "/updown") (Updown.route g) in
      let s = stats (name ^ "/updown") ft in
      check Alcotest.int (name ^ " pairs") (pairs_of g) s.Ftable.pairs;
      (* legality: along every path, no up channel after a down channel *)
      let root, up = expect "orientation" (Updown.orientation g) in
      ignore root;
      Ftable.iter_pairs ft (fun ~src:_ ~dst:_ p ->
          let gone_down = ref false in
          Array.iter
            (fun c ->
              if up.(c) then
                Alcotest.(check bool) (name ^ " up after down") false !gone_down
              else gone_down := true)
            p))
    [
      ("ring", Lazy.force ring5);
      ("torus", fst (Lazy.force torus44));
      ("tree", Lazy.force tree62);
      ("xgft", Lazy.force xgft_small);
      ("kautz", Lazy.force kautz23);
    ]

let test_updown_minimal_on_tree () =
  (* On a tree every legal path is also minimal. *)
  let g = Lazy.force tree62 in
  let ft = expect "updown" (Updown.route g) in
  let s = stats "updown" ft in
  Alcotest.(check bool) "minimal on fat tree" true s.Ftable.minimal

let test_dor_mesh_and_torus () =
  let gm, cm = Lazy.force mesh33 in
  let ftm = expect "dor/mesh" (Dor.route gm cm) in
  let sm = stats "dor/mesh" ftm in
  Alcotest.(check bool) "mesh minimal" true sm.Ftable.minimal;
  let gt, ct = Lazy.force torus44 in
  let ftt = expect "dor/torus" (Dor.route gt ct) in
  let st = stats "dor/torus" ftt in
  Alcotest.(check bool) "torus minimal" true st.Ftable.minimal;
  check Alcotest.int "torus pairs" (pairs_of gt) st.Ftable.pairs

let test_dor_dimension_order () =
  (* DOR must correct dimension 0 fully before touching dimension 1 *)
  let g, coords = Lazy.force torus44 in
  let ft = expect "dor" (Dor.route g coords) in
  let ok = ref true in
  Ftable.iter_pairs ft (fun ~src:_ ~dst:_ p ->
      let nodes = Path.node_sequence g p in
      let coords_of =
        Array.to_list nodes
        |> List.filter (fun v -> Graph.is_switch g v)
        |> List.map (fun v -> Coords.get coords v)
      in
      (* once dimension 0 stops changing it must never change again *)
      let rec check_phase = function
        | a :: (b :: _ as tl) ->
          if a.(0) = b.(0) then
            (* from here on dim 0 is fixed *)
            let rec fixed = function
              | x :: (y :: _ as tl') -> x.(0) = y.(0) && fixed tl'
              | _ -> true
            in
            fixed (a :: tl)
          else check_phase tl
        | _ -> true
      in
      if not (check_phase coords_of) then ok := false);
  Alcotest.(check bool) "dimension order respected" true !ok

let test_updown_orientation_dag () =
  let g = Lazy.force kautz23 in
  let root, up = expect "orientation" (Updown.orientation g) in
  Alcotest.(check bool) "root is a switch" true (Graph.is_switch g root);
  (* up channels strictly decrease (rank, id): no up-cycle possible; check
     by Kahn over the up-subgraph *)
  let n = Graph.num_nodes g in
  let indeg = Array.make n 0 in
  Array.iter
    (fun (c : Channel.t) -> if up.(c.id) then indeg.(c.dst) <- indeg.(c.dst) + 1)
    (Graph.channels g);
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let seen = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    incr seen;
    Array.iter
      (fun c ->
        if up.(c) then begin
          let w = (Graph.channel g c).Channel.dst in
          indeg.(w) <- indeg.(w) - 1;
          if indeg.(w) = 0 then Queue.add w q
        end)
      (Graph.out_channels g v)
  done;
  check Alcotest.int "up-relation acyclic" n !seen;
  (* every cable is oriented one way up, the other down *)
  Array.iter
    (fun (c : Channel.t) ->
      match Graph.reverse_channel g c.id with
      | Some r -> Alcotest.(check bool) "antisymmetric" true (up.(c.id) <> up.(r))
      | None -> ())
    (Graph.channels g)

let test_dor_requires_coords () =
  let g = Lazy.force ring5 in
  let c = Coords.make ~dims:[| 5 |] ~wrap:[| true |] in
  (* no coordinates recorded -> refused *)
  Alcotest.(check bool) "missing coords rejected" true (Result.is_error (Dor.route g c))

let test_dor_wraps_shortest () =
  let g, c = Lazy.force torus44 in
  let ft = expect "dor" (Dor.route g c) in
  (* pick terminals on switches (0,0) and (3,0): wrap distance 1 *)
  let term_at coord =
    let sw = Coords.node_at c coord in
    let t = ref (-1) in
    Array.iter
      (fun ch ->
        let v = (Graph.channel g ch).Channel.dst in
        if Graph.is_terminal g v && !t < 0 then t := v)
      (Graph.out_channels g sw);
    !t
  in
  let a = term_at [| 0; 0 |] and b = term_at [| 3; 0 |] in
  match Ftable.path ft ~src:a ~dst:b with
  | None -> Alcotest.fail "no path"
  | Some p -> check Alcotest.int "wrap-shortest hops" 3 (Path.length p)

let test_ftree_on_trees () =
  List.iter
    (fun (name, g) ->
      let ft = expect (name ^ "/ftree") (Ftree.route g) in
      let s = stats (name ^ "/ftree") ft in
      check Alcotest.int (name ^ " pairs") (pairs_of g) s.Ftable.pairs;
      Alcotest.(check bool) (name ^ " minimal") true s.Ftable.minimal)
    [ ("tree", Lazy.force tree62); ("xgft", Lazy.force xgft_small) ]

let test_ftree_rejects_non_trees () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " rejected") true (Result.is_error (Ftree.route g)))
    [ ("ring", Lazy.force ring5); ("torus", fst (Lazy.force torus44)); ("kautz", Lazy.force kautz23) ]

let test_ftree_levels () =
  let g = Lazy.force tree62 in
  let levels = expect "levels" (Ftree.levels g) in
  (* 6-ary 2-tree: leaf level 0 and top level 1, 6 switches each *)
  let count l = Array.fold_left (fun acc sw -> if levels.(sw) = l then acc + 1 else acc) 0 (Graph.switches g) in
  check Alcotest.int "leaves" 6 (count 0);
  check Alcotest.int "tops" 6 (count 1)

let test_lash_valid_and_layered () =
  List.iter
    (fun (name, g) ->
      let ft = expect (name ^ "/lash") (Lash.route g) in
      let s = stats (name ^ "/lash") ft in
      check Alcotest.int (name ^ " pairs") (pairs_of g) s.Ftable.pairs;
      Alcotest.(check bool) (name ^ " minimal") true s.Ftable.minimal;
      Alcotest.(check bool) (name ^ " layers sane") true (Ftable.num_layers ft >= 1))
    [ ("ring", Lazy.force ring5); ("torus", fst (Lazy.force torus44)); ("kautz", Lazy.force kautz23) ]

let test_lash_layer_budget () =
  let g = Lazy.force ring5 in
  Alcotest.(check bool) "1 layer refused on ring" true (Result.is_error (Lash.route ~max_layers:1 g))

let routing_qcheck name route =
  qtest ~count:25
    (Printf.sprintf "%s: valid minimal routes on random fabrics" name)
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:10 ~switch_radix:10 ~terminals:20 ~inter_links:16 ~rng in
      match route g with
      | Error _ -> false
      | Ok ft -> (
        match Ftable.validate ft with
        | Error _ -> false
        | Ok s -> s.Ftable.pairs = 20 * 19 && s.Ftable.minimal))

let updown_random_qcheck =
  qtest ~count:25 "updown: valid (possibly non-minimal) routes on random fabrics"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:10 ~switch_radix:10 ~terminals:20 ~inter_links:16 ~rng in
      match Updown.route g with
      | Error _ -> false
      | Ok ft -> (
        match Ftable.validate ft with
        | Error _ -> false
        | Ok s -> s.Ftable.pairs = 20 * 19))

(* ------------------------------------------------------------------ *)
(* Ftable_io round trip                                                 *)
(* ------------------------------------------------------------------ *)

let path_names g ft ~src ~dst =
  match Ftable.path ft ~src ~dst with
  | None -> Alcotest.fail "missing path"
  | Some p ->
    Array.to_list (Array.map (fun v -> (Graph.node g v).Node.name) (Path.node_sequence g p))

let test_ftable_io_roundtrip () =
  (* a fabric with parallel cables to exercise the occurrence index *)
  let b = Builder.create () in
  let s0 = Builder.add_switch b ~name:"s0" in
  let s1 = Builder.add_switch b ~name:"s1" in
  let s2 = Builder.add_switch b ~name:"s2" in
  ignore (Builder.add_link b s0 s1);
  ignore (Builder.add_link b s0 s1) (* parallel cable *);
  ignore (Builder.add_link b s1 s2);
  ignore (Builder.add_link b s2 s0);
  let _t0 = Builder.add_terminal b ~name:"t0" ~switch:s0 in
  let _t1 = Builder.add_terminal b ~name:"t1" ~switch:s1 in
  let _t2 = Builder.add_terminal b ~name:"t2" ~switch:s2 in
  let g = Builder.build b in
  let ft = expect "sssp" (Sssp.route g) in
  (* put some lanes in *)
  let ft = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.assign_layers ft)) in
  let text = Ftable_io.to_string ft in
  match Ftable_io.of_string text with
  | Error e -> Alcotest.fail e
  | Ok ft' ->
    let g' = Ftable.graph ft' in
    check Alcotest.string "algorithm kept" (Ftable.algorithm ft) (Ftable.algorithm ft');
    check Alcotest.int "layers kept" (Ftable.num_layers ft) (Ftable.num_layers ft');
    (* same routes by node names, same lanes *)
    let name_to_id = Hashtbl.create 16 in
    Array.iter (fun (nd : Node.t) -> Hashtbl.replace name_to_id nd.Node.name nd.Node.id) (Graph.nodes g');
    Array.iter
      (fun src ->
        Array.iter
          (fun dst ->
            if src <> dst then begin
              let src' = Hashtbl.find name_to_id (Graph.node g src).Node.name in
              let dst' = Hashtbl.find name_to_id (Graph.node g dst).Node.name in
              check Alcotest.(list string)
                "route preserved"
                (path_names g ft ~src ~dst)
                (path_names g' ft' ~src:src' ~dst:dst');
              check Alcotest.int "lane preserved" (Ftable.layer ft ~src ~dst)
                (Ftable.layer ft' ~src:src' ~dst:dst')
            end)
          (Graph.terminals g))
      (Graph.terminals g);
    Alcotest.(check bool) "reloaded validates" true (Result.is_ok (Ftable.validate ft'))

let test_ftable_io_save_load () =
  let g = Topo_ring.make ~switches:4 ~terminals_per_switch:1 in
  let ft = expect "sssp" (Sssp.route g) in
  let path = Filename.temp_file "routing" ".txt" in
  Ftable_io.save path ft;
  (match Ftable_io.load path with
  | Error e -> Alcotest.fail e
  | Ok ft' -> Alcotest.(check bool) "loaded validates" true (Result.is_ok (Ftable.validate ft')));
  Sys.remove path

let test_ftable_io_errors () =
  let reject text fragment =
    match Ftable_io.of_string text with
    | Ok _ -> Alcotest.failf "accepted %S" text
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got %S)" fragment msg)
        true (Testutil.contains msg fragment)
  in
  reject "" "bad header";
  reject "routing x layers zz\n" "bad layer count";
  reject "routing x layers 1\nswitch a\n" "endtopology";
  reject "routing x layers 1\nswitch a\nswitch b\nlink a b\nterminal t0 a\nendtopology\nentry a zz b 0\n" "unknown node";
  reject "routing x layers 1\nswitch a\nswitch b\nlink a b\nterminal t0 a\nendtopology\nentry b t0 a 7\n" "no cable";
  reject "routing x layers 1\nswitch a\nswitch b\nlink a b\nterminal t0 a\nendtopology\nfrobnicate\n" "unrecognized"

(* ------------------------------------------------------------------ *)
(* Opensm dumps                                                         *)
(* ------------------------------------------------------------------ *)

let test_opensm_identifiers () =
  check Alcotest.int "lid" 6 (Opensm.lid_of_node 5);
  Alcotest.(check bool) "guid distinct" true (Opensm.guid_of_node 1 <> Opensm.guid_of_node 2);
  let g = Lazy.force ring5 in
  Array.iter
    (fun (c : Channel.t) ->
      let p = Opensm.port_of_channel g c.id in
      Alcotest.(check bool) "port 1-based" true (p >= 1 && p <= Array.length (Graph.out_channels g c.src));
      (* the port resolves back to the channel *)
      check Alcotest.int "port resolves" c.id (Graph.out_channels g c.src).(p - 1))
    (Graph.channels g)

let test_opensm_lft_dump () =
  let g = Lazy.force ring5 in
  let ft = expect "sssp" (Sssp.route g) in
  let dump = Opensm.lft_dump ft in
  (* one block per switch, one entry line per (switch, terminal) pair *)
  let lines = String.split_on_char '\n' dump in
  let headers = List.filter (fun l -> Testutil.contains l "Unicast lids") lines in
  check Alcotest.int "one block per switch" (Graph.num_switches g) (List.length headers);
  let entries = List.filter (fun l -> Testutil.contains l " : (terminal") lines in
  check Alcotest.int "entry lines" (Graph.num_switches g * Graph.num_terminals g) (List.length entries)

let test_opensm_guid_table () =
  let g = Lazy.force ring5 in
  let table = Opensm.guid_table g in
  let lines = String.split_on_char '\n' table |> List.filter (fun l -> l <> "") in
  check Alcotest.int "header + nodes" (1 + Graph.num_nodes g) (List.length lines)

let test_opensm_sl_dump () =
  let g = Lazy.force ring5 in
  let ft = expect "lash" (Lash.route g) in
  let dump = Opensm.sl_dump ft in
  let rows = String.split_on_char '\n' dump |> List.filter (fun l -> l <> "" && l.[0] <> '#') in
  check Alcotest.int "one row per source" (Graph.num_terminals g) (List.length rows);
  (* each row: lid prefix + one char per destination *)
  List.iter
    (fun row ->
      let payload = List.nth (String.split_on_char ' ' row) 1 in
      check Alcotest.int "row width" (Graph.num_terminals g) (String.length payload))
    rows

let test_opensm_diff () =
  let g = Lazy.force ring5 in
  let a = expect "sssp" (Sssp.route g) in
  let same = Opensm.diff_tables a a in
  check Alcotest.int "self diff entries" 0 same.Opensm.entries_changed;
  check Alcotest.int "self diff lanes" 0 same.Opensm.lanes_changed;
  Alcotest.(check bool) "compared > 0" true (same.Opensm.entries_compared > 0);
  let b = expect "updown" (Updown.route g) in
  let d = Opensm.diff_tables a b in
  Alcotest.(check bool) "different routings differ" true (d.Opensm.entries_changed > 0);
  (* lanes: dfsssp vs sssp differ only in lanes, not entries *)
  let df = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  let d2 = Opensm.diff_tables a df in
  check Alcotest.int "same routes" 0 d2.Opensm.entries_changed;
  Alcotest.(check bool) "lanes moved" true (d2.Opensm.lanes_changed > 0);
  let other = expect "sssp" (Sssp.route (Topo_ring.make ~switches:4 ~terminals_per_switch:1)) in
  Alcotest.(check bool) "different fabrics rejected" true
    (try
       ignore (Opensm.diff_tables a other);
       false
     with Invalid_argument _ -> true)

let test_opensm_save_all () =
  let g = Lazy.force ring5 in
  let ft = expect "sssp" (Sssp.route g) in
  let dir = Filename.temp_file "opensm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let files = Opensm.save_all ~dir ft in
  check Alcotest.int "three files" 3 (List.length files);
  List.iter (fun f -> Alcotest.(check bool) (f ^ " exists") true (Sys.file_exists f)) files

let () =
  Alcotest.run "routing"
    [
      ( "dijkstra",
        [
          Alcotest.test_case "matches BFS" `Quick test_dijkstra_matches_bfs;
          Alcotest.test_case "weighted detour" `Quick test_dijkstra_weighted;
        ] );
      ( "ftable",
        [
          Alcotest.test_case "basics" `Quick test_ftable_basics;
          Alcotest.test_case "layers" `Quick test_ftable_layers;
          Alcotest.test_case "loop detection" `Quick test_ftable_loop_detection;
          Alcotest.test_case "loop bound tight" `Quick test_ftable_loop_bound_tight;
          Alcotest.test_case "cyclic table" `Quick test_ftable_cyclic_table;
        ] );
      ( "minhop",
        [
          Alcotest.test_case "valid everywhere" `Quick test_minhop_everywhere;
          routing_qcheck "minhop" Minhop.route;
        ] );
      ( "sssp",
        [
          Alcotest.test_case "valid everywhere" `Quick test_sssp_everywhere;
          Alcotest.test_case "balances" `Quick test_sssp_balances_better_than_plain;
          Alcotest.test_case "initial weight (Fig. 1)" `Quick test_sssp_initial_weight_fig1;
          routing_qcheck "sssp" Sssp.route;
        ] );
      ( "updown",
        [
          Alcotest.test_case "legal up*/down*" `Quick test_updown_properties;
          Alcotest.test_case "minimal on tree" `Quick test_updown_minimal_on_tree;
          Alcotest.test_case "orientation is a DAG" `Quick test_updown_orientation_dag;
          updown_random_qcheck;
        ] );
      ( "dor",
        [
          Alcotest.test_case "mesh and torus" `Quick test_dor_mesh_and_torus;
          Alcotest.test_case "requires coords" `Quick test_dor_requires_coords;
          Alcotest.test_case "dimension order" `Quick test_dor_dimension_order;
          Alcotest.test_case "wraps the short way" `Quick test_dor_wraps_shortest;
        ] );
      ( "ftree",
        [
          Alcotest.test_case "routes trees" `Quick test_ftree_on_trees;
          Alcotest.test_case "rejects non-trees" `Quick test_ftree_rejects_non_trees;
          Alcotest.test_case "levels" `Quick test_ftree_levels;
        ] );
      ( "ftable_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_ftable_io_roundtrip;
          Alcotest.test_case "save/load" `Quick test_ftable_io_save_load;
          Alcotest.test_case "errors" `Quick test_ftable_io_errors;
        ] );
      ( "opensm",
        [
          Alcotest.test_case "identifiers" `Quick test_opensm_identifiers;
          Alcotest.test_case "lft dump" `Quick test_opensm_lft_dump;
          Alcotest.test_case "guid table" `Quick test_opensm_guid_table;
          Alcotest.test_case "sl dump" `Quick test_opensm_sl_dump;
          Alcotest.test_case "diff" `Quick test_opensm_diff;
          Alcotest.test_case "save all" `Quick test_opensm_save_all;
        ] );
      ( "lash",
        [
          Alcotest.test_case "valid and layered" `Quick test_lash_valid_and_layered;
          Alcotest.test_case "layer budget" `Quick test_lash_layer_budget;
        ] );
    ]
