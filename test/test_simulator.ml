(* Tests for the simulator library: metrics, traffic patterns, the
   ORCS-style congestion model and the packet-level flit simulator. *)

let check = Alcotest.check

let qtest ?(count = 40) name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let feq = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_summary () =
  let s = Simulator.Metrics.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  check Alcotest.int "n" 4 s.Simulator.Metrics.n;
  check feq "min" 1.0 s.Simulator.Metrics.min;
  check feq "max" 4.0 s.Simulator.Metrics.max;
  check feq "mean" 2.5 s.Simulator.Metrics.mean;
  check feq "median" 2.0 s.Simulator.Metrics.median;
  check (Alcotest.float 1e-6) "stddev" (sqrt 1.25) s.Simulator.Metrics.stddev

let test_metrics_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check feq "p0.2" 1.0 (Simulator.Metrics.percentile 0.2 xs);
  check feq "p1" 5.0 (Simulator.Metrics.percentile 1.0 xs);
  check feq "p0" 1.0 (Simulator.Metrics.percentile 0.0 xs)

let test_metrics_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Obs.Stat.summarize: empty sample") (fun () ->
      ignore (Simulator.Metrics.summarize [||]));
  Alcotest.check_raises "bad p" (Invalid_argument "Obs.Stat.percentile: p out of range") (fun () ->
      ignore (Simulator.Metrics.percentile 1.5 [| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* Patterns                                                             *)
(* ------------------------------------------------------------------ *)

let ranks n = Array.init n (fun i -> 100 + i)

let test_bisection () =
  let rng = Rng.create 1 in
  let flows = Simulator.Patterns.random_bisection rng (ranks 10) in
  check Alcotest.int "five flows" 5 (Array.length flows);
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (a, b) ->
      Alcotest.(check bool) "no self flow" true (a <> b);
      Alcotest.(check bool) "src unique" false (Hashtbl.mem seen a);
      Alcotest.(check bool) "dst unique" false (Hashtbl.mem seen b);
      Hashtbl.replace seen a ();
      Hashtbl.replace seen b ())
    flows;
  check Alcotest.int "perfect matching covers all" 10 (Hashtbl.length seen)

let test_bisection_odd () =
  let rng = Rng.create 2 in
  let flows = Simulator.Patterns.random_bisection rng (ranks 7) in
  check Alcotest.int "three flows" 3 (Array.length flows)

let test_all_to_all () =
  let flows = Simulator.Patterns.all_to_all (ranks 5) in
  check Alcotest.int "n(n-1)" 20 (Array.length flows);
  let distinct = List.sort_uniq compare (Array.to_list flows) in
  check Alcotest.int "all distinct" 20 (List.length distinct)

let test_ring_shift () =
  let flows = Simulator.Patterns.ring_shift ~by:2 (ranks 5) in
  check Alcotest.int "n flows" 5 (Array.length flows);
  check Alcotest.(pair int int) "first" (100, 102) flows.(0);
  check Alcotest.(pair int int) "wraps" (104, 101) flows.(4);
  check Alcotest.int "zero shift empty" 0 (Array.length (Simulator.Patterns.ring_shift ~by:5 (ranks 5)));
  check Alcotest.int "negative shift" 5 (Array.length (Simulator.Patterns.ring_shift ~by:(-1) (ranks 5)))

let test_uniform_random () =
  let rng = Rng.create 3 in
  let flows = Simulator.Patterns.uniform_random rng ~flows:50 (ranks 6) in
  check Alcotest.int "requested count" 50 (Array.length flows);
  Array.iter (fun (a, b) -> Alcotest.(check bool) "no self" true (a <> b)) flows

let test_nas_bt () =
  (match Simulator.Patterns.nas_bt (ranks 10) with
  | Error msg -> Alcotest.(check bool) "rejects non-square" true (Testutil.contains msg "square")
  | Ok _ -> Alcotest.fail "10 ranks should be rejected");
  match Simulator.Patterns.nas_bt (ranks 16) with
  | Error e -> Alcotest.fail e
  | Ok flows ->
    (* 4x4 torus halo: every rank has 4 distinct neighbours *)
    check Alcotest.int "16*4 flows" 64 (Array.length flows);
    Array.iter (fun (a, b) -> Alcotest.(check bool) "no self" true (a <> b)) flows

let test_nas_bt_small_grid_dedup () =
  (* 2x2 torus: +1 and -1 neighbours coincide; dedup keeps 2 per rank *)
  match Simulator.Patterns.nas_bt (ranks 4) with
  | Error e -> Alcotest.fail e
  | Ok flows -> check Alcotest.int "deduplicated" 8 (Array.length flows)

let test_nas_ft_is_all_to_all () =
  match Simulator.Patterns.nas_ft (ranks 6) with
  | Error e -> Alcotest.fail e
  | Ok flows -> check Alcotest.int "all-to-all" 30 (Array.length flows)

let test_nas_power_of_two_kernels () =
  List.iter
    (fun (name, pat) ->
      (match pat (ranks 24) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should reject 24 ranks" name);
      match pat (ranks 16) with
      | Error e -> Alcotest.fail e
      | Ok flows ->
        Alcotest.(check bool) (name ^ " nonempty") true (Array.length flows > 0);
        Array.iter (fun (a, b) -> Alcotest.(check bool) "no self" true (a <> b)) flows)
    [ ("CG", Simulator.Patterns.nas_cg); ("MG", Simulator.Patterns.nas_mg) ]

let test_nas_lu () =
  match Simulator.Patterns.nas_lu (ranks 12) with
  | Error e -> Alcotest.fail e
  | Ok flows ->
    (* 2-D mesh NSEW without wrap: interior ranks have 4, corners 2 *)
    Alcotest.(check bool) "nonempty" true (Array.length flows > 0);
    let outdeg = Hashtbl.create 12 in
    Array.iter
      (fun (a, _) -> Hashtbl.replace outdeg a (1 + Option.value ~default:0 (Hashtbl.find_opt outdeg a)))
      flows;
    Hashtbl.iter
      (fun _ d -> Alcotest.(check bool) "degree 2..4" true (d >= 2 && d <= 4))
      outdeg

let test_adversarial_patterns () =
  (* permutations: every rank appears exactly once as src and once as dst,
     fixed points dropped *)
  let check_perm name flows n =
    let srcs = Hashtbl.create 16 and dsts = Hashtbl.create 16 in
    Array.iter
      (fun (a, b) ->
        Alcotest.(check bool) (name ^ " no self") true (a <> b);
        Alcotest.(check bool) (name ^ " src once") false (Hashtbl.mem srcs a);
        Alcotest.(check bool) (name ^ " dst once") false (Hashtbl.mem dsts b);
        Hashtbl.replace srcs a ();
        Hashtbl.replace dsts b ())
      flows;
    Alcotest.(check bool) (name ^ " size") true (Array.length flows <= n)
  in
  List.iter
    (fun (name, pattern) ->
      match pattern (ranks 16) with
      | Error e -> Alcotest.fail e
      | Ok flows -> check_perm name flows 16)
    Simulator.Patterns.adversarial;
  (* specific images *)
  (match Simulator.Patterns.bit_complement (ranks 8) with
  | Ok flows -> Alcotest.(check bool) "0 -> 7" true (Array.exists (fun f -> f = (100, 107)) flows)
  | Error e -> Alcotest.fail e);
  (match Simulator.Patterns.bit_reverse (ranks 8) with
  | Ok flows -> Alcotest.(check bool) "1 -> 4" true (Array.exists (fun f -> f = (101, 104)) flows)
  | Error e -> Alcotest.fail e);
  (match Simulator.Patterns.transpose (ranks 9) with
  | Ok flows -> Alcotest.(check bool) "1 -> 3" true (Array.exists (fun f -> f = (101, 103)) flows)
  | Error e -> Alcotest.fail e);
  (match Simulator.Patterns.tornado (ranks 6) with
  | Ok flows -> Alcotest.(check bool) "0 -> 2" true (Array.exists (fun f -> f = (100, 102)) flows)
  | Error e -> Alcotest.fail e);
  (* constraint rejections *)
  Alcotest.(check bool) "bit_complement non-pow2" true (Result.is_error (Simulator.Patterns.bit_complement (ranks 12)));
  Alcotest.(check bool) "transpose non-square" true (Result.is_error (Simulator.Patterns.transpose (ranks 12)));
  Alcotest.(check bool) "tornado tiny" true (Result.is_error (Simulator.Patterns.tornado (ranks 2)))

let test_nas_kernel_list () =
  check Alcotest.int "six kernels" 6 (List.length Simulator.Patterns.nas_kernels)

(* ------------------------------------------------------------------ *)
(* Congestion                                                           *)
(* ------------------------------------------------------------------ *)

let star_fixture () =
  (* one switch, four terminals: every route's bottleneck is an endpoint
     link, so any perfect matching has share 1.0 *)
  let g = (Clusters.odin ~scale:32 ()).Clusters.graph in
  ignore g;
  let b = Builder.create () in
  let s = Builder.add_switch b ~name:"s" in
  let ts = Array.init 4 (fun i -> Builder.add_terminal b ~name:(Printf.sprintf "t%d" i) ~switch:s) in
  (Builder.build b, ts)

let test_congestion_star () =
  let g, ts = star_fixture () in
  let ft = Result.get_ok (Routing.Minhop.route g) in
  let flows = [| (ts.(0), ts.(1)); (ts.(2), ts.(3)) |] in
  let r = Simulator.Congestion.evaluate ft ~flows in
  check Alcotest.int "flows" 2 r.Simulator.Congestion.flows;
  check Alcotest.int "max congestion" 1 r.Simulator.Congestion.max_congestion;
  check feq "mean share" 1.0 r.Simulator.Congestion.mean_share;
  check feq "completion" 1.0 r.Simulator.Congestion.completion

let test_congestion_contended () =
  let g, ts = star_fixture () in
  let ft = Result.get_ok (Routing.Minhop.route g) in
  (* two flows into the same destination share its ejection link *)
  let flows = [| (ts.(0), ts.(3)); (ts.(1), ts.(3)) |] in
  let r = Simulator.Congestion.evaluate ft ~flows in
  check Alcotest.int "max congestion" 2 r.Simulator.Congestion.max_congestion;
  check feq "mean share" 0.5 r.Simulator.Congestion.mean_share;
  check feq "min share" 0.5 r.Simulator.Congestion.min_share;
  check feq "completion" 2.0 r.Simulator.Congestion.completion

let test_congestion_ignores_self () =
  let g, ts = star_fixture () in
  let ft = Result.get_ok (Routing.Minhop.route g) in
  let r = Simulator.Congestion.evaluate ft ~flows:[| (ts.(0), ts.(0)) |] in
  check Alcotest.int "no flows" 0 r.Simulator.Congestion.flows;
  check feq "trivial completion" 0.0 r.Simulator.Congestion.completion

let test_congestion_load_counts () =
  let g = Topo_ring.make ~switches:4 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Routing.Sssp.route g) in
  let ts = Graph.terminals g in
  let flows = [| (ts.(0), ts.(1)) |] in
  let r = Simulator.Congestion.evaluate ft ~flows in
  (* one flow: every channel on its path has load exactly 1, others 0 *)
  let total = Array.fold_left ( + ) 0 r.Simulator.Congestion.channel_load in
  (match Routing.Ftable.path ft ~src:ts.(0) ~dst:ts.(1) with
  | Some p -> check Alcotest.int "load total = path length" (Array.length p) total
  | None -> Alcotest.fail "no path")

let test_ebb_star_is_full () =
  let g, _ = star_fixture () in
  let ft = Result.get_ok (Routing.Minhop.route g) in
  let rng = Rng.create 7 in
  let ebb = Simulator.Congestion.effective_bisection_bandwidth ~patterns:20 ~rng ft in
  check feq "single switch eBB" 1.0 ebb.Simulator.Congestion.samples.Simulator.Metrics.mean;
  check feq "worst pair" 1.0 ebb.Simulator.Congestion.worst_pair

let test_ebb_deterministic_given_seed () =
  let g = (Clusters.deimos ~scale:8 ()).Clusters.graph in
  let ft = Result.get_ok (Routing.Sssp.route g) in
  let run () =
    let rng = Rng.create 11 in
    (Simulator.Congestion.effective_bisection_bandwidth ~patterns:10 ~rng ft).Simulator.Congestion.samples
      .Simulator.Metrics.mean
  in
  check feq "reproducible" (run ()) (run ())

let test_hotspots_and_histogram () =
  let g, ts = star_fixture () in
  let ft = Result.get_ok (Routing.Minhop.route g) in
  let flows = [| (ts.(0), ts.(3)); (ts.(1), ts.(3)) |] in
  let hot = Simulator.Congestion.hotspots ~top:3 ft ~flows in
  check Alcotest.int "three entries" 3 (List.length hot);
  (match hot with
  | first :: _ ->
    check Alcotest.int "hottest load" 2 first.Simulator.Congestion.load;
    (* the hottest channel is the shared ejection link s -> t3 *)
    check Alcotest.string "hot src" "s" first.Simulator.Congestion.src_name;
    check Alcotest.string "hot dst" "t3" first.Simulator.Congestion.dst_name
  | [] -> Alcotest.fail "no hotspots");
  let r = Simulator.Congestion.evaluate ft ~flows in
  let hist = Simulator.Congestion.load_histogram r in
  (* flows cross 2 injection channels (load 1 each), 1 ejection (load 2);
     remaining 5 of 8 channels idle *)
  check Alcotest.(list (pair int int)) "histogram" [ (0, 5); (1, 2); (2, 1) ] hist

let test_ebb_domains_invariant () =
  let g = (Clusters.deimos ~scale:8 ()).Clusters.graph in
  let ft = Result.get_ok (Routing.Sssp.route g) in
  let run domains =
    let rng = Rng.create 11 in
    (Simulator.Congestion.effective_bisection_bandwidth ~patterns:12 ~domains ~rng ft)
      .Simulator.Congestion.samples
      .Simulator.Metrics.mean
  in
  check (Alcotest.float 1e-12) "4 domains = sequential" (run 1) (run 4)

let test_completion_time_scales () =
  let g, ts = star_fixture () in
  let ft = Result.get_ok (Routing.Minhop.route g) in
  let flows = [| (ts.(0), ts.(3)); (ts.(1), ts.(3)) |] in
  let t1 = Simulator.Congestion.completion_time ft ~flows ~bytes:1e6 ~bandwidth:1e9 in
  let t2 = Simulator.Congestion.completion_time ft ~flows ~bytes:2e6 ~bandwidth:1e9 in
  check feq "linear in bytes" (2.0 *. t1) t2;
  check feq "value" 0.002 t1;
  Alcotest.check_raises "bad bandwidth" (Invalid_argument "Congestion.completion_time") (fun () ->
      ignore (Simulator.Congestion.completion_time ft ~flows ~bytes:1.0 ~bandwidth:0.0))

(* ------------------------------------------------------------------ *)
(* Flitsim                                                              *)
(* ------------------------------------------------------------------ *)

let ring_flows g packets =
  let ts = Graph.terminals g in
  let n = Array.length ts in
  Array.init n (fun i -> (ts.(i), ts.((i + 2) mod n), packets))

let test_flitsim_sssp_ring_deadlocks () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Routing.Sssp.route g) in
  let config = { Simulator.Flitsim.default_config with num_vls = 1 } in
  match Simulator.Flitsim.run ~config ft ~flows:(ring_flows g 50) with
  | Simulator.Flitsim.Deadlocked { in_flight; _ } ->
    Alcotest.(check bool) "packets wedged" true (in_flight > 0)
  | other -> Alcotest.failf "expected deadlock, got %s" (Format.asprintf "%a" Simulator.Flitsim.pp_outcome other)

let test_flitsim_dfsssp_ring_delivers () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  match Simulator.Flitsim.run ft ~flows:(ring_flows g 50) with
  | Simulator.Flitsim.Delivered { delivered; _ } -> check Alcotest.int "all packets" 250 delivered
  | other -> Alcotest.failf "expected delivery, got %s" (Format.asprintf "%a" Simulator.Flitsim.pp_outcome other)

let test_flitsim_dfsssp_torus_delivers () =
  let g = fst (Topo_torus.torus ~dims:[| 3; 3 |] ~terminals_per_switch:1) in
  let ft = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  let ts = Graph.terminals g in
  let n = Array.length ts in
  let flows = Array.init n (fun i -> (ts.(i), ts.((i + 4) mod n), 20)) in
  match Simulator.Flitsim.run ft ~flows with
  | Simulator.Flitsim.Delivered { delivered; _ } -> check Alcotest.int "all packets" (20 * n) delivered
  | other -> Alcotest.failf "expected delivery, got %s" (Format.asprintf "%a" Simulator.Flitsim.pp_outcome other)

let test_flitsim_acyclic_routing_single_vl () =
  (* up*/down* is deadlock-free in ONE virtual lane *)
  let g = Topo_ring.make ~switches:6 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Routing.Updown.route g) in
  let config = { Simulator.Flitsim.default_config with num_vls = 1 } in
  match Simulator.Flitsim.run ~config ft ~flows:(ring_flows g 30) with
  | Simulator.Flitsim.Delivered _ -> ()
  | other -> Alcotest.failf "expected delivery, got %s" (Format.asprintf "%a" Simulator.Flitsim.pp_outcome other)

let test_flitsim_out_of_cycles () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  let config = { Simulator.Flitsim.default_config with max_cycles = 3 } in
  match Simulator.Flitsim.run ~config ft ~flows:(ring_flows g 50) with
  | Simulator.Flitsim.Out_of_cycles _ -> ()
  | other -> Alcotest.failf "expected timeout, got %s" (Format.asprintf "%a" Simulator.Flitsim.pp_outcome other)

let test_flitsim_latency () =
  (* uncontended single flow: latency = path length, every packet *)
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  let ts = Graph.terminals g in
  let hops =
    match Routing.Ftable.path ft ~src:ts.(0) ~dst:ts.(1) with
    | Some p -> Array.length p
    | None -> Alcotest.fail "no path"
  in
  match Simulator.Flitsim.run ft ~flows:[| (ts.(0), ts.(1), 1) |] with
  | Simulator.Flitsim.Delivered { latency; _ } ->
    check Alcotest.int "min latency = hops" hops latency.Simulator.Flitsim.min_cycles;
    check Alcotest.int "max latency = hops" hops latency.Simulator.Flitsim.max_cycles;
    check (Alcotest.float 1e-9) "mean" (float_of_int hops) latency.Simulator.Flitsim.mean_cycles;
    check Alcotest.int "counted" 1 latency.Simulator.Flitsim.delivered
  | other -> Alcotest.failf "expected delivery, got %s" (Format.asprintf "%a" Simulator.Flitsim.pp_outcome other)

let test_flitsim_zero_packets () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  let ts = Graph.terminals g in
  match Simulator.Flitsim.run ft ~flows:[| (ts.(0), ts.(1), 0) |] with
  | Simulator.Flitsim.Delivered { delivered; cycles; _ } ->
    check Alcotest.int "nothing to deliver" 0 delivered;
    check Alcotest.int "immediate" 0 cycles
  | other -> Alcotest.failf "expected delivery, got %s" (Format.asprintf "%a" Simulator.Flitsim.pp_outcome other)

let test_flitsim_invalid_args () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  let ts = Graph.terminals g in
  Alcotest.(check bool) "self flow rejected" true
    (try
       ignore (Simulator.Flitsim.run ft ~flows:[| (ts.(0), ts.(0), 1) |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "vl budget rejected" true
    (try
       let config = { Simulator.Flitsim.default_config with num_vls = 1 } in
       (* DFSSSP on the ring uses layer 1 somewhere *)
       ignore (Simulator.Flitsim.run ~config ft ~flows:(ring_flows g 1));
       false
     with Invalid_argument _ -> true)

let flitsim_qcheck =
  qtest ~count:10 "flitsim: dfsssp delivers on random fabrics" QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:6 ~switch_radix:8 ~terminals:12 ~inter_links:9 ~rng in
      match Dfsssp.route g with
      | Error _ -> false
      | Ok ft ->
        let ts = Graph.terminals g in
        let n = Array.length ts in
        let flows = Array.init n (fun i -> (ts.(i), ts.((i + (n / 2)) mod n), 10)) in
        let flows = Array.of_list (List.filter (fun (a, b, _) -> a <> b) (Array.to_list flows)) in
        (match Simulator.Flitsim.run ft ~flows with
        | Simulator.Flitsim.Delivered _ -> true
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* Collective                                                           *)
(* ------------------------------------------------------------------ *)

let test_collective_schedules () =
  let rk = ranks 8 in
  let a2a = Simulator.Collective.all_to_all_pairwise rk in
  check Alcotest.int "a2a rounds" 7 (List.length a2a.Simulator.Collective.rounds);
  (* union of rounds = all ordered pairs exactly once *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun round ->
      Array.iter
        (fun (a, b) ->
          Alcotest.(check bool) "pair unseen" false (Hashtbl.mem seen (a, b));
          Hashtbl.replace seen (a, b) ())
        round)
    a2a.Simulator.Collective.rounds;
  check Alcotest.int "covers all pairs" (8 * 7) (Hashtbl.length seen);
  (match Simulator.Collective.allreduce_recursive_doubling rk with
  | Ok rd ->
    check Alcotest.int "log2 rounds" 3 (List.length rd.Simulator.Collective.rounds);
    List.iter
      (fun round -> check Alcotest.int "full participation" 8 (Array.length round))
      rd.Simulator.Collective.rounds
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "rd rejects non-pow2" true
    (Result.is_error (Simulator.Collective.allreduce_recursive_doubling (ranks 6)));
  let ring = Simulator.Collective.allreduce_ring rk in
  check Alcotest.int "ring rounds" 14 (List.length ring.Simulator.Collective.rounds);
  check (Alcotest.float 1e-9) "ring chunk" (1024.0 /. 8.0)
    (ring.Simulator.Collective.bytes_per_round 0 1024.0)

let test_collective_completion () =
  let g = Topo_ring.make ~switches:4 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  let rk = Graph.terminals g in
  let sched = Simulator.Collective.all_to_all_pairwise rk in
  let t1 = Simulator.Collective.completion_time ft sched ~message_bytes:1e6 ~bandwidth:1e9 in
  let t2 = Simulator.Collective.completion_time ft sched ~message_bytes:2e6 ~bandwidth:1e9 in
  Alcotest.(check bool) "positive" true (t1 > 0.0);
  check (Alcotest.float 1e-12) "linear in bytes" (2.0 *. t1) t2;
  (* phased time is at least the flat all-to-all time (barriers only add) *)
  let flat =
    Simulator.Congestion.completion_time ft ~flows:(Simulator.Patterns.all_to_all rk) ~bytes:1e6
      ~bandwidth:1e9
  in
  Alcotest.(check bool) "phased >= flat" true (t1 >= flat -. 1e-12);
  Alcotest.check_raises "bad bandwidth" (Invalid_argument "Collective.completion_time") (fun () ->
      ignore (Simulator.Collective.completion_time ft sched ~message_bytes:1.0 ~bandwidth:0.0))

(* ------------------------------------------------------------------ *)
(* Quality                                                              *)
(* ------------------------------------------------------------------ *)

let test_quality_measure () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Routing.Sssp.route g) in
  let q = Simulator.Quality.measure ft in
  check Alcotest.int "pairs" 20 q.Simulator.Quality.pairs;
  check Alcotest.int "min hops" 3 q.Simulator.Quality.min_hops;
  check Alcotest.int "max hops" 4 q.Simulator.Quality.max_hops;
  check Alcotest.int "diameter" 4 q.Simulator.Quality.diameter_hops;
  Alcotest.(check bool) "mean in range" true
    (q.Simulator.Quality.mean_hops >= 2.0 && q.Simulator.Quality.mean_hops <= 4.0);
  Alcotest.(check bool) "load stats sane" true
    (q.Simulator.Quality.max_load >= 1 && q.Simulator.Quality.mean_load > 0.0);
  (* SSSP on a symmetric ring balances perfectly: cv = 0 *)
  check (Alcotest.float 1e-9) "ring perfectly balanced" 0.0 q.Simulator.Quality.load_cv

let test_quality_updown_worse_balance () =
  let g = Topo_xgft.make ~ms:[| 4; 4 |] ~ws:[| 2; 2 |] ~endpoints:32 in
  let q_sssp = Simulator.Quality.measure (Result.get_ok (Routing.Sssp.route g)) in
  let q_ud = Simulator.Quality.measure (Result.get_ok (Routing.Updown.route g)) in
  Alcotest.(check bool) "updown less balanced" true
    (q_ud.Simulator.Quality.load_cv >= q_sssp.Simulator.Quality.load_cv)

(* ------------------------------------------------------------------ *)
(* Eventq / Netsim                                                      *)
(* ------------------------------------------------------------------ *)

let test_eventq_ordering () =
  let q = Simulator.Eventq.create () in
  Alcotest.(check bool) "empty" true (Simulator.Eventq.is_empty q);
  Simulator.Eventq.schedule q ~at:3.0 "c";
  Simulator.Eventq.schedule q ~at:1.0 "a";
  Simulator.Eventq.schedule q ~at:2.0 "b";
  Simulator.Eventq.schedule q ~at:1.0 "a2" (* FIFO at equal time *);
  check Alcotest.int "size" 4 (Simulator.Eventq.size q);
  check Alcotest.(option (pair (float 0.0) string)) "first" (Some (1.0, "a")) (Simulator.Eventq.next q);
  check Alcotest.(option (pair (float 0.0) string)) "tie fifo" (Some (1.0, "a2")) (Simulator.Eventq.next q);
  check Alcotest.(option (pair (float 0.0) string)) "then b" (Some (2.0, "b")) (Simulator.Eventq.next q);
  check Alcotest.(option (pair (float 0.0) string)) "then c" (Some (3.0, "c")) (Simulator.Eventq.next q);
  check Alcotest.(option (pair (float 0.0) string)) "drained" None (Simulator.Eventq.next q);
  Alcotest.check_raises "nan" (Invalid_argument "Eventq.schedule: bad time") (fun () ->
      Simulator.Eventq.schedule q ~at:Float.nan "x")

let eventq_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:50 ~name:"eventq: pops in time order"
       QCheck2.Gen.(list_size (int_range 0 100) (float_bound_inclusive 1000.0))
       (fun times ->
         let q = Simulator.Eventq.create () in
         List.iteri (fun i at -> Simulator.Eventq.schedule q ~at i) times;
         let rec drain last =
           match Simulator.Eventq.next q with
           | None -> true
           | Some (at, _) -> at >= last && drain at
         in
         drain neg_infinity))

let test_netsim_single_flow_timing () =
  (* one flow, no contention: analytic check of the timing model *)
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  let ts = Graph.terminals g in
  let config =
    { Simulator.Netsim.default_config with bandwidth = 1e6; latency = 1e-5; mtu = 1000 }
  in
  (* 2500 bytes = 3 packets (1000/1000/500), path t->s->s'->t' has hops *)
  match Simulator.Netsim.run ~config ft ~flows:[| (ts.(0), ts.(1), 2500) |] with
  | Simulator.Netsim.Completed { packets; flows = st; makespan; _ } ->
    check Alcotest.int "three packets" 3 packets;
    check Alcotest.int "bytes recorded" 2500 st.(0).Simulator.Netsim.bytes;
    (* lower bound: serialization of 2500 bytes at 1 MB/s = 2.5 ms *)
    Alcotest.(check bool) "makespan above serialization bound" true (makespan >= 2.5e-3);
    (* upper bound: full store-and-forward of every packet on every hop *)
    let hops =
      match Routing.Ftable.path ft ~src:ts.(0) ~dst:ts.(1) with
      | Some p -> Array.length p
      | None -> Alcotest.fail "no path"
    in
    let worst = float_of_int (3 * hops) *. ((1000.0 /. 1e6) +. 1e-5) in
    Alcotest.(check bool) "makespan below store-and-forward bound" true (makespan <= worst);
    Alcotest.(check bool) "achieved bandwidth positive" true (Simulator.Netsim.bandwidth_of st.(0) > 0.0)
  | o -> Alcotest.failf "expected completion, got %s" (Format.asprintf "%a" Simulator.Netsim.pp_outcome o)

let test_netsim_deadlock_and_rescue () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ts = Graph.terminals g in
  let flows = Array.init 5 (fun i -> (ts.(i), ts.((i + 2) mod 5), 1 lsl 16)) in
  let config = { Simulator.Netsim.default_config with num_vls = 1 } in
  let config = { config with credits = 2 } in
  let sssp = Result.get_ok (Routing.Sssp.route g) in
  (match Simulator.Netsim.run ~config sssp ~flows with
  | Simulator.Netsim.Deadlocked { stuck; _ } -> Alcotest.(check bool) "packets stuck" true (stuck > 0)
  | o -> Alcotest.failf "expected deadlock, got %s" (Format.asprintf "%a" Simulator.Netsim.pp_outcome o));
  let df = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  match Simulator.Netsim.run df ~flows with
  | Simulator.Netsim.Completed { packets; _ } ->
    check Alcotest.int "all packets" (5 * ((1 lsl 16) / 4096)) packets
  | o -> Alcotest.failf "expected completion, got %s" (Format.asprintf "%a" Simulator.Netsim.pp_outcome o)

let test_netsim_zero_bytes () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ft = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  let ts = Graph.terminals g in
  match Simulator.Netsim.run ft ~flows:[| (ts.(0), ts.(1), 0) |] with
  | Simulator.Netsim.Completed { packets; makespan; _ } ->
    check Alcotest.int "no packets" 0 packets;
    check (Alcotest.float 0.0) "instant" 0.0 makespan
  | o -> Alcotest.failf "expected completion, got %s" (Format.asprintf "%a" Simulator.Netsim.pp_outcome o)

let test_netsim_fair_sharing () =
  (* two flows into one destination: each gets about half the wire *)
  let b = Builder.create () in
  let s = Builder.add_switch b ~name:"s" in
  let t0 = Builder.add_terminal b ~name:"t0" ~switch:s in
  let t1 = Builder.add_terminal b ~name:"t1" ~switch:s in
  let t2 = Builder.add_terminal b ~name:"t2" ~switch:s in
  let g = Builder.build b in
  let ft = Result.get_ok (Routing.Minhop.route g) in
  let bytes = 1 lsl 20 in
  let config = { Simulator.Netsim.default_config with bandwidth = 1e8 } in
  match Simulator.Netsim.run ~config ft ~flows:[| (t0, t2, bytes); (t1, t2, bytes) |] with
  | Simulator.Netsim.Completed { flows = st; makespan; _ } ->
    (* both flows share t2's ejection wire: total time ~ 2 * bytes / bw *)
    let expected = 2.0 *. float_of_int bytes /. 1e8 in
    Alcotest.(check bool) "makespan near shared-wire bound" true
      (makespan >= expected *. 0.95 && makespan <= expected *. 1.5);
    let bw0 = Simulator.Netsim.bandwidth_of st.(0) and bw1 = Simulator.Netsim.bandwidth_of st.(1) in
    Alcotest.(check bool) "fair split" true (Float.abs (bw0 -. bw1) /. (bw0 +. bw1) < 0.2)
  | o -> Alcotest.failf "expected completion, got %s" (Format.asprintf "%a" Simulator.Netsim.pp_outcome o)

let netsim_dfsssp_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:10 ~name:"netsim: dfsssp completes on random fabrics"
       QCheck2.Gen.(int_range 0 1000)
       (fun seed ->
         let rng = Rng.create seed in
         let g = Topo_random.make ~switches:6 ~switch_radix:8 ~terminals:12 ~inter_links:9 ~rng in
         match Dfsssp.route g with
         | Error _ -> false
         | Ok ft ->
           let ts = Graph.terminals g in
           let n = Array.length ts in
           let flows =
             Array.init n (fun i -> (ts.(i), ts.((i + (n / 2)) mod n), 32768))
             |> Array.to_list
             |> List.filter (fun (a, b, _) -> a <> b)
             |> Array.of_list
           in
           (match Simulator.Netsim.run ft ~flows with
           | Simulator.Netsim.Completed { packets; _ } -> packets = Array.length flows * 8
           | _ -> false)))

let () =
  Alcotest.run "simulator"
    [
      ( "metrics",
        [
          Alcotest.test_case "summary" `Quick test_metrics_summary;
          Alcotest.test_case "percentile" `Quick test_metrics_percentile;
          Alcotest.test_case "errors" `Quick test_metrics_errors;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "bisection" `Quick test_bisection;
          Alcotest.test_case "bisection odd" `Quick test_bisection_odd;
          Alcotest.test_case "all-to-all" `Quick test_all_to_all;
          Alcotest.test_case "ring shift" `Quick test_ring_shift;
          Alcotest.test_case "uniform random" `Quick test_uniform_random;
          Alcotest.test_case "nas bt" `Quick test_nas_bt;
          Alcotest.test_case "nas bt dedup" `Quick test_nas_bt_small_grid_dedup;
          Alcotest.test_case "nas ft" `Quick test_nas_ft_is_all_to_all;
          Alcotest.test_case "nas pow2 kernels" `Quick test_nas_power_of_two_kernels;
          Alcotest.test_case "nas lu" `Quick test_nas_lu;
          Alcotest.test_case "adversarial permutations" `Quick test_adversarial_patterns;
          Alcotest.test_case "kernel list" `Quick test_nas_kernel_list;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "star uncontended" `Quick test_congestion_star;
          Alcotest.test_case "star contended" `Quick test_congestion_contended;
          Alcotest.test_case "ignores self flows" `Quick test_congestion_ignores_self;
          Alcotest.test_case "load counts" `Quick test_congestion_load_counts;
          Alcotest.test_case "eBB star" `Quick test_ebb_star_is_full;
          Alcotest.test_case "eBB deterministic" `Quick test_ebb_deterministic_given_seed;
          Alcotest.test_case "eBB domain-count invariant" `Quick test_ebb_domains_invariant;
          Alcotest.test_case "hotspots and histogram" `Quick test_hotspots_and_histogram;
          Alcotest.test_case "completion time" `Quick test_completion_time_scales;
        ] );
      ( "collective",
        [
          Alcotest.test_case "schedules" `Quick test_collective_schedules;
          Alcotest.test_case "completion" `Quick test_collective_completion;
        ] );
      ( "quality",
        [
          Alcotest.test_case "measure" `Quick test_quality_measure;
          Alcotest.test_case "updown balance" `Quick test_quality_updown_worse_balance;
        ] );
      ( "eventq",
        [ Alcotest.test_case "ordering" `Quick test_eventq_ordering; eventq_qcheck ] );
      ( "netsim",
        [
          Alcotest.test_case "single flow timing" `Quick test_netsim_single_flow_timing;
          Alcotest.test_case "deadlock and rescue" `Quick test_netsim_deadlock_and_rescue;
          Alcotest.test_case "zero bytes" `Quick test_netsim_zero_bytes;
          Alcotest.test_case "fair sharing" `Quick test_netsim_fair_sharing;
          netsim_dfsssp_qcheck;
        ] );
      ( "flitsim",
        [
          Alcotest.test_case "sssp ring deadlocks" `Quick test_flitsim_sssp_ring_deadlocks;
          Alcotest.test_case "dfsssp ring delivers" `Quick test_flitsim_dfsssp_ring_delivers;
          Alcotest.test_case "dfsssp torus delivers" `Quick test_flitsim_dfsssp_torus_delivers;
          Alcotest.test_case "updown single VL" `Quick test_flitsim_acyclic_routing_single_vl;
          Alcotest.test_case "out of cycles" `Quick test_flitsim_out_of_cycles;
          Alcotest.test_case "latency accounting" `Quick test_flitsim_latency;
          Alcotest.test_case "zero packets" `Quick test_flitsim_zero_packets;
          Alcotest.test_case "invalid args" `Quick test_flitsim_invalid_args;
          flitsim_qcheck;
        ] );
    ]
