(* Cross-module property tests: structural invariants of every topology
   generator, the defining properties of destination-based routing, and
   end-to-end consistency between the analytical machinery (CDG
   acyclicity) and both packet simulators. *)

let _check = Alcotest.check

let qtest ?(count = 40) name gen prop = Testutil.qtest ~count name gen prop

let seed_gen = Testutil.seed_gen

(* ------------------------------------------------------------------ *)
(* Topology generator invariants                                        *)
(* ------------------------------------------------------------------ *)

let torus_invariants =
  qtest ~count:25 "torus: regular degree, exact counts"
    QCheck2.Gen.(pair (int_range 3 5) (int_range 3 5))
    (fun (a, b) ->
      let g, coords = Topo_torus.torus ~dims:[| a; b |] ~terminals_per_switch:1 in
      Graph.num_switches g = a * b
      && Graph.num_terminals g = a * b
      && Array.for_all (fun sw -> Graph.degree g sw = 4 + 1) (Graph.switches g)
      && Array.for_all (fun sw -> Coords.mem coords sw) (Graph.switches g)
      && Result.is_ok (Graph.validate g))

let mesh_invariants =
  qtest ~count:25 "mesh: corner/edge/interior degrees"
    QCheck2.Gen.(pair (int_range 3 5) (int_range 3 5))
    (fun (a, b) ->
      let g, coords = Topo_torus.mesh ~dims:[| a; b |] ~terminals_per_switch:0 in
      Array.for_all
        (fun sw ->
          let c = Coords.get coords sw in
          let expected =
            (if c.(0) = 0 || c.(0) = a - 1 then 1 else 2) + if c.(1) = 0 || c.(1) = b - 1 then 1 else 2
          in
          Graph.degree g sw = expected)
        (Graph.switches g))

let tree_invariants =
  qtest ~count:15 "k-ary n-tree: level populations and port counts"
    QCheck2.Gen.(pair (int_range 2 4) (int_range 2 3))
    (fun (k, n) ->
      let g = Topo_tree.make ~k ~n () in
      match Routing.Ftree.levels g with
      | Error _ -> false
      | Ok levels ->
        let count l =
          Array.fold_left (fun acc sw -> if levels.(sw) = l then acc + 1 else acc) 0 (Graph.switches g)
        in
        let per_level = Topo_tree.num_switches ~k ~n / n in
        let rec all_levels l = l >= n || (count (n - 1 - l) = per_level && all_levels (l + 1)) in
        (* note: ftree levels count from the leaves; a k-ary n-tree has n
           switch levels of equal size *)
        all_levels 0
        && Graph.num_terminals g = int_of_float (float_of_int k ** float_of_int n)
        && Result.is_ok (Graph.validate g))

let xgft_invariants =
  qtest ~count:15 "xgft: switch count matches the closed formula"
    QCheck2.Gen.(pair (pair (int_range 2 4) (int_range 2 4)) (pair (int_range 1 3) (int_range 1 3)))
    (fun ((m1, m2), (w1, w2)) ->
      let ms = [| m1; m2 |] and ws = [| w1; w2 |] in
      let g = Topo_xgft.make ~ms ~ws ~endpoints:(Topo_xgft.num_leaves ~ms * 2) in
      Graph.num_switches g = Topo_xgft.num_switches ~ms ~ws
      && Graph.num_switches g = (m1 * m2) + (m2 * w1) + (w1 * w2)
      && Graph.connected g)

let kautz_invariants =
  qtest ~count:10 "kautz: vertex count and bounded switch degree"
    QCheck2.Gen.(pair (int_range 2 3) (int_range 2 3))
    (fun (b, n) ->
      let g = Topo_kautz.make ~b ~n ~endpoints:0 in
      Graph.num_switches g = Topo_kautz.num_switches ~b ~n
      && Array.for_all (fun sw -> Graph.degree g sw <= 2 * b) (Graph.switches g)
      && Graph.connected g)

let dragonfly_invariants =
  qtest ~count:10 "dragonfly: canonical group wiring is balanced"
    QCheck2.Gen.(pair (int_range 2 4) (int_range 1 2))
    (fun (a, h) ->
      let g = Topo_dragonfly.make ~a ~p:1 ~h () in
      let groups = (a * h) + 1 in
      Graph.num_switches g = groups * a
      && Array.for_all (fun sw -> Graph.degree g sw = a - 1 + h + 1) (Graph.switches g)
      && Graph.connected g)

let hyperx_invariants =
  qtest ~count:15 "hyperx: degree = sum of (k_i - 1)"
    QCheck2.Gen.(pair (int_range 2 4) (int_range 2 4))
    (fun (a, b) ->
      let g, _ = Topo_hyperx.make ~dims:[| a; b |] ~terminals_per_switch:0 in
      Array.for_all (fun sw -> Graph.degree g sw = a - 1 + (b - 1)) (Graph.switches g)
      && 2 * Topo_hyperx.num_cables ~dims:[| a; b |] = Graph.num_channels g)

let serial_roundtrip_random =
  qtest ~count:25 "serial: canonical text form is a fixpoint" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph rng in
      let once = Serial.to_string g in
      match Serial.of_string once with
      | Error _ -> false
      | Ok g2 ->
        Serial.to_string g2 = once
        && Graph.num_channels g2 = Graph.num_channels g
        && Graph.num_terminals g2 = Graph.num_terminals g)

(* ------------------------------------------------------------------ *)
(* Destination-based routing: the defining suffix property              *)
(* ------------------------------------------------------------------ *)

(* If the route src -> dst passes through node v, its tail from v equals
   the route v would use itself (there is only one table entry per
   (node, dst)). This is what makes per-pair layer reassignment sound. *)
let suffix_property route_name route =
  qtest ~count:20 (route_name ^ ": route tails agree with the table") seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph rng in
      match route g with
      | Error _ -> false
      | Ok ft ->
        let ok = ref true in
        let terminals = Graph.terminals g in
        Array.iter
          (fun src ->
            Array.iter
              (fun dst ->
                if src <> dst && !ok then
                  match Routing.Ftable.path ft ~src ~dst with
                  | None -> ok := false
                  | Some p ->
                    let nodes = Path.node_sequence g p in
                    (* compare the tail starting at every intermediate
                       terminal or switch that is itself a terminal pair
                       endpoint: check via table-following from node *)
                    Array.iteri
                      (fun i v ->
                        if i > 0 && i < Array.length nodes - 1 && !ok then begin
                          (* follow the table from v *)
                          let rec follow node acc steps =
                            if node = dst then Some (List.rev acc)
                            else if steps > Graph.num_nodes g then None
                            else
                              match Routing.Ftable.next ft ~node ~dst with
                              | None -> None
                              | Some c -> follow (Graph.channel g c).Channel.dst (c :: acc) (steps + 1)
                          in
                          match follow v [] 0 with
                          | None -> ok := false
                          | Some tail ->
                            let expected = Array.to_list (Array.sub p i (Array.length p - i)) in
                            if tail <> expected then ok := false
                        end)
                      nodes)
              terminals)
          terminals;
        !ok)

let minhop_suffix = suffix_property "minhop" Routing.Minhop.route
let sssp_suffix = suffix_property "sssp" Routing.Sssp.route
let updown_suffix = suffix_property "updown" Routing.Updown.route

(* ------------------------------------------------------------------ *)
(* Determinism                                                          *)
(* ------------------------------------------------------------------ *)

let routing_deterministic =
  qtest ~count:15 "routing: identical tables on repeated runs" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph rng in
      List.for_all
        (fun name ->
          match (Harness.Runs.run_named name g, Harness.Runs.run_named name g) with
          | Ok a, Ok b ->
            let same = ref true in
            Routing.Ftable.iter_pairs a (fun ~src ~dst p ->
                (match Routing.Ftable.path b ~src ~dst with
                | Some p' when p' = p -> ()
                | _ -> same := false);
                if Routing.Ftable.layer a ~src ~dst <> Routing.Ftable.layer b ~src ~dst then same := false);
            !same
          | Error _, Error _ -> true
          | _ -> false)
        [ "minhop"; "sssp"; "updown"; "lash"; "dfsssp" ])

(* ------------------------------------------------------------------ *)
(* Congestion conservation                                              *)
(* ------------------------------------------------------------------ *)

let congestion_conservation =
  qtest ~count:20 "congestion: total load = total hops" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph rng in
      match Routing.Sssp.route g with
      | Error _ -> false
      | Ok ft ->
        let flows = Simulator.Patterns.random_bisection rng (Graph.terminals g) in
        let r = Simulator.Congestion.evaluate ft ~flows in
        let total_load = Array.fold_left ( + ) 0 r.Simulator.Congestion.channel_load in
        let total_hops =
          Array.fold_left
            (fun acc (src, dst) ->
              match Routing.Ftable.path ft ~src ~dst with
              | Some p -> acc + Array.length p
              | None -> acc)
            0 flows
        in
        total_load = total_hops)

(* ------------------------------------------------------------------ *)
(* Analytical <-> dynamic agreement                                     *)
(* ------------------------------------------------------------------ *)

(* Acyclic per-lane CDGs are sufficient for deadlock freedom: whenever the
   verifier says yes, both simulators must drain any workload. *)
let acyclic_implies_drain =
  qtest ~count:12 "acyclic CDG => both simulators drain" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph ~switches:7 ~switch_radix:8 ~terminals:14 ~inter_links:11 rng in
      match Dfsssp.route ~max_layers:16 g with
      | Error _ -> false
      | Ok ft ->
        Dfsssp.Verify.deadlock_free ft
        &&
        let ts = Graph.terminals g in
        let n = Array.length ts in
        let shift = 1 + Rng.int rng (n - 1) in
        let mk count =
          Array.init n (fun i -> (ts.(i), ts.((i + shift) mod n), count))
          |> Array.to_list
          |> List.filter (fun (a, b, _) -> a <> b)
          |> Array.of_list
        in
        let flit_ok =
          let config = { Simulator.Flitsim.default_config with num_vls = 16 } in
          match Simulator.Flitsim.run ~config ft ~flows:(mk 12) with
          | Simulator.Flitsim.Delivered _ -> true
          | _ -> false
        in
        let net_ok =
          let config = { Simulator.Netsim.default_config with num_vls = 16 } in
          match Simulator.Netsim.run ~config ft ~flows:(mk 16384) with
          | Simulator.Netsim.Completed _ -> true
          | _ -> false
        in
        flit_ok && net_ok)

(* ------------------------------------------------------------------ *)
(* Cycle search vs Kahn on random dependency sets                       *)
(* ------------------------------------------------------------------ *)

let cycle_vs_kahn =
  qtest ~count:30 "cycle search agrees with Kahn" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph ~switches:6 ~switch_radix:8 ~terminals:6 ~inter_links:9 rng in
      let cdg = Deadlock.Cdg.create g in
      (* random consistent 2-chains as paths *)
      for pair = 0 to 40 do
        let c1 = Rng.int rng (Graph.num_channels g) in
        let succs = Graph.out_channels g (Graph.channel g c1).Channel.dst in
        if Array.length succs > 0 then begin
          let c2 = Rng.pick rng succs in
          if c1 <> c2 then Deadlock.Cdg.add_path cdg ~pair [| c1; c2 |]
        end
      done;
      let search = Deadlock.Cycle.create cdg in
      let found = Deadlock.Cycle.find_cycle search <> None in
      found = not (Deadlock.Acyclic.is_acyclic cdg))

(* ------------------------------------------------------------------ *)
(* CSR CDG vs the naive Hashtbl reference                               *)
(* ------------------------------------------------------------------ *)

let cdg_matches_reference =
  qtest ~count:24 "CSR CDG agrees with the Hashtbl reference" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g =
        match seed mod 3 with
        | 0 -> Topo_ring.make ~switches:(4 + Rng.int rng 4) ~terminals_per_switch:1
        | 1 ->
          fst
            (Topo_torus.torus
               ~dims:[| 3 + Rng.int rng 2; 3 + Rng.int rng 2 |]
               ~terminals_per_switch:1)
        | _ -> Topo_xgft.make ~ms:[| 3; 3 |] ~ws:[| 2; 2 |] ~endpoints:(9 + Rng.int rng 10)
      in
      match Routing.Sssp.route g with
      | Error _ -> false
      | Ok ft -> (
        match Routing.Ftable.to_store ft with
        | Error _ -> false
        | Ok store ->
          let csr = Deadlock.Cdg.of_store store in
          let rc = Deadlock.Cdg_ref.create g in
          Deadlock.Route_store.iter_pairs store (fun pair ->
              Deadlock.Cdg_ref.add_path rc ~pair (Deadlock.Route_store.to_path store ~pair));
          let agree () =
            let ok = ref true in
            if Deadlock.Cdg.num_edges csr <> Deadlock.Cdg_ref.num_edges rc then ok := false;
            if Deadlock.Cdg.num_paths csr <> Deadlock.Cdg_ref.num_paths rc then ok := false;
            Deadlock.Cdg_ref.iter_edges rc (fun c1 c2 count ->
                if Deadlock.Cdg.edge_count csr ~c1 ~c2 <> count then ok := false;
                if
                  List.sort compare (Deadlock.Cdg.edge_pairs csr ~c1 ~c2)
                  <> List.sort compare (Deadlock.Cdg_ref.edge_pairs rc ~c1 ~c2)
                then ok := false);
            for c = 0 to Graph.num_channels g - 1 do
              if
                List.sort compare (Array.to_list (Deadlock.Cdg.successors csr c))
                <> List.sort compare (Array.to_list (Deadlock.Cdg_ref.successors rc c))
              then ok := false
            done;
            (* weakest-edge choice over all live edges, in a fixed order:
               identical counts must yield the identical pick *)
            let edges = ref [] in
            Deadlock.Cdg_ref.iter_edges rc (fun c1 c2 _ -> edges := (c1, c2) :: !edges);
            let edges = Array.of_list (List.sort compare !edges) in
            if Array.length edges > 0 then begin
              let expected = ref edges.(0) in
              let expected_count =
                ref (Deadlock.Cdg_ref.edge_count rc ~c1:(fst edges.(0)) ~c2:(snd edges.(0)))
              in
              Array.iter
                (fun (c1, c2) ->
                  let count = Deadlock.Cdg_ref.edge_count rc ~c1 ~c2 in
                  if count < !expected_count then begin
                    expected := (c1, c2);
                    expected_count := count
                  end)
                edges;
              if Deadlock.Heuristic.choose Deadlock.Heuristic.Weakest csr edges <> !expected then
                ok := false
            end;
            !ok
          in
          let ok = ref (agree ()) in
          (* random removals, then re-adds, must track exactly *)
          let removed = ref [] in
          Deadlock.Route_store.iter_pairs store (fun pair ->
              if Rng.int rng 2 = 0 then removed := pair :: !removed);
          List.iter
            (fun pair ->
              Deadlock.Cdg.remove_pair csr store ~pair;
              Deadlock.Cdg_ref.remove_path rc ~pair (Deadlock.Route_store.to_path store ~pair))
            !removed;
          if not (agree ()) then ok := false;
          List.iter
            (fun pair ->
              Deadlock.Cdg.add_pair csr store ~pair;
              Deadlock.Cdg_ref.add_path rc ~pair (Deadlock.Route_store.to_path store ~pair))
            !removed;
          if not (agree ()) then ok := false;
          (* compaction is invisible to every observer *)
          Deadlock.Cdg.compact csr;
          if not (agree ()) then ok := false;
          !ok))

(* ------------------------------------------------------------------ *)
(* Opensm dump consistency                                              *)
(* ------------------------------------------------------------------ *)

let sl_dump_matches_layers =
  qtest ~count:10 "opensm: SL dump encodes the layer table" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph ~switches:6 ~switch_radix:8 ~terminals:10 ~inter_links:9 rng in
      match Dfsssp.route ~max_layers:16 g with
      | Error _ -> false
      | Ok ft ->
        let dump = Routing.Opensm.sl_dump ft in
        let rows =
          String.split_on_char '\n' dump |> List.filter (fun l -> l <> "" && l.[0] <> '#')
        in
        let terminals = Graph.terminals g in
        List.length rows = Array.length terminals
        && List.for_all2
             (fun row src ->
               match String.split_on_char ' ' row with
               | [ _lid; payload ] ->
                 String.length payload = Array.length terminals
                 && Array.for_all
                      (fun j ->
                        let dst = terminals.(j) in
                        if src = dst then payload.[j] = '.'
                        else
                          let vl = Routing.Ftable.layer ft ~src ~dst in
                          payload.[j] = "0123456789abcdef".[vl])
                      (Array.init (Array.length terminals) Fun.id)
               | _ -> false)
             rows (Array.to_list terminals))

(* ------------------------------------------------------------------ *)
(* Ftable_io on random fabrics                                          *)
(* ------------------------------------------------------------------ *)

let ftable_io_random =
  qtest ~count:12 "ftable_io: routes survive the round trip" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph ~switches:7 ~switch_radix:8 ~terminals:10 ~inter_links:10 rng in
      match Dfsssp.route ~max_layers:16 g with
      | Error _ -> false
      | Ok ft -> (
        match Routing.Ftable_io.of_string (Routing.Ftable_io.to_string ft) with
        | Error _ -> false
        | Ok ft' ->
          let g' = Routing.Ftable.graph ft' in
          let by_name = Hashtbl.create 32 in
          Array.iter (fun (nd : Node.t) -> Hashtbl.replace by_name nd.name nd.id) (Graph.nodes g');
          let names gg p = Array.map (fun v -> (Graph.node gg v).Node.name) (Path.node_sequence gg p) in
          let ok = ref (Result.is_ok (Routing.Ftable.validate ft')) in
          Routing.Ftable.iter_pairs ft (fun ~src ~dst p ->
              let src' = Hashtbl.find by_name (Graph.node g src).Node.name in
              let dst' = Hashtbl.find by_name (Graph.node g dst).Node.name in
              (match Routing.Ftable.path ft' ~src:src' ~dst:dst' with
              | Some p' when names g' p' = names g p -> ()
              | _ -> ok := false);
              if Routing.Ftable.layer ft ~src ~dst <> Routing.Ftable.layer ft' ~src:src' ~dst:dst' then
                ok := false);
          !ok && Dfsssp.Verify.deadlock_free ft'))


(* ------------------------------------------------------------------ *)
(* Resumable offline sweep vs a naive restart-based reference           *)
(* ------------------------------------------------------------------ *)

(* A from-scratch reimplementation of Algorithm 2 that restarts the cycle
   search after every break (the expensive strategy the paper's resumable
   search avoids). Both must produce valid assignments; agreement on the
   layer count over random workloads is strong evidence the resumable
   bookkeeping (stack truncation, stale color reuse) is faithful. *)
let naive_offline g ~paths ~max_layers =
  let layer_of_path = Array.make (Array.length paths) 0 in
  let exception Budget in
  let rec settle vl =
    if vl >= max_layers then raise Budget
    else begin
      let cdg = Deadlock.Cdg.create g in
      Array.iteri (fun i p -> if layer_of_path.(i) = vl then Deadlock.Cdg.add_path cdg ~pair:i p) paths;
      let search = Deadlock.Cycle.create cdg in
      match Deadlock.Cycle.find_cycle search with
      | None -> ()
      | Some cycle ->
        if vl + 1 >= max_layers then raise Budget;
        let c1, c2 = Deadlock.Heuristic.choose Deadlock.Heuristic.Weakest cdg cycle in
        List.iter
          (fun pr -> if layer_of_path.(pr) = vl then layer_of_path.(pr) <- vl + 1)
          (Deadlock.Cdg.edge_pairs cdg ~c1 ~c2);
        settle vl (* full restart on the same layer *)
    end
  in
  match
    let vl = ref 0 in
    let continue = ref true in
    while !continue do
      settle !vl;
      incr vl;
      if Array.for_all (fun l -> l < !vl) layer_of_path then continue := false
    done
  with
  | () -> Some (layer_of_path, 1 + Array.fold_left max 0 layer_of_path)
  | exception Budget -> None

let resumable_matches_naive =
  qtest ~count:15 "offline sweep agrees with restart-based reference" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph ~switch_radix:8 ~inter_links:12 rng in
      match Routing.Sssp.route g with
      | Error _ -> false
      | Ok ft ->
        let paths = ref [] in
        Routing.Ftable.iter_pairs ft (fun ~src:_ ~dst:_ p -> paths := p :: !paths);
        let paths = Array.of_list (List.rev !paths) in
        (match
           ( Deadlock.Layers.assign g ~paths ~max_layers:16 ~heuristic:Deadlock.Heuristic.Weakest,
             naive_offline g ~paths ~max_layers:16 )
         with
        | Ok outcome, Some (naive_layers, naive_used) ->
          Deadlock.Acyclic.layers_acyclic g ~paths ~layer_of_path:naive_layers ~num_layers:naive_used
          && Deadlock.Acyclic.layers_acyclic g ~paths
               ~layer_of_path:outcome.Deadlock.Layers.layer_of_path
               ~num_layers:outcome.Deadlock.Layers.layers_used
          (* both strategies must land within one layer of each other *)
          && abs (outcome.Deadlock.Layers.layers_used - naive_used) <= 1
        | Error _, None -> true
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* Degradation keeps DFSSSP sound at switch granularity                 *)
(* ------------------------------------------------------------------ *)

let switch_removal_sound =
  qtest ~count:15 "dfsssp survives switch removal" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph ~switches:9 ~terminals:18 ~inter_links:16 rng in
      let victim = Rng.pick rng (Graph.switches g) in
      match Degrade.remove_switch g ~switch:victim with
      | Error _ -> true (* remainder disconnected: nothing to check *)
      | Ok g' -> (
        match Dfsssp.route ~max_layers:16 g' with
        | Error _ -> false
        | Ok ft -> (
          match Dfsssp.Verify.report ft with
          | Ok r -> r.Dfsssp.Verify.deadlock_free
          | Error _ -> false)))

(* ------------------------------------------------------------------ *)
(* The fabric manager converges under arbitrary fault schedules         *)
(* ------------------------------------------------------------------ *)

(* Whatever mix of link downs/ups, drains and a switch removal a random
   schedule throws at it, and on whichever substrate (ring, torus,
   degraded XGFT), the manager must end every run on tables that pass the
   full independent verifier: complete and deadlock-free. *)
let fabric_manager_converges =
  qtest ~count:10 "fabric manager: random fault schedules end verified" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g =
        match Rng.int rng 3 with
        | 0 -> Topo_ring.make ~switches:6 ~terminals_per_switch:1
        | 1 -> fst (Topo_torus.torus ~dims:[| 3; 3 |] ~terminals_per_switch:1)
        | _ ->
          let base = Topo_xgft.make ~ms:[| 2; 3 |] ~ws:[| 2; 2 |] ~endpoints:12 in
          fst (Degrade.remove_cables base ~rng ~count:1)
      in
      let schedule = Fabric.Schedule.generate g ~rng ~events:6 ~switch_removals:1 ~drains:1 () in
      match Fabric.Manager.create g with
      | Error _ -> false
      | Ok mgr ->
        let _ = Fabric.Manager.run mgr schedule in
        Fabric.Manager.converged mgr
        &&
        (match Dfsssp.Verify.report (Fabric.Manager.tables mgr) with
        | Ok r -> r.Dfsssp.Verify.deadlock_free
        | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Every registry engine faces the certifier                            *)
(* ------------------------------------------------------------------ *)

(* The independent certifier referees the whole line-up: on random and
   degraded fabrics every engine must either refuse with a structured
   error (the paper's "missing bar") or hand back tables the analyzer can
   judge — and an engine that claims deadlock freedom by design must walk
   away certified, never rejected. *)
let registry_engines_certify =
  qtest ~count:10 "registry: every engine certifies or refuses structurally" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g, coords =
        match Rng.int rng 3 with
        | 0 ->
          let g, coords = Topo_torus.torus ~dims:[| 3; 4 |] ~terminals_per_switch:1 in
          (fst (Degrade.remove_cables g ~rng ~count:(Rng.int rng 2)), Some coords)
        | 1 -> (Testutil.random_graph ~terminals:10 rng, None)
        | _ ->
          let base = Topo_xgft.make ~ms:[| 2; 3 |] ~ws:[| 2; 2 |] ~endpoints:12 in
          (fst (Degrade.remove_cables base ~rng ~count:1), None)
      in
      List.for_all
        (fun (a : Dfsssp.Registry.algorithm) ->
          match a.Dfsssp.Registry.run g with
          | Error msg -> msg <> "" (* a refusal must say why *)
          | Ok ft -> (
            let report = Analysis.Analyzer.analyze ft in
            match report.Analysis.Analyzer.verdict with
            | Analysis.Analyzer.Certified _ -> true
            | Analysis.Analyzer.Rejected _ -> not a.Dfsssp.Registry.deadlock_free_by_design))
        (Dfsssp.Registry.all ?coords ~max_layers:16 ()))

(* Both offline cycle-break engines must hand the analyzer certifiable
   tables on the registry's fabric mix, with the SCC engine's layer
   count within one of the DFS oracle's (DESIGN.md section 17). *)
let break_engines_certify =
  qtest ~count:10 "break engines: scc and dfs both certify, layers within one" seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let g =
        match Rng.int rng 3 with
        | 0 -> fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1)
        | 1 -> Testutil.random_graph ~terminals:10 rng
        | _ -> Topo_kautz.make ~b:2 ~n:3 ~endpoints:18
      in
      let layers engine =
        match Dfsssp.route ~engine ~max_layers:16 g with
        | Error _ -> None
        | Ok ft -> (
          let report = Analysis.Analyzer.analyze ft in
          match report.Analysis.Analyzer.verdict with
          | Analysis.Analyzer.Certified _ -> Some (Routing.Ftable.num_layers ft)
          | Analysis.Analyzer.Rejected _ -> None)
      in
      match (layers `Scc, layers `Dfs) with
      | Some scc, Some dfs -> scc <= dfs + 1
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Collective schedules partition the pair space                        *)
(* ------------------------------------------------------------------ *)

let a2a_rounds_partition =
  qtest ~count:25 "pairwise all-to-all rounds partition all ordered pairs"
    QCheck2.Gen.(int_range 2 17)
    (fun n ->
      let ranks = Array.init n (fun i -> 100 + i) in
      let sched = Simulator.Collective.all_to_all_pairwise ranks in
      let seen = Hashtbl.create 64 in
      List.for_all
        (fun round ->
          Array.for_all
            (fun (a, b) ->
              if a = b || Hashtbl.mem seen (a, b) then false
              else begin
                Hashtbl.replace seen (a, b) ();
                true
              end)
            round)
        sched.Simulator.Collective.rounds
      && Hashtbl.length seen = n * (n - 1))

(* ------------------------------------------------------------------ *)
(* Multipath planes stay minimal and spread consistently                *)
(* ------------------------------------------------------------------ *)

let multipath_sound =
  qtest ~count:10 "multipath: every plane minimal, spread paths consistent" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Testutil.random_graph ~terminals:12 ~inter_links:12 rng in
      match Dfsssp.Multipath.route ~planes:3 ~max_layers:16 g with
      | Error _ -> false
      | Ok mp ->
        Dfsssp.Multipath.deadlock_free mp
        && Array.for_all
             (fun ft ->
               match Routing.Ftable.validate ft with
               | Ok s -> s.Routing.Ftable.minimal
               | Error _ -> false)
             (Dfsssp.Multipath.planes mp)
        &&
        let flows = Simulator.Patterns.all_to_all (Graph.terminals g) in
        let paths = Dfsssp.Multipath.spread_paths mp ~flows in
        Array.for_all (fun p -> Array.length p = 0 || Path.is_consistent g p) paths)

let () =
  Alcotest.run "properties"
    [
      ( "topologies",
        [
          torus_invariants;
          mesh_invariants;
          tree_invariants;
          xgft_invariants;
          kautz_invariants;
          dragonfly_invariants;
          hyperx_invariants;
          serial_roundtrip_random;
        ] );
      ("routing", [ minhop_suffix; sssp_suffix; updown_suffix; routing_deterministic ]);
      ("congestion", [ congestion_conservation ]);
      ("simulators", [ acyclic_implies_drain ]);
      ("cdg", [ cycle_vs_kahn; resumable_matches_naive; cdg_matches_reference ]);
      ("interop", [ sl_dump_matches_layers; ftable_io_random ]);
      ("degradation", [ switch_removal_sound ]);
      ("certification", [ registry_engines_certify; break_engines_certify ]);
      ("fabric", [ fabric_manager_converges ]);
      ("collectives", [ a2a_rounds_partition ]);
      ("multipath", [ multipath_sound ]);
    ]
