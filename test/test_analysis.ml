(* Tests for the routing certifier (lib/analysis): certificate
   generation + trusted checking on the paper's topology seeds, injected
   corruption of certificates and tables mapping to stable rule ids, the
   text round trips, and the epoch-swap gate in the fabric manager. *)

let check = Alcotest.check

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let route ?(max_layers = 8) name g =
  match Harness.Runs.run_named ~max_layers name g with
  | Ok ft -> ft
  | Error msg -> Alcotest.failf "%s refused: %s" name msg

let seeds () =
  [
    ("ring8", Topo_ring.make ~switches:8 ~terminals_per_switch:1);
    ("torus4x4", fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1));
    ("xgft", Topo_xgft.make ~ms:[| 2; 4 |] ~ws:[| 1; 2 |] ~endpoints:16);
    ("dragonfly", Topo_dragonfly.make ~a:4 ~p:2 ~h:2 ());
  ]

let chan_between g a b =
  let found = ref (-1) in
  Array.iter
    (fun (c : Channel.t) -> if c.Channel.src = a && c.Channel.dst = b then found := c.Channel.id)
    (Graph.channels g);
  if !found < 0 then Alcotest.failf "no channel %d -> %d" a b;
  !found

(* Rebuild [ft] entry by entry so mutations never touch the original;
   entries in [drop] are left unset. *)
let copy_table ?(drop = []) ft =
  let g = Routing.Ftable.graph ft in
  let copy = Routing.Ftable.create g ~algorithm:(Routing.Ftable.algorithm ft) in
  let terminals = Graph.terminals g in
  Array.iter
    (fun dst ->
      for node = 0 to Graph.num_nodes g - 1 do
        match Routing.Ftable.next ft ~node ~dst with
        | Some channel when not (List.mem (node, dst) drop) ->
          Routing.Ftable.set_next copy ~node ~dst ~channel
        | _ -> ()
      done)
    terminals;
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst then Routing.Ftable.set_layer copy ~src ~dst (Routing.Ftable.layer ft ~src ~dst))
        terminals)
    terminals;
  Routing.Ftable.set_num_layers copy (Routing.Ftable.num_layers ft);
  copy

(* The paper's Fig. 2 deadlock: every route on a ring goes clockwise in a
   single layer, so the layer's CDG contains the full ring cycle. *)
let clockwise_ring ~switches =
  let g = Topo_ring.make ~switches ~terminals_per_switch:1 in
  let ft = Routing.Ftable.create g ~algorithm:"clockwise" in
  let sws = Graph.switches g in
  let n = Array.length sws in
  let switch_of t = (Graph.channel g (Graph.out_channels g t).(0)).Channel.dst in
  let index_of s =
    let idx = ref (-1) in
    Array.iteri (fun i sw -> if sw = s then idx := i) sws;
    !idx
  in
  Array.iter
    (fun dst ->
      let sd = switch_of dst in
      Array.iter
        (fun t -> if t <> dst then Routing.Ftable.set_next ft ~node:t ~dst ~channel:(chan_between g t (switch_of t)))
        (Graph.terminals g);
      Array.iter
        (fun s ->
          let channel =
            if s = sd then chan_between g s dst else chan_between g s sws.((index_of s + 1) mod n)
          in
          Routing.Ftable.set_next ft ~node:s ~dst ~channel)
        sws)
    (Graph.terminals g);
  ft

(* A (src, dst, path) with at least one switch->switch channel. *)
let long_pair ft =
  let g = Routing.Ftable.graph ft in
  let terminals = Graph.terminals g in
  let best = ref None in
  Array.iter
    (fun src ->
      Array.iter
        (fun dst ->
          if src <> dst && !best = None then
            match Routing.Ftable.path ft ~src ~dst with
            | Some p when Array.length p >= 3 -> best := Some (src, dst, p)
            | _ -> ())
        terminals)
    terminals;
  match !best with
  | Some x -> x
  | None -> Alcotest.fail "no pair with a 3+ hop route"

let has_rule findings id = Analysis.Diag.has_rule findings id

(* ------------------------------------------------------------------ *)
(* Certificates on the paper's seeds                                    *)
(* ------------------------------------------------------------------ *)

let test_certify_seeds () =
  List.iter
    (fun (name, g) ->
      let ft = route "dfsssp" g in
      match Analysis.Cert.of_table ft with
      | Error e -> Alcotest.failf "%s: generate: %s" name (Analysis.Cert.error_to_string e)
      | Ok cert ->
        check Alcotest.int (name ^ " layer count") (Routing.Ftable.num_layers ft)
          (Analysis.Cert.num_layers cert);
        (match Analysis.Cert.check_table cert ft with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "%s: check: %s" name msg))
    (seeds ())

let test_fresh_tables_clean () =
  let g = fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1) in
  List.iter
    (fun name ->
      let r = Analysis.Analyzer.analyze (route name g) in
      let fs = r.Analysis.Analyzer.findings in
      check Alcotest.int (name ^ " errors") 0 (Analysis.Diag.num_errors fs);
      check Alcotest.int (name ^ " warnings") 0 (Analysis.Diag.num_warnings fs);
      (* the only finding on a clean table is the informational slack *)
      check Alcotest.int (name ^ " findings") 1 (List.length fs);
      check Alcotest.bool (name ^ " slack info") true (has_rule fs "A010-layer-slack");
      check Alcotest.bool (name ^ " lb sound") true
        (r.Analysis.Analyzer.min_layers_lb <= r.Analysis.Analyzer.num_layers);
      check Alcotest.bool (name ^ " ok") true (Analysis.Analyzer.ok r))
    [ "dfsssp"; "lash"; "updown" ]

let test_cert_rejects_corruption () =
  let ft = route "dfsssp" (fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1)) in
  let cert =
    match Analysis.Cert.of_table ft with
    | Ok c -> c
    | Error e -> Alcotest.failf "generate: %s" (Analysis.Cert.error_to_string e)
  in
  (* swapped positions: some dependency stops ascending *)
  let swapped =
    let layers = Array.map Array.copy cert.Analysis.Cert.layers in
    Array.iter
      (fun pos ->
        let tmp = pos.(0) in
        (* reverse the whole numbering: every dependency now descends *)
        ignore tmp;
        let m = Array.length pos in
        Array.iteri (fun c p -> pos.(c) <- m - 1 - p) (Array.copy pos))
      layers;
    { cert with Analysis.Cert.layers }
  in
  check Alcotest.bool "reversed numbering rejected" true
    (Result.is_error (Analysis.Cert.check_table swapped ft));
  (* truncated numbering: wrong shape *)
  let truncated =
    {
      cert with
      Analysis.Cert.layers = Array.map (fun pos -> Array.sub pos 0 (Array.length pos - 1)) cert.Analysis.Cert.layers;
    }
  in
  check Alcotest.bool "truncated numbering rejected" true
    (Result.is_error (Analysis.Cert.check_table truncated ft));
  (* dropped layer: routes reference a layer outside the certificate *)
  let missing_layer = { cert with Analysis.Cert.layers = [| cert.Analysis.Cert.layers.(0) |] } in
  if Array.length cert.Analysis.Cert.layers > 1 then
    check Alcotest.bool "missing layer rejected" true
      (Result.is_error (Analysis.Cert.check_table missing_layer ft));
  (* duplicate position: not a permutation, some dependency ties *)
  let duplicated =
    let layers = Array.map Array.copy cert.Analysis.Cert.layers in
    Array.iter (fun pos -> if Array.length pos > 1 then pos.(1) <- pos.(0)) layers;
    { cert with Analysis.Cert.layers }
  in
  check Alcotest.bool "duplicated position rejected" true
    (Result.is_error (Analysis.Cert.check_table duplicated ft))

let test_cyclic_layer_refused () =
  let ft = clockwise_ring ~switches:8 in
  (match Analysis.Cert.of_table ft with
  | Error (Analysis.Cert.Cycle _) -> ()
  | Error e -> Alcotest.failf "expected Cycle, got %s" (Analysis.Cert.error_to_string e)
  | Ok _ -> Alcotest.fail "clockwise ring must not certify");
  let r = Analysis.Analyzer.analyze ft in
  check Alcotest.bool "rejected" false (Analysis.Analyzer.ok r);
  check Alcotest.bool "A007" true (has_rule r.Analysis.Analyzer.findings "A007-cdg-cycle")

let test_merged_layers_refused () =
  (* DFSSSP needs 2 layers on the 8-ring; forcing everything onto layer 0
     reintroduces the ring cycle. *)
  let ft = route "dfsssp" (Topo_ring.make ~switches:8 ~terminals_per_switch:1) in
  check Alcotest.bool "needs 2+ layers" true (Routing.Ftable.num_layers ft >= 2);
  let merged = copy_table ft in
  let terminals = Graph.terminals (Routing.Ftable.graph ft) in
  Array.iter
    (fun src -> Array.iter (fun dst -> if src <> dst then Routing.Ftable.set_layer merged ~src ~dst 0) terminals)
    terminals;
  Routing.Ftable.set_num_layers merged 1;
  let r = Analysis.Analyzer.analyze merged in
  check Alcotest.bool "rejected" false (Analysis.Analyzer.ok r);
  check Alcotest.bool "A007" true (has_rule r.Analysis.Analyzer.findings "A007-cdg-cycle")

let test_cert_text_roundtrip () =
  let ft = route "dfsssp" (fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1)) in
  let cert =
    match Analysis.Cert.of_table ft with
    | Ok c -> c
    | Error e -> Alcotest.failf "generate: %s" (Analysis.Cert.error_to_string e)
  in
  match Analysis.Cert.of_string (Analysis.Cert.to_string cert) with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok cert' ->
    check Alcotest.bool "identical" true (cert = cert');
    (match Analysis.Cert.check_table cert' ft with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "parsed cert fails check: %s" msg)

(* ------------------------------------------------------------------ *)
(* Linter: one deterministic corruption per rule id                     *)
(* ------------------------------------------------------------------ *)

let torus_table () = route "dfsssp" (fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1))

let test_a001_dropped_entry () =
  let ft = torus_table () in
  let _, dst, p = long_pair ft in
  let g = Routing.Ftable.graph ft in
  let hole = (Graph.channel g p.(1)).Channel.src in
  let bad = copy_table ~drop:[ (hole, dst) ] ft in
  let findings = Analysis.Lint.table bad in
  check Alcotest.bool "A001" true (has_rule findings "A001-unreachable-dest");
  check Alcotest.bool "only A001" true
    (List.for_all (fun f -> f.Analysis.Diag.rule.Analysis.Diag.id = "A001-unreachable-dest") findings)

let test_a002_two_cycle () =
  let ft = torus_table () in
  let _, dst, p = long_pair ft in
  let g = Routing.Ftable.graph ft in
  let c = p.(1) in
  let s2 = (Graph.channel g c).Channel.dst in
  let back =
    match Graph.reverse_channel g c with
    | Some r -> r
    | None -> Alcotest.fail "no reverse channel"
  in
  let bad = copy_table ft in
  Routing.Ftable.set_next bad ~node:s2 ~dst ~channel:back;
  let findings = Analysis.Lint.table bad in
  check Alcotest.bool "A002" true (has_rule findings "A002-forwarding-loop")

let test_a003_port_range () =
  (* Ftable's own setters refuse such entries; inject through the view. *)
  let ft = torus_table () in
  let g = Routing.Ftable.graph ft in
  let terminals = Graph.terminals g in
  let n0 = terminals.(0) and d0 = terminals.(1) in
  let v = Analysis.Lint.view_of_table ft in
  let bogus_out_of_range = Graph.num_channels g in
  let bad next0 =
    {
      v with
      Analysis.Lint.next =
        (fun ~node ~dst -> if node = n0 && dst = d0 then Some next0 else v.Analysis.Lint.next ~node ~dst);
    }
  in
  check Alcotest.bool "A003 (out of range)" true
    (has_rule (Analysis.Lint.run (bad bogus_out_of_range)) "A003-port-range");
  (* a real channel that does not leave n0 *)
  let foreign =
    let found = ref (-1) in
    Array.iter (fun (c : Channel.t) -> if !found < 0 && c.Channel.src <> n0 then found := c.Channel.id) (Graph.channels g);
    !found
  in
  check Alcotest.bool "A003 (foreign channel)" true (has_rule (Analysis.Lint.run (bad foreign)) "A003-port-range")

let test_a004_layer_overflow () =
  let ft = torus_table () in
  let terminals = Graph.terminals (Routing.Ftable.graph ft) in
  let bad = copy_table ft in
  Routing.Ftable.set_layer bad ~src:terminals.(0) ~dst:terminals.(1) (Routing.Ftable.num_layers bad);
  let findings = Analysis.Lint.table bad in
  check Alcotest.bool "A004" true (has_rule findings "A004-layer-transition")

let test_a005_dead_entry () =
  let ft = torus_table () in
  let g = Routing.Ftable.graph ft in
  let _, _, p = long_pair ft in
  let enabled = Array.make (Graph.num_channels g) true in
  enabled.(p.(1)) <- false;
  let g' = Graph.with_enabled g ~enabled in
  let findings = Analysis.Lint.table ~graph:g' ft in
  check Alcotest.bool "A005" true (has_rule findings "A005-dead-entry");
  check Alcotest.bool "no loop blamed" false (has_rule findings "A002-forwarding-loop")

let test_a006_hop_budget () =
  let ft = clockwise_ring ~switches:8 in
  let findings = Analysis.Lint.table ~hop_budget:`Minimal ft in
  check Alcotest.bool "A006 under `Minimal" true (has_rule findings "A006-nonminimal-hop-budget");
  (* the long way round is 7 hops vs 1 minimal: slack 2 still flags it,
     slack 6 forgives everything on an 8-ring *)
  check Alcotest.bool "A006 under `Slack 2" true
    (has_rule (Analysis.Lint.table ~hop_budget:(`Slack 2) ft) "A006-nonminimal-hop-budget");
  check Alcotest.bool "clean under `Slack 6" false
    (has_rule (Analysis.Lint.table ~hop_budget:(`Slack 6) ft) "A006-nonminimal-hop-budget");
  (* off by default: detours alone never fail the default lint *)
  check Alcotest.bool "A006 off by default" false
    (has_rule (Analysis.Lint.table ft) "A006-nonminimal-hop-budget")

let mutation_property =
  qtest ~count:25 "random mutation maps to its rule id"
    QCheck2.Gen.(pair (int_range 0 2) (int_range 0 10_000))
    (fun (kind, salt) ->
      let ft = route "dfsssp" (Topo_ring.make ~switches:6 ~terminals_per_switch:1) in
      let g = Routing.Ftable.graph ft in
      let terminals = Graph.terminals g in
      let n = Array.length terminals in
      let pick arr = arr.(salt mod Array.length arr) in
      match kind with
      | 0 ->
        (* drop a mid-route entry *)
        let src = pick terminals in
        let dst = terminals.((salt + 1 + (salt mod (n - 1))) mod n) in
        if src = dst then true
        else (
          match Routing.Ftable.path ft ~src ~dst with
          | None | Some [||] -> true
          | Some p ->
            let hole = (Graph.channel g p.(Array.length p - 1)).Channel.src in
            let bad = copy_table ~drop:[ (hole, dst) ] ft in
            has_rule (Analysis.Lint.table bad) "A001-unreachable-dest")
      | 1 ->
        (* push one route's layer past the declared count *)
        let src = pick terminals in
        let dst = terminals.((salt + 1) mod n) in
        if src = dst then true
        else begin
          let bad = copy_table ft in
          Routing.Ftable.set_layer bad ~src ~dst (Routing.Ftable.num_layers bad + (salt mod 3));
          has_rule (Analysis.Lint.table bad) "A004-layer-transition"
        end
      | _ ->
        (* no mutation: fresh tables stay clean and certified (the
           informational A010 slack finding is always present) *)
        let r = Analysis.Analyzer.analyze ft in
        Analysis.Analyzer.ok r
        && Analysis.Diag.num_errors r.Analysis.Analyzer.findings = 0
        && Analysis.Diag.num_warnings r.Analysis.Analyzer.findings = 0
        && has_rule r.Analysis.Analyzer.findings "A010-layer-slack")

(* ------------------------------------------------------------------ *)
(* Ftable_io round trip                                                 *)
(* ------------------------------------------------------------------ *)

let test_ftable_io_roundtrip_analyze () =
  let ft = torus_table () in
  let path = Filename.temp_file "cert_roundtrip" ".ftbl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Routing.Ftable_io.save path ft;
      match Routing.Ftable_io.load path with
      | Error msg -> Alcotest.failf "load: %s" msg
      | Ok ft' ->
        (* channel ids are not stable across the Serial round trip (link
           order is canonicalized), so the reloaded table earns its own
           certificate rather than reusing the original's *)
        let r = Analysis.Analyzer.analyze ft' in
        check Alcotest.int "errors" 0 (Analysis.Diag.num_errors r.Analysis.Analyzer.findings);
        check Alcotest.int "warnings" 0 (Analysis.Diag.num_warnings r.Analysis.Analyzer.findings);
        check Alcotest.bool "certified" true (Analysis.Analyzer.ok r);
        check Alcotest.int "layer count preserved" (Routing.Ftable.num_layers ft)
          (Routing.Ftable.num_layers ft'))

(* ------------------------------------------------------------------ *)
(* The epoch-swap gate                                                  *)
(* ------------------------------------------------------------------ *)

let test_epoch_gate_refuses_uncertified () =
  let epochs = Fabric.Epoch.create () in
  let bad = clockwise_ring ~switches:8 in
  (match Fabric.Epoch.try_swap epochs ~label:"bad" bad with
  | Ok _, _ -> Alcotest.fail "cyclic table must not swap in"
  | Error msg, _ ->
    check Alcotest.bool (Printf.sprintf "refusal names the certificate: %S" msg) true
      (String.length msg >= 11 && String.sub msg 0 11 = "certificate"));
  check Alcotest.int "epoch unchanged" 0 (Fabric.Epoch.epoch epochs);
  check Alcotest.bool "no active tables" true (Fabric.Epoch.active epochs = None);
  let good = route "dfsssp" (Topo_ring.make ~switches:8 ~terminals_per_switch:1) in
  (match Fabric.Epoch.try_swap epochs ~label:"good" good with
  | Ok _, _ -> ()
  | Error msg, _ -> Alcotest.failf "certified table refused: %s" msg);
  check Alcotest.int "epoch advanced" 1 (Fabric.Epoch.epoch epochs)

(* ------------------------------------------------------------------ *)
(* Existence analysis and layer lower bounds                            *)
(* ------------------------------------------------------------------ *)

(* A unidirectional ring: ring:n with only the clockwise switch->switch
   channels enabled (terminal channels stay bidirectional). The textbook
   infeasible-budget fabric: every switch-to-switch route is forced the
   same way round, so any deadlock-free routing needs ceil(n/2) layers. *)
let one_way_ring ~switches =
  let g = Topo_ring.make ~switches ~terminals_per_switch:1 in
  let sws = Graph.switches g in
  let n = Array.length sws in
  let next = Hashtbl.create n in
  Array.iteri (fun i s -> Hashtbl.replace next s sws.((i + 1) mod n)) sws;
  let enabled =
    Array.map
      (fun (c : Channel.t) ->
        if Graph.is_switch g c.Channel.src && Graph.is_switch g c.Channel.dst then
          Hashtbl.find next c.Channel.src = c.Channel.dst
        else true)
      (Graph.channels g)
  in
  Graph.with_enabled g ~enabled

let test_existence_one_way_ring () =
  let g = one_way_ring ~switches:8 in
  let ex = Analysis.Existence.analyze g in
  check Alcotest.bool "all demands routable" true (ex.Analysis.Existence.unreachable = None);
  check Alcotest.int "lb = ceil 8/2" 4 ex.Analysis.Existence.min_layers_lb;
  (match ex.Analysis.Existence.cores with
  | [ core ] ->
    check Alcotest.int "core cycle length" 8 (Array.length core.Analysis.Existence.cycle);
    check Alcotest.int "every position hosted" 8 (Array.length core.Analysis.Existence.hosts);
    check Alcotest.int "core bound" 4 core.Analysis.Existence.bound
  | cores -> Alcotest.failf "expected one clean core, got %d" (List.length cores));
  check Alcotest.bool "budget 3 infeasible" false (Analysis.Existence.feasible ex ~budget:3);
  check Alcotest.bool "budget 4 feasible" true (Analysis.Existence.feasible ex ~budget:4);
  (* odd ring: ceil 7/2 = 4 *)
  check Alcotest.int "7-ring lb" 4 (Analysis.Existence.min_layers_lb (one_way_ring ~switches:7))

let test_existence_seeds_feasible () =
  List.iter
    (fun (name, g) ->
      let ex = Analysis.Existence.analyze g in
      check Alcotest.bool (name ^ " routable") true (ex.Analysis.Existence.unreachable = None);
      (* bidirected seeds have no clean unidirectional core *)
      check Alcotest.int (name ^ " lb") 1 ex.Analysis.Existence.min_layers_lb;
      let ft = route "dfsssp" g in
      check Alcotest.bool (name ^ " lb <= achieved") true
        (ex.Analysis.Existence.min_layers_lb <= Routing.Ftable.num_layers ft))
    (seeds ())

let test_existence_unreachable () =
  (* break the one-way ring: disabling one clockwise arc leaves some
     ordered pair with no path at all — rule A008 territory *)
  let g = one_way_ring ~switches:8 in
  let sws = Graph.switches g in
  let enabled = Array.init (Graph.num_channels g) (Graph.channel_enabled g) in
  enabled.(chan_between g sws.(0) sws.(1)) <- false;
  let broken = Graph.with_enabled g ~enabled in
  let ex = Analysis.Existence.analyze broken in
  (match ex.Analysis.Existence.unreachable with
  | None -> Alcotest.fail "expected an unroutable demand"
  | Some (s, d) ->
    let dist = Graph.bfs_dist broken s in
    check Alcotest.bool "reported pair really is unroutable" true (dist.(d) = max_int));
  check Alcotest.bool "no budget helps" false (Analysis.Existence.feasible ex ~budget:64);
  (* and the analyzer surfaces it as A008 via the graph override *)
  let ft = route "dfsssp" (Topo_ring.make ~switches:8 ~terminals_per_switch:1) in
  let r = Analysis.Analyzer.analyze ~graph:broken ft in
  check Alcotest.bool "A008" true (has_rule r.Analysis.Analyzer.findings "A008-no-deadlock-free-routing");
  check Alcotest.bool "not ok" false (Analysis.Analyzer.ok r)

let test_one_way_ring_routed_above_lb () =
  (* ground truth: dfsssp really does route the one-way 8-ring, and it
     cannot beat the provable minimum of 4 layers *)
  let g = one_way_ring ~switches:8 in
  let ft = route ~max_layers:8 "dfsssp" g in
  check Alcotest.bool "uses >= 4 layers" true (Routing.Ftable.num_layers ft >= 4);
  let r = Analysis.Analyzer.analyze ft in
  check Alcotest.bool "certified" true (Analysis.Analyzer.ok r);
  check Alcotest.int "lb in report" 4 r.Analysis.Analyzer.min_layers_lb;
  check Alcotest.bool "A010 slack info" true (has_rule r.Analysis.Analyzer.findings "A010-layer-slack")

let test_a009_budget_infeasible () =
  let g = one_way_ring ~switches:8 in
  let ft = route ~max_layers:8 "dfsssp" g in
  let merged = copy_table ft in
  let terminals = Graph.terminals g in
  Array.iter
    (fun src ->
      Array.iter (fun dst -> if src <> dst then Routing.Ftable.set_layer merged ~src ~dst 0) terminals)
    terminals;
  Routing.Ftable.set_num_layers merged 1;
  let r = Analysis.Analyzer.analyze merged in
  check Alcotest.bool "A009" true (has_rule r.Analysis.Analyzer.findings "A009-layer-budget-infeasible");
  check Alcotest.bool "not ok" false (Analysis.Analyzer.ok r)

let test_epoch_gate_existence () =
  let epochs = Fabric.Epoch.create () in
  let g = one_way_ring ~switches:8 in
  let ft = route ~max_layers:8 "dfsssp" g in
  let undersized = copy_table ft in
  Routing.Ftable.set_num_layers undersized 3;
  (match Fabric.Epoch.try_swap epochs ~label:"undersized" undersized with
  | Ok _, _ -> Alcotest.fail "budget below the provable minimum must not swap in"
  | Error msg, _ ->
    check Alcotest.bool (Printf.sprintf "refusal names existence: %S" msg) true
      (String.length msg >= 9 && String.sub msg 0 9 = "existence"));
  check Alcotest.int "epoch unchanged" 0 (Fabric.Epoch.epoch epochs);
  (* the honestly-layered table passes the same gate *)
  (match Fabric.Epoch.try_swap epochs ~label:"good" ft with
  | Ok _, _ -> ()
  | Error msg, _ -> Alcotest.failf "feasible table refused: %s" msg);
  check Alcotest.int "epoch advanced" 1 (Fabric.Epoch.epoch epochs)

(* ------------------------------------------------------------------ *)
(* Counterexample witnesses                                             *)
(* ------------------------------------------------------------------ *)

let test_core_witness () =
  let g = one_way_ring ~switches:8 in
  let ex = Analysis.Existence.analyze g in
  let core = List.hd ex.Analysis.Existence.cores in
  let w =
    match Analysis.Witness.of_core g core with
    | Ok w -> w
    | Error msg -> Alcotest.failf "of_core: %s" msg
  in
  (match w.Analysis.Witness.kind with
  | Analysis.Witness.Topology_core { min_layers } -> check Alcotest.int "claimed minimum" 4 min_layers
  | Analysis.Witness.Layer_cycle _ -> Alcotest.fail "expected a core witness");
  (match Analysis.Witness.check_graph w g with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "trusted re-check: %s" msg);
  (* text round trip survives the trusted re-check too *)
  (match Analysis.Witness.of_string (Analysis.Witness.to_string w) with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok w' ->
    check Alcotest.bool "identical" true (w = w');
    (match Analysis.Witness.check_graph w' g with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "parsed witness fails re-check: %s" msg));
  let json = Analysis.Witness.to_json w in
  check Alcotest.bool "json names the kind" true (Testutil.contains json "core")

let test_core_witness_rejects_corruption () =
  let g = one_way_ring ~switches:8 in
  let ex = Analysis.Existence.analyze g in
  let w =
    match Analysis.Witness.of_core g (List.hd ex.Analysis.Existence.cores) with
    | Ok w -> w
    | Error msg -> Alcotest.failf "of_core: %s" msg
  in
  let rejected name w' =
    check Alcotest.bool name true (Result.is_error (Analysis.Witness.check_graph w' g))
  in
  (* a claim above the recomputed piercing bound *)
  rejected "inflated claim rejected"
    { w with Analysis.Witness.kind = Analysis.Witness.Topology_core { min_layers = 5 } };
  (* a claim that is not even a budget violation *)
  rejected "trivial claim rejected"
    { w with Analysis.Witness.kind = Analysis.Witness.Topology_core { min_layers = 1 } };
  (* cycle order broken: head/tail no longer chain *)
  let swapped = Array.copy w.Analysis.Witness.cycle in
  let tmp = swapped.(0) in
  swapped.(0) <- swapped.(1);
  swapped.(1) <- tmp;
  rejected "swapped cycle rejected" { w with Analysis.Witness.cycle = swapped };
  (* duplicate channel: not a simple cycle *)
  let dup = Array.copy w.Analysis.Witness.cycle in
  dup.(1) <- dup.(0);
  rejected "duplicate channel rejected" { w with Analysis.Witness.cycle = dup };
  (* a demand source that is not a terminal *)
  let bad_srcs = Array.copy w.Analysis.Witness.srcs in
  bad_srcs.(0) <- (Graph.switches g).(0);
  rejected "non-terminal demand rejected" { w with Analysis.Witness.srcs = bad_srcs };
  (* wrong graph shape *)
  rejected "channel-space mismatch rejected" { w with Analysis.Witness.num_channels = 3 };
  (* layer witnesses are not acceptable here *)
  rejected "kind mismatch rejected"
    { w with Analysis.Witness.kind = Analysis.Witness.Layer_cycle { layer = 0 } };
  (* truncated text fails to parse at all *)
  let text = Analysis.Witness.to_string w in
  let truncated = String.sub text 0 (String.rindex text 'e') in
  check Alcotest.bool "truncated text rejected" true
    (Result.is_error (Analysis.Witness.of_string truncated))

let test_layer_witness () =
  let ft = clockwise_ring ~switches:8 in
  let w =
    match Analysis.Witness.of_table ft with
    | Ok (Some w) -> w
    | Ok None -> Alcotest.fail "clockwise ring must yield a cycle witness"
    | Error msg -> Alcotest.failf "of_table: %s" msg
  in
  (match w.Analysis.Witness.kind with
  | Analysis.Witness.Layer_cycle { layer } -> check Alcotest.int "layer" 0 layer
  | Analysis.Witness.Topology_core _ -> Alcotest.fail "expected a layer witness");
  (* minimization: the 8-ring's chordless CDG cycle has all 8 arcs *)
  check Alcotest.int "minimal cycle length" 8 (Array.length w.Analysis.Witness.cycle);
  (match Analysis.Witness.check_table w ft with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "trusted re-check: %s" msg);
  (match Analysis.Witness.of_string (Analysis.Witness.to_string w) with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok w' ->
    check Alcotest.bool "round trip identical" true (w = w'));
  let rejected name w' =
    check Alcotest.bool name true (Result.is_error (Analysis.Witness.check_table w' ft))
  in
  rejected "wrong layer rejected"
    { w with Analysis.Witness.kind = Analysis.Witness.Layer_cycle { layer = 1 } };
  let bad_dsts = Array.copy w.Analysis.Witness.dsts in
  bad_dsts.(0) <- w.Analysis.Witness.srcs.(0);
  rejected "degenerate demand rejected" { w with Analysis.Witness.dsts = bad_dsts };
  rejected "kind mismatch rejected"
    { w with Analysis.Witness.kind = Analysis.Witness.Topology_core { min_layers = 2 } };
  (* a clean table has nothing to witness *)
  match Analysis.Witness.of_table (torus_table ()) with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "certified table must not yield a witness"
  | Error msg -> Alcotest.failf "of_table on clean table: %s" msg

(* Satellite: the provable lower bound never exceeds what any registry
   engine actually achieves — on random fabrics, the jittered seed mix,
   and unidirectional rings where the bound is tight. *)
let lb_never_exceeds_achieved =
  qtest ~count:10 "existence: lower bound <= layers achieved by every engine"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g =
        match seed mod 3 with
        | 0 -> Testutil.random_graph ~terminals:10 rng
        | 1 -> snd (Testutil.fabric seed)
        | _ -> one_way_ring ~switches:(5 + (seed mod 5))
      in
      let lb = Analysis.Existence.min_layers_lb g in
      lb >= 1
      && List.for_all
           (fun (a : Dfsssp.Registry.algorithm) ->
             match a.Dfsssp.Registry.run g with
             | Error _ -> true (* a refusal is not an achieved layer count *)
             | Ok ft -> (
               (* the bound constrains deadlock-free routings only, so a
                  baseline table the certifier rejects owes it nothing *)
               match Analysis.Analyzer.certify ft with
               | Error _ -> true
               | Ok _ -> lb <= Routing.Ftable.num_layers ft))
           (Dfsssp.Registry.all ~max_layers:16 ()))

(* ------------------------------------------------------------------ *)
(* Rule catalog: explanations and ASCII hygiene                         *)
(* ------------------------------------------------------------------ *)

let test_explain_catalog () =
  check Alcotest.int "catalog size" 10 (List.length Analysis.Diag.catalog);
  let ascii s = String.for_all (fun c -> Char.code c < 128) s in
  List.iter
    (fun (r : Analysis.Diag.rule) ->
      let e = Analysis.Diag.explain r in
      check Alcotest.bool (r.Analysis.Diag.id ^ " has remediation") true
        (String.length e > 0 && e <> "No remediation recorded for this rule.");
      check Alcotest.bool (r.Analysis.Diag.id ^ " title is ASCII") true (ascii r.Analysis.Diag.title);
      check Alcotest.bool (r.Analysis.Diag.id ^ " remediation is ASCII") true (ascii e);
      match Analysis.Diag.find_rule r.Analysis.Diag.id with
      | Some r' -> check Alcotest.bool (r.Analysis.Diag.id ^ " findable") true (r' == r)
      | None -> Alcotest.failf "%s missing from find_rule" r.Analysis.Diag.id)
    Analysis.Diag.catalog;
  check Alcotest.bool "unknown id misses" true (Analysis.Diag.find_rule "A999-bogus" = None)

let () =
  Alcotest.run "analysis"
    [
      ( "cert",
        [
          Alcotest.test_case "certifies dfsssp on the paper seeds" `Quick test_certify_seeds;
          Alcotest.test_case "fresh dfsssp/lash/updown tables are clean" `Quick test_fresh_tables_clean;
          Alcotest.test_case "checker rejects corrupted certificates" `Quick test_cert_rejects_corruption;
          Alcotest.test_case "cyclic layer refused (clockwise ring)" `Quick test_cyclic_layer_refused;
          Alcotest.test_case "merged layers refused" `Quick test_merged_layers_refused;
          Alcotest.test_case "certificate text round trip" `Quick test_cert_text_roundtrip;
        ] );
      ( "lint",
        [
          Alcotest.test_case "A001 dropped entry" `Quick test_a001_dropped_entry;
          Alcotest.test_case "A002 two-cycle" `Quick test_a002_two_cycle;
          Alcotest.test_case "A003 port range (via view)" `Quick test_a003_port_range;
          Alcotest.test_case "A004 layer overflow" `Quick test_a004_layer_overflow;
          Alcotest.test_case "A005 dead entry (degraded fabric)" `Quick test_a005_dead_entry;
          Alcotest.test_case "A006 hop budget" `Quick test_a006_hop_budget;
          mutation_property;
        ] );
      ( "existence",
        [
          Alcotest.test_case "one-way ring forces ceil n/2 layers" `Quick test_existence_one_way_ring;
          Alcotest.test_case "paper seeds are feasible at lb 1" `Quick test_existence_seeds_feasible;
          Alcotest.test_case "A008 unroutable demand" `Quick test_existence_unreachable;
          Alcotest.test_case "dfsssp meets the one-way-ring bound" `Quick test_one_way_ring_routed_above_lb;
          Alcotest.test_case "A009 infeasible layer budget" `Quick test_a009_budget_infeasible;
          Alcotest.test_case "epoch gate refuses infeasible budgets" `Quick test_epoch_gate_existence;
          lb_never_exceeds_achieved;
        ] );
      ( "witness",
        [
          Alcotest.test_case "core witness generates, checks, round trips" `Quick test_core_witness;
          Alcotest.test_case "checker rejects corrupted core witnesses" `Quick
            test_core_witness_rejects_corruption;
          Alcotest.test_case "layer witness generates, checks, round trips" `Quick test_layer_witness;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "every rule has an ASCII explanation" `Quick test_explain_catalog;
        ] );
      ( "integration",
        [
          Alcotest.test_case "Ftable_io save/load/analyze" `Quick test_ftable_io_roundtrip_analyze;
          Alcotest.test_case "epoch gate refuses uncertified tables" `Quick test_epoch_gate_refuses_uncertified;
        ] );
    ]
