(* The pluggable SSSP kernel contract (DESIGN.md §15), as executable
   properties. The kernel selector promises that kernel choice NEVER
   changes any observable result — trees, tables, final weights, error
   strings, deadlock certificates — only wall-clock. Every test here
   compares a kernel against the binary-heap oracle bit-for-bit:

   - per-destination trees (dist, via, settle count) agree on healthy
     and degraded fabrics, for unit and heavily skewed weights;
   - full SSSP planes agree in tables AND final channel weights;
   - [batch:1] with any kernel reproduces the sequential recurrence
     bit-for-bit, pooled or not;
   - weights outside the bucket window fall back to the heap oracle
     silently (the [spf.fallbacks] counter records it) with identical
     results;
   - DFSSSP's deadlock certificate holds under every kernel, including
     after fault injection. *)

let qtest ?(count = 16) name gen prop = Testutil.qtest ~count name gen prop

let seed_gen = Testutil.seed_gen

let fabric = Testutil.fabric

let same_tables = Testutil.same_tables

module Spf = Routing.Spf

(* Every selectable kernel; Auto resolves to one of the others but is
   exercised in its own right so the default path stays covered. *)
let kernels = Spf.all_kinds

let kernel_name k = Spf.kind_to_string k

(* Deterministic per-seed weight array: mixed magnitudes so bucket
   windows are non-trivial but in-bounds. *)
let random_weights ?(spread = 37) seed g =
  let rng = Rng.create (seed * 7919) in
  Array.init (Graph.num_channels g) (fun _ -> 1 + Rng.int rng spread)

let copy_tree (t : Spf.tree) =
  (Array.copy t.Spf.dist, Array.copy t.Spf.via, t.Spf.reached)

(* Compare a kernel's tree against the oracle's for every destination
   node of [g] under [weights]. One stamp per kernel: weights are frozen
   here, so the incremental kernel is allowed (and expected) to reuse
   switch trees across consecutive same-switch terminals. *)
let check_trees_against_oracle name g ~weights =
  let oracle = Spf.workspace ~kernel:Spf.Heap g in
  let ostamp = Spf.fresh_stamp () in
  let n = Graph.num_nodes g in
  List.iter
    (fun kernel ->
      if kernel <> Spf.Heap then begin
        let ws = Spf.workspace ~kernel g in
        let stamp = Spf.fresh_stamp () in
        for dst = 0 to n - 1 do
          let odist, ovia, oreached =
            copy_tree (Spf.compute oracle g ~weights ~stamp:ostamp ~dst)
          in
          let t = Spf.compute ws g ~weights ~stamp ~dst in
          if t.Spf.reached <> oreached then
            Alcotest.failf "%s/%s dst %d: reached %d, oracle %d" name (kernel_name kernel) dst
              t.Spf.reached oreached;
          if t.Spf.dist <> odist then
            Alcotest.failf "%s/%s dst %d: dist differs from oracle" name (kernel_name kernel) dst;
          if t.Spf.via <> ovia then
            Alcotest.failf "%s/%s dst %d: via differs from oracle" name (kernel_name kernel) dst
        done
      end)
    kernels;
  true

let tree_equivalence =
  qtest "spf: every kernel matches the heap oracle tree-for-tree" seed_gen (fun seed ->
      let name, g = fabric seed in
      check_trees_against_oracle name g ~weights:(random_weights seed g))

let degraded_tree_equivalence =
  qtest "spf: kernel equivalence survives cable faults" seed_gen (fun seed ->
      let name, g = fabric seed in
      let cables = Degrade.switch_cables g in
      let g =
        if Array.length cables = 0 then g
        else
          match Degrade.disable_cable g ~cable:cables.(seed mod Array.length cables) with
          | Ok (g', _) -> g'
          | Error _ -> g
      in
      check_trees_against_oracle name g ~weights:(random_weights seed g))

let plane_equivalence =
  qtest "sssp: kernel choice never changes tables or final weights" seed_gen (fun seed ->
      let _, g = fabric seed in
      let batch = 1 + (seed mod 16) in
      let run kernel =
        let weights = Routing.Sssp.initial_weights g in
        match Routing.Sssp.route_plane ~batch ~kernel g ~weights with
        | Ok ft -> (ft, weights)
        | Error msg -> Alcotest.failf "route_plane (%s) failed: %s" (kernel_name kernel) msg
      in
      let oft, ow = run Spf.Heap in
      List.for_all
        (fun kernel ->
          let ft, w = run kernel in
          same_tables oft ft && w = ow)
        kernels)

(* batch:1 must reproduce the historical sequential recurrence
   bit-for-bit under every kernel, with or without a persistent pool —
   and forcing the true fan-out path (auto sizing off, as this binary
   does at startup) must not change that. *)
let batch1_determinism =
  qtest "sssp: batch 1 + any kernel = sequential, bit-for-bit" seed_gen (fun seed ->
      let _, g = fabric seed in
      let seq_w = Routing.Sssp.initial_weights g in
      let seq_ft =
        match Routing.Sssp.route_plane g ~weights:seq_w with
        | Ok ft -> ft
        | Error msg -> Alcotest.failf "sequential route_plane failed: %s" msg
      in
      List.for_all
        (fun kernel ->
          let check ?domains ?pool () =
            let w = Routing.Sssp.initial_weights g in
            match Routing.Sssp.route_plane ~batch:1 ?domains ?pool ~kernel g ~weights:w with
            | Ok ft -> same_tables seq_ft ft && w = seq_w
            | Error msg -> Alcotest.failf "batch:1 (%s) failed: %s" (kernel_name kernel) msg
          in
          let pooled =
            let pool = Routing.Sssp.create_pool ~domains:2 () in
            Fun.protect
              ~finally:(fun () -> Routing.Sssp.destroy_pool pool)
              (fun () -> check ~pool ())
          in
          check () && check ~domains:2 () && pooled)
        kernels)

let fallback_counter () =
  match Obs.Registry.find_counter (Obs.Registry.default ()) "spf.fallbacks" with
  | Some c -> Obs.Counter.value c
  | None -> Alcotest.fail "spf.fallbacks counter not registered"

(* Weight spreads beyond the bucket window (> 1024 buckets) must divert
   the bucket kernel to the heap oracle — observably (the fallback
   counter moves) and harmlessly (identical trees). *)
let bucket_fallback_extreme_weights () =
  let g = fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:2) in
  let weights =
    Array.init (Graph.num_channels g) (fun c -> if c mod 7 = 0 then 1_000_000 else 1)
  in
  let before = fallback_counter () in
  Alcotest.(check bool)
    "extreme-spread trees equal oracle" true
    (check_trees_against_oracle "torus-4x4" g ~weights);
  Alcotest.(check bool) "fallback recorded" true (fallback_counter () > before);
  (* In-window spreads must NOT fall back. *)
  let tame = Array.make (Graph.num_channels g) 3 in
  let mid = fallback_counter () in
  let ws = Spf.workspace ~kernel:Spf.Bucket g in
  let stamp = Spf.fresh_stamp () in
  let t = Spf.compute ws g ~weights:tame ~stamp ~dst:(Graph.terminals g).(0) in
  Alcotest.(check int) "tame spread reaches all" (Graph.num_nodes g) t.Spf.reached;
  Alcotest.(check int) "no fallback in-window" mid (fallback_counter ())

(* Error parity: a fabric cut so routing must fail reports the same
   error string under every kernel, sequentially and batched. *)
let kernel_error_parity () =
  let g = Topo_ring.make ~switches:6 ~terminals_per_switch:2 in
  let sw = (Graph.switches g).(0) in
  let enabled =
    Array.map (fun (c : Channel.t) -> c.src <> sw && c.dst <> sw) (Graph.channels g)
  in
  let cut = Graph.with_enabled g ~enabled in
  let attempt ?batch kernel =
    match
      Routing.Sssp.route_plane ?batch ~kernel cut ~weights:(Routing.Sssp.initial_weights cut)
    with
    | Ok _ -> Alcotest.fail "routing a cut fabric succeeded"
    | Error msg -> msg
  in
  let reference = attempt Spf.Heap in
  List.iter
    (fun kernel ->
      Alcotest.(check string)
        (Printf.sprintf "sequential error (%s)" (kernel_name kernel))
        reference (attempt kernel);
      Alcotest.(check string)
        (Printf.sprintf "batched error (%s)" (kernel_name kernel))
        reference
        (attempt ~batch:4 kernel))
    kernels

(* The paper's headline property, per kernel: DFSSSP tables are
   deadlock-free, and kernel choice does not move a single entry —
   healthy or degraded. *)
let dfsssp_certifiable =
  qtest ~count:10 "dfsssp: certifiably deadlock-free under every kernel" seed_gen (fun seed ->
      let _, g = fabric seed in
      let g =
        let cables = Degrade.switch_cables g in
        if seed mod 2 = 0 || Array.length cables = 0 then g
        else
          match Degrade.disable_cable g ~cable:cables.(seed mod Array.length cables) with
          | Ok (g', _) -> g'
          | Error _ -> g
      in
      let run kernel =
        match Dfsssp.Registry.find ~kernel "dfsssp" with
        | None -> Alcotest.fail "dfsssp not registered"
        | Some algo -> (
          match algo.Dfsssp.Registry.run g with
          | Ok ft -> ft
          | Error msg -> Alcotest.failf "dfsssp (%s) failed: %s" (kernel_name kernel) msg)
      in
      let oracle = run Spf.Heap in
      Dfsssp.Verify.deadlock_free oracle
      && List.for_all
           (fun kernel ->
             let ft = run kernel in
             same_tables oracle ft && Dfsssp.Verify.deadlock_free ft)
           kernels)

(* MinHop and LASH route over hop counts: one shared stamp per run, so
   the incremental kernel reuses switch trees aggressively. Tables must
   still match the oracle's exactly. *)
let hop_engines_kernel_invariant =
  qtest ~count:10 "minhop/lash: kernel choice never changes tables" seed_gen (fun seed ->
      let _, g = fabric seed in
      let minhop kernel =
        match Routing.Minhop.route ~kernel g with
        | Ok ft -> ft
        | Error msg -> Alcotest.failf "minhop (%s) failed: %s" (kernel_name kernel) msg
      in
      let lash kernel =
        match Routing.Lash.route ~kernel g with
        | Ok ft -> ft
        | Error msg -> Alcotest.failf "lash (%s) failed: %s" (kernel_name kernel) msg
      in
      let mh = minhop Spf.Heap and ls = lash Spf.Heap in
      List.for_all
        (fun kernel -> same_tables mh (minhop kernel) && same_tables ls (lash kernel))
        kernels)

let () =
  Alcotest.run "spf kernels"
    [
      ( "equivalence",
        [
          tree_equivalence;
          degraded_tree_equivalence;
          plane_equivalence;
          hop_engines_kernel_invariant;
        ] );
      ( "determinism",
        [
          batch1_determinism;
          Alcotest.test_case "error parity" `Quick kernel_error_parity;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "bucket fallback" `Quick bucket_fallback_extreme_weights;
          dfsssp_certifiable;
        ] );
    ]
