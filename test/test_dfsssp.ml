(* End-to-end tests for the DFSSSP core library: deadlock-freedom with
   minimal SSSP routes on every topology class, the verifier, and the
   algorithm registry. *)

let check = Alcotest.check

let qtest ?(count = 30) name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let expect label = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %s" label (Dfsssp.error_to_string e)

let report label ft =
  match Dfsssp.Verify.report ft with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: %s" label e

let fixtures =
  lazy
    [
      ("ring5", Topo_ring.make ~switches:5 ~terminals_per_switch:1);
      ("ring8", Topo_ring.make ~switches:8 ~terminals_per_switch:2);
      ("torus4x4", fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:2));
      ("torus3x3x3", fst (Topo_torus.torus ~dims:[| 3; 3; 3 |] ~terminals_per_switch:1));
      ("hypercube4", fst (Topo_hypercube.make ~dim:4 ~terminals_per_switch:1));
      ("tree62", Topo_tree.make ~k:6 ~n:2 ());
      ("xgft", Topo_xgft.make ~ms:[| 4; 4 |] ~ws:[| 2; 2 |] ~endpoints:48);
      ("kautz", Topo_kautz.make ~b:2 ~n:3 ~endpoints:36);
      ("odin", (Clusters.odin ~scale:4 ()).Clusters.graph);
      ("deimos", (Clusters.deimos ~scale:8 ()).Clusters.graph);
    ]

let test_deadlock_free_everywhere () =
  List.iter
    (fun (name, g) ->
      let ft = expect name (Dfsssp.route g) in
      let r = report name ft in
      Alcotest.(check bool) (name ^ " deadlock free") true r.Dfsssp.Verify.deadlock_free;
      Alcotest.(check bool) (name ^ " minimal") true r.Dfsssp.Verify.stats.Routing.Ftable.minimal;
      Alcotest.(check bool) (name ^ " within 8 layers") true (r.Dfsssp.Verify.num_layers <= 8);
      Alcotest.(check bool)
        (name ^ " layers consistent") true
        (r.Dfsssp.Verify.max_layer_seen < r.Dfsssp.Verify.num_layers))
    (Lazy.force fixtures)

let test_paths_equal_sssp () =
  (* DFSSSP must not change SSSP's routes — only assign layers. *)
  let g = fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1) in
  let sssp = Result.get_ok (Routing.Sssp.route g) in
  let dfsssp = expect "dfsssp" (Dfsssp.route g) in
  Routing.Ftable.iter_pairs sssp (fun ~src ~dst p ->
      match Routing.Ftable.path dfsssp ~src ~dst with
      | Some p' -> check Alcotest.(array int) "same route" p p'
      | None -> Alcotest.fail "route lost")

let test_ring_needs_two_layers () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  check Alcotest.int "ring layers" 2 (expect "layers" (Dfsssp.layers_required g))

let test_tree_needs_one_layer () =
  let g = Topo_tree.make ~k:4 ~n:2 () in
  check Alcotest.int "tree layers" 1 (expect "layers" (Dfsssp.layers_required g))

let test_budget_exhaustion () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  match Dfsssp.route ~max_layers:1 g with
  | Error (Dfsssp.Layers_exhausted _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Dfsssp.error_to_string e)
  | Ok _ -> Alcotest.fail "expected exhaustion"

(* The paper's VL figures must not depend on the break engine: on the
   Fig. 9 random-topology family and the Fig. 10 real systems, the SCC
   engine reproduces the DFS oracle's layer counts exactly — same CDGs,
   same heuristic, same eviction order within each component. *)
let test_fig_layer_parity () =
  let parity name g =
    let vl engine = expect name (Dfsssp.layers_required ~engine ~max_layers:64 g) in
    check Alcotest.int (name ^ ": scc matches dfs") (vl `Dfs) (vl `Scc)
  in
  for t = 0 to 2 do
    let rng = Rng.create ((7 * 10007) + (t * 31)) in
    let g = Topo_random.make ~switches:32 ~switch_radix:16 ~terminals:64 ~inter_links:80 ~rng in
    parity (Printf.sprintf "fig9 random %d" t) g
  done;
  List.iter
    (fun (s : Clusters.system) -> parity ("fig10 " ^ s.Clusters.name) s.Clusters.graph)
    (Clusters.all ~scale:16 ())

let test_variants_and_heuristics () =
  let g = fst (Topo_torus.torus ~dims:[| 3; 3 |] ~terminals_per_switch:2) in
  List.iter
    (fun (label, variant) ->
      List.iter
        (fun h ->
          let ft = expect label (Dfsssp.route ~variant ~heuristic:h g) in
          let r = report label ft in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s deadlock free" label (Deadlock.Heuristic.to_string h))
            true r.Dfsssp.Verify.deadlock_free)
        Deadlock.Heuristic.all)
    [ ("offline", Dfsssp.Offline); ("online", Dfsssp.Online) ]

let test_balance_spreads () =
  let g = fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1) in
  let plain = expect "plain" (Dfsssp.route ~max_layers:8 g) in
  let balanced = expect "balanced" (Dfsssp.route ~max_layers:8 ~balance:true g) in
  let r = report "balanced" balanced in
  Alcotest.(check bool) "balanced still deadlock free" true r.Dfsssp.Verify.deadlock_free;
  Alcotest.(check bool) "balance uses more layers" true
    (Routing.Ftable.num_layers balanced >= Routing.Ftable.num_layers plain);
  check Alcotest.int "balance fills the budget" 8 (Routing.Ftable.num_layers balanced)

let test_weakest_not_worse_than_heaviest () =
  (* paper Section IV: weakest-edge needs the fewest layers; check the
     weaker, stable claim weakest <= heaviest on a batch of seeds *)
  let worse = ref 0 in
  for seed = 0 to 9 do
    let rng = Rng.create (1000 + seed) in
    let g = Topo_random.make ~switches:12 ~switch_radix:12 ~terminals:24 ~inter_links:20 ~rng in
    let layers h = expect "h" (Dfsssp.layers_required ~heuristic:h ~max_layers:32 g) in
    if layers Deadlock.Heuristic.Weakest > layers Deadlock.Heuristic.Heaviest then incr worse
  done;
  Alcotest.(check bool) "weakest rarely worse" true (!worse <= 2)

let dfsssp_random_qcheck =
  qtest "dfsssp: deadlock-free minimal routing on random fabrics" QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Topo_random.make ~switches:10 ~switch_radix:10 ~terminals:20 ~inter_links:16 ~rng in
      match Dfsssp.route ~max_layers:16 g with
      | Error _ -> false
      | Ok ft -> (
        match Dfsssp.Verify.report ft with
        | Error _ -> false
        | Ok r ->
          r.Dfsssp.Verify.deadlock_free && r.Dfsssp.Verify.stats.Routing.Ftable.minimal
          && r.Dfsssp.Verify.stats.Routing.Ftable.pairs = 20 * 19))

let dfsssp_torus_layers_qcheck =
  qtest ~count:8 "dfsssp: small layer count on tori" QCheck2.Gen.(int_range 3 5)
    (fun k ->
      (* measured: 3x3 -> 1 (ties avoid the wrap cycle), 4x4 -> 2, 5x5 -> 3;
         the requirement grows with the torus radius *)
      let g = fst (Topo_torus.torus ~dims:[| k; k |] ~terminals_per_switch:1) in
      match Dfsssp.layers_required ~max_layers:8 g with
      | Error _ -> false
      | Ok l -> l >= 1 && l <= k - 2 + 1)

(* ------------------------------------------------------------------ *)
(* Multipath                                                            *)
(* ------------------------------------------------------------------ *)

let test_multipath_basics () =
  let g = fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1) in
  match Dfsssp.Multipath.route ~planes:2 ~max_layers:16 g with
  | Error e -> Alcotest.fail (Dfsssp.error_to_string e)
  | Ok mp ->
    check Alcotest.int "two planes" 2 (Array.length (Dfsssp.Multipath.planes mp));
    Alcotest.(check bool) "jointly deadlock free" true (Dfsssp.Multipath.deadlock_free mp);
    (* every plane individually routes everything, minimally *)
    Array.iter
      (fun ft ->
        match Routing.Ftable.validate ft with
        | Ok s -> Alcotest.(check bool) "plane minimal" true s.Routing.Ftable.minimal
        | Error e -> Alcotest.fail e)
      (Dfsssp.Multipath.planes mp);
    (* planes differ on at least one route (diversity) *)
    let ts = Graph.terminals g in
    let differs = ref false in
    Array.iter
      (fun src ->
        Array.iter
          (fun dst ->
            if src <> dst then begin
              let p0 = Dfsssp.Multipath.path mp ~plane:0 ~src ~dst in
              let p1 = Dfsssp.Multipath.path mp ~plane:1 ~src ~dst in
              if p0 <> p1 then differs := true
            end)
          ts)
      ts;
    Alcotest.(check bool) "planes diverse" true !differs;
    (* spread_paths shape *)
    let flows = [| (ts.(0), ts.(1)); (ts.(1), ts.(2)); (ts.(0), ts.(0)) |] in
    let paths = Dfsssp.Multipath.spread_paths mp ~flows in
    check Alcotest.int "one path per flow" 3 (Array.length paths);
    check Alcotest.int "self flow empty" 0 (Array.length paths.(2));
    Alcotest.check_raises "plane range" (Invalid_argument "Multipath.path: plane out of range")
      (fun () -> ignore (Dfsssp.Multipath.path mp ~plane:9 ~src:ts.(0) ~dst:ts.(1)))

let test_multipath_joint_layers () =
  (* the joint lane bill can exceed a single plane's *)
  let g = fst (Topo_torus.torus ~dims:[| 5; 5 |] ~terminals_per_switch:1) in
  let single = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route ~max_layers:16 g)) in
  match Dfsssp.Multipath.route ~planes:2 ~max_layers:16 g with
  | Error e -> Alcotest.fail (Dfsssp.error_to_string e)
  | Ok mp ->
    Alcotest.(check bool) "joint >= single" true
      (Dfsssp.Multipath.num_layers mp >= Routing.Ftable.num_layers single);
    Alcotest.(check bool) "invalid planes" true
      (try
         ignore (Dfsssp.Multipath.route ~planes:0 g);
         false
       with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Verify                                                               *)
(* ------------------------------------------------------------------ *)

let test_verify_parallel_agrees () =
  let g = fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1) in
  let df = Result.get_ok (Result.map_error Dfsssp.error_to_string (Dfsssp.route g)) in
  Alcotest.(check bool) "parallel verify true" true (Dfsssp.Verify.deadlock_free ~domains:4 df);
  let sssp = Result.get_ok (Routing.Sssp.route g) in
  Alcotest.(check bool) "parallel verify false" false (Dfsssp.Verify.deadlock_free ~domains:4 sssp)

let test_verify_flags_cyclic () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let sssp = Result.get_ok (Routing.Sssp.route g) in
  Alcotest.(check bool) "sssp on ring is not deadlock free" false (Dfsssp.Verify.deadlock_free sssp);
  let r = report "sssp" sssp in
  Alcotest.(check bool) "report agrees" false r.Dfsssp.Verify.deadlock_free

let test_verify_error_on_incomplete () =
  let g = Topo_ring.make ~switches:5 ~terminals_per_switch:1 in
  let ft = Routing.Ftable.create g ~algorithm:"empty" in
  Alcotest.(check bool) "incomplete table rejected" true (Result.is_error (Dfsssp.Verify.report ft))

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let test_registry_contents () =
  let names = List.map (fun a -> a.Dfsssp.Registry.name) (Dfsssp.Registry.all ()) in
  List.iter
    (fun expected -> Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [ "minhop"; "updown"; "ftree"; "dor"; "lash"; "sssp"; "dfsssp"; "dfsssp-online"; "dfminhop"; "dfdor" ];
  check Alcotest.int "count" 10 (List.length names)

let test_registry_find () =
  (match Dfsssp.Registry.find "DFSSSP" with
  | Some a -> check Alcotest.string "case-insensitive" "dfsssp" a.Dfsssp.Registry.name
  | None -> Alcotest.fail "dfsssp not found");
  Alcotest.(check bool) "unknown" true (Dfsssp.Registry.find "nonesuch" = None)

let test_registry_dor_needs_coords () =
  let g, coords = Topo_torus.torus ~dims:[| 3; 3 |] ~terminals_per_switch:1 in
  let without = Option.get (Dfsssp.Registry.find "dor") in
  Alcotest.(check bool) "refused without coords" true (Result.is_error (without.Dfsssp.Registry.run g));
  let with_coords = Option.get (Dfsssp.Registry.find ~coords "dor") in
  Alcotest.(check bool) "works with coords" true (Result.is_ok (with_coords.Dfsssp.Registry.run g))

let test_hardened_routings () =
  (* assign_layers makes any base routing deadlock-free: DOR on a torus
     (cyclic without it) and MinHop on a dragonfly both pass the verifier *)
  let g, coords = Topo_torus.torus ~dims:[| 5; 5 |] ~terminals_per_switch:1 in
  let dfdor = Option.get (Dfsssp.Registry.find ~coords "dfdor") in
  (match dfdor.Dfsssp.Registry.run g with
  | Error e -> Alcotest.fail e
  | Ok ft ->
    Alcotest.(check bool) "dfdor deadlock free" true (Dfsssp.Verify.deadlock_free ft);
    Alcotest.(check bool) "dfdor layered" true (Routing.Ftable.num_layers ft >= 2);
    (* plain dor on the same torus is cyclic *)
    let dor = Option.get (Dfsssp.Registry.find ~coords "dor") in
    (match dor.Dfsssp.Registry.run g with
    | Ok plain -> Alcotest.(check bool) "plain dor cyclic" false (Dfsssp.Verify.deadlock_free plain)
    | Error e -> Alcotest.fail e));
  let df = Topo_dragonfly.make ~a:4 ~p:2 ~h:2 () in
  let dfminhop = Option.get (Dfsssp.Registry.find "dfminhop") in
  (match dfminhop.Dfsssp.Registry.run df with
  | Error e -> Alcotest.fail e
  | Ok ft -> Alcotest.(check bool) "dfminhop deadlock free" true (Dfsssp.Verify.deadlock_free ft))

let test_route_min_layers () =
  let g = fst (Topo_torus.torus ~dims:[| 5; 5 |] ~terminals_per_switch:1) in
  match Dfsssp.route_min_layers g with
  | Error e -> Alcotest.fail (Dfsssp.error_to_string e)
  | Ok (ft, winner) ->
    Alcotest.(check bool) "deadlock free" true (Dfsssp.Verify.deadlock_free ft);
    (* the winner is at least as good as every single heuristic *)
    List.iter
      (fun h ->
        match Dfsssp.layers_required ~heuristic:h g with
        | Ok l ->
          Alcotest.(check bool)
            (Printf.sprintf "beats or ties %s" (Deadlock.Heuristic.to_string h))
            true
            (Routing.Ftable.num_layers ft <= l)
        | Error _ -> ())
      Deadlock.Heuristic.all;
    ignore winner

let test_registry_deadlock_free_flags () =
  let g = fst (Topo_torus.torus ~dims:[| 4; 4 |] ~terminals_per_switch:1) in
  List.iter
    (fun (alg : Dfsssp.Registry.algorithm) ->
      match alg.Dfsssp.Registry.run g with
      | Error _ -> ()
      | Ok ft ->
        if alg.Dfsssp.Registry.deadlock_free_by_design then
          Alcotest.(check bool)
            (alg.Dfsssp.Registry.name ^ " honours its flag")
            true (Dfsssp.Verify.deadlock_free ft))
    (Dfsssp.Registry.all ())

let () =
  Alcotest.run "dfsssp"
    [
      ( "route",
        [
          Alcotest.test_case "deadlock free everywhere" `Slow test_deadlock_free_everywhere;
          Alcotest.test_case "paths equal sssp" `Quick test_paths_equal_sssp;
          Alcotest.test_case "ring needs 2 layers" `Quick test_ring_needs_two_layers;
          Alcotest.test_case "tree needs 1 layer" `Quick test_tree_needs_one_layer;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "fig 9/10 layer parity across engines" `Quick test_fig_layer_parity;
          Alcotest.test_case "variants and heuristics" `Quick test_variants_and_heuristics;
          Alcotest.test_case "balance spreads" `Quick test_balance_spreads;
          Alcotest.test_case "weakest vs heaviest" `Slow test_weakest_not_worse_than_heaviest;
          dfsssp_random_qcheck;
          dfsssp_torus_layers_qcheck;
        ] );
      ( "multipath",
        [
          Alcotest.test_case "basics" `Quick test_multipath_basics;
          Alcotest.test_case "joint layers" `Quick test_multipath_joint_layers;
        ] );
      ( "verify",
        [
          Alcotest.test_case "flags cyclic routing" `Quick test_verify_flags_cyclic;
          Alcotest.test_case "parallel verification" `Quick test_verify_parallel_agrees;
          Alcotest.test_case "rejects incomplete" `Quick test_verify_error_on_incomplete;
        ] );
      ( "registry",
        [
          Alcotest.test_case "contents" `Quick test_registry_contents;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "dor needs coords" `Quick test_registry_dor_needs_coords;
          Alcotest.test_case "hardened routings" `Quick test_hardened_routings;
          Alcotest.test_case "route_min_layers" `Quick test_route_min_layers;
          Alcotest.test_case "deadlock-free flags honoured" `Slow test_registry_deadlock_free_flags;
        ] );
    ]
